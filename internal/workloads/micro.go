package workloads

import (
	"semloc/internal/memmodel"
	"semloc/internal/trace"
)

// µbenchmarks (Table 3): data-structure traversals with irregular
// footprints — linked list, array scan, binary search tree, hash table,
// red-black map — plus the algorithm kernels listsort, Prim and SSCA_LDS.

// listNode layout: next pointer at offset 0, payload at offset 8, 32 B
// footprint (as a small C struct with padding).
const (
	listNodeSize = 32
	listNextOff  = 0
	listPayOff   = 8
)

func init() {
	register(&Workload{
		Name:        "list",
		Suite:       "micro",
		Irregular:   true,
		Description: "linked-list traversal in allocation order with allocator jitter; dependent loads serialize misses",
		Generate:    genList,
	})
	register(&Workload{
		Name:        "array",
		Suite:       "micro",
		Irregular:   false,
		Description: "sequential array scan (the spatially optimal layout of the same traversal)",
		Generate:    genArray,
	})
	register(&Workload{
		Name:        "listsort",
		Suite:       "micro",
		Irregular:   true,
		Description: "insertion sort over a linked list (Figure 1): recurring semantically-linear traversals over a spatially random layout",
		Generate:    genListSort,
	})
	register(&Workload{
		Name:        "bst",
		Suite:       "micro",
		Irregular:   true,
		Description: "random-key lookups in a binary search tree: input-dependent branching, hard to predict",
		Generate:    genBST,
	})
	register(&Workload{
		Name:        "hashtest",
		Suite:       "micro",
		Irregular:   true,
		Description: "STL-unordered-map-style probes: bucket array index plus short chain walks",
		Generate:    genHashTest,
	})
	register(&Workload{
		Name:        "maptest",
		Suite:       "micro",
		Irregular:   true,
		Description: "STL-map-style red-black-tree lookups over a skewed key distribution",
		Generate:    genMapTest,
	})
	register(&Workload{
		Name:        "prim",
		Suite:       "micro",
		Irregular:   true,
		Description: "Prim's minimum spanning tree: binary-heap extract-min plus adjacency-list edge scans",
		Generate:    genPrim,
	})
	register(&Workload{
		Name:        "ssca_lds",
		Suite:       "micro",
		Irregular:   true,
		Description: "SSCA2 kernel over a linked data structure: repeated subgraph walks over pointer-linked vertices",
		Generate:    genSSCALds,
	})
}

// emitChase emits one linked-node step: the link load (hinted, dependent on
// the previous link load) and a payload load, followed by loop control.
// Returns the index of the link load for the next step's dependency.
func emitChase(e *trace.Emitter, pcBase uint64, node, next memmodel.Addr, dep int, typeID uint16) int {
	li := e.LoadSpec(trace.MemSpec{
		PC: pcBase, Addr: node + listNextOff, Value: uint64(next),
		Dep: dep, Hints: ptrHint(typeID, listNextOff),
	})
	e.LoadSpec(trace.MemSpec{PC: pcBase + 8, Addr: node + listPayOff, Dep: dep})
	e.Compute(2)
	e.Branch(pcBase+16, true)
	return li
}

// genList builds a linked list whose nodes sit in allocation order with
// local allocator jitter (shuffle window 16) and traverses it repeatedly.
// The footprint exceeds the L2, so steady state misses to memory.
func genList(cfg GenConfig) *trace.Trace {
	const pc = 0x401000
	n := cfg.scaled(50000)
	rng := memmodel.NewRNG(cfg.seed())
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed()})
	nodes := SparseShuffledLayout(h, rng, n, listNodeSize, 16, 0.3)

	e := trace.NewEmitter("list")
	passes := 4
	for pass := 0; pass < passes; pass++ {
		// The list is circular and each pass resumes from a rotated
		// position (a worker cycling through a ring buffer of jobs), so
		// pass-to-pass region entry points never line up.
		start := (pass * 7901) % n
		dep := -1
		for k := 0; k < n; k++ {
			i := (start + k) % n
			next := nodes[(i+1)%n]
			dep = emitChase(e, pc, nodes[i], next, dep, typeListNode)
		}
		if pass == 0 {
			e.EndWarmup()
		}
	}
	return e.Finish()
}

// genArray scans a contiguous array of the same footprint as genList —
// the hand-optimized spatial variant of the same semantic traversal.
func genArray(cfg GenConfig) *trace.Trace {
	const pc = 0x402000
	n := cfg.scaled(50000)
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed()})
	base := h.AllocArray(n, listNodeSize)

	e := trace.NewEmitter("array")
	passes := 4
	for pass := 0; pass < passes; pass++ {
		for i := 0; i < n; i++ {
			addr := base + memmodel.Addr(i*listNodeSize)
			e.LoadSpec(trace.MemSpec{
				PC: pc, Addr: addr, Dep: -1,
				Hints: trace.SWHints{Valid: true, TypeID: typeListNode, RefForm: trace.RefIndex},
			})
			e.LoadSpec(trace.MemSpec{PC: pc + 8, Addr: addr + listPayOff, Dep: -1})
			e.Compute(2)
			e.Branch(pc+16, true)
		}
		if pass == 0 {
			e.EndWarmup()
		}
	}
	return e.Finish()
}

// genListSort reproduces Figure 1: elements arrive in random order and are
// inserted into a sorted linked list, so every insertion traverses the
// sorted prefix — a perfectly recurring semantic order over a spatially
// random layout.
func genListSort(cfg GenConfig) *trace.Trace {
	const pc = 0x403000
	n := cfg.scaled(2000)
	rng := memmodel.NewRNG(cfg.seed())
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed()})
	// Nodes are allocated in arrival order; the sorted traversal order is
	// random with respect to memory (Figure 1's top plot) and the live
	// set grows past the L1. The footprint stays small enough that a
	// useful fraction of sorted-adjacent distances is reachable by the
	// CST's one-byte deltas — the regime the paper's 100-element demo
	// lives in.
	nodes := ShuffledLayout(h, rng, n, 64, 64)
	keys := rng.Perm(n)

	e := trace.NewEmitter("listsort")
	// sorted holds node indices in key order; insertion walks it.
	var sorted []int
	warmupAt := n / 4
	for i := 0; i < n; i++ {
		key := keys[i]
		dep := -1
		pos := 0
		for pos < len(sorted) && keys[sorted[pos]] < key {
			cur := nodes[sorted[pos]]
			var next memmodel.Addr
			if pos+1 < len(sorted) {
				next = nodes[sorted[pos+1]]
			}
			dep = e.LoadSpec(trace.MemSpec{
				PC: pc, Addr: cur + listNextOff, Value: uint64(next),
				Reg: uint64(key), Dep: dep, Hints: ptrHint(typeListNode, listNextOff),
			})
			e.LoadSpec(trace.MemSpec{PC: pc + 8, Addr: cur + listPayOff, Dep: dep})
			e.Compute(2)
			e.Branch(pc+16, true)
			pos++
		}
		e.Branch(pc+16, false) // loop exit
		// Splice in the new node: write its next pointer and patch the
		// predecessor.
		e.StoreSpec(trace.MemSpec{PC: pc + 24, Addr: nodes[i] + listNextOff, Dep: dep,
			Hints: ptrHint(typeListNode, listNextOff)})
		if pos > 0 {
			e.StoreSpec(trace.MemSpec{PC: pc + 32, Addr: nodes[sorted[pos-1]] + listNextOff, Dep: dep,
				Hints: ptrHint(typeListNode, listNextOff)})
		}
		e.Compute(4)
		sorted = append(sorted, 0)
		copy(sorted[pos+1:], sorted[pos:])
		sorted[pos] = i
		if i == warmupAt {
			e.EndWarmup()
		}
	}
	return e.Finish()
}

// treeNode layout: left at 0, right at 8, key at 16; 48 B footprint.
const (
	treeNodeSize = 48
	treeLeftOff  = 0
	treeRightOff = 8
	treeKeyOff   = 16
)

// genBST performs random-key lookups in a balanced binary search tree.
// Lookup paths diverge with the key, which the paper identifies as the
// hardest case (high branching, input-dependent).
func genBST(cfg GenConfig) *trace.Trace {
	const pc = 0x404000
	n := cfg.scaled(32768)
	lookups := cfg.scaled(12000)
	rng := memmodel.NewRNG(cfg.seed())
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed()})
	nodes := ShuffledLayout(h, rng, n, treeNodeSize, 64)

	// Balanced tree over sorted keys: the node for range [lo,hi) is its
	// midpoint rank, so a lookup is a root-to-leaf binary-search descent.
	e := trace.NewEmitter("bst")
	lookup := func(key int) {
		lo, hi := 0, n
		dep := -1
		reg := uint64(key)
		for lo < hi {
			mid := (lo + hi) / 2
			node := nodes[mid]
			// Load the key, then the taken child pointer.
			kd := e.LoadSpec(trace.MemSpec{PC: pc, Addr: node + treeKeyOff, Reg: reg, Dep: dep,
				Hints: derefHint(typeTreeNode)})
			e.Compute(1)
			goLeft := key < mid
			var off memmodel.Addr
			if goLeft {
				off = treeLeftOff
				hi = mid
			} else {
				off = treeRightOff
				lo = mid + 1
			}
			var next memmodel.Addr
			if lo < hi {
				next = nodes[(lo+hi)/2]
			}
			dep = e.LoadSpec(trace.MemSpec{PC: pc + 16, Addr: node + off, Value: uint64(next),
				Reg: reg, Dep: kd, Hints: ptrHint(typeTreeNode, uint16(off))})
			e.Branch(pc+24, goLeft)
		}
		e.Compute(3)
	}
	warm := lookups / 8
	for i := 0; i < lookups; i++ {
		lookup(rng.Intn(2 * n))
		if i == warm {
			e.EndWarmup()
		}
	}
	return e.Finish()
}

// genHashTest models unordered_map probes: hash to a bucket array slot
// (indexed load), then walk a short collision chain.
func genHashTest(cfg GenConfig) *trace.Trace {
	const pc = 0x405000
	buckets := cfg.scaled(16384)
	items := buckets * 2
	probes := cfg.scaled(40000)
	rng := memmodel.NewRNG(cfg.seed())
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed()})
	bucketArr := h.AllocArray(buckets, 8)
	nodes := SparseShuffledLayout(h, rng, items, listNodeSize, 256, 0.45)

	// Chains: item i lives in bucket i%buckets; chain order deterministic.
	e := trace.NewEmitter("hashtest")
	warm := probes / 8
	for p := 0; p < probes; p++ {
		key := rng.Intn(items)
		b := key % buckets
		// Bucket head load (array indexed).
		dep := e.LoadSpec(trace.MemSpec{
			PC: pc, Addr: bucketArr + memmodel.Addr(b*8), Reg: uint64(key),
			Value: uint64(nodes[b]), Dep: -1,
			Hints: trace.SWHints{Valid: true, TypeID: typeHashNode, RefForm: trace.RefIndex},
		})
		e.Compute(2)
		// Chain walk: up to 2 hops (items = 2x buckets).
		for hop := 0; hop <= key/buckets; hop++ {
			node := nodes[(b+hop*buckets)%items]
			next := nodes[(b+(hop+1)*buckets)%items]
			dep = e.LoadSpec(trace.MemSpec{
				PC: pc + 16, Addr: node + listNextOff, Value: uint64(next),
				Reg: uint64(key), Dep: dep, Hints: ptrHint(typeHashNode, listNextOff),
			})
			e.Branch(pc+24, hop < key/buckets)
		}
		e.Compute(3)
		if p == warm {
			e.EndWarmup()
		}
	}
	return e.Finish()
}

// genMapTest models std::map (red-black tree) lookups with a skewed
// (80/20) key distribution: the hot subtree stays cached and learnable,
// the cold tail is unpredictable.
func genMapTest(cfg GenConfig) *trace.Trace {
	const pc = 0x406000
	n := cfg.scaled(24576)
	lookups := cfg.scaled(12000)
	rng := memmodel.NewRNG(cfg.seed())
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed()})
	nodes := ShuffledLayout(h, rng, n, treeNodeSize, 64)

	e := trace.NewEmitter("maptest")
	hot := n / 5
	warm := lookups / 8
	for p := 0; p < lookups; p++ {
		var key int
		if rng.Float64() < 0.8 {
			key = rng.Intn(hot)
		} else {
			key = hot + rng.Intn(n-hot)
		}
		lo, hi := 0, n
		dep := -1
		for lo < hi {
			mid := (lo + hi) / 2
			node := nodes[mid]
			kd := e.LoadSpec(trace.MemSpec{PC: pc, Addr: node + treeKeyOff, Reg: uint64(key), Dep: dep,
				Hints: derefHint(typeTreeNode)})
			e.Compute(2) // key compare + colour checks
			goLeft := key < mid
			var off memmodel.Addr
			if goLeft {
				off = treeLeftOff
				hi = mid
			} else {
				off = treeRightOff
				lo = mid + 1
			}
			var next memmodel.Addr
			if lo < hi {
				next = nodes[(lo+hi)/2]
			}
			dep = e.LoadSpec(trace.MemSpec{PC: pc + 16, Addr: node + off, Value: uint64(next),
				Reg: uint64(key), Dep: kd, Hints: ptrHint(typeTreeNode, uint16(off))})
			e.Branch(pc+24, goLeft)
		}
		e.Compute(3)
		if p == warm {
			e.EndWarmup()
		}
	}
	return e.Finish()
}

// genPrim runs Prim's MST: a binary heap of frontier vertices (array,
// indexed accesses) and adjacency-list scans of pointer-linked edges.
func genPrim(cfg GenConfig) *trace.Trace {
	const pc = 0x407000
	vertices := cfg.scaled(12000)
	avgDegree := 8
	rng := memmodel.NewRNG(cfg.seed())
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed()})

	// Edge nodes, grouped per vertex in allocation order.
	edges := make([][]memmodel.Addr, vertices)
	edgeTargets := make([][]int, vertices)
	edgeNodes := SparseShuffledLayout(h, rng, vertices*avgDegree, listNodeSize, 32, 0.45)
	k := 0
	for v := 0; v < vertices; v++ {
		deg := 4 + rng.Intn(2*avgDegree-8+1)
		for d := 0; d < deg && k < len(edgeNodes); d++ {
			edges[v] = append(edges[v], edgeNodes[k])
			edgeTargets[v] = append(edgeTargets[v], rng.Intn(vertices))
			k++
		}
	}
	heapArr := h.AllocArray(vertices, 16)
	keyArr := h.AllocArray(vertices, 8)

	e := trace.NewEmitter("prim")
	inTree := make([]bool, vertices)
	// Visit order approximates heap extraction: pseudo-random permutation.
	order := rng.Perm(vertices)
	warm := vertices / 8
	for i, v := range order {
		// Heap pop: root + sift-down path (log n indexed loads).
		path := 1
		for j := i + 1; j > 1; j /= 2 {
			path++
		}
		dep := -1
		for lvl := 0; lvl < path && lvl < 16; lvl++ {
			slot := (1<<lvl - 1) % vertices
			dep = e.LoadSpec(trace.MemSpec{PC: pc, Addr: heapArr + memmodel.Addr(slot*16), Dep: dep,
				Hints: trace.SWHints{Valid: true, TypeID: typeHeapNode, RefForm: trace.RefIndex}})
			e.Compute(2)
			e.Branch(pc+8, lvl < path-1)
		}
		inTree[v] = true
		// Scan v's adjacency list (pointer chase).
		dep = -1
		for d, en := range edges[v] {
			var next memmodel.Addr
			if d+1 < len(edges[v]) {
				next = edges[v][d+1]
			}
			dep = e.LoadSpec(trace.MemSpec{PC: pc + 32, Addr: en + listNextOff, Value: uint64(next),
				Dep: dep, Hints: ptrHint(typeGraphEdge, listNextOff)})
			// Relaxation: read the target's key (random array access).
			t := edgeTargets[v][d]
			e.LoadSpec(trace.MemSpec{PC: pc + 40, Addr: keyArr + memmodel.Addr(t*8), Dep: dep,
				Hints: trace.SWHints{Valid: true, TypeID: typeHeapNode, RefForm: trace.RefIndex}})
			e.Compute(3)
			if !inTree[t] {
				e.StoreSpec(trace.MemSpec{PC: pc + 48, Addr: heapArr + memmodel.Addr(t*16), Dep: -1})
			}
			e.Branch(pc+56, d+1 < len(edges[v]))
		}
		if i == warm {
			e.EndWarmup()
		}
	}
	return e.Finish()
}

// genSSCALds models the HPCS SSCA2 benchmark's linked-data-structure
// variant: repeated walks over a pointer-linked subgraph (the hot
// community) interleaved with cold excursions.
func genSSCALds(cfg GenConfig) *trace.Trace {
	const pc = 0x408000
	hotN := cfg.scaled(6000)
	coldN := cfg.scaled(40000)
	walks := cfg.scaled(60)
	rng := memmodel.NewRNG(cfg.seed())
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed()})
	hot := SparseShuffledLayout(h, rng, hotN, listNodeSize, 64, 0.45)
	cold := SparseShuffledLayout(h, rng, coldN, listNodeSize, 256, 0.45)

	// The hot walk is a fixed cycle whose order correlates with allocation
	// order but is locally shuffled (community traversal follows graph
	// construction order with local irregularity) — recurring across
	// kernel phases, and with node-to-node distances the CST's one-byte
	// deltas can reach.
	cycle := make([]int, hotN)
	for start := 0; start < hotN; start += 32 {
		end := start + 32
		if end > hotN {
			end = hotN
		}
		perm := rng.Perm(end - start)
		for i := range perm {
			cycle[start+i] = start + perm[i]
		}
	}
	e := trace.NewEmitter("ssca_lds")
	warm := walks / 8
	for w := 0; w < walks; w++ {
		// Each kernel phase enters the community at a different vertex
		// (per-source BFS), rotating the walk's starting point.
		start := (w * 2741) % hotN
		dep := -1
		for k := 0; k < hotN; k++ {
			i := (start + k) % hotN
			cur := hot[cycle[i]]
			next := hot[cycle[(i+1)%hotN]]
			dep = emitChase(e, pc, cur, next, dep, typeGraphVertex)
		}
		// Cold excursion: a short random walk over the large region.
		dep = -1
		for i := 0; i < 64; i++ {
			cur := cold[rng.Intn(coldN)]
			dep = e.LoadSpec(trace.MemSpec{PC: pc + 64, Addr: cur, Dep: dep,
				Hints: ptrHint(typeGraphVertex, 0)})
			e.Compute(2)
		}
		if w == warm {
			e.EndWarmup()
		}
	}
	return e.Finish()
}
