// Package workloads generates the instruction/memory traces of the paper's
// benchmark set (Table 3). Real SPEC 2006 / Graph500 / PBBS / HPCS binaries
// cannot run inside this reproduction, so each workload is a behavioural
// generator that reproduces the benchmark's dominant memory-access
// structure — the property prefetchers actually see — and attaches the
// compiler hints the paper's LLVM pass would inject (see DESIGN.md,
// substitution table).
//
// Conventions shared by all generators:
//
//   - Linked structures are laid out with ShuffledLayout (compact
//     footprint, locally shuffled order) or SparseShuffledLayout (nodes
//     additionally interleaved with cold allocations, so per-region
//     footprints are region-specific) — the behaviour of a real allocator
//     after churn. Traversal-adjacent deltas are irregular (defeating
//     stride/delta prefetchers) yet mostly within the ±8 kB range the
//     CST's one-byte deltas can express — exactly the regime the paper's
//     hardware targets.
//   - Pointer loads carry SWHints (type ID, link offset, reference form)
//     and Value (the pointer fetched), and declare Dep on their producer
//     so the timing model serializes them, as real pointer chasing does.
//   - Every trace ends its build/warm-up phase with EndWarmup, so measured
//     statistics cover steady state.
package workloads

import (
	"fmt"
	"sort"

	"semloc/internal/memmodel"
	"semloc/internal/trace"
)

// GenConfig scales a workload generator.
type GenConfig struct {
	// Scale multiplies the workload's footprint and iteration counts.
	// 1 is the standard experiment size; tests use smaller values.
	Scale float64
	// Seed drives all pseudo-random choices.
	Seed uint64
}

// DefaultGenConfig returns the standard experiment scale.
func DefaultGenConfig() GenConfig { return GenConfig{Scale: 1, Seed: 1} }

func (c GenConfig) scaled(base int) int {
	if c.Scale <= 0 {
		return base
	}
	n := int(float64(base) * c.Scale)
	if n < 4 {
		n = 4
	}
	return n
}

func (c GenConfig) seed() uint64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

// Workload describes one benchmark.
type Workload struct {
	// Name matches Table 3 ("mcf", "graph500-list", "list", ...).
	Name string
	// Suite is the benchmark's origin ("spec2006", "graph500", "hpcs",
	// "pbbs", "micro").
	Suite string
	// Irregular marks pointer-dominated access behaviour.
	Irregular bool
	// Description summarizes the modelled behaviour.
	Description string
	// Generate builds the trace.
	Generate func(cfg GenConfig) *trace.Trace
}

// registry holds all workloads, populated by the per-suite files.
var registry []*Workload

func register(w *Workload) *Workload {
	registry = append(registry, w)
	return w
}

// All returns every registered workload, sorted by suite then name.
func All() []*Workload {
	out := append([]*Workload(nil), registry...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Suite != out[j].Suite {
			return out[i].Suite < out[j].Suite
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Suite returns the workloads of one suite.
func Suite(name string) []*Workload {
	var out []*Workload
	for _, w := range All() {
		if w.Suite == name {
			out = append(out, w)
		}
	}
	return out
}

// ByName finds a workload.
func ByName(name string) (*Workload, error) {
	for _, w := range registry {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

// Names lists all workload names in registry order (suite-sorted).
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, w := range all {
		out[i] = w.Name
	}
	return out
}

// SparseShuffledLayout places n objects of elemSize bytes into a footprint
// where only about `occupancy` of the space holds this structure's nodes;
// the gaps model interleaved allocations of other, colder objects, exactly
// as a real heap mixes structures. Gap positions are random and therefore
// region-specific: the footprint of a 2 kB region is not predictable from
// another region's footprint, which is what distinguishes true semantic
// prefetching from spatial-pattern generalization. Node order is then
// locally shuffled within `window` as in ShuffledLayout.
func SparseShuffledLayout(h *memmodel.Heap, rng *memmodel.RNG, n int, elemSize uint64, window int, occupancy float64) []memmodel.Addr {
	if occupancy <= 0 || occupancy > 1 {
		occupancy = 1
	}
	stride := uint64(memmodel.AlignUp(memmodel.Addr(elemSize), 16))
	span := uint64(float64(uint64(n)*stride) / occupancy)
	base := h.Alloc(span)
	// Walk the footprint, dropping nodes with probability `occupancy` per
	// slot; wrap until all n are placed.
	out := make([]memmodel.Addr, 0, n)
	pos := base
	for len(out) < n {
		if rng.Float64() < occupancy {
			out = append(out, pos)
		}
		pos += memmodel.Addr(stride)
		if pos+memmodel.Addr(stride) > base+memmodel.Addr(span) {
			pos = base + memmodel.Addr(uint64(rng.Intn(16))*stride)
		}
	}
	if window < 2 {
		window = 2
	}
	for start := 0; start < n; start += window {
		end := start + window
		if end > n {
			end = n
		}
		spanN := end - start
		perm := rng.Perm(spanN)
		shuffled := make([]memmodel.Addr, spanN)
		for i := 0; i < spanN; i++ {
			shuffled[i] = out[start+perm[i]]
		}
		copy(out[start:end], shuffled)
	}
	return out
}

// ShuffledLayout places n objects of elemSize bytes into a compact
// contiguous footprint, permuted within windows of `window` elements. It
// models a churned allocator: logical neighbours are physically scattered
// (no spatial locality within a window) but remain within
// window*stride bytes of each other, matching the locality real allocators
// give consecutively allocated nodes.
func ShuffledLayout(h *memmodel.Heap, rng *memmodel.RNG, n int, elemSize uint64, window int) []memmodel.Addr {
	stride := memmodel.AlignUp(memmodel.Addr(elemSize), 16)
	base := h.AllocArray(n, uint64(stride))
	out := make([]memmodel.Addr, n)
	if window < 2 {
		window = 2
	}
	for start := 0; start < n; start += window {
		end := start + window
		if end > n {
			end = n
		}
		span := end - start
		perm := rng.Perm(span)
		for i := 0; i < span; i++ {
			out[start+i] = base + memmodel.Addr(start+perm[i])*stride
		}
	}
	return out
}

// Object type IDs used by the generators' compiler hints; each generator
// keeps its own small enumeration, mirroring the per-program enumeration
// of the paper's LLVM pass.
const (
	typeListNode uint16 = 1 + iota
	typeTreeNode
	typeHashNode
	typeGraphVertex
	typeGraphEdge
	typeHeapNode
	typeArcNode
	typeEventNode
)

// ptrHint builds the hint triple for a pointer-typed link load.
func ptrHint(typeID uint16, linkOff uint16) trace.SWHints {
	return trace.SWHints{Valid: true, TypeID: typeID, LinkOffset: linkOff, RefForm: trace.RefArrow}
}

// derefHint builds the hint triple for a plain pointer dereference.
func derefHint(typeID uint16) trace.SWHints {
	return trace.SWHints{Valid: true, TypeID: typeID, RefForm: trace.RefDeref}
}
