package workloads

import (
	"testing"

	"semloc/internal/memmodel"
	"semloc/internal/trace"
)

// tiny returns a fast test-size config.
func tiny() GenConfig { return GenConfig{Scale: 0.02, Seed: 1} }

func TestRegistryComplete(t *testing.T) {
	// Table 3 inventory.
	wantSuites := map[string][]string{
		"spec2006": {"sjeng", "povray", "soplex", "dealII", "h264ref", "gobmk",
			"hmmer", "bzip2", "milc", "namd", "omnetpp", "astar",
			"libquantum", "mcf", "sphinx3", "lbm"},
		"pbbs":     {"suffixArray", "pbbs-bfs", "setCover", "knn", "convexHull"},
		"graph500": {"graph500", "graph500-list"},
		"hpcs":     {"ssca2-csr", "ssca2-list"},
		"micro":    {"list", "array", "listsort", "bst", "hashtest", "maptest", "prim", "ssca_lds"},
	}
	total := 0
	for suite, names := range wantSuites {
		got := Suite(suite)
		if len(got) != len(names) {
			t.Errorf("suite %s has %d workloads, want %d", suite, len(got), len(names))
		}
		for _, n := range names {
			if _, err := ByName(n); err != nil {
				t.Errorf("missing workload %q: %v", n, err)
			}
			total++
		}
	}
	if len(All()) != total {
		t.Errorf("All() = %d workloads, want %d", len(All()), total)
	}
	if len(Names()) != total {
		t.Errorf("Names() = %d", len(Names()))
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("expected error for unknown workload")
	}
}

func TestAllWorkloadsGenerateValidTraces(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			tr := w.Generate(tiny())
			if tr.Name != w.Name {
				t.Errorf("trace name %q != workload name %q", tr.Name, w.Name)
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("invalid trace: %v", err)
			}
			s := tr.ComputeStats()
			if s.Loads == 0 {
				t.Error("no loads emitted")
			}
			if s.WarmupIndex < 0 {
				t.Error("no warm-up marker")
			}
			if s.WarmupIndex == s.Records-1 {
				t.Error("warm-up marker at end: no measured region")
			}
			if s.Instructions == 0 {
				t.Error("no instructions")
			}
			if w.Irregular && s.Dependent == 0 {
				t.Errorf("irregular workload has no dependent loads")
			}
			if s.Hinted == 0 {
				t.Errorf("no compiler hints attached")
			}
		})
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	for _, name := range []string{"list", "mcf", "graph500-list", "suffixArray"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		a := w.Generate(tiny())
		b := w.Generate(tiny())
		if len(a.Records) != len(b.Records) {
			t.Fatalf("%s: nondeterministic record count %d vs %d", name, len(a.Records), len(b.Records))
		}
		for i := range a.Records {
			if a.Records[i] != b.Records[i] {
				t.Fatalf("%s: record %d differs", name, i)
			}
		}
	}
}

func TestScaleGrowsTrace(t *testing.T) {
	w, err := ByName("list")
	if err != nil {
		t.Fatal(err)
	}
	small := w.Generate(GenConfig{Scale: 0.02, Seed: 1})
	large := w.Generate(GenConfig{Scale: 0.08, Seed: 1})
	if len(large.Records) <= len(small.Records) {
		t.Errorf("scale 0.08 (%d records) should exceed scale 0.02 (%d)", len(large.Records), len(small.Records))
	}
}

func TestShuffledLayoutProperties(t *testing.T) {
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: 5})
	rng := memmodel.NewRNG(5)
	const n, elem, window = 1000, 32, 16
	addrs := ShuffledLayout(h, rng, n, elem, window)
	seen := make(map[memmodel.Addr]bool)
	var lo, hi memmodel.Addr
	lo = addrs[0]
	for _, a := range addrs {
		if seen[a] {
			t.Fatalf("duplicate address %v", a)
		}
		seen[a] = true
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	// Compact footprint: n*32 bytes exactly.
	if int(hi-lo) > n*elem {
		t.Errorf("footprint %d exceeds %d", hi-lo, n*elem)
	}
	// Locally shuffled: traversal-adjacent deltas bounded by the window...
	maxDelta := 0
	adjacent := 0
	for i := 1; i < n; i++ {
		d := int(int64(addrs[i]) - int64(addrs[i-1]))
		if d < 0 {
			d = -d
		}
		if d > maxDelta {
			maxDelta = d
		}
		if d == elem {
			adjacent++
		}
	}
	if maxDelta > 2*window*elem {
		t.Errorf("max adjacent delta %d exceeds 2*window*elem %d", maxDelta, 2*window*elem)
	}
	// ...but not simply sequential.
	if adjacent > n/2 {
		t.Errorf("layout too sequential: %d/%d adjacent", adjacent, n)
	}
}

func TestListTraversalIsDependencyChained(t *testing.T) {
	w, _ := ByName("list")
	tr := w.Generate(tiny())
	// Every link load (PC 0x401000) after the first must depend on the
	// previous link load.
	var prev int32 = trace.NoDep
	count := 0
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.Kind == trace.KindLoad && r.PC == 0x401000 {
			if count > 0 && r.Dep != prev {
				// Passes restart the chain; allow Dep == NoDep there.
				if r.Dep != trace.NoDep {
					t.Fatalf("record %d: link load dep %d, want %d", i, r.Dep, prev)
				}
			}
			prev = int32(i)
			count++
		}
	}
	if count == 0 {
		t.Fatal("no link loads found")
	}
}

func TestListsortRecurringLogicalOrder(t *testing.T) {
	// Figure 1's property: the same node sequence recurs across
	// insertions. The first two loads of insertion k+1's traversal revisit
	// the node that insertion k's traversal started with (the sorted
	// head), provided both traversals are non-empty.
	w, _ := ByName("listsort")
	tr := w.Generate(GenConfig{Scale: 0.2, Seed: 3})
	// Gather the first traversal load after each loop exit (branch not
	// taken at pc+16).
	const pcLoad = 0x403000
	var firstLoads []uint64
	expectFirst := true
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.Kind == trace.KindBranch && r.PC == 0x403010 && !r.Taken {
			expectFirst = true
		}
		if r.Kind == trace.KindLoad && r.PC == pcLoad && expectFirst {
			firstLoads = append(firstLoads, uint64(r.Addr))
			expectFirst = false
		}
	}
	if len(firstLoads) < 10 {
		t.Fatalf("too few traversals: %d", len(firstLoads))
	}
	// All non-empty traversals start at the current sorted head; the head
	// changes only when a new minimum is inserted, so the number of
	// distinct heads is far below the number of traversals.
	distinct := make(map[uint64]bool)
	for _, a := range firstLoads {
		distinct[a] = true
	}
	if len(distinct) > len(firstLoads)/2 {
		t.Errorf("traversal heads not recurring: %d distinct of %d", len(distinct), len(firstLoads))
	}
}

func TestGraphLayoutsShareStructure(t *testing.T) {
	// The CSR and list variants must traverse the same logical graph:
	// equal sweep counts, comparable edge visit counts.
	csr, _ := ByName("graph500")
	lst, _ := ByName("graph500-list")
	trC := csr.Generate(tiny())
	trL := lst.Generate(tiny())
	sC := trC.ComputeStats()
	sL := trL.ComputeStats()
	if sC.Loads == 0 || sL.Loads == 0 {
		t.Fatal("empty graph traces")
	}
	ratio := float64(sL.Loads) / float64(sC.Loads)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("load counts diverge: csr=%d list=%d", sC.Loads, sL.Loads)
	}
	// The list variant must be dependency-chained, CSR mostly not.
	fracL := float64(sL.Dependent) / float64(sL.Loads)
	fracC := float64(sC.Dependent) / float64(sC.Loads)
	if fracL <= fracC {
		t.Errorf("list dep fraction %.2f should exceed csr %.2f", fracL, fracC)
	}
}

func TestRegularWorkloadsMostlyIndependent(t *testing.T) {
	for _, name := range []string{"libquantum", "lbm", "milc", "hmmer", "array"} {
		w, _ := ByName(name)
		tr := w.Generate(tiny())
		s := tr.ComputeStats()
		frac := float64(s.Dependent) / float64(s.Loads+1)
		if frac > 0.3 {
			t.Errorf("%s: dependent-load fraction %.2f too high for a regular workload", name, frac)
		}
	}
}

func TestGenConfigScaledFloor(t *testing.T) {
	c := GenConfig{Scale: 0.000001}
	if got := c.scaled(100); got != 4 {
		t.Errorf("scaled floor = %d, want 4", got)
	}
	c = GenConfig{}
	if got := c.scaled(100); got != 100 {
		t.Errorf("zero scale should keep base, got %d", got)
	}
	if (GenConfig{}).seed() != 1 {
		t.Error("zero seed should map to 1")
	}
}
