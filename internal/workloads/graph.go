package workloads

import (
	"semloc/internal/memmodel"
	"semloc/internal/trace"
)

// Graph workloads (Table 3): the Graph500 breadth-first-search kernel and
// the HPCS SSCA2 betweenness-centrality kernel, each in two layouts —
// compressed sparse row (the spatially optimized form virtually all
// high-performance graph codes use, §2.2) and a naive pointer-linked form.
// Figure 14 compares prefetchers across exactly these four variants.

func init() {
	register(&Workload{
		Name:        "graph500",
		Suite:       "graph500",
		Irregular:   true,
		Description: "Graph500 BFS over CSR (array) representation: offset/index array scans plus scattered visited-map probes",
		Generate:    func(cfg GenConfig) *trace.Trace { return genBFS(cfg, "graph500", true) },
	})
	register(&Workload{
		Name:        "graph500-list",
		Suite:       "graph500",
		Irregular:   true,
		Description: "Graph500 BFS over a naive pointer-linked graph: dependent vertex/edge chains",
		Generate:    func(cfg GenConfig) *trace.Trace { return genBFS(cfg, "graph500-list", false) },
	})
	register(&Workload{
		Name:        "ssca2-csr",
		Suite:       "hpcs",
		Irregular:   true,
		Description: "SSCA2 betweenness centrality over CSR: repeated BFS sweeps plus per-vertex score accumulation",
		Generate:    func(cfg GenConfig) *trace.Trace { return genSSCA2(cfg, "ssca2-csr", true) },
	})
	register(&Workload{
		Name:        "ssca2-list",
		Suite:       "hpcs",
		Irregular:   true,
		Description: "SSCA2 betweenness centrality over a pointer-linked graph",
		Generate:    func(cfg GenConfig) *trace.Trace { return genSSCA2(cfg, "ssca2-list", false) },
	})
}

// synthGraph is a small-world graph: vertex v's neighbours cluster near v
// (community structure) with occasional long-range edges, the structure
// both Graph500 RMAT generators and SSCA2 cliques approximate.
type synthGraph struct {
	n      int
	adj    [][]int
	orders [][]int // BFS visit orders from several roots (precomputed)
}

func buildGraph(n, avgDeg int, rng *memmodel.RNG) *synthGraph {
	g := &synthGraph{n: n, adj: make([][]int, n)}
	for v := 0; v < n; v++ {
		deg := 2 + rng.Intn(2*avgDeg-3)
		for d := 0; d < deg; d++ {
			var t int
			if rng.Float64() < 0.8 {
				// Community edge: nearby vertex.
				t = v + rng.Intn(201) - 100
				if t < 0 {
					t += n
				}
				t %= n
			} else {
				t = rng.Intn(n)
			}
			if t != v {
				g.adj[v] = append(g.adj[v], t)
			}
		}
	}
	// Precompute BFS orders from several roots: Graph500 runs each search
	// from a different key, so sweep-to-sweep traversal orders differ —
	// exactly what defeats stream/footprint recurrence while leaving the
	// graph's structural (semantic) relations intact.
	for _, root := range []int{0, n / 4, n / 2, 3 * n / 4} {
		g.orders = append(g.orders, g.bfsOrder(root))
	}
	return g
}

// bfsOrder computes the breadth-first visit order from root.
func (g *synthGraph) bfsOrder(root int) []int {
	visited := make([]bool, g.n)
	queue := []int{root}
	visited[root] = true
	order := make([]int, 0, g.n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, t := range g.adj[v] {
			if !visited[t] {
				visited[t] = true
				queue = append(queue, t)
			}
		}
	}
	for v := 0; v < g.n; v++ { // disconnected remainder
		if !visited[v] {
			order = append(order, v)
		}
	}
	return order
}

// csrLayout holds the spatially optimized representation.
type csrLayout struct {
	rowPtr  memmodel.Addr // n+1 x 8 B
	colIdx  memmodel.Addr // m x 8 B
	visited memmodel.Addr // n x 8 B
	offsets []int         // per-vertex start into colIdx
}

func buildCSR(g *synthGraph, h *memmodel.Heap) *csrLayout {
	m := 0
	offsets := make([]int, g.n+1)
	for v := 0; v < g.n; v++ {
		offsets[v] = m
		m += len(g.adj[v])
	}
	offsets[g.n] = m
	return &csrLayout{
		rowPtr:  h.AllocArray(g.n+1, 8),
		colIdx:  h.AllocArray(m, 8),
		visited: h.AllocArray(g.n, 8),
		offsets: offsets,
	}
}

// listLayout holds the naive pointer-linked representation: vertex records
// plus per-vertex edge-node chains, all allocated in construction order
// with allocator jitter.
type listLayout struct {
	vertex  []memmodel.Addr
	edges   [][]memmodel.Addr
	visited memmodel.Addr
}

func buildListGraph(g *synthGraph, h *memmodel.Heap, rng *memmodel.RNG) *listLayout {
	// Vertices and their edge nodes are allocated interleaved, in
	// construction order (vertex v, then v's edges) with local allocator
	// jitter — the layout a naive builder produces. A vertex's edge chain
	// therefore sits within reach of the vertex record.
	total := g.n
	for v := 0; v < g.n; v++ {
		total += len(g.adj[v])
	}
	nodes := SparseShuffledLayout(h, rng, total, listNodeSize, 16, 0.45)
	l := &listLayout{
		vertex:  make([]memmodel.Addr, g.n),
		edges:   make([][]memmodel.Addr, g.n),
		visited: h.AllocArray(g.n, 8),
	}
	k := 0
	for v := 0; v < g.n; v++ {
		l.vertex[v] = nodes[k]
		k++
		l.edges[v] = nodes[k : k+len(g.adj[v])]
		k += len(g.adj[v])
	}
	return l
}

// emitVisitCSR emits one BFS vertex visit over CSR.
func emitVisitCSR(e *trace.Emitter, pc uint64, g *synthGraph, c *csrLayout, v int) {
	// Row pointer loads (v, v+1): sequential-ish array accesses.
	rp := e.LoadSpec(trace.MemSpec{PC: pc, Addr: c.rowPtr + memmodel.Addr(v*8), Dep: -1,
		Hints: trace.SWHints{Valid: true, TypeID: typeGraphVertex, RefForm: trace.RefIndex}})
	e.LoadSpec(trace.MemSpec{PC: pc + 4, Addr: c.rowPtr + memmodel.Addr((v+1)*8), Dep: -1})
	e.Compute(2)
	start := c.offsets[v]
	for i, t := range g.adj[v] {
		// Column index load: sequential within the row.
		ci := e.LoadSpec(trace.MemSpec{PC: pc + 8, Addr: c.colIdx + memmodel.Addr((start+i)*8),
			Value: uint64(t), Dep: rp,
			Hints: trace.SWHints{Valid: true, TypeID: typeGraphEdge, RefForm: trace.RefIndex}})
		// Visited probe: data-dependent scatter — the irregular heart of BFS.
		e.LoadSpec(trace.MemSpec{PC: pc + 12, Addr: c.visited + memmodel.Addr(t*8), Dep: ci,
			Hints: trace.SWHints{Valid: true, TypeID: typeGraphVertex, RefForm: trace.RefIndex}})
		e.Compute(2)
		e.Branch(pc+16, i+1 < len(g.adj[v]))
	}
	e.StoreSpec(trace.MemSpec{PC: pc + 20, Addr: c.visited + memmodel.Addr(v*8), Dep: -1})
}

// emitVisitList emits one BFS vertex visit over the linked layout.
func emitVisitList(e *trace.Emitter, pc uint64, g *synthGraph, l *listLayout, v int, dep int) int {
	// Vertex record load (reached through the queue/frontier pointer).
	var firstEdge memmodel.Addr
	if len(l.edges[v]) > 0 {
		firstEdge = l.edges[v][0]
	}
	vd := e.LoadSpec(trace.MemSpec{PC: pc, Addr: l.vertex[v], Value: uint64(firstEdge), Dep: dep,
		Hints: ptrHint(typeGraphVertex, 8)})
	e.Compute(2)
	ed := vd
	for i, t := range g.adj[v] {
		var next memmodel.Addr
		if i+1 < len(l.edges[v]) {
			next = l.edges[v][i+1]
		}
		// Edge node: pointer chase along the adjacency chain.
		ed = e.LoadSpec(trace.MemSpec{PC: pc + 8, Addr: l.edges[v][i], Value: uint64(next), Dep: ed,
			Hints: ptrHint(typeGraphEdge, listNextOff)})
		// Visited probe for the target.
		e.LoadSpec(trace.MemSpec{PC: pc + 12, Addr: l.visited + memmodel.Addr(t*8), Dep: ed,
			Hints: trace.SWHints{Valid: true, TypeID: typeGraphVertex, RefForm: trace.RefIndex}})
		e.Compute(2)
		e.Branch(pc+16, i+1 < len(g.adj[v]))
	}
	e.StoreSpec(trace.MemSpec{PC: pc + 20, Addr: l.visited + memmodel.Addr(v*8), Dep: -1})
	return vd
}

// genBFS emits repeated BFS sweeps (Graph500 runs 64 search keys; we run a
// few over the same structure, which is what makes the traversal order
// recur and gives context prefetching something to learn).
func genBFS(cfg GenConfig, name string, csr bool) *trace.Trace {
	const pc = 0x410000
	n := cfg.scaled(16000)
	rng := memmodel.NewRNG(cfg.seed())
	g := buildGraph(n, 8, rng)
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed()})

	e := trace.NewEmitter(name)
	sweeps := 4
	if csr {
		c := buildCSR(g, h)
		for s := 0; s < sweeps; s++ {
			for _, v := range g.orders[s%len(g.orders)] {
				emitVisitCSR(e, pc, g, c, v)
			}
			if s == 0 {
				e.EndWarmup()
			}
		}
	} else {
		l := buildListGraph(g, h, rng)
		for s := 0; s < sweeps; s++ {
			dep := -1
			for _, v := range g.orders[s%len(g.orders)] {
				dep = emitVisitList(e, pc, g, l, v, dep)
			}
			if s == 0 {
				e.EndWarmup()
			}
		}
	}
	return e.Finish()
}

// genSSCA2 models the betweenness-centrality kernel: BFS sweeps from
// several roots plus a per-vertex accumulation pass over the score array.
func genSSCA2(cfg GenConfig, name string, csr bool) *trace.Trace {
	const pc = 0x420000
	n := cfg.scaled(12000)
	rng := memmodel.NewRNG(cfg.seed() + 7)
	g := buildGraph(n, 6, rng)
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed() + 7})
	scores := h.AllocArray(n, 8)

	e := trace.NewEmitter(name)
	emitAccum := func() {
		// Back-propagation pass: sequential score array update.
		for i := 0; i < n; i++ {
			d := e.LoadSpec(trace.MemSpec{PC: pc + 0x100, Addr: scores + memmodel.Addr(i*8), Dep: -1,
				Hints: trace.SWHints{Valid: true, TypeID: typeGraphVertex, RefForm: trace.RefIndex}})
			e.Compute(3)
			e.StoreSpec(trace.MemSpec{PC: pc + 0x108, Addr: scores + memmodel.Addr(i*8), Dep: d})
		}
	}
	sweeps := 4
	if csr {
		c := buildCSR(g, h)
		for s := 0; s < sweeps; s++ {
			for _, v := range g.orders[s%len(g.orders)] {
				emitVisitCSR(e, pc, g, c, v)
			}
			emitAccum()
			if s == 0 {
				e.EndWarmup()
			}
		}
	} else {
		l := buildListGraph(g, h, rng)
		for s := 0; s < sweeps; s++ {
			dep := -1
			for _, v := range g.orders[s%len(g.orders)] {
				dep = emitVisitList(e, pc, g, l, v, dep)
			}
			emitAccum()
			if s == 0 {
				e.EndWarmup()
			}
		}
	}
	return e.Finish()
}
