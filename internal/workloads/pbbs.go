package workloads

import (
	"semloc/internal/memmodel"
	"semloc/internal/trace"
)

// PBBS workloads (Table 3): suffixArray, BFS, setCover and KNN from the
// Problem Based Benchmark Suite — mixed regular/irregular kernels.

func init() {
	register(&Workload{
		Name:        "suffixArray",
		Suite:       "pbbs",
		Irregular:   true,
		Description: "prefix-doubling suffix array: sequential scans interleaved with rank-array gathers",
		Generate:    genSuffixArray,
	})
	register(&Workload{
		Name:        "pbbs-bfs",
		Suite:       "pbbs",
		Irregular:   true,
		Description: "PBBS BFS over CSR with a frontier array (flatter degree distribution than Graph500)",
		Generate:    genPBBSBFS,
	})
	register(&Workload{
		Name:        "setCover",
		Suite:       "pbbs",
		Irregular:   true,
		Description: "greedy set cover: bucketed sets, element-membership probes over a large universe",
		Generate:    genSetCover,
	})
	register(&Workload{
		Name:        "knn",
		Suite:       "pbbs",
		Irregular:   true,
		Description: "k-nearest-neighbours over a kd-tree: input-dependent descents plus point-array reads",
		Generate:    genKNN,
	})
	register(&Workload{
		Name:        "convexHull",
		Suite:       "pbbs",
		Irregular:   true,
		Description: "quickhull: shrinking data-dependent partition scans — the paper's negative outlier for context prefetching",
		Generate:    genConvexHull,
	})
}

// genSuffixArray models prefix doubling: each round sorts suffix ranks,
// dominated by (a) a sequential scan of the suffix array and (b) gathers
// rank[sa[i]+k] at data-dependent positions.
func genSuffixArray(cfg GenConfig) *trace.Trace {
	const pc = 0x430000
	n := cfg.scaled(60000)
	rng := memmodel.NewRNG(cfg.seed())
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed()})
	sa := h.AllocArray(n, 8)
	rank := h.AllocArray(n, 8)

	e := trace.NewEmitter("suffixArray")
	perm := rng.Perm(n)
	rounds := 5
	for r := 0; r < rounds; r++ {
		for i := 0; i < n; i++ {
			// Sequential: sa[i].
			sd := e.LoadSpec(trace.MemSpec{PC: pc, Addr: sa + memmodel.Addr(i*8),
				Value: uint64(perm[i]), Dep: -1,
				Hints: trace.SWHints{Valid: true, TypeID: 1, RefForm: trace.RefIndex}})
			// Gather: rank[sa[i]+k] — data-dependent scatter.
			t := (perm[i] + r) % n
			e.LoadSpec(trace.MemSpec{PC: pc + 8, Addr: rank + memmodel.Addr(t*8), Dep: sd,
				Hints: trace.SWHints{Valid: true, TypeID: 2, RefForm: trace.RefIndex}})
			e.Compute(3)
			// Write back the new rank sequentially.
			e.StoreSpec(trace.MemSpec{PC: pc + 16, Addr: rank + memmodel.Addr(i*8), Dep: -1})
			e.Branch(pc+24, i+1 < n)
		}
		if r == 0 {
			e.EndWarmup()
		}
	}
	return e.Finish()
}

// genPBBSBFS is a CSR BFS with a near-uniform degree distribution.
func genPBBSBFS(cfg GenConfig) *trace.Trace {
	const pc = 0x431000
	n := cfg.scaled(14000)
	rng := memmodel.NewRNG(cfg.seed() + 3)
	g := buildGraph(n, 5, rng)
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed() + 3})
	c := buildCSR(g, h)

	e := trace.NewEmitter("pbbs-bfs")
	sweeps := 4
	for s := 0; s < sweeps; s++ {
		for _, v := range g.orders[0] {
			emitVisitCSR(e, pc, g, c, v)
		}
		if s == 0 {
			e.EndWarmup()
		}
	}
	return e.Finish()
}

// genSetCover models the greedy algorithm: repeatedly pick the bucket with
// most uncovered elements and probe each element's covered flag.
func genSetCover(cfg GenConfig) *trace.Trace {
	const pc = 0x432000
	universe := cfg.scaled(80000)
	sets := cfg.scaled(2000)
	setSize := 24
	rng := memmodel.NewRNG(cfg.seed())
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed()})
	covered := h.AllocArray(universe, 1)
	elements := h.AllocArray(sets*setSize, 8)

	// Each set's elements are random universe members (fixed per set).
	members := make([][]int, sets)
	for s := range members {
		members[s] = make([]int, setSize)
		for i := range members[s] {
			members[s][i] = rng.Intn(universe)
		}
	}

	e := trace.NewEmitter("setCover")
	warm := sets / 8
	for s := 0; s < sets; s++ {
		// Scan the set's element list (sequential)...
		for i, m := range members[s] {
			ed := e.LoadSpec(trace.MemSpec{PC: pc, Addr: elements + memmodel.Addr((s*setSize+i)*8),
				Value: uint64(m), Dep: -1,
				Hints: trace.SWHints{Valid: true, TypeID: 1, RefForm: trace.RefIndex}})
			// ...probing each element's covered flag (scatter).
			e.LoadSpec(trace.MemSpec{PC: pc + 8, Addr: covered + memmodel.Addr(m), Dep: ed,
				Hints: trace.SWHints{Valid: true, TypeID: 2, RefForm: trace.RefIndex}})
			e.Compute(2)
			e.Branch(pc+16, i+1 < setSize)
		}
		// Mark the set's elements covered.
		for _, m := range members[s] {
			e.StoreSpec(trace.MemSpec{PC: pc + 24, Addr: covered + memmodel.Addr(m), Dep: -1})
		}
		e.Compute(8)
		if s == warm {
			e.EndWarmup()
		}
	}
	return e.Finish()
}

// genConvexHull models quickhull: recursive partition passes over a point
// array whose live subset shrinks and reshuffles data-dependently each
// level. Scans are sequential but short-lived and never recur over the
// same region with the same structure, which is why the paper reports
// convexHull as the one benchmark where the context prefetcher loses to
// the spatial competitors (§7.3: training speed for simple patterns).
func genConvexHull(cfg GenConfig) *trace.Trace {
	const pc = 0x434000
	n := cfg.scaled(120000)
	rng := memmodel.NewRNG(cfg.seed())
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed()})
	points := h.AllocArray(n, 16)
	idx := h.AllocArray(n, 8)

	e := trace.NewEmitter("convexHull")
	// Level 0 scans everything; each level keeps a pseudo-random ~40%.
	live := make([]int, n)
	for i := range live {
		live[i] = i
	}
	level := 0
	for len(live) > 64 {
		for k, p := range live {
			// Index load (sequential over the compacted index array)...
			id := e.LoadSpec(trace.MemSpec{PC: pc, Addr: idx + memmodel.Addr(k*8),
				Value: uint64(p), Dep: -1,
				Hints: trace.SWHints{Valid: true, TypeID: 1, RefForm: trace.RefIndex}})
			// ...then the point itself (gather over the original array).
			e.LoadSpec(trace.MemSpec{PC: pc + 8, Addr: points + memmodel.Addr(p*16), Dep: id,
				Hints: trace.SWHints{Valid: true, TypeID: 2, RefForm: trace.RefIndex}})
			e.Compute(4) // cross products
			e.Branch(pc+16, rng.Intn(5) != 0)
		}
		// Compact: keep a data-dependent subset and rewrite the index.
		var next []int
		for _, p := range live {
			if rng.Float64() < 0.4 {
				next = append(next, p)
				e.StoreSpec(trace.MemSpec{PC: pc + 24, Addr: idx + memmodel.Addr(len(next)*8), Dep: -1})
			}
		}
		live = next
		e.Compute(16)
		if level == 0 {
			e.EndWarmup()
		}
		level++
	}
	return e.Finish()
}

// genKNN descends a kd-tree per query and scans candidate point buckets.
func genKNN(cfg GenConfig) *trace.Trace {
	const pc = 0x433000
	points := cfg.scaled(32768)
	queries := cfg.scaled(8000)
	rng := memmodel.NewRNG(cfg.seed())
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed()})
	treeNodes := ShuffledLayout(h, rng, points, treeNodeSize, 64)
	pointArr := h.AllocArray(points, 32)

	e := trace.NewEmitter("knn")
	warm := queries / 8
	for q := 0; q < queries; q++ {
		key := rng.Intn(points)
		// kd-tree descent (like BST but with coordinate loads).
		lo, hi := 0, points
		dep := -1
		for lo < hi {
			mid := (lo + hi) / 2
			node := treeNodes[mid]
			kd := e.LoadSpec(trace.MemSpec{PC: pc, Addr: node + treeKeyOff, Reg: uint64(key), Dep: dep,
				Hints: derefHint(typeTreeNode)})
			e.Compute(2)
			goLeft := key < mid
			var off memmodel.Addr
			if goLeft {
				off = treeLeftOff
				hi = mid
			} else {
				off = treeRightOff
				lo = mid + 1
			}
			var next memmodel.Addr
			if lo < hi {
				next = treeNodes[(lo+hi)/2]
			}
			dep = e.LoadSpec(trace.MemSpec{PC: pc + 16, Addr: node + off, Value: uint64(next),
				Reg: uint64(key), Dep: kd, Hints: ptrHint(typeTreeNode, uint16(off))})
			e.Branch(pc+24, goLeft)
		}
		// Leaf bucket: scan 8 nearby points (spatially local).
		base := key &^ 7
		for i := 0; i < 8; i++ {
			p := (base + i) % points
			e.LoadSpec(trace.MemSpec{PC: pc + 32, Addr: pointArr + memmodel.Addr(p*32), Dep: -1,
				Hints: trace.SWHints{Valid: true, TypeID: 3, RefForm: trace.RefIndex}})
			e.Compute(4)
		}
		if q == warm {
			e.EndWarmup()
		}
	}
	return e.Finish()
}
