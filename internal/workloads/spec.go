package workloads

import (
	"semloc/internal/memmodel"
	"semloc/internal/trace"
)

// SPEC CPU2006 proxies (Table 3). The paper runs the 16 benchmarks that
// clang could build; each proxy below reproduces the published dominant
// memory behaviour of its benchmark — the mixture of streaming, strided,
// gathered and pointer-chasing traffic plus its compute/branch density —
// not its computation. Regular benchmarks (libquantum, lbm, milc, hmmer)
// must favour every prefetcher; pointer-heavy ones (mcf, omnetpp) must
// favour only context prefetching; compute-bound ones (povray, gobmk,
// sjeng, namd) must be largely insensitive. See DESIGN.md.

func init() {
	for _, s := range []struct {
		name string
		irr  bool
		desc string
		gen  func(GenConfig) *trace.Trace
	}{
		{"mcf", true, "network simplex: arc/node pointer chases over a large in-memory network", genMCF},
		{"omnetpp", true, "discrete event simulation: event-heap pops and linked message-queue walks", genOmnetpp},
		{"astar", true, "grid pathfinding: open-list heap plus neighbour probes with partial spatial locality", genAstar},
		{"libquantum", false, "quantum register simulation: long unit-stride sweeps over the amplitude array", genLibquantum},
		{"lbm", false, "lattice-Boltzmann: multi-stream stencil sweeps with large fixed strides", genLBM},
		{"milc", false, "lattice QCD: strided sweeps over 4D field arrays", genMILC},
		{"hmmer", false, "profile HMM Viterbi: row-streaming dynamic-programming recurrences", genHmmer},
		{"bzip2", false, "block compression: in-block scattered reads plus sequential output", genBzip2},
		{"h264ref", false, "video encoding: 2D motion-search block accesses (dense spatial regions)", genH264},
		{"sphinx3", true, "speech recognition: streamed gaussian scoring plus irregular HMM lattice updates", genSphinx3},
		{"soplex", true, "simplex LP: sparse column scans with data-dependent row gathers", genSoplex},
		{"dealII", false, "finite elements: CSR matrix-vector products with clustered gathers", genDealII},
		{"namd", false, "molecular dynamics: neighbour-list gathers over spatially clustered atoms", genNamd},
		{"gobmk", false, "go engine: compute/branch-bound board evaluation over small arrays", genGobmk},
		{"sjeng", false, "chess engine: independent transposition-table probes over a huge hash table", genSjeng},
		{"povray", false, "ray tracing: compute-dominated with shallow BVH descents", genPovray},
	} {
		register(&Workload{Name: s.name, Suite: "spec2006", Irregular: s.irr, Description: s.desc, Generate: s.gen})
	}
}

// --- the proxies ---

func genMCF(cfg GenConfig) *trace.Trace {
	const pc = 0x440000
	arcs := cfg.scaled(60000)
	rng := memmodel.NewRNG(cfg.seed())
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed()})
	// Arc records in construction order with jitter; the simplex pricing
	// loop walks them in a fixed order chasing tail/head node pointers.
	arcNodes := SparseShuffledLayout(h, rng, arcs, 64, 16, 0.45)
	nodeRecs := SparseShuffledLayout(h, rng, arcs/4, 64, 32, 0.45)

	e := trace.NewEmitter("mcf")
	passes := 4
	for p := 0; p < passes; p++ {
		// Each pricing pass starts at a different pivot (the simplex basis
		// changes between iterations), so region entry points never recur
		// even though the chase structure itself is fixed.
		start := (p * 7919) % arcs
		dep := -1
		for k := 0; k < arcs; k++ {
			i := (start + k) % arcs
			var next memmodel.Addr
			if i+1 < arcs {
				next = arcNodes[i+1]
			}
			// Arc record (chained walk).
			dep = e.LoadSpec(trace.MemSpec{PC: pc, Addr: arcNodes[i], Value: uint64(next), Dep: dep,
				Hints: ptrHint(typeArcNode, 0)})
			// Tail node potential (scattered pointer dereference).
			t := (i * 2654435761) % len(nodeRecs)
			e.LoadSpec(trace.MemSpec{PC: pc + 8, Addr: nodeRecs[t], Dep: dep,
				Hints: ptrHint(typeArcNode, 16)})
			e.Compute(3)
			e.Branch(pc+16, k%16 != 15)
		}
		if p == 0 {
			e.EndWarmup()
		}
	}
	return e.Finish()
}

func genOmnetpp(cfg GenConfig) *trace.Trace {
	const pc = 0x441000
	events := cfg.scaled(30000)
	modules := 512
	rng := memmodel.NewRNG(cfg.seed())
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed()})
	heapArr := h.AllocArray(4096, 16)
	msgNodes := SparseShuffledLayout(h, rng, 8192, 64, 32, 0.45)
	moduleRecs := SparseShuffledLayout(h, rng, modules, 128, 16, 0.45)

	e := trace.NewEmitter("omnetpp")
	warm := events / 8
	for ev := 0; ev < events; ev++ {
		// Event-heap pop: root plus sift-down path.
		dep := -1
		for lvl := 0; lvl < 8; lvl++ {
			slot := ((ev + lvl*37) % 4095) >> uint(7-lvl%8)
			dep = e.LoadSpec(trace.MemSpec{PC: pc, Addr: heapArr + memmodel.Addr(slot*16), Dep: dep,
				Hints: trace.SWHints{Valid: true, TypeID: typeHeapNode, RefForm: trace.RefIndex}})
			e.Compute(2)
			e.Branch(pc+8, lvl < 7)
		}
		// Message chain at the destination module: a short pointer walk.
		m := rng.Intn(modules)
		e.LoadSpec(trace.MemSpec{PC: pc + 16, Addr: moduleRecs[m], Dep: dep,
			Hints: ptrHint(typeEventNode, 8)})
		cd := dep
		start := rng.Intn(len(msgNodes) - 4)
		for hopi := 0; hopi < 3; hopi++ {
			cd = e.LoadSpec(trace.MemSpec{PC: pc + 24, Addr: msgNodes[start+hopi],
				Value: uint64(msgNodes[start+hopi+1]), Dep: cd,
				Hints: ptrHint(typeEventNode, 0)})
			e.Compute(3)
		}
		e.StoreSpec(trace.MemSpec{PC: pc + 32, Addr: heapArr + memmodel.Addr((ev%4096)*16), Dep: -1})
		e.Compute(10)
		if ev == warm {
			e.EndWarmup()
		}
	}
	return e.Finish()
}

func genAstar(cfg GenConfig) *trace.Trace {
	const pc = 0x442000
	side := 256
	expansions := cfg.scaled(25000)
	rng := memmodel.NewRNG(cfg.seed())
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed()})
	grid := h.AllocArray(side*side, 16)
	openHeap := h.AllocArray(8192, 16)

	e := trace.NewEmitter("astar")
	warm := expansions / 8
	x, y := side/2, side/2
	for ex := 0; ex < expansions; ex++ {
		// Pop from the open list.
		dep := e.LoadSpec(trace.MemSpec{PC: pc, Addr: openHeap + memmodel.Addr((ex%8192)*16), Dep: -1,
			Hints: trace.SWHints{Valid: true, TypeID: typeHeapNode, RefForm: trace.RefIndex}})
		e.Compute(3)
		// Wandering frontier: neighbours share spatial locality.
		x += rng.Intn(3) - 1
		y += rng.Intn(3) - 1
		x, y = (x+side)%side, (y+side)%side
		for d := 0; d < 4; d++ {
			nx, ny := x, y
			switch d {
			case 0:
				nx++
			case 1:
				nx--
			case 2:
				ny++
			case 3:
				ny--
			}
			nx, ny = (nx+side)%side, (ny+side)%side
			cell := memmodel.Addr((ny*side + nx) * 16)
			e.LoadSpec(trace.MemSpec{PC: pc + 8, Addr: grid + cell, Dep: dep,
				Hints: trace.SWHints{Valid: true, TypeID: 1, RefForm: trace.RefIndex}})
			e.Compute(4)
			e.Branch(pc+16, d < 3)
		}
		e.StoreSpec(trace.MemSpec{PC: pc + 24, Addr: openHeap + memmodel.Addr(((ex*7)%8192)*16), Dep: -1})
		if ex == warm {
			e.EndWarmup()
		}
	}
	return e.Finish()
}

func genLibquantum(cfg GenConfig) *trace.Trace {
	const pc = 0x443000
	n := cfg.scaled(120000)
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed()})
	reg := h.AllocArray(n, 16)
	e := trace.NewEmitter("libquantum")
	for gate := 0; gate < 4; gate++ {
		for i := 0; i < n; i++ {
			d := e.LoadSpec(trace.MemSpec{PC: pc, Addr: reg + memmodel.Addr(i*16), Dep: -1,
				Hints: trace.SWHints{Valid: true, TypeID: 1, RefForm: trace.RefIndex}})
			e.Compute(2)
			e.StoreSpec(trace.MemSpec{PC: pc + 8, Addr: reg + memmodel.Addr(i*16), Dep: d})
			e.Branch(pc+16, i+1 < n)
		}
		if gate == 0 {
			e.EndWarmup()
		}
	}
	return e.Finish()
}

func genLBM(cfg GenConfig) *trace.Trace {
	const pc = 0x444000
	cells := cfg.scaled(40000)
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed()})
	src := h.AllocArray(cells*8, 8)
	dst := h.AllocArray(cells*8, 8)
	e := trace.NewEmitter("lbm")
	// Streaming step: several distance vectors with fixed large strides.
	offsets := []int{0, 1, 40, 41, 1600, 1601, 1640}
	for sweep := 0; sweep < 3; sweep++ {
		for i := 0; i < cells; i++ {
			for k, off := range offsets {
				e.LoadSpec(trace.MemSpec{PC: pc + uint64(k*8), Addr: src + memmodel.Addr(((i+off)%cells)*64), Dep: -1,
					Hints: trace.SWHints{Valid: true, TypeID: 1, RefForm: trace.RefIndex}})
			}
			e.Compute(12)
			e.StoreSpec(trace.MemSpec{PC: pc + 0x80, Addr: dst + memmodel.Addr(i*64), Dep: -1})
			e.Branch(pc+0x88, i+1 < cells)
		}
		if sweep == 0 {
			e.EndWarmup()
		}
	}
	return e.Finish()
}

func genMILC(cfg GenConfig) *trace.Trace {
	const pc = 0x445000
	sites := cfg.scaled(30000)
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed()})
	field := h.AllocArray(sites, 128)
	e := trace.NewEmitter("milc")
	strides := []int{1, 16, 256, 4096}
	for dir := 0; dir < len(strides); dir++ {
		st := strides[dir]
		for i := 0; i < sites; i++ {
			e.LoadSpec(trace.MemSpec{PC: pc + uint64(dir*16), Addr: field + memmodel.Addr((i*128)%(sites*128)), Dep: -1,
				Hints: trace.SWHints{Valid: true, TypeID: 1, RefForm: trace.RefIndex}})
			e.LoadSpec(trace.MemSpec{PC: pc + uint64(dir*16) + 8, Addr: field + memmodel.Addr(((i+st)%sites)*128), Dep: -1,
				Hints: trace.SWHints{Valid: true, TypeID: 2, RefForm: trace.RefIndex}})
			e.Compute(20) // SU(3) matrix multiply
			e.Branch(pc+0x100, i+1 < sites)
		}
		if dir == 0 {
			e.EndWarmup()
		}
	}
	return e.Finish()
}

func genHmmer(cfg GenConfig) *trace.Trace {
	const pc = 0x446000
	cols := cfg.scaled(4000)
	rows := 60
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed()})
	dp := h.AllocArray(3*(cols+1), 8)
	model := h.AllocArray(rows*16, 8)
	e := trace.NewEmitter("hmmer")
	for r := 0; r < rows; r++ {
		for i := 0; i < cols; i++ {
			// DP recurrence: three sequential rows plus model coefficients.
			e.LoadSpec(trace.MemSpec{PC: pc, Addr: dp + memmodel.Addr(i*8), Dep: -1,
				Hints: trace.SWHints{Valid: true, TypeID: 1, RefForm: trace.RefIndex}})
			e.LoadSpec(trace.MemSpec{PC: pc + 8, Addr: dp + memmodel.Addr((cols+1+i)*8), Dep: -1})
			e.LoadSpec(trace.MemSpec{PC: pc + 16, Addr: model + memmodel.Addr((r*16)*8), Dep: -1})
			e.Compute(6)
			e.StoreSpec(trace.MemSpec{PC: pc + 24, Addr: dp + memmodel.Addr((2*(cols+1)+i)*8), Dep: -1})
			e.Branch(pc+32, i+1 < cols)
		}
		if r == 3 {
			e.EndWarmup()
		}
	}
	return e.Finish()
}

func genBzip2(cfg GenConfig) *trace.Trace {
	const pc = 0x447000
	block := cfg.scaled(90000)
	rng := memmodel.NewRNG(cfg.seed())
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed()})
	data := h.AllocArray(block, 1)
	ptrArr := h.AllocArray(block, 4)
	e := trace.NewEmitter("bzip2")
	passes := 3
	for p := 0; p < passes; p++ {
		for i := 0; i < block; i += 2 {
			// Sorting phase: pointer array sequential, data scattered
			// within the block window.
			pd := e.LoadSpec(trace.MemSpec{PC: pc, Addr: ptrArr + memmodel.Addr(i*4), Dep: -1,
				Hints: trace.SWHints{Valid: true, TypeID: 1, RefForm: trace.RefIndex}})
			t := rng.Intn(block)
			e.LoadSpec(trace.MemSpec{PC: pc + 8, Addr: data + memmodel.Addr(t), Dep: pd,
				Hints: trace.SWHints{Valid: true, TypeID: 2, RefForm: trace.RefIndex}})
			e.Compute(5)
			e.Branch(pc+16, rng.Intn(4) != 0)
		}
		if p == 0 {
			e.EndWarmup()
		}
	}
	return e.Finish()
}

func genH264(cfg GenConfig) *trace.Trace {
	const pc = 0x448000
	width := 320
	mbs := cfg.scaled(6000)
	rng := memmodel.NewRNG(cfg.seed())
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed()})
	frame := h.AllocArray(width*width, 1)
	e := trace.NewEmitter("h264ref")
	warm := mbs / 8
	for mb := 0; mb < mbs; mb++ {
		// Motion search: scan a 16x16 window at a jittered position —
		// dense spatial footprints that SMS captures well.
		bx, by := rng.Intn(width-48), rng.Intn(width-48)
		for row := 0; row < 16; row++ {
			base := frame + memmodel.Addr((by+row)*width+bx)
			e.LoadSpec(trace.MemSpec{PC: pc, Addr: base, Dep: -1,
				Hints: trace.SWHints{Valid: true, TypeID: 1, RefForm: trace.RefIndex}})
			e.LoadSpec(trace.MemSpec{PC: pc + 8, Addr: base + 8, Dep: -1})
			e.Compute(8) // SAD accumulation
			e.Branch(pc+16, row < 15)
		}
		e.Compute(20)
		if mb == warm {
			e.EndWarmup()
		}
	}
	return e.Finish()
}

func genSphinx3(cfg GenConfig) *trace.Trace {
	const pc = 0x449000
	gaussians := cfg.scaled(30000)
	states := 4096
	rng := memmodel.NewRNG(cfg.seed())
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed()})
	mixture := h.AllocArray(gaussians, 64)
	lattice := SparseShuffledLayout(h, rng, states, 64, 32, 0.45)
	e := trace.NewEmitter("sphinx3")
	frames := 4
	for f := 0; f < frames; f++ {
		// Gaussian scoring: streaming.
		for i := 0; i < gaussians; i++ {
			e.LoadSpec(trace.MemSpec{PC: pc, Addr: mixture + memmodel.Addr(i*64), Dep: -1,
				Hints: trace.SWHints{Valid: true, TypeID: 1, RefForm: trace.RefIndex}})
			e.Compute(6)
			e.Branch(pc+8, i+1 < gaussians)
		}
		// HMM lattice update: irregular pointer hops among active states.
		dep := -1
		for i := 0; i < states; i++ {
			s := (i*769 + f*13) % states
			dep = e.LoadSpec(trace.MemSpec{PC: pc + 16, Addr: lattice[s],
				Value: uint64(lattice[(s+769)%states]), Dep: dep,
				Hints: ptrHint(typeEventNode, 0)})
			e.Compute(4)
		}
		if f == 0 {
			e.EndWarmup()
		}
	}
	return e.Finish()
}

func genSoplex(cfg GenConfig) *trace.Trace {
	const pc = 0x44a000
	cols := cfg.scaled(3000)
	nnzPerCol := 20
	rng := memmodel.NewRNG(cfg.seed())
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed()})
	values := h.AllocArray(cols*nnzPerCol, 8)
	rowIdx := h.AllocArray(cols*nnzPerCol, 8)
	x := h.AllocArray(cols*8, 8)
	rows := make([]int, cols*nnzPerCol)
	for i := range rows {
		rows[i] = rng.Intn(cols * 8)
	}
	e := trace.NewEmitter("soplex")
	passes := 4
	for p := 0; p < passes; p++ {
		for c := 0; c < cols; c++ {
			for k := 0; k < nnzPerCol; k++ {
				i := c*nnzPerCol + k
				e.LoadSpec(trace.MemSpec{PC: pc, Addr: values + memmodel.Addr(i*8), Dep: -1,
					Hints: trace.SWHints{Valid: true, TypeID: 1, RefForm: trace.RefIndex}})
				id := e.LoadSpec(trace.MemSpec{PC: pc + 8, Addr: rowIdx + memmodel.Addr(i*8),
					Value: uint64(rows[i]), Dep: -1,
					Hints: trace.SWHints{Valid: true, TypeID: 2, RefForm: trace.RefIndex}})
				e.LoadSpec(trace.MemSpec{PC: pc + 16, Addr: x + memmodel.Addr(rows[i]*8), Dep: id,
					Hints: trace.SWHints{Valid: true, TypeID: 3, RefForm: trace.RefIndex}})
				e.Compute(3)
				e.Branch(pc+24, k+1 < nnzPerCol)
			}
		}
		if p == 0 {
			e.EndWarmup()
		}
	}
	return e.Finish()
}

func genDealII(cfg GenConfig) *trace.Trace {
	const pc = 0x44b000
	rowsN := cfg.scaled(12000)
	nnz := 9 // FEM stencil-like sparsity: clustered columns
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed()})
	values := h.AllocArray(rowsN*nnz, 8)
	vec := h.AllocArray(rowsN, 8)
	e := trace.NewEmitter("dealII")
	passes := 4
	for p := 0; p < passes; p++ {
		for r := 0; r < rowsN; r++ {
			for k := 0; k < nnz; k++ {
				e.LoadSpec(trace.MemSpec{PC: pc, Addr: values + memmodel.Addr((r*nnz+k)*8), Dep: -1,
					Hints: trace.SWHints{Valid: true, TypeID: 1, RefForm: trace.RefIndex}})
				// Clustered gather: column within ±32 of the row.
				cI := r + (k-nnz/2)*4
				if cI < 0 {
					cI = 0
				}
				if cI >= rowsN {
					cI = rowsN - 1
				}
				e.LoadSpec(trace.MemSpec{PC: pc + 8, Addr: vec + memmodel.Addr(cI*8), Dep: -1,
					Hints: trace.SWHints{Valid: true, TypeID: 2, RefForm: trace.RefIndex}})
				e.Compute(4)
			}
			e.StoreSpec(trace.MemSpec{PC: pc + 16, Addr: vec + memmodel.Addr(r*8), Dep: -1})
			e.Branch(pc+24, r+1 < rowsN)
		}
		if p == 0 {
			e.EndWarmup()
		}
	}
	return e.Finish()
}

func genNamd(cfg GenConfig) *trace.Trace {
	const pc = 0x44c000
	atoms := cfg.scaled(20000)
	neighbors := 12
	rng := memmodel.NewRNG(cfg.seed())
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed()})
	coords := h.AllocArray(atoms, 32)
	nbrIdx := h.AllocArray(atoms*neighbors, 8)
	nbrs := make([]int, atoms*neighbors)
	for a := 0; a < atoms; a++ {
		for k := 0; k < neighbors; k++ {
			// Spatially clustered neighbours.
			t := a + rng.Intn(65) - 32
			if t < 0 {
				t = 0
			}
			if t >= atoms {
				t = atoms - 1
			}
			nbrs[a*neighbors+k] = t
		}
	}
	e := trace.NewEmitter("namd")
	steps := 3
	for s := 0; s < steps; s++ {
		for a := 0; a < atoms; a++ {
			for k := 0; k < neighbors; k++ {
				i := a*neighbors + k
				id := e.LoadSpec(trace.MemSpec{PC: pc, Addr: nbrIdx + memmodel.Addr(i*8),
					Value: uint64(nbrs[i]), Dep: -1,
					Hints: trace.SWHints{Valid: true, TypeID: 1, RefForm: trace.RefIndex}})
				e.LoadSpec(trace.MemSpec{PC: pc + 8, Addr: coords + memmodel.Addr(nbrs[i]*32), Dep: id,
					Hints: trace.SWHints{Valid: true, TypeID: 2, RefForm: trace.RefIndex}})
				e.Compute(10) // force computation
			}
			e.StoreSpec(trace.MemSpec{PC: pc + 16, Addr: coords + memmodel.Addr(a*32), Dep: -1})
			e.Branch(pc+24, a+1 < atoms)
		}
		if s == 0 {
			e.EndWarmup()
		}
	}
	return e.Finish()
}

func genGobmk(cfg GenConfig) *trace.Trace {
	const pc = 0x44d000
	evals := cfg.scaled(20000)
	rng := memmodel.NewRNG(cfg.seed())
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed()})
	board := h.AllocArray(512, 8) // tiny, cache-resident
	e := trace.NewEmitter("gobmk")
	warm := evals / 8
	for ev := 0; ev < evals; ev++ {
		for i := 0; i < 12; i++ {
			e.LoadSpec(trace.MemSpec{PC: pc, Addr: board + memmodel.Addr(rng.Intn(512)*8), Dep: -1,
				Hints: trace.SWHints{Valid: true, TypeID: 1, RefForm: trace.RefIndex}})
			e.Compute(8)
			e.Branch(pc+8, rng.Intn(3) != 0)
		}
		e.Compute(40)
		if ev == warm {
			e.EndWarmup()
		}
	}
	return e.Finish()
}

func genSjeng(cfg GenConfig) *trace.Trace {
	const pc = 0x44e000
	probes := cfg.scaled(40000)
	ttSize := 1 << 20 // 1M-entry transposition table: random probes
	rng := memmodel.NewRNG(cfg.seed())
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed()})
	tt := h.AllocArray(ttSize, 16)
	e := trace.NewEmitter("sjeng")
	warm := probes / 8
	for p := 0; p < probes; p++ {
		slot := rng.Intn(ttSize)
		e.LoadSpec(trace.MemSpec{PC: pc, Addr: tt + memmodel.Addr(slot*16), Reg: uint64(slot), Dep: -1,
			Hints: trace.SWHints{Valid: true, TypeID: 1, RefForm: trace.RefIndex}})
		e.Compute(15) // move generation / evaluation between probes
		for b := 0; b < 5; b++ {
			e.Branch(pc+8+uint64(b*4), rng.Intn(2) == 0)
		}
		if p == warm {
			e.EndWarmup()
		}
	}
	return e.Finish()
}

func genPovray(cfg GenConfig) *trace.Trace {
	const pc = 0x44f000
	raysN := cfg.scaled(12000)
	rng := memmodel.NewRNG(cfg.seed())
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: cfg.seed()})
	bvh := SparseShuffledLayout(h, rng, 4096, 64, 64, 0.45) // shallow, mostly cached
	objects := h.AllocArray(2048, 128)
	e := trace.NewEmitter("povray")
	warm := raysN / 8
	for ray := 0; ray < raysN; ray++ {
		dep := -1
		// Shallow BVH descent (log2(4096) = 12, mostly cache hits).
		idx := 0
		for lvl := 0; lvl < 12; lvl++ {
			dep = e.LoadSpec(trace.MemSpec{PC: pc, Addr: bvh[idx%4096], Dep: dep,
				Hints: ptrHint(typeTreeNode, 0)})
			e.Compute(12) // box intersection math
			left := rng.Intn(2) == 0
			if left {
				idx = 2*idx + 1
			} else {
				idx = 2*idx + 2
			}
			e.Branch(pc+8, left)
		}
		e.LoadSpec(trace.MemSpec{PC: pc + 16, Addr: objects + memmodel.Addr(rng.Intn(2048)*128), Dep: dep})
		e.Compute(60) // shading
		if ray == warm {
			e.EndWarmup()
		}
	}
	return e.Finish()
}
