package harness

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"semloc/internal/memmodel"
	"semloc/internal/prefetch"
	"semloc/internal/sim"
	"semloc/internal/trace"
)

func testTrace(n int) *trace.Trace {
	e := trace.NewEmitter("harness-test")
	for i := 0; i < n; i++ {
		e.Load(0x400+uint64(i%8)*4, memmodel.Addr(0x100000+i*64))
		e.Compute(2)
	}
	return e.Finish()
}

func TestRunCompletes(t *testing.T) {
	tr := testTrace(2000)
	res, err := Run(context.Background(), tr, prefetch.NewNone(), sim.DefaultConfig(),
		RunConfig{StallTimeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.CPU.Loads != 2000 {
		t.Errorf("loads = %d, want 2000", res.CPU.Loads)
	}
}

// panicPrefetcher panics on its first access, standing in for any
// library-side bug or resource exhaustion inside a run.
type panicPrefetcher struct{ value any }

func (p *panicPrefetcher) Name() string                                     { return "panicking" }
func (p *panicPrefetcher) OnAccess(a *prefetch.Access, iss prefetch.Issuer) { panic(p.value) }

func TestRunRecoversPanic(t *testing.T) {
	tr := testTrace(100)
	_, err := Run(context.Background(), tr, &panicPrefetcher{value: "boom"}, sim.DefaultConfig(), RunConfig{})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "boom" {
		t.Errorf("panic value = %v, want boom", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic error carries no stack")
	}
	if IsCancelled(err) {
		t.Error("panic classified as cancellation")
	}
}

func TestRunRecoversTypedPanic(t *testing.T) {
	tr := testTrace(100)
	heapErr := &memmodel.HeapExhaustedError{Size: 64, Allocated: 1 << 20}
	_, err := Run(context.Background(), tr, &panicPrefetcher{value: heapErr}, sim.DefaultConfig(), RunConfig{})
	var he *memmodel.HeapExhaustedError
	if !errors.As(err, &he) {
		t.Fatalf("err = %v, want to unwrap to *HeapExhaustedError", err)
	}
	if he.Size != 64 {
		t.Errorf("unwrapped Size = %d, want 64", he.Size)
	}
}

// stallPrefetcher blocks inside a single access until released: the
// deliberately-stalled-run test hook for the watchdog.
type stallPrefetcher struct{ release chan struct{} }

func (p *stallPrefetcher) Name() string                                     { return "stalling" }
func (p *stallPrefetcher) OnAccess(a *prefetch.Access, iss prefetch.Issuer) { <-p.release }

func TestWatchdogAbortsStalledRun(t *testing.T) {
	tr := testTrace(100)
	pf := &stallPrefetcher{release: make(chan struct{})}
	t.Cleanup(func() { close(pf.release) })

	start := time.Now()
	_, err := Run(context.Background(), tr, pf, sim.DefaultConfig(), RunConfig{
		StallTimeout:  50 * time.Millisecond,
		CheckInterval: 5 * time.Millisecond,
		Grace:         50 * time.Millisecond,
	})
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StallError", err)
	}
	if se.Workload != "harness-test" || se.Prefetcher != "stalling" {
		t.Errorf("diagnostic snapshot names %s/%s", se.Workload, se.Prefetcher)
	}
	if se.Stalled < 50*time.Millisecond {
		t.Errorf("stall duration %v below timeout", se.Stalled)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("watchdog took %v to abort", elapsed)
	}
	if !IsStall(err) {
		t.Error("IsStall = false for watchdog abort")
	}
	if IsCancelled(err) {
		t.Error("watchdog abort classified as cancellation")
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr := testTrace(5000)
	_, err := Run(ctx, tr, prefetch.NewNone(), sim.DefaultConfig(), RunConfig{})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !IsCancelled(err) {
		t.Errorf("IsCancelled = false for %v", err)
	}
	if !strings.Contains(err.Error(), "cancelled") {
		t.Errorf("error %q does not mention cancellation", err)
	}
}

func TestSafely(t *testing.T) {
	if err := Safely(func() error { return nil }); err != nil {
		t.Errorf("Safely(nil fn) = %v", err)
	}
	sentinel := errors.New("plain failure")
	if err := Safely(func() error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("Safely passes through errors, got %v", err)
	}
	err := Safely(func() error { panic("generator exploded") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Safely(panic) = %v, want *PanicError", err)
	}
}

// TestWithTimeout: the deadline surfaces as a typed *TimeoutError through
// the run's error chain, classified as a failure rather than a
// cancellation (the -timeout exit-code contract).
func TestWithTimeout(t *testing.T) {
	ctx, cancel := WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	cause := context.Cause(ctx)
	if !IsTimeout(cause) {
		t.Fatalf("cause %v is not a *TimeoutError", cause)
	}
	if IsCancelled(cause) {
		t.Error("timeout misclassified as cancellation")
	}

	_, err := Run(ctx, testTrace(100000), &prefetch.None{}, sim.DefaultConfig(), RunConfig{})
	if err == nil {
		t.Fatal("run under an expired deadline succeeded")
	}
	if !IsTimeout(err) {
		t.Errorf("run error %v does not unwrap to *TimeoutError", err)
	}
	if IsCancelled(err) {
		t.Error("timed-out run misclassified as cancelled")
	}
	if !strings.Contains(err.Error(), "-timeout") {
		t.Errorf("error %q does not mention the -timeout budget", err)
	}

	// Disabled deadline: ctx passes through untouched.
	base := context.Background()
	same, cancel0 := WithTimeout(base, 0)
	defer cancel0()
	if same != base {
		t.Error("WithTimeout(ctx, 0) wrapped the context")
	}
}
