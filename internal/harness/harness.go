// Package harness makes simulation runs cancellable, bounded and
// crash-proof. It is the failure-model layer between the pure simulation
// libraries (sim, cpu, cache, core) and anything that launches runs in
// bulk (cmd/experiments, cmd/sweep, cmd/prefetchsim, exp.Runner):
//
//   - Cancellation: Run threads its context into the simulation loop,
//     which checks it every few thousand records, so SIGINT or a parent
//     deadline stops an in-flight run promptly.
//   - Watchdog: an optional supervisor samples the core model's
//     retired-instruction counter and aborts the run with a diagnostic
//     *StallError when it stops advancing for StallTimeout, instead of
//     letting a livelocked model hang the process forever.
//   - Panic containment: a recover guard converts any library-side panic
//     (heap exhaustion, configuration MustNew, index bugs) into a typed
//     *PanicError, so one bad (workload, prefetcher) pair fails its own
//     run without killing a whole sweep.
//
// The package also defines the exit-code contract shared by the
// run-oriented commands (see DESIGN.md, "Failure model").
package harness

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"semloc/internal/prefetch"
	"semloc/internal/sim"
	"semloc/internal/trace"
)

// Exit codes shared by cmd/experiments, cmd/sweep and cmd/prefetchsim.
// They are part of the documented interface: scripts driving sweeps rely
// on distinguishing "user cancelled" from "a run failed".
const (
	// ExitOK: every requested run completed.
	ExitOK = 0
	// ExitRunFailed: at least one run failed (simulation error, recovered
	// panic, or watchdog abort).
	ExitRunFailed = 1
	// ExitUsage: invalid flags or configuration; nothing was run.
	ExitUsage = 2
	// ExitCancelled: SIGINT/SIGTERM (or a parent context) cancelled
	// in-flight runs; partial results may have been printed.
	ExitCancelled = 3
)

// RunConfig bounds one simulation run.
type RunConfig struct {
	// StallTimeout aborts the run when the retired-instruction counter
	// makes no forward progress for this long. Zero disables the watchdog.
	StallTimeout time.Duration
	// CheckInterval is the watchdog sampling period. Zero derives it from
	// StallTimeout (a quarter, clamped to [10ms, 1s]).
	CheckInterval time.Duration
	// Grace is how long an aborted or cancelled run is given to notice the
	// cancellation before its goroutine is abandoned (it may be wedged
	// inside a single access, where cooperative checks cannot reach).
	// Zero means one second.
	Grace time.Duration
}

// DefaultRunConfig returns the watchdog configuration the commands use
// when supervision is requested without an explicit timeout.
func DefaultRunConfig() RunConfig {
	return RunConfig{StallTimeout: 2 * time.Minute}
}

// PanicError is a panic recovered at the harness boundary, carrying the
// panic value and the stack of the panicking goroutine.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the formatted stack trace captured at recovery.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// Unwrap exposes the panic value when it is itself an error (e.g. a
// *memmodel.HeapExhaustedError or a config error wrapping ErrBadConfig),
// so errors.Is/As see through the recovery.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// TimeoutError is the cancellation cause installed by WithTimeout: the
// whole invocation exceeded its -timeout budget. Unlike a user interrupt
// it is a failure of the runs (ExitRunFailed), not a cancellation
// (ExitCancelled) — a script that sets a deadline wants a non-zero,
// non-"user pressed ^C" exit when the deadline fires.
type TimeoutError struct {
	// Limit is the wall-clock budget that was exceeded.
	Limit time.Duration
}

// Error implements error.
func (e *TimeoutError) Error() string {
	return fmt.Sprintf("harness: exceeded the %v -timeout budget", e.Limit)
}

// IsTimeout reports whether err stems from a WithTimeout deadline.
func IsTimeout(err error) bool {
	var te *TimeoutError
	return errors.As(err, &te)
}

// WithTimeout derives a context that cancels after d with a *TimeoutError
// cause, so runs aborted by the deadline fail with a typed, descriptive
// error (IsTimeout) instead of a bare context.DeadlineExceeded. d <= 0
// returns ctx unchanged with a no-op cancel.
func WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeoutCause(ctx, d, &TimeoutError{Limit: d})
}

// StallError is the watchdog's diagnostic snapshot of a run that stopped
// making forward progress.
type StallError struct {
	// Workload and Prefetcher identify the stalled run.
	Workload, Prefetcher string
	// Instructions is the last retired-instruction count observed.
	Instructions uint64
	// Stalled is how long the counter had not advanced when the watchdog
	// fired; Elapsed is the total wall-clock age of the run.
	Stalled, Elapsed time.Duration
}

// Error implements error.
func (e *StallError) Error() string {
	return fmt.Sprintf("harness: %s/%s stalled: no forward progress for %v (retired %d instructions in %v)",
		e.Workload, e.Prefetcher, e.Stalled.Round(time.Millisecond), e.Instructions, e.Elapsed.Round(time.Millisecond))
}

// IsStall reports whether err stems from a watchdog abort.
func IsStall(err error) bool {
	var se *StallError
	return errors.As(err, &se)
}

// IsCancelled reports whether err stems from context cancellation (user
// interrupt or parent deadline) rather than a failure of the run itself.
// Watchdog aborts and -timeout expiries are failures, not cancellations.
func IsCancelled(err error) bool {
	return (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) &&
		!IsStall(err) && !IsTimeout(err)
}

// Safely invokes fn, converting a panic into a *PanicError. It guards
// code outside Run's supervision that can still panic, such as workload
// trace generation (heap exhaustion).
func Safely(fn func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// Run executes one simulation under the harness guarantees: ctx
// cancellation stops it promptly, the watchdog (when rc.StallTimeout > 0)
// aborts it when the core model stops retiring instructions, and any panic
// surfaces as a *PanicError instead of crashing the process.
//
// When a cancelled or aborted run does not acknowledge within rc.Grace —
// it is wedged inside a single access, beyond the reach of cooperative
// checks — its goroutine is abandoned (it leaks by design: Go offers no
// way to kill it) and Run returns the cancellation cause.
func Run(ctx context.Context, tr *trace.Trace, pf prefetch.Prefetcher, cfg sim.Config, rc RunConfig) (*sim.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	runCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)

	var progress atomic.Uint64
	cfg.CPU.Progress = &progress
	if rc.StallTimeout > 0 {
		go watch(runCtx, cancel, &progress, rc, tr.Name, pf.Name())
	}

	type outcome struct {
		res *sim.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if v := recover(); v != nil {
				ch <- outcome{nil, &PanicError{Value: v, Stack: debug.Stack()}}
			}
		}()
		res, err := sim.RunContext(runCtx, tr, pf, cfg)
		ch <- outcome{res, err}
	}()

	select {
	case o := <-ch:
		return o.res, o.err
	case <-runCtx.Done():
		grace := rc.Grace
		if grace <= 0 {
			grace = time.Second
		}
		timer := time.NewTimer(grace)
		defer timer.Stop()
		select {
		case o := <-ch:
			return o.res, o.err
		case <-timer.C:
			return nil, fmt.Errorf("harness: %s/%s unresponsive to cancellation after %v, goroutine abandoned: %w",
				tr.Name, pf.Name(), grace, context.Cause(runCtx))
		}
	}
}

// watch samples the progress counter and cancels the run with a
// *StallError once it has not advanced for rc.StallTimeout.
func watch(ctx context.Context, cancel context.CancelCauseFunc, progress *atomic.Uint64, rc RunConfig, workload, prefetcher string) {
	interval := rc.CheckInterval
	if interval <= 0 {
		interval = rc.StallTimeout / 4
		if interval > time.Second {
			interval = time.Second
		}
		if interval < 10*time.Millisecond {
			interval = 10 * time.Millisecond
		}
	}
	start := time.Now()
	last := progress.Load()
	lastChange := start
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			cur := progress.Load()
			if cur != last {
				last, lastChange = cur, time.Now()
				continue
			}
			if stalled := time.Since(lastChange); stalled >= rc.StallTimeout {
				cancel(&StallError{
					Workload: workload, Prefetcher: prefetcher,
					Instructions: cur, Stalled: stalled, Elapsed: time.Since(start),
				})
				return
			}
		}
	}
}
