package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Decision-event kinds. A "decide" event captures one prediction choice
// (candidates, chosen delta, real vs shadow); "reward" the bell-shaped
// feedback applied when a queued prediction is consumed by a demand
// access; "expire" the penalty applied when a prediction leaves the queue
// unconsumed.
const (
	KindDecide = "decide"
	KindReward = "reward"
	KindExpire = "expire"
)

// CandidateScore is one (delta, score) link considered by a decision.
type CandidateScore struct {
	Delta int8 `json:"delta"`
	Score int8 `json:"score"`
}

// DecisionEvent is one sampled entry of the JSONL decision trace. Context
// identifies the CST entry (index and tag packed into one integer), so a
// trace reader can follow a single learned context through decide →
// reward/expire.
type DecisionEvent struct {
	Kind  string `json:"kind"`
	Index uint64 `json:"index"`
	// Context identifies the CST entry the decision read or rewarded.
	Context uint64 `json:"ctx"`
	// Candidates lists the links considered (decide events only).
	Candidates []CandidateScore `json:"candidates,omitempty"`
	// Delta is the chosen (decide) or rewarded (reward/expire) delta.
	Delta int8 `json:"delta"`
	// Real distinguishes dispatched prefetches from shadow operations.
	Real bool `json:"real"`
	// Explore marks policy-exploration choices (decide events).
	Explore bool `json:"explore,omitempty"`
	// Reason is the issue/suppress attribution of a decide event: why the
	// prediction dispatched ("issued") or trained as a shadow ("shadow",
	// "suppressed", "mshr-demoted", "dup-demoted", "negative-target",
	// "refused" — see the core.Reason* constants).
	Reason string `json:"reason,omitempty"`
	// Reward is the applied reward (reward/expire events).
	Reward int8 `json:"reward,omitempty"`
	// Depth is the prediction-to-demand distance in accesses (reward
	// events).
	Depth int `json:"depth,omitempty"`
}

// decisionSink serializes sampled events as JSONL. Writes are buffered;
// the first error sticks and suppresses further output.
type decisionSink struct {
	bw      *bufio.Writer
	enc     *json.Encoder
	written uint64
	err     error
}

func newDecisionSink(w io.Writer) *decisionSink {
	bw := bufio.NewWriter(w)
	return &decisionSink{bw: bw, enc: json.NewEncoder(bw)}
}

// TraceDue reports whether the next decision event should be emitted,
// advancing the 1-in-DecisionRate sampling counter. The first event of a
// run is always sampled, so even short runs leave a trace. The counter is
// independent of the policy RNG: tracing cannot perturb the simulation.
func (c *Collector) TraceDue() bool {
	if c == nil || c.sink == nil {
		return false
	}
	c.events++
	return (c.events-1)%c.cfg.DecisionRate == 0
}

// Emit writes one sampled event to the JSONL sink. Call only after
// TraceDue returned true (Emit itself stays cheap and branch-free for the
// disabled path by living behind the same nil receiver contract).
func (c *Collector) Emit(ev *DecisionEvent) {
	if c == nil || c.sink == nil || c.sink.err != nil {
		return
	}
	if err := c.sink.enc.Encode(ev); err != nil {
		c.sink.err = fmt.Errorf("obs: decision sink: %w", err)
		return
	}
	c.sink.written++
}

// Flush drains the buffered decision stream into the underlying writer.
// The simulation driver calls it once at end of run.
func (c *Collector) Flush() error {
	if c == nil || c.sink == nil {
		return nil
	}
	if c.sink.err != nil {
		return c.sink.err
	}
	if err := c.sink.bw.Flush(); err != nil {
		c.sink.err = fmt.Errorf("obs: decision sink: %w", err)
	}
	return c.sink.err
}

// ReadDecisions parses a JSONL decision trace, returning the decoded
// events. It tolerates a trailing partial line only if empty.
func ReadDecisions(r io.Reader) ([]DecisionEvent, error) {
	dec := json.NewDecoder(r)
	var out []DecisionEvent
	for {
		var ev DecisionEvent
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, fmt.Errorf("obs: decision trace entry %d: %w", len(out)+1, err)
		}
		out = append(out, ev)
	}
}
