package obs

// Learner-health metric names, published by LearnerMetrics when a live
// registry is attached to an instrumented run (sweep/experiments -listen).
// Counters carry the cumulative learner-health totals across every sampled
// run; gauges hold the most recently sampled run's point-in-time learner
// state (last-writer-wins across parallel cells, like GaugeLastIPC).
const (
	MetricLearnerAccurate     = "learner_outcome_accurate_total"
	MetricLearnerLate         = "learner_outcome_late_total"
	MetricLearnerEvicted      = "learner_outcome_evicted_total"
	MetricLearnerExplores     = "learner_explores_total"
	MetricLearnerExploits     = "learner_exploits_total"
	MetricLearnerSuppressed   = "learner_suppressed_total"
	MetricLearnerPosRewards   = "learner_pos_rewards_total"
	MetricLearnerNegRewards   = "learner_neg_rewards_total"
	MetricLearnerZeroRewards  = "learner_zero_rewards_total"
	MetricLearnerInsertions   = "learner_cst_insertions_total"
	MetricLearnerReplacements = "learner_cst_replacements_total"
	MetricLearnerRejects      = "learner_cst_rejects_total"
	GaugeLearnerEpsilon       = "learner_epsilon"
	GaugeLearnerAccuracy      = "learner_accuracy"
	GaugeLearnerUseless       = "learner_outcome_useless"
	GaugeLearnerCSTEntries    = "learner_cst_entries"
	GaugeLearnerCSTLinks      = "learner_cst_links"
	GaugeLearnerCSTPositive   = "learner_cst_positive_links"
	GaugeLearnerCSTSaturated  = "learner_cst_saturated_links"
	GaugeLearnerMeanScore     = "learner_cst_mean_score"
	HistLearnerQueueHitRate   = "learner_queue_hit_rate"
)

// LearnerMetrics bridges interval samples into a live metrics registry, so
// /metrics carries the learner-health series while instrumented runs
// execute. A nil *LearnerMetrics (no registry attached) is the disabled
// configuration: Update is nil-safe and the collector hook reduces to one
// branch. Updates happen once per sampling interval — never on the
// per-access hot path.
type LearnerMetrics struct {
	accurate, late, evicted            *Counter
	explores, exploits, suppressed     *Counter
	posRewards, negRewards, zeroRew    *Counter
	insertions, replacements, rejects  *Counter
	epsilon, accuracy, useless         *Gauge
	cstEntries, cstLinks               *Gauge
	cstPositive, cstSaturated, meanSco *Gauge
	hitRate                            *Histogram
}

// hitRateBuckets spans the per-interval queue-hit rate: the rate can
// exceed 1 (one access can consume several queued predictions), so the
// buckets run 1% .. 256% by doubling.
var hitRateBuckets = []float64{0.01, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 1.28, 2.56}

// NewLearnerMetrics registers the learner-health instruments on reg, or
// returns nil when reg is nil (the no-op path).
func NewLearnerMetrics(reg *Registry) *LearnerMetrics {
	if reg == nil {
		return nil
	}
	return &LearnerMetrics{
		accurate:     reg.Counter(MetricLearnerAccurate, "issued prefetches consumed in the useful window"),
		late:         reg.Counter(MetricLearnerLate, "issued prefetches consumed past the useful window"),
		evicted:      reg.Counter(MetricLearnerEvicted, "issued prefetches displaced from the queue unconsumed"),
		explores:     reg.Counter(MetricLearnerExplores, "policy exploration trainings"),
		exploits:     reg.Counter(MetricLearnerExploits, "best-link exploitation dispatch attempts"),
		suppressed:   reg.Counter(MetricLearnerSuppressed, "prediction rounds suppressed under the score threshold"),
		posRewards:   reg.Counter(MetricLearnerPosRewards, "queue-hit rewards with positive sign"),
		negRewards:   reg.Counter(MetricLearnerNegRewards, "queue-hit rewards with negative sign"),
		zeroRew:      reg.Counter(MetricLearnerZeroRewards, "queue-hit rewards with zero value"),
		insertions:   reg.Counter(MetricLearnerInsertions, "CST candidate link insertions"),
		replacements: reg.Counter(MetricLearnerReplacements, "CST candidate link replacements"),
		rejects:      reg.Counter(MetricLearnerRejects, "CST candidate inserts rejected by protected victims"),
		epsilon:      reg.Gauge(GaugeLearnerEpsilon, "exploration rate of the most recently sampled run"),
		accuracy:     reg.Gauge(GaugeLearnerAccuracy, "policy accuracy estimate of the most recently sampled run"),
		useless:      reg.Gauge(GaugeLearnerUseless, "issued prefetches still pending in the queue"),
		cstEntries:   reg.Gauge(GaugeLearnerCSTEntries, "occupied CST entries"),
		cstLinks:     reg.Gauge(GaugeLearnerCSTLinks, "resident CST links"),
		cstPositive:  reg.Gauge(GaugeLearnerCSTPositive, "CST links with positive accumulated reward"),
		cstSaturated: reg.Gauge(GaugeLearnerCSTSaturated, "CST links pinned at the score ceiling"),
		meanSco:      reg.Gauge(GaugeLearnerMeanScore, "mean CST link score"),
		hitRate:      reg.Histogram(HistLearnerQueueHitRate, "per-interval queue-hit rate", hitRateBuckets),
	}
}

// Update publishes one interval sample: counters advance by the sample's
// interval deltas, gauges take the point-in-time values, and the hit-rate
// histogram observes the interval's rate.
func (lm *LearnerMetrics) Update(s *Sample) {
	if lm == nil {
		return
	}
	lm.accurate.Add(s.Accurate)
	lm.late.Add(s.Late)
	lm.evicted.Add(s.Evicted)
	lm.explores.Add(s.Explores)
	lm.exploits.Add(s.Exploits)
	lm.suppressed.Add(s.Suppressed)
	lm.posRewards.Add(s.PosRewards)
	lm.negRewards.Add(s.NegRewards)
	lm.zeroRew.Add(s.ZeroRewards)
	lm.insertions.Add(s.CSTInsertions)
	lm.replacements.Add(s.CSTReplacements)
	lm.rejects.Add(s.CSTRejects)
	lm.epsilon.Set(s.Epsilon)
	lm.accuracy.Set(s.Accuracy)
	lm.useless.Set(float64(s.Useless))
	lm.cstEntries.Set(float64(s.CSTEntries))
	lm.cstLinks.Set(float64(s.CSTLinks))
	lm.cstPositive.Set(float64(s.CSTPositiveLinks))
	lm.cstSaturated.Set(float64(s.CSTSaturatedLinks))
	lm.meanSco.Set(s.CSTMeanScore)
	lm.hitRate.Observe(s.QueueHitRate)
}
