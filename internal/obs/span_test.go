package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanRecorderNilSafe(t *testing.T) {
	var rec *SpanRecorder
	if rec.Now() != 0 {
		t.Error("nil recorder Now() must be 0")
	}
	rec.Add(Span{Workload: "x"}) // must not panic
	if rec.Spans() != nil {
		t.Error("nil recorder must hold no spans")
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Errorf("nil recorder export: %v", err)
	}
}

func TestSpanCellNames(t *testing.T) {
	cases := []struct {
		s    Span
		want string
	}{
		{Span{Workload: "mcf", Prefetcher: "context"}, "mcf/context"},
		{Span{Workload: "mcf", Prefetcher: "context", Point: 3}, "mcf/context[3]"},
		{Span{Workload: "mcf"}, "mcf"},
	}
	for _, c := range cases {
		if got := c.s.Cell(); got != c.want {
			t.Errorf("Cell() = %q, want %q", got, c.want)
		}
	}
}

func TestAssignLanesPacksOverlaps(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	spans := []Span{
		{Start: ms(0), Dur: ms(10)},  // lane 0
		{Start: ms(2), Dur: ms(5)},   // overlaps 0 -> lane 1
		{Start: ms(8), Dur: ms(4)},   // overlaps 0, lane 1 free at 7 -> lane 1
		{Start: ms(10), Dur: ms(2)},  // lane 0 free at 10 -> lane 0
		{Start: ms(100), Dur: ms(1)}, // everything free -> lane 0
	}
	want := []int{0, 1, 1, 0, 0}
	got := assignLanes(spans)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lanes = %v, want %v", got, want)
		}
	}
}

// sampleSpans builds a small two-worker batch with phases.
func sampleSpans() []Span {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return []Span{
		{
			Cat: CatTrace, Workload: "list",
			Start: ms(0), Dur: ms(4),
		},
		{
			Cat: CatRun, Workload: "list", Prefetcher: "none",
			Start: ms(4), Dur: ms(20),
			Phases: []Phase{
				{Name: PhaseDecode, Start: ms(4), Dur: ms(1)},
				{Name: PhaseQueueWait, Start: ms(5), Dur: ms(2)},
				{Name: PhaseWarmup, Start: ms(7), Dur: ms(3)},
				{Name: PhaseMeasured, Start: ms(10), Dur: ms(14)},
			},
		},
		{
			Cat: CatRun, Workload: "list", Prefetcher: "context", Point: 2,
			Start: ms(6), Dur: ms(30), Err: true,
		},
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	rec := NewSpanRecorder()
	for _, s := range sampleSpans() {
		rec.Add(s)
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	// The file must be one JSON object with a traceEvents array whose
	// duration events carry the fields Perfetto requires.
	var raw struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("span file is not valid JSON: %v", err)
	}
	var xEvents, mEvents int
	for _, ev := range raw.TraceEvents {
		switch ev["ph"] {
		case "X":
			xEvents++
			for _, field := range []string{"name", "ts", "pid", "tid"} {
				if _, ok := ev[field]; !ok {
					t.Errorf("X event missing %q: %v", field, ev)
				}
			}
		case "M":
			mEvents++
		default:
			t.Errorf("unexpected event phase %v", ev["ph"])
		}
	}
	// 3 spans + 4 phases as X events; process + 2 worker lanes as metadata.
	if xEvents != 7 {
		t.Errorf("X events = %d, want 7", xEvents)
	}
	if mEvents != 3 {
		t.Errorf("metadata events = %d, want 3 (process + 2 lanes)", mEvents)
	}

	spans, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 3 {
		t.Fatalf("round trip returned %d spans, want 3", len(spans))
	}
	byCell := map[string]Span{}
	for _, s := range spans {
		byCell[s.Cell()] = s
	}
	run, ok := byCell["list/none"]
	if !ok {
		t.Fatalf("missing list/none span: %v", byCell)
	}
	if run.Cat != CatRun || run.Dur != 20*time.Millisecond || len(run.Phases) != 4 {
		t.Errorf("list/none round trip: %+v", run)
	}
	if run.Phases[3].Name != PhaseMeasured || run.Phases[3].Dur != 14*time.Millisecond {
		t.Errorf("measured phase: %+v", run.Phases)
	}
	if s := byCell["list/context[2]"]; !s.Err || s.Point != 2 {
		t.Errorf("context span lost err/point: %+v", s)
	}
	if s := byCell["list"]; s.Cat != CatTrace || s.Dur != 4*time.Millisecond {
		t.Errorf("trace span: %+v", s)
	}
}

func TestReadChromeTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadChromeTrace(strings.NewReader("not json")); err == nil {
		t.Error("garbage must not parse")
	}
	if _, err := ReadChromeTrace(strings.NewReader(`{"traceEvents":[]}`)); err == nil {
		t.Error("a span-free file must be reported, not rendered as empty")
	}
}

// TestChromeTraceServeSpanRoundTrip pins the serving-span shape: a sampled
// prefetchd request (Cat "serve", Workload = session id, Point = seq) with
// decode/queue_wait/decide/write phases must survive the file round trip so
// "inspect spans" works on daemon runs.
func TestChromeTraceServeSpanRoundTrip(t *testing.T) {
	rec := NewSpanRecorder()
	rec.Add(Span{
		Cat: CatServe, Workload: "session-7", Prefetcher: "serve", Point: 42,
		Start: time.Millisecond, Dur: 400 * time.Microsecond,
		Phases: []Phase{
			{Name: PhaseDecode, Start: time.Millisecond, Dur: 10 * time.Microsecond},
			{Name: PhaseQueueWait, Start: time.Millisecond + 10*time.Microsecond, Dur: 50 * time.Microsecond},
			{Name: PhaseDecide, Start: time.Millisecond + 60*time.Microsecond, Dur: 300 * time.Microsecond},
			{Name: PhaseWrite, Start: time.Millisecond + 360*time.Microsecond, Dur: 40 * time.Microsecond},
		},
	})
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 {
		t.Fatalf("round trip returned %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Cat != CatServe || s.Workload != "session-7" || s.Point != 42 {
		t.Errorf("serve span identity lost: %+v", s)
	}
	if len(s.Phases) != 4 || s.Phases[2].Name != PhaseDecide || s.Phases[2].Dur != 300*time.Microsecond {
		t.Errorf("serve span phases lost: %+v", s.Phases)
	}
	if s.Phases[3].Name != PhaseWrite {
		t.Errorf("write phase lost: %+v", s.Phases)
	}
}
