package obs

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles enables the pprof hooks shared by cmd/bench and
// cmd/experiments: a CPU profile written for the whole invocation and a
// heap profile captured at stop time. Either path may be empty. The
// returned stop function must be called exactly once (defer it); it
// finishes both profiles unconditionally — the CPU profile is always
// stopped and its file closed even when the heap path turns out to be
// unwritable — and reports every failure, joined with errors.Join so a
// bad heap path cannot mask a CPU-profile write error (or vice versa).
//
// Together with the telemetry series these close the observability loop:
// the overhead guard and BENCH_<n>.json detect a hot-path regression, the
// profiles say where it lives.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	return func() error {
		var errs []error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				errs = append(errs, fmt.Errorf("obs: cpu profile: %w", err))
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				errs = append(errs, fmt.Errorf("obs: mem profile: %w", err))
			} else {
				runtime.GC() // settle live objects before the heap snapshot
				if err := pprof.WriteHeapProfile(f); err != nil {
					errs = append(errs, fmt.Errorf("obs: mem profile: %w", err))
				}
				if err := f.Close(); err != nil {
					errs = append(errs, fmt.Errorf("obs: mem profile: %w", err))
				}
			}
		}
		return errors.Join(errs...)
	}, nil
}
