package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles enables the pprof hooks shared by cmd/bench and
// cmd/experiments: a CPU profile written for the whole invocation and a
// heap profile captured at stop time. Either path may be empty. The
// returned stop function must be called exactly once (defer it); it
// finishes both profiles and reports the first error.
//
// Together with the telemetry series these close the observability loop:
// the overhead guard and BENCH_<n>.json detect a hot-path regression, the
// profiles say where it lives.
func StartProfiles(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	return func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && first == nil {
				first = fmt.Errorf("obs: cpu profile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if first == nil {
					first = fmt.Errorf("obs: mem profile: %w", err)
				}
				return first
			}
			runtime.GC() // settle live objects before the heap snapshot
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = fmt.Errorf("obs: mem profile: %w", err)
			}
			if err := f.Close(); err != nil && first == nil {
				first = fmt.Errorf("obs: mem profile: %w", err)
			}
		}
		return first
	}, nil
}
