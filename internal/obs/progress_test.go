package obs

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncWriter makes a bytes.Buffer safe to share between the reporter
// goroutine and test assertions.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

func TestStartProgressDisabled(t *testing.T) {
	// nil registry or logger: stop must be safe and do nothing.
	stop := StartProgress(context.Background(), nil, nil, time.Millisecond)
	stop()
	stop() // idempotent
	lg := slog.New(slog.NewTextHandler(&bytes.Buffer{}, nil))
	stop = StartProgress(context.Background(), lg, nil, time.Millisecond)
	stop()
}

func TestProgressReportsAndFinalLine(t *testing.T) {
	reg := NewRegistry()
	total := reg.Counter(MetricCellsTotal, "")
	done := reg.Counter(MetricCellsDone, "")
	reg.Gauge(GaugeLastIPC, "").Set(0.5)
	total.Add(4)
	done.Add(1)

	var w syncWriter
	lg := slog.New(slog.NewTextHandler(&w, nil))
	stop := StartProgress(context.Background(), lg, reg, 5*time.Millisecond)

	deadline := time.Now().Add(2 * time.Second)
	for !strings.Contains(w.String(), "progress") && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	done.Add(3)
	stop()
	stop() // stop is idempotent

	out := w.String()
	if !strings.Contains(out, "progress") {
		t.Fatalf("no periodic progress line emitted:\n%s", out)
	}
	if !strings.Contains(out, "total=4") {
		t.Errorf("progress line missing totals:\n%s", out)
	}
	if !strings.Contains(out, "eta=") {
		t.Errorf("mid-batch progress line missing ETA:\n%s", out)
	}
	if !strings.Contains(out, "batch complete") || !strings.Contains(out, "done=4") {
		t.Errorf("stop must emit a final line with the drained count:\n%s", out)
	}
	if !strings.Contains(out, "last_ipc=0.5") {
		t.Errorf("progress must surface the last-IPC gauge:\n%s", out)
	}
}

func TestProgressQuietWhenNoWork(t *testing.T) {
	reg := NewRegistry()
	var w syncWriter
	lg := slog.New(slog.NewTextHandler(&w, nil))
	stop := StartProgress(context.Background(), lg, reg, time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	stop()
	if out := w.String(); out != "" {
		t.Errorf("reporter must stay silent with no cells submitted:\n%s", out)
	}
}

func TestProgressStopsOnContextCancel(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MetricCellsTotal, "").Add(2)
	ctx, cancel := context.WithCancel(context.Background())
	var w syncWriter
	lg := slog.New(slog.NewTextHandler(&w, nil))
	stop := StartProgress(ctx, lg, reg, time.Millisecond)
	cancel()
	// stop must not hang even though the context, not stop, ended the loop.
	doneCh := make(chan struct{})
	go func() { stop(); close(doneCh) }()
	select {
	case <-doneCh:
	case <-time.After(2 * time.Second):
		t.Fatal("stop hung after context cancellation")
	}
}
