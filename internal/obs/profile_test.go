package obs

import (
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"testing"
)

func TestStartProfilesWritesBoth(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s missing: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestStartProfilesEmptyPathsAreNoops(t *testing.T) {
	stop, err := StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

func TestStartProfilesBadCPUPathFailsFast(t *testing.T) {
	_, err := StartProfiles(filepath.Join(t.TempDir(), "no-such-dir", "cpu.pprof"), "")
	if err == nil {
		t.Fatal("unwritable cpu path must fail StartProfiles")
	}
	if !strings.Contains(err.Error(), "cpu profile") {
		t.Errorf("error must name the cpu profile: %v", err)
	}
}

// TestStartProfilesBadHeapPathStillStopsCPU is the failing-path contract:
// when the heap path turns out to be unwritable at stop time, stop must
// still stop CPU profiling, close its file, and report the heap failure —
// not leave the profiler running with the error swallowed.
func TestStartProfilesBadHeapPathStillStopsCPU(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	badMem := filepath.Join(dir, "no-such-dir", "mem.pprof")
	stop, err := StartProfiles(cpu, badMem)
	if err != nil {
		t.Fatal(err)
	}
	stopErr := stop()
	if stopErr == nil {
		t.Fatal("stop must report the unwritable heap path")
	}
	if !strings.Contains(stopErr.Error(), "mem profile") {
		t.Errorf("stop error must name the mem profile: %v", stopErr)
	}
	// CPU profiling must be stopped despite the heap failure: starting a
	// fresh CPU profile only succeeds when none is running.
	probe := filepath.Join(dir, "probe.pprof")
	f, err := os.Create(probe)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		t.Fatalf("CPU profiling left running after failed stop: %v", err)
	}
	pprof.StopCPUProfile()
	// And the original CPU profile file must have been closed and flushed.
	st, err := os.Stat(cpu)
	if err != nil || st.Size() == 0 {
		t.Errorf("cpu profile not written through the heap failure: %v (size %v)", err, st)
	}
}
