package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync/atomic"
	"time"
)

// runIDSeq distinguishes IDs minted by one process in the same nanosecond
// (a parallel fleet spawning loggers back to back can easily tie on
// time^pid alone).
var runIDSeq atomic.Uint64

// NewRunID derives a unique identifier for one command invocation, carried
// as the run_id attribute on every structured log line so concurrent or
// scripted sweeps can be teased apart afterwards. The ID mixes wall time,
// the process ID and a process-local atomic counter through a splitmix64
// finalizer into 64 bits — two invocations collide only if time AND pid
// AND counter all coincide, which cannot happen within a process and is
// vanishingly unlikely across one.
func NewRunID() string {
	// seq advances the pre-mix state by the splitmix64 golden gamma, so two
	// same-nanosecond in-process IDs still differ by a nonzero multiple of an
	// odd constant — distinct mod 2^64 — and the finalizer is a bijection,
	// so the distinction survives into the printed ID.
	h := uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<40
	h += runIDSeq.Add(1) * 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return fmt.Sprintf("%016x", h)
}

// LogLevel maps the shared -q/-v command flags onto a slog level: quiet
// shows warnings and errors only, verbose adds debug detail.
func LogLevel(quiet, verbose bool) slog.Level {
	switch {
	case quiet:
		return slog.LevelWarn
	case verbose:
		return slog.LevelDebug
	default:
		return slog.LevelInfo
	}
}

// NewLogger builds the structured logger the run commands share: text
// format on w (stderr by convention — stdout stays reserved for tables
// and reports), tagged with the command name and a fresh run ID. It also
// installs itself as the slog default, so library-side slog calls join
// the same stream.
func NewLogger(w io.Writer, cmd string, quiet, verbose bool) *slog.Logger {
	if w == nil {
		w = os.Stderr
	}
	h := slog.NewTextHandler(w, &slog.HandlerOptions{Level: LogLevel(quiet, verbose)})
	lg := slog.New(h).With("cmd", cmd, "run_id", NewRunID())
	slog.SetDefault(lg)
	return lg
}
