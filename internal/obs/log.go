package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"time"
)

// NewRunID derives a short, unique-enough identifier for one command
// invocation, carried as the run_id attribute on every structured log
// line so concurrent or scripted sweeps can be teased apart afterwards.
func NewRunID() string {
	return fmt.Sprintf("%08x", uint32(time.Now().UnixNano())^uint32(os.Getpid())<<16)
}

// LogLevel maps the shared -q/-v command flags onto a slog level: quiet
// shows warnings and errors only, verbose adds debug detail.
func LogLevel(quiet, verbose bool) slog.Level {
	switch {
	case quiet:
		return slog.LevelWarn
	case verbose:
		return slog.LevelDebug
	default:
		return slog.LevelInfo
	}
}

// NewLogger builds the structured logger the run commands share: text
// format on w (stderr by convention — stdout stays reserved for tables
// and reports), tagged with the command name and a fresh run ID. It also
// installs itself as the slog default, so library-side slog calls join
// the same stream.
func NewLogger(w io.Writer, cmd string, quiet, verbose bool) *slog.Logger {
	if w == nil {
		w = os.Stderr
	}
	h := slog.NewTextHandler(w, &slog.HandlerOptions{Level: LogLevel(quiet, verbose)})
	lg := slog.New(h).With("cmd", cmd, "run_id", NewRunID())
	slog.SetDefault(lg)
	return lg
}
