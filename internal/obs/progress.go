package obs

import (
	"context"
	"log/slog"
	"time"
)

// DefaultProgressInterval is the cadence of live progress lines when the
// caller does not choose one.
const DefaultProgressInterval = 5 * time.Second

// StartProgress emits periodic slog progress lines for a running batch,
// driven by the registry's live-run metrics (the same counters the
// /metrics endpoint serves): cells done/total/failed, completion rate, an
// ETA extrapolated from it, and the last completed cell's IPC and L1 MPKI.
// It returns a stop function that halts the ticker and emits one final
// line when any cells completed; the reporter also stops when ctx is
// cancelled. A nil registry or logger disables reporting (stop is still
// safe to call).
func StartProgress(ctx context.Context, logger *slog.Logger, reg *Registry, interval time.Duration) (stop func()) {
	if reg == nil || logger == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = DefaultProgressInterval
	}
	var (
		total   = reg.Counter(MetricCellsTotal, "matrix cells submitted")
		done    = reg.Counter(MetricCellsDone, "matrix cells completed")
		failed  = reg.Counter(MetricCellsFailed, "matrix cells failed")
		busy    = reg.Gauge(GaugeWorkersBusy, "runs holding a worker slot")
		lastIPC = reg.Gauge(GaugeLastIPC, "IPC of the last completed cell")
		lastMPK = reg.Gauge(GaugeLastL1MPKI, "L1 MPKI of the last completed cell")
	)
	start := time.Now()
	line := func(event string) {
		d, t := done.Value(), total.Value()
		elapsed := time.Since(start)
		attrs := []any{
			"done", d, "total", t, "failed", failed.Value(),
			"busy", int(busy.Value()),
			"elapsed", elapsed.Round(time.Millisecond),
		}
		if d > 0 && elapsed > 0 {
			rate := float64(d) / elapsed.Seconds()
			attrs = append(attrs, "cells_per_sec", float64(int(rate*100))/100)
			if t > d {
				eta := time.Duration(float64(t-d) / rate * float64(time.Second))
				attrs = append(attrs, "eta", eta.Round(time.Second))
			}
			attrs = append(attrs, "last_ipc", lastIPC.Value(), "last_l1_mpki", lastMPK.Value())
		}
		logger.Info(event, attrs...)
	}
	tickerDone := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		var lastDone uint64
		for {
			select {
			case <-ctx.Done():
				return
			case <-tickerDone:
				return
			case <-ticker.C:
				// Stay quiet until work is actually queued, and after it is
				// all drained (e.g. while a command renders tables).
				if d, t := done.Value(), total.Value(); t > 0 && (d < t || d != lastDone) {
					line("progress")
					lastDone = d
				}
			}
		}
	}()
	var once bool
	return func() {
		if once {
			return
		}
		once = true
		close(tickerDone)
		<-stopped
		if done.Value() > 0 {
			line("batch complete")
		}
	}
}
