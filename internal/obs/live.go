package obs

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"time"
)

// Live bundles the live-observability attachments of one command
// invocation: a metrics registry (always on — its cost is a few atomics per
// matrix cell), the periodic progress reporter, an optional HTTP endpoint
// (-listen) and an optional span recorder (-spans). Commands hand Reg and
// Spans to exp.Options and defer Close; everything else is internal.
type Live struct {
	// Reg is the registry the engine updates, the progress reporter reads,
	// and the endpoint serves.
	Reg *Registry
	// Spans is the span recorder (nil unless a spans path was given, which
	// keeps the engine's tracing branch disabled).
	Spans *SpanRecorder

	srv          *Server
	logger       *slog.Logger
	spansPath    string
	stopProgress func()
}

// StartLive wires the live attachments: it builds the registry, starts the
// progress reporter at the given interval (0 means DefaultProgressInterval),
// binds the metrics endpoint when listen is non-empty, and allocates a span
// recorder when spansPath is non-empty. The caller must Close the returned
// Live; Close is what flushes the span file and frees the listener.
func StartLive(ctx context.Context, logger *slog.Logger, listen, spansPath string, interval time.Duration) (*Live, error) {
	l := &Live{Reg: NewRegistry(), logger: logger, spansPath: spansPath}
	if spansPath != "" {
		l.Spans = NewSpanRecorder()
	}
	if listen != "" {
		srv, err := Serve(listen, l.Reg)
		if err != nil {
			return nil, err
		}
		l.srv = srv
		if logger != nil {
			logger.Info("metrics endpoint up", "addr", srv.Addr(),
				"metrics", fmt.Sprintf("http://%s/metrics", srv.Addr()))
		}
	}
	l.stopProgress = StartProgress(ctx, logger, l.Reg, interval)
	return l, nil
}

// Ready flips the endpoint's /readyz to 200 (no-op without -listen);
// commands call it once their runner is built and jobs are submitted.
func (l *Live) Ready() {
	if l != nil && l.srv != nil {
		l.srv.SetReady(true)
	}
}

// Addr returns the endpoint's bound address, or "" without -listen.
func (l *Live) Addr() string {
	if l == nil || l.srv == nil {
		return ""
	}
	return l.srv.Addr()
}

// Close stops the progress reporter (emitting its final line), writes the
// span file, and tears down the endpoint. Nil-safe, idempotent via the
// underlying stop/Close semantics.
func (l *Live) Close() error {
	if l == nil {
		return nil
	}
	l.stopProgress()
	var errs []error
	if l.spansPath != "" {
		if err := l.writeSpans(); err != nil {
			errs = append(errs, err)
		}
	}
	if l.srv != nil {
		if err := l.srv.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

func (l *Live) writeSpans() error {
	f, err := os.Create(l.spansPath)
	if err != nil {
		return fmt.Errorf("obs: span file: %w", err)
	}
	if err := l.Spans.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: span file: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: span file: %w", err)
	}
	if l.logger != nil {
		l.logger.Info("span trace written", "path", l.spansPath, "spans", len(l.Spans.Spans()))
	}
	return nil
}
