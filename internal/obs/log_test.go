package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

func TestNewRunIDUnique(t *testing.T) {
	const goroutines, per = 8, 2000
	ids := make([][]string, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids[g] = make([]string, per)
			for i := 0; i < per; i++ {
				ids[g][i] = NewRunID()
			}
		}()
	}
	wg.Wait()
	seen := make(map[string]bool, goroutines*per)
	for _, batch := range ids {
		for _, id := range batch {
			if len(id) != 16 {
				t.Fatalf("run ID %q is not 16 hex chars (64 bits)", id)
			}
			if seen[id] {
				t.Fatalf("run ID %q minted twice", id)
			}
			seen[id] = true
		}
	}
}

func TestLogLevel(t *testing.T) {
	cases := []struct {
		quiet, verbose bool
		want           slog.Level
	}{
		{false, false, slog.LevelInfo},
		{true, false, slog.LevelWarn},
		{false, true, slog.LevelDebug},
		// quiet wins when both are set: the user asked for silence.
		{true, true, slog.LevelWarn},
	}
	for _, c := range cases {
		if got := LogLevel(c.quiet, c.verbose); got != c.want {
			t.Errorf("LogLevel(%v, %v) = %v, want %v", c.quiet, c.verbose, got, c.want)
		}
	}
}

// restoreDefault snapshots the process-global slog default around a test
// (NewLogger installs itself as the default).
func restoreDefault(t *testing.T) {
	t.Helper()
	old := slog.Default()
	t.Cleanup(func() { slog.SetDefault(old) })
}

func TestNewLoggerRouting(t *testing.T) {
	restoreDefault(t)
	cases := []struct {
		name           string
		quiet, verbose bool
		wantInfo       bool
		wantDebug      bool
	}{
		{"default", false, false, true, false},
		{"quiet", true, false, false, false},
		{"verbose", false, true, true, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			lg := NewLogger(&buf, "testcmd", c.quiet, c.verbose)
			lg.Debug("debug-line")
			lg.Info("info-line")
			lg.Warn("warn-line")
			out := buf.String()
			if got := strings.Contains(out, "info-line"); got != c.wantInfo {
				t.Errorf("info routed = %v, want %v:\n%s", got, c.wantInfo, out)
			}
			if got := strings.Contains(out, "debug-line"); got != c.wantDebug {
				t.Errorf("debug routed = %v, want %v:\n%s", got, c.wantDebug, out)
			}
			if !strings.Contains(out, "warn-line") {
				t.Errorf("warnings must always pass:\n%s", out)
			}
		})
	}
}

func TestNewLoggerAttrsAndDefaultInstall(t *testing.T) {
	restoreDefault(t)
	var buf bytes.Buffer
	NewLogger(&buf, "mycmd", false, false)
	// NewLogger must install itself as the slog default so library-side
	// slog calls join the command's stream, tagged with cmd and run_id.
	slog.Info("via-default")
	out := buf.String()
	if !strings.Contains(out, "via-default") {
		t.Fatalf("slog default not installed:\n%s", out)
	}
	if !strings.Contains(out, "cmd=mycmd") || !strings.Contains(out, "run_id=") {
		t.Errorf("log lines missing cmd/run_id attributes:\n%s", out)
	}
}

func TestNewLoggerNilWriterDefaultsToStderr(t *testing.T) {
	restoreDefault(t)
	// Must not panic; stderr content is not asserted.
	lg := NewLogger(nil, "nilw", true, false)
	if lg == nil {
		t.Fatal("NewLogger returned nil")
	}
}
