package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// feed drives n accesses through the collector the way the sim adapter
// does: Due after each index increment, Record on boundaries, one final
// flush sample at run end if the last boundary missed it.
func feed(c *Collector, n uint64) {
	var cs CoreSnapshot
	var m MachineSnapshot
	for i := uint64(1); i <= n; i++ {
		cs.Accesses = i
		cs.Predictions = 2 * i
		cs.QueueHits = i / 2
		m.Cycles = 3 * i
		m.Instructions = 4 * i
		m.L1Misses = i / 4
		if c.Due(i) {
			c.Record(i, m, cs)
		}
	}
	if c.SamplingEnabled() && c.LastIndex() < n {
		c.Record(n, m, cs)
	}
}

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	if c.Due(1) || c.SamplingEnabled() || c.TraceDue() {
		t.Fatal("nil collector reported work due")
	}
	c.Record(1, MachineSnapshot{}, CoreSnapshot{})
	c.Emit(&DecisionEvent{})
	c.NoteWarmupEnd(1)
	if c.Series() != nil {
		t.Fatal("nil collector exported a series")
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if c.Err() != nil {
		t.Fatal("nil collector reported an error")
	}
}

func TestDisabledConfigYieldsNilCollector(t *testing.T) {
	if c := NewCollector(Config{}); c != nil {
		t.Fatal("zero config should disable telemetry")
	}
	// A decision rate without a sink is still disabled.
	if c := NewCollector(Config{DecisionRate: 8}); c != nil {
		t.Fatal("decision rate without sink should disable telemetry")
	}
}

func TestIntervalOne(t *testing.T) {
	c := NewCollector(Config{Interval: 1, MaxSamples: 1 << 20})
	feed(c, 10)
	s := c.Series()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Samples) != 10 {
		t.Fatalf("interval 1 over 10 accesses: %d samples, want 10", len(s.Samples))
	}
	// Every interval delta must be exactly one access.
	for i, sm := range s.Samples {
		if sm.Accesses != 1 {
			t.Fatalf("sample %d covers %d accesses, want 1", i, sm.Accesses)
		}
	}
}

func TestIntervalLongerThanRun(t *testing.T) {
	c := NewCollector(Config{Interval: 1 << 20})
	feed(c, 100)
	s := c.Series()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// No boundary was crossed; the end-of-run flush still records the
	// whole run as one sample.
	if len(s.Samples) != 1 {
		t.Fatalf("got %d samples, want 1 flush sample", len(s.Samples))
	}
	if got := s.Samples[0]; got.Index != 100 || got.Accesses != 100 {
		t.Fatalf("flush sample = %+v, want index/accesses 100", got)
	}
}

func TestIntervalDeltasAndRates(t *testing.T) {
	c := NewCollector(Config{Interval: 50})
	feed(c, 200)
	s := c.Series()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Samples) != 4 {
		t.Fatalf("got %d samples, want 4", len(s.Samples))
	}
	for i, sm := range s.Samples {
		if sm.Accesses != 50 {
			t.Fatalf("sample %d: %d accesses, want 50", i, sm.Accesses)
		}
		if sm.Predictions != 100 {
			t.Fatalf("sample %d: %d predictions, want 100", i, sm.Predictions)
		}
		if sm.QueueHitRate < 0.49 || sm.QueueHitRate > 0.51 {
			t.Fatalf("sample %d: queue hit rate %v, want ~0.5", i, sm.QueueHitRate)
		}
		// Cumulative counters are monotone; feed uses 4 instr / 3 cycles.
		if sm.IPC < 1.3 || sm.IPC > 1.34 {
			t.Fatalf("sample %d: IPC %v, want ~4/3", i, sm.IPC)
		}
	}
}

func TestDecimationBoundsSeriesAndPreservesTotals(t *testing.T) {
	c := NewCollector(Config{Interval: 1, MaxSamples: 8})
	feed(c, 64)
	s := c.Series()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Samples) > 8 {
		t.Fatalf("decimation failed to bound series: %d samples", len(s.Samples))
	}
	if s.Interval <= s.BaseInterval {
		t.Fatalf("effective interval %d did not grow past base %d", s.Interval, s.BaseInterval)
	}
	var accesses uint64
	for _, sm := range s.Samples {
		accesses += sm.Accesses
	}
	if accesses != 64 {
		t.Fatalf("decimation lost interval counts: %d accesses, want 64", accesses)
	}
	if last := s.Samples[len(s.Samples)-1]; last.Index != 64 {
		t.Fatalf("last sample index %d, want 64", last.Index)
	}
}

func TestWarmupResetClampsDeltas(t *testing.T) {
	c := NewCollector(Config{Interval: 10})
	cs := CoreSnapshot{Accesses: 10, QueueHits: 8}
	m := MachineSnapshot{Cycles: 100, Instructions: 100, L1Misses: 50}
	c.Record(10, m, cs)
	// Warm-up reset: prefetcher metrics and cache stats restart at zero.
	c.NoteWarmupEnd(10)
	cs = CoreSnapshot{Accesses: 4, QueueHits: 1}
	m = MachineSnapshot{Cycles: 200, Instructions: 220, L1Misses: 3}
	c.Record(20, m, cs)
	s := c.Series()
	if s.WarmupIndex != 10 {
		t.Fatalf("warmup index %d, want 10", s.WarmupIndex)
	}
	got := s.Samples[1]
	if got.Accesses != 4 || got.QueueHits != 1 || got.L1Misses != 3 {
		t.Fatalf("post-warmup deltas = %+v, want restart from zero", got)
	}
	// Machine progress is never reset: the interval still spans 100 cycles.
	if got.IntervalIPC < 1.19 || got.IntervalIPC > 1.21 {
		t.Fatalf("interval IPC %v, want 1.2", got.IntervalIPC)
	}
}

func TestSeriesValidateRejectsCorrupt(t *testing.T) {
	bad := []*Series{
		nil,
		{},
		{BaseInterval: 4, Interval: 4},
		{BaseInterval: 4, Interval: 6, Samples: []Sample{{Index: 4}}},
		{BaseInterval: 4, Interval: 4, Samples: []Sample{{Index: 8}, {Index: 4}}},
		{BaseInterval: 4, Interval: 4, Samples: []Sample{{Index: 4, Accesses: 4, QueueHitRate: -0.5}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("case %d: corrupt series validated", i)
		}
	}
	good := &Series{BaseInterval: 4, Interval: 8, Samples: []Sample{{Index: 8}, {Index: 16}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDecisionTraceSamplingAndRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewCollector(Config{DecisionRate: 4, DecisionSink: &buf})
	emitted := 0
	for i := 0; i < 10; i++ {
		if c.TraceDue() {
			c.Emit(&DecisionEvent{
				Kind: KindDecide, Index: uint64(i), Context: 77,
				Candidates: []CandidateScore{{Delta: 1, Score: 5}, {Delta: -3, Score: 2}},
				Delta:      1, Real: true,
			})
			emitted++
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	// 1-in-4 over 10 events, first always sampled: events 0, 4, 8.
	if emitted != 3 {
		t.Fatalf("emitted %d events, want 3", emitted)
	}
	evs, err := ReadDecisions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("read %d events, want 3", len(evs))
	}
	if evs[1].Index != 4 || evs[1].Delta != 1 || !evs[1].Real || len(evs[1].Candidates) != 2 {
		t.Fatalf("round-tripped event mismatch: %+v", evs[1])
	}
}

func TestDecisionSinkErrorSticks(t *testing.T) {
	c := NewCollector(Config{DecisionRate: 1, DecisionSink: failWriter{}})
	for i := 0; i < 3; i++ {
		if c.TraceDue() {
			// Force enough volume to defeat bufio buffering.
			c.Emit(&DecisionEvent{Kind: KindDecide, Candidates: make([]CandidateScore, 4096)})
		}
	}
	if err := c.Flush(); err == nil {
		t.Fatal("sink write error was swallowed")
	}
	if c.Err() == nil {
		t.Fatal("Err did not surface the sink failure")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) {
	return 0, errWrite
}

var errWrite = &json.UnsupportedValueError{Str: "forced write failure"}

func TestReadDecisionsRejectsGarbage(t *testing.T) {
	_, err := ReadDecisions(strings.NewReader("{\"kind\":\"decide\"}\nnot json\n"))
	if err == nil {
		t.Fatal("garbage line parsed")
	}
}

func TestSeriesJSONRoundTrip(t *testing.T) {
	c := NewCollector(Config{Interval: 25})
	feed(c, 100)
	s := c.Series()
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Series
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(back.Samples) != len(s.Samples) || back.Interval != s.Interval {
		t.Fatalf("round trip changed series shape: %d/%d samples", len(back.Samples), len(s.Samples))
	}
}
