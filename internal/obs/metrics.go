package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Live-run metric names shared by the experiment engine and the progress
// reporter. The engine registers and updates them; StartProgress and the
// /metrics endpoint read them. Keeping the names here (rather than in exp)
// lets the reporter stay decoupled from the engine while still computing
// done/total and ETA.
const (
	// MetricCellsTotal counts matrix cells submitted to RunJobs.
	MetricCellsTotal = "cells_total"
	// MetricCellsDone counts cells that finished (success or failure).
	MetricCellsDone = "cells_done"
	// MetricCellsFailed counts cells that finished with an error.
	MetricCellsFailed = "cells_failed"
	// MetricQueueWait observes seconds each run spent waiting for a worker
	// slot before simulating.
	MetricQueueWait = "queue_wait_seconds"
	// MetricRunSeconds observes end-to-end simulation seconds per cell.
	MetricRunSeconds = "run_seconds"
	// MetricAccesses counts demand accesses simulated across completed cells.
	MetricAccesses = "sim_accesses_total"
	// GaugeWorkersBusy tracks runs currently holding a worker slot.
	GaugeWorkersBusy = "workers_busy"
	// GaugeLastIPC holds the IPC of the most recently completed cell.
	GaugeLastIPC = "last_ipc"
	// GaugeLastL1MPKI holds the L1 MPKI of the most recently completed cell.
	GaugeLastL1MPKI = "last_l1_mpki"
)

// DefaultDurationBuckets are the histogram bucket upper bounds (seconds)
// used for queue-wait and run-time observations: exponential from 1ms to
// ~8min, wide enough for a quick smoke cell and a full-scale SPEC run.
var DefaultDurationBuckets = []float64{
	0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300, 480,
}

// DefaultLatencyBuckets are the bucket bounds (seconds) for serving-path
// latencies: log-spaced doubling from 250ns to ~2s. A learner decide is
// hundreds of nanoseconds, a cross-host round trip hundreds of
// microseconds, a retried request tens of milliseconds — the doubling grid
// keeps relative error bounded (~±50% within a bucket, tightened by
// Quantile's interpolation) across all six decades.
var DefaultLatencyBuckets = latencyBuckets()

func latencyBuckets() []float64 {
	out := make([]float64, 24)
	v := 250e-9
	for i := range out {
		out[i] = v
		v *= 2
	}
	return out
}

// Counter is a monotonically increasing metric. The hot path is one atomic
// add; a nil *Counter (the disabled registry) reduces every method to a
// branch-on-nil, mirroring the package's nil-*Collector contract.
type Counter struct {
	v    atomic.Uint64
	name string
	help string
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down, stored as float64 bits so IPC
// and MPKI readings fit. Nil-safe like Counter.
type Gauge struct {
	bits atomic.Uint64
	name string
	help string
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by dv (CAS loop; contention is per-cell, not
// per-access, so this never sees the hot path).
func (g *Gauge) Add(dv float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + dv)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current reading (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: counts per upper bound plus a running sum and count. Observe is
// a bucket scan plus three atomic adds — lock-free, and nil-safe.
type Histogram struct {
	name   string
	help   string
	bounds []float64
	counts []atomic.Uint64 // one per bound, plus the +Inf overflow at the end
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Quantile estimates the q-quantile (0 < q < 1) from the bucket counts by
// linear interpolation inside the bucket where the rank falls: the bucket's
// observations are assumed uniform between its lower and upper bound (the
// first bucket interpolates from 0). Observations in the +Inf overflow
// bucket cannot be interpolated, so ranks landing there return the highest
// finite bound — a deliberate underestimate that callers should read as
// "at least". Empty and nil histograms return 0.
//
// The bucket counts are read atomically but not as one snapshot, so a
// quantile taken concurrently with Observe calls is approximate in the same
// way any scrape is; it never panics or returns a value outside the bucket
// range.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || len(h.bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Walk the buckets once, accumulating; total comes from the walked
	// counts (not h.count) so rank and counts are mutually consistent.
	n := len(h.bounds)
	counts := make([]uint64, n+1)
	var total uint64
	for i := range counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i := 0; i < n; i++ {
		c := float64(counts[i])
		if cum+c >= rank && c > 0 {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			return lower + (rank-cum)/c*(h.bounds[i]-lower)
		}
		cum += c
	}
	return h.bounds[n-1]
}

// Registry is a lock-cheap metric namespace: registration takes a mutex
// once per metric, after which every update is purely atomic. A nil
// *Registry is the disabled configuration — its getters return nil metric
// handles whose methods are no-ops, so instrumented code needs no
// enabled/disabled branches of its own.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	order      []string // registration order, for deterministic export
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, registering it on first use. The same
// name always yields the same handle; help is recorded on first
// registration. Nil registries return nil (a no-op counter).
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, help: help}
	r.counters[name] = c
	r.order = append(r.order, name)
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name, help: help}
	r.gauges[name] = g
	r.order = append(r.order, name)
	return g
}

// Histogram returns the named histogram, registering it on first use with
// the given bucket upper bounds (nil means DefaultDurationBuckets). Bounds
// must be sorted ascending; they are fixed at registration.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	if bounds == nil {
		bounds = DefaultDurationBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	h := &Histogram{name: name, help: help, bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
	r.histograms[name] = h
	r.order = append(r.order, name)
	return h
}

// snapshot returns the registered names in registration order plus lookup
// maps, under the lock; values are read atomically afterwards.
func (r *Registry) snapshot() (order []string, cs map[string]*Counter, gs map[string]*Gauge, hs map[string]*Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	order = append([]string(nil), r.order...)
	cs = make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		cs[k] = v
	}
	gs = make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gs[k] = v
	}
	hs = make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hs[k] = v
	}
	return order, cs, gs, hs
}

// fmtFloat renders a float the way the Prometheus text format expects.
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	order, cs, gs, hs := r.snapshot()
	for _, name := range order {
		switch {
		case cs[name] != nil:
			c := cs[name]
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
				name, c.help, name, name, c.Value()); err != nil {
				return err
			}
		case gs[name] != nil:
			g := gs[name]
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
				name, g.help, name, name, fmtFloat(g.Value())); err != nil {
				return err
			}
		case hs[name] != nil:
			h := hs[name]
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, h.help, name); err != nil {
				return err
			}
			var cum uint64
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmtFloat(b), cum); err != nil {
					return err
				}
			}
			cum += h.counts[len(h.bounds)].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
				name, cum, name, fmtFloat(h.Sum()), name, h.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}

// ExpvarMap returns the registry as a plain name→value map for expvar-style
// JSON export: counters and gauges as numbers, histograms as
// {count, sum, buckets}.
func (r *Registry) ExpvarMap() map[string]any {
	out := map[string]any{}
	if r == nil {
		return out
	}
	order, cs, gs, hs := r.snapshot()
	for _, name := range order {
		switch {
		case cs[name] != nil:
			out[name] = cs[name].Value()
		case gs[name] != nil:
			out[name] = gs[name].Value()
		case hs[name] != nil:
			h := hs[name]
			buckets := map[string]uint64{}
			var cum uint64
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				buckets[fmtFloat(b)] = cum
			}
			cum += h.counts[len(h.bounds)].Load()
			buckets["+Inf"] = cum
			out[name] = map[string]any{"count": h.Count(), "sum": h.Sum(), "buckets": buckets}
		}
	}
	return out
}
