package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryNilIsDisabled(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x", "")
	g := reg.Gauge("y", "")
	h := reg.Histogram("z", "", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	// Every method must be a no-op on nil handles, not a crash.
	c.Add(3)
	c.Inc()
	g.Set(1.5)
	g.Add(1)
	h.Observe(0.1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics must read as zero")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Errorf("nil registry export: err=%v out=%q", err, sb.String())
	}
	if m := reg.ExpvarMap(); len(m) != 0 {
		t.Errorf("nil registry expvar map non-empty: %v", m)
	}
}

func TestRegistryHandlesAreStable(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("cells_done", "done")
	c2 := reg.Counter("cells_done", "different help ignored")
	if c1 != c2 {
		t.Fatal("same counter name must return the same handle")
	}
	if reg.Gauge("g", "") != reg.Gauge("g", "") {
		t.Fatal("same gauge name must return the same handle")
	}
	if reg.Histogram("h", "", nil) != reg.Histogram("h", "", []float64{1}) {
		t.Fatal("same histogram name must return the same handle")
	}
}

func TestCounterGaugeValues(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c", "")
	c.Add(5)
	c.Inc()
	if c.Value() != 6 {
		t.Errorf("counter = %d, want 6", c.Value())
	}
	g := reg.Gauge("g", "")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Errorf("gauge = %v, want 1.5", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+2+100; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// le="0.1" catches 0.05 and the boundary value 0.1 (le is inclusive).
	for _, want := range []string{
		`lat_bucket{le="0.1"} 2`,
		`lat_bucket{le="1"} 3`,
		`lat_bucket{le="10"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		"lat_sum 102.65",
		"lat_count 5",
		"# TYPE lat histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MetricCellsDone, "cells completed").Add(7)
	reg.Gauge(GaugeLastIPC, "last IPC").Set(0.75)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP cells_done cells completed",
		"# TYPE cells_done counter",
		"cells_done 7",
		"# TYPE last_ipc gauge",
		"last_ipc 0.75",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Registration order must be stable (counter registered first).
	if strings.Index(out, "cells_done") > strings.Index(out, "last_ipc") {
		t.Error("export must follow registration order")
	}
}

func TestExpvarMap(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c", "").Add(3)
	reg.Gauge("g", "").Set(1.25)
	reg.Histogram("h", "", []float64{1}).Observe(0.5)
	m := reg.ExpvarMap()
	if m["c"] != uint64(3) {
		t.Errorf("c = %v (%T)", m["c"], m["c"])
	}
	if m["g"] != 1.25 {
		t.Errorf("g = %v", m["g"])
	}
	hm, ok := m["h"].(map[string]any)
	if !ok {
		t.Fatalf("h = %T, want map", m["h"])
	}
	if hm["count"] != uint64(1) || hm["sum"] != 0.5 {
		t.Errorf("histogram map = %v", hm)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("shared", "")
			h := reg.Histogram("hist", "", nil)
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j) / 1000)
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared", "").Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := reg.Histogram("hist", "", nil).Count(); got != 8000 {
		t.Errorf("histogram count = %d, want 8000", got)
	}
}

func TestHistogramQuantilePinnedDistributions(t *testing.T) {
	reg := NewRegistry()

	// Uniform 1..100 into bounds {10,20,...,100}: every bucket holds
	// exactly 10 observations, so interpolation reproduces the quantile of
	// the continuous uniform distribution exactly.
	bounds := []float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	u := reg.Histogram("uniform", "", bounds)
	for i := 1; i <= 100; i++ {
		u.Observe(float64(i))
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 50}, {0.95, 95}, {0.99, 99}, {0.1, 10}, {1, 100},
	} {
		if got := u.Quantile(tc.q); got != tc.want {
			t.Errorf("uniform Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}

	// A point mass entirely inside one bucket: every quantile interpolates
	// within (40,50] — pinned to the exact interpolated positions.
	p := reg.Histogram("point", "", bounds)
	for i := 0; i < 8; i++ {
		p.Observe(45)
	}
	if got := p.Quantile(0.5); got != 45 {
		t.Errorf("point-mass p50 = %g, want 45 (midpoint of the (40,50] bucket)", got)
	}
	if got := p.Quantile(0.25); got != 42.5 {
		t.Errorf("point-mass p25 = %g, want 42.5", got)
	}

	// Ranks landing in the +Inf overflow bucket clamp to the last finite
	// bound ("at least 100").
	o := reg.Histogram("overflow", "", bounds)
	o.Observe(5)
	o.Observe(1e6)
	o.Observe(1e6)
	if got := o.Quantile(0.99); got != 100 {
		t.Errorf("overflow p99 = %g, want clamp to 100", got)
	}

	// First bucket interpolates from 0.
	f := reg.Histogram("first", "", bounds)
	for i := 0; i < 10; i++ {
		f.Observe(3)
	}
	if got := f.Quantile(0.5); got != 5 {
		t.Errorf("first-bucket p50 = %g, want 5 (midpoint of (0,10])", got)
	}

	// Empty and nil histograms are zero, never a panic.
	e := reg.Histogram("empty", "", bounds)
	if e.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram quantile must be 0")
	}
}

func TestDefaultLatencyBuckets(t *testing.T) {
	b := DefaultLatencyBuckets
	if len(b) != 24 {
		t.Fatalf("latency buckets: %d bounds, want 24", len(b))
	}
	if b[0] != 250e-9 {
		t.Errorf("first bound %g, want 250ns", b[0])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %g <= %g", i, b[i], b[i-1])
		}
	}
	if b[len(b)-1] < 1 {
		t.Errorf("last bound %g should cover multi-second retries", b[len(b)-1])
	}
}
