package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync/atomic"
	"time"
)

// Server exposes a registry over HTTP for the duration of one command
// invocation:
//
//	/metrics       Prometheus text exposition of the registry
//	/debug/vars    expvar JSON (standard published vars + the registry)
//	/healthz       liveness: 200 once the listener is up
//	/readyz        readiness: 503 until SetReady(true), 200 after
//	/debug/pprof/  the standard net/http/pprof profile handlers
//
// Security note: an empty host in the listen address (":9090") is
// rewritten to 127.0.0.1 — the endpoint exposes pprof and internal
// counters, so it must be opted onto the network explicitly by naming a
// non-loopback bind address (e.g. 0.0.0.0:9090).
type Server struct {
	ln    net.Listener
	srv   *http.Server
	mux   *http.ServeMux
	reg   *Registry
	ready atomic.Bool
	done  chan struct{}
}

// localhostDefault rewrites a listen address with an empty host
// (":9090") to bind loopback only.
func localhostDefault(listen string) string {
	host, port, err := net.SplitHostPort(listen)
	if err != nil {
		return listen // let net.Listen produce the real error
	}
	if host == "" {
		return net.JoinHostPort("127.0.0.1", port)
	}
	return listen
}

// Serve binds the listen address (":0" picks an ephemeral port; an empty
// host means loopback) and starts serving the registry. The caller owns
// the returned server and must Close it; Close is what guarantees the
// listener and the serving goroutine are gone.
func Serve(listen string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", localhostDefault(listen))
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", listen, err)
	}
	s := &Server{ln: ln, reg: reg, done: make(chan struct{})}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", s.serveVars)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if !s.ready.Load() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	// net/http/pprof registers on DefaultServeMux via init; wire its
	// handlers onto this mux explicitly so the endpoint is self-contained.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.mux = mux
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln) // returns http.ErrServerClosed on shutdown
	}()
	return s, nil
}

// serveVars renders expvar-style JSON: every expvar-published var (the
// runtime publishes memstats and cmdline) plus the registry under
// "semloc". Rendering by hand instead of expvar.Publish keeps multiple
// servers in one process (tests) from colliding on the global expvar
// namespace.
func (s *Server) serveVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	var parts []string
	expvar.Do(func(kv expvar.KeyValue) {
		k, _ := json.Marshal(kv.Key)
		parts = append(parts, fmt.Sprintf("%s: %s", k, kv.Value.String()))
	})
	regJSON, err := json.Marshal(s.reg.ExpvarMap())
	if err != nil {
		regJSON = []byte("{}")
	}
	parts = append(parts, fmt.Sprintf("%q: %s", "semloc", regJSON))
	fmt.Fprintf(w, "{\n%s\n}\n", strings.Join(parts, ",\n"))
}

// Addr returns the bound address (host:port), useful with ":0".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Handle registers an additional handler on the server's mux (e.g.
// prefetchd's /debug/serve session-stats endpoint). http.ServeMux guards
// registration with its own lock, so late registration is safe, but the
// usual pattern is to register between Serve and the first request.
func (s *Server) Handle(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// SetReady flips the /readyz state (the commands mark ready once their
// runner is constructed and jobs are submitted).
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Close shuts the server down gracefully (bounded wait for in-flight
// scrapes), then forcefully, and waits for the serving goroutine to exit —
// after Close returns, neither the listener nor the goroutine remains.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		s.srv.Close()
	}
	<-s.done
	return err
}
