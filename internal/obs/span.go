package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Span phase names recorded by the experiment engine. A run span carries
// up to four phases in chronological order: waiting for (or generating)
// the decoded trace, waiting for a worker slot, simulating the warm-up
// region, and simulating the measured region.
const (
	PhaseDecode    = "decode"
	PhaseQueueWait = "queue_wait"
	PhaseWarmup    = "warmup"
	PhaseMeasured  = "measured"
)

// Serving-path phase names recorded by prefetchd's per-request spans
// (internal/serve). PhaseDecode and PhaseQueueWait are shared: a serve span
// reuses them for wire-frame parse time and inbox wait.
const (
	PhaseDecide = "decide"
	PhaseWrite  = "write"
)

// Span categories.
const (
	// CatRun is a per-cell simulation span (one (workload, prefetcher,
	// point) job end to end).
	CatRun = "run"
	// CatTrace is a trace-generation span inside the TraceCache.
	CatTrace = "trace"
	// CatServe is a sampled per-request serving span from prefetchd
	// (decode → queue_wait → decide → write); Workload carries the session
	// id and Point the request seq.
	CatServe = "serve"
)

// Phase is one timed sub-interval of a span. Start is an offset from the
// recorder's epoch.
type Phase struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start"`
	Dur   time.Duration `json:"dur"`
}

// Span is one traced operation: a simulation cell or a trace generation.
type Span struct {
	// Cat is the span category (CatRun or CatTrace).
	Cat string `json:"cat"`
	// Workload/Prefetcher/Point are the job coordinates (Prefetcher empty
	// for trace spans).
	Workload   string `json:"workload"`
	Prefetcher string `json:"prefetcher,omitempty"`
	Point      int    `json:"point,omitempty"`
	// Start is the offset from the recorder epoch; Dur the total length.
	Start time.Duration `json:"start"`
	Dur   time.Duration `json:"dur"`
	// Err records whether the operation failed.
	Err bool `json:"err,omitempty"`
	// Phases subdivides the span (run spans only).
	Phases []Phase `json:"phases,omitempty"`
}

// Cell names the span's matrix cell ("workload/prefetcher[point]", or just
// the workload for trace spans).
func (s *Span) Cell() string {
	if s.Prefetcher == "" {
		return s.Workload
	}
	if s.Point != 0 {
		return fmt.Sprintf("%s/%s[%d]", s.Workload, s.Prefetcher, s.Point)
	}
	return s.Workload + "/" + s.Prefetcher
}

// SpanRecorder collects spans for one command invocation. Recording is a
// mutex-guarded append, paid once per cell (never on the per-access hot
// path); a nil *SpanRecorder disables tracing — Now returns 0 and Add is
// a no-op, matching the package's nil-receiver contract.
type SpanRecorder struct {
	epoch time.Time
	mu    sync.Mutex
	spans []Span
}

// NewSpanRecorder starts an empty recorder; its epoch is the construction
// time and every recorded offset is relative to it.
func NewSpanRecorder() *SpanRecorder {
	return &SpanRecorder{epoch: time.Now()}
}

// Now returns the current offset from the recorder epoch (0 when nil), the
// timestamp base callers use to build spans and phases.
func (r *SpanRecorder) Now() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.epoch)
}

// Add records one completed span.
func (r *SpanRecorder) Add(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
}

// Spans returns a copy of the recorded spans, ordered by start time.
func (r *SpanRecorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]Span(nil), r.spans...)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// chromeEvent is one entry of the Chrome trace-event JSON format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU),
// the subset Perfetto and about:tracing load: complete ("X") duration
// events plus metadata ("M") thread names.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`            // microseconds
	Dur  float64        `json:"dur,omitempty"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit,omitempty"`
}

// assignLanes packs spans (ordered by start) onto the smallest number of
// non-overlapping lanes, greedily: each span takes the lowest lane whose
// previous span has ended. Lanes correspond to worker-pool slots — the
// engine's workers are anonymous goroutines, but any schedule's spans fit
// exactly the worker count it ran with, so the lane view is the worker
// view.
func assignLanes(spans []Span) []int {
	lanes := make([]int, len(spans))
	var laneEnd []time.Duration
	for i, s := range spans {
		placed := false
		for l := range laneEnd {
			if laneEnd[l] <= s.Start {
				lanes[i] = l
				laneEnd[l] = s.Start + s.Dur
				placed = true
				break
			}
		}
		if !placed {
			lanes[i] = len(laneEnd)
			laneEnd = append(laneEnd, s.Start+s.Dur)
		}
	}
	return lanes
}

// Lanes exposes the worker-lane packing for consumers of recorded span
// files (cmd/inspect renders utilization from it). Spans must be ordered by
// start time, as Spans and ReadChromeTrace return them.
func Lanes(spans []Span) []int { return assignLanes(spans) }

const chromePID = 1

// WriteChromeTrace renders the recorded spans as Chrome trace-event JSON,
// loadable by Perfetto and about:tracing. Each span becomes a complete
// event on a worker lane; its phases become nested complete events on the
// same lane. Timestamps are microseconds from the recorder epoch.
func (r *SpanRecorder) WriteChromeTrace(w io.Writer) error {
	spans := r.Spans()
	lanes := assignLanes(spans)
	nLanes := 0
	for _, l := range lanes {
		if l+1 > nLanes {
			nLanes = l + 1
		}
	}
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	ct := chromeTrace{DisplayTimeUnit: "ms"}
	ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: chromePID, TID: 0,
		Args: map[string]any{"name": "semloc"},
	})
	for l := 0; l < nLanes; l++ {
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePID, TID: l,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", l)},
		})
	}
	for i, s := range spans {
		args := map[string]any{
			"cell":     s.Cell(),
			"workload": s.Workload,
			"span":     i,
		}
		if s.Prefetcher != "" {
			args["prefetcher"] = s.Prefetcher
			args["point"] = s.Point
		}
		if s.Err {
			args["err"] = true
		}
		ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
			Name: s.Cell(), Cat: s.Cat, Ph: "X",
			TS: us(s.Start), Dur: us(s.Dur), PID: chromePID, TID: lanes[i], Args: args,
		})
		for _, p := range s.Phases {
			ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
				Name: p.Name, Cat: "phase", Ph: "X",
				TS: us(p.Start), Dur: us(p.Dur), PID: chromePID, TID: lanes[i],
				Args: map[string]any{"cell": s.Cell(), "span": i},
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ct)
}

// ReadChromeTrace parses a span file written by WriteChromeTrace back into
// spans (cmd/inspect's side of the round trip). Metadata events and
// unknown categories are ignored; phases rejoin their span via the span id
// carried in args.
func ReadChromeTrace(r io.Reader) ([]Span, error) {
	var ct chromeTrace
	if err := json.NewDecoder(r).Decode(&ct); err != nil {
		return nil, fmt.Errorf("obs: span file: %w", err)
	}
	toDur := func(us float64) time.Duration { return time.Duration(us * 1e3) }
	spanIdx := map[int]int{} // span id in args -> index into out
	var out []Span
	argInt := func(args map[string]any, key string) (int, bool) {
		v, ok := args[key].(float64) // JSON numbers decode as float64
		if !ok {
			return 0, false
		}
		return int(v), true
	}
	for _, ev := range ct.TraceEvents {
		if ev.Ph != "X" || (ev.Cat != CatRun && ev.Cat != CatTrace && ev.Cat != CatServe) {
			continue
		}
		s := Span{
			Cat:   ev.Cat,
			Start: toDur(ev.TS),
			Dur:   toDur(ev.Dur),
		}
		if wl, ok := ev.Args["workload"].(string); ok {
			s.Workload = wl
		}
		if pf, ok := ev.Args["prefetcher"].(string); ok {
			s.Prefetcher = pf
		}
		if pt, ok := argInt(ev.Args, "point"); ok {
			s.Point = pt
		}
		if e, ok := ev.Args["err"].(bool); ok {
			s.Err = e
		}
		if id, ok := argInt(ev.Args, "span"); ok {
			spanIdx[id] = len(out)
		}
		out = append(out, s)
	}
	for _, ev := range ct.TraceEvents {
		if ev.Ph != "X" || ev.Cat != "phase" {
			continue
		}
		id, ok := argInt(ev.Args, "span")
		if !ok {
			continue
		}
		i, ok := spanIdx[id]
		if !ok {
			continue
		}
		out[i].Phases = append(out[i].Phases, Phase{
			Name: ev.Name, Start: toDur(ev.TS), Dur: toDur(ev.Dur),
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("obs: span file holds no run, trace or serve spans")
	}
	return out, nil
}
