// Package obs is the simulation stack's telemetry layer: interval
// time-series sampling of the prefetcher's learning trajectory, a sampled
// per-decision event trace, and the logging/profiling helpers the run
// commands share.
//
// The paper's prefetcher is an online learner — coverage, accuracy and
// CST occupancy evolve over a run (the warm-up/convergence behaviour
// behind Figures 5 and 8) — but end-of-run aggregates (core.Metrics,
// Inspect) cannot show *when* the bandit converges or why a delta was
// chosen. This package makes that visible without giving up the hot-path
// contract (DESIGN.md, "Hot path & benchmarking"):
//
//   - Disabled is free. A disabled configuration produces a nil
//     *Collector; every hook in core and sim guards with a single
//     branch-on-nil, so the instrumented hot path stays 0 allocs/op and
//     bit-identical to the uninstrumented one (the overhead-guard target
//     in the Makefile enforces this).
//   - Sampling is deterministic. Both the interval sampler and the 1-in-N
//     decision trace run off their own counters, never the policy RNG, so
//     enabling telemetry cannot perturb simulated behaviour.
//   - The series is bounded. When a run outgrows MaxSamples, adjacent
//     samples merge pairwise and the effective interval doubles, so a
//     billion-access run still exports a compact, full-history curve.
package obs

import (
	"fmt"
	"io"
)

// DefaultInterval is the sampling interval (in demand accesses) used when
// a Config enables sampling without choosing one.
const DefaultInterval = 4096

// DefaultMaxSamples bounds the series length before decimation kicks in.
const DefaultMaxSamples = 2048

// Config enables and parameterizes telemetry for one simulation run.
// The zero value disables everything.
type Config struct {
	// Interval snapshots the time series every Interval demand accesses;
	// 0 disables interval sampling.
	Interval uint64 `json:"interval,omitempty"`
	// MaxSamples bounds the series length: on overflow, adjacent samples
	// merge pairwise and the effective interval doubles. 0 means
	// DefaultMaxSamples.
	MaxSamples int `json:"max_samples,omitempty"`
	// DecisionRate traces one in DecisionRate prediction/reward events to
	// DecisionSink as JSONL; 0 disables decision tracing.
	DecisionRate uint64 `json:"decision_rate,omitempty"`
	// DecisionSink receives the JSONL decision-event stream. Decision
	// tracing is off when nil, whatever DecisionRate says.
	DecisionSink io.Writer `json:"-"`
	// Learner, when non-nil, receives each interval sample as live
	// learner-health gauges/counters (see LearnerMetrics), so a /metrics
	// endpoint carries the learning curve while the run executes. It only
	// fires at interval boundaries; nil keeps Record registry-free.
	Learner *LearnerMetrics `json:"-"`
}

// Enabled reports whether the configuration switches any telemetry on.
func (c Config) Enabled() bool {
	return c.Interval > 0 || (c.DecisionRate > 0 && c.DecisionSink != nil)
}

// DeltaCount pairs a link delta with its occurrence count across the CST
// (the obs-side mirror of core.DeltaCount, duplicated so obs stays a leaf
// package the core can import).
type DeltaCount struct {
	Delta int8 `json:"delta"`
	Count int  `json:"count"`
}

// CoreSnapshot is the cumulative prefetcher-side state the sampler reads
// at each interval boundary. All counters are cumulative since the run
// (or the last warm-up reset); the collector differences them into
// per-interval deltas.
type CoreSnapshot struct {
	Accesses         uint64
	Predictions      uint64
	RealPrefetches   uint64
	ShadowPrefetches uint64
	QueueHits        uint64
	Expired          uint64
	Activations      uint64
	Deactivations    uint64
	// Learner-health counters (cumulative): prefetch outcome taxonomy,
	// explore/exploit/suppress decision split, reward-sign mix, and CST
	// candidate-collection churn. OutcomeUseless is a point-in-time gauge
	// (dispatches still pending in the queue), not a cumulative counter.
	OutcomeAccurate uint64
	OutcomeLate     uint64
	OutcomeEvicted  uint64
	OutcomeUseless  uint64
	Explores        uint64
	Exploits        uint64
	Suppressed      uint64
	PosRewards      uint64
	NegRewards      uint64
	ZeroRewards     uint64
	CSTInsertions   uint64
	CSTReplacements uint64
	CSTRejects      uint64
	// Accuracy and Epsilon are the policy's instantaneous estimates.
	Accuracy float64
	Epsilon  float64
	// CSTEntries/CSTLinks/CSTMeanScore/TopDeltas summarize the learned
	// table state at the boundary; CSTPositiveLinks/CSTSaturatedLinks are
	// the score-distribution gauges.
	CSTEntries        int
	CSTLinks          int
	CSTPositiveLinks  int
	CSTSaturatedLinks int
	CSTMeanScore      float64
	TopDeltas         []DeltaCount
}

// MachineSnapshot is the cumulative machine-side state (core model and
// cache hierarchy) read at each interval boundary.
type MachineSnapshot struct {
	// Cycles is the current simulated cycle.
	Cycles uint64
	// Instructions is the retired-instruction count (updated by the core
	// model at its periodic checkpoints, so it may lag by a few thousand
	// records).
	Instructions uint64
	// L1Misses and L2Misses are demand misses (reset at warm-up).
	L1Misses, L2Misses uint64
}

// CoreSource is implemented by prefetchers that expose learning-state
// telemetry (core.Prefetcher does).
type CoreSource interface {
	TelemetrySnapshot() CoreSnapshot
}

// Attachable is implemented by prefetchers that accept a collector for
// decision tracing (core.Prefetcher does).
type Attachable interface {
	AttachTelemetry(*Collector)
}

// Sample is one interval snapshot. Cycles, Instructions, IPC and the
// learned-state gauges are point-in-time values; the remaining counters
// are deltas over the interval ending at Index.
type Sample struct {
	// Index is the demand-access index at the end of the interval.
	Index uint64 `json:"index"`
	// Cycles and Instructions are cumulative machine progress.
	Cycles       uint64 `json:"cycles"`
	Instructions uint64 `json:"instructions"`
	// IPC is cumulative (instructions/cycles so far); IntervalIPC covers
	// only this interval.
	IPC         float64 `json:"ipc"`
	IntervalIPC float64 `json:"interval_ipc"`
	// L1Misses/L2Misses are interval demand misses; L1MPKI/L2MPKI are the
	// interval rates per kilo-instruction.
	L1Misses uint64  `json:"l1_misses"`
	L2Misses uint64  `json:"l2_misses"`
	L1MPKI   float64 `json:"l1_mpki"`
	L2MPKI   float64 `json:"l2_mpki"`
	// Accesses..Deactivations are interval deltas of the prefetcher's
	// counters.
	Accesses      uint64 `json:"accesses"`
	QueueHits     uint64 `json:"queue_hits"`
	Predictions   uint64 `json:"predictions"`
	Real          uint64 `json:"real"`
	Shadow        uint64 `json:"shadow"`
	Expired       uint64 `json:"expired"`
	Activations   uint64 `json:"activations"`
	Deactivations uint64 `json:"deactivations"`
	// Learner-health interval deltas: outcome taxonomy, explore/exploit/
	// suppress decision split, reward-sign mix, and CST collection churn.
	Accurate        uint64 `json:"accurate"`
	Late            uint64 `json:"late"`
	Evicted         uint64 `json:"evicted"`
	Explores        uint64 `json:"explores"`
	Exploits        uint64 `json:"exploits"`
	Suppressed      uint64 `json:"suppressed"`
	PosRewards      uint64 `json:"pos_rewards"`
	NegRewards      uint64 `json:"neg_rewards"`
	ZeroRewards     uint64 `json:"zero_rewards"`
	CSTInsertions   uint64 `json:"cst_insertions"`
	CSTReplacements uint64 `json:"cst_replacements"`
	CSTRejects      uint64 `json:"cst_rejects"`
	// QueueHitRate is QueueHits/Accesses over the interval.
	QueueHitRate float64 `json:"queue_hit_rate"`
	// Accuracy/Epsilon and the CST gauges are point-in-time learner state;
	// Useless is the pending-issued population at the boundary.
	Accuracy          float64      `json:"accuracy"`
	Epsilon           float64      `json:"epsilon"`
	Useless           uint64       `json:"useless"`
	CSTEntries        int          `json:"cst_entries"`
	CSTLinks          int          `json:"cst_links"`
	CSTPositiveLinks  int          `json:"cst_positive_links"`
	CSTSaturatedLinks int          `json:"cst_saturated_links"`
	CSTMeanScore      float64      `json:"cst_mean_score"`
	TopDeltas         []DeltaCount `json:"top_deltas,omitempty"`
}

// Series is the exported time series of one run.
type Series struct {
	// BaseInterval is the configured interval; Interval is the effective
	// one after any decimation (always BaseInterval × 2^k).
	BaseInterval uint64 `json:"base_interval"`
	Interval     uint64 `json:"interval"`
	// WarmupIndex is the demand-access index at which statistics were
	// reset (0: no warm-up marker retired).
	WarmupIndex uint64 `json:"warmup_index,omitempty"`
	// Decisions counts decision-trace events written to the sink.
	Decisions uint64 `json:"decisions,omitempty"`
	// Samples is the curve, oldest first, strictly increasing Index.
	Samples []Sample `json:"samples"`
}

// Validate checks the structural invariants cmd/inspect relies on.
func (s *Series) Validate() error {
	if s == nil {
		return fmt.Errorf("obs: nil series")
	}
	if s.Interval == 0 || s.BaseInterval == 0 {
		return fmt.Errorf("obs: series has zero interval")
	}
	if s.Interval%s.BaseInterval != 0 {
		return fmt.Errorf("obs: effective interval %d not a multiple of base %d", s.Interval, s.BaseInterval)
	}
	if len(s.Samples) == 0 {
		return fmt.Errorf("obs: series has no samples")
	}
	var last uint64
	for i := range s.Samples {
		sm := &s.Samples[i]
		if i > 0 && sm.Index <= last {
			return fmt.Errorf("obs: sample %d index %d not after %d", i, sm.Index, last)
		}
		last = sm.Index
		// The rate may exceed 1: one demand access can consume several
		// queued predictions of the same block. Negative is impossible.
		if sm.QueueHitRate < 0 {
			return fmt.Errorf("obs: sample %d queue hit rate %v out of range", i, sm.QueueHitRate)
		}
	}
	return nil
}

// Collector gathers one run's telemetry. A nil *Collector is the disabled
// configuration: every method is nil-safe and the hot-path hooks reduce
// to one branch.
type Collector struct {
	cfg        Config
	interval   uint64
	maxSamples int
	series     Series
	prev       CoreSnapshot
	prevMach   MachineSnapshot
	events     uint64
	sink       *decisionSink
}

// NewCollector builds a collector for cfg, or returns nil when cfg
// disables all telemetry (the branch-on-nil fast path).
func NewCollector(cfg Config) *Collector {
	if !cfg.Enabled() {
		return nil
	}
	max := cfg.MaxSamples
	if max <= 0 {
		max = DefaultMaxSamples
	}
	if max < 2 {
		max = 2 // pair-merge decimation needs room to halve
	}
	c := &Collector{
		cfg:        cfg,
		interval:   cfg.Interval,
		maxSamples: max,
		series:     Series{BaseInterval: cfg.Interval, Interval: cfg.Interval},
	}
	if cfg.DecisionRate > 0 && cfg.DecisionSink != nil {
		c.sink = newDecisionSink(cfg.DecisionSink)
	}
	return c
}

// SamplingEnabled reports whether interval sampling is on.
func (c *Collector) SamplingEnabled() bool { return c != nil && c.interval > 0 }

// Due reports whether the access index ending now closes an interval.
// Callers invoke it once per demand access after incrementing their index.
func (c *Collector) Due(index uint64) bool {
	return c != nil && c.interval > 0 && index > 0 && index%c.interval == 0
}

// LastIndex returns the index of the newest sample (0 when none).
func (c *Collector) LastIndex() uint64 {
	if c == nil || len(c.series.Samples) == 0 {
		return 0
	}
	return c.series.Samples[len(c.series.Samples)-1].Index
}

// delta differences cumulative counters across an interval, absorbing the
// warm-up reset (a counter that restarted reads as its new value).
func delta(cur, prev uint64) uint64 {
	if cur < prev {
		return cur
	}
	return cur - prev
}

// Record appends one sample at index from the cumulative machine and core
// snapshots, decimating if the series is full.
func (c *Collector) Record(index uint64, m MachineSnapshot, cs CoreSnapshot) {
	if c == nil || c.interval == 0 {
		return
	}
	s := Sample{
		Index:         index,
		Cycles:        m.Cycles,
		Instructions:  m.Instructions,
		L1Misses:      delta(m.L1Misses, c.prevMach.L1Misses),
		L2Misses:      delta(m.L2Misses, c.prevMach.L2Misses),
		Accesses:      delta(cs.Accesses, c.prev.Accesses),
		QueueHits:     delta(cs.QueueHits, c.prev.QueueHits),
		Predictions:   delta(cs.Predictions, c.prev.Predictions),
		Real:          delta(cs.RealPrefetches, c.prev.RealPrefetches),
		Shadow:        delta(cs.ShadowPrefetches, c.prev.ShadowPrefetches),
		Expired:       delta(cs.Expired, c.prev.Expired),
		Activations:   delta(cs.Activations, c.prev.Activations),
		Deactivations: delta(cs.Deactivations, c.prev.Deactivations),

		Accurate:        delta(cs.OutcomeAccurate, c.prev.OutcomeAccurate),
		Late:            delta(cs.OutcomeLate, c.prev.OutcomeLate),
		Evicted:         delta(cs.OutcomeEvicted, c.prev.OutcomeEvicted),
		Explores:        delta(cs.Explores, c.prev.Explores),
		Exploits:        delta(cs.Exploits, c.prev.Exploits),
		Suppressed:      delta(cs.Suppressed, c.prev.Suppressed),
		PosRewards:      delta(cs.PosRewards, c.prev.PosRewards),
		NegRewards:      delta(cs.NegRewards, c.prev.NegRewards),
		ZeroRewards:     delta(cs.ZeroRewards, c.prev.ZeroRewards),
		CSTInsertions:   delta(cs.CSTInsertions, c.prev.CSTInsertions),
		CSTReplacements: delta(cs.CSTReplacements, c.prev.CSTReplacements),
		CSTRejects:      delta(cs.CSTRejects, c.prev.CSTRejects),

		Accuracy:          cs.Accuracy,
		Epsilon:           cs.Epsilon,
		Useless:           cs.OutcomeUseless,
		CSTEntries:        cs.CSTEntries,
		CSTLinks:          cs.CSTLinks,
		CSTPositiveLinks:  cs.CSTPositiveLinks,
		CSTSaturatedLinks: cs.CSTSaturatedLinks,
		CSTMeanScore:      cs.CSTMeanScore,
		TopDeltas:         cs.TopDeltas,
	}
	if m.Cycles > 0 {
		s.IPC = float64(m.Instructions) / float64(m.Cycles)
	}
	if dc := delta(m.Cycles, c.prevMach.Cycles); dc > 0 {
		s.IntervalIPC = float64(delta(m.Instructions, c.prevMach.Instructions)) / float64(dc)
	}
	if di := delta(m.Instructions, c.prevMach.Instructions); di > 0 {
		s.L1MPKI = float64(s.L1Misses) / float64(di) * 1000
		s.L2MPKI = float64(s.L2Misses) / float64(di) * 1000
	}
	if s.Accesses > 0 {
		s.QueueHitRate = float64(s.QueueHits) / float64(s.Accesses)
	}
	c.prev = cs
	c.prevMach = m
	c.cfg.Learner.Update(&s)
	c.series.Samples = append(c.series.Samples, s)
	if len(c.series.Samples) > c.maxSamples {
		c.decimate()
	}
}

// decimate merges adjacent sample pairs and doubles the effective
// interval, keeping the full run history at half the resolution. Interval
// deltas sum; cumulative values and learner gauges take the later
// sample's; rates are recomputed over the merged span.
func (c *Collector) decimate() {
	in := c.series.Samples
	out := in[:0]
	var prev Sample // zero: run start
	for i := 0; i+1 < len(in); i += 2 {
		a, b := in[i], in[i+1]
		m := b
		m.L1Misses = a.L1Misses + b.L1Misses
		m.L2Misses = a.L2Misses + b.L2Misses
		m.Accesses = a.Accesses + b.Accesses
		m.QueueHits = a.QueueHits + b.QueueHits
		m.Predictions = a.Predictions + b.Predictions
		m.Real = a.Real + b.Real
		m.Shadow = a.Shadow + b.Shadow
		m.Expired = a.Expired + b.Expired
		m.Activations = a.Activations + b.Activations
		m.Deactivations = a.Deactivations + b.Deactivations
		m.Accurate = a.Accurate + b.Accurate
		m.Late = a.Late + b.Late
		m.Evicted = a.Evicted + b.Evicted
		m.Explores = a.Explores + b.Explores
		m.Exploits = a.Exploits + b.Exploits
		m.Suppressed = a.Suppressed + b.Suppressed
		m.PosRewards = a.PosRewards + b.PosRewards
		m.NegRewards = a.NegRewards + b.NegRewards
		m.ZeroRewards = a.ZeroRewards + b.ZeroRewards
		m.CSTInsertions = a.CSTInsertions + b.CSTInsertions
		m.CSTReplacements = a.CSTReplacements + b.CSTReplacements
		m.CSTRejects = a.CSTRejects + b.CSTRejects
		if dc := delta(b.Cycles, prev.Cycles); dc > 0 {
			m.IntervalIPC = float64(delta(b.Instructions, prev.Instructions)) / float64(dc)
		}
		if di := delta(b.Instructions, prev.Instructions); di > 0 {
			m.L1MPKI = float64(m.L1Misses) / float64(di) * 1000
			m.L2MPKI = float64(m.L2Misses) / float64(di) * 1000
		}
		if m.Accesses > 0 {
			m.QueueHitRate = float64(m.QueueHits) / float64(m.Accesses)
		} else {
			m.QueueHitRate = 0
		}
		out = append(out, m)
		prev = b
	}
	if len(in)%2 == 1 {
		// The trailing unpaired sample keeps its own (finer) interval; its
		// Index stays strictly increasing, which is all Validate demands.
		out = append(out, in[len(in)-1])
	}
	c.series.Samples = out
	c.interval *= 2
	c.series.Interval = c.interval
}

// NoteWarmupEnd marks the warm-up boundary: interval deltas restart so
// the post-reset counters do not read as negative progress.
func (c *Collector) NoteWarmupEnd(index uint64) {
	if c == nil {
		return
	}
	c.series.WarmupIndex = index
	c.prev = CoreSnapshot{}
	c.prevMach.L1Misses = 0
	c.prevMach.L2Misses = 0
}

// Series exports the collected time series (nil when sampling was off).
func (c *Collector) Series() *Series {
	if c == nil || c.cfg.Interval == 0 {
		return nil
	}
	if c.sink != nil {
		c.series.Decisions = c.sink.written
	}
	return &c.series
}

// Err returns the first decision-sink write error, if any: telemetry loss
// must be loud, not silent.
func (c *Collector) Err() error {
	if c == nil || c.sink == nil {
		return nil
	}
	return c.sink.err
}
