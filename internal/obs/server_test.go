package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MetricCellsDone, "done").Add(4)
	reg.Counter(MetricCellsTotal, "total").Add(9)
	reg.Histogram(MetricQueueWait, "queue wait", nil).Observe(0.02)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	if code, body := get(t, base+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, _ := get(t, base+"/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz before SetReady = %d, want 503", code)
	}
	srv.SetReady(true)
	if code, _ := get(t, base+"/readyz"); code != 200 {
		t.Errorf("/readyz after SetReady = %d, want 200", code)
	}

	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{"cells_done 4", "cells_total 9", "queue_wait_seconds_count 1"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, base+"/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars = %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	sl, ok := vars["semloc"].(map[string]any)
	if !ok {
		t.Fatalf("/debug/vars missing semloc section: %v", vars)
	}
	if sl["cells_done"] != float64(4) {
		t.Errorf("expvar cells_done = %v", sl["cells_done"])
	}

	if code, body := get(t, base+"/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Errorf("/debug/pprof/cmdline = %d (len %d)", code, len(body))
	}
}

func TestServerLocalhostDefault(t *testing.T) {
	if got := localhostDefault(":1234"); got != "127.0.0.1:1234" {
		t.Errorf("localhostDefault(:1234) = %q", got)
	}
	if got := localhostDefault("0.0.0.0:1234"); got != "0.0.0.0:1234" {
		t.Errorf("explicit wildcard must be honoured, got %q", got)
	}
	if got := localhostDefault("example.com:80"); got != "example.com:80" {
		t.Errorf("explicit host must be honoured, got %q", got)
	}
	srv, err := Serve(":0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	host, _, err := net.SplitHostPort(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if host != "127.0.0.1" {
		t.Errorf("empty host bound %s, want loopback", host)
	}
}

// TestServerCloseUnderInflightScrapes shuts the server down while a pack
// of scrapers is mid-flight on every endpoint. Close must not panic, must
// come back, and must leave no serving goroutines behind — a prefetchd
// drain races its obs endpoint teardown against whatever Prometheus is
// doing at that instant. Run under -race (make race / obs-smoke).
func TestServerCloseUnderInflightScrapes(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(MetricCellsDone, "done").Add(1)
	baseline := runtime.NumGoroutine()

	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetReady(true)
	base := "http://" + srv.Addr()

	client := &http.Client{Timeout: 2 * time.Second}
	defer client.CloseIdleConnections()
	paths := []string{"/metrics", "/debug/vars", "/healthz", "/readyz"}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(base + path)
				if err != nil {
					return // server gone mid-request: expected after Close
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(paths[i%len(paths)])
	}

	// Let the scrapers get some requests genuinely in flight, then yank
	// the server out from under them.
	time.Sleep(20 * time.Millisecond)
	if err := srv.Close(); err != nil {
		t.Errorf("close under load: %v", err)
	}
	close(stop)
	wg.Wait()

	if _, err := client.Get(base + "/metrics"); err == nil {
		t.Error("server still answering after Close")
	}
	client.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestServerCloseReleasesListener(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if code, _ := get(t, fmt.Sprintf("http://%s/healthz", addr)); code != 200 {
		t.Fatalf("/healthz = %d", code)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// After Close the port must be refusing connections (no listener leak),
	// and rebinding the same port must succeed.
	if conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
		conn.Close()
		t.Error("listener still accepting after Close")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("port not released after Close: %v", err)
	}
	ln.Close()
}
