package sim

import (
	"fmt"
	"reflect"
	"testing"

	"semloc/internal/cache"
	"semloc/internal/core"
	"semloc/internal/memmodel"
	"semloc/internal/prefetch"
	"semloc/internal/trace"
	"semloc/internal/workloads"
)

func uint64AsAddr(i int) memmodel.Addr { return memmodel.Addr(i) }

func uint64AsLine(i int) memmodel.Line { return memmodel.Line(i) }

func genTrace(t *testing.T, name string, scale float64) *trace.Trace {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w.Generate(workloads.GenConfig{Scale: scale, Seed: 1})
}

func TestRunBasics(t *testing.T) {
	tr := genTrace(t, "list", 0.05)
	res, err := Run(tr, prefetch.NewNone(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "list" || res.Prefetcher != "none" {
		t.Errorf("identity wrong: %s/%s", res.Workload, res.Prefetcher)
	}
	if res.CPU.Instructions == 0 || res.CPU.Cycles == 0 {
		t.Fatalf("no work simulated: %+v", res.CPU)
	}
	if res.IPC() <= 0 {
		t.Error("IPC must be positive")
	}
	if res.L1.Accesses == 0 {
		t.Error("no L1 accesses recorded")
	}
	if res.L1MPKI() <= 0 {
		t.Error("list workload must miss in L1")
	}
}

func TestCategoriesPartitionDemand(t *testing.T) {
	for _, pn := range []string{"none", "sms", "context"} {
		var pf prefetch.Prefetcher
		switch pn {
		case "none":
			pf = prefetch.NewNone()
		case "sms":
			pf = prefetch.NewSMS(prefetch.SMSConfig{})
		case "context":
			pf = core.MustNew(core.DefaultConfig())
		}
		tr := genTrace(t, "list", 0.05)
		res, err := Run(tr, pf, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		c := res.Categories
		sum := c.HitPrefetched + c.ShorterWait + c.NonTimely + c.MissNotPrefetched + c.HitOlderDemand
		if sum != c.Demand {
			t.Errorf("%s: categories sum to %d, demand %d", pn, sum, c.Demand)
		}
		if c.Demand == 0 {
			t.Errorf("%s: no demand accesses", pn)
		}
	}
}

func TestNonePrefetcherHasNoPrefetchCategories(t *testing.T) {
	tr := genTrace(t, "list", 0.05)
	res, err := Run(tr, prefetch.NewNone(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := res.Categories
	if c.HitPrefetched != 0 || c.ShorterWait != 0 || c.NonTimely != 0 || c.PrefetchNeverHit != 0 {
		t.Errorf("no-prefetch run has prefetch categories: %+v", c)
	}
	if res.HitDepths.Total() != 0 {
		t.Error("no-prefetch run recorded hit depths")
	}
}

func TestContextSpeedsUpLinkedList(t *testing.T) {
	tr := genTrace(t, "list", 0.1)
	base, err := Run(tr, prefetch.NewNone(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := Run(tr, core.MustNew(core.DefaultConfig()), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	speedup := ctx.IPC() / base.IPC()
	if speedup < 1.5 {
		t.Errorf("context speedup on list = %.2fx, want >= 1.5x", speedup)
	}
	if ctx.L1MPKI() >= base.L1MPKI() {
		t.Errorf("context must reduce L1 MPKI: %.1f vs %.1f", ctx.L1MPKI(), base.L1MPKI())
	}
	if ctx.Categories.HitPrefetched == 0 {
		t.Error("no prefetched-line hits recorded")
	}
}

func TestAllPrefetchersSpeedUpArray(t *testing.T) {
	tr := genTrace(t, "array", 0.1)
	base, err := Run(tr, prefetch.NewNone(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pfs := []prefetch.Prefetcher{
		prefetch.NewStride(prefetch.StrideConfig{}),
		prefetch.NewGHB(prefetch.GHBConfig{Localization: prefetch.LocalizeGlobal}),
		prefetch.NewSMS(prefetch.SMSConfig{}),
		core.MustNew(core.DefaultConfig()),
	}
	for _, pf := range pfs {
		res, err := Run(tr, pf, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if s := res.IPC() / base.IPC(); s < 1.3 {
			t.Errorf("%s speedup on sequential array = %.2fx, want >= 1.3x", pf.Name(), s)
		}
	}
}

func TestContextHitDepthsInWindow(t *testing.T) {
	tr := genTrace(t, "list", 0.1)
	res, err := Run(tr, core.MustNew(core.DefaultConfig()), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.HitDepths.Total() == 0 {
		t.Fatal("no hit depths recorded")
	}
	rw := core.DefaultRewardConfig()
	frac := res.HitDepths.Fraction(rw.Low, rw.High)
	if frac < 0.4 {
		t.Errorf("fraction of hits inside reward window = %.2f, want >= 0.4 (Figure 8 step)", frac)
	}
}

func TestWarmupResetsStatistics(t *testing.T) {
	// A trace whose warm-up region is much larger than its measured region
	// must report the small measured region's instruction count.
	e := trace.NewEmitter("warmheavy")
	for i := 0; i < 10000; i++ {
		e.Load(0x100, 0x10000+64*uint64AsAddr(i))
	}
	e.EndWarmup()
	for i := 0; i < 100; i++ {
		e.Load(0x100, 0x10000+64*uint64AsAddr(i))
	}
	res, err := Run(e.Finish(), prefetch.NewNone(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.CPU.Instructions != 100 {
		t.Errorf("post-warmup instructions = %d, want 100", res.CPU.Instructions)
	}
	if res.L1.Accesses != 100 {
		t.Errorf("post-warmup L1 accesses = %d, want 100", res.L1.Accesses)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		tr := genTrace(t, "mcf", 0.05)
		res, err := Run(tr, core.MustNew(core.DefaultConfig()), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.CPU != b.CPU {
		t.Errorf("CPU results differ: %+v vs %+v", a.CPU, b.CPU)
	}
	if a.Categories != b.Categories {
		t.Errorf("categories differ: %+v vs %+v", a.Categories, b.Categories)
	}
}

func TestBranchHistories(t *testing.T) {
	e := trace.NewEmitter("bh")
	e.Branch(0x1, true)
	e.Load(0x2, 0x100)
	e.Branch(0x3, false)
	e.Branch(0x4, true)
	e.Load(0x5, 0x200)
	hists := branchHistories(e.Finish(), nil)
	if len(hists) != 2 {
		t.Fatalf("got %d histories, want 2", len(hists))
	}
	if hists[0] != 0b1 {
		t.Errorf("first history = %b, want 1", hists[0])
	}
	if hists[1] != 0b101 {
		t.Errorf("second history = %b, want 101", hists[1])
	}
}

func TestPredictionLog(t *testing.T) {
	p := newPredictionLog(4)
	p.add(10, 100, true)
	p.add(11, 101, false)
	pred, issued, depth := p.consume(10, 130)
	if !pred || !issued || depth != 30 {
		t.Errorf("consume(10) = %v/%v/%d, want true/true/30", pred, issued, depth)
	}
	// Consumed entries cannot match again.
	if pred, _, _ := p.consume(10, 131); pred {
		t.Error("consumed entry matched twice")
	}
	// Unissued prediction reports issued=false.
	if _, issued, _ := p.consume(11, 120); issued {
		t.Error("shadow prediction reported as issued")
	}
	// Ring overwrite drops old entries.
	for i := 0; i < 8; i++ {
		p.add(20+uint64AsLine(i), uint64(200+i), true)
	}
	if pred, _, _ := p.consume(20, 300); pred {
		t.Error("overwritten entry should be gone")
	}
}

func TestRunWorkloadErrors(t *testing.T) {
	_, err := RunWorkload("x", func() (*trace.Trace, error) {
		return nil, errFake
	}, prefetch.NewNone(), DefaultConfig())
	if err == nil {
		t.Error("expected generator error to propagate")
	}
}

var errFake = &fakeError{}

type fakeError struct{}

func (*fakeError) Error() string { return "fake" }

func TestOracleBoundsContext(t *testing.T) {
	// The limit-study oracle with perfect knowledge must beat (or match)
	// the learned context prefetcher, and both must beat the baseline on
	// the flagship linked list.
	tr := genTrace(t, "list", 0.1)
	base, err := Run(tr, prefetch.NewNone(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := Run(tr, prefetch.NewOracle(tr, 0), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := Run(tr, core.MustNew(core.DefaultConfig()), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	so := oracle.IPC() / base.IPC()
	sc := ctx.IPC() / base.IPC()
	if so < 1.5 {
		t.Errorf("oracle speedup = %.2f, want substantial", so)
	}
	if sc > so*1.05 {
		t.Errorf("context (%.2f) should not exceed the oracle bound (%.2f)", sc, so)
	}
}

// TestGoldenDeterminism is the full-strength version of TestDeterminism:
// two runs of the same (workload, prefetcher, seed) must produce a
// byte-identical Result — every field, including the HitDepths histogram
// buckets and both cache levels, serialized and compared as bytes. This is
// the contract that lets hot-path rewrites be verified by before/after
// result comparison: any nondeterminism (map iteration, pointer hashing,
// time dependence) or reordering of policy feedback shows up here.
func TestGoldenDeterminism(t *testing.T) {
	dump := func(r *Result) string {
		return fmt.Sprintf("%+v|cpu=%+v|l1=%+v|l2=%+v|cats=%+v|hd=%d,%v",
			r.Workload+"/"+r.Prefetcher, r.CPU, r.L1, r.L2, r.Categories,
			r.HitDepths.Total(), r.HitDepths.CDF())
	}
	for _, wl := range []string{"list", "mcf"} {
		for _, mk := range []struct {
			name string
			pf   func() prefetch.Prefetcher
		}{
			{"none", func() prefetch.Prefetcher { return prefetch.NewNone() }},
			{"context", func() prefetch.Prefetcher { return core.MustNew(core.DefaultConfig()) }},
		} {
			tr := genTrace(t, wl, 0.05)
			run := func() *Result {
				res, err := Run(tr, mk.pf(), DefaultConfig())
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			a, b := run(), run()
			if !reflect.DeepEqual(a, b) {
				t.Errorf("%s/%s: results differ structurally", wl, mk.name)
			}
			da, db := dump(a), dump(b)
			if da != db {
				t.Errorf("%s/%s: serialized results differ:\n%s\n%s", wl, mk.name, da, db)
			}
		}
	}
}

// TestRunChainsCallerWarmupHook pins the warm-up hook contract the
// experiment engine's span tracing relies on: a caller-provided
// CPU.OnWarmupEnd must still fire (after the internal stat resets), and
// installing one must not change the simulation result.
func TestRunChainsCallerWarmupHook(t *testing.T) {
	tr := genTrace(t, "list", 0.05)
	base, err := Run(tr, prefetch.NewNone(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	calls := 0
	cfg.CPU.OnWarmupEnd = func(cache.Cycle) { calls++ }
	res, err := Run(tr, prefetch.NewNone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("caller warm-up hook fired %d times, want 1", calls)
	}
	if !reflect.DeepEqual(base, res) {
		t.Error("installing a warm-up hook changed the simulation result")
	}
}
