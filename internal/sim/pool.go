package sim

import (
	"sync"

	"semloc/internal/cache"
	"semloc/internal/trace"
)

// RunPool recycles the allocation-heavy per-run scratch of a simulation —
// the cache hierarchy, the precomputed branch-history buffer and the
// prediction log — across runs, so N concurrent simulations sharing one
// pool reach a steady state where per-run allocations stop scaling with
// the run count. It is safe for concurrent use (each Get hands out a
// distinct scratch) and a nil *RunPool disables recycling entirely: every
// run then allocates fresh state, exactly as before pooling existed.
//
// Correctness contract (enforced by TestPooledRunsBitIdentical): a run on
// recycled scratch must be bit-identical to a run on fresh allocations.
// Scratch is reset on Get, never trusted from Put, so a run abandoned
// mid-flight (cancellation, recovered panic) can still return its scratch
// without poisoning the next user.
type RunPool struct {
	p sync.Pool
	// histMu/hists memoize the branch-history precompute per trace: the
	// scan is O(records) and sits inside the measured run, while traces are
	// immutable and shared across the pool's runs, so every run after a
	// trace's first gets the histories for a map lookup. Entries live as
	// long as the pool; callers cycle a bounded set of traces per pool, so
	// the memo is bounded by the workload set, not the run count.
	histMu sync.Mutex
	hists  map[*trace.Trace][]uint16
}

// NewRunPool builds an empty pool.
func NewRunPool() *RunPool { return &RunPool{} }

// branchHists returns the memoized branch-history sequence for tr,
// computing and caching it on first use. Callers must treat the result as
// read-only: concurrent runs of the same trace share one slice.
func (rp *RunPool) branchHists(tr *trace.Trace) []uint16 {
	rp.histMu.Lock()
	defer rp.histMu.Unlock()
	if h, ok := rp.hists[tr]; ok {
		return h
	}
	h := branchHistories(tr, nil)
	if rp.hists == nil {
		rp.hists = make(map[*trace.Trace][]uint16)
	}
	rp.hists[tr] = h
	return h
}

// scratch is the recyclable per-run state. Everything in it stays inside
// RunContext: nothing a scratch holds may be referenced by the returned
// Result (Result's histogram and statistics are separate copies), which is
// what makes returning it to the pool at end of run safe.
type scratch struct {
	cacheCfg cache.Config
	hier     *cache.Hierarchy
	hists    []uint16
	plog     *predictionLog
}

// get returns a scratch ready for a run under the given cache
// configuration: the hierarchy is reset (or rebuilt when the cached one
// was built for a different configuration), the prediction log cleared.
// A nil receiver allocates fresh state.
func (rp *RunPool) get(cc cache.Config) (*scratch, error) {
	var s *scratch
	if rp != nil {
		s, _ = rp.p.Get().(*scratch)
	}
	if s == nil {
		s = &scratch{}
	}
	if s.hier == nil || s.cacheCfg != cc {
		h, err := cache.New(cc)
		if err != nil {
			return nil, err
		}
		s.hier, s.cacheCfg = h, cc
	} else {
		s.hier.Reset()
	}
	if s.plog == nil {
		s.plog = newPredictionLog(512)
	} else {
		s.plog.reset()
	}
	return s, nil
}

// put returns scratch to the pool for the next run. Nil-safe on both
// sides; with a nil pool the scratch is simply dropped for the GC.
func (rp *RunPool) put(s *scratch) {
	if rp == nil || s == nil {
		return
	}
	rp.p.Put(s)
}
