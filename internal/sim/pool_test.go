package sim

import (
	"reflect"
	"testing"

	"semloc/internal/cache"
	"semloc/internal/core"
	"semloc/internal/prefetch"
)

// TestPooledRunsBitIdentical is the pooling correctness contract: a run on
// recycled scratch must produce a Result structurally identical to a run
// on fresh allocations, for both the trivial and the learning prefetcher.
func TestPooledRunsBitIdentical(t *testing.T) {
	pool := NewRunPool()
	for _, wl := range []string{"list", "mcf"} {
		tr := genTrace(t, wl, 0.05)
		for _, mk := range []struct {
			name string
			pf   func() prefetch.Prefetcher
		}{
			{"none", func() prefetch.Prefetcher { return prefetch.NewNone() }},
			{"context", func() prefetch.Prefetcher { return core.MustNew(core.DefaultConfig()) }},
		} {
			fresh := func() *Result {
				res, err := Run(tr, mk.pf(), DefaultConfig())
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			pooled := func() *Result {
				cfg := DefaultConfig()
				cfg.Pool = pool
				res, err := Run(tr, mk.pf(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			want := fresh()
			// Run the pooled variant repeatedly so later iterations execute
			// on scratch dirtied by earlier ones.
			for i := 0; i < 3; i++ {
				if got := pooled(); !reflect.DeepEqual(got, want) {
					t.Fatalf("%s/%s: pooled run %d differs from fresh run", wl, mk.name, i)
				}
			}
		}
	}
}

// TestPoolRebuildsOnConfigChange ensures a pooled hierarchy built for one
// cache configuration is not reused for a different one.
func TestPoolRebuildsOnConfigChange(t *testing.T) {
	pool := NewRunPool()
	a := cache.DefaultConfig()
	b := cache.DefaultConfig()
	b.L1.Size = a.L1.Size / 2

	s, err := pool.get(a)
	if err != nil {
		t.Fatal(err)
	}
	hierA := s.hier
	pool.put(s)

	s, err = pool.get(b)
	if err != nil {
		t.Fatal(err)
	}
	if s.hier == hierA {
		t.Fatal("pool reused a hierarchy across differing cache configs")
	}
	if s.hier.Config() != b {
		t.Fatalf("rebuilt hierarchy has config %+v, want %+v", s.hier.Config(), b)
	}
	pool.put(s)

	// Invalid config surfaces the construction error, not a stale scratch.
	bad := cache.DefaultConfig()
	bad.L1.Ways = 0
	if _, err := pool.get(bad); err == nil {
		t.Fatal("invalid cache config accepted by pool.get")
	}
}

// TestNilPoolAllocatesFresh pins the disabled path: a nil pool must behave
// exactly like the pre-pooling code.
func TestNilPoolAllocatesFresh(t *testing.T) {
	var rp *RunPool
	s, err := rp.get(cache.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s == nil || s.hier == nil || s.plog == nil {
		t.Fatal("nil pool returned incomplete scratch")
	}
	rp.put(s) // must not panic
}
