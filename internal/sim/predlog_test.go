package sim

import (
	"testing"

	"semloc/internal/memmodel"
)

// mapPredLog is the map-indexed shape predictionLog had before the
// open-addressed index; the differential test drives both with the same
// operation stream to prove the index rewrite changes nothing observable.
type mapPredLog struct {
	ring []predEntry
	head int
	pos  map[memmodel.Line]int
}

func newMapPredLog(capacity int) *mapPredLog {
	return &mapPredLog{ring: make([]predEntry, capacity), pos: make(map[memmodel.Line]int, capacity)}
}

func (p *mapPredLog) add(line memmodel.Line, idx uint64, issued bool) {
	old := &p.ring[p.head]
	if old.live {
		if cur, ok := p.pos[old.line]; ok && cur == p.head {
			delete(p.pos, old.line)
		}
	}
	p.ring[p.head] = predEntry{line: line, index: idx, issued: issued, live: true}
	p.pos[line] = p.head
	p.head = (p.head + 1) % len(p.ring)
}

func (p *mapPredLog) consume(line memmodel.Line, nowIdx uint64) (predicted, issued bool, depth int) {
	slot, ok := p.pos[line]
	if !ok {
		return false, false, 0
	}
	e := &p.ring[slot]
	if !e.live || e.line != line {
		delete(p.pos, line)
		return false, false, 0
	}
	e.live = false
	delete(p.pos, line)
	return true, e.issued, int(nowIdx - e.index)
}

// TestPredictionLogDifferential hammers the open-addressed log and the map
// reference with the same random stream: a small line universe forces
// duplicate lines, ring wrap-around evicting stale index entries, and
// probe-chain collisions with backward-shift deletions.
func TestPredictionLogDifferential(t *testing.T) {
	rng := memmodel.NewRNG(41)
	for _, capacity := range []int{4, 64, 512} {
		fast := newPredictionLog(capacity)
		ref := newMapPredLog(capacity)
		lines := 3 * capacity
		for op := uint64(0); op < uint64(40*capacity); op++ {
			line := memmodel.Line(rng.Intn(lines))
			if rng.Intn(3) != 0 {
				issued := rng.Intn(2) == 0
				fast.add(line, op, issued)
				ref.add(line, op, issued)
				continue
			}
			fp, fi, fd := fast.consume(line, op)
			rp, ri, rd := ref.consume(line, op)
			if fp != rp || fi != ri || fd != rd {
				t.Fatalf("cap %d op %d line %d: consume = (%v,%v,%d), ref (%v,%v,%d)",
					capacity, op, line, fp, fi, fd, rp, ri, rd)
			}
		}
		// After a reset the log must behave like a fresh one.
		fast.reset()
		if p, _, _ := fast.consume(1, 0); p {
			t.Fatalf("cap %d: consume after reset found an entry", capacity)
		}
	}
}
