// Package sim wires a workload trace, the out-of-order core model, the
// cache hierarchy and a prefetcher into one simulation run, and collects
// the metrics the paper's evaluation reports: IPC/CPI (Figure 12/14),
// per-level MPKI (Figures 10/11), the access-category breakdown
// (Figure 9) and the prediction hit-depth distribution (Figure 8).
package sim

import (
	"context"
	"fmt"
	"sync/atomic"

	"semloc/internal/cache"
	"semloc/internal/cpu"
	"semloc/internal/memmodel"
	"semloc/internal/obs"
	"semloc/internal/prefetch"
	"semloc/internal/stats"
	"semloc/internal/trace"
)

// Config combines the machine parameters.
type Config struct {
	CPU   cpu.Config
	Cache cache.Config
	// Obs enables telemetry for the run (interval time-series sampling and
	// the sampled decision trace). The zero value disables it entirely:
	// the simulation then runs the exact pre-telemetry hot path (one
	// branch-on-nil per access) and produces bit-identical results.
	Obs obs.Config
	// Pool, when non-nil, recycles per-run scratch (cache hierarchy,
	// branch-history buffer, prediction log) across runs sharing the pool.
	// Pooled and unpooled runs are bit-identical; nil keeps the historic
	// allocate-per-run behaviour.
	Pool *RunPool `json:"-"`
}

// DefaultConfig returns the Table 2 machine.
func DefaultConfig() Config {
	return Config{CPU: cpu.DefaultConfig(), Cache: cache.DefaultConfig()}
}

// Categories is the Figure 9 access breakdown. All counters are demand
// accesses except PrefetchNeverHit, which counts wasted prefetches and is
// reported on top of the demand accesses (the paper's bars pass 100% for
// the same reason).
type Categories struct {
	// HitPrefetched: demand hit a line a prefetch brought in on time.
	HitPrefetched uint64
	// ShorterWait: demand missed but merged with an in-flight prefetch.
	ShorterWait uint64
	// NonTimely: the prefetcher predicted the address but no request was
	// issued to memory before the demand access.
	NonTimely uint64
	// MissNotPrefetched: demand missed with no prediction at all.
	MissNotPrefetched uint64
	// HitOlderDemand: demand hit with no prefetch needed.
	HitOlderDemand uint64
	// PrefetchNeverHit: prefetched lines evicted (or left) untouched.
	PrefetchNeverHit uint64
	// Demand is the total number of demand accesses.
	Demand uint64
}

// Result is the outcome of one simulation run.
type Result struct {
	// Workload and Prefetcher identify the run.
	Workload, Prefetcher string
	// CPU holds timing results (post-warm-up).
	CPU cpu.Result
	// L1 and L2 hold cache statistics (post-warm-up).
	L1, L2 cache.LevelStats
	// Categories is the Figure 9 breakdown (post-warm-up).
	Categories Categories
	// HitDepths is the distribution of accesses between a prediction and
	// the demand that consumed it (Figure 8), over real and shadow
	// predictions alike.
	HitDepths *stats.Histogram
	// Series is the telemetry time series (nil unless Config.Obs enabled
	// interval sampling).
	Series *obs.Series `json:",omitempty"`
}

// L1MPKI returns L1 demand misses per kilo-instruction.
func (r *Result) L1MPKI() float64 {
	if r.CPU.Instructions == 0 {
		return 0
	}
	return float64(r.L1.Misses) / float64(r.CPU.Instructions) * 1000
}

// L2MPKI returns L2 demand misses per kilo-instruction.
func (r *Result) L2MPKI() float64 {
	if r.CPU.Instructions == 0 {
		return 0
	}
	return float64(r.L2.Misses) / float64(r.CPU.Instructions) * 1000
}

// IPC returns the run's instructions per cycle.
func (r *Result) IPC() float64 { return r.CPU.IPC() }

// metricsResetter lets prefetchers with internal statistics participate in
// the warm-up boundary (implemented by core.Prefetcher).
type metricsResetter interface{ ResetMetrics() }

// Run simulates the trace with the given prefetcher. It is RunContext
// with a background context.
func Run(tr *trace.Trace, pf prefetch.Prefetcher, cfg Config) (*Result, error) {
	return RunContext(context.Background(), tr, pf, cfg)
}

// RunContext simulates the trace with the given prefetcher under ctx:
// cancelling the context stops the simulation loop promptly with an error
// wrapping the cancellation cause. Callers that need watchdog supervision
// and panic containment on top should run through the harness package.
func RunContext(ctx context.Context, tr *trace.Trace, pf prefetch.Prefetcher, cfg Config) (*Result, error) {
	sc, err := cfg.Pool.get(cfg.Cache)
	if err != nil {
		return nil, err
	}
	// Returned unconditionally (error, cancellation, even panic unwind to
	// the harness recover): get resets scratch before reuse, so a partially
	// used scratch cannot poison a later run.
	defer cfg.Pool.put(sc)
	// Pooled runs share one immutable memoized history sequence per trace
	// (read-only); unpooled runs compute into the scratch buffer as before.
	var hists []uint16
	if cfg.Pool != nil {
		hists = cfg.Pool.branchHists(tr)
	} else {
		sc.hists = branchHistories(tr, sc.hists)
		hists = sc.hists
	}
	ad := &adapter{
		hier:      sc.hier,
		pf:        pf,
		hists:     hists,
		hitDepths: stats.NewHistogram(192),
		predLog:   sc.plog,
	}
	cpuCfg := cfg.CPU
	col := obs.NewCollector(cfg.Obs) // nil when telemetry is disabled
	if col != nil {
		ad.col = col
		if src, ok := pf.(obs.CoreSource); ok {
			ad.coreSrc = src
		}
		if att, ok := pf.(obs.Attachable); ok {
			att.AttachTelemetry(col)
		}
		// The sampler reads retired instructions from the core model's
		// progress counter (the watchdog shares it when supervision is on).
		if cpuCfg.Progress == nil {
			cpuCfg.Progress = new(atomic.Uint64)
		}
		ad.progress = cpuCfg.Progress
	}
	// Chain rather than replace a caller-provided warm-up hook: the
	// experiment engine uses it to timestamp the warmup/measured phase
	// boundary for span tracing.
	callerWarmup := cpuCfg.OnWarmupEnd
	cpuCfg.OnWarmupEnd = func(now cache.Cycle) {
		ad.hier.ResetStats()
		ad.cats = Categories{}
		ad.hitDepths.Reset()
		if r, ok := pf.(metricsResetter); ok {
			r.ResetMetrics()
		}
		col.NoteWarmupEnd(ad.accessIdx)
		if callerWarmup != nil {
			callerWarmup(now)
		}
	}
	cpuRes, err := cpu.RunContext(ctx, tr, ad, cpuCfg)
	if err != nil {
		return nil, err
	}
	ad.hier.FinishStats()
	l1, l2 := ad.hier.Stats()
	ad.cats.PrefetchNeverHit = l1.UselessEvicts
	ad.cats.Demand = l1.Accesses
	res := &Result{
		Workload:   tr.Name,
		Prefetcher: pf.Name(),
		CPU:        cpuRes,
		L1:         l1,
		L2:         l2,
		Categories: ad.cats,
		HitDepths:  ad.hitDepths,
	}
	if col != nil {
		// Close the series with an end-of-run sample (so even a run shorter
		// than one interval exports a non-empty curve), then surface any
		// decision-sink failure: telemetry loss is loud, not silent.
		if col.SamplingEnabled() && col.LastIndex() < ad.accessIdx {
			ad.sample(ad.lastNow)
		}
		res.Series = col.Series()
		if err := col.Flush(); err != nil {
			return nil, fmt.Errorf("sim: %s/%s telemetry: %w", tr.Name, pf.Name(), err)
		}
	}
	return res, nil
}

// RunWorkload generates the named workload and runs it under pf.
func RunWorkload(name string, gen func() (*trace.Trace, error), pf prefetch.Prefetcher, cfg Config) (*Result, error) {
	tr, err := gen()
	if err != nil {
		return nil, fmt.Errorf("sim: generating %s: %w", name, err)
	}
	return Run(tr, pf, cfg)
}

// branchHistories precomputes the global 16-bit branch history register at
// each memory record, in record order, appending into buf (whose capacity
// is reused across pooled runs). The adapter consumes them by cursor,
// matching the CPU's in-order Access calls.
func branchHistories(tr *trace.Trace, buf []uint16) []uint16 {
	out := buf[:0]
	var hist uint16
	for i := range tr.Records {
		r := &tr.Records[i]
		switch r.Kind {
		case trace.KindBranch:
			hist <<= 1
			if r.Taken {
				hist |= 1
			}
		case trace.KindLoad, trace.KindStore:
			out = append(out, hist)
		}
	}
	return out
}

// adapter implements cpu.Memory: it performs the demand access, classifies
// it (Figure 9), and drives the prefetcher.
type adapter struct {
	hier      *cache.Hierarchy
	pf        prefetch.Prefetcher
	hists     []uint16
	cursor    int
	accessIdx uint64
	cats      Categories
	hitDepths *stats.Histogram
	predLog   *predictionLog
	// col/coreSrc/progress drive telemetry (all nil when disabled; the
	// per-access cost of the disabled path is one branch).
	col      *obs.Collector
	coreSrc  obs.CoreSource
	progress *atomic.Uint64
	lastNow  cache.Cycle
	// acc is the Access scratch passed to the prefetcher each call; a local
	// would escape through the interface call and allocate per access.
	// Prefetchers must not retain the pointer past OnAccess.
	acc prefetch.Access
}

var _ cpu.Memory = (*adapter)(nil)

// Access implements cpu.Memory.
func (m *adapter) Access(rec *trace.Record, now cache.Cycle) cache.Cycle {
	var res cache.Result
	if rec.Kind == trace.KindStore {
		res = m.hier.AccessWrite(rec.Addr, now)
	} else {
		res = m.hier.Access(rec.Addr, now)
	}
	line := memmodel.LineOf(rec.Addr)

	// Figure 9 classification.
	predicted, issued, depth := m.predLog.consume(line, m.accessIdx)
	if predicted {
		m.hitDepths.Add(depth)
	}
	switch {
	case res.Outcome == cache.OutcomeL1Hit && res.PrefetchedLine:
		m.cats.HitPrefetched++
	case res.Outcome == cache.OutcomeL1Hit:
		m.cats.HitOlderDemand++
	case res.Outcome == cache.OutcomeL1InFlight && res.PrefetchedLine:
		m.cats.ShorterWait++
	case predicted && !issued:
		m.cats.NonTimely++
	default:
		m.cats.MissNotPrefetched++
	}

	// Drive the prefetcher.
	var hist uint16
	if m.cursor < len(m.hists) {
		hist = m.hists[m.cursor]
	}
	m.cursor++
	m.acc = prefetch.Access{
		PC:         rec.PC,
		Addr:       rec.Addr,
		Line:       line,
		Now:        now,
		Index:      m.accessIdx,
		IsStore:    rec.Kind == trace.KindStore,
		MissedL1:   res.Outcome != cache.OutcomeL1Hit,
		Value:      rec.Value,
		Reg:        rec.Reg,
		BranchHist: hist,
		Hints:      rec.Hints,
	}
	m.pf.OnAccess(&m.acc, m)
	m.accessIdx++
	if m.col != nil {
		m.lastNow = now
		if m.col.Due(m.accessIdx) {
			m.sample(now)
		}
	}
	// Stores also return their fill time: the core uses it only for store
	// buffer occupancy and (rare) store-to-load value dependencies, never
	// for retirement.
	return res.Done
}

// sample snapshots the machine and prefetcher state into the telemetry
// series. It runs once per interval boundary (and once at end of run),
// never on the per-access fast path.
func (m *adapter) sample(now cache.Cycle) {
	l1, l2 := m.hier.Stats()
	var instr uint64
	if m.progress != nil {
		// Updated by the core model at its periodic checkpoints, so it may
		// trail the access index by a few thousand records.
		instr = m.progress.Load()
	}
	var cs obs.CoreSnapshot
	if m.coreSrc != nil {
		cs = m.coreSrc.TelemetrySnapshot()
	}
	m.col.Record(m.accessIdx, obs.MachineSnapshot{
		Cycles:       uint64(now),
		Instructions: instr,
		L1Misses:     l1.Misses,
		L2Misses:     l2.Misses,
	}, cs)
}

// Prefetch implements prefetch.Issuer.
func (m *adapter) Prefetch(addr memmodel.Addr, now cache.Cycle) bool {
	ok := m.hier.Prefetch(addr, now)
	m.predLog.add(memmodel.LineOf(addr), m.accessIdx, ok)
	return ok
}

// Shadow implements prefetch.Issuer.
func (m *adapter) Shadow(addr memmodel.Addr) {
	m.predLog.add(memmodel.LineOf(addr), m.accessIdx, false)
}

// FreePrefetchSlots implements prefetch.Issuer.
func (m *adapter) FreePrefetchSlots(now cache.Cycle) int { return m.hier.FreePrefetchSlots(now) }

// predictionLog is a bounded record of recent predictions, used for the
// Figure 8 hit-depth CDF and the non-timely classification. It is the
// simulator-side analogue of the context prefetcher's own prefetch queue,
// kept separate so every prefetcher is measured identically.
//
// The line→slot index is an open-addressed table rather than a Go map:
// every demand access of every cell pays one consume() and every
// prediction one add(), and runtime map operations (hashing through the
// interface machinery, bucket chasing, write barriers on delete) showed up
// as a measurable slice of the context cells' per-access cost. Linear
// probing over one flat array of (line, slot) pairs keeps a probe step to
// a single cache line, and backward-shift deletion keeps probe chains
// valid with no tombstone accumulation. At most len(ring) lines are
// indexed at once and the table is sized 4× that, so probes stay short.
type predictionLog struct {
	ring []predEntry
	head int
	// idx is the open-addressed index: idx[i].slot is the ring slot of the
	// newest live prediction of idx[i].line, or predNoSlot when i is empty.
	idx  []predSlot
	mask uint64
}

// predSlot is one index position; line and slot share a struct so a probe
// touches one cache line, not one per array.
type predSlot struct {
	line memmodel.Line
	slot int32
}

type predEntry struct {
	line   memmodel.Line
	index  uint64
	issued bool
	live   bool
}

const predNoSlot int32 = -1

func newPredictionLog(capacity int) *predictionLog {
	n := 1
	for n < 4*capacity {
		n <<= 1
	}
	p := &predictionLog{
		ring: make([]predEntry, capacity),
		idx:  make([]predSlot, n),
		mask: uint64(n - 1),
	}
	for i := range p.idx {
		p.idx[i].slot = predNoSlot
	}
	return p
}

// reset clears the log in place for reuse by a pooled run.
func (p *predictionLog) reset() {
	clear(p.ring)
	p.head = 0
	for i := range p.idx {
		p.idx[i] = predSlot{slot: predNoSlot}
	}
}

// home returns line's preferred index position.
func (p *predictionLog) home(line memmodel.Line) uint64 {
	h := uint64(line) * 0x9e3779b97f4a7c15
	return (h ^ (h >> 32)) & p.mask
}

// lookup returns the ring slot indexed for line, or predNoSlot.
func (p *predictionLog) lookup(line memmodel.Line) int32 {
	for i := p.home(line); ; i = (i + 1) & p.mask {
		e := &p.idx[i]
		if e.slot == predNoSlot {
			return predNoSlot
		}
		if e.line == line {
			return e.slot
		}
	}
}

// store indexes line at the given ring slot, overwriting any prior entry.
func (p *predictionLog) store(line memmodel.Line, slot int32) {
	for i := p.home(line); ; i = (i + 1) & p.mask {
		e := &p.idx[i]
		if e.slot == predNoSlot || e.line == line {
			e.line = line
			e.slot = slot
			return
		}
	}
}

// remove drops line from the index, backward-shifting the tail of its
// probe chain so later lookups never cross a hole.
func (p *predictionLog) remove(line memmodel.Line) {
	i := p.home(line)
	for {
		e := &p.idx[i]
		if e.slot == predNoSlot {
			return
		}
		if e.line == line {
			break
		}
		i = (i + 1) & p.mask
	}
	p.shiftHole(i)
}

// removeIfSlot drops line from the index only if it currently indexes the
// given ring slot — the single probe add() needs to retire the head's
// stale mapping, fused so eviction does not walk the chain twice.
func (p *predictionLog) removeIfSlot(line memmodel.Line, slot int32) {
	i := p.home(line)
	for {
		e := &p.idx[i]
		if e.slot == predNoSlot {
			return
		}
		if e.line == line {
			if e.slot != slot {
				return
			}
			break
		}
		i = (i + 1) & p.mask
	}
	p.shiftHole(i)
}

// shiftHole closes the hole at index position i by backward-shifting the
// tail of the probe chain.
func (p *predictionLog) shiftHole(i uint64) {
	j := i
	for {
		j = (j + 1) & p.mask
		if p.idx[j].slot == predNoSlot {
			break
		}
		// The entry at j may fill the hole at i only if its home does not
		// lie in the cyclic range (i, j] — otherwise moving it would put it
		// before its own probe start.
		h := p.home(p.idx[j].line)
		if (j-h)&p.mask >= (j-i)&p.mask {
			p.idx[i] = p.idx[j]
			i = j
		}
	}
	p.idx[i].slot = predNoSlot
}

// add records a prediction of line at access index idx.
func (p *predictionLog) add(line memmodel.Line, idx uint64, issued bool) {
	old := &p.ring[p.head]
	if old.live {
		p.removeIfSlot(old.line, int32(p.head))
	}
	p.ring[p.head] = predEntry{line: line, index: idx, issued: issued, live: true}
	p.store(line, int32(p.head))
	p.head++
	if p.head == len(p.ring) {
		p.head = 0
	}
}

// consume looks up and removes the newest prediction of line, returning
// whether one existed, whether it was issued, and its depth in accesses.
func (p *predictionLog) consume(line memmodel.Line, nowIdx uint64) (predicted, issued bool, depth int) {
	slot := p.lookup(line)
	if slot == predNoSlot {
		return false, false, 0
	}
	e := &p.ring[slot]
	if !e.live || e.line != line {
		p.remove(line)
		return false, false, 0
	}
	e.live = false
	p.remove(line)
	return true, e.issued, int(nowIdx - e.index)
}
