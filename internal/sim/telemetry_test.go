package sim

import (
	"bytes"
	"testing"

	"semloc/internal/core"
	"semloc/internal/obs"
	"semloc/internal/prefetch"
)

func TestTelemetrySeriesProduced(t *testing.T) {
	tr := genTrace(t, "list", 0.05)
	cfg := DefaultConfig()
	cfg.Obs = obs.Config{Interval: 1024}
	res, err := Run(tr, core.MustNew(core.DefaultConfig()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Series
	if s == nil {
		t.Fatal("telemetry enabled but no series exported")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Samples) < 2 {
		t.Fatalf("expected a multi-sample curve, got %d samples", len(s.Samples))
	}
	last := s.Samples[len(s.Samples)-1]
	if last.Index == 0 || last.Cycles == 0 {
		t.Fatalf("final sample empty: %+v", last)
	}
	// The context prefetcher learns on this workload: the curve must show
	// learned state and prefetch activity somewhere.
	var real, hits uint64
	sawEntries := false
	for _, sm := range s.Samples {
		real += sm.Real
		hits += sm.QueueHits
		if sm.CSTEntries > 0 {
			sawEntries = true
		}
	}
	if real == 0 || hits == 0 || !sawEntries {
		t.Fatalf("curve shows no learning: real=%d hits=%d entries=%v", real, hits, sawEntries)
	}
	// Warm-up retires in this trace, so the boundary must be recorded.
	if s.WarmupIndex == 0 {
		t.Error("warm-up boundary not recorded in series")
	}
}

func TestTelemetrySeriesForNonInstrumentedPrefetcher(t *testing.T) {
	// Prefetchers that implement neither obs interface still get the
	// machine-side curve (IPC, MPKI); learner fields stay zero.
	tr := genTrace(t, "array", 0.05)
	cfg := DefaultConfig()
	cfg.Obs = obs.Config{Interval: 1024}
	res, err := Run(tr, prefetch.NewNone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Series == nil {
		t.Fatal("no series for non-instrumented prefetcher")
	}
	if err := res.Series.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, sm := range res.Series.Samples {
		if sm.CSTEntries != 0 || sm.Predictions != 0 {
			t.Fatalf("none prefetcher reported learner state: %+v", sm)
		}
	}
}

func TestTelemetryIntervalLongerThanRun(t *testing.T) {
	tr := genTrace(t, "list", 0.02)
	cfg := DefaultConfig()
	cfg.Obs = obs.Config{Interval: 1 << 40}
	res, err := Run(tr, core.MustNew(core.DefaultConfig()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Series == nil || len(res.Series.Samples) != 1 {
		t.Fatalf("oversized interval should still flush one end-of-run sample, got %+v", res.Series)
	}
	if err := res.Series.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestTelemetryDoesNotChangeResults runs the same (trace, config) pair
// with telemetry off and fully on, and requires identical simulation
// outcomes: sampling observes the run, it must never steer it.
func TestTelemetryDoesNotChangeResults(t *testing.T) {
	tr := genTrace(t, "list", 0.05)

	plain, err := Run(tr, core.MustNew(core.DefaultConfig()), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	var sink bytes.Buffer
	cfg := DefaultConfig()
	cfg.Obs = obs.Config{Interval: 512, DecisionRate: 7, DecisionSink: &sink}
	traced, err := Run(tr, core.MustNew(core.DefaultConfig()), cfg)
	if err != nil {
		t.Fatal(err)
	}

	if plain.CPU != traced.CPU {
		t.Fatalf("telemetry changed CPU results:\n%+v\n%+v", plain.CPU, traced.CPU)
	}
	if plain.L1 != traced.L1 || plain.L2 != traced.L2 {
		t.Fatalf("telemetry changed cache results:\n%+v %+v\n%+v %+v", plain.L1, plain.L2, traced.L1, traced.L2)
	}
	if plain.Categories != traced.Categories {
		t.Fatalf("telemetry changed categories:\n%+v\n%+v", plain.Categories, traced.Categories)
	}
	if sink.Len() == 0 {
		t.Fatal("decision trace produced no output")
	}
	evs, err := obs.ReadDecisions(&sink)
	if err != nil {
		t.Fatal(err)
	}
	if traced.Series.Decisions != uint64(len(evs)) {
		t.Fatalf("series records %d decisions, sink holds %d", traced.Series.Decisions, len(evs))
	}
}
