package memmodel

import (
	"fmt"
)

// Heap is a deterministic synthetic allocator used by workload generators.
//
// It substitutes for the libc allocator of the paper's traced binaries. Two
// properties matter for prefetcher studies and are both modelled:
//
//   - Arrays allocated in one call are contiguous, so spatial prefetchers
//     see them exactly as on real hardware.
//   - Individually allocated nodes (lists, trees, graph vertices) are
//     scattered: the heap inserts configurable padding and, with
//     Fragmentation > 0, pseudo-randomly jumps between arenas, reproducing
//     the fragmented layouts of long-running programs (Figure 1's top plot).
//
// The heap is purely an address generator: no data is stored. Determinism is
// guaranteed for a fixed Seed so every experiment is reproducible.
type Heap struct {
	cfg       HeapConfig
	arenas    []arena
	rng       splitMix64
	current   int
	largeNext Addr // bump pointer of the large-object region (0 = unset)
	// allocated tracks total bytes handed out, for accounting/tests.
	allocated uint64
}

// HeapConfig parameterizes a Heap.
type HeapConfig struct {
	// Base is the first address of the heap. Defaults to 0x10000000.
	Base Addr
	// ArenaSize is the size of each allocation arena. Defaults to 1 MiB.
	ArenaSize uint64
	// Arenas is the number of arenas. Defaults to 64.
	Arenas int
	// Fragmentation in [0,1] is the probability that an allocation jumps to
	// a pseudo-random arena instead of continuing in the current one. 0
	// produces bump allocation (perfectly spatial); values near 1 scatter
	// every node.
	Fragmentation float64
	// Align is the minimum alignment of returned addresses. Defaults to 16
	// (glibc malloc alignment).
	Align uint64
	// Seed makes the scatter pattern deterministic.
	Seed uint64
}

type arena struct {
	base Addr
	next Addr
	end  Addr
}

// DefaultHeapConfig returns the configuration used by the standard
// workloads: moderately fragmented, matching a program that has run long
// enough for its free lists to interleave allocations.
func DefaultHeapConfig() HeapConfig {
	return HeapConfig{
		Base:          0x10000000,
		ArenaSize:     1 << 20,
		Arenas:        64,
		Fragmentation: 0.5,
		Align:         16,
		Seed:          1,
	}
}

// NewHeap creates a heap. Zero-valued config fields take defaults.
func NewHeap(cfg HeapConfig) *Heap {
	def := DefaultHeapConfig()
	if cfg.Base == 0 {
		cfg.Base = def.Base
	}
	if cfg.ArenaSize == 0 {
		cfg.ArenaSize = def.ArenaSize
	}
	if cfg.Arenas == 0 {
		cfg.Arenas = def.Arenas
	}
	if cfg.Align == 0 {
		cfg.Align = def.Align
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	h := &Heap{cfg: cfg, rng: splitMix64(cfg.Seed)}
	h.arenas = make([]arena, cfg.Arenas)
	for i := range h.arenas {
		base := cfg.Base + Addr(uint64(i)*cfg.ArenaSize)
		h.arenas[i] = arena{base: base, next: base, end: base + Addr(cfg.ArenaSize)}
	}
	return h
}

// HeapExhaustedError reports an allocation request the heap could not
// satisfy, which indicates a misconfigured workload (footprint larger than
// Arenas*ArenaSize).
type HeapExhaustedError struct {
	// Size is the allocation request that failed.
	Size uint64
	// Allocated is the total number of bytes handed out before the failure.
	Allocated uint64
}

// Error implements error.
func (e *HeapExhaustedError) Error() string {
	return fmt.Sprintf("memmodel: heap exhausted allocating %d bytes (allocated %d)", e.Size, e.Allocated)
}

// Alloc returns the base address of a fresh object of the given size. It
// never returns overlapping ranges. It panics with a *HeapExhaustedError
// only if the heap is truly exhausted; generator code that prefers an
// error return should call TryAlloc instead, and the simulation harness
// recovers the panic into the same typed error.
func (h *Heap) Alloc(size uint64) Addr {
	p, err := h.TryAlloc(size)
	if err != nil {
		panic(err)
	}
	return p
}

// TryAlloc is Alloc with an error return instead of a panic.
func (h *Heap) TryAlloc(size uint64) (Addr, error) {
	if size == 0 {
		size = 1
	}
	if size > h.cfg.ArenaSize {
		// Large object: served from a dedicated mmap-like region above the
		// arenas (as real allocators do for allocations beyond the arena
		// class sizes).
		if h.largeNext == 0 {
			h.largeNext = h.cfg.Base + Addr(uint64(len(h.arenas))*h.cfg.ArenaSize)
		}
		p := AlignUp(h.largeNext, h.cfg.Align)
		h.largeNext = p + Addr(size)
		h.allocated += size
		return p, nil
	}
	if h.cfg.Fragmentation > 0 && h.rng.float64() < h.cfg.Fragmentation {
		h.current = int(h.rng.next() % uint64(len(h.arenas)))
	}
	for tries := 0; tries < len(h.arenas); tries++ {
		a := &h.arenas[h.current]
		p := AlignUp(a.next, h.cfg.Align)
		if p+Addr(size) <= a.end {
			a.next = p + Addr(size)
			h.allocated += size
			return p, nil
		}
		h.current = (h.current + 1) % len(h.arenas)
	}
	return 0, &HeapExhaustedError{Size: size, Allocated: h.allocated}
}

// AllocArray allocates count contiguous elements of elemSize bytes and
// returns the base address. The whole array always lands in one arena so it
// is spatially contiguous regardless of Fragmentation.
func (h *Heap) AllocArray(count int, elemSize uint64) Addr {
	return h.Alloc(uint64(count) * elemSize)
}

// Allocated reports the total bytes handed out so far.
func (h *Heap) Allocated() uint64 { return h.allocated }

// splitMix64 is a tiny deterministic PRNG (SplitMix64). The simulator avoids
// math/rand so that streams are stable across Go releases.
type splitMix64 uint64

func (s *splitMix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitMix64) float64() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}

// RNG is a deterministic pseudo-random source shared by workload generators.
// It exposes the minimal operations the generators need.
type RNG struct{ s splitMix64 }

// NewRNG returns a deterministic generator seeded with seed (seed 0 is
// remapped to 1 so the zero value is still usable).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 1
	}
	return &RNG{s: splitMix64(seed)}
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 { return r.s.next() }

// Intn returns a value in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("memmodel: Intn with non-positive n")
	}
	return int(r.s.next() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 { return r.s.float64() }

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
