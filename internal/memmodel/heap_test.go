package memmodel

import (
	"errors"
	"sort"
	"testing"
	"testing/quick"
)

func TestHeapDefaults(t *testing.T) {
	h := NewHeap(HeapConfig{})
	a := h.Alloc(64)
	if a < DefaultHeapConfig().Base {
		t.Errorf("allocation %v below heap base", a)
	}
	if a%16 != 0 {
		t.Errorf("allocation %v not 16-aligned", a)
	}
}

func TestHeapBumpIsContiguous(t *testing.T) {
	h := NewHeap(HeapConfig{Fragmentation: 0})
	prev := h.Alloc(32)
	for i := 0; i < 100; i++ {
		cur := h.Alloc(32)
		if cur != prev+32 {
			t.Fatalf("bump allocation not contiguous: prev=%v cur=%v", prev, cur)
		}
		prev = cur
	}
}

func TestHeapArrayContiguous(t *testing.T) {
	h := NewHeap(HeapConfig{Fragmentation: 0.9})
	base := h.AllocArray(1000, 8)
	// The whole array must be in one arena: size 8000 < arena size.
	end := base + 8000
	cfg := DefaultHeapConfig()
	arenaOf := func(a Addr) uint64 { return uint64(a-cfg.Base) / cfg.ArenaSize }
	if arenaOf(base) != arenaOf(end-1) {
		t.Errorf("array spans arenas: base %v end %v", base, end)
	}
}

func TestHeapFragmentationScatters(t *testing.T) {
	h := NewHeap(HeapConfig{Fragmentation: 0.9, Seed: 7})
	var nonAdjacent int
	prev := h.Alloc(32)
	const n = 200
	for i := 0; i < n; i++ {
		cur := h.Alloc(32)
		if cur != prev+32 {
			nonAdjacent++
		}
		prev = cur
	}
	if nonAdjacent < n/2 {
		t.Errorf("expected heavy scatter, only %d/%d non-adjacent", nonAdjacent, n)
	}
}

func TestHeapNoOverlap(t *testing.T) {
	type span struct{ base, end Addr }
	h := NewHeap(HeapConfig{Fragmentation: 0.7, Seed: 3})
	rng := NewRNG(5)
	var spans []span
	for i := 0; i < 2000; i++ {
		sz := uint64(1 + rng.Intn(256))
		base := h.Alloc(sz)
		spans = append(spans, span{base, base + Addr(sz)})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].base < spans[j].base })
	for i := 1; i < len(spans); i++ {
		if spans[i].base < spans[i-1].end {
			t.Fatalf("overlap: [%v,%v) and [%v,%v)", spans[i-1].base, spans[i-1].end, spans[i].base, spans[i].end)
		}
	}
}

func TestHeapZeroSize(t *testing.T) {
	h := NewHeap(HeapConfig{})
	a := h.Alloc(0)
	b := h.Alloc(0)
	if a == b {
		t.Errorf("zero-size allocations share address %v", a)
	}
}

func TestHeapDeterminism(t *testing.T) {
	mk := func() []Addr {
		h := NewHeap(HeapConfig{Fragmentation: 0.5, Seed: 42})
		var out []Addr
		for i := 0; i < 500; i++ {
			out = append(out, h.Alloc(48))
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("allocation %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestHeapExhaustionPanics(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("expected panic on heap exhaustion")
		}
		he, ok := v.(*HeapExhaustedError)
		if !ok {
			t.Fatalf("panic value %T, want *HeapExhaustedError", v)
		}
		if he.Size != 1024 {
			t.Errorf("Size = %d, want 1024", he.Size)
		}
	}()
	h := NewHeap(HeapConfig{ArenaSize: 4096, Arenas: 2})
	for i := 0; i < 100; i++ {
		h.Alloc(1024)
	}
}

func TestHeapTryAllocExhaustion(t *testing.T) {
	h := NewHeap(HeapConfig{ArenaSize: 4096, Arenas: 2})
	var err error
	for i := 0; i < 100 && err == nil; i++ {
		_, err = h.TryAlloc(1024)
	}
	if err == nil {
		t.Fatal("expected TryAlloc to report exhaustion")
	}
	var he *HeapExhaustedError
	if !errors.As(err, &he) {
		t.Fatalf("err = %v, want *HeapExhaustedError", err)
	}
	if he.Allocated == 0 {
		t.Error("diagnostic Allocated field is zero")
	}
}

func TestHeapAllocatedAccounting(t *testing.T) {
	h := NewHeap(HeapConfig{})
	h.Alloc(100)
	h.Alloc(28)
	if got := h.Allocated(); got != 128 {
		t.Errorf("Allocated = %d, want 128", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(9), NewRNG(9)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("RNG not deterministic")
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(11)
	f := func(n uint8) bool {
		m := int(n%100) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(13)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero-seeded RNG appears degenerate")
	}
}
