// Package memmodel provides the primitive memory abstractions shared by the
// simulator: virtual addresses, cache-line arithmetic, and a synthetic heap
// allocator that stands in for the allocator of the traced program.
//
// The paper's workloads run on real hardware addresses produced by libc
// allocators; here every workload generator allocates its data structures
// from a memmodel.Heap so that linked structures receive realistically
// fragmented, non-contiguous layouts (the premise of Figure 1) while arrays
// remain contiguous.
package memmodel

import "fmt"

// Addr is a virtual byte address in the simulated address space.
type Addr uint64

// LineShift is log2 of the cache-line size used throughout the simulator.
// The paper's prefetcher operates on aligned blocks of cache-line
// granularity; CST deltas are stored in line units (§5, "1-byte delta of
// cache line granularity, able to point within a range of up to 8kB in each
// direction": 128 lines x 64 B = 8 kB).
const LineShift = 6

// LineSize is the cache-line size in bytes.
const LineSize = 1 << LineShift

// Line identifies an aligned cache line (Addr >> LineShift).
type Line uint64

// LineOf returns the cache line containing a.
func LineOf(a Addr) Line { return Line(a >> LineShift) }

// Base returns the first byte address of the line.
func (l Line) Base() Addr { return Addr(l) << LineShift }

// Delta returns the signed distance in lines from line o to line l.
func (l Line) Delta(o Line) int64 { return int64(l) - int64(o) }

// AddLines returns the line delta lines after l (delta may be negative).
func (l Line) AddLines(delta int64) Line { return Line(int64(l) + delta) }

// String implements fmt.Stringer for addresses (hex, like a memory map).
func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// String implements fmt.Stringer for lines.
func (l Line) String() string { return fmt.Sprintf("line:0x%x", uint64(l)) }

// AlignDown rounds a down to a multiple of align (align must be a power of
// two).
func AlignDown(a Addr, align uint64) Addr {
	return a &^ Addr(align-1)
}

// AlignUp rounds a up to a multiple of align (align must be a power of two).
func AlignUp(a Addr, align uint64) Addr {
	return (a + Addr(align-1)) &^ Addr(align-1)
}
