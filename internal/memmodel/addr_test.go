package memmodel

import (
	"testing"
	"testing/quick"
)

func TestLineOf(t *testing.T) {
	cases := []struct {
		addr Addr
		line Line
	}{
		{0, 0},
		{1, 0},
		{63, 0},
		{64, 1},
		{65, 1},
		{127, 1},
		{128, 2},
		{0xffffffc0, 0x3ffffff},
	}
	for _, c := range cases {
		if got := LineOf(c.addr); got != c.line {
			t.Errorf("LineOf(%v) = %v, want %v", c.addr, got, c.line)
		}
	}
}

func TestLineBaseRoundTrip(t *testing.T) {
	f := func(a Addr) bool {
		l := LineOf(a)
		base := l.Base()
		return base <= a && a < base+LineSize && LineOf(base) == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLineDelta(t *testing.T) {
	l := Line(100)
	if d := l.Delta(Line(90)); d != 10 {
		t.Errorf("Delta = %d, want 10", d)
	}
	if d := Line(90).Delta(l); d != -10 {
		t.Errorf("Delta = %d, want -10", d)
	}
	if got := l.AddLines(-10); got != Line(90) {
		t.Errorf("AddLines = %v, want 90", got)
	}
}

func TestAlign(t *testing.T) {
	if got := AlignUp(17, 16); got != 32 {
		t.Errorf("AlignUp(17,16) = %d, want 32", got)
	}
	if got := AlignUp(32, 16); got != 32 {
		t.Errorf("AlignUp(32,16) = %d, want 32", got)
	}
	if got := AlignDown(17, 16); got != 16 {
		t.Errorf("AlignDown(17,16) = %d, want 16", got)
	}
	if got := AlignDown(16, 16); got != 16 {
		t.Errorf("AlignDown(16,16) = %d, want 16", got)
	}
}

func TestAlignProperty(t *testing.T) {
	f := func(a Addr) bool {
		const al = 64
		up, down := AlignUp(a, al), AlignDown(a, al)
		return down <= a && up >= a && up%al == 0 && down%al == 0 && up-down < al*2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrString(t *testing.T) {
	if s := Addr(0x1234).String(); s != "0x1234" {
		t.Errorf("Addr.String = %q", s)
	}
	if s := Line(0x12).String(); s != "line:0x12" {
		t.Errorf("Line.String = %q", s)
	}
}
