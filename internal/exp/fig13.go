package exp

import (
	"errors"
	"fmt"
	"io"
	"sort"

	"semloc/internal/core"
	"semloc/internal/stats"
)

// fig13Sizes are the CST entry counts swept in Figure 13; the reducer is
// held at 8x the CST size as in the paper.
var fig13Sizes = []int{512, 1024, 2048, 4096, 8192, 16384, 32768}

// fig13Workloads is the evaluation subset for the storage sweep. The full
// suite at seven sizes is expensive; this cross-section preserves the mix
// that produces the paper's non-monotone curve.
var fig13Workloads = []string{
	"list", "listsort", "bst", "mcf", "ssca_lds",
	"graph500-list", "omnetpp", "array", "libquantum", "hmmer",
}

// fig13Jobs builds the storage sweep's job matrix: the shared no-prefetch
// baselines (named, memoized) followed by one parameterised context run
// per (workload, CST size).
func fig13Jobs() []Job {
	jobs := make([]Job, 0, len(fig13Workloads)*(1+len(fig13Sizes)))
	for _, wl := range fig13Workloads {
		jobs = append(jobs, Job{Workload: wl, Prefetcher: "none"})
	}
	for si, size := range fig13Sizes {
		cfg := fig13Config(size)
		for _, wl := range fig13Workloads {
			jobs = append(jobs, Job{Workload: wl, Prefetcher: "context", Point: si, Config: &cfg})
		}
	}
	return jobs
}

// RunFig13 regenerates Figure 13: average speedup as a function of the
// context prefetcher's storage size, for the ten workloads that benefit
// most (Top10) and for the whole sweep set (All). The paper's point is
// that bigger is not monotonically better for a learning prefetcher.
func RunFig13(r *Runner, w io.Writer) error {
	jobs := fig13Jobs()
	results, err := r.RunJobs(jobs)
	if err != nil {
		return err
	}

	var errs []error
	baseIPC := make(map[string]float64, len(fig13Workloads))
	cells := make([]map[string]float64, len(fig13Sizes))
	for i := range cells {
		cells[i] = make(map[string]float64)
	}
	for _, jr := range results {
		if jr.Err != nil {
			errs = append(errs, jr.Err)
			continue
		}
		if jr.Job.Config == nil {
			baseIPC[jr.Job.Workload] = jr.Result.IPC()
		}
	}
	for _, jr := range results {
		if jr.Err != nil || jr.Job.Config == nil {
			continue
		}
		base := baseIPC[jr.Job.Workload]
		if base == 0 {
			errs = append(errs, fmt.Errorf("exp: fig13: %s baseline IPC is zero or missing", jr.Job.Workload))
			continue
		}
		cells[jr.Job.Point][jr.Job.Workload] = jr.Result.IPC() / base
	}
	if len(errs) > 0 {
		return errors.Join(errs...)
	}

	// Top10 at the default size would be the paper's selection; with a
	// ten-workload sweep set, Top half plays that role.
	baselineIdx := indexOf(fig13Sizes, core.DefaultConfig().CSTEntries)
	type ranked struct {
		name string
		s    float64
	}
	var rank []ranked
	for _, wl := range fig13Workloads {
		rank = append(rank, ranked{wl, cells[baselineIdx][wl]})
	}
	sort.Slice(rank, func(i, j int) bool { return rank[i].s > rank[j].s })
	top := make(map[string]bool)
	for i := 0; i < len(rank)/2; i++ {
		top[rank[i].name] = true
	}

	tb := stats.NewTable("Figure 13: speedup vs CST storage size", "CST entries", "storage", "speedup (Top)", "speedup (All)")
	for si, size := range fig13Sizes {
		var all, topv []float64
		for wl, s := range cells[si] {
			all = append(all, s)
			if top[wl] {
				topv = append(topv, s)
			}
		}
		cfg := fig13Config(size)
		tb.AddRow(size, fmt.Sprintf("%dkB", cfg.StorageBytes()>>10), stats.Mean(topv), stats.Mean(all))
	}
	tb.Render(w)
	fmt.Fprintln(w, "expectation (paper): benefit peaks at mid sizes and does not keep improving with storage")
	return nil
}

// fig13Config scales the context prefetcher to the given CST size with the
// reducer held at 8x.
func fig13Config(cstEntries int) core.Config {
	cfg := core.DefaultConfig()
	cfg.CSTEntries = cstEntries
	cfg.ReducerEntries = cstEntries * 8
	return cfg
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return 0
}
