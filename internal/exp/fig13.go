package exp

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"semloc/internal/core"
	"semloc/internal/sim"
	"semloc/internal/stats"
)

// fig13Sizes are the CST entry counts swept in Figure 13; the reducer is
// held at 8x the CST size as in the paper.
var fig13Sizes = []int{512, 1024, 2048, 4096, 8192, 16384, 32768}

// fig13Workloads is the evaluation subset for the storage sweep. The full
// suite at seven sizes is expensive; this cross-section preserves the mix
// that produces the paper's non-monotone curve.
var fig13Workloads = []string{
	"list", "listsort", "bst", "mcf", "ssca_lds",
	"graph500-list", "omnetpp", "array", "libquantum", "hmmer",
}

// RunFig13 regenerates Figure 13: average speedup as a function of the
// context prefetcher's storage size, for the ten workloads that benefit
// most (Top10) and for the whole sweep set (All). The paper's point is
// that bigger is not monotonically better for a learning prefetcher.
func RunFig13(r *Runner, w io.Writer) error {
	type cell struct {
		size    int
		speedup map[string]float64
	}
	cells := make([]cell, len(fig13Sizes))

	var wg sync.WaitGroup
	errCh := make(chan error, len(fig13Sizes)*len(fig13Workloads))
	var mu sync.Mutex
	for si, size := range fig13Sizes {
		cells[si] = cell{size: size, speedup: make(map[string]float64)}
		for _, wl := range fig13Workloads {
			si, size, wl := si, size, wl
			wg.Add(1)
			go func() {
				defer wg.Done()
				s, err := fig13Speedup(r, wl, size)
				if err != nil {
					errCh <- err
					return
				}
				mu.Lock()
				cells[si].speedup[wl] = s
				mu.Unlock()
			}()
		}
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return err
	}

	// Top10 at the default size would be the paper's selection; with a
	// ten-workload sweep set, Top half plays that role.
	baselineIdx := indexOf(fig13Sizes, core.DefaultConfig().CSTEntries)
	type ranked struct {
		name string
		s    float64
	}
	var rank []ranked
	for _, wl := range fig13Workloads {
		rank = append(rank, ranked{wl, cells[baselineIdx].speedup[wl]})
	}
	sort.Slice(rank, func(i, j int) bool { return rank[i].s > rank[j].s })
	top := make(map[string]bool)
	for i := 0; i < len(rank)/2; i++ {
		top[rank[i].name] = true
	}

	tb := stats.NewTable("Figure 13: speedup vs CST storage size", "CST entries", "storage", "speedup (Top)", "speedup (All)")
	for _, c := range cells {
		var all, topv []float64
		for wl, s := range c.speedup {
			all = append(all, s)
			if top[wl] {
				topv = append(topv, s)
			}
		}
		cfg := fig13Config(c.size)
		tb.AddRow(c.size, fmt.Sprintf("%dkB", cfg.StorageBytes()>>10), stats.Mean(topv), stats.Mean(all))
	}
	tb.Render(w)
	fmt.Fprintln(w, "expectation (paper): benefit peaks at mid sizes and does not keep improving with storage")
	return nil
}

// fig13Config scales the context prefetcher to the given CST size with the
// reducer held at 8x.
func fig13Config(cstEntries int) core.Config {
	cfg := core.DefaultConfig()
	cfg.CSTEntries = cstEntries
	cfg.ReducerEntries = cstEntries * 8
	return cfg
}

// fig13Speedup runs the workload with a context prefetcher of the given
// CST size and returns its speedup over the shared no-prefetch baseline.
func fig13Speedup(r *Runner, workload string, cstEntries int) (float64, error) {
	base, err := r.Result(workload, "none")
	if err != nil {
		return 0, err
	}
	tr, err := r.Trace(workload)
	if err != nil {
		return 0, err
	}
	pf, err := core.New(fig13Config(cstEntries))
	if err != nil {
		return 0, err
	}
	res, err := sim.Run(tr, pf, r.Options().Sim)
	if err != nil {
		return 0, err
	}
	return res.IPC() / base.IPC(), nil
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return 0
}
