package exp

import (
	"fmt"
	"io"

	"semloc/internal/memmodel"
	"semloc/internal/stats"
)

// RunFig1 regenerates Figure 1: the memory accesses of a naive linked-list
// insertion sort over 100 randomly-ordered elements, mapped both by real
// memory address (top plot: no visible structure) and by logical list
// index (bottom plot: perfectly linear recurring sweeps).
//
// The output is the two series the figure scatters, plus summary metrics
// that quantify the contrast: the correlation of consecutive accesses in
// each coordinate system.
func RunFig1(r *Runner, w io.Writer) error {
	const n = 100
	rng := memmodel.NewRNG(r.Options().Seed)
	h := memmodel.NewHeap(memmodel.HeapConfig{Seed: r.Options().Seed})
	nodes := ShuffleForFig1(h, rng, n)
	keys := rng.Perm(n)

	type access struct {
		addr    memmodel.Addr
		logical int
	}
	var accesses []access

	// Insertion sort: elements arrive in arrival order; each insertion
	// traverses the sorted prefix.
	var sorted []int // node indices in key order
	for i := 0; i < n; i++ {
		key := keys[i]
		pos := 0
		for pos < len(sorted) && keys[sorted[pos]] < key {
			accesses = append(accesses, access{addr: nodes[sorted[pos]], logical: pos})
			pos++
		}
		sorted = append(sorted, 0)
		copy(sorted[pos+1:], sorted[pos:])
		sorted[pos] = i
	}

	// Series sample: print every kth access to keep output plottable.
	tb := stats.NewTable("Figure 1: insertion-sort accesses (physical vs logical)", "access#", "address", "logical index")
	step := len(accesses) / 200
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(accesses); i += step {
		tb.AddRow(i, accesses[i].addr, accesses[i].logical)
	}
	tb.Render(w)

	// Quantify: consecutive-access adjacency in both coordinate systems.
	var logicalAdj, physicalAdj int
	for i := 1; i < len(accesses); i++ {
		if accesses[i].logical == accesses[i-1].logical+1 {
			logicalAdj++
		}
		d := int64(accesses[i].addr) - int64(accesses[i-1].addr)
		if d == 64 || d == -64 {
			physicalAdj++
		}
	}
	total := len(accesses) - 1
	fmt.Fprintf(w, "\nconsecutive-access adjacency: logical %.1f%%, physical %.1f%% (of %d transitions)\n",
		100*float64(logicalAdj)/float64(total), 100*float64(physicalAdj)/float64(total), total)
	fmt.Fprintln(w, "expectation (paper): logical traversal is near-perfectly linear; physical addresses show no spatial structure")
	return nil
}

// ShuffleForFig1 scatters n nodes of 64 bytes across the heap the way a
// long-running allocator would (fully random placement, as in the paper's
// top plot).
func ShuffleForFig1(h *memmodel.Heap, rng *memmodel.RNG, n int) []memmodel.Addr {
	out := make([]memmodel.Addr, n)
	for i := range out {
		out[i] = h.Alloc(64)
	}
	// Fully shuffle so allocation order carries no spatial meaning.
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}
