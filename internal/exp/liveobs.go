package exp

// This file is the engine's live-observability plumbing: per-batch metric
// counters and per-run span accounting. Everything here is cell-granular —
// a handful of atomics and one timestamped struct per simulation — and
// fully disabled (no clock reads, no allocations) when neither
// Options.Metrics nor Options.Spans is set, preserving the engine's
// zero-overhead contract.

import (
	"sync/atomic"
	"time"

	"semloc/internal/cache"
	"semloc/internal/obs"
	"semloc/internal/sim"
)

// runMetrics bundles the engine's registered metric handles. A nil
// *runMetrics (Options.Metrics unset) makes every method a no-op.
type runMetrics struct {
	cellsTotal, cellsDone, cellsFailed *obs.Counter
	accesses                           *obs.Counter
	queueWait, runSeconds              *obs.Histogram
	busy, lastIPC, lastMPKI            *obs.Gauge
}

func newRunMetrics(reg *obs.Registry) *runMetrics {
	if reg == nil {
		return nil
	}
	return &runMetrics{
		cellsTotal:  reg.Counter(obs.MetricCellsTotal, "matrix cells submitted to the engine"),
		cellsDone:   reg.Counter(obs.MetricCellsDone, "matrix cells completed (success or failure)"),
		cellsFailed: reg.Counter(obs.MetricCellsFailed, "matrix cells that finished with an error"),
		accesses:    reg.Counter(obs.MetricAccesses, "demand accesses simulated by completed runs"),
		queueWait:   reg.Histogram(obs.MetricQueueWait, "seconds runs waited for a worker slot", nil),
		runSeconds:  reg.Histogram(obs.MetricRunSeconds, "end-to-end simulation seconds per executed run", nil),
		busy:        reg.Gauge(obs.GaugeWorkersBusy, "runs currently holding a worker slot"),
		lastIPC:     reg.Gauge(obs.GaugeLastIPC, "IPC of the most recently completed cell"),
		lastMPKI:    reg.Gauge(obs.GaugeLastL1MPKI, "L1 MPKI of the most recently completed cell"),
	}
}

// batchSubmitted accounts a RunJobs batch entering the engine.
func (m *runMetrics) batchSubmitted(jobs int) {
	if m == nil {
		return
	}
	m.cellsTotal.Add(uint64(jobs))
}

// jobFinished accounts one batch cell completing — including memoized
// cells that never re-simulated, so done converges on total.
func (m *runMetrics) jobFinished(jr *JobResult) {
	if m == nil {
		return
	}
	m.cellsDone.Inc()
	if jr.Err != nil {
		m.cellsFailed.Inc()
		return
	}
	if jr.Result != nil {
		m.lastIPC.Set(jr.Result.IPC())
		m.lastMPKI.Set(jr.Result.L1MPKI())
	}
}

// workerAcquired / workerReleased bracket a held worker-pool slot.
func (m *runMetrics) workerAcquired() {
	if m == nil {
		return
	}
	m.busy.Add(1)
}

func (m *runMetrics) workerReleased() {
	if m == nil {
		return
	}
	m.busy.Add(-1)
}

// runExecuted accounts one actually-executed simulation (memoized cache
// hits never reach here).
func (m *runMetrics) runExecuted(res *sim.Result, queueWait, total time.Duration) {
	if m == nil {
		return
	}
	m.queueWait.Observe(queueWait.Seconds())
	m.runSeconds.Observe(total.Seconds())
	if res != nil {
		m.accesses.Add(res.Categories.Demand)
	}
}

// cellTrace accumulates one executed run's phase boundaries. A nil
// *cellTrace (observability fully disabled) turns every method into a
// single branch and, crucially, warmupHook into a nil function pointer —
// the simulation then runs the exact uninstrumented configuration.
//
// Phase model (offsets from the cell's start):
//
//	decode     [0, decode]            fetching/generating the trace
//	queue_wait [qStart, qEnd]         blocking on the worker semaphore
//	warmup     [simStart, warmEnd]    simulating up to the warm-up marker
//	measured   [warmEnd, total]       simulating the measured region
//
// warmEnd is stored atomically because the warm-up hook runs on the
// simulation goroutine, which the harness may abandon after a grace
// timeout — the late write must not race the span assembly.
type cellTrace struct {
	r        *Runner
	workload string
	pf       string
	point    int
	start    time.Time
	off      time.Duration // span-epoch offset of start
	decode   time.Duration
	qStart   time.Duration
	qEnd     time.Duration
	simStart time.Duration
	warmEnd  atomic.Int64 // nanoseconds since start; 0 = no warm-up marker
}

// beginCell starts phase accounting for one job, or returns nil when both
// metrics and spans are disabled.
func (r *Runner) beginCell(workload, prefetcher string, point int) *cellTrace {
	if r.met == nil && r.spans == nil {
		return nil
	}
	return &cellTrace{
		r:        r,
		workload: workload,
		pf:       prefetcher,
		point:    point,
		start:    time.Now(),
		off:      r.spans.Now(),
	}
}

func (c *cellTrace) decodeDone() {
	if c == nil {
		return
	}
	c.decode = time.Since(c.start)
}

func (c *cellTrace) queueStart() {
	if c == nil {
		return
	}
	c.qStart = time.Since(c.start)
}

func (c *cellTrace) queueDone() {
	if c == nil {
		return
	}
	c.qEnd = time.Since(c.start)
	c.simStart = c.qEnd
}

// installWarmup chains the cell's warmup→measured boundary timestamp onto
// the run configuration's OnWarmupEnd hook, preserving any hook the caller
// already set. A nil cellTrace leaves the configuration untouched, so the
// disabled path runs the exact uninstrumented simulation.
func (c *cellTrace) installWarmup(cfg *sim.Config) {
	if c == nil {
		return
	}
	prev := cfg.CPU.OnWarmupEnd
	cfg.CPU.OnWarmupEnd = func(now cache.Cycle) {
		c.warmEnd.Store(int64(time.Since(c.start)))
		if prev != nil {
			prev(now)
		}
	}
}

// finish closes the cell: it feeds the run histograms and appends the span
// with its phase breakdown.
func (c *cellTrace) finish(res *sim.Result, err error) {
	if c == nil {
		return
	}
	total := time.Since(c.start)
	c.r.met.runExecuted(res, c.qEnd-c.qStart, total)
	rec := c.r.spans
	if rec == nil {
		return
	}
	s := obs.Span{
		Cat:        obs.CatRun,
		Workload:   c.workload,
		Prefetcher: c.pf,
		Point:      c.point,
		Start:      c.off,
		Dur:        total,
		Err:        err != nil,
	}
	s.Phases = append(s.Phases, obs.Phase{Name: obs.PhaseDecode, Start: c.off, Dur: c.decode})
	if c.qEnd >= c.qStart && c.qStart > 0 {
		s.Phases = append(s.Phases, obs.Phase{Name: obs.PhaseQueueWait, Start: c.off + c.qStart, Dur: c.qEnd - c.qStart})
	}
	if c.simStart > 0 {
		warm := time.Duration(c.warmEnd.Load())
		if warm > c.simStart && warm <= total {
			s.Phases = append(s.Phases,
				obs.Phase{Name: obs.PhaseWarmup, Start: c.off + c.simStart, Dur: warm - c.simStart},
				obs.Phase{Name: obs.PhaseMeasured, Start: c.off + warm, Dur: total - warm})
		} else {
			s.Phases = append(s.Phases, obs.Phase{Name: obs.PhaseMeasured, Start: c.off + c.simStart, Dur: total - c.simStart})
		}
	}
	rec.Add(s)
}
