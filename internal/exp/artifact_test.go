package exp

import (
	"bytes"
	"os"
	"testing"

	"semloc/internal/obs"
)

func TestRunnerPersistsArtifacts(t *testing.T) {
	dir := t.TempDir()
	opts := DefaultOptions()
	opts.Scale = 0.05
	opts.OutDir = dir
	opts.Telemetry = obs.Config{Interval: 1024, DecisionRate: 16}
	r := NewRunner(opts)

	res, err := r.Result("list", "context")
	if err != nil {
		t.Fatal(err)
	}
	if res.Series == nil {
		t.Fatal("telemetry enabled via Options but result has no series")
	}

	art, err := LoadArtifact(ArtifactPath(dir, "list", "context"))
	if err != nil {
		t.Fatal(err)
	}
	if art.Workload != "list" || art.Prefetcher != "context" {
		t.Fatalf("artifact identity %s/%s", art.Workload, art.Prefetcher)
	}
	if art.IPC <= 0 || art.IPC != res.IPC() {
		t.Fatalf("artifact IPC %v, result %v", art.IPC, res.IPC())
	}
	// Satellite contract: final Metrics and TableStats land in the same
	// artifact as the figure data.
	if art.Metrics == nil || art.Metrics.Accesses == 0 {
		t.Fatalf("artifact missing final metrics: %+v", art.Metrics)
	}
	if art.Metrics.HitDepths == nil || art.Metrics.HitDepths.Total() == 0 {
		t.Fatal("hit-depth histogram did not survive the round trip")
	}
	if art.TableStats == nil || art.TableStats.Entries == 0 {
		t.Fatalf("artifact missing learned-state summary: %+v", art.TableStats)
	}
	if art.Result.Series == nil || len(art.Result.Series.Samples) == 0 {
		t.Fatal("artifact missing telemetry series")
	}
	if err := art.Result.Series.Validate(); err != nil {
		t.Fatal(err)
	}

	// The decision trace must exist, parse, and agree with the series.
	f, err := os.Open(DecisionsPath(dir, "list", "context"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	evs, err := obs.ReadDecisions(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("empty decision trace")
	}
	if got := art.Result.Series.Decisions; got != uint64(len(evs)) {
		t.Fatalf("series says %d decisions, trace holds %d", got, len(evs))
	}
}

func TestRunnerPersistsNonInstrumentedPrefetcher(t *testing.T) {
	dir := t.TempDir()
	opts := DefaultOptions()
	opts.Scale = 0.05
	opts.OutDir = dir
	opts.Telemetry = obs.Config{Interval: 2048}
	r := NewRunner(opts)

	if _, err := r.Result("array", "none"); err != nil {
		t.Fatal(err)
	}
	art, err := LoadArtifact(ArtifactPath(dir, "array", "none"))
	if err != nil {
		t.Fatal(err)
	}
	if art.Metrics != nil || art.TableStats != nil {
		t.Fatal("none prefetcher should have no learner sections")
	}
	if art.Result.Series == nil {
		t.Fatal("machine-side series missing")
	}
	// No decision trace was configured; none must exist.
	if _, err := os.Stat(DecisionsPath(dir, "array", "none")); !os.IsNotExist(err) {
		t.Fatalf("unexpected decision trace: %v", err)
	}
}

func TestArtifactValidateRejectsMalformed(t *testing.T) {
	cases := []*RunArtifact{
		nil,
		{},
		{Schema: ArtifactSchema},
		{Schema: ArtifactSchema, Workload: "w", Prefetcher: "p"},
	}
	for i, a := range cases {
		if err := a.Validate(); err == nil {
			t.Fatalf("case %d: malformed artifact validated", i)
		}
	}
}

// TestArtifactRoundTripByteIdentical is the codec property test for the
// per-run artifact: the bytes WriteArtifact persisted, re-loaded through
// LoadArtifact and re-marshaled, must be identical — learner table state
// (final metrics, hit-depth histogram, table stats) must not drift through
// float formatting or field ordering across snapshot/restore cycles.
func TestArtifactRoundTripByteIdentical(t *testing.T) {
	dir := t.TempDir()
	opts := DefaultOptions()
	opts.Scale = 0.05
	opts.OutDir = dir
	opts.Telemetry = obs.Config{Interval: 1024}
	r := NewRunner(opts)
	if _, err := r.Result("list", "context"); err != nil {
		t.Fatal(err)
	}

	path := ArtifactPath(dir, "list", "context")
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	art, err := LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	// Write the loaded artifact again and compare files: one full
	// snapshot → restore → snapshot cycle through the JSON codec.
	dir2 := t.TempDir()
	if _, err := WriteArtifact(dir2, art); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(ArtifactPath(dir2, "list", "context"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		a, b := first, second
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				lo := max(0, i-80)
				t.Fatalf("artifact round trip drifted at byte %d:\nfirst:  …%s\nsecond: …%s",
					i, a[lo:min(len(a), i+80)], b[lo:min(len(b), i+80)])
			}
		}
		t.Fatalf("artifact round trip drifted in length: %d vs %d bytes", len(a), len(b))
	}
}

func TestRunFileBaseSanitizes(t *testing.T) {
	if got := runFileBase("a/b c", "x:y"); got != "a-b-c__x-y" {
		t.Fatalf("runFileBase = %q", got)
	}
}
