package exp

import (
	"fmt"
	"io"

	"semloc/internal/core"
	"semloc/internal/stats"
)

// fig8Micro is the µbenchmark set of Figure 8 (top plot).
var fig8Micro = []string{"array", "list", "listsort", "bst", "hashtest", "maptest", "prim", "ssca_lds", "graph500-list"}

// fig8Regular is the regular-benchmark subset (bottom plot).
var fig8Regular = []string{"libquantum", "lbm", "milc", "hmmer", "sphinx3", "h264ref"}

// RunFig8 regenerates Figure 8: the cumulative distribution of prefetch
// hit depths for the context prefetcher — the number of accesses between
// a (real or shadow) prediction entering the prefetch queue and the demand
// access that consumed it. The paper expects a visible step where the
// reward function's positive region begins.
func RunFig8(r *Runner, w io.Writer) error {
	if err := fig8Set(r, w, "Figure 8 (top): microbenchmarks", fig8Micro); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return fig8Set(r, w, "Figure 8 (bottom): regular benchmarks", fig8Regular)
}

func fig8Set(r *Runner, w io.Writer, title string, names []string) error {
	reward := core.DefaultRewardConfig()
	headers := append([]string{"depth"}, names...)
	cells := make([]interface{}, len(headers))
	tb := stats.NewTable(title+" — CDF of hit depths (context prefetcher)", headers...)
	cdfs := make(map[string][]float64, len(names))
	for _, n := range names {
		res, err := r.Result(n, "context")
		if err != nil {
			return err
		}
		cdfs[n] = res.HitDepths.CDF()
	}
	for d := 0; d <= 128; d += 4 {
		cells[0] = d
		for i, n := range names {
			cdf := cdfs[n]
			v := 1.0
			if d < len(cdf) {
				v = cdf[d]
			}
			cells[i+1] = v
		}
		tb.AddRow(cells...)
	}
	tb.Render(w)
	fmt.Fprintf(w, "reward window: positive region [%d, %d], centre %d\n", reward.Low, reward.High, reward.Center())
	return nil
}
