package exp

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func tinyRunner() *Runner {
	opts := DefaultOptions()
	opts.Scale = 0.02
	return NewRunner(opts)
}

func TestNewPrefetcherAllNames(t *testing.T) {
	for _, n := range PrefetcherNames {
		pf, err := NewPrefetcher(n)
		if err != nil {
			t.Fatalf("NewPrefetcher(%q): %v", n, err)
		}
		if pf.Name() != n {
			t.Errorf("prefetcher %q reports name %q", n, pf.Name())
		}
	}
	if _, err := NewPrefetcher("bogus"); err == nil {
		t.Error("expected error for unknown prefetcher")
	}
}

func TestFigurePrefetchersSubset(t *testing.T) {
	all := make(map[string]bool)
	for _, n := range PrefetcherNames {
		all[n] = true
	}
	for _, n := range FigurePrefetchers {
		if !all[n] {
			t.Errorf("figure prefetcher %q not in PrefetcherNames", n)
		}
	}
}

func TestRunnerCachesResults(t *testing.T) {
	r := tinyRunner()
	a, err := r.Result("array", "none")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Result("array", "none")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second Result call should return the cached pointer")
	}
}

func TestRunnerCachesTraces(t *testing.T) {
	r := tinyRunner()
	a, err := r.Trace("array")
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Trace("array")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("trace should be generated once")
	}
}

func TestRunnerConcurrentSameKey(t *testing.T) {
	r := tinyRunner()
	var wg sync.WaitGroup
	results := make([]interface{}, 8)
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := r.Result("list", "context")
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}()
	}
	wg.Wait()
	for i := 1; i < 8; i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent callers should share one result")
		}
	}
}

func TestRunnerUnknownWorkload(t *testing.T) {
	r := tinyRunner()
	if _, err := r.Result("nope", "none"); err == nil {
		t.Error("expected error for unknown workload")
	}
	if _, err := r.Result("array", "nope"); err == nil {
		t.Error("expected error for unknown prefetcher")
	}
}

func TestSpeedup(t *testing.T) {
	r := tinyRunner()
	s, err := r.Speedup("array", "sms")
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 {
		t.Errorf("speedup = %v, want positive", s)
	}
}

func TestWorkloadLists(t *testing.T) {
	if len(AllWorkloads()) < 30 {
		t.Errorf("AllWorkloads = %d, want >= 30", len(AllWorkloads()))
	}
	if len(SPECWorkloads()) != 16 {
		t.Errorf("SPECWorkloads = %d, want 16", len(SPECWorkloads()))
	}
	if len(MicroWorkloads()) != 8 {
		t.Errorf("MicroWorkloads = %d, want 8", len(MicroWorkloads()))
	}
}

func TestExperimentRegistry(t *testing.T) {
	want := []string{"table2", "table3", "fig1", "fig5", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "limit"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if _, err := ByID("fig12"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("expected error for unknown id")
	}
}

// TestCheapExperimentsRun executes the fast experiments end-to-end.
func TestCheapExperimentsRun(t *testing.T) {
	r := tinyRunner()
	for _, id := range []string{"table2", "table3", "fig1", "fig5"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := e.Run(r, &buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", id)
		}
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	var buf bytes.Buffer
	if err := RunTable2(tinyRunner(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"4-wide", "192 ROB", "L1: 4, L2: 20", "64kB", "2MB", "300 cycles", "2048 entries x 4 links", "16384 entries"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig1ShowsSemanticLinearity(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFig1(tinyRunner(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "consecutive-access adjacency") {
		t.Fatalf("missing adjacency summary:\n%s", out)
	}
	// Parse the two percentages: logical must dominate physical.
	var logical, physical float64
	var transitions int
	if _, err := fmtSscanf(out, &logical, &physical, &transitions); err != nil {
		t.Fatalf("cannot parse summary: %v\n%s", err, out)
	}
	if logical < 50 {
		t.Errorf("logical adjacency = %.1f%%, want dominant", logical)
	}
	if physical > logical/2 {
		t.Errorf("physical adjacency = %.1f%% should be far below logical %.1f%%", physical, logical)
	}
}

// fmtSscanf extracts the adjacency numbers from RunFig1's summary line.
func fmtSscanf(out string, logical, physical *float64, transitions *int) (int, error) {
	idx := strings.Index(out, "consecutive-access adjacency")
	line := out[idx:]
	if nl := strings.IndexByte(line, '\n'); nl >= 0 {
		line = line[:nl]
	}
	return fmt.Sscanf(line, "consecutive-access adjacency: logical %f%%, physical %f%% (of %d transitions)", logical, physical, transitions)
}
