package exp

import (
	"fmt"
	"io"

	"semloc/internal/stats"
)

// RunFig12 regenerates Figure 12: per-workload speedups of each prefetcher
// over the no-prefetch baseline, with the averages the paper reports (all
// workloads, and the SPEC2006 suite alone) and the context-vs-best-
// competitor comparison from the abstract.
func RunFig12(r *Runner, w io.Writer) error {
	headers := append([]string{"workload"}, FigurePrefetchers[1:]...)
	tb := stats.NewTable("Figure 12: speedup over no prefetching", headers...)

	perPF := make(map[string][]float64)
	specPF := make(map[string][]float64)
	spec := make(map[string]bool)
	for _, n := range SPECWorkloads() {
		spec[n] = true
	}
	var ctxMax float64
	var ctxMaxName string

	for _, wl := range AllWorkloads() {
		if _, err := r.ResultsFor(wl, FigurePrefetchers); err != nil {
			return err
		}
		cells := make([]interface{}, len(headers))
		cells[0] = wl
		for i, pn := range FigurePrefetchers[1:] {
			s, err := r.Speedup(wl, pn)
			if err != nil {
				return err
			}
			cells[i+1] = s
			perPF[pn] = append(perPF[pn], s)
			if spec[wl] {
				specPF[pn] = append(specPF[pn], s)
			}
			if pn == "context" && s > ctxMax {
				ctxMax, ctxMaxName = s, wl
			}
		}
		tb.AddRow(cells...)
	}

	addAvg := func(label string, data map[string][]float64) {
		cells := make([]interface{}, len(headers))
		cells[0] = label
		for i, pn := range FigurePrefetchers[1:] {
			cells[i+1] = stats.Mean(data[pn])
		}
		tb.AddRow(cells...)
	}
	addAvg("AVERAGE (all)", perPF)
	addAvg("AVERAGE (SPEC2006)", specPF)
	tb.Render(w)

	ctxAvg := stats.Mean(perPF["context"])
	bestOther, bestName := 0.0, ""
	for _, pn := range FigurePrefetchers[1:] {
		if pn == "context" {
			continue
		}
		if m := stats.Mean(perPF[pn]); m > bestOther {
			bestOther, bestName = m, pn
		}
	}
	fmt.Fprintf(w, "\ncontext prefetcher: max speedup %.2fx (%s), average %.1f%% over baseline\n",
		ctxMax, ctxMaxName, 100*(ctxAvg-1))
	fmt.Fprintf(w, "SPEC2006-only average: %.1f%% over baseline\n", 100*(stats.Mean(specPF["context"])-1))
	if bestOther > 1 {
		fmt.Fprintf(w, "average speedup gain vs best competitor (%s): %.0f%% better\n",
			bestName, 100*(ctxAvg-1)/(bestOther-1)-100)
	}
	return nil
}
