package exp

import (
	"context"
	"strings"
	"testing"

	"semloc/internal/harness"
)

func TestResultsForJoinsAllErrors(t *testing.T) {
	r := tinyRunner()
	_, err := r.ResultsFor("array", []string{"none", "bogus-a", "bogus-b"})
	if err == nil {
		t.Fatal("expected errors for unknown prefetchers")
	}
	msg := err.Error()
	for _, want := range []string{"bogus-a", "bogus-b"} {
		if !strings.Contains(msg, want) {
			t.Errorf("joined error %q does not name failing pair %q", msg, want)
		}
	}
}

func TestRunnerCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultOptions()
	opts.Scale = 0.02
	r := NewRunnerContext(ctx, opts)
	_, err := r.Result("array", "none")
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !harness.IsCancelled(err) {
		t.Errorf("IsCancelled = false for %v", err)
	}
	// Cancellation must not be memoized as a permanent failure: a fresh
	// runner with a live context still runs the pair.
	r2 := tinyRunner()
	if _, err := r2.Result("array", "none"); err != nil {
		t.Errorf("fresh runner failed after cancelled one: %v", err)
	}
}
