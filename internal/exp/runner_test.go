package exp

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"semloc/internal/harness"
	"semloc/internal/trace"
)

func TestResultsForJoinsAllErrors(t *testing.T) {
	r := tinyRunner()
	_, err := r.ResultsFor("array", []string{"none", "bogus-a", "bogus-b"})
	if err == nil {
		t.Fatal("expected errors for unknown prefetchers")
	}
	msg := err.Error()
	for _, want := range []string{"bogus-a", "bogus-b"} {
		if !strings.Contains(msg, want) {
			t.Errorf("joined error %q does not name failing pair %q", msg, want)
		}
	}
}

func TestRunnerCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultOptions()
	opts.Scale = 0.02
	r := NewRunnerContext(ctx, opts)
	_, err := r.Result("array", "none")
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !harness.IsCancelled(err) {
		t.Errorf("IsCancelled = false for %v", err)
	}
	// Cancellation must not be memoized as a permanent failure: a fresh
	// runner with a live context still runs the pair.
	r2 := tinyRunner()
	if _, err := r2.Result("array", "none"); err != nil {
		t.Errorf("fresh runner failed after cancelled one: %v", err)
	}
}

// TestTraceSingleFlight regresses the duplicated-generation bug: Result
// always went through a single-flight guard, but Trace did not — N
// concurrent callers racing on a cold workload each ran the generator,
// multiplying work and peak heap by N. All concurrent callers must share
// one generation and receive the same memoized trace.
func TestTraceSingleFlight(t *testing.T) {
	const callers = 16
	r := tinyRunner()
	var gens atomic.Int32
	r.traces.genHook = func(string) { gens.Add(1) }

	var wg sync.WaitGroup
	traces := make([]*trace.Trace, callers)
	errs := make([]error, callers)
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			traces[i], errs[i] = r.Trace("list")
		}()
	}
	close(start)
	wg.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if traces[i] == nil || traces[i] != traces[0] {
			t.Fatalf("caller %d got a different trace pointer", i)
		}
	}
	if n := gens.Load(); n != 1 {
		t.Errorf("generator ran %d times for %d concurrent callers, want 1", n, callers)
	}
	// A later call still hits the memoized trace, not the generator.
	if _, err := r.Trace("list"); err != nil {
		t.Fatal(err)
	}
	if n := gens.Load(); n != 1 {
		t.Errorf("generator re-ran on a warm cache (%d runs)", n)
	}
}

// TestTraceErrorMemoized ensures a failed generation is remembered like a
// failed result: the unknown-workload error returns consistently without
// re-entering the lookup each time through a fresh in-flight slot.
func TestTraceErrorMemoized(t *testing.T) {
	r := tinyRunner()
	_, err1 := r.Trace("no-such-workload")
	if err1 == nil {
		t.Fatal("expected error for unknown workload")
	}
	_, err2 := r.Trace("no-such-workload")
	if err2 == nil {
		t.Fatal("expected memoized error for unknown workload")
	}
}
