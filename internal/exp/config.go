package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"semloc/internal/core"
	"semloc/internal/sim"
)

// FileConfig is the JSON configuration accepted by the -config flag of
// cmd/prefetchsim and cmd/experiments: optional overrides for the machine
// and for the context prefetcher. Omitted sections keep the Table 2
// defaults; within a provided section, zero-valued fields are filled from
// the defaults before validation, so a file only needs the fields it
// changes, e.g.
//
//	{"sim": {"Cache": {"DRAMLatency": 200}},
//	 "context": {"MaxDegree": 2, "Epsilon": 0.1}}
type FileConfig struct {
	Sim     *sim.Config  `json:"sim,omitempty"`
	Context *core.Config `json:"context,omitempty"`
}

// LoadConfig reads and validates a FileConfig. The returned SimConfig and
// ContextConfig are always usable (defaults where the file is silent).
func LoadConfig(path string) (*FileConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("exp: reading config: %w", err)
	}
	var fc FileConfig
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&fc); err != nil {
		return nil, fmt.Errorf("exp: parsing config %s: %w", path, err)
	}
	if fc.Sim != nil {
		fillSimDefaults(fc.Sim)
		if err := fc.Sim.Cache.Validate(); err != nil {
			return nil, fmt.Errorf("exp: config %s: %w", path, err)
		}
		if err := fc.Sim.CPU.Validate(); err != nil {
			return nil, fmt.Errorf("exp: config %s: %w", path, err)
		}
	}
	if fc.Context != nil {
		fillContextDefaults(fc.Context)
		if err := fc.Context.Validate(); err != nil {
			return nil, fmt.Errorf("exp: config %s: %w", path, err)
		}
	}
	return &fc, nil
}

// SimConfig returns the machine configuration (defaults if absent).
func (fc *FileConfig) SimConfig() sim.Config {
	if fc == nil || fc.Sim == nil {
		return sim.DefaultConfig()
	}
	return *fc.Sim
}

// ContextConfig returns the context prefetcher configuration (defaults if
// absent).
func (fc *FileConfig) ContextConfig() core.Config {
	if fc == nil || fc.Context == nil {
		return core.DefaultConfig()
	}
	return *fc.Context
}

// fillSimDefaults replaces zero-valued machine fields with Table 2 values.
func fillSimDefaults(c *sim.Config) {
	def := sim.DefaultConfig()
	if c.CPU.Width == 0 {
		c.CPU.Width = def.CPU.Width
	}
	if c.CPU.ROB == 0 {
		c.CPU.ROB = def.CPU.ROB
	}
	if c.CPU.LQ == 0 {
		c.CPU.LQ = def.CPU.LQ
	}
	if c.CPU.SQ == 0 {
		c.CPU.SQ = def.CPU.SQ
	}
	if c.CPU.MispredictPenalty == 0 {
		c.CPU.MispredictPenalty = def.CPU.MispredictPenalty
	}
	if c.Cache.L1.Size == 0 {
		c.Cache.L1 = def.Cache.L1
	}
	if c.Cache.L2.Size == 0 {
		c.Cache.L2 = def.Cache.L2
	}
	if c.Cache.DRAMLatency == 0 {
		c.Cache.DRAMLatency = def.Cache.DRAMLatency
	}
	if c.Cache.PrefetchQueue == 0 {
		c.Cache.PrefetchQueue = def.Cache.PrefetchQueue
	}
	if c.Cache.DRAMChannels == 0 {
		c.Cache.DRAMChannels = def.Cache.DRAMChannels
	}
	if c.Cache.DRAMBusyCycles == 0 {
		c.Cache.DRAMBusyCycles = def.Cache.DRAMBusyCycles
	}
}

// fillContextDefaults replaces zero-valued prefetcher fields with the
// paper's defaults.
func fillContextDefaults(c *core.Config) {
	def := core.DefaultConfig()
	if c.CSTEntries == 0 {
		c.CSTEntries = def.CSTEntries
	}
	if c.CSTLinks == 0 {
		c.CSTLinks = def.CSTLinks
	}
	if c.ReducerEntries == 0 {
		c.ReducerEntries = def.ReducerEntries
	}
	if c.HistoryDepth == 0 {
		c.HistoryDepth = def.HistoryDepth
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = def.QueueDepth
	}
	if len(c.SampleDepths) == 0 {
		c.SampleDepths = def.SampleDepths
	}
	if c.Reward == (core.RewardConfig{}) {
		c.Reward = def.Reward
	}
	if c.Epsilon == 0 {
		c.Epsilon = def.Epsilon
	}
	if c.MaxDegree == 0 {
		c.MaxDegree = def.MaxDegree
	}
	if c.BlockShift == 0 {
		c.BlockShift = def.BlockShift
	}
	if c.Seed == 0 {
		c.Seed = def.Seed
	}
}
