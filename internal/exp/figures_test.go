package exp

import (
	"bytes"
	"strings"
	"testing"
)

// figRunner uses a scale large enough for the figures to be meaningful but
// small enough for CI.
func figRunner() *Runner {
	opts := DefaultOptions()
	opts.Scale = 0.05
	return NewRunner(opts)
}

func TestFig5Output(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFig5(figRunner(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "reward (paper window 18-50)") {
		t.Errorf("missing paper-window series:\n%s", out)
	}
	// Both series appear with the expected row count (0..80 step 2 = 41).
	if got := strings.Count(out, "\n"); got < 41 {
		t.Errorf("too few rows: %d newlines", got)
	}
}

func TestFig8CDFsAreMonotone(t *testing.T) {
	r := figRunner()
	var buf bytes.Buffer
	if err := RunFig8(r, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "microbenchmarks") || !strings.Contains(out, "regular benchmarks") {
		t.Fatalf("missing plot sections:\n%s", out[:200])
	}
	// CDF property via the runner: every per-workload CDF is monotone.
	for _, wl := range fig8Micro {
		res, err := r.Result(wl, "context")
		if err != nil {
			t.Fatal(err)
		}
		cdf := res.HitDepths.CDF()
		for i := 1; i < len(cdf); i++ {
			if cdf[i] < cdf[i-1] {
				t.Fatalf("%s: CDF not monotone at %d", wl, i)
			}
		}
	}
}

func TestFig9FractionsBounded(t *testing.T) {
	r := figRunner()
	for _, wl := range []string{"list", "array"} {
		results, err := r.ResultsFor(wl, FigurePrefetchers)
		if err != nil {
			t.Fatal(err)
		}
		for pn, res := range results {
			c := res.Categories
			sum := c.HitPrefetched + c.ShorterWait + c.NonTimely + c.MissNotPrefetched + c.HitOlderDemand
			if sum != c.Demand {
				t.Errorf("%s/%s: categories %d != demand %d", wl, pn, sum, c.Demand)
			}
		}
	}
}

func TestFig10AndFig11Output(t *testing.T) {
	// Use a tiny scale: these touch every workload.
	opts := DefaultOptions()
	opts.Scale = 0.02
	r := NewRunner(opts)
	for _, fn := range []func(*Runner, *bytes.Buffer) error{
		func(r *Runner, b *bytes.Buffer) error { return RunFig10(r, b) },
		func(r *Runner, b *bytes.Buffer) error { return RunFig11(r, b) },
	} {
		var buf bytes.Buffer
		if err := fn(r, &buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "AVERAGE (all)") {
			t.Errorf("missing average row:\n%s", buf.String())
		}
	}
}

func TestFig12Output(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.02
	r := NewRunner(opts)
	var buf bytes.Buffer
	if err := RunFig12(r, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"AVERAGE (all)", "AVERAGE (SPEC2006)", "max speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig12 output missing %q", want)
		}
	}
}

func TestFig13SweepShapes(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.02
	r := NewRunner(opts)
	var buf bytes.Buffer
	if err := RunFig13(r, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "kB") < len(fig13Sizes) {
		t.Errorf("expected one row per CST size:\n%s", out)
	}
}

func TestFig14Output(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.03
	r := NewRunner(opts)
	var buf bytes.Buffer
	if err := RunFig14(r, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "SSCA2") || !strings.Contains(out, "Graph500") {
		t.Errorf("fig14 missing sections:\n%s", out)
	}
	if !strings.Contains(out, "best naive-implementation CPI") {
		t.Error("fig14 missing summary line")
	}
}

// TestIntegrationHeadlineShape asserts the paper's qualitative claims on a
// mid-scale run of the flagship workloads: the context prefetcher beats
// the spatio-temporal prefetchers on the linked list and reduces MPKI.
func TestIntegrationHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("mid-scale integration run")
	}
	opts := DefaultOptions()
	opts.Scale = 0.2
	r := NewRunner(opts)

	ctx, err := r.Speedup("list", "context")
	if err != nil {
		t.Fatal(err)
	}
	if ctx < 1.5 {
		t.Errorf("context speedup on list = %.2f, want >= 1.5", ctx)
	}
	for _, pn := range []string{"ghb-gdc", "ghb-pcdc"} {
		other, err := r.Speedup("list", pn)
		if err != nil {
			t.Fatal(err)
		}
		if ctx <= other {
			t.Errorf("context (%.2f) should beat %s (%.2f) on the linked list", ctx, pn, other)
		}
	}
	// MPKI reduction (Figures 10/11 headline).
	base, err := r.Result("list", "none")
	if err != nil {
		t.Fatal(err)
	}
	cres, err := r.Result("list", "context")
	if err != nil {
		t.Fatal(err)
	}
	if cres.L1MPKI() >= base.L1MPKI()/2 {
		t.Errorf("context should at least halve list L1 MPKI: %.1f vs %.1f", cres.L1MPKI(), base.L1MPKI())
	}
}

func TestLimitStudy(t *testing.T) {
	opts := DefaultOptions()
	opts.Scale = 0.05
	r := NewRunner(opts)
	var buf bytes.Buffer
	if err := RunLimit(r, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "average capture of the oracle's gain") {
		t.Fatalf("missing summary:\n%s", out)
	}
	// The oracle must dominate the baseline on the flagship list workload.
	so, err := r.Speedup("list", "oracle")
	if err != nil {
		t.Fatal(err)
	}
	if so < 1.2 {
		t.Errorf("oracle speedup on list = %.2f, want substantial", so)
	}
}

func TestCaptureMath(t *testing.T) {
	cases := []struct{ s, oracle, want float64 }{
		{2.0, 3.0, 0.5},
		{1.0, 3.0, 0.0},
		{0.9, 3.0, 0.0},
		{3.0, 3.0, 1.0},
		{4.0, 3.0, 1.5},
		{1.2, 1.0, 1.0},
		{0.8, 0.9, 0.0},
		{9.0, 2.0, 2.0},
	}
	for _, c := range cases {
		if got := capture(c.s, c.oracle); got != c.want {
			t.Errorf("capture(%v,%v) = %v, want %v", c.s, c.oracle, got, c.want)
		}
	}
}
