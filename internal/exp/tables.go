package exp

import (
	"fmt"
	"io"

	"semloc/internal/core"
	"semloc/internal/stats"
	"semloc/internal/workloads"
)

// RunTable2 prints the simulated machine and prefetcher parameters
// (Table 2 of the paper) as configured in this reproduction.
func RunTable2(r *Runner, w io.Writer) error {
	cfg := r.Options().Sim
	ctx := core.DefaultConfig()

	tb := stats.NewTable("Table 2: simulator parameters", "parameter", "value")
	tb.AddRow("Core type", fmt.Sprintf("OoO, %d-wide fetch", cfg.CPU.Width))
	tb.AddRow("Queue sizes", fmt.Sprintf("%d ROB, %d LQ/SQ", cfg.CPU.ROB, cfg.CPU.LQ))
	tb.AddRow("MSHRs", fmt.Sprintf("L1: %d, L2: %d", cfg.Cache.L1.MSHRs, cfg.Cache.L2.MSHRs))
	tb.AddRow("L1 cache", fmt.Sprintf("%dkB Data, %d ways, %d cycles access", cfg.Cache.L1.Size>>10, cfg.Cache.L1.Ways, cfg.Cache.L1.Latency))
	tb.AddRow("L2 cache", fmt.Sprintf("%dMB, %d ways, %d cycles access", cfg.Cache.L2.Size>>20, cfg.Cache.L2.Ways, cfg.Cache.L2.Latency))
	tb.AddRow("Main memory", fmt.Sprintf("%d cycles access", cfg.Cache.DRAMLatency))
	tb.AddRow("CST", fmt.Sprintf("%d entries x %d links, direct-mapped", ctx.CSTEntries, ctx.CSTLinks))
	tb.AddRow("Reducer", fmt.Sprintf("%d entries, direct-mapped", ctx.ReducerEntries))
	tb.AddRow("History queue", fmt.Sprintf("%d entries", ctx.HistoryDepth))
	tb.AddRow("Prefetch queue", fmt.Sprintf("%d entries", ctx.QueueDepth))
	tb.AddRow("Context prefetcher size", fmt.Sprintf("~%dkB", ctx.StorageBytes()>>10))
	tb.Render(w)
	return nil
}

// RunTable3 prints the workload inventory (Table 3 of the paper).
func RunTable3(r *Runner, w io.Writer) error {
	tb := stats.NewTable("Table 3: workloads and benchmarks", "suite", "workload", "irregular", "modelled behaviour")
	for _, wl := range workloads.All() {
		tb.AddRow(wl.Suite, wl.Name, wl.Irregular, wl.Description)
	}
	tb.Render(w)
	return nil
}
