package exp

import (
	"reflect"
	"testing"

	"semloc/internal/obs"
)

// obsRunner builds a tiny-scale runner with live metrics and span tracing
// attached.
func obsRunner(par int, reg *obs.Registry, rec *obs.SpanRecorder) *Runner {
	opts := DefaultOptions()
	opts.Scale = 0.02
	opts.Parallelism = par
	opts.Metrics = reg
	opts.Spans = rec
	return NewRunner(opts)
}

// engineJobs holds 8 jobs of which one is a memoized duplicate, so 7 cells
// actually execute; job 4 fails at prefetcher construction.
const (
	engineJobCount     = 8
	engineExecuted     = 7
	engineFailed       = 1
	engineTraceDecodes = 2 // unique workloads: array, list
)

func TestRunJobsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	r := obsRunner(4, reg, nil)
	if _, err := r.RunJobs(engineJobs()); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter(obs.MetricCellsTotal, "").Value(); got != engineJobCount {
		t.Errorf("cells_total = %d, want %d", got, engineJobCount)
	}
	if got := reg.Counter(obs.MetricCellsDone, "").Value(); got != engineJobCount {
		t.Errorf("cells_done = %d, want %d", got, engineJobCount)
	}
	if got := reg.Counter(obs.MetricCellsFailed, "").Value(); got != engineFailed {
		t.Errorf("cells_failed = %d, want %d", got, engineFailed)
	}
	// Histograms count actually-executed runs: the memoized duplicate never
	// re-simulates.
	if got := reg.Histogram(obs.MetricRunSeconds, "", nil).Count(); got != engineExecuted {
		t.Errorf("run_seconds count = %d, want %d", got, engineExecuted)
	}
	if got := reg.Histogram(obs.MetricQueueWait, "", nil).Count(); got != engineExecuted {
		t.Errorf("queue_wait_seconds count = %d, want %d", got, engineExecuted)
	}
	if got := reg.Counter(obs.MetricAccesses, "").Value(); got == 0 {
		t.Error("sim_accesses_total stayed zero across a completed batch")
	}
	if got := reg.Gauge(obs.GaugeWorkersBusy, "").Value(); got != 0 {
		t.Errorf("workers_busy = %v after the batch, want 0", got)
	}
	if got := reg.Gauge(obs.GaugeLastIPC, "").Value(); got <= 0 {
		t.Errorf("last_ipc = %v, want > 0", got)
	}
}

func TestRunJobsSpans(t *testing.T) {
	rec := obs.NewSpanRecorder()
	r := obsRunner(4, nil, rec)
	if _, err := r.RunJobs(engineJobs()); err != nil {
		t.Fatal(err)
	}
	spans := rec.Spans()
	var runs, traces, failed int
	for i := range spans {
		s := &spans[i]
		switch s.Cat {
		case obs.CatRun:
			runs++
			if s.Err {
				failed++
				continue
			}
			names := map[string]bool{}
			for _, p := range s.Phases {
				names[p.Name] = true
				if p.Start < s.Start || p.Start+p.Dur > s.Start+s.Dur {
					t.Errorf("span %s: phase %s [%v, %v) escapes span [%v, %v)",
						s.Cell(), p.Name, p.Start, p.Start+p.Dur, s.Start, s.Start+s.Dur)
				}
			}
			if !names[obs.PhaseDecode] || !names[obs.PhaseMeasured] {
				t.Errorf("span %s: phases %v missing decode or measured", s.Cell(), names)
			}
			if !names[obs.PhaseWarmup] {
				t.Errorf("span %s: no warmup phase despite the trace's warm-up marker", s.Cell())
			}
		case obs.CatTrace:
			traces++
			if s.Prefetcher != "" || s.Dur < 0 {
				t.Errorf("trace span malformed: %+v", s)
			}
		default:
			t.Errorf("unknown span category %q", s.Cat)
		}
	}
	if runs != engineExecuted {
		t.Errorf("recorded %d run spans, want %d (memoized duplicate must not re-run)", runs, engineExecuted)
	}
	if failed != engineFailed {
		t.Errorf("recorded %d failed spans, want %d", failed, engineFailed)
	}
	if traces != engineTraceDecodes {
		t.Errorf("recorded %d trace spans, want %d (one per unique workload)", traces, engineTraceDecodes)
	}
}

// TestRunJobsObsMatchesDisabled pins the no-perturbation contract: attaching
// metrics and spans must not change a single simulation result.
func TestRunJobsObsMatchesDisabled(t *testing.T) {
	plain, err1 := engineRunner(4).RunJobs(engineJobs())
	instr, err2 := obsRunner(4, obs.NewRegistry(), obs.NewSpanRecorder()).RunJobs(engineJobs())
	if err1 != nil || err2 != nil {
		t.Fatalf("RunJobs errors: plain=%v instrumented=%v", err1, err2)
	}
	for i := range plain {
		if (plain[i].Err == nil) != (instr[i].Err == nil) {
			t.Fatalf("job %d: error mismatch with obs enabled", i)
		}
		if plain[i].Err == nil && !reflect.DeepEqual(plain[i].Result, instr[i].Result) {
			t.Errorf("job %d (%s/%s[%d]): result changed when observability was enabled",
				i, plain[i].Job.Workload, plain[i].Job.Prefetcher, plain[i].Job.Point)
		}
	}
}
