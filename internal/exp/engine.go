package exp

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"semloc/internal/core"
	"semloc/internal/harness"
	"semloc/internal/prefetch"
	"semloc/internal/sim"
)

// Job is one cell of an experiment matrix: a (workload, prefetcher,
// sweep-point) triple. Two flavours exist:
//
//   - Config == nil: a named run. The job goes through the Runner's
//     memoized Result path, so a job that several figures share (e.g.
//     "mcf"/"none") simulates once no matter how many batches request it.
//   - Config != nil: a parameterised context-prefetcher run (sweeps,
//     sensitivity studies). These are never memoized — each job builds a
//     fresh prefetcher from the config, with its RNG seed derived from
//     (base seed, workload, prefetcher, point) so the result is a pure
//     function of the job, not of scheduling order or sibling jobs.
type Job struct {
	// Workload is the trace to replay (Table 3 name).
	Workload string
	// Prefetcher is the prefetcher name. For Config jobs it only labels
	// the run and salts the derived seed.
	Prefetcher string
	// Point is the sweep-point index (0 for non-sweep jobs); it salts the
	// derived seed so two points with identical configs still get
	// independent exploration streams.
	Point int
	// Config, when non-nil, requests a fresh context-prefetcher run with
	// this configuration (its Seed field is overwritten by the derived
	// seed).
	Config *core.Config
}

// JobResult pairs a Job with its outcome. Results come back indexed by the
// position of the job in the submitted slice — never by completion order —
// which is half of the engine's determinism contract (the other half is
// seed derivation).
type JobResult struct {
	// Job echoes the submitted job.
	Job Job
	// Index is the job's position in the slice passed to RunJobs.
	Index int
	// Result is the simulation result (nil when Err is set).
	Result *sim.Result
	// Prefetcher is the prefetcher instance the run used — populated only
	// for Config jobs, where callers need post-run learned state (metrics,
	// accuracy). Named runs share memoized results across callers, so
	// exposing their instance would invite cross-run mutation.
	Prefetcher prefetch.Prefetcher
	// Err is the job's failure, if any. One failed job never aborts its
	// siblings: callers get every completed result plus every error.
	Err error
}

// DeriveSeed maps (base seed, workload, prefetcher, point) to the RNG seed
// for that run. The derivation is pure and order-free, which is what makes
// the parallel engine deterministic: a run's random stream depends only on
// the job's coordinates, never on which worker picked it up or how many
// jobs ran before it. Sequential and parallel schedules therefore produce
// bit-identical results.
//
// The map is FNV-1a over the coordinates followed by a splitmix64-style
// finalizer (the FNV lattice alone is too linear for seeds that differ in
// one trailing byte). Never returns 0, so a derived seed survives
// "0 means use default" checks unchanged.
func DeriveSeed(base uint64, workload, prefetcher string, point int) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) { h = (h ^ uint64(b)) * prime64 }
	for i := 0; i < 8; i++ {
		mix(byte(base >> (8 * i)))
	}
	for i := 0; i < len(workload); i++ {
		mix(workload[i])
	}
	mix(0)
	for i := 0; i < len(prefetcher); i++ {
		mix(prefetcher[i])
	}
	mix(0)
	for i := 0; i < 8; i++ {
		mix(byte(uint64(point) >> (8 * i)))
	}
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	if h == 0 {
		h = 1
	}
	return h
}

// contextConfigFor builds the configuration for a named context-prefetcher
// run, with the exploration seed derived from the run's coordinates. Named
// context variants share DefaultConfig parameters; only the bandit policy
// and the seed differ.
func contextConfigFor(name, workload string, base uint64) (core.Config, error) {
	cfg := core.DefaultConfig()
	if name != "context" {
		pol, err := core.ParsePolicy(strings.TrimPrefix(name, "context-"))
		if err != nil {
			return core.Config{}, err
		}
		cfg.Policy = pol
	}
	cfg.Seed = DeriveSeed(base, workload, name, 0)
	return cfg, nil
}

// isContextName reports whether a prefetcher name is a context variant
// (the only prefetchers with an RNG to seed).
func isContextName(name string) bool {
	return name == "context" || strings.HasPrefix(name, "context-")
}

// RunJobs executes a job matrix on the runner's worker pool and returns one
// JobResult per job, in submission order. Parallelism is bounded by
// Options.Parallelism; with Parallelism 1 the jobs run strictly in order,
// and the determinism contract (order-indexed results + coordinate-derived
// seeds + memoized named runs) guarantees the outputs are bit-identical to
// any parallel schedule of the same slice.
//
// Individual job failures land in their JobResult.Err and do not stop the
// batch (cancellation does, via the per-run harness). The returned error
// reports batch-level corruption only: a shared cached trace that changed
// checksum during the batch, meaning some run wrote to memory every other
// run was reading.
func (r *Runner) RunJobs(jobs []Job) ([]JobResult, error) {
	out := make([]JobResult, len(jobs))
	r.met.batchSubmitted(len(jobs))
	workers := cap(r.sem)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				out[i] = r.runJob(i, jobs[i])
				r.met.jobFinished(&out[i])
			}
		}()
	}
	wg.Wait()
	if err := r.traces.VerifyImmutable(); err != nil {
		return out, err
	}
	return out, nil
}

// runJob dispatches one job to the memoized or the parameterised path.
func (r *Runner) runJob(index int, job Job) JobResult {
	jr := JobResult{Job: job, Index: index}
	if job.Config == nil {
		jr.Result, jr.Err = r.Result(job.Workload, job.Prefetcher)
		return jr
	}
	jr.Result, jr.Prefetcher, jr.Err = r.runConfig(job)
	return jr
}

// runConfig runs one parameterised context-prefetcher job: fresh
// prefetcher, derived seed, pooled scratch, no memoization. Telemetry and
// artifact persistence are intentionally not applied here — sweep points
// are throwaway measurements, and the artifact namespace is keyed by
// (workload, prefetcher name) which a sweep would collide all over.
func (r *Runner) runConfig(job Job) (*sim.Result, prefetch.Prefetcher, error) {
	ct := r.beginCell(job.Workload, job.Prefetcher, job.Point)
	tr, err := r.Trace(job.Workload)
	if err != nil {
		ct.finish(nil, err)
		return nil, nil, err
	}
	ct.decodeDone()
	cfg := *job.Config
	cfg.Seed = DeriveSeed(r.opts.Seed, job.Workload, job.Prefetcher, job.Point)
	pf, err := core.New(cfg)
	if err != nil {
		err = fmt.Errorf("exp: %s/%s[%d]: %w", job.Workload, job.Prefetcher, job.Point, err)
		ct.finish(nil, err)
		return nil, nil, err
	}
	ct.queueStart()
	select {
	case r.sem <- struct{}{}:
	case <-r.ctx.Done():
		err := fmt.Errorf("exp: %s/%s[%d]: %w", job.Workload, job.Prefetcher, job.Point, context.Cause(r.ctx))
		ct.finish(nil, err)
		return nil, nil, err
	}
	ct.queueDone()
	r.met.workerAcquired()
	defer func() {
		<-r.sem
		r.met.workerReleased()
	}()

	simCfg := r.opts.Sim
	simCfg.Pool = r.pool
	ct.installWarmup(&simCfg)
	res, err := harness.Run(r.ctx, tr, pf, simCfg, r.opts.Harness)
	ct.finish(res, err)
	if err != nil {
		return nil, nil, fmt.Errorf("exp: %s/%s[%d]: %w", job.Workload, job.Prefetcher, job.Point, err)
	}
	return res, pf, nil
}
