package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"semloc/internal/core"
	"semloc/internal/prefetch"
	"semloc/internal/sim"
)

// ArtifactSchema versions the per-run JSON artifact format. Schema 2 added
// the learner-health fields (outcome taxonomy, explore/exploit split,
// reward-sign mix, CST churn) to Metrics and the interval samples; schema 1
// artifacts still load (their learner fields read as zero), but the
// outcome count-match invariant is only asserted on schema >= 2, where the
// writer recorded it.
const ArtifactSchema = 2

// RunArtifact is the per-run JSON file the Runner writes into
// Options.OutDir: one self-contained record per (workload, prefetcher)
// pair holding the simulation result (including the telemetry series when
// enabled), the prefetcher's final counters, and the learned-state
// summary — so figure data and learning-curve data land in one artifact
// that cmd/inspect can render without re-simulating.
type RunArtifact struct {
	Schema     int     `json:"schema"`
	Workload   string  `json:"workload"`
	Prefetcher string  `json:"prefetcher"`
	Scale      float64 `json:"scale"`
	Seed       uint64  `json:"seed"`
	// Headline figures, duplicated out of Result for cheap scanning.
	IPC    float64 `json:"ipc"`
	L1MPKI float64 `json:"l1_mpki"`
	L2MPKI float64 `json:"l2_mpki"`
	// Result is the full simulation outcome; Result.Series carries the
	// telemetry time series when interval sampling was on.
	Result *sim.Result `json:"result"`
	// Metrics and TableStats capture the context prefetcher's final
	// counters and learned state (nil for other prefetchers).
	Metrics    *core.Metrics    `json:"metrics,omitempty"`
	TableStats *core.TableStats `json:"table_stats,omitempty"`
}

// Validate checks the invariants cmd/inspect and tests rely on.
func (a *RunArtifact) Validate() error {
	if a == nil {
		return fmt.Errorf("exp: nil artifact")
	}
	if a.Schema != 1 && a.Schema != ArtifactSchema {
		return fmt.Errorf("exp: artifact schema %d, want 1 or %d", a.Schema, ArtifactSchema)
	}
	if a.Workload == "" || a.Prefetcher == "" {
		return fmt.Errorf("exp: artifact missing run identity")
	}
	if a.Result == nil {
		return fmt.Errorf("exp: artifact %s/%s has no result", a.Workload, a.Prefetcher)
	}
	if a.Schema >= 2 && a.Metrics != nil {
		// The outcome taxonomy must balance: accurate + late + evicted +
		// useless == real prefetches + carried. Only schema >= 2 writers
		// recorded the taxonomy, so older artifacts are exempt.
		if err := a.Metrics.CheckOutcomes(); err != nil {
			return fmt.Errorf("exp: artifact %s/%s: %w", a.Workload, a.Prefetcher, err)
		}
	}
	if s := a.Result.Series; s != nil {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("exp: artifact %s/%s: %w", a.Workload, a.Prefetcher, err)
		}
	}
	return nil
}

// metricsSource and tableSource are the optional interfaces the artifact
// writer probes on a prefetcher (core.Prefetcher implements both).
type metricsSource interface{ Metrics() core.Metrics }
type tableSource interface{ Inspect() core.TableStats }

// newRunArtifact assembles the artifact for one completed run.
func newRunArtifact(res *sim.Result, pf prefetch.Prefetcher, opts Options) *RunArtifact {
	a := &RunArtifact{
		Schema:     ArtifactSchema,
		Workload:   res.Workload,
		Prefetcher: res.Prefetcher,
		Scale:      opts.Scale,
		Seed:       opts.Seed,
		IPC:        res.IPC(),
		L1MPKI:     res.L1MPKI(),
		L2MPKI:     res.L2MPKI(),
		Result:     res,
	}
	if ms, ok := pf.(metricsSource); ok {
		m := ms.Metrics()
		a.Metrics = &m
	}
	if ts, ok := pf.(tableSource); ok {
		st := ts.Inspect()
		a.TableStats = &st
	}
	return a
}

// runFileBase names the per-run artifact files: "<workload>__<prefetcher>"
// with path-hostile characters flattened.
func runFileBase(workload, prefetcher string) string {
	clean := func(s string) string {
		return strings.Map(func(r rune) rune {
			switch r {
			case '/', '\\', ':', ' ':
				return '-'
			}
			return r
		}, s)
	}
	return clean(workload) + "__" + clean(prefetcher)
}

// ArtifactPath returns where the Runner persists the run's JSON artifact.
func ArtifactPath(dir, workload, prefetcher string) string {
	return filepath.Join(dir, runFileBase(workload, prefetcher)+".json")
}

// DecisionsPath returns where the Runner persists the run's decision
// trace.
func DecisionsPath(dir, workload, prefetcher string) string {
	return filepath.Join(dir, runFileBase(workload, prefetcher)+".decisions.jsonl")
}

// WriteArtifact validates and persists the artifact, then re-reads and
// re-validates it (the same trust-but-verify contract cmd/bench applies
// to its reports).
func WriteArtifact(dir string, a *RunArtifact) (string, error) {
	if err := a.Validate(); err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("exp: artifact dir: %w", err)
	}
	path := ArtifactPath(dir, a.Workload, a.Prefetcher)
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return "", fmt.Errorf("exp: marshaling artifact %s: %w", path, err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", fmt.Errorf("exp: writing artifact: %w", err)
	}
	if _, err := LoadArtifact(path); err != nil {
		return "", fmt.Errorf("exp: artifact failed read-back: %w", err)
	}
	return path, nil
}

// LoadArtifact reads and validates a per-run artifact.
func LoadArtifact(path string) (*RunArtifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("exp: reading artifact: %w", err)
	}
	var a RunArtifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("exp: parsing artifact %s: %w", path, err)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &a, nil
}
