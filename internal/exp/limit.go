package exp

import (
	"fmt"
	"io"

	"semloc/internal/stats"
)

// limitWorkloads is the µbenchmark cross-section used for the limit study.
var limitWorkloads = []string{"list", "listsort", "bst", "maptest", "hashtest", "prim", "ssca_lds", "array"}

// RunLimit is a limit study beyond the paper's figures: it compares each
// prefetcher's speedup against an oracle with perfect future knowledge
// (one prefetch per access, issued a reward-window ahead), answering "how
// much of the achievable single-request prefetching benefit does the
// learned policy capture?" — the natural absolute scale for Figure 12's
// relative comparisons.
func RunLimit(r *Runner, w io.Writer) error {
	tb := stats.NewTable("Limit study: fraction of oracle speedup captured",
		"workload", "oracle", "context", "sms", "context capture", "sms capture")
	var ctxFracs, smsFracs []float64
	for _, wl := range limitWorkloads {
		if _, err := r.ResultsFor(wl, []string{"none", "oracle", "context", "sms"}); err != nil {
			return err
		}
		oracle, err := r.Speedup(wl, "oracle")
		if err != nil {
			return err
		}
		ctx, err := r.Speedup(wl, "context")
		if err != nil {
			return err
		}
		sms, err := r.Speedup(wl, "sms")
		if err != nil {
			return err
		}
		ctxFrac, smsFrac := capture(ctx, oracle), capture(sms, oracle)
		ctxFracs = append(ctxFracs, ctxFrac)
		smsFracs = append(smsFracs, smsFrac)
		tb.AddRow(wl, oracle, ctx, sms,
			fmt.Sprintf("%.0f%%", 100*ctxFrac), fmt.Sprintf("%.0f%%", 100*smsFrac))
	}
	tb.Render(w)
	fmt.Fprintf(w, "average capture of the oracle's gain: context %.0f%%, sms %.0f%%\n",
		100*stats.Mean(ctxFracs), 100*stats.Mean(smsFracs))
	return nil
}

// capture returns the fraction of the oracle's speedup gain achieved,
// clamped to [0, 2] — a prefetcher can exceed the single-request oracle
// by issuing several prefetches per access, but unbounded ratios (from a
// near-1.0 oracle) would swamp the average.
func capture(s, oracle float64) float64 {
	if oracle <= 1 {
		if s >= 1 {
			return 1
		}
		return 0
	}
	f := (s - 1) / (oracle - 1)
	if f < 0 {
		return 0
	}
	if f > 2 {
		return 2
	}
	return f
}
