package exp

import (
	"context"
	"sync"
	"testing"
	"time"

	"semloc/internal/harness"
	"semloc/internal/sim"
)

// TestRunnerMemoStress hammers the Runner's memoization from many
// goroutines with overlapping keys — concurrent Trace, Result and
// ResultsFor calls racing on cold and warm entries. It exists for the race
// detector (`make check` runs the suite under -race): the property checked
// here is that every caller lands on the same memoized instance, and the
// property -race checks is that they do so without data races.
func TestRunnerMemoStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	opts := DefaultOptions()
	opts.Scale = 0.02
	opts.Parallelism = 4
	r := NewRunner(opts)

	keys := [][2]string{
		{"list", "none"}, {"list", "sms"},
		{"array", "none"}, {"array", "context"},
	}
	const goroutines = 12
	got := make([]map[string]*sim.Result, goroutines)
	errs := make([]error, goroutines)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		got[g] = make(map[string]*sim.Result)
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for _, k := range keys {
				res, err := r.Result(k[0], k[1])
				if err != nil {
					errs[g] = err
					return
				}
				got[g][k[0]+"|"+k[1]] = res
			}
			// Overlap the per-pair calls with batch and trace lookups on
			// the same keys.
			if _, err := r.ResultsFor("list", []string{"none", "sms"}); err != nil {
				errs[g] = err
				return
			}
			if _, err := r.Trace("array"); err != nil {
				errs[g] = err
			}
		}()
	}
	close(start)
	wg.Wait()

	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		for key, res := range got[g] {
			if res != got[0][key] {
				t.Fatalf("goroutine %d received a different %s instance than goroutine 0", g, key)
			}
		}
	}
}

// TestRunnerCancellationStress cancels a runner while a crowd of callers
// races on overlapping keys: every call must return either a completed
// result or a cancellation, promptly, and cancellations must not be
// memoized (checked here via a fresh runner over the same shared cache
// type, and by the suite's -race run for the teardown itself).
func TestRunnerCancellationStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	ctx, cancel := context.WithCancel(context.Background())
	opts := DefaultOptions()
	opts.Scale = 0.02
	opts.Parallelism = 4
	r := NewRunnerContext(ctx, opts)

	const goroutines = 10
	errCh := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			wl := []string{"list", "array"}[g%2]
			pf := []string{"none", "sms", "context"}[g%3]
			if _, err := r.Result(wl, pf); err != nil {
				errCh <- err
			}
		}()
	}
	// Let some runs get in flight, then pull the plug.
	time.Sleep(5 * time.Millisecond)
	cancel()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if !harness.IsCancelled(err) {
			t.Errorf("non-cancellation error during cancelled stress run: %v", err)
		}
	}
}

// TestAbandonedGenerationMemoized pins the abandoned-goroutine contract:
// when a caller is cancelled mid-generation, the generator goroutine keeps
// running and must still land its trace in the shared cache, so later
// callers get the trace instead of regenerating it.
func TestAbandonedGenerationMemoized(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	opts := DefaultOptions()
	opts.Scale = 0.02
	r := NewRunnerContext(ctx, opts)
	r.traces.genHook = func(string) { cancel() } // cancel the instant generation starts

	if _, err := r.Trace("list"); err == nil || !harness.IsCancelled(err) {
		t.Fatalf("Trace under mid-generation cancel: err=%v, want cancellation", err)
	}
	// The abandoned generator finishes on its own schedule; the cache must
	// eventually serve its trace (the cancelled ctx is irrelevant to a
	// cache hit).
	deadline := time.Now().Add(10 * time.Second)
	for {
		if tr, err := r.Trace("list"); err == nil {
			if tr == nil {
				t.Fatal("memoized trace is nil")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("abandoned generation never landed in the trace cache")
		}
		time.Sleep(time.Millisecond)
	}
}
