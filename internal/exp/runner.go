package exp

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"

	"semloc/internal/harness"
	"semloc/internal/obs"
	"semloc/internal/prefetch"
	"semloc/internal/sim"
	"semloc/internal/trace"
	"semloc/internal/workloads"
)

// Options configures an experiment run.
type Options struct {
	// Scale is the workload scale factor (1 = standard size).
	Scale float64
	// Seed drives the workload generators and, via DeriveSeed, each run's
	// exploration RNG.
	Seed uint64
	// Sim is the machine configuration (defaults to Table 2).
	Sim sim.Config
	// Parallelism bounds concurrent simulations (defaults to GOMAXPROCS).
	Parallelism int
	// Harness bounds each simulation run (watchdog, cancellation grace).
	// The zero value disables the watchdog; panic containment is always on.
	Harness harness.RunConfig
	// Telemetry enables interval sampling and decision tracing for every
	// run. Its DecisionSink is ignored: the Runner manages one sink per
	// run (a .decisions.jsonl file under OutDir). The zero value keeps
	// every run on the telemetry-free fast path.
	Telemetry obs.Config
	// OutDir, when non-empty, persists one JSON artifact per completed run
	// (result + final metrics + learned-state summary + telemetry series;
	// see RunArtifact), plus a decision trace when Telemetry.DecisionRate
	// is set. The directory is created on first use.
	OutDir string
	// Traces, when non-nil, shares an already-populated trace cache with
	// this runner (cmd/bench decodes each trace once and reuses it across
	// its warm-up and timed runners this way). The cache's generation
	// parameters must match Scale and Seed; a mismatched cache is ignored
	// and the runner builds a private one, since silently reusing traces
	// generated under different parameters would corrupt every result.
	Traces *TraceCache
	// Metrics, when non-nil, receives the live batch counters the commands
	// expose over -listen and feed to the progress reporter: cells
	// submitted/done/failed, queue-wait and run-time histograms, and
	// last-completed-cell gauges (see the obs.Metric*/obs.Gauge* names).
	// Updates happen at cell granularity — never on the per-access hot
	// path — and a nil registry keeps the engine metric-free.
	Metrics *obs.Registry
	// Spans, when non-nil, records one span per executed simulation (with
	// decode / queue-wait / warmup / measured phase timings) and per trace
	// generation, exportable as Chrome trace-event JSON. Nil disables
	// tracing at zero cost.
	Spans *obs.SpanRecorder
}

// DefaultOptions returns the standard experiment setup.
func DefaultOptions() Options {
	return Options{Scale: 1, Seed: 1, Sim: sim.DefaultConfig()}
}

// Runner runs (workload, prefetcher) simulations, memoizing both generated
// traces and results so different figures share work. Every run executes
// under the harness: a panicking or stalled (workload, prefetcher) pair
// fails its own run without taking down the sweep, and cancelling the
// runner's context stops in-flight simulations promptly.
//
// Traces live in a TraceCache (shared read-only across all concurrent
// runs); per-run mutable scratch is recycled through a sim.RunPool, so a
// long experiment matrix reaches a steady state where simulations stop
// allocating cache hierarchies. RunJobs is the batch entry point with the
// full determinism contract; Result/ResultsFor remain the memoized
// per-pair API.
type Runner struct {
	opts   Options
	ctx    context.Context
	traces *TraceCache
	pool   *sim.RunPool
	met    *runMetrics
	lm     *obs.LearnerMetrics
	spans  *obs.SpanRecorder

	mu      sync.Mutex
	results map[string]*sim.Result
	errs    map[string]error
	inFly   map[string]*sync.WaitGroup
	sem     chan struct{}
}

// NewRunner creates a runner with a background context.
func NewRunner(opts Options) *Runner {
	return NewRunnerContext(context.Background(), opts)
}

// NewRunnerContext creates a runner whose simulations abort when ctx is
// cancelled.
func NewRunnerContext(ctx context.Context, opts Options) *Runner {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Sim.CPU.Width == 0 {
		opts.Sim = sim.DefaultConfig()
	}
	p := opts.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	tc := opts.Traces
	if tc != nil {
		if s, sd := tc.Params(); s != opts.Scale || sd != opts.Seed {
			tc = nil
		}
	}
	if tc == nil {
		tc = NewTraceCache(opts.Scale, opts.Seed)
	}
	if opts.Spans != nil {
		tc.SetSpans(opts.Spans)
	}
	// Learner-health instruments only register when an interval-sampled
	// run will actually feed them: a metric-carrying but telemetry-free
	// sweep keeps its /metrics surface unchanged.
	var lm *obs.LearnerMetrics
	if opts.Telemetry.Interval > 0 {
		lm = obs.NewLearnerMetrics(opts.Metrics)
	}
	return &Runner{
		opts:    opts,
		ctx:     ctx,
		traces:  tc,
		pool:    sim.NewRunPool(),
		met:     newRunMetrics(opts.Metrics),
		lm:      lm,
		spans:   opts.Spans,
		results: make(map[string]*sim.Result),
		errs:    make(map[string]error),
		inFly:   make(map[string]*sync.WaitGroup),
		sem:     make(chan struct{}, p),
	}
}

// Options returns the runner's options.
func (r *Runner) Options() Options { return r.opts }

// Traces returns the runner's trace cache (shared or private); pass it to
// another runner's Options.Traces to reuse the decoded traces.
func (r *Runner) Traces() *TraceCache { return r.traces }

// Trace returns the (cached) generated trace for a workload; see
// TraceCache.Get for the single-flight and supervision contract.
func (r *Runner) Trace(workload string) (*trace.Trace, error) {
	return r.traces.Get(r.ctx, workload)
}

// Result runs (or returns the cached result of) workload under prefetcher.
func (r *Runner) Result(workload, prefetcher string) (*sim.Result, error) {
	key := workload + "|" + prefetcher

	r.mu.Lock()
	for {
		if res, ok := r.results[key]; ok {
			r.mu.Unlock()
			return res, nil
		}
		if err, ok := r.errs[key]; ok {
			r.mu.Unlock()
			return nil, err
		}
		wg, running := r.inFly[key]
		if !running {
			break
		}
		r.mu.Unlock()
		wg.Wait()
		r.mu.Lock()
	}
	wg := &sync.WaitGroup{}
	wg.Add(1)
	r.inFly[key] = wg
	r.mu.Unlock()

	res, err := r.run(workload, prefetcher)

	r.mu.Lock()
	switch {
	case err == nil:
		r.results[key] = res
	case harness.IsCancelled(err):
		// Cancellation is a property of this attempt, not of the
		// (workload, prefetcher) pair: don't memoize it.
	default:
		r.errs[key] = err
	}
	delete(r.inFly, key)
	r.mu.Unlock()
	wg.Done()
	return res, err
}

// newPrefetcher builds the prefetcher for a named run. Context variants
// get their exploration seed derived from (base seed, workload, name), so
// every named run's random stream is a pure function of its coordinates —
// the same property parameterised RunJobs runs have.
func (r *Runner) newPrefetcher(workload, prefetcher string, tr *trace.Trace) (prefetch.Prefetcher, error) {
	switch {
	case prefetcher == "oracle":
		// The limit-study oracle needs the trace itself.
		return prefetch.NewOracle(tr, 0), nil
	case isContextName(prefetcher):
		cfg, err := contextConfigFor(prefetcher, workload, r.opts.Seed)
		if err != nil {
			return nil, err
		}
		return NewContext(cfg)
	default:
		return NewPrefetcher(prefetcher)
	}
}

func (r *Runner) run(workload, prefetcher string) (*sim.Result, error) {
	ct := r.beginCell(workload, prefetcher, 0)
	tr, err := r.Trace(workload)
	if err != nil {
		ct.finish(nil, err)
		return nil, err
	}
	ct.decodeDone()
	pf, err := r.newPrefetcher(workload, prefetcher, tr)
	if err != nil {
		ct.finish(nil, err)
		return nil, err
	}
	ct.queueStart()
	select {
	case r.sem <- struct{}{}:
	case <-r.ctx.Done():
		err := fmt.Errorf("exp: %s/%s: %w", workload, prefetcher, context.Cause(r.ctx))
		ct.finish(nil, err)
		return nil, err
	}
	ct.queueDone()
	r.met.workerAcquired()
	defer func() {
		<-r.sem
		r.met.workerReleased()
	}()

	simCfg := r.opts.Sim
	simCfg.Pool = r.pool
	ct.installWarmup(&simCfg)
	var decFile *os.File
	if r.opts.Telemetry.Interval > 0 || r.opts.Telemetry.DecisionRate > 0 {
		simCfg.Obs = r.opts.Telemetry
		simCfg.Obs.DecisionSink = nil
		// Live learner-health gauges are last-writer-wins across parallel
		// cells (counters sum), exactly like the cell-level run metrics.
		simCfg.Obs.Learner = r.lm
		// Only instrumented prefetchers emit decision events; skip the file
		// for the rest so the artifact dir isn't littered with empty traces.
		_, instrumented := pf.(obs.Attachable)
		if r.opts.OutDir != "" && r.opts.Telemetry.DecisionRate > 0 && instrumented {
			if err := os.MkdirAll(r.opts.OutDir, 0o755); err != nil {
				return nil, fmt.Errorf("exp: %s/%s: telemetry dir: %w", workload, prefetcher, err)
			}
			decFile, err = os.Create(DecisionsPath(r.opts.OutDir, workload, prefetcher))
			if err != nil {
				return nil, fmt.Errorf("exp: %s/%s: decision trace: %w", workload, prefetcher, err)
			}
			defer decFile.Close()
			simCfg.Obs.DecisionSink = decFile
		}
	}

	res, err := harness.Run(r.ctx, tr, pf, simCfg, r.opts.Harness)
	ct.finish(res, err)
	if err != nil {
		return nil, fmt.Errorf("exp: %s/%s: %w", workload, prefetcher, err)
	}
	if decFile != nil {
		if err := decFile.Close(); err != nil {
			return nil, fmt.Errorf("exp: %s/%s: decision trace: %w", workload, prefetcher, err)
		}
	}
	if r.opts.OutDir != "" {
		if _, err := WriteArtifact(r.opts.OutDir, newRunArtifact(res, pf, r.opts)); err != nil {
			return nil, fmt.Errorf("exp: %s/%s: %w", workload, prefetcher, err)
		}
	}
	return res, nil
}

// ResultsFor runs every listed prefetcher on the workload concurrently and
// returns results indexed by prefetcher name. When several runs fail,
// their errors are joined so a multi-workload failure report names every
// failing pair, not just the first off the channel.
func (r *Runner) ResultsFor(workload string, prefetchers []string) (map[string]*sim.Result, error) {
	out := make(map[string]*sim.Result, len(prefetchers))
	errCh := make(chan error, len(prefetchers))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, pn := range prefetchers {
		pn := pn
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := r.Result(workload, pn)
			if err != nil {
				errCh <- err
				return
			}
			mu.Lock()
			out[pn] = res
			mu.Unlock()
		}()
	}
	wg.Wait()
	close(errCh)
	var errs []error
	for err := range errCh {
		errs = append(errs, err)
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return out, nil
}

// Speedup returns the IPC ratio of prefetcher over the no-prefetch
// baseline for the workload.
func (r *Runner) Speedup(workload, prefetcher string) (float64, error) {
	base, err := r.Result(workload, "none")
	if err != nil {
		return 0, err
	}
	res, err := r.Result(workload, prefetcher)
	if err != nil {
		return 0, err
	}
	if base.IPC() == 0 {
		return 0, fmt.Errorf("exp: %s baseline IPC is zero", workload)
	}
	return res.IPC() / base.IPC(), nil
}

// AllWorkloads lists every Table 3 workload name.
func AllWorkloads() []string { return workloads.Names() }

// SPECWorkloads lists the SPEC2006 subset.
func SPECWorkloads() []string {
	var out []string
	for _, w := range workloads.Suite("spec2006") {
		out = append(out, w.Name)
	}
	return out
}

// MicroWorkloads lists the µbenchmark subset.
func MicroWorkloads() []string {
	var out []string
	for _, w := range workloads.Suite("micro") {
		out = append(out, w.Name)
	}
	return out
}
