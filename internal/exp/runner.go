package exp

import (
	"fmt"
	"runtime"
	"sync"

	"semloc/internal/prefetch"
	"semloc/internal/sim"
	"semloc/internal/trace"
	"semloc/internal/workloads"
)

// Options configures an experiment run.
type Options struct {
	// Scale is the workload scale factor (1 = standard size).
	Scale float64
	// Seed drives the workload generators.
	Seed uint64
	// Sim is the machine configuration (defaults to Table 2).
	Sim sim.Config
	// Parallelism bounds concurrent simulations (defaults to GOMAXPROCS).
	Parallelism int
}

// DefaultOptions returns the standard experiment setup.
func DefaultOptions() Options {
	return Options{Scale: 1, Seed: 1, Sim: sim.DefaultConfig()}
}

// Runner runs (workload, prefetcher) simulations, memoizing both generated
// traces and results so different figures share work.
type Runner struct {
	opts Options

	mu      sync.Mutex
	traces  map[string]*trace.Trace
	results map[string]*sim.Result
	errs    map[string]error
	inFly   map[string]*sync.WaitGroup
	sem     chan struct{}
}

// NewRunner creates a runner.
func NewRunner(opts Options) *Runner {
	if opts.Scale <= 0 {
		opts.Scale = 1
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Sim.CPU.Width == 0 {
		opts.Sim = sim.DefaultConfig()
	}
	p := opts.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		opts:    opts,
		traces:  make(map[string]*trace.Trace),
		results: make(map[string]*sim.Result),
		errs:    make(map[string]error),
		inFly:   make(map[string]*sync.WaitGroup),
		sem:     make(chan struct{}, p),
	}
}

// Options returns the runner's options.
func (r *Runner) Options() Options { return r.opts }

// Trace returns the (cached) generated trace for a workload.
func (r *Runner) Trace(workload string) (*trace.Trace, error) {
	r.mu.Lock()
	if tr, ok := r.traces[workload]; ok {
		r.mu.Unlock()
		return tr, nil
	}
	r.mu.Unlock()
	w, err := workloads.ByName(workload)
	if err != nil {
		return nil, err
	}
	tr := w.Generate(workloads.GenConfig{Scale: r.opts.Scale, Seed: r.opts.Seed})
	r.mu.Lock()
	// Another goroutine may have generated it meanwhile; keep the first.
	if existing, ok := r.traces[workload]; ok {
		tr = existing
	} else {
		r.traces[workload] = tr
	}
	r.mu.Unlock()
	return tr, nil
}

// Result runs (or returns the cached result of) workload under prefetcher.
func (r *Runner) Result(workload, prefetcher string) (*sim.Result, error) {
	key := workload + "|" + prefetcher

	r.mu.Lock()
	for {
		if res, ok := r.results[key]; ok {
			r.mu.Unlock()
			return res, nil
		}
		if err, ok := r.errs[key]; ok {
			r.mu.Unlock()
			return nil, err
		}
		wg, running := r.inFly[key]
		if !running {
			break
		}
		r.mu.Unlock()
		wg.Wait()
		r.mu.Lock()
	}
	wg := &sync.WaitGroup{}
	wg.Add(1)
	r.inFly[key] = wg
	r.mu.Unlock()

	res, err := r.run(workload, prefetcher)

	r.mu.Lock()
	if err != nil {
		r.errs[key] = err
	} else {
		r.results[key] = res
	}
	delete(r.inFly, key)
	r.mu.Unlock()
	wg.Done()
	return res, err
}

func (r *Runner) run(workload, prefetcher string) (*sim.Result, error) {
	tr, err := r.Trace(workload)
	if err != nil {
		return nil, err
	}
	var pf prefetch.Prefetcher
	if prefetcher == "oracle" {
		// The limit-study oracle needs the trace itself.
		pf = prefetch.NewOracle(tr, 0)
	} else {
		pf, err = NewPrefetcher(prefetcher)
		if err != nil {
			return nil, err
		}
	}
	r.sem <- struct{}{}
	defer func() { <-r.sem }()
	res, err := sim.Run(tr, pf, r.opts.Sim)
	if err != nil {
		return nil, fmt.Errorf("exp: %s/%s: %w", workload, prefetcher, err)
	}
	return res, nil
}

// ResultsFor runs every listed prefetcher on the workload concurrently and
// returns results indexed by prefetcher name.
func (r *Runner) ResultsFor(workload string, prefetchers []string) (map[string]*sim.Result, error) {
	out := make(map[string]*sim.Result, len(prefetchers))
	errCh := make(chan error, len(prefetchers))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, pn := range prefetchers {
		pn := pn
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := r.Result(workload, pn)
			if err != nil {
				errCh <- err
				return
			}
			mu.Lock()
			out[pn] = res
			mu.Unlock()
		}()
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		return nil, err
	}
	return out, nil
}

// Speedup returns the IPC ratio of prefetcher over the no-prefetch
// baseline for the workload.
func (r *Runner) Speedup(workload, prefetcher string) (float64, error) {
	base, err := r.Result(workload, "none")
	if err != nil {
		return 0, err
	}
	res, err := r.Result(workload, prefetcher)
	if err != nil {
		return 0, err
	}
	if base.IPC() == 0 {
		return 0, fmt.Errorf("exp: %s baseline IPC is zero", workload)
	}
	return res.IPC() / base.IPC(), nil
}

// AllWorkloads lists every Table 3 workload name.
func AllWorkloads() []string { return workloads.Names() }

// SPECWorkloads lists the SPEC2006 subset.
func SPECWorkloads() []string {
	var out []string
	for _, w := range workloads.Suite("spec2006") {
		out = append(out, w.Name)
	}
	return out
}

// MicroWorkloads lists the µbenchmark subset.
func MicroWorkloads() []string {
	var out []string
	for _, w := range workloads.Suite("micro") {
		out = append(out, w.Name)
	}
	return out
}
