package exp

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"semloc/internal/obs"
)

// learnerRunner builds a tiny-scale runner with interval sampling and a
// live registry attached, so the learner-health bridge (Runner.lm) is
// wired for every cell.
func learnerRunner(par int, reg *obs.Registry) *Runner {
	opts := DefaultOptions()
	opts.Scale = 0.02
	opts.Parallelism = par
	opts.Metrics = reg
	opts.Telemetry = obs.Config{Interval: 1024}
	return NewRunner(opts)
}

// TestRunJobsLearnerObsMatchesDisabled pins the learner-introspection
// no-perturbation contract (DESIGN.md §18): wiring interval sampling plus
// the learner-health registry bridge must not change a single simulation
// result. Instrumented runs additionally carry a Series; everything else —
// timing, cache stats, categories, hit depths — must be bit-identical,
// which transitively pins decisions, rewards, and RNG consumption.
func TestRunJobsLearnerObsMatchesDisabled(t *testing.T) {
	plain, err1 := engineRunner(4).RunJobs(engineJobs())
	reg := obs.NewRegistry()
	instr, err2 := learnerRunner(4, reg).RunJobs(engineJobs())
	if err1 != nil || err2 != nil {
		t.Fatalf("RunJobs errors: plain=%v instrumented=%v", err1, err2)
	}
	for i := range plain {
		if (plain[i].Err == nil) != (instr[i].Err == nil) {
			t.Fatalf("job %d: error mismatch with learner obs enabled", i)
		}
		if plain[i].Err != nil {
			continue
		}
		// Parameterised sweep points intentionally skip telemetry (see
		// runConfig); named jobs must carry a series and match modulo it.
		got := *instr[i].Result
		if instr[i].Job.Config == nil {
			if got.Series == nil {
				t.Fatalf("job %d: interval sampling enabled but no series", i)
			}
			got.Series = nil
		}
		if !reflect.DeepEqual(plain[i].Result, &got) {
			t.Errorf("job %d (%s/%s[%d]): result changed when learner introspection was enabled",
				i, plain[i].Job.Workload, plain[i].Job.Prefetcher, plain[i].Job.Point)
		}
	}
	// The bridge must have actually published: the context prefetcher learns
	// on these workloads, so the cumulative outcome counters cannot all be
	// zero, and the CST gauges must show learned state.
	accurate := reg.Counter(obs.MetricLearnerAccurate, "").Value()
	explores := reg.Counter(obs.MetricLearnerExplores, "").Value()
	if accurate == 0 && explores == 0 {
		t.Error("learner-health counters stayed zero across an instrumented batch")
	}
	if reg.Gauge(obs.GaugeLearnerCSTEntries, "").Value() <= 0 {
		t.Error("learner_cst_entries gauge never published")
	}
	if reg.Histogram(obs.HistLearnerQueueHitRate, "", nil).Count() == 0 {
		t.Error("queue-hit-rate histogram observed nothing")
	}
}

// TestRunnerNoLearnerMetricsWithoutTelemetry: a registry-carrying but
// telemetry-free sweep must keep its /metrics surface unchanged — the
// learner instruments only register when interval sampling will feed them.
func TestRunnerNoLearnerMetricsWithoutTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	r := obsRunner(2, reg, nil)
	if r.lm != nil {
		t.Fatal("learner metrics bridge created without interval sampling")
	}
	if _, err := r.RunJobs(engineJobs()[:2]); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "learner_") {
		t.Fatalf("learner metrics registered on a telemetry-free runner:\n%s", buf.String())
	}
}
