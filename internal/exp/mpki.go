package exp

import (
	"fmt"
	"io"

	"semloc/internal/sim"
	"semloc/internal/stats"
)

// RunFig10 regenerates Figure 10: L1 misses per kilo-instruction for every
// prefetcher, showing (as the paper does) the memory-intensive workloads
// with baseline L1 MPKI > 5, plus the average over all workloads.
func RunFig10(r *Runner, w io.Writer) error {
	return runMPKI(r, w, "Figure 10: L1 MPKI", 5,
		func(res *sim.Result) float64 { return res.L1MPKI() })
}

// RunFig11 regenerates Figure 11: L2 misses per kilo-instruction, showing
// workloads with baseline L2 MPKI > 1 plus the average over all workloads.
func RunFig11(r *Runner, w io.Writer) error {
	return runMPKI(r, w, "Figure 11: L2 MPKI", 1,
		func(res *sim.Result) float64 { return res.L2MPKI() })
}

func runMPKI(r *Runner, w io.Writer, title string, minBaseline float64, metric func(*sim.Result) float64) error {
	headers := append([]string{"workload"}, FigurePrefetchers...)
	tb := stats.NewTable(title, headers...)
	sums := make(map[string]float64, len(FigurePrefetchers))
	count := 0
	for _, wl := range AllWorkloads() {
		results, err := r.ResultsFor(wl, FigurePrefetchers)
		if err != nil {
			return err
		}
		count++
		for _, pn := range FigurePrefetchers {
			sums[pn] += metric(results[pn])
		}
		if metric(results["none"]) <= minBaseline {
			continue // the paper plots only memory-intensive workloads
		}
		cells := make([]interface{}, len(headers))
		cells[0] = wl
		for i, pn := range FigurePrefetchers {
			cells[i+1] = metric(results[pn])
		}
		tb.AddRow(cells...)
	}
	cells := make([]interface{}, len(headers))
	cells[0] = "AVERAGE (all)"
	for i, pn := range FigurePrefetchers {
		cells[i+1] = sums[pn] / float64(count)
	}
	tb.AddRow(cells...)
	tb.Render(w)

	base := sums["none"] / float64(count)
	ctx := sums["context"] / float64(count)
	if ctx > 0 {
		fmt.Fprintf(w, "context prefetcher reduces the average by %.2fx vs no prefetching\n", base/ctx)
	}
	if sms := sums["sms"] / float64(count); sms > 0 && ctx > 0 {
		fmt.Fprintf(w, "context vs SMS average ratio: %.2fx\n", sms/ctx)
	}
	return nil
}
