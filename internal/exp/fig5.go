package exp

import (
	"io"

	"semloc/internal/core"
	"semloc/internal/stats"
)

// RunFig5 prints the reward function (Figure 5): the bell-shaped score
// adjustment as a function of the prefetch-to-demand distance, for both
// this substrate's calibrated window and the paper's gem5-derived window.
func RunFig5(r *Runner, w io.Writer) error {
	ours := core.DefaultRewardConfig()
	paper := core.RewardConfig{Low: 18, High: 50, Peak: 16, Penalty: 4}
	tb := stats.NewTable("Figure 5: reward vs prefetch distance (accesses)", "depth", "reward (this substrate)", "reward (paper window 18-50)")
	for d := 0; d <= 80; d += 2 {
		tb.AddRow(d, int(ours.Reward(d)), int(paper.Reward(d)))
	}
	tb.Render(w)
	return nil
}
