package exp

import (
	"os"
	"path/filepath"
	"testing"
)

func writeConfig(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cfg.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadConfigDefaults(t *testing.T) {
	fc, err := LoadConfig(writeConfig(t, `{}`))
	if err != nil {
		t.Fatal(err)
	}
	if fc.SimConfig().Cache.DRAMLatency != 300 {
		t.Error("empty config should yield Table 2 defaults")
	}
	if fc.ContextConfig().CSTEntries != 2048 {
		t.Error("empty config should yield default prefetcher")
	}
}

func TestLoadConfigPartialOverride(t *testing.T) {
	fc, err := LoadConfig(writeConfig(t, `{
		"sim": {"Cache": {"DRAMLatency": 200}},
		"context": {"MaxDegree": 2, "Epsilon": 0.1}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	mc := fc.SimConfig()
	if mc.Cache.DRAMLatency != 200 {
		t.Errorf("DRAMLatency = %d, want 200", mc.Cache.DRAMLatency)
	}
	if mc.Cache.L1.Size != 64<<10 {
		t.Error("unspecified fields should keep defaults")
	}
	cc := fc.ContextConfig()
	if cc.MaxDegree != 2 || cc.Epsilon != 0.1 {
		t.Errorf("context overrides lost: %+v", cc)
	}
	if cc.CSTEntries != 2048 {
		t.Error("unspecified context fields should keep defaults")
	}
}

func TestLoadConfigRejectsUnknownFields(t *testing.T) {
	if _, err := LoadConfig(writeConfig(t, `{"smi": {}}`)); err == nil {
		t.Error("expected error for unknown top-level field")
	}
}

func TestLoadConfigRejectsInvalidValues(t *testing.T) {
	if _, err := LoadConfig(writeConfig(t, `{"context": {"CSTEntries": 1000}}`)); err == nil {
		t.Error("expected validation error for non-power-of-two CST")
	}
	if _, err := LoadConfig(writeConfig(t, `{"sim": {"Cache": {"L1": {"Name":"x","Size": 100, "Ways": 3, "MSHRs": 1, "Latency": 1}}}}`)); err == nil {
		t.Error("expected validation error for bad cache geometry")
	}
}

func TestLoadConfigMissingFile(t *testing.T) {
	if _, err := LoadConfig("/does/not/exist.json"); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestLoadConfigBadJSON(t *testing.T) {
	if _, err := LoadConfig(writeConfig(t, `{not json`)); err == nil {
		t.Error("expected parse error")
	}
}

func TestNilFileConfig(t *testing.T) {
	var fc *FileConfig
	if fc.SimConfig().CPU.Width != 4 {
		t.Error("nil FileConfig should yield defaults")
	}
	if fc.ContextConfig().QueueDepth != 128 {
		t.Error("nil FileConfig should yield default prefetcher")
	}
}
