package exp

import (
	"io"

	"semloc/internal/stats"
)

// fig9Workloads is the benchmark set shown in Figure 9 (a representative
// cross-section of regular and irregular workloads).
var fig9Workloads = []string{
	"graph500", "graph500-list", "prim", "ssca_lds",
	"array", "list", "listsort", "bst",
	"h264ref", "lbm", "namd", "omnetpp", "sphinx3", "mcf", "libquantum",
}

// RunFig9 regenerates Figure 9: for each workload and prefetcher, the
// fraction of demand accesses in each benefit category. "Prefetch never
// hit" counts wasted prefetches on top of the demand accesses, so columns
// can sum past 1.0, exactly as the paper's bars pass the 100% mark.
func RunFig9(r *Runner, w io.Writer) error {
	tb := stats.NewTable("Figure 9: accuracy and timeliness",
		"workload", "prefetcher", "hit-prefetched", "shorter-wait", "non-timely",
		"miss-not-prefetched", "hit-older-demand", "prefetch-never-hit")
	for _, wl := range fig9Workloads {
		results, err := r.ResultsFor(wl, FigurePrefetchers)
		if err != nil {
			return err
		}
		for _, pn := range FigurePrefetchers {
			res := results[pn]
			c := res.Categories
			d := float64(c.Demand)
			if d == 0 {
				d = 1
			}
			tb.AddRow(wl, pn,
				float64(c.HitPrefetched)/d, float64(c.ShorterWait)/d,
				float64(c.NonTimely)/d, float64(c.MissNotPrefetched)/d,
				float64(c.HitOlderDemand)/d, float64(c.PrefetchNeverHit)/d)
		}
	}
	tb.Render(w)
	return nil
}
