package exp

import (
	"context"
	"fmt"
	"sync"

	"semloc/internal/harness"
	"semloc/internal/obs"
	"semloc/internal/trace"
	"semloc/internal/workloads"
)

// TraceCache is the shared, immutable decoded-trace store behind the
// parallel experiment engine: each workload's trace is generated exactly
// once (single-flight, even under concurrent callers) and then shared
// read-only by every simulation that replays it. Because N concurrent
// runs all read the same *trace.Trace, a single stray write would corrupt
// every sibling run silently — so the cache records a checksum the moment
// a trace lands and VerifyImmutable re-hashes the store after a batch of
// runs, turning mutation into a loud failure.
//
// A TraceCache can be shared between Runners (Options.Traces): cmd/bench
// uses this to decode traces once for its parallel warm-up runner and its
// sequential timed runner. Generation parameters (scale, seed) are fixed
// at construction, so every sharer sees identical bytes.
type TraceCache struct {
	scale float64
	seed  uint64

	mu     sync.Mutex
	traces map[string]*trace.Trace
	sums   map[string]uint64
	errs   map[string]error
	inFly  map[string]*sync.WaitGroup

	// genHook, when set, observes each actual generator invocation (tests
	// use it to assert single-flight).
	genHook func(workload string)

	// spans, when set, records one obs.CatTrace span per actual generator
	// invocation. Guarded by mu for installation; the recorder itself is
	// safe for concurrent use.
	spans *obs.SpanRecorder
}

// NewTraceCache builds an empty cache generating workloads at the given
// scale and seed.
func NewTraceCache(scale float64, seed uint64) *TraceCache {
	if scale <= 0 {
		scale = 1
	}
	if seed == 0 {
		seed = 1
	}
	return &TraceCache{
		scale:  scale,
		seed:   seed,
		traces: make(map[string]*trace.Trace),
		sums:   make(map[string]uint64),
		errs:   make(map[string]error),
		inFly:  make(map[string]*sync.WaitGroup),
	}
}

// Params returns the generation scale and seed the cache was built with.
func (c *TraceCache) Params() (scale float64, seed uint64) { return c.scale, c.seed }

// SetSpans attaches a span recorder: each actual trace generation (not cache
// hits) is recorded as an obs.CatTrace span. Safe to call before any Get;
// installing a recorder mid-batch only affects generations that start later.
func (c *TraceCache) SetSpans(rec *obs.SpanRecorder) {
	c.mu.Lock()
	c.spans = rec
	c.mu.Unlock()
}

// spanRecorder returns the installed recorder (nil-safe to use directly).
func (c *TraceCache) spanRecorder() *obs.SpanRecorder {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.spans
}

// Get returns the (cached) generated trace for a workload. Generation runs
// under supervision: a panicking generator (e.g. heap exhaustion on an
// oversized scale) fails only this workload, and cancelling ctx returns
// promptly even mid-generation (the generator goroutine is abandoned; its
// result is still memoized if it finishes). Concurrent callers share one
// generation — without the single-flight, every figure touching a workload
// first would generate its trace redundantly (and large-scale generations
// would multiply peak heap by the caller count). Failed generations are
// memoized like failed results; cancellations are not.
func (c *TraceCache) Get(ctx context.Context, workload string) (*trace.Trace, error) {
	c.mu.Lock()
	for {
		if tr, ok := c.traces[workload]; ok {
			c.mu.Unlock()
			return tr, nil
		}
		if err, ok := c.errs[workload]; ok {
			c.mu.Unlock()
			return nil, err
		}
		wg, running := c.inFly[workload]
		if !running {
			break
		}
		c.mu.Unlock()
		wg.Wait()
		c.mu.Lock()
	}
	wg := &sync.WaitGroup{}
	wg.Add(1)
	c.inFly[workload] = wg
	c.mu.Unlock()

	tr, err := c.generate(ctx, workload)

	c.mu.Lock()
	switch {
	case err == nil:
		// generate's goroutine memoized the trace already (it must, so an
		// abandoned generation still lands); nothing more to store.
	case harness.IsCancelled(err):
		// Cancellation is a property of this attempt, not of the workload:
		// don't memoize it.
	default:
		c.errs[workload] = err
	}
	delete(c.inFly, workload)
	c.mu.Unlock()
	wg.Done()
	return tr, err
}

// generate produces the workload's trace under supervision. The generator
// runs in its own goroutine so cancellation returns promptly; the goroutine
// memoizes into c.traces itself so an abandoned generation is kept if it
// eventually finishes.
func (c *TraceCache) generate(ctx context.Context, workload string) (*trace.Trace, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("exp: generating %s: %w", workload, context.Cause(ctx))
	}
	w, err := workloads.ByName(workload)
	if err != nil {
		return nil, err
	}
	if c.genHook != nil {
		c.genHook(workload)
	}
	done := make(chan error, 1)
	var tr *trace.Trace
	rec := c.spanRecorder()
	go func() {
		done <- harness.Safely(func() error {
			start := rec.Now()
			gen := w.Generate(workloads.GenConfig{Scale: c.scale, Seed: c.seed})
			rec.Add(obs.Span{Cat: obs.CatTrace, Workload: workload, Start: start, Dur: rec.Now() - start})
			c.mu.Lock()
			// An abandoned earlier generation may have landed meanwhile;
			// keep the first (and its checksum).
			if existing, ok := c.traces[workload]; ok {
				gen = existing
			} else {
				c.traces[workload] = gen
				c.sums[workload] = gen.Checksum()
			}
			c.mu.Unlock()
			tr = gen
			return nil
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			return nil, fmt.Errorf("exp: generating %s: %w", workload, err)
		}
		return tr, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("exp: generating %s: %w", workload, context.Cause(ctx))
	}
}

// VerifyImmutable re-checksums every cached trace against the digest
// recorded when it entered the cache, and reports the first mismatch: a
// shared trace was written to by something that should have treated it as
// read-only. The engine calls this after every job batch; the re-hash is
// O(records) per trace, noise next to even one simulation of that trace.
func (c *TraceCache) VerifyImmutable() error {
	c.mu.Lock()
	traces := make(map[string]*trace.Trace, len(c.traces))
	sums := make(map[string]uint64, len(c.sums))
	for k, v := range c.traces {
		traces[k] = v
		sums[k] = c.sums[k]
	}
	c.mu.Unlock()
	// Hash outside the lock: concurrent readers are fine (the whole point
	// is that the data is immutable), and a concurrent writer is exactly
	// the corruption this check exists to expose.
	for name, tr := range traces {
		if got := tr.Checksum(); got != sums[name] {
			return fmt.Errorf("exp: shared trace %q mutated while cached (checksum %#x, recorded %#x): concurrent runs may be corrupted", name, got, sums[name])
		}
	}
	return nil
}
