// Package exp defines the experiment harness: prefetcher construction,
// per-figure experiment runners, and the output formatting that mirrors
// the paper's tables and figures.
package exp

import (
	"fmt"
	"strings"

	"semloc/internal/core"
	"semloc/internal/prefetch"
)

// PrefetcherNames lists the evaluated prefetchers in the paper's plotting
// order: the no-prefetch baseline, the spatio-temporal competitors, and
// the context prefetcher.
var PrefetcherNames = []string{"none", "stride", "ghb-gdc", "ghb-pcdc", "sms", "markov", "context"}

// FigurePrefetchers is the subset shown in the paper's figures (the stride
// prefetcher is evaluated but omitted from plots, §7; markov is this
// repo's extra temporal baseline).
var FigurePrefetchers = []string{"none", "ghb-gdc", "ghb-pcdc", "sms", "context"}

// NewPrefetcher builds a fresh prefetcher by name with its default (Table
// 2 scaled) configuration. Prefetchers are stateful: every simulation run
// needs a new instance.
func NewPrefetcher(name string) (prefetch.Prefetcher, error) {
	return NewPrefetcherWith(name, nil)
}

// NewPrefetcherWith builds a prefetcher by name, applying the context
// prefetcher overrides of fc (when non-nil) to the "context*" variants.
func NewPrefetcherWith(name string, fc *FileConfig) (prefetch.Prefetcher, error) {
	switch name {
	case "none":
		return prefetch.NewNone(), nil
	case "stride":
		return prefetch.NewStride(prefetch.StrideConfig{}), nil
	case "ghb-gdc":
		return prefetch.NewGHB(prefetch.GHBConfig{Localization: prefetch.LocalizeGlobal}), nil
	case "ghb-pcdc":
		return prefetch.NewGHB(prefetch.GHBConfig{Localization: prefetch.LocalizePC}), nil
	case "sms":
		return prefetch.NewSMS(prefetch.SMSConfig{}), nil
	case "markov":
		return prefetch.NewMarkov(prefetch.MarkovConfig{}), nil
	case "context":
		return core.New(fc.ContextConfig())
	case "context-softmax", "context-ucb":
		cfg := fc.ContextConfig()
		var err error
		cfg.Policy, err = core.ParsePolicy(strings.TrimPrefix(name, "context-"))
		if err != nil {
			return nil, err
		}
		return core.New(cfg)
	default:
		return nil, fmt.Errorf("exp: unknown prefetcher %q", name)
	}
}

// NewContext builds a context prefetcher with a custom configuration
// (used by the storage sweep and the ablation benches).
func NewContext(cfg core.Config) (prefetch.Prefetcher, error) {
	return core.New(cfg)
}
