package exp

import (
	"fmt"
	"io"
	"sort"
)

// Experiment regenerates one of the paper's tables or figures.
type Experiment struct {
	// ID is the artifact identifier ("table2", "fig12", ...).
	ID string
	// Title is the paper's caption, abbreviated.
	Title string
	// Run executes the experiment and writes its rows/series to w.
	Run func(r *Runner, w io.Writer) error
	// Jobs, when non-nil, enumerates the simulation matrix the experiment
	// will request, letting cmd/experiments pre-warm the runner's memo with
	// one parallel batch before the (sequential, output-ordered) Run calls.
	// Nil means the experiment runs no simulations (tables, closed-form
	// figures) or manages its own parallelism.
	Jobs func() []Job
}

// crossJobs enumerates the named (workload × prefetcher) matrix.
func crossJobs(wls, pfs []string) []Job {
	jobs := make([]Job, 0, len(wls)*len(pfs))
	for _, wl := range wls {
		for _, pn := range pfs {
			jobs = append(jobs, Job{Workload: wl, Prefetcher: pn})
		}
	}
	return jobs
}

// Experiments lists all experiments in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "table2", Title: "Table 2: simulator parameters", Run: RunTable2},
		{ID: "table3", Title: "Table 3: workloads and benchmarks", Run: RunTable3},
		{ID: "fig1", Title: "Figure 1: memory accesses for list insertion sort", Run: RunFig1},
		{ID: "fig5", Title: "Figure 5: reward function", Run: RunFig5},
		{ID: "fig8", Title: "Figure 8: cumulative distribution of hit depths", Run: RunFig8,
			Jobs: func() []Job {
				return crossJobs(append(append([]string{}, fig8Micro...), fig8Regular...), []string{"context"})
			}},
		{ID: "fig9", Title: "Figure 9: accuracy and timeliness categories", Run: RunFig9,
			Jobs: func() []Job { return crossJobs(fig9Workloads, FigurePrefetchers) }},
		{ID: "fig10", Title: "Figure 10: L1 misses per kilo-instruction", Run: RunFig10,
			Jobs: func() []Job { return crossJobs(AllWorkloads(), FigurePrefetchers) }},
		{ID: "fig11", Title: "Figure 11: L2 misses per kilo-instruction", Run: RunFig11,
			Jobs: func() []Job { return crossJobs(AllWorkloads(), FigurePrefetchers) }},
		{ID: "fig12", Title: "Figure 12: speedups over no prefetching", Run: RunFig12,
			Jobs: func() []Job { return crossJobs(AllWorkloads(), FigurePrefetchers) }},
		{ID: "fig13", Title: "Figure 13: impact of CST size on speedup", Run: RunFig13,
			Jobs: fig13Jobs},
		{ID: "fig14", Title: "Figure 14: naive vs spatially optimized layouts", Run: RunFig14,
			Jobs: func() []Job {
				return crossJobs([]string{"ssca2-csr", "ssca2-list", "graph500", "graph500-list"}, FigurePrefetchers)
			}},
		{ID: "limit", Title: "Limit study (extension): fraction of oracle benefit captured", Run: RunLimit,
			Jobs: func() []Job { return crossJobs(limitWorkloads, []string{"none", "oracle", "context", "sms"}) }},
	}
}

// PrewarmJobs merges the job matrices of the selected experiments into one
// deduplicated batch of named jobs (runs shared by several figures — most
// of the fig10/11/12 matrix — appear once). Parameterised jobs are
// excluded: they are never memoized, so pre-running them would only double
// their cost; their owning experiment parallelises them itself via
// RunJobs. The named jobs still include every baseline those sweeps share.
func PrewarmJobs(selected []Experiment) []Job {
	seen := make(map[string]bool)
	var out []Job
	for _, e := range selected {
		if e.Jobs == nil {
			continue
		}
		for _, j := range e.Jobs() {
			if j.Config != nil {
				continue
			}
			key := j.Workload + "|" + j.Prefetcher
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, j)
		}
	}
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
}

// IDs lists experiment identifiers in paper order.
func IDs() []string {
	es := Experiments()
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.ID
	}
	return out
}

// sortedKeys returns map keys in sorted order (stable table output).
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
