package exp

import (
	"fmt"
	"io"
	"sort"
)

// Experiment regenerates one of the paper's tables or figures.
type Experiment struct {
	// ID is the artifact identifier ("table2", "fig12", ...).
	ID string
	// Title is the paper's caption, abbreviated.
	Title string
	// Run executes the experiment and writes its rows/series to w.
	Run func(r *Runner, w io.Writer) error
}

// Experiments lists all experiments in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "table2", Title: "Table 2: simulator parameters", Run: RunTable2},
		{ID: "table3", Title: "Table 3: workloads and benchmarks", Run: RunTable3},
		{ID: "fig1", Title: "Figure 1: memory accesses for list insertion sort", Run: RunFig1},
		{ID: "fig5", Title: "Figure 5: reward function", Run: RunFig5},
		{ID: "fig8", Title: "Figure 8: cumulative distribution of hit depths", Run: RunFig8},
		{ID: "fig9", Title: "Figure 9: accuracy and timeliness categories", Run: RunFig9},
		{ID: "fig10", Title: "Figure 10: L1 misses per kilo-instruction", Run: RunFig10},
		{ID: "fig11", Title: "Figure 11: L2 misses per kilo-instruction", Run: RunFig11},
		{ID: "fig12", Title: "Figure 12: speedups over no prefetching", Run: RunFig12},
		{ID: "fig13", Title: "Figure 13: impact of CST size on speedup", Run: RunFig13},
		{ID: "fig14", Title: "Figure 14: naive vs spatially optimized layouts", Run: RunFig14},
		{ID: "limit", Title: "Limit study (extension): fraction of oracle benefit captured", Run: RunLimit},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
}

// IDs lists experiment identifiers in paper order.
func IDs() []string {
	es := Experiments()
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.ID
	}
	return out
}

// sortedKeys returns map keys in sorted order (stable table output).
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
