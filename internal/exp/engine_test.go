package exp

import (
	"bytes"
	"reflect"
	"testing"

	"semloc/internal/core"
)

// engineRunner builds a tiny-scale runner at a fixed parallelism.
func engineRunner(par int) *Runner {
	opts := DefaultOptions()
	opts.Scale = 0.02
	opts.Parallelism = par
	return NewRunner(opts)
}

// engineJobs is a mixed matrix: shared named runs (memoized path) plus a
// small parameterised sweep (fresh-run path), with a deliberate duplicate
// named job and a failing job in the middle.
func engineJobs() []Job {
	cfgA := core.DefaultConfig()
	cfgA.CSTEntries, cfgA.ReducerEntries = 512, 4096
	cfgB := core.DefaultConfig()
	cfgB.Epsilon = 0.25
	return []Job{
		{Workload: "array", Prefetcher: "none"},
		{Workload: "list", Prefetcher: "none"},
		{Workload: "list", Prefetcher: "context"},
		{Workload: "array", Prefetcher: "none"}, // duplicate: must memoize, not re-run
		{Workload: "list", Prefetcher: "no-such-prefetcher"},
		{Workload: "array", Prefetcher: "context", Point: 0, Config: &cfgA},
		{Workload: "array", Prefetcher: "context", Point: 1, Config: &cfgB},
		{Workload: "list", Prefetcher: "context", Point: 0, Config: &cfgA},
	}
}

// TestRunJobsParallelMatchesSequential is the engine's golden determinism
// test: the same job slice run at parallelism 1 and parallelism 8 must
// produce structurally identical results, job for job.
func TestRunJobsParallelMatchesSequential(t *testing.T) {
	seq, seqErr := engineRunner(1).RunJobs(engineJobs())
	par, parErr := engineRunner(8).RunJobs(engineJobs())
	if seqErr != nil || parErr != nil {
		t.Fatalf("RunJobs errors: seq=%v par=%v", seqErr, parErr)
	}
	if len(seq) != len(par) {
		t.Fatalf("result lengths differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if (seq[i].Err == nil) != (par[i].Err == nil) {
			t.Fatalf("job %d: error mismatch: seq=%v par=%v", i, seq[i].Err, par[i].Err)
		}
		if seq[i].Err != nil {
			continue
		}
		if !reflect.DeepEqual(seq[i].Result, par[i].Result) {
			t.Errorf("job %d (%s/%s[%d]): sequential and parallel results differ",
				i, seq[i].Job.Workload, seq[i].Job.Prefetcher, seq[i].Job.Point)
		}
	}
}

// TestRunJobsContract pins the engine's per-job semantics: results indexed
// by submission order, failures isolated, duplicates memoized, and
// parameterised jobs exposing their prefetcher instance.
func TestRunJobsContract(t *testing.T) {
	r := engineRunner(4)
	results, err := r.RunJobs(engineJobs())
	if err != nil {
		t.Fatal(err)
	}
	for i, jr := range results {
		if jr.Index != i {
			t.Errorf("result %d carries index %d", i, jr.Index)
		}
	}
	if results[4].Err == nil {
		t.Error("unknown-prefetcher job did not fail")
	}
	for i, jr := range results {
		if i == 4 {
			continue
		}
		if jr.Err != nil {
			t.Errorf("job %d failed alongside the bad job: %v", i, jr.Err)
		}
	}
	if results[0].Result == nil || results[3].Result != results[0].Result {
		t.Error("duplicate named job did not share the memoized result")
	}
	if results[5].Prefetcher == nil {
		t.Error("parameterised job did not expose its prefetcher instance")
	}
	if results[2].Prefetcher != nil {
		t.Error("named job leaked its (shared) prefetcher instance")
	}
}

// TestRunJobsDerivedSeedsIndependent checks that two sweep points with
// byte-identical configs still explore independently (their seeds derive
// from the point index), while re-running the same point reproduces it.
func TestRunJobsDerivedSeedsIndependent(t *testing.T) {
	cfg := core.DefaultConfig()
	jobs := []Job{
		{Workload: "list", Prefetcher: "context", Point: 0, Config: &cfg},
		{Workload: "list", Prefetcher: "context", Point: 1, Config: &cfg},
		{Workload: "list", Prefetcher: "context", Point: 0, Config: &cfg},
	}
	r := engineRunner(2)
	results, err := r.RunJobs(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, jr := range results {
		if jr.Err != nil {
			t.Fatalf("job %d: %v", i, jr.Err)
		}
	}
	if !reflect.DeepEqual(results[0].Result, results[2].Result) {
		t.Error("re-running the same sweep point produced a different result")
	}
	// Different points get different exploration streams. (Equal final
	// Results are astronomically unlikely but not impossible; assert on the
	// seeds, which is the property actually promised.)
	s0 := DeriveSeed(r.Options().Seed, "list", "context", 0)
	s1 := DeriveSeed(r.Options().Seed, "list", "context", 1)
	if s0 == s1 {
		t.Error("DeriveSeed ignored the point index")
	}
}

// TestDeriveSeedProperties pins the seed map: deterministic, sensitive to
// every coordinate, never zero, and free of the delimiter ambiguity that a
// naive string concatenation would have.
func TestDeriveSeedProperties(t *testing.T) {
	base := DeriveSeed(1, "list", "context", 0)
	if base == 0 {
		t.Fatal("DeriveSeed returned 0")
	}
	if DeriveSeed(1, "list", "context", 0) != base {
		t.Error("DeriveSeed is not deterministic")
	}
	variants := map[string]uint64{
		"base":       DeriveSeed(2, "list", "context", 0),
		"workload":   DeriveSeed(1, "mcf", "context", 0),
		"prefetcher": DeriveSeed(1, "list", "context-ucb", 0),
		"point":      DeriveSeed(1, "list", "context", 1),
		// "lis"+"tcontext" vs "list"+"context": the separator must matter.
		"boundary": DeriveSeed(1, "lis", "tcontext", 0),
	}
	for name, v := range variants {
		if v == base {
			t.Errorf("DeriveSeed insensitive to %s coordinate", name)
		}
	}
}

// TestTraceImmutabilityGuard mutates a cached shared trace and checks the
// engine refuses to hand results back silently.
func TestTraceImmutabilityGuard(t *testing.T) {
	r := engineRunner(2)
	tr, err := r.Trace("array")
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Traces().VerifyImmutable(); err != nil {
		t.Fatalf("pristine cache failed verification: %v", err)
	}
	tr.Records[0].Addr ^= 0x40 // simulated stray write by a buggy run
	if _, err := r.RunJobs([]Job{{Workload: "array", Prefetcher: "none"}}); err == nil {
		t.Fatal("RunJobs returned no error after a cached trace was mutated")
	}
}

// TestExperimentOutputDeterministic renders a full simulation-backed
// experiment at parallelism 1 and 8 and requires byte-identical output —
// the end-to-end version of the engine's determinism contract, covering
// fig13's parameterised sweep path.
func TestExperimentOutputDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-matrix experiment at two parallelism levels")
	}
	render := func(par int) string {
		var buf bytes.Buffer
		if err := RunFig13(engineRunner(par), &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Errorf("fig13 output differs between -parallel 1 and 8:\n--- seq ---\n%s\n--- par ---\n%s", seq, par)
	}
}

// TestPrewarmJobsDedup checks that named jobs shared between experiments
// collapse to one entry while parameterised jobs all survive.
func TestPrewarmJobsDedup(t *testing.T) {
	var fig10, fig12, fig13x Experiment
	for _, e := range Experiments() {
		switch e.ID {
		case "fig10":
			fig10 = e
		case "fig12":
			fig12 = e
		case "fig13":
			fig13x = e
		}
	}
	both := PrewarmJobs([]Experiment{fig10, fig12})
	one := PrewarmJobs([]Experiment{fig10})
	if len(both) != len(one) {
		t.Errorf("fig10+fig12 prewarm has %d jobs, fig10 alone %d; identical matrices must dedup", len(both), len(one))
	}
	// Parameterised sweep jobs are not memoizable and must not be
	// prewarmed; the sweep's shared named baselines must be.
	sweep := PrewarmJobs([]Experiment{fig13x})
	if len(sweep) != len(fig13Workloads) {
		t.Errorf("fig13 prewarm has %d jobs, want %d named baselines", len(sweep), len(fig13Workloads))
	}
	for _, j := range sweep {
		if j.Config != nil {
			t.Errorf("parameterised job %s[%d] leaked into the prewarm batch", j.Workload, j.Point)
		}
	}
}
