package exp

import (
	"fmt"
	"io"

	"semloc/internal/stats"
)

// RunFig14 regenerates Figure 14: cycles-per-instruction of naive (linked)
// and spatially optimized (array/CSR) implementations of SSCA2 and
// Graph500, under every prefetcher. The paper's claim: only the context
// prefetcher lets the naive layout approach the optimized one.
func RunFig14(r *Runner, w io.Writer) error {
	pairs := []struct {
		title     string
		csr, list string
	}{
		{"a) SSCA2", "ssca2-csr", "ssca2-list"},
		{"b) Graph500", "graph500", "graph500-list"},
	}
	for _, p := range pairs {
		tb := stats.NewTable("Figure 14 "+p.title+" — CPI by layout and prefetcher", "prefetcher", "CSR/array CPI", "linked CPI", "linked/CSR ratio")
		var bestLinked, noneLinked float64
		var bestLinkedName string
		for _, pn := range FigurePrefetchers {
			csr, err := r.Result(p.csr, pn)
			if err != nil {
				return err
			}
			lst, err := r.Result(p.list, pn)
			if err != nil {
				return err
			}
			linked := lst.CPU.CPI()
			tb.AddRow(pn, csr.CPU.CPI(), linked, linked/csr.CPU.CPI())
			if pn == "none" {
				noneLinked = linked
			}
			if bestLinkedName == "" || linked < bestLinked {
				bestLinked, bestLinkedName = linked, pn
			}
		}
		tb.Render(w)
		fmt.Fprintf(w, "best naive-implementation CPI: %s (%.2f, %.0f%% faster than no prefetching)\n\n",
			bestLinkedName, bestLinked, 100*(noneLinked/bestLinked-1))
	}
	return nil
}
