package core

import (
	"testing"
	"testing/quick"
)

func TestRewardBellShape(t *testing.T) {
	// Shape properties are checked on the paper's own gem5-derived window.
	r := RewardConfig{Low: 18, High: 50, Peak: 16, Penalty: 4}
	center := r.Center()
	if center != 34 {
		t.Errorf("Center = %d, want 34", center)
	}
	if got := r.Reward(center); got != r.Peak {
		t.Errorf("Reward(center) = %d, want peak %d", got, r.Peak)
	}
	// Zero (or near) at window edges.
	if got := r.Reward(r.Low); got < 0 || got > 2 {
		t.Errorf("Reward(Low) = %d, want ~0", got)
	}
	if got := r.Reward(r.High); got < 0 || got > 2 {
		t.Errorf("Reward(High) = %d, want ~0", got)
	}
	// Negative outside the window.
	if got := r.Reward(2); got >= 0 {
		t.Errorf("Reward(2) = %d, want negative (too late to be useful)", got)
	}
	if got := r.Reward(120); got >= 0 {
		t.Errorf("Reward(120) = %d, want negative (too early)", got)
	}
	// Clamped at -Penalty.
	if got := r.Reward(0); got != -r.Penalty {
		t.Errorf("Reward(0) = %d, want %d", got, -r.Penalty)
	}
	if r.Expired() != -r.Penalty {
		t.Errorf("Expired = %d, want %d", r.Expired(), -r.Penalty)
	}
}

func TestRewardMonotoneFromCenter(t *testing.T) {
	r := RewardConfig{Low: 18, High: 50, Peak: 16, Penalty: 4}
	c := r.Center()
	for d := c; d < c+80; d++ {
		if r.Reward(d+1) > r.Reward(d) {
			t.Fatalf("reward must not increase away from center: d=%d", d)
		}
	}
	for d := c; d > 0; d-- {
		if r.Reward(d-1) > r.Reward(d) {
			t.Fatalf("reward must not increase toward zero: d=%d", d)
		}
	}
}

func TestRewardFlat(t *testing.T) {
	r := RewardConfig{Low: 18, High: 50, Peak: 16, Penalty: 4}
	r.Flat = true
	if r.Reward(r.Low) != r.Peak || r.Reward(r.High) != r.Peak || r.Reward(r.Center()) != r.Peak {
		t.Error("flat reward should be Peak inside the window")
	}
	if r.Reward(r.Low-1) != -r.Penalty || r.Reward(r.High+1) != -r.Penalty {
		t.Error("flat reward should be -Penalty outside the window")
	}
}

func TestRewardValidate(t *testing.T) {
	bad := []RewardConfig{
		{Low: -1, High: 10, Peak: 1},
		{Low: 10, High: 10, Peak: 1},
		{Low: 1, High: 10, Peak: 0},
		{Low: 1, High: 10, Peak: 1, Penalty: -1},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
	if err := DefaultRewardConfig().Validate(); err != nil {
		t.Errorf("default reward invalid: %v", err)
	}
}

func TestDefaultRewardWindow(t *testing.T) {
	// The default window keeps the paper's upper edge and extends the
	// lower edge to cover serialized miss chains on this substrate.
	r := DefaultRewardConfig()
	if r.High != 50 {
		t.Errorf("High = %d, want 50 (paper's upper edge)", r.High)
	}
	if r.Low >= 18 {
		t.Errorf("Low = %d, want below the paper's 18 (see reward.go)", r.Low)
	}
	if r.Reward(r.Center()) != r.Peak {
		t.Error("center must earn the peak reward")
	}
	if r.Reward(127) >= 0 {
		t.Error("far-too-early predictions must be penalized")
	}
	if r.Reward(r.Low) < 0 {
		t.Error("window edge must not be penalized")
	}
}

func TestSaturatingAdd(t *testing.T) {
	cases := []struct{ a, b, want int8 }{
		{100, 50, 127},
		{-100, -50, -128},
		{10, -4, 6},
		{127, 1, 127},
		{-128, -1, -128},
		{-128, 1, -127},
	}
	for _, c := range cases {
		if got := saturatingAdd(c.a, c.b); got != c.want {
			t.Errorf("saturatingAdd(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSaturatingAddProperty(t *testing.T) {
	f := func(a, b int8) bool {
		got := int16(saturatingAdd(a, b))
		exact := int16(a) + int16(b)
		if exact > 127 {
			exact = 127
		}
		if exact < -128 {
			exact = -128
		}
		return got == exact
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
