package core

import (
	"fmt"
	"math"
	"testing"

	"semloc/internal/cache"
	"semloc/internal/memmodel"
	"semloc/internal/prefetch"
	"semloc/internal/trace"
)

// This file retains a naive reference implementation of the learner's
// decide/reward path — the shape the code had before the flattened-CST
// rewrite (DESIGN.md §15) — and property-tests the production path against
// it for bit-identical behaviour. The reference deliberately keeps every
// slow idiom the rewrite removed: an array-of-structs link layout, a fresh
// candidate slice per prediction, a best-link rescan per issued prefetch,
// a per-exploration softmax weight allocation, separate full/reduced
// context hashes, per-hit float reward evaluation, and a queue searched by
// linear scan. Only pure shared functions (context capture, hashContext,
// the reward bell, saturatingAdd) and the unchanged reducer/history units
// are reused; everything the rewrite touched is reimplemented here from
// the algorithm's specification.

type refLink struct {
	delta int8
	score int8
	used  bool
}

type refEntry struct {
	tag    uint8
	valid  bool
	churn  uint8
	trials uint16
	links  []refLink
}

type refCST struct {
	entries []refEntry
	bits    uint
}

func newRefCST(entries, links int) *refCST {
	c := &refCST{entries: make([]refEntry, entries)}
	for i := range c.entries {
		c.entries[i].links = make([]refLink, links)
	}
	n := entries
	for n > 1 {
		n >>= 1
		c.bits++
	}
	return c
}

func (c *refCST) key(reducedHash uint64) cstKey {
	mixed := reducedHash * 0x9e3779b97f4a7c15
	mixed ^= mixed >> 29
	return cstKey{idx: int32(mixed >> (64 - c.bits)), tag: uint8(mixed >> 24)}
}

func (c *refCST) lookup(k cstKey) *refEntry {
	e := &c.entries[k.idx]
	if e.valid && e.tag == k.tag {
		return e
	}
	return nil
}

func (c *refCST) ensure(k cstKey) *refEntry {
	e := &c.entries[k.idx]
	if e.valid && e.tag == k.tag {
		return e
	}
	*e = refEntry{tag: k.tag, valid: true, links: e.links}
	for i := range e.links {
		e.links[i] = refLink{}
	}
	return e
}

func (e *refEntry) candidates() []int {
	var out []int
	for i, l := range e.links {
		if l.used {
			out = append(out, i)
		}
	}
	return out
}

func (e *refEntry) addCandidate(delta int8, allowReplace bool) candOutcome {
	worst := 0
	for i := range e.links {
		if !e.links[i].used {
			worst = i
			break
		}
		if e.links[i].delta == delta {
			return candNoop
		}
		if e.links[i].score < e.links[worst].score {
			worst = i
		}
	}
	w := &e.links[worst]
	if w.used && (w.score > 0 || !allowReplace) {
		e.noteChurn()
		return candRejected
	}
	out := candInserted
	if w.used {
		out = candReplaced
		e.noteChurn()
	}
	*w = refLink{delta: delta, used: true}
	return out
}

func (e *refEntry) reward(delta int8, amount int8) {
	for i := range e.links {
		if e.links[i].used && e.links[i].delta == delta {
			e.links[i].score = saturatingAdd(e.links[i].score, amount)
			return
		}
	}
}

func (e *refEntry) noteChurn() {
	if e.churn < 255 {
		e.churn++
	}
}

func (e *refEntry) noteTrial() {
	if e.trials < 65535 {
		e.trials++
	}
}

func (e *refEntry) overloaded(threshold uint8) bool {
	if e.churn < threshold {
		return false
	}
	for _, l := range e.links {
		if l.used && l.score > 0 {
			return false
		}
	}
	return true
}

// The queue side of the reference is refQueue (pfqueue_test.go): the
// pre-index linear-scan ring, reused here so the end-to-end comparison
// also re-proves the bucket index against its own reference.

// refPrefetcher mirrors Prefetcher over the naive structures. The bandit
// is the production one (its RNG, gating and accuracy tracking did not
// change shape), but every policy decision is recomputed here over the
// candidate slice: allocating softmax weights per call, and UCB with the
// documented smaller-delta tie-break.
type refPrefetcher struct {
	cfg     Config
	reducer *reducer
	table   *refCST
	history *historyQueue
	queue   *refQueue
	policy  *bandit
	machine machineState
	index   uint64
	metrics Metrics
	// pendingIssued mirrors the production derived counter: dispatched
	// prefetches still live and unconsumed in the queue.
	pendingIssued uint64
}

func newRefPrefetcher(cfg Config) *refPrefetcher {
	return &refPrefetcher{
		cfg:     cfg,
		reducer: newReducer(cfg.ReducerEntries),
		table:   newRefCST(cfg.CSTEntries, cfg.CSTLinks),
		history: newHistoryQueue(cfg.HistoryDepth),
		queue:   newRefQueue(cfg.QueueDepth),
		policy:  newBandit(cfg.Epsilon, cfg.AdaptiveEpsilon, cfg.Seed),
	}
}

func (p *refPrefetcher) exploreChoice(e *refEntry, cands []int) int {
	b := p.policy
	switch p.cfg.Policy {
	case PolicySoftmax:
		if !b.explore() {
			return -1
		}
		weights := make([]float64, len(cands))
		var sum float64
		for i, li := range cands {
			weights[i] = math.Exp(float64(e.links[li].score) / softmaxTemperature)
			sum += weights[i]
		}
		target := b.float() * sum
		for i, li := range cands {
			target -= weights[i]
			if target <= 0 {
				return li
			}
		}
		return cands[len(cands)-1]
	case PolicyUCB:
		best, bestV := -1, math.Inf(-1)
		var bestDelta int8
		for _, li := range cands {
			score := e.links[li].score
			trials := 1 + math.Abs(float64(score))
			v := float64(score) + ucbC*math.Sqrt(math.Log(float64(1+e.trials))/trials)
			if v > bestV || (v == bestV && e.links[li].delta < bestDelta) {
				best, bestV, bestDelta = li, v, e.links[li].delta
			}
		}
		return best
	default:
		if !b.explore() {
			return -1
		}
		return b.pick(cands)
	}
}

func (p *refPrefetcher) onAccess(a *prefetch.Access, iss prefetch.Issuer) {
	p.metrics.Accesses++
	block := int64(uint64(a.Addr) >> p.cfg.BlockShift)

	v := p.machine.capture(a, p.cfg.BlockShift)
	active := FullAttrSet
	var red *reducerEntry
	if !p.cfg.DisableReducer {
		red = p.reducer.lookup(hashContext(&v, FullAttrSet))
		active = red.active
	}
	key := p.table.key(hashContext(&v, active))

	p.queue.match(block, p.index, func(e *pfEntry, depth int) {
		p.metrics.QueueHits++
		r := p.cfg.Reward.Reward(depth)
		switch {
		case r > 0:
			p.metrics.PosRewards++
		case r < 0:
			p.metrics.NegRewards++
		default:
			p.metrics.ZeroRewards++
		}
		if entry := p.table.lookup(e.key); entry != nil {
			entry.reward(e.delta, r)
		}
		if e.issued {
			p.pendingIssued--
			if r > 0 {
				p.metrics.OutcomeAccurate++
			} else {
				p.metrics.OutcomeLate++
			}
			p.policy.feedback(r > 0)
		}
	})

	d := p.cfg.SampleDepths[int(p.policy.next()%uint64(len(p.cfg.SampleDepths)))]
	if h := p.history.at(d); h != nil {
		delta := block - h.block
		if delta != 0 && delta >= -128 && delta <= 127 {
			switch p.table.ensure(h.key).addCandidate(int8(delta), p.policy.next()&3 == 0) {
			case candInserted:
				p.metrics.CSTInsertions++
			case candReplaced:
				p.metrics.CSTReplacements++
			case candRejected:
				p.metrics.CSTRejects++
			}
		}
	}

	entry := p.table.lookup(key)
	if red != nil {
		if entry != nil {
			red.noteWarm()
			if entry.overloaded(overloadChurn) {
				if red.overload() {
					p.metrics.Activations++
				}
				entry.churn /= 2
			}
		} else {
			red.noteCold()
			if red.coldStreak >= coldStreakLimit {
				if red.underload() {
					p.metrics.Deactivations++
				}
			}
		}
	}
	if entry != nil {
		p.predict(entry, key, block, a, iss)
	}

	p.history.push(key, block)
	p.index++
	p.machine.update(a, p.cfg.BlockShift)

	if p.index&(churnDecayEvery-1) == 0 {
		for i := range p.table.entries {
			p.table.entries[i].churn /= 2
		}
	}
}

func (p *refPrefetcher) predict(entry *refEntry, key cstKey, block int64, a *prefetch.Access, iss prefetch.Issuer) {
	cands := entry.candidates()
	if len(cands) == 0 {
		return
	}
	entry.noteTrial()
	if !p.cfg.DisableShadow {
		if li := p.exploreChoice(entry, cands); li >= 0 {
			p.metrics.Explores++
			p.enqueue(entry.links[li].delta, key, block, a, iss, false)
		}
	}
	degree := p.policy.degree(p.cfg.MaxDegree)
	issued := 0
	usedMask := 0
	for issued < degree {
		best := -1
		for _, li := range cands {
			if usedMask&(1<<li) != 0 {
				continue
			}
			if best < 0 || entry.links[li].score > entry.links[best].score {
				best = li
			}
		}
		if best < 0 {
			break
		}
		usedMask |= 1 << best
		l := entry.links[best]
		if l.score < p.cfg.ScoreThreshold {
			p.metrics.Suppressed++
			if !p.cfg.DisableShadow {
				li := p.policy.pick(cands)
				p.enqueue(entry.links[li].delta, key, block, a, iss, false)
			}
			break
		}
		p.metrics.Exploits++
		p.enqueue(l.delta, key, block, a, iss, true)
		issued++
	}
}

func (p *refPrefetcher) enqueue(delta int8, key cstKey, block int64, a *prefetch.Access, iss prefetch.Issuer, wantReal bool) {
	target := block + int64(delta)
	if target < 0 {
		return
	}
	addr := memmodel.Addr(uint64(target) << p.cfg.BlockShift)

	real := wantReal
	if real && iss.FreePrefetchSlots(a.Now) < p.cfg.MSHRReserve {
		real = false
	}
	if real {
		if predicted, issuedBefore := p.queue.contains(target); predicted && issuedBefore {
			real = false
		}
	}
	dispatched := false
	if real {
		dispatched = iss.Prefetch(addr, a.Now)
	}
	if !dispatched {
		iss.Shadow(addr)
	}
	p.metrics.Predictions++
	if dispatched {
		p.metrics.RealPrefetches++
		p.pendingIssued++
	} else {
		p.metrics.ShadowPrefetches++
	}
	expired, has := p.queue.push(pfEntry{
		block: target, key: key, delta: delta,
		index: p.index, issued: dispatched, live: true,
	})
	if has {
		p.metrics.Expired++
		if entry := p.table.lookup(expired.key); entry != nil {
			entry.reward(expired.delta, p.cfg.Reward.Expired())
		}
		if expired.issued {
			p.pendingIssued--
			p.metrics.OutcomeEvicted++
			p.policy.feedback(false)
		}
	}
}

// seqIssuer records every issuer interaction as a comparable event string
// and varies its free-slot answer deterministically with the query count,
// so the MSHR-demotion branch is exercised on both sides identically.
type seqIssuer struct {
	events  []string
	queries int
}

func (s *seqIssuer) Prefetch(addr memmodel.Addr, now cache.Cycle) bool {
	// Every third real dispatch attempt is rejected by the memory system.
	ok := len(s.events)%3 != 2
	s.events = append(s.events, fmt.Sprintf("P %x %d %v", addr, now, ok))
	return ok
}

func (s *seqIssuer) Shadow(addr memmodel.Addr) {
	s.events = append(s.events, fmt.Sprintf("S %x", addr))
}

func (s *seqIssuer) FreePrefetchSlots(now cache.Cycle) int {
	s.queries++
	if s.queries%11 == 0 {
		return 0
	}
	return 4
}

// refStream builds an access stream mixing a recurring pointer chase with
// periodic phase changes (different PCs and hints) and occasional random
// jumps, so reducer activation/deactivation, negative deltas, queue
// expiry, cold entries and tag conflicts all occur.
func refStream(n int, seed uint64, chaotic bool) []prefetch.Access {
	rng := memmodel.NewRNG(seed)
	base := int64(1 << 20)
	blocks := make([]int64, 48)
	cur := base
	for i := range blocks {
		blocks[i] = cur
		cur += int64(rng.Intn(220) - 110)
		if cur < base-120 {
			cur = base
		}
	}
	out := make([]prefetch.Access, n)
	for i := range out {
		b := blocks[i%len(blocks)]
		next := blocks[(i+1)%len(blocks)]
		if chaotic && rng.Intn(8) == 0 {
			b = base + int64(rng.Intn(4096))
		}
		addr := memmodel.Addr(b << 6)
		pc := uint64(0x400680)
		hints := trace.SWHints{Valid: true, TypeID: 3, LinkOffset: 8, RefForm: trace.RefArrow}
		if chaotic && i%257 > 200 {
			pc = 0x400990 + uint64(i%3)*16
			hints = trace.SWHints{}
		}
		out[i] = prefetch.Access{
			PC:         pc,
			Addr:       addr,
			Line:       memmodel.LineOf(addr),
			Index:      uint64(i),
			Now:        cache.Cycle(i * 30),
			MissedL1:   true,
			Value:      uint64(next << 6),
			Reg:        uint64(i % 5),
			BranchHist: uint16(i * 7),
			Hints:      hints,
		}
	}
	return out
}

// compareLearners drives the production and reference learners over the
// same stream and requires bit-identical behaviour: the same issuer event
// sequence, the same metrics, policy state and RNG position, and the same
// learned table contents.
func compareLearners(t *testing.T, cfg Config, stream []prefetch.Access) {
	t.Helper()
	fast := MustNew(cfg)
	ref := newRefPrefetcher(cfg)
	fi, ri := &seqIssuer{}, &seqIssuer{}
	for i := range stream {
		fast.OnAccess(&stream[i], fi)
		ref.onAccess(&stream[i], ri)
		if len(fi.events) != len(ri.events) {
			t.Fatalf("access %d: event count diverged: fast %d, ref %d",
				i, len(fi.events), len(ri.events))
		}
	}
	for i := range fi.events {
		if fi.events[i] != ri.events[i] {
			t.Fatalf("issuer event %d diverged: fast %q, ref %q", i, fi.events[i], ri.events[i])
		}
	}

	fm, rm := fast.Metrics(), ref.metrics
	rm.OutcomeUseless = ref.pendingIssued
	fm.HitDepths, rm.HitDepths = nil, nil
	if fm != rm {
		t.Fatalf("metrics diverged:\nfast %+v\nref  %+v", fm, rm)
	}
	// The reference skips the hit-depth histogram; depth agreement is
	// already covered by the per-hit rewards folded into scores.

	if fast.policy.rng != ref.policy.rng {
		t.Fatalf("RNG state diverged: fast %d, ref %d", fast.policy.rng, ref.policy.rng)
	}
	if fast.policy.accuracy != ref.policy.accuracy || fast.policy.epsilon != ref.policy.epsilon {
		t.Fatalf("policy state diverged: accuracy %v vs %v, epsilon %v vs %v",
			fast.policy.accuracy, ref.policy.accuracy, fast.policy.epsilon, ref.policy.epsilon)
	}

	for idx := range fast.table.entries {
		fe, re := &fast.table.entries[idx], &ref.table.entries[idx]
		if fe.valid != re.valid {
			t.Fatalf("entry %d validity diverged", idx)
		}
		if !fe.valid {
			continue
		}
		if fe.tag != re.tag || fe.churn != re.churn || fe.trials != re.trials {
			t.Fatalf("entry %d header diverged: fast tag=%d churn=%d trials=%d, ref tag=%d churn=%d trials=%d",
				idx, fe.tag, fe.churn, fe.trials, re.tag, re.churn, re.trials)
		}
		for li := range re.links {
			if fe.isUsed(li) != re.links[li].used {
				t.Fatalf("entry %d slot %d used diverged", idx, li)
			}
			if !re.links[li].used {
				continue
			}
			if fe.deltas[li] != re.links[li].delta || fe.scores[li] != re.links[li].score {
				t.Fatalf("entry %d slot %d diverged: fast (%d,%d), ref (%d,%d)",
					idx, li, fe.deltas[li], fe.scores[li], re.links[li].delta, re.links[li].score)
			}
		}
	}
}

// TestFastPathBitIdenticalToReference is the seed-sweep property test the
// flattened hot path is gated on: across policies, configurations and
// seeds, the production learner must make exactly the decisions of the
// retained naive reference.
func TestFastPathBitIdenticalToReference(t *testing.T) {
	configs := map[string]func() Config{
		"default": DefaultConfig,
		"small": func() Config {
			cfg := DefaultConfig()
			cfg.CSTEntries = 64
			cfg.CSTLinks = 2
			cfg.ReducerEntries = 16
			cfg.HistoryDepth = 8
			cfg.QueueDepth = 8
			cfg.SampleDepths = []int{1, 2, 3}
			return cfg
		},
		"noreducer-flat-wide": func() Config {
			cfg := DefaultConfig()
			cfg.DisableReducer = true
			cfg.Reward.Flat = true
			cfg.CSTLinks = 8
			return cfg
		},
		"noshadow-single": func() Config {
			cfg := DefaultConfig()
			cfg.DisableShadow = true
			cfg.CSTLinks = 1
			cfg.MaxDegree = 2
			return cfg
		},
	}
	for name, mk := range configs {
		for _, policy := range []PolicyKind{PolicyEpsilonGreedy, PolicySoftmax, PolicyUCB} {
			for _, seed := range []uint64{1, 7} {
				for _, chaotic := range []bool{false, true} {
					cfg := mk()
					cfg.Policy = policy
					cfg.Seed = seed
					label := fmt.Sprintf("%s/%v/seed%d/chaotic=%v", name, policy, seed, chaotic)
					t.Run(label, func(t *testing.T) {
						compareLearners(t, cfg, refStream(4000, seed*977+3, chaotic))
					})
				}
			}
		}
	}
}

// TestHashPrefixEquivalence pins the optimisation the batched hot-path
// hashing relies on: for any attribute set containing the default set,
// extending the default prefix equals hashing the set directly.
func TestHashPrefixEquivalence(t *testing.T) {
	rng := memmodel.NewRNG(5)
	for trial := 0; trial < 200; trial++ {
		var v contextVector
		for i := range v {
			v[i] = rng.Uint64()
		}
		set := DefaultAttrSet | AttrSet(rng.Uint64())&FullAttrSet
		prefix := hashDefaultPrefix(&v)
		if got, want := hashExtend(prefix, &v, set), hashContext(&v, set); got != want {
			t.Fatalf("set %08b: hashExtend = %x, hashContext = %x", set, got, want)
		}
	}
}

// TestRewardTableMatchesBell pins the depth-indexed reward table against
// the analytic bell for every depth the queue can report.
func TestRewardTableMatchesBell(t *testing.T) {
	for _, cfg := range []RewardConfig{
		DefaultRewardConfig(),
		{Low: 0, High: 50, Peak: 16, Penalty: 1, Flat: true},
		{Low: 10, High: 30, Peak: 20, Penalty: 0},
	} {
		p := MustNew(func() Config {
			c := DefaultConfig()
			c.Reward = cfg
			return c
		}())
		for d := 0; d < 4096; d++ {
			if got, want := p.rewardAt(d), cfg.Reward(d); got != want {
				t.Fatalf("%+v: rewardAt(%d) = %d, want %d", cfg, d, got, want)
			}
		}
	}
}
