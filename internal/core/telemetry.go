package core

import (
	"semloc/internal/obs"
)

// Telemetry integration. The prefetcher carries an optional *obs.Collector
// (nil by default); every hot-path hook below guards with one branch on
// that pointer, so the disabled configuration keeps the 0 allocs/op
// invariant of DESIGN.md §10 (the Makefile's overhead-guard target and
// TestOnAccessZeroAllocTelemetryDisabled enforce it).
//
// Determinism: event sampling runs off the collector's own counter, never
// the policy RNG, so attaching telemetry cannot change what the
// prefetcher does — only what it reports.

var (
	_ obs.Attachable = (*Prefetcher)(nil)
	_ obs.CoreSource = (*Prefetcher)(nil)
)

// AttachTelemetry implements obs.Attachable: subsequent decisions, rewards
// and expiries are (sampled and) traced through c. Attach before the run;
// a nil c detaches.
func (p *Prefetcher) AttachTelemetry(c *obs.Collector) { p.obs = c }

// TelemetrySnapshot implements obs.CoreSource: the cumulative counters and
// learned-state summary the interval sampler snapshots at each boundary.
// It is called once per sampling interval, not per access; the CST scan it
// performs (via Inspect) is amortized to a handful of instructions per
// demand access at default intervals.
func (p *Prefetcher) TelemetrySnapshot() obs.CoreSnapshot {
	st := p.Inspect()
	top := make([]obs.DeltaCount, len(st.TopDeltas))
	for i, d := range st.TopDeltas {
		top[i] = obs.DeltaCount{Delta: d.Delta, Count: d.Count}
	}
	return obs.CoreSnapshot{
		Accesses:          p.metrics.Accesses,
		Predictions:       p.metrics.Predictions,
		RealPrefetches:    p.metrics.RealPrefetches,
		ShadowPrefetches:  p.metrics.ShadowPrefetches,
		QueueHits:         p.metrics.QueueHits,
		Expired:           p.metrics.Expired,
		Activations:       p.metrics.Activations,
		Deactivations:     p.metrics.Deactivations,
		OutcomeAccurate:   p.metrics.OutcomeAccurate,
		OutcomeLate:       p.metrics.OutcomeLate,
		OutcomeEvicted:    p.metrics.OutcomeEvicted,
		OutcomeUseless:    p.pendingIssued,
		Explores:          p.metrics.Explores,
		Exploits:          p.metrics.Exploits,
		Suppressed:        p.metrics.Suppressed,
		PosRewards:        p.metrics.PosRewards,
		NegRewards:        p.metrics.NegRewards,
		ZeroRewards:       p.metrics.ZeroRewards,
		CSTInsertions:     p.metrics.CSTInsertions,
		CSTReplacements:   p.metrics.CSTReplacements,
		CSTRejects:        p.metrics.CSTRejects,
		Accuracy:          p.policy.accuracy,
		Epsilon:           p.policy.epsilon,
		CSTEntries:        st.Entries,
		CSTLinks:          st.Links,
		CSTPositiveLinks:  st.PositiveLinks,
		CSTSaturatedLinks: st.SaturatedLinks,
		CSTMeanScore:      st.MeanScore,
		TopDeltas:         top,
	}
}

// contextID packs a CST key into the integer identity decision events
// carry, so a trace reader can follow one learned context across events.
func contextID(k cstKey) uint64 { return uint64(k.idx)<<8 | uint64(k.tag) }

// traceDecision emits one sampled "decide" event: the candidate links the
// prediction unit considered, the delta it chose, whether the prediction
// dispatched to memory or trained as a shadow, and the issue/suppress
// reason. Callers guard with p.obs != nil; the candidate slice is only
// built once the event is actually sampled.
func (p *Prefetcher) traceDecision(entry *cstEntry, key cstKey, delta int8, real, explore bool, reason string) {
	if !p.obs.TraceDue() {
		return
	}
	ev := obs.DecisionEvent{
		Kind:    obs.KindDecide,
		Index:   p.index,
		Context: contextID(key),
		Delta:   delta,
		Real:    real,
		Explore: explore,
		Reason:  reason,
	}
	for li := 0; li < int(entry.links); li++ {
		if entry.isUsed(li) {
			ev.Candidates = append(ev.Candidates, obs.CandidateScore{Delta: entry.deltas[li], Score: entry.scores[li]})
		}
	}
	p.obs.Emit(&ev)
}

// traceReward emits one sampled "reward" event for a queued prediction
// consumed by a demand access at the given depth.
func (p *Prefetcher) traceReward(key cstKey, delta int8, reward int8, depth int, real bool) {
	if !p.obs.TraceDue() {
		return
	}
	p.obs.Emit(&obs.DecisionEvent{
		Kind:    obs.KindReward,
		Index:   p.index,
		Context: contextID(key),
		Delta:   delta,
		Real:    real,
		Reward:  reward,
		Depth:   depth,
	})
}

// traceExpire emits one sampled "expire" event for a prediction displaced
// from the queue unconsumed, carrying the expiry penalty.
func (p *Prefetcher) traceExpire(key cstKey, delta int8, penalty int8, real bool) {
	if !p.obs.TraceDue() {
		return
	}
	p.obs.Emit(&obs.DecisionEvent{
		Kind:    obs.KindExpire,
		Index:   p.index,
		Context: contextID(key),
		Delta:   delta,
		Real:    real,
		Reward:  penalty,
	})
}
