package core

// historyQueue is the collection unit's queue of recently observed
// contexts (Table 2: 50 entries), waiting to be associated with impending
// memory addresses. Each entry remembers the reduced-context key that was
// current at that access plus the accessed block, so a later access can be
// stored as a delta relative to it (C -N-> A, §4.2).
type historyQueue struct {
	entries []historyEntry
	head    int // position of the most recent entry
	size    int
}

type historyEntry struct {
	key   cstKey
	block int64 // block number of the access observed with this context
	live  bool
}

func newHistoryQueue(depth int) *historyQueue {
	return &historyQueue{entries: make([]historyEntry, depth)}
}

// push records the newest context.
func (h *historyQueue) push(key cstKey, block int64) {
	h.head++
	if h.head == len(h.entries) {
		h.head = 0
	}
	h.entries[h.head] = historyEntry{key: key, block: block, live: true}
	if h.size < len(h.entries) {
		h.size++
	}
}

// at returns the entry `depth` accesses in the past (0 = most recent), or
// nil if the queue has not filled that far yet.
func (h *historyQueue) at(depth int) *historyEntry {
	if depth < 0 || depth >= h.size {
		return nil
	}
	// depth < size <= len and head < len, so one wrap-around suffices.
	idx := h.head - depth
	if idx < 0 {
		idx += len(h.entries)
	}
	e := &h.entries[idx]
	if !e.live {
		return nil
	}
	return e
}

// reset clears the queue (used when simulations reset at warm-up).
func (h *historyQueue) reset() {
	for i := range h.entries {
		h.entries[i] = historyEntry{}
	}
	h.head, h.size = 0, 0
}
