package core

import (
	"testing"

	"semloc/internal/cache"
	"semloc/internal/memmodel"
	"semloc/internal/prefetch"
	"semloc/internal/trace"
)

// testIssuer records real and shadow prefetches.
type testIssuer struct {
	issued  map[memmodel.Line]int
	shadows int
	free    int
}

func newTestIssuer() *testIssuer {
	return &testIssuer{issued: make(map[memmodel.Line]int), free: 4}
}

func (t *testIssuer) Prefetch(addr memmodel.Addr, now cache.Cycle) bool {
	t.issued[memmodel.LineOf(addr)]++
	return true
}

func (t *testIssuer) Shadow(addr memmodel.Addr) { t.shadows++ }

func (t *testIssuer) FreePrefetchSlots(now cache.Cycle) int { return t.free }

func TestConfigDefaultsValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	// Table 2 storage budget: ~31 kB.
	sz := cfg.StorageBytes()
	if sz < 28<<10 || sz > 36<<10 {
		t.Errorf("StorageBytes = %d, want ~31kB", sz)
	}
}

func TestConfigValidation(t *testing.T) {
	mutate := []func(*Config){
		func(c *Config) { c.CSTEntries = 0 },
		func(c *Config) { c.CSTEntries = 1000 }, // not a power of two
		func(c *Config) { c.CSTLinks = 0 },
		func(c *Config) { c.CSTLinks = 9 },
		func(c *Config) { c.ReducerEntries = 3 },
		func(c *Config) { c.HistoryDepth = 0 },
		func(c *Config) { c.QueueDepth = 0 },
		func(c *Config) { c.SampleDepths = []int{100} },
		func(c *Config) { c.SampleDepths = nil },
		func(c *Config) { c.Epsilon = 1.5 },
		func(c *Config) { c.MaxDegree = 0 },
		func(c *Config) { c.BlockShift = 1 },
		func(c *Config) { c.Reward.Peak = 0 },
	}
	for i, m := range mutate {
		cfg := DefaultConfig()
		m(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
}

// chaseAccess builds the access stream of a repeating pointer chase over
// the given block sequence: fixed PC, pointer-typed hints, Value carrying
// the next node's address (so AttrLastValue identifies the node).
func chaseAccess(blocks []int64, i int) *prefetch.Access {
	cur := blocks[i%len(blocks)]
	next := blocks[(i+1)%len(blocks)]
	addr := memmodel.Addr(cur << 6)
	return &prefetch.Access{
		PC:       0x400680,
		Addr:     addr,
		Line:     memmodel.LineOf(addr),
		Index:    uint64(i),
		Now:      cache.Cycle(i * 30),
		MissedL1: true,
		Value:    uint64(next << 6),
		Hints:    trace.SWHints{Valid: true, TypeID: 3, LinkOffset: 8, RefForm: trace.RefArrow},
	}
}

func TestLearnsRecurringChase(t *testing.T) {
	// A cyclic "linked list" of 64 scattered blocks (deltas within ±127).
	rng := memmodel.NewRNG(17)
	base := int64(1 << 20)
	blocks := make([]int64, 64)
	cur := base
	for i := range blocks {
		blocks[i] = cur
		cur += int64(rng.Intn(200) - 100)
		if cur < base-120 {
			cur = base
		}
	}
	p := MustNew(DefaultConfig())
	iss := newTestIssuer()
	const rounds = 400
	for i := 0; i < rounds*len(blocks); i++ {
		p.OnAccess(chaseAccess(blocks, i), iss)
	}
	m := p.Metrics()
	if m.Accesses != rounds*64 {
		t.Fatalf("Accesses = %d", m.Accesses)
	}
	if m.Predictions == 0 || m.RealPrefetches == 0 {
		t.Fatalf("no predictions issued: %+v", m)
	}
	if m.QueueHits == 0 {
		t.Fatalf("no queue hits: the prefetcher learned nothing")
	}
	hitRate := float64(m.QueueHits) / float64(m.Predictions)
	if hitRate < 0.15 {
		t.Errorf("queue hit rate = %.3f, want >= 0.15 on a perfectly recurring chase", hitRate)
	}
	// The hit-depth distribution should put real mass inside the reward
	// window (Figure 8's step at ~18).
	inWindow := m.HitDepths.Fraction(DefaultRewardConfig().Low, DefaultRewardConfig().High)
	if inWindow < 0.3 {
		t.Errorf("fraction of hits inside reward window = %.3f, want >= 0.3", inWindow)
	}
	if p.Accuracy() <= 0.0 {
		t.Errorf("policy accuracy = %.3f, want positive", p.Accuracy())
	}
}

func TestAdaptationActivatesAttributes(t *testing.T) {
	// A single load site touching many distinct nodes overloads the
	// default (PC+hints) context and must trigger attribute activation.
	rng := memmodel.NewRNG(23)
	base := int64(1 << 20)
	blocks := make([]int64, 64)
	cur := base
	for i := range blocks {
		blocks[i] = cur
		cur += int64(rng.Intn(100) + 1)
	}
	p := MustNew(DefaultConfig())
	iss := newTestIssuer()
	for i := 0; i < 200*len(blocks); i++ {
		p.OnAccess(chaseAccess(blocks, i), iss)
	}
	if p.Metrics().Activations == 0 {
		t.Error("expected reducer attribute activations on an overloaded context")
	}
}

func TestRandomStreamStaysQuiet(t *testing.T) {
	// On a non-recurring random stream the prefetcher must not flood
	// memory: accuracy collapses and the degree throttles.
	p := MustNew(DefaultConfig())
	iss := newTestIssuer()
	rng := memmodel.NewRNG(29)
	for i := 0; i < 20000; i++ {
		addr := memmodel.Addr(rng.Uint64() & 0x3fffffff)
		a := &prefetch.Access{
			PC: 0x400, Addr: addr, Line: memmodel.LineOf(addr),
			Index: uint64(i), MissedL1: true,
		}
		p.OnAccess(a, iss)
	}
	m := p.Metrics()
	real := float64(m.RealPrefetches)
	if real/float64(m.Accesses) > 0.05 {
		t.Errorf("random stream provoked %.2f real prefetches per access, want ~0 (scores must stay below threshold)", real/float64(m.Accesses))
	}
}

func TestShadowOnLowMSHRs(t *testing.T) {
	p := MustNew(DefaultConfig())
	iss := newTestIssuer()
	iss.free = 0 // prefetch path fully stressed
	blocks := []int64{100, 130, 90, 160, 75, 140, 110, 95}
	for i := 0; i < 200*len(blocks); i++ {
		p.OnAccess(chaseAccess(blocks, i), iss)
	}
	m := p.Metrics()
	if m.RealPrefetches != 0 {
		t.Errorf("RealPrefetches = %d with zero free MSHRs, want 0", m.RealPrefetches)
	}
	if m.ShadowPrefetches == 0 {
		t.Error("expected shadow operations under MSHR pressure")
	}
}

func TestDisableShadowCripplesLearning(t *testing.T) {
	// Without shadow operations nothing can earn the first positive
	// reward, so the score threshold is never crossed: the ablation shows
	// shadow prefetches are what bootstrap learning (§4.1).
	run := func(disable bool) (real, preds uint64) {
		cfg := DefaultConfig()
		cfg.DisableShadow = disable
		cfg.MSHRReserve = 0
		p := MustNew(cfg)
		iss := newTestIssuer()
		blocks := []int64{100, 130, 90, 160, 75, 140, 110, 95}
		for i := 0; i < 200*len(blocks); i++ {
			p.OnAccess(chaseAccess(blocks, i), iss)
		}
		m := p.Metrics()
		return m.RealPrefetches, m.Predictions
	}
	realOn, _ := run(false)
	realOff, predsOff := run(true)
	if realOn == 0 {
		t.Fatal("shadow-enabled run issued no real prefetches")
	}
	if realOff >= realOn/2 {
		t.Errorf("disabling shadows should cripple real prefetching: %d vs %d", realOff, realOn)
	}
	_ = predsOff
}

func TestResetMetrics(t *testing.T) {
	p := MustNew(DefaultConfig())
	iss := newTestIssuer()
	blocks := []int64{10, 40, 25, 60}
	for i := 0; i < 100; i++ {
		p.OnAccess(chaseAccess(blocks, i), iss)
	}
	if p.Metrics().Accesses == 0 {
		t.Fatal("no accesses recorded")
	}
	p.ResetMetrics()
	m := p.Metrics()
	if m.Accesses != 0 || m.Predictions != 0 || m.HitDepths.Total() != 0 {
		t.Errorf("metrics not reset: %+v", m)
	}
}

func TestBlockGranularity(t *testing.T) {
	// With a 256 B block, predictions land on 256 B-aligned addresses.
	cfg := DefaultConfig()
	cfg.BlockShift = 8
	p := MustNew(cfg)
	iss := newTestIssuer()
	blocks := []int64{100, 130, 90, 160, 75, 140, 110, 95}
	for i := 0; i < 200*len(blocks); i++ {
		cur := blocks[i%len(blocks)]
		next := blocks[(i+1)%len(blocks)]
		addr := memmodel.Addr(cur << 8)
		p.OnAccess(&prefetch.Access{
			PC: 0x400, Addr: addr, Line: memmodel.LineOf(addr),
			Index: uint64(i), MissedL1: true, Value: uint64(next << 8),
		}, iss)
	}
	for line := range iss.issued {
		if uint64(line.Base())%256 != 0 {
			t.Fatalf("prefetch %v not 256B-aligned", line.Base())
		}
	}
}

func TestNameAndInterfaces(t *testing.T) {
	p := MustNew(DefaultConfig())
	if p.Name() != "context" {
		t.Errorf("Name = %q", p.Name())
	}
	var _ prefetch.Prefetcher = p
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with invalid config should panic")
		}
	}()
	MustNew(Config{})
}
