// Package core implements the paper's contribution: the context-based
// memory prefetcher, which approximates semantic locality with a
// contextual-bandits reinforcement-learning loop (§4–§5).
//
// Three units operate on every demand access, mirroring Figure 6:
//
//   - The collection unit pushes the current context into a history queue
//     and associates sampled older contexts with the current address,
//     expanding the exploration space of the bandit.
//   - The prediction unit hashes the current context through the Reducer
//     (online feature selection) into the Context-States Table (CST),
//     and issues the highest-scoring candidate deltas as prefetches —
//     or, with probability ε, explores a random candidate as a shadow
//     prefetch.
//   - The feedback unit matches demand accesses against the prefetch
//     queue and applies the bell-shaped reward of Figure 5 to the
//     context→address association that made each prediction, closing the
//     reinforcement-learning loop. Expired predictions earn negative
//     rewards.
package core

import (
	"errors"
	"fmt"
)

// ErrBadConfig tags every configuration validation failure, so callers and
// the harness panic guard can classify MustNew panics with errors.Is.
var ErrBadConfig = errors.New("invalid prefetcher configuration")

// Config parameterizes the context prefetcher. The defaults reproduce the
// Table 2 budget (~31 kB of state).
type Config struct {
	// CSTEntries is the number of context-states-table entries (Table 2: 2K).
	CSTEntries int
	// CSTLinks is the number of (delta, score) pairs per CST entry (4).
	CSTLinks int
	// ReducerEntries sizes the feature-selection table (Table 2: 16K,
	// kept at 8x the CST size in the Figure 13 sweep).
	ReducerEntries int
	// HistoryDepth is the context history queue length (Table 2: 50).
	HistoryDepth int
	// QueueDepth is the prefetch queue length (Table 2: 128).
	QueueDepth int
	// SampleDepths are the history depths at which the collection unit
	// associates old contexts with the current address (depth d pairs the
	// context observed d+1 accesses ago with the current address). The
	// paper samples a subset of pairs instead of the full queue (§5); one
	// random depth is drawn per access. Depths must cover every residue of
	// small loop-body lengths — otherwise workloads whose loops issue k
	// memory accesses per iteration would only ever pair contexts across
	// streams — so the default is the dense range 1..48, spanning the
	// positive reward window.
	SampleDepths []int
	// Reward shapes the feedback function (Figure 5).
	Reward RewardConfig
	// Epsilon is the exploration rate of the ε-greedy policy.
	Epsilon float64
	// AdaptiveEpsilon scales exploration down as accuracy converges
	// (Tokic-style adaptation, §4.1).
	AdaptiveEpsilon bool
	// MaxDegree bounds the number of prefetches issued per access; the
	// effective degree is throttled by prediction accuracy (§5).
	MaxDegree int
	// MSHRReserve converts prefetches into shadow operations when fewer
	// than this many prefetch-request slots are free (§4.2's MSHR-pressure
	// throttle, applied to the resource prefetches actually occupy here).
	MSHRReserve int
	// ScoreThreshold is the minimum link score dispatched as a real
	// prefetch; lower-scoring candidates train as shadows.
	ScoreThreshold int8
	// BlockShift is log2 of the prefetcher's address granularity in bytes.
	// The paper operates on aligned blocks rather than words to avoid
	// thrashing its tables (§7.3); 6 matches the 64 B cache line.
	BlockShift uint
	// Policy selects the exploration strategy: the paper's ε-greedy
	// (default), or the softmax / UCB extensions (§8 future work).
	Policy PolicyKind
	// DisableReducer fixes the full attribute set (no feature selection);
	// ablation knob for the Reducer.
	DisableReducer bool
	// DisableShadow suppresses shadow prefetches; ablation knob.
	DisableShadow bool
	// Seed makes exploration deterministic.
	Seed uint64
}

func defaultSampleDepths() []int {
	out := make([]int, 0, 32)
	for d := 1; d <= 48; d++ {
		out = append(out, d)
	}
	return out
}

// DefaultConfig returns the configuration evaluated in the paper.
func DefaultConfig() Config {
	return Config{
		CSTEntries:      2048,
		CSTLinks:        4,
		ReducerEntries:  16384,
		HistoryDepth:    50,
		QueueDepth:      128,
		SampleDepths:    defaultSampleDepths(),
		Reward:          DefaultRewardConfig(),
		Epsilon:         0.05,
		AdaptiveEpsilon: true,
		MaxDegree:       8,
		MSHRReserve:     1,
		ScoreThreshold:  1,
		BlockShift:      6,
		Seed:            1,
	}
}

// Validate reports configuration errors; every failure wraps ErrBadConfig.
func (c Config) Validate() error {
	if c.CSTEntries <= 0 || c.CSTEntries&(c.CSTEntries-1) != 0 {
		return fmt.Errorf("core: CSTEntries must be a positive power of two, got %d: %w", c.CSTEntries, ErrBadConfig)
	}
	if c.CSTLinks <= 0 || c.CSTLinks > 8 {
		return fmt.Errorf("core: CSTLinks must be in 1..8, got %d: %w", c.CSTLinks, ErrBadConfig)
	}
	if c.ReducerEntries <= 0 || c.ReducerEntries&(c.ReducerEntries-1) != 0 {
		return fmt.Errorf("core: ReducerEntries must be a positive power of two, got %d: %w", c.ReducerEntries, ErrBadConfig)
	}
	if c.HistoryDepth <= 0 {
		return fmt.Errorf("core: HistoryDepth must be positive: %w", ErrBadConfig)
	}
	if c.QueueDepth <= 0 {
		return fmt.Errorf("core: QueueDepth must be positive: %w", ErrBadConfig)
	}
	for _, d := range c.SampleDepths {
		if d < 0 || d >= c.HistoryDepth {
			return fmt.Errorf("core: sample depth %d outside history depth %d: %w", d, c.HistoryDepth, ErrBadConfig)
		}
	}
	if len(c.SampleDepths) == 0 {
		return fmt.Errorf("core: at least one sample depth required: %w", ErrBadConfig)
	}
	if c.Epsilon < 0 || c.Epsilon > 1 {
		return fmt.Errorf("core: epsilon must be in [0,1], got %v: %w", c.Epsilon, ErrBadConfig)
	}
	if c.MaxDegree <= 0 {
		return fmt.Errorf("core: MaxDegree must be positive: %w", ErrBadConfig)
	}
	if c.BlockShift < 2 || c.BlockShift > 12 {
		return fmt.Errorf("core: BlockShift must be in 2..12, got %d: %w", c.BlockShift, ErrBadConfig)
	}
	if c.Policy >= policyKindCount {
		return fmt.Errorf("core: unknown policy %d: %w", c.Policy, ErrBadConfig)
	}
	if err := c.Reward.Validate(); err != nil {
		return fmt.Errorf("%w: %w", err, ErrBadConfig)
	}
	return nil
}

// StorageBytes estimates the hardware budget of the configuration, using
// the paper's accounting (CST entry: 1 B tag + links x (1 B delta + 1 B
// score); reducer entry: 2 B tag+bitmap; history: 19-bit contexts; queue:
// address/context pairs).
func (c Config) StorageBytes() int {
	cst := c.CSTEntries * (1 + 2*c.CSTLinks)
	// Reducer entry: 2-bit tag + 4-bit bitmap over the activatable
	// attributes = 6 bits, the paper's 12 kB at 16K entries.
	reducer := c.ReducerEntries * 6 / 8
	history := c.HistoryDepth * (19 + 64) / 8
	queue := c.QueueDepth * (64 + 19 + 8) / 8
	return cst + reducer + history + queue
}
