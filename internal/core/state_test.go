package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"semloc/internal/cache"
	"semloc/internal/memmodel"
	"semloc/internal/prefetch"
)

// recordingIssuer collects issued prefetch addresses in order, so two
// prefetchers can be compared decision-for-decision.
type recordingIssuer struct {
	prefetches []memmodel.Addr
	shadows    []memmodel.Addr
	free       int
}

func (r *recordingIssuer) Prefetch(addr memmodel.Addr, now cache.Cycle) bool {
	r.prefetches = append(r.prefetches, addr)
	return true
}

func (r *recordingIssuer) Shadow(addr memmodel.Addr) { r.shadows = append(r.shadows, addr) }

func (r *recordingIssuer) FreePrefetchSlots(now cache.Cycle) int { return r.free }

// driveState runs a deterministic synthetic access stream through p:
// a pointer-chased ring (learnable), interleaved with a strided scan and
// occasional noise, exercising the reducer, CST, history and queue.
func driveState(p *Prefetcher, start, n int, iss prefetch.Issuer) {
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	// Burn the generator up to `start` so a split drive (0..k, then k..n)
	// feeds both halves the same stream a straight 0..n drive would.
	for i := 0; i < start; i++ {
		next()
		next()
	}
	for i := start; i < n; i++ {
		var a prefetch.Access
		switch i % 3 {
		case 0: // pointer chase over a 64-node ring
			node := uint64(i/3) % 64
			a = prefetch.Access{
				PC:    0x4000,
				Addr:  memmodel.Addr(0x100000 + node*192),
				Value: 0x100000 + ((node+1)%64)*192,
			}
			a.Hints.Valid = true
			a.Hints.TypeID = 7
			a.Hints.LinkOffset = 8
		case 1: // strided scan
			a = prefetch.Access{PC: 0x5000, Addr: memmodel.Addr(0x800000 + uint64(i)*64)}
		default: // noise
			a = prefetch.Access{PC: 0x6000 + next()%4, Addr: memmodel.Addr(next() % (1 << 30))}
		}
		a.Index = uint64(i)
		a.BranchHist = uint16(next())
		p.OnAccess(&a, iss)
	}
}

func mustMarshal(t *testing.T, st *LearnerState) []byte {
	t.Helper()
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("marshaling learner state: %v", err)
	}
	return b
}

// TestStateRoundTripByteIdentical is the codec property test: saving a
// trained learner, marshaling, unmarshaling, restoring and saving again
// must produce byte-identical JSON — no float drift, no ordering drift.
func TestStateRoundTripByteIdentical(t *testing.T) {
	p := MustNew(DefaultConfig())
	iss := newTestIssuer()
	driveState(p, 0, 6000, iss)

	st := p.SaveState()
	b1 := mustMarshal(t, st)

	var decoded LearnerState
	if err := json.Unmarshal(b1, &decoded); err != nil {
		t.Fatalf("unmarshaling: %v", err)
	}
	restored, err := NewFromState(&decoded)
	if err != nil {
		t.Fatalf("restoring: %v", err)
	}
	b2 := mustMarshal(t, restored.SaveState())
	if !bytes.Equal(b1, b2) {
		t.Fatalf("state round trip drifted:\nfirst  (%d bytes)\nsecond (%d bytes)\nfirst:  %.300s\nsecond: %.300s",
			len(b1), len(b2), b1, b2)
	}
}

// TestStateRestoreBehaviourIdentical pins the warm-start contract: a
// restored learner must make exactly the decisions the original would have
// made on the remainder of the stream, and end in the same state.
func TestStateRestoreBehaviourIdentical(t *testing.T) {
	const split, total = 4000, 9000

	// Reference: one uninterrupted learner.
	ref := MustNew(DefaultConfig())
	refIss := newTestIssuer()
	driveState(ref, 0, split, refIss)
	refTail := &recordingIssuer{free: 4}
	driveState(ref, split, total, refTail)

	// Snapshotted: train to the split, save, restore, continue.
	orig := MustNew(DefaultConfig())
	driveState(orig, 0, split, newTestIssuer())
	b := mustMarshal(t, orig.SaveState())
	var st LearnerState
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatal(err)
	}
	restored, err := NewFromState(&st)
	if err != nil {
		t.Fatal(err)
	}
	resTail := &recordingIssuer{free: 4}
	driveState(restored, split, total, resTail)

	if len(refTail.prefetches) == 0 {
		t.Fatal("reference issued no prefetches on the tail; the stream is not exercising the learner")
	}
	if len(refTail.prefetches) != len(resTail.prefetches) {
		t.Fatalf("restored learner issued %d prefetches on the tail, reference %d",
			len(resTail.prefetches), len(refTail.prefetches))
	}
	for i := range refTail.prefetches {
		if refTail.prefetches[i] != resTail.prefetches[i] {
			t.Fatalf("tail prefetch %d: restored %#x, reference %#x",
				i, resTail.prefetches[i], refTail.prefetches[i])
		}
	}
	if len(refTail.shadows) != len(resTail.shadows) {
		t.Fatalf("restored learner issued %d shadows on the tail, reference %d",
			len(resTail.shadows), len(refTail.shadows))
	}

	refFinal := mustMarshal(t, ref.SaveState())
	resFinal := mustMarshal(t, restored.SaveState())
	if !bytes.Equal(refFinal, resFinal) {
		t.Fatal("final state after restored tail differs from the uninterrupted reference")
	}
}

// TestStateSnapshotIsolated: mutating the learner after SaveState must not
// change the captured state (the daemon snapshots then keeps serving).
func TestStateSnapshotIsolated(t *testing.T) {
	p := MustNew(DefaultConfig())
	driveState(p, 0, 3000, newTestIssuer())
	st := p.SaveState()
	b1 := mustMarshal(t, st)
	driveState(p, 3000, 6000, newTestIssuer())
	b2 := mustMarshal(t, st)
	if !bytes.Equal(b1, b2) {
		t.Fatal("continuing to train the learner mutated a previously captured state")
	}
}

func TestStateValidateRejectsCorrupt(t *testing.T) {
	fresh := func() *LearnerState {
		p := MustNew(DefaultConfig())
		driveState(p, 0, 2000, newTestIssuer())
		return p.SaveState()
	}
	cases := []struct {
		name   string
		mutate func(*LearnerState)
	}{
		{"schema", func(st *LearnerState) { st.Schema = 99 }},
		{"config", func(st *LearnerState) { st.Config.CSTEntries = 3 }},
		{"cst index order", func(st *LearnerState) {
			if len(st.CST) < 2 {
				panic("need 2 CST entries")
			}
			st.CST[0].Idx, st.CST[1].Idx = st.CST[1].Idx, st.CST[0].Idx
		}},
		{"cst index range", func(st *LearnerState) { st.CST[len(st.CST)-1].Idx = st.Config.CSTEntries }},
		{"link arity", func(st *LearnerState) { st.CST[0].Links = st.CST[0].Links[:1] }},
		{"history depth", func(st *LearnerState) { st.History.Entries = st.History.Entries[:3] }},
		{"queue head", func(st *LearnerState) { st.Queue.Head = st.Config.QueueDepth }},
		{"queue key range", func(st *LearnerState) { st.Queue.Entries[0].KeyIdx = -1 }},
		{"histogram", func(st *LearnerState) { st.Metrics.HitDepths = nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := fresh()
			tc.mutate(st)
			if _, err := NewFromState(st); err == nil {
				t.Fatalf("NewFromState accepted corrupt state (%s)", tc.name)
			}
		})
	}
	if _, err := NewFromState(nil); err == nil {
		t.Fatal("NewFromState accepted nil state")
	}
}
