package core

import (
	"testing"

	"semloc/internal/cache"
	"semloc/internal/memmodel"
	"semloc/internal/prefetch"
	"semloc/internal/trace"
)

// benchIssuer is a no-op issuer with a fixed number of free slots, so the
// benchmark exercises the full real-prefetch path without simulating a
// memory system.
type benchIssuer struct{ free int }

func (b *benchIssuer) Prefetch(addr memmodel.Addr, now cache.Cycle) bool { return true }
func (b *benchIssuer) Shadow(addr memmodel.Addr)                         {}
func (b *benchIssuer) FreePrefetchSlots(now cache.Cycle) int             { return b.free }

// benchStream pre-builds a recurring pointer-chase access stream (the
// regime where the queue fills, matches fire and predictions issue — the
// worst case for the per-access bookkeeping).
func benchStream(n int) []prefetch.Access {
	rng := memmodel.NewRNG(17)
	base := int64(1 << 20)
	blocks := make([]int64, 64)
	cur := base
	for i := range blocks {
		blocks[i] = cur
		cur += int64(rng.Intn(200) - 100)
		if cur < base-120 {
			cur = base
		}
	}
	out := make([]prefetch.Access, n)
	for i := range out {
		curB := blocks[i%len(blocks)]
		next := blocks[(i+1)%len(blocks)]
		addr := memmodel.Addr(curB << 6)
		out[i] = prefetch.Access{
			PC:       0x400680,
			Addr:     addr,
			Line:     memmodel.LineOf(addr),
			Index:    uint64(i),
			Now:      cache.Cycle(i * 30),
			MissedL1: true,
			Value:    uint64(next << 6),
			Hints:    trace.SWHints{Valid: true, TypeID: 3, LinkOffset: 8, RefForm: trace.RefArrow},
		}
	}
	return out
}

// BenchmarkOnAccess measures the prefetcher's per-demand-access cost on a
// learned recurring chase: every access pays context capture, two hash
// lookups, queue feedback, collection and prediction. The hot-path
// invariant (DESIGN.md, "Hot path & benchmarking") is 0 allocs/op.
func BenchmarkOnAccess(b *testing.B) {
	p := MustNew(DefaultConfig())
	iss := &benchIssuer{free: 4}
	stream := benchStream(4096)
	// Warm the tables so the steady state (queue full, scores converged) is
	// what gets measured.
	for i := range stream {
		p.OnAccess(&stream[i], iss)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.OnAccess(&stream[i%len(stream)], iss)
	}
}

// BenchmarkOnAccessRandom measures the untrained regime: a random stream
// where nearly every prediction misses and the queue churns.
func BenchmarkOnAccessRandom(b *testing.B) {
	p := MustNew(DefaultConfig())
	iss := &benchIssuer{free: 4}
	rng := memmodel.NewRNG(29)
	stream := make([]prefetch.Access, 4096)
	for i := range stream {
		addr := memmodel.Addr(rng.Uint64() & 0x3fffffff)
		stream[i] = prefetch.Access{
			PC: 0x400, Addr: addr, Line: memmodel.LineOf(addr),
			Index: uint64(i), MissedL1: true,
		}
	}
	for i := range stream {
		p.OnAccess(&stream[i], iss)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.OnAccess(&stream[i%len(stream)], iss)
	}
}
