package core

import (
	"testing"
	"testing/quick"
)

func TestAttrSetOps(t *testing.T) {
	s := DefaultAttrSet
	for _, id := range []AttrID{AttrPC, AttrTypeID, AttrLinkOffset, AttrRefForm} {
		if !s.Has(id) {
			t.Errorf("default set missing %v", id)
		}
	}
	for _, id := range activationOrder {
		if s.Has(id) {
			t.Errorf("default set should not contain %v", id)
		}
	}
	s2 := s.With(AttrReg)
	if !s2.Has(AttrReg) || s.Has(AttrReg) {
		t.Error("With should be non-mutating add")
	}
	if s2.Without(AttrReg) != s {
		t.Error("Without should undo With")
	}
	if DefaultAttrSet.Count() != 4 {
		t.Errorf("default count = %d", DefaultAttrSet.Count())
	}
	if FullAttrSet.Count() != int(NumAttrs) {
		t.Errorf("full count = %d", FullAttrSet.Count())
	}
}

func TestAttrStrings(t *testing.T) {
	names := map[AttrID]string{
		AttrPC: "pc", AttrTypeID: "type", AttrLinkOffset: "linkoff",
		AttrRefForm: "refform", AttrBranchHist: "branchhist",
		AttrReg: "reg", AttrLastValue: "lastvalue", AttrAddrHist: "addrhist",
	}
	for id, want := range names {
		if id.String() != want {
			t.Errorf("%d.String() = %q, want %q", id, id.String(), want)
		}
	}
	if AttrID(99).String() != "attr(?)" {
		t.Error("unknown attr string wrong")
	}
}

func TestHashContextSensitivity(t *testing.T) {
	var v1, v2 contextVector
	v1[AttrPC] = 0x400
	v2[AttrPC] = 0x404
	if hashContext(&v1, DefaultAttrSet) == hashContext(&v2, DefaultAttrSet) {
		t.Error("hash should differ for different PCs")
	}
	// Inactive attributes must not affect the hash.
	v3 := v1
	v3[AttrReg] = 999
	if hashContext(&v1, DefaultAttrSet) != hashContext(&v3, DefaultAttrSet) {
		t.Error("inactive attribute changed the hash")
	}
	if hashContext(&v1, FullAttrSet) == hashContext(&v3, FullAttrSet) {
		t.Error("active attribute did not change the hash")
	}
}

func TestReducerAllocatesDefault(t *testing.T) {
	r := newReducer(1024)
	e := r.lookup(0xdeadbeef)
	if e.active != DefaultAttrSet {
		t.Errorf("fresh reducer entry active = %v, want default", e.active)
	}
}

func TestReducerOverloadActivatesInOrder(t *testing.T) {
	r := newReducer(1024)
	e := r.lookup(0x1234)
	for i, id := range activationOrder {
		if !e.overload() {
			t.Fatalf("overload %d returned false", i)
		}
		if !e.active.Has(id) {
			t.Fatalf("activation %d should enable %v", i, id)
		}
	}
	if e.overload() {
		t.Error("overload with all attributes active should report false")
	}
	if e.active != FullAttrSet {
		t.Errorf("after all activations set = %v, want full", e.active)
	}
}

func TestReducerUnderloadReverses(t *testing.T) {
	r := newReducer(1024)
	e := r.lookup(0x1234)
	for e.overload() {
	}
	for i := len(activationOrder) - 1; i >= 0; i-- {
		if !e.underload() {
			t.Fatalf("underload at %d returned false", i)
		}
		if e.active.Has(activationOrder[i]) {
			t.Fatalf("underload should deactivate %v", activationOrder[i])
		}
	}
	if e.underload() {
		t.Error("underload below default set should report false")
	}
	if e.active != DefaultAttrSet {
		t.Errorf("set = %v, want default", e.active)
	}
}

func TestReducerStreaks(t *testing.T) {
	r := newReducer(64)
	e := r.lookup(1)
	for i := 0; i < 300; i++ {
		e.noteCold()
	}
	if e.coldStreak != 255 {
		t.Errorf("coldStreak = %d, want saturated 255", e.coldStreak)
	}
	e.noteWarm()
	if e.coldStreak != 254 {
		t.Errorf("noteWarm should decay streak, got %d", e.coldStreak)
	}
}

func TestReducerConflictReallocates(t *testing.T) {
	r := newReducer(4) // tiny: conflicts guaranteed
	e1 := r.lookup(0x1)
	e1.active = FullAttrSet
	// A colliding hash with a different tag evicts the entry.
	var found bool
	for h := uint64(2); h < 10000; h++ {
		e2 := r.lookup(h)
		if e2 == e1 && e2.active == DefaultAttrSet {
			found = true
			break
		}
	}
	if !found {
		t.Error("expected some conflicting lookup to reallocate an entry")
	}
}

func TestCSTEnsureAndLookup(t *testing.T) {
	c := newCST(64, 4)
	k := c.key(0x123456789)
	if c.lookup(k) != nil {
		t.Error("lookup before ensure should be nil")
	}
	e, warm := c.ensure(k)
	if warm {
		t.Error("first ensure should be cold")
	}
	if c.lookup(k) != e {
		t.Error("lookup after ensure should find the entry")
	}
	if _, warm := c.ensure(k); !warm {
		t.Error("second ensure should be warm")
	}
}

func TestCSTCandidateInsertReplace(t *testing.T) {
	c := newCST(16, 2)
	e, _ := c.ensure(c.key(1))
	e.addCandidate(5, true)
	e.addCandidate(7, true)
	if got := len(e.candidates(nil)); got != 2 {
		t.Fatalf("candidates = %d, want 2", got)
	}
	// Duplicate is a no-op.
	e.addCandidate(5, true)
	if got := len(e.candidates(nil)); got != 2 {
		t.Errorf("duplicate insert changed count: %d", got)
	}
	// A new candidate replaces a zero-score link and bumps churn.
	e.addCandidate(9, true)
	found9 := false
	for _, li := range e.candidates(nil) {
		if e.deltas[li] == 9 {
			found9 = true
		}
	}
	if !found9 {
		t.Error("new candidate not inserted over zero-score link")
	}
	if e.churn == 0 {
		t.Error("replacement should record churn")
	}
}

func TestCSTPositiveScoreProtected(t *testing.T) {
	c := newCST(16, 2)
	e, _ := c.ensure(c.key(1))
	e.addCandidate(5, true)
	e.addCandidate(7, true)
	e.reward(5, 10)
	e.reward(7, 10)
	e.addCandidate(9, true)
	for _, li := range e.candidates(nil) {
		if e.deltas[li] == 9 {
			t.Error("candidate with positive-score victims should be dropped")
		}
	}
	if e.churn == 0 {
		t.Error("dropped candidate should still record churn (overload signal)")
	}
}

func TestCSTBestAndReward(t *testing.T) {
	c := newCST(16, 4)
	e, _ := c.ensure(c.key(1))
	if e.best() != -1 {
		t.Error("best of empty entry should be -1")
	}
	e.addCandidate(3, true)
	e.addCandidate(-20, true)
	e.reward(-20, 50)
	best := e.best()
	if best < 0 || e.deltas[best] != -20 {
		t.Errorf("best should be the rewarded link")
	}
	e.reward(-20, -100)
	best = e.best()
	if e.deltas[best] != 3 {
		t.Errorf("after demotion best should change, got delta %d", e.deltas[best])
	}
	// Reward for an unknown delta is a no-op.
	e.reward(99, 100)
}

func TestCSTChurnDecay(t *testing.T) {
	c := newCST(16, 1)
	e, _ := c.ensure(c.key(1))
	for i := 0; i < 20; i++ {
		e.noteChurn()
	}
	if !e.overloaded(8) {
		t.Error("entry should report overload")
	}
	e.decayChurn()
	if e.churn != 10 {
		t.Errorf("decayed churn = %d, want 10", e.churn)
	}
}

func TestCSTReallocationClearsLinks(t *testing.T) {
	c := newCST(1, 2) // single entry: any two keys with different tags conflict
	k1 := c.key(1)
	e, _ := c.ensure(k1)
	e.addCandidate(5, true)
	var k2 cstKey
	for h := uint64(2); ; h++ {
		k2 = c.key(h)
		if k2.tag != k1.tag {
			break
		}
	}
	e2, warm := c.ensure(k2)
	if warm {
		t.Error("conflicting ensure should be cold")
	}
	if len(e2.candidates(nil)) != 0 {
		t.Error("reallocated entry should have no candidates")
	}
	if c.lookup(k1) != nil {
		t.Error("evicted context should no longer be resident")
	}
}

func TestCSTKeyDistribution(t *testing.T) {
	c := newCST(2048, 4)
	seen := make(map[int32]bool)
	// Aligned hash inputs (like PCs) must spread across the table.
	for i := uint64(0); i < 512; i++ {
		seen[c.key(i<<10).idx] = true
	}
	if len(seen) < 300 {
		t.Errorf("aligned keys hit only %d/512 distinct slots", len(seen))
	}
}

func TestHistoryQueue(t *testing.T) {
	h := newHistoryQueue(4)
	if h.at(0) != nil {
		t.Error("empty queue should return nil")
	}
	for i := 0; i < 3; i++ {
		h.push(cstKey{idx: int32(i)}, int64(100+i))
	}
	if e := h.at(0); e == nil || e.block != 102 {
		t.Errorf("at(0) = %+v, want block 102", e)
	}
	if e := h.at(2); e == nil || e.block != 100 {
		t.Errorf("at(2) = %+v, want block 100", e)
	}
	if h.at(3) != nil {
		t.Error("at(3) beyond size should be nil")
	}
	// Wrap-around.
	h.push(cstKey{idx: 3}, 103)
	h.push(cstKey{idx: 4}, 104)
	if e := h.at(3); e == nil || e.block != 101 {
		t.Errorf("after wrap at(3) = %+v, want block 101", e)
	}
	if h.at(4) != nil {
		t.Error("at(4) beyond depth should be nil")
	}
	h.reset()
	if h.at(0) != nil {
		t.Error("reset should clear entries")
	}
}

func TestHistoryQueueProperty(t *testing.T) {
	h := newHistoryQueue(8)
	var pushed []int64
	f := func(b int64) bool {
		h.push(cstKey{}, b)
		pushed = append(pushed, b)
		for d := 0; d < 8 && d < len(pushed); d++ {
			e := h.at(d)
			if e == nil || e.block != pushed[len(pushed)-1-d] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPrefetchQueueMatchAndDepth(t *testing.T) {
	q := newPrefetchQueue(8)
	q.push(42, cstKey{}, 0, 0, 10, true)
	var gotDepth int
	matches := 0
	q.match(42, 35, func(e *pfEntry, depth int) {
		matches++
		gotDepth = depth
	})
	if matches != 1 || gotDepth != 25 {
		t.Errorf("matches=%d depth=%d, want 1/25", matches, gotDepth)
	}
	// Entry is consumed: a second match finds nothing.
	q.match(42, 36, func(*pfEntry, int) { t.Error("hit entry matched again") })
}

func TestPrefetchQueueExpiry(t *testing.T) {
	q := newPrefetchQueue(2)
	q.push(1, cstKey{idx: 11}, -3, 0, 0, false)
	q.push(2, cstKey{}, 0, 0, 0, false)
	exp, has := q.push(3, cstKey{}, 0, 0, 0, false)
	if !has || exp.key.idx != 11 || exp.delta != -3 {
		t.Errorf("expected entry for block 1 to expire, got %+v/%v", exp, has)
	}
	// Hit entries do not expire as failures.
	q.match(2, 0, func(*pfEntry, int) {})
	if _, has := q.push(4, cstKey{}, 0, 0, 0, false); has {
		t.Error("hit entry must not be reported as expired")
	}
}

func TestPrefetchQueueContains(t *testing.T) {
	q := newPrefetchQueue(4)
	q.push(9, cstKey{}, 0, 0, 0, false)
	pred, issued := q.contains(9)
	if !pred || issued {
		t.Errorf("contains(9) = %v/%v, want predicted unissued", pred, issued)
	}
	q.push(9, cstKey{}, 0, 0, 0, true)
	if _, issued := q.contains(9); !issued {
		t.Error("issued duplicate should report issued")
	}
	if pred, _ := q.contains(1); pred {
		t.Error("contains of absent block should be false")
	}
}

func TestBanditAdaptiveEpsilon(t *testing.T) {
	b := newBandit(0.1, true, 7)
	for i := 0; i < 5000; i++ {
		b.feedback(true)
	}
	if b.epsilon >= 0.1*0.5 {
		t.Errorf("epsilon = %v should shrink after sustained accuracy", b.epsilon)
	}
	lowEps := b.epsilon
	for i := 0; i < 5000; i++ {
		b.feedback(false)
	}
	if b.epsilon <= lowEps {
		t.Error("epsilon should recover when accuracy collapses")
	}
}

func TestBanditFixedEpsilon(t *testing.T) {
	b := newBandit(0.1, false, 7)
	for i := 0; i < 1000; i++ {
		b.feedback(true)
	}
	if b.epsilon != 0.1 {
		t.Errorf("fixed epsilon changed to %v", b.epsilon)
	}
}

func TestBanditExploreRate(t *testing.T) {
	b := newBandit(0.25, false, 11)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if b.explore() {
			hits++
		}
	}
	rate := float64(hits) / float64(n)
	if rate < 0.22 || rate > 0.28 {
		t.Errorf("explore rate = %v, want ~0.25", rate)
	}
	zero := newBandit(0, false, 3)
	for i := 0; i < 100; i++ {
		if zero.explore() {
			t.Fatal("epsilon 0 must never explore")
		}
	}
}

func TestBanditDegree(t *testing.T) {
	b := newBandit(0.1, true, 5)
	for i := 0; i < 5000; i++ {
		b.feedback(false)
	}
	if d := b.degree(4); d != 1 {
		t.Errorf("degree at zero accuracy = %d, want 1", d)
	}
	for i := 0; i < 5000; i++ {
		b.feedback(true)
	}
	if d := b.degree(4); d != 4 {
		t.Errorf("degree at full accuracy = %d, want 4", d)
	}
}

func TestBanditPick(t *testing.T) {
	b := newBandit(0.5, false, 13)
	xs := []int{3, 5, 9}
	counts := map[int]int{}
	for i := 0; i < 3000; i++ {
		counts[b.pick(xs)]++
	}
	for _, x := range xs {
		if counts[x] < 700 {
			t.Errorf("pick(%d) count %d too low", x, counts[x])
		}
	}
}
