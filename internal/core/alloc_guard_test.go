//go:build !race

package core

import (
	"testing"
)

// TestOnAccessZeroAllocTelemetryDisabled is the in-tree half of the
// overhead contract (DESIGN.md §11): with no collector attached, the
// instrumented OnAccess path must not allocate — under every exploration
// policy, not just ε-greedy (softmax once broke this with a per-decision
// weights slice; its weights now live in bandit scratch). The Makefile's
// overhead-guard target enforces the same invariant via the benchmark
// (plus a ns/op ceiling); this test makes `go test ./...` catch an
// allocation regression without running benchmarks. Race builds are
// excluded: the detector's instrumentation perturbs allocation counts.
// TestLearnerHealthSnapshotZeroAlloc extends the contract to the
// introspection layer (DESIGN.md §18): the health counters are plain
// integer field updates on paths OnAccess already executes, and taking a
// LearnerHealth snapshot is a value copy plus one table scan — neither may
// allocate, so a serving daemon can export per-session health on every
// stats frame without GC pressure.
func TestLearnerHealthSnapshotZeroAlloc(t *testing.T) {
	p := MustNew(DefaultConfig())
	iss := &benchIssuer{free: 4}
	stream := benchStream(4096)
	for i := range stream {
		p.OnAccess(&stream[i], iss)
	}
	var sink LearnerHealth
	allocs := testing.AllocsPerRun(200, func() {
		sink = p.LearnerHealth()
	})
	if allocs != 0 {
		t.Fatalf("LearnerHealth allocates %.2f allocs/op, want 0", allocs)
	}
	if sink.Accesses == 0 {
		t.Fatal("snapshot empty after a warm stream")
	}
}

func TestOnAccessZeroAllocTelemetryDisabled(t *testing.T) {
	for _, kind := range []PolicyKind{PolicyEpsilonGreedy, PolicySoftmax, PolicyUCB} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Policy = kind
			p := MustNew(cfg)
			iss := &benchIssuer{free: 4}
			stream := benchStream(4096)
			for i := range stream {
				p.OnAccess(&stream[i], iss)
			}
			i := 0
			allocs := testing.AllocsPerRun(2000, func() {
				p.OnAccess(&stream[i%len(stream)], iss)
				i++
			})
			if allocs != 0 {
				t.Fatalf("OnAccess (%v, telemetry disabled) allocates %.2f allocs/op, want 0", kind, allocs)
			}
		})
	}
}
