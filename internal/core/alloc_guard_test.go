//go:build !race

package core

import (
	"testing"
)

// TestOnAccessZeroAllocTelemetryDisabled is the in-tree half of the
// overhead contract (DESIGN.md §11): with no collector attached, the
// instrumented OnAccess path must not allocate — under every exploration
// policy, not just ε-greedy (softmax once broke this with a per-decision
// weights slice; its weights now live in bandit scratch). The Makefile's
// overhead-guard target enforces the same invariant via the benchmark
// (plus a ns/op ceiling); this test makes `go test ./...` catch an
// allocation regression without running benchmarks. Race builds are
// excluded: the detector's instrumentation perturbs allocation counts.
func TestOnAccessZeroAllocTelemetryDisabled(t *testing.T) {
	for _, kind := range []PolicyKind{PolicyEpsilonGreedy, PolicySoftmax, PolicyUCB} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Policy = kind
			p := MustNew(cfg)
			iss := &benchIssuer{free: 4}
			stream := benchStream(4096)
			for i := range stream {
				p.OnAccess(&stream[i], iss)
			}
			i := 0
			allocs := testing.AllocsPerRun(2000, func() {
				p.OnAccess(&stream[i%len(stream)], iss)
				i++
			})
			if allocs != 0 {
				t.Fatalf("OnAccess (%v, telemetry disabled) allocates %.2f allocs/op, want 0", kind, allocs)
			}
		})
	}
}
