package core

import (
	"fmt"
	"math"
	"math/bits"
)

// PolicyKind selects the exploration/exploitation strategy used by the
// prediction unit. The paper evaluates ε-greedy with accuracy-adaptive ε
// and names better policies as future work ("policy improvement
// techniques in the spirit of policy search methods", §8); Softmax and
// UCB are the two classical contextual-bandit alternatives implemented
// here as extensions and compared in the ablation benches.
type PolicyKind uint8

// Exploration policies.
const (
	// PolicyEpsilonGreedy is the paper's policy: exploit the best-scoring
	// candidate, explore a uniformly random one with probability ε.
	PolicyEpsilonGreedy PolicyKind = iota
	// PolicySoftmax explores candidates with Boltzmann probabilities over
	// their scores: badly-scored candidates are tried rarely but never
	// abandoned, removing ε-greedy's uniform-exploration waste.
	PolicySoftmax
	// PolicyUCB explores the candidate with the highest upper confidence
	// bound (score plus an uncertainty bonus shrinking with trials),
	// trading the randomness of ε-greedy for systematic coverage.
	PolicyUCB
	policyKindCount
)

// String implements fmt.Stringer.
func (k PolicyKind) String() string {
	switch k {
	case PolicyEpsilonGreedy:
		return "egreedy"
	case PolicySoftmax:
		return "softmax"
	case PolicyUCB:
		return "ucb"
	default:
		return fmt.Sprintf("policy(%d)", uint8(k))
	}
}

// ParsePolicy converts a name to a PolicyKind.
func ParsePolicy(name string) (PolicyKind, error) {
	for k := PolicyKind(0); k < policyKindCount; k++ {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("core: unknown policy %q", name)
}

// exploreChoice selects the exploration candidate for the current entry
// according to the configured policy, or returns -1 when the policy
// decides not to explore this access. The entry must hold at least one
// candidate; the returned value is a link slot index.
func (b *bandit) exploreChoice(kind PolicyKind, entry *cstEntry) int {
	switch kind {
	case PolicySoftmax:
		return b.softmaxPick(entry)
	case PolicyUCB:
		return b.ucbPick(entry)
	default:
		if !b.explore() {
			return -1
		}
		return b.pickSlot(entry)
	}
}

// softmaxTemperature scales score differences; scores are int8, so a
// temperature of 24 makes a 24-point score gap an e-fold probability gap.
const softmaxTemperature = 24.0

// softmaxPick samples a candidate with Boltzmann probabilities over
// scores. The policy still honours the adaptive ε as an overall
// exploration gate so converged predictors stop spending shadow slots.
// Weights go into the bandit's scratch buffer: the hot path allocates
// nothing per decision.
func (b *bandit) softmaxPick(entry *cstEntry) int {
	if !b.explore() {
		return -1
	}
	var sum float64
	n := 0
	for m := entry.used; m != 0; m &= m - 1 {
		w := math.Exp(float64(entry.scores[bits.TrailingZeros8(m)]) / softmaxTemperature)
		b.weights[n] = w
		sum += w
		n++
	}
	target := b.float() * sum
	m := entry.used
	for i := 0; i < n; i++ {
		target -= b.weights[i]
		if target <= 0 {
			return bits.TrailingZeros8(m)
		}
		m &= m - 1
	}
	// Rounding fallthrough: the last candidate (highest used slot).
	return 7 - bits.LeadingZeros8(entry.used)
}

// ucbPick deterministically explores the candidate with the highest
// score-plus-uncertainty bonus. Trial counts are approximated by the
// (saturating) magnitude of accumulated feedback: links that have seen
// little feedback keep a large bonus.
//
// Exact value ties break toward the smaller delta (and, for planted
// duplicate deltas, the lower slot). The tie-break is defined on the
// candidate's value, never its slot position, so which link an eviction
// happened to place first cannot steer exploration: UCB runs are
// reproducible for a given learned state regardless of insertion order.
func (b *bandit) ucbPick(entry *cstEntry) int {
	best, bestV := -1, math.Inf(-1)
	var bestDelta int8
	for m := entry.used; m != 0; m &= m - 1 {
		li := bits.TrailingZeros8(m)
		score := entry.scores[li]
		// |score| grows with feedback volume; the bonus shrinks with it.
		trials := 1 + math.Abs(float64(score))
		v := float64(score) + ucbC*math.Sqrt(math.Log(float64(1+entry.trials))/trials)
		if v > bestV || (v == bestV && entry.deltas[li] < bestDelta) {
			best, bestV, bestDelta = li, v, entry.deltas[li]
		}
	}
	return best
}

// ucbC is the UCB exploration constant, scaled to the int8 score range.
const ucbC = 12.0

// float returns a uniform value in [0, 1).
func (b *bandit) float() float64 {
	return float64(b.next()>>11) / float64(1<<53)
}
