package core

import (
	"fmt"
	"sort"
)

// Learner introspection (DESIGN.md §18): a JSON-friendly snapshot of how
// the RL machinery is doing — the prefetch outcome taxonomy, the
// explore/exploit split, the reward-sign mix, and CST occupancy/churn —
// plus a live "explain" view of the hottest learned contexts with their
// candidate score tables. Everything here reads state the hot path already
// maintains; building a snapshot costs one CST scan (the same amortized
// cost as Inspect) and nothing on the access path.

// LearnerHealth is the learning-health snapshot. Counters are cumulative
// since the last metrics reset (the warm-up boundary in simulations, the
// session start in prefetchd); occupancy fields are point-in-time.
type LearnerHealth struct {
	// Accesses, Predictions, RealPrefetches, ShadowPrefetches, QueueHits
	// mirror the headline Metrics counters for context.
	Accesses         uint64 `json:"accesses"`
	Predictions      uint64 `json:"predictions"`
	RealPrefetches   uint64 `json:"real_prefetches"`
	ShadowPrefetches uint64 `json:"shadow_prefetches"`
	QueueHits        uint64 `json:"queue_hits"`

	// Outcome taxonomy of dispatched prefetches (see Metrics): accurate +
	// late + evicted + useless == real_prefetches + carried.
	OutcomeAccurate uint64 `json:"outcome_accurate"`
	OutcomeLate     uint64 `json:"outcome_late"`
	OutcomeEvicted  uint64 `json:"outcome_evicted"`
	OutcomeUseless  uint64 `json:"outcome_useless"`
	OutcomeCarried  uint64 `json:"outcome_carried,omitempty"`

	// Exploration health: explore/exploit decision counts, threshold
	// suppressions, and the current exploration rate and accuracy
	// estimate.
	Explores   uint64  `json:"explores"`
	Exploits   uint64  `json:"exploits"`
	Suppressed uint64  `json:"suppressed"`
	Epsilon    float64 `json:"epsilon"`
	Accuracy   float64 `json:"accuracy"`

	// Reward-sign mix across queue-hit rewards (real and shadow alike).
	PosRewards  uint64 `json:"pos_rewards"`
	NegRewards  uint64 `json:"neg_rewards"`
	ZeroRewards uint64 `json:"zero_rewards"`

	// CST candidate-collection churn: slot fills, evictions of unprotected
	// links, and rejected inserts against protected victims.
	CSTInsertions   uint64 `json:"cst_insertions"`
	CSTReplacements uint64 `json:"cst_replacements"`
	CSTRejects      uint64 `json:"cst_rejects"`

	// CST occupancy and score distribution (point-in-time, from Inspect).
	CSTEntries     int     `json:"cst_entries"`
	CSTCapacity    int     `json:"cst_capacity"`
	CSTLinks       int     `json:"cst_links"`
	PositiveLinks  int     `json:"positive_links"`
	SaturatedLinks int     `json:"saturated_links"`
	MeanScore      float64 `json:"mean_score"`
}

// LearnerHealth builds the learning-health snapshot. Like Inspect it scans
// the CST once, but unlike Inspect it allocates nothing (the delta ranking
// is the allocating part and health does not need it), so a serving daemon
// can attach it to every stats frame without GC pressure; call it at
// interval boundaries, not per access.
func (p *Prefetcher) LearnerHealth() LearnerHealth {
	m := p.Metrics()
	var entries, links, positive, saturated, scoreSum int
	for i := range p.table.entries {
		e := &p.table.entries[i]
		if !e.valid {
			continue
		}
		for li := 0; li < int(e.links); li++ {
			if !e.isUsed(li) {
				continue
			}
			links++
			scoreSum += int(e.scores[li])
			if e.scores[li] > 0 {
				positive++
			}
			if e.scores[li] == 127 {
				saturated++
			}
		}
		if e.n > 0 {
			entries++
		}
	}
	meanScore := 0.0
	if links > 0 {
		meanScore = float64(scoreSum) / float64(links)
	}
	return LearnerHealth{
		Accesses:         m.Accesses,
		Predictions:      m.Predictions,
		RealPrefetches:   m.RealPrefetches,
		ShadowPrefetches: m.ShadowPrefetches,
		QueueHits:        m.QueueHits,
		OutcomeAccurate:  m.OutcomeAccurate,
		OutcomeLate:      m.OutcomeLate,
		OutcomeEvicted:   m.OutcomeEvicted,
		OutcomeUseless:   m.OutcomeUseless,
		OutcomeCarried:   m.OutcomeCarried,
		Explores:         m.Explores,
		Exploits:         m.Exploits,
		Suppressed:       m.Suppressed,
		Epsilon:          p.policy.epsilon,
		Accuracy:         p.policy.accuracy,
		PosRewards:       m.PosRewards,
		NegRewards:       m.NegRewards,
		ZeroRewards:      m.ZeroRewards,
		CSTInsertions:    m.CSTInsertions,
		CSTReplacements:  m.CSTReplacements,
		CSTRejects:       m.CSTRejects,
		CSTEntries:       entries,
		CSTCapacity:      p.cfg.CSTEntries,
		CSTLinks:         links,
		PositiveLinks:    positive,
		SaturatedLinks:   saturated,
		MeanScore:        meanScore,
	}
}

// Anomaly-check floors. The thresholds are deliberately conservative: the
// check is a regression gate, so it must stay quiet on short smokes and
// healthy convergence and only fire on pathologies that persist at volume.
const (
	// anomalyMinAccesses gates both checks: below this the learner has not
	// had a fair chance to learn anything.
	anomalyMinAccesses = 50000
	// anomalyMinIssued gates the stalled-learning check: the learner must
	// actually be spending memory traffic before "nothing lands" is a bug.
	anomalyMinIssued = 1000
	// anomalyMinChurn is the replacement volume floor for the churn-storm
	// check.
	anomalyMinChurn = 10000
)

// CheckAnomalies inspects a health snapshot for the two learning
// pathologies the introspection layer is built to catch, and additionally
// re-asserts the outcome count-match invariant. It returns nil for a
// healthy (or merely young) learner.
//
//   - Stalled learning: the learner issues real prefetches at volume but
//     none ever lands accurately and no link has accumulated positive
//     reward — it is spending traffic without learning.
//   - Churn storm: candidate replacements dominate insertions by an order
//     of magnitude while almost no occupied entry holds a positive link —
//     contexts are thrashing through the table faster than rewards can
//     protect them.
func (h *LearnerHealth) CheckAnomalies() error {
	m := Metrics{
		RealPrefetches:  h.RealPrefetches,
		OutcomeAccurate: h.OutcomeAccurate,
		OutcomeLate:     h.OutcomeLate,
		OutcomeEvicted:  h.OutcomeEvicted,
		OutcomeUseless:  h.OutcomeUseless,
		OutcomeCarried:  h.OutcomeCarried,
	}
	if err := m.CheckOutcomes(); err != nil {
		return err
	}
	if h.Accesses < anomalyMinAccesses {
		return nil
	}
	if h.RealPrefetches >= anomalyMinIssued && h.OutcomeAccurate == 0 && h.PositiveLinks == 0 {
		return fmt.Errorf("core: stalled learning: %d real prefetches over %d accesses with zero accurate outcomes and zero positive links",
			h.RealPrefetches, h.Accesses)
	}
	if h.CSTReplacements >= anomalyMinChurn &&
		h.CSTReplacements > 10*h.CSTInsertions &&
		h.PositiveLinks*4 < h.CSTEntries {
		return fmt.Errorf("core: churn storm: %d replacements vs %d insertions with only %d positive links across %d occupied entries",
			h.CSTReplacements, h.CSTInsertions, h.PositiveLinks, h.CSTEntries)
	}
	return nil
}

// LinkExplain is one candidate link in a context's score table, in
// exploitation-rank order (best first).
type LinkExplain struct {
	Delta int8 `json:"delta"`
	Score int8 `json:"score"`
}

// ContextExplain is the live state of one learned context: its packed
// identity (the same value decision events carry), how often the
// prediction unit consulted it, its recent candidate churn, and its
// candidate score table best-first.
type ContextExplain struct {
	Context uint64        `json:"context"`
	Trials  int           `json:"trials"`
	Churn   int           `json:"churn"`
	Links   []LinkExplain `json:"links"`
}

// ExplainTopContexts returns the k hottest learned contexts — ranked by
// prediction trials, table index breaking ties — each with its candidate
// score table in exploitation order. It scans the CST once; k caps the
// result, not the scan.
func (p *Prefetcher) ExplainTopContexts(k int) []ContextExplain {
	if k <= 0 {
		return nil
	}
	type hot struct {
		idx    int32
		trials uint16
	}
	var hots []hot
	for i := range p.table.entries {
		e := &p.table.entries[i]
		if e.valid && e.n > 0 {
			hots = append(hots, hot{idx: int32(i), trials: e.trials})
		}
	}
	sort.Slice(hots, func(i, j int) bool {
		if hots[i].trials != hots[j].trials {
			return hots[i].trials > hots[j].trials
		}
		return hots[i].idx < hots[j].idx
	})
	if len(hots) > k {
		hots = hots[:k]
	}
	out := make([]ContextExplain, 0, len(hots))
	for _, h := range hots {
		e := &p.table.entries[h.idx]
		ce := ContextExplain{
			Context: contextID(cstKey{idx: h.idx, tag: e.tag}),
			Trials:  int(e.trials),
			Churn:   int(e.churn),
			Links:   make([]LinkExplain, 0, int(e.n)),
		}
		for j := 0; j < int(e.n); j++ {
			s := e.order[j]
			ce.Links = append(ce.Links, LinkExplain{Delta: e.deltas[s], Score: e.scores[s]})
		}
		out = append(out, ce)
	}
	return out
}
