package core

import (
	"fmt"
)

// Learner-state serialization. LearnerState is the complete mutable state
// of a context prefetcher — configuration, learned tables (Reducer, CST),
// the collection/feedback queues, the policy and machine registers, and
// the counters — in a JSON-friendly shape. It exists so a serving daemon
// can snapshot a live learner and warm-start an identical one after a
// restart: a prefetcher restored from a state behaves bit-identically to
// the one that saved it (the chaos tests in internal/serve and the
// property tests here rely on that).
//
// Determinism contract: the encoding uses only slices ordered by table
// index (never maps), so marshaling is deterministic and
// save → marshal → unmarshal → restore → save → marshal yields
// byte-identical output. Tables are stored sparsely (valid entries only,
// each tagged with its index); the ring buffers (history, prefetch queue)
// are stored densely because slot positions are state.

// StateSchema versions the LearnerState encoding.
const StateSchema = 1

// LearnerState is the serializable snapshot of a Prefetcher.
type LearnerState struct {
	Schema int    `json:"schema"`
	Config Config `json:"config"`
	// Index is the demand-access counter.
	Index uint64 `json:"index"`
	// Metrics carries the counters, including the hit-depth histogram.
	Metrics Metrics `json:"metrics"`
	// Policy is the bandit state.
	Policy PolicyState `json:"policy"`
	// Machine holds the hardware attribute registers.
	Machine MachineRegs `json:"machine"`
	// Reducer and CST are the learned tables, sparse by ascending index.
	Reducer []ReducerEntryState `json:"reducer"`
	CST     []CSTEntryState     `json:"cst"`
	// History and Queue are the collection/feedback rings, dense.
	History HistoryState `json:"history"`
	Queue   QueueState   `json:"queue"`
}

// PolicyState serializes the bandit.
type PolicyState struct {
	Epsilon  float64 `json:"epsilon"`
	Base     float64 `json:"base"`
	Accuracy float64 `json:"accuracy"`
	RNG      uint64  `json:"rng"`
}

// MachineRegs serializes the machineState attribute registers.
type MachineRegs struct {
	LastLines [2]uint64 `json:"last_lines"`
	LastValue uint64    `json:"last_value"`
}

// ReducerEntryState is one valid reducer entry.
type ReducerEntryState struct {
	Idx        int   `json:"idx"`
	Tag        uint8 `json:"tag"`
	Active     uint8 `json:"active"`
	ColdStreak uint8 `json:"cold_streak"`
}

// CSTEntryState is one valid CST entry; Links is always CSTLinks long so
// link positions (which candidate indexing depends on) survive the trip.
type CSTEntryState struct {
	Idx    int         `json:"idx"`
	Tag    uint8       `json:"tag"`
	Trials uint16      `json:"trials"`
	Churn  uint8       `json:"churn"`
	Links  []LinkState `json:"links"`
}

// LinkState is one (delta, score) link slot.
type LinkState struct {
	Delta int8 `json:"delta"`
	Score int8 `json:"score"`
	Used  bool `json:"used"`
}

// HistoryState is the dense history ring.
type HistoryState struct {
	Head    int                 `json:"head"`
	Size    int                 `json:"size"`
	Entries []HistoryEntryState `json:"entries"`
}

// HistoryEntryState is one history slot.
type HistoryEntryState struct {
	KeyIdx int   `json:"key_idx"`
	KeyTag uint8 `json:"key_tag"`
	Block  int64 `json:"block"`
	Live   bool  `json:"live"`
}

// QueueState is the dense prefetch-queue ring; bucket chains are an index
// over this state and are rebuilt on restore.
type QueueState struct {
	Head    int            `json:"head"`
	Size    int            `json:"size"`
	Entries []PFEntryState `json:"entries"`
}

// PFEntryState is one prefetch-queue slot.
type PFEntryState struct {
	Block  int64  `json:"block"`
	KeyIdx int    `json:"key_idx"`
	KeyTag uint8  `json:"key_tag"`
	Delta  int8   `json:"delta"`
	Slot   uint8  `json:"slot,omitempty"`
	Index  uint64 `json:"index"`
	Issued bool   `json:"issued"`
	Hit    bool   `json:"hit"`
	Live   bool   `json:"live"`
}

// SaveState captures the complete mutable state of the prefetcher. The
// caller must ensure no concurrent OnAccess (the prefetcher itself is not
// goroutine-safe, so any serializing caller already does).
func (p *Prefetcher) SaveState() *LearnerState {
	metrics := p.metrics
	if metrics.HitDepths != nil {
		metrics.HitDepths = metrics.HitDepths.Clone()
	}
	st := &LearnerState{
		Schema:  StateSchema,
		Config:  p.cfg,
		Index:   p.index,
		Metrics: metrics,
		Policy: PolicyState{
			Epsilon:  p.policy.epsilon,
			Base:     p.policy.base,
			Accuracy: p.policy.accuracy,
			RNG:      p.policy.rng,
		},
		Machine: MachineRegs{
			LastLines: p.machine.lastLines,
			LastValue: p.machine.lastValue,
		},
	}
	for i := range p.reducer.entries {
		e := &p.reducer.entries[i]
		if !e.valid {
			continue
		}
		st.Reducer = append(st.Reducer, ReducerEntryState{
			Idx: i, Tag: e.tag, Active: uint8(e.active), ColdStreak: e.coldStreak,
		})
	}
	for i := range p.table.entries {
		e := &p.table.entries[i]
		if !e.valid {
			continue
		}
		es := CSTEntryState{Idx: i, Tag: e.tag, Trials: e.trials, Churn: e.churn,
			Links: make([]LinkState, int(e.links))}
		for li := 0; li < int(e.links); li++ {
			es.Links[li] = LinkState{Delta: e.deltas[li], Score: e.scores[li], Used: e.isUsed(li)}
		}
		st.CST = append(st.CST, es)
	}
	st.History = HistoryState{
		Head: p.history.head, Size: p.history.size,
		Entries: make([]HistoryEntryState, len(p.history.entries)),
	}
	for i, e := range p.history.entries {
		st.History.Entries[i] = HistoryEntryState{
			KeyIdx: int(e.key.idx), KeyTag: e.key.tag, Block: e.block, Live: e.live,
		}
	}
	st.Queue = QueueState{
		Head: p.queue.head, Size: p.queue.size,
		Entries: make([]PFEntryState, len(p.queue.entries)),
	}
	for i, e := range p.queue.entries {
		st.Queue.Entries[i] = PFEntryState{
			Block: e.block, KeyIdx: int(e.key.idx), KeyTag: e.key.tag, Delta: e.delta, Slot: e.slot,
			Index: e.index, Issued: e.issued, Hit: e.hit, Live: e.live,
		}
	}
	return st
}

// Validate checks the structural invariants a state must satisfy before it
// can be restored. Every failure wraps ErrBadConfig so callers can
// distinguish corrupt state from I/O errors.
func (st *LearnerState) Validate() error {
	if st == nil {
		return fmt.Errorf("core: nil learner state: %w", ErrBadConfig)
	}
	if st.Schema != StateSchema {
		return fmt.Errorf("core: learner state schema %d, want %d: %w", st.Schema, StateSchema, ErrBadConfig)
	}
	if err := st.Config.Validate(); err != nil {
		return err
	}
	prev := -1
	for _, e := range st.Reducer {
		if e.Idx <= prev || e.Idx >= st.Config.ReducerEntries {
			return fmt.Errorf("core: reducer state index %d out of order or range: %w", e.Idx, ErrBadConfig)
		}
		prev = e.Idx
	}
	prev = -1
	for _, e := range st.CST {
		if e.Idx <= prev || e.Idx >= st.Config.CSTEntries {
			return fmt.Errorf("core: CST state index %d out of order or range: %w", e.Idx, ErrBadConfig)
		}
		prev = e.Idx
		if len(e.Links) != st.Config.CSTLinks {
			return fmt.Errorf("core: CST state entry %d has %d links, want %d: %w",
				e.Idx, len(e.Links), st.Config.CSTLinks, ErrBadConfig)
		}
	}
	if len(st.History.Entries) != st.Config.HistoryDepth ||
		st.History.Head < 0 || st.History.Head >= st.Config.HistoryDepth ||
		st.History.Size < 0 || st.History.Size > st.Config.HistoryDepth {
		return fmt.Errorf("core: history state inconsistent with depth %d: %w", st.Config.HistoryDepth, ErrBadConfig)
	}
	if len(st.Queue.Entries) != st.Config.QueueDepth ||
		st.Queue.Head < 0 || st.Queue.Head >= st.Config.QueueDepth ||
		st.Queue.Size < 0 || st.Queue.Size > st.Config.QueueDepth {
		return fmt.Errorf("core: queue state inconsistent with depth %d: %w", st.Config.QueueDepth, ErrBadConfig)
	}
	for _, e := range st.Queue.Entries {
		if e.KeyIdx < 0 || e.KeyIdx >= st.Config.CSTEntries {
			return fmt.Errorf("core: queue state key index %d out of range: %w", e.KeyIdx, ErrBadConfig)
		}
	}
	if st.Metrics.HitDepths == nil {
		return fmt.Errorf("core: learner state missing hit-depth histogram: %w", ErrBadConfig)
	}
	return nil
}

// NewFromState reconstructs a prefetcher from a saved state. The result is
// behaviourally identical to the prefetcher that produced the state: the
// same future access stream yields the same predictions, metrics and
// further saved states.
func NewFromState(st *LearnerState) (*Prefetcher, error) {
	if err := st.Validate(); err != nil {
		return nil, err
	}
	p, err := New(st.Config)
	if err != nil {
		return nil, err
	}
	p.index = st.Index
	p.metrics = st.Metrics
	p.metrics.HitDepths = st.Metrics.HitDepths.Clone()
	// OutcomeUseless is snapshot-only (see Metrics): the live struct keeps
	// it zero and the accessor fills it from the recomputed pending count.
	p.metrics.OutcomeUseless = 0
	p.policy.epsilon = st.Policy.Epsilon
	p.policy.base = st.Policy.Base
	p.policy.accuracy = st.Policy.Accuracy
	p.policy.rng = st.Policy.RNG
	p.machine.lastLines = st.Machine.LastLines
	p.machine.lastValue = st.Machine.LastValue
	for _, e := range st.Reducer {
		p.reducer.entries[e.Idx] = reducerEntry{
			tag: e.Tag, active: AttrSet(e.Active), coldStreak: e.ColdStreak, valid: true,
		}
	}
	for _, e := range st.CST {
		dst := &p.table.entries[e.Idx]
		dst.tag = e.Tag
		dst.valid = true
		dst.trials = e.Trials
		dst.churn = e.Churn
		for li, l := range e.Links {
			dst.deltas[li] = l.Delta
			dst.scores[li] = l.Score
			if l.Used {
				dst.used |= 1 << uint(li)
			}
		}
		dst.rebuildOrder()
	}
	p.history.head = st.History.Head
	p.history.size = st.History.Size
	for i, e := range st.History.Entries {
		p.history.entries[i] = historyEntry{
			key: cstKey{idx: int32(e.KeyIdx), tag: e.KeyTag}, block: e.Block, live: e.Live,
		}
	}
	p.queue.head = st.Queue.Head
	p.queue.size = st.Queue.Size
	for i, e := range st.Queue.Entries {
		p.queue.entries[i] = pfEntry{
			block: e.Block, key: cstKey{idx: int32(e.KeyIdx), tag: e.KeyTag}, delta: e.Delta,
			slot: e.Slot, index: e.Index, issued: e.Issued, hit: e.Hit, live: e.Live, next: nilIdx,
		}
	}
	// Rebuild the block→entry bucket index: link live, unhit slots in
	// ascending slot order, reproducing the chains the saving queue held.
	// The pending-issued count (which the Metrics accessor reports as
	// OutcomeUseless) is derived from the same population, so recompute it
	// here rather than serializing it: a restored prefetcher's taxonomy
	// books balance exactly like the saver's did.
	p.pendingIssued = 0
	for i := range p.queue.entries {
		if p.queue.entries[i].live && !p.queue.entries[i].hit {
			p.queue.link(p.queue.bucket(p.queue.entries[i].block), int32(i))
			if p.queue.entries[i].issued {
				p.pendingIssued++
			}
		}
	}
	return p, nil
}
