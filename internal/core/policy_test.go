package core

import (
	"testing"

	"semloc/internal/memmodel"
)

func TestPolicyKindStrings(t *testing.T) {
	cases := map[PolicyKind]string{
		PolicyEpsilonGreedy: "egreedy",
		PolicySoftmax:       "softmax",
		PolicyUCB:           "ucb",
		PolicyKind(99):      "policy(99)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for _, name := range []string{"egreedy", "softmax", "ucb"} {
		k, err := ParsePolicy(name)
		if err != nil {
			t.Fatalf("ParsePolicy(%q): %v", name, err)
		}
		if k.String() != name {
			t.Errorf("round trip failed for %q", name)
		}
	}
	if _, err := ParsePolicy("thompson"); err == nil {
		t.Error("expected error for unknown policy")
	}
}

func TestConfigRejectsUnknownPolicy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = PolicyKind(99)
	if _, err := New(cfg); err == nil {
		t.Error("expected validation error for unknown policy")
	}
}

// policyEntry builds a CST entry with the given (delta, score) links.
func policyEntry(scores ...int8) (*cstEntry, []int) {
	c := newCST(4, len(scores))
	e, _ := c.ensure(c.key(1))
	for i, s := range scores {
		e.addCandidate(int8(i+1), true)
		e.reward(int8(i+1), s)
	}
	return e, e.candidates(nil)
}

func TestSoftmaxPrefersHighScores(t *testing.T) {
	e, cands := policyEntry(40, -40)
	e.trials = 100
	b := newBandit(1.0, false, 7) // always explore: isolate the weighting
	counts := map[int]int{}
	for i := 0; i < 5000; i++ {
		li := b.exploreChoice(PolicySoftmax, e)
		if li < 0 {
			t.Fatal("softmax with epsilon 1 must always pick")
		}
		counts[li]++
	}
	hi, lo := counts[cands[0]], counts[cands[1]]
	if hi < lo*3 {
		t.Errorf("softmax should prefer the high-score link: hi=%d lo=%d", hi, lo)
	}
	if lo == 0 {
		t.Error("softmax must never fully abandon a candidate at this score gap")
	}
}

func TestSoftmaxHonoursEpsilonGate(t *testing.T) {
	e, _ := policyEntry(10, 20)
	b := newBandit(0, false, 7)
	for i := 0; i < 100; i++ {
		if b.exploreChoice(PolicySoftmax, e) >= 0 {
			t.Fatal("epsilon 0 must suppress softmax exploration")
		}
	}
}

func TestUCBPrefersUntriedCandidates(t *testing.T) {
	// An established link vs a fresh link: the fresh link's uncertainty
	// bonus must win until it accumulates evidence.
	e, cands := policyEntry(20, 0)
	e.trials = 10000
	b := newBandit(0.05, false, 7)
	li := b.exploreChoice(PolicyUCB, e)
	if li != cands[1] {
		t.Errorf("UCB should explore the untried candidate, picked link %d", li)
	}
	// Once the fresh link accumulates negative evidence, the strong link
	// dominates.
	e.reward(2, -120)
	li = b.exploreChoice(PolicyUCB, e)
	if li != cands[0] {
		t.Errorf("UCB should settle on the high-score candidate, picked %d", li)
	}
}

// TestUCBTieBreakDeterministic pins the tie rule: on exactly equal UCB
// values the smaller delta wins, whatever slot order eviction history left
// the candidates in. Two entries holding the same (delta, score) pairs in
// opposite slot orders must explore the same delta.
func TestUCBTieBreakDeterministic(t *testing.T) {
	b := newBandit(0.05, false, 7)
	forward, backward := MustNew(DefaultConfig()), MustNew(DefaultConfig())
	plant(forward, 0,
		link{delta: -4, score: 10, used: true},
		link{delta: 6, score: 10, used: true})
	plant(backward, 0,
		link{delta: 6, score: 10, used: true},
		link{delta: -4, score: 10, used: true})
	ef, eb := &forward.table.entries[0], &backward.table.entries[0]
	ef.trials, eb.trials = 100, 100
	lf := b.exploreChoice(PolicyUCB, ef)
	lb := b.exploreChoice(PolicyUCB, eb)
	if ef.deltas[lf] != -4 || eb.deltas[lb] != -4 {
		t.Errorf("tied UCB values must break toward the smaller delta: got %d and %d",
			ef.deltas[lf], eb.deltas[lb])
	}
}

func TestEpsilonGreedyChoiceDistribution(t *testing.T) {
	e, _ := policyEntry(50, 40, 30)
	b := newBandit(1.0, false, 11)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		li := b.exploreChoice(PolicyEpsilonGreedy, e)
		if li < 0 {
			t.Fatal("epsilon 1 must always explore")
		}
		seen[li] = true
	}
	if len(seen) != 3 {
		t.Errorf("ε-greedy exploration should reach all candidates, saw %d", len(seen))
	}
}

func TestPoliciesLearnChase(t *testing.T) {
	// Every policy must still learn the recurring chase end-to-end.
	rng := memmodel.NewRNG(17)
	base := int64(1 << 20)
	blocks := make([]int64, 64)
	cur := base
	for i := range blocks {
		blocks[i] = cur
		cur += int64(rng.Intn(200) - 100)
		if cur < base-120 {
			cur = base
		}
	}
	for _, kind := range []PolicyKind{PolicyEpsilonGreedy, PolicySoftmax, PolicyUCB} {
		cfg := DefaultConfig()
		cfg.Policy = kind
		p := MustNew(cfg)
		iss := newTestIssuer()
		for i := 0; i < 300*len(blocks); i++ {
			p.OnAccess(chaseAccess(blocks, i), iss)
		}
		m := p.Metrics()
		if m.RealPrefetches == 0 || m.QueueHits == 0 {
			t.Errorf("%v: no learning (real=%d hits=%d)", kind, m.RealPrefetches, m.QueueHits)
		}
	}
}

func TestTrialCounterSaturates(t *testing.T) {
	e, _ := policyEntry(1)
	e.trials = 65535
	e.noteTrial()
	if e.trials != 65535 {
		t.Errorf("trials = %d, want saturated", e.trials)
	}
}
