package core

// cst is the context-states table (§5): a direct-mapped table keyed by the
// reduced-context hash. Each entry stores up to CSTLinks candidate deltas
// (block granularity, one signed byte each — able to point ±8 kB at 64 B
// blocks) with a signed score updated by the reward function. Replacement
// within an entry is score-based: new candidates evict the lowest-scoring
// link, which the positive rewards of recurring associations protect.
type cst struct {
	entries []cstEntry
	links   int
	bits    uint
}

// cstKey identifies a CST entry occupancy: index plus tag.
type cstKey struct {
	idx int
	tag uint8
}

type cstEntry struct {
	tag   uint8
	valid bool
	// trials counts predictions made from this entry (UCB's time horizon).
	trials uint16
	// churn counts candidate replacements since the last decay; a high
	// churn means many distinct addresses compete for this reduced context
	// (context overload, §4.4).
	churn uint8
	links []link
}

type link struct {
	delta int8
	score int8
	used  bool
}

func newCST(entries, links int) *cst {
	c := &cst{entries: make([]cstEntry, entries), links: links}
	n := entries
	for n > 1 {
		n >>= 1
		c.bits++
	}
	all := make([]link, entries*links)
	for i := range c.entries {
		c.entries[i].links = all[i*links : (i+1)*links : (i+1)*links]
	}
	return c
}

// key derives the table key from a reduced-context hash (19-bit value in
// the paper: low bits index, 8-bit tag).
func (c *cst) key(reducedHash uint64) cstKey {
	// Mix before splitting: index from the top bits, tag from a disjoint
	// mid-range, so weak raw hashes still spread and tag well.
	mixed := reducedHash * 0x9e3779b97f4a7c15
	mixed ^= mixed >> 29
	idx := int(mixed >> (64 - c.bits))
	tag := uint8(mixed >> 24)
	return cstKey{idx: idx, tag: tag}
}

// lookup returns the entry for key if it is resident, without allocating.
func (c *cst) lookup(k cstKey) *cstEntry {
	e := &c.entries[k.idx]
	if e.valid && e.tag == k.tag {
		return e
	}
	return nil
}

// ensure returns the entry for key, (re)allocating it if a different
// context occupies the slot. The second result reports whether the entry
// was already resident (warm).
func (c *cst) ensure(k cstKey) (*cstEntry, bool) {
	e := &c.entries[k.idx]
	if e.valid && e.tag == k.tag {
		return e, true
	}
	e.tag = k.tag
	e.valid = true
	e.churn = 0
	e.trials = 0
	for i := range e.links {
		e.links[i] = link{}
	}
	return e, false
}

// addCandidate records that `delta` followed this context, inserting it as
// an exploration candidate if it is not already tracked. New candidates
// start at score 0 and replace the lowest-scoring link — but an occupied
// victim is only replaced when allowReplace is set (the caller passes a
// probabilistic token), so resident candidates survive long enough for
// their delayed rewards to arrive. Positive-scored links are never
// evicted (score-based replacement, §5).
func (e *cstEntry) addCandidate(delta int8, allowReplace bool) {
	worst := 0
	for i := range e.links {
		l := &e.links[i]
		if l.used && l.delta == delta {
			return // already a candidate; scores move only via rewards
		}
		if !l.used {
			worst = i
			break
		}
		if e.links[i].score < e.links[worst].score {
			worst = i
		}
	}
	w := &e.links[worst]
	if w.used && (w.score > 0 || !allowReplace) {
		// Protected (by accumulated positive reward, or by replacement
		// hysteresis); the candidate is dropped but the contention is
		// recorded as churn (overload signal).
		e.noteChurn()
		return
	}
	if w.used {
		e.noteChurn()
	}
	*w = link{delta: delta, score: 0, used: true}
}

// best returns the index of the highest-scoring link, or -1 if none.
func (e *cstEntry) best() int {
	best := -1
	for i := range e.links {
		if !e.links[i].used {
			continue
		}
		if best < 0 || e.links[i].score > e.links[best].score {
			best = i
		}
	}
	return best
}

// candidates returns the indices of all used links.
func (e *cstEntry) candidates(buf []int) []int {
	buf = buf[:0]
	for i := range e.links {
		if e.links[i].used {
			buf = append(buf, i)
		}
	}
	return buf
}

// reward adjusts the score of the link holding delta.
func (e *cstEntry) reward(delta int8, amount int8) {
	for i := range e.links {
		if e.links[i].used && e.links[i].delta == delta {
			e.links[i].score = saturatingAdd(e.links[i].score, amount)
			return
		}
	}
}

// noteTrial counts one prediction round (saturating).
func (e *cstEntry) noteTrial() {
	if e.trials < 65535 {
		e.trials++
	}
}

func (e *cstEntry) noteChurn() {
	if e.churn < 255 {
		e.churn++
	}
}

// overloaded reports whether candidate contention indicates that too many
// full contexts collapse into this reduced context. Contention alone is
// not overload: an entry whose links are earning positive rewards is
// converging despite the churn, and splitting it would only discard what
// it has learned. Overload = heavy churn while nothing sticks.
func (e *cstEntry) overloaded(threshold uint8) bool {
	if e.churn < threshold {
		return false
	}
	for i := range e.links {
		if e.links[i].used && e.links[i].score > 0 {
			return false
		}
	}
	return true
}

// decayChurn halves the churn counter (called periodically so the overload
// signal reflects recent behaviour).
func (e *cstEntry) decayChurn() {
	e.churn /= 2
}
