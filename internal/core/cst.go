package core

import "math/bits"

// maxLinks bounds CSTLinks (Config.Validate enforces 1..8), so a link-slot
// bitmask fits one byte and the per-entry rank order fits a fixed array.
const maxLinks = 8

// cst is the context-states table (§5): a direct-mapped table keyed by the
// reduced-context hash. Each entry stores up to CSTLinks candidate deltas
// (block granularity, one signed byte each — able to point ±8 kB at 64 B
// blocks) with a signed score updated by the reward function. Replacement
// within an entry is score-based: new candidates evict the lowest-scoring
// link, which the positive rewards of recurring associations protect.
//
// Layout (DESIGN.md §15): the (delta, score) pairs of every entry are
// flattened into parallel fixed-size byte arrays inline in the entry
// rather than per-link structs behind a slice header, so a whole entry —
// tag, occupancy mask, rank order and all candidate bytes — is exactly 32
// bytes: the decide path reads one cache line per context instead of
// chasing padded structs. Each entry additionally maintains its
// exploitation rank (`order`) incrementally, so prediction walks a
// precomputed best-first sequence instead of rescanning scores per issued
// prefetch.
type cst struct {
	entries []cstEntry
	links   int
	bits    uint
}

// cstKey identifies a CST entry occupancy: index plus tag. The index is
// an int32 so the key packs into eight bytes — it rides in every history
// and prefetch-queue entry, and those rings are copied on the hot path.
type cstKey struct {
	idx int32
	tag uint8
}

type cstEntry struct {
	tag   uint8
	valid bool
	// used is the bitmask of occupied link slots; n caches its popcount.
	used uint8
	n    uint8
	// churn counts candidate replacements since the last decay; a high
	// churn means many distinct addresses compete for this reduced context
	// (context overload, §4.4).
	churn uint8
	// links is the configured CSTLinks bound (≤ maxLinks): the arrays
	// below are sized for the maximum, occupancy is capped here.
	links uint8
	// trials counts predictions made from this entry (UCB's time horizon).
	trials uint16
	// order[:n] holds the occupied slot indexes sorted by
	// (score descending, slot ascending) — the exploitation rank the
	// prediction unit walks. It is derived state: reward and addCandidate
	// maintain it in place, and restore rebuilds it from the scores.
	order [maxLinks]uint8
	// deltas and scores are the flattened candidate slots, parallel by
	// index; only [:links] are ever occupied.
	deltas [maxLinks]int8
	scores [maxLinks]int8
}

func newCST(entries, links int) *cst {
	c := &cst{
		entries: make([]cstEntry, entries),
		links:   links,
	}
	n := entries
	for n > 1 {
		n >>= 1
		c.bits++
	}
	for i := range c.entries {
		c.entries[i].links = uint8(links)
	}
	return c
}

// key derives the table key from a reduced-context hash (19-bit value in
// the paper: low bits index, 8-bit tag).
func (c *cst) key(reducedHash uint64) cstKey {
	// Mix before splitting: index from the top bits, tag from a disjoint
	// mid-range, so weak raw hashes still spread and tag well.
	mixed := reducedHash * 0x9e3779b97f4a7c15
	mixed ^= mixed >> 29
	idx := int32(mixed >> (64 - c.bits))
	tag := uint8(mixed >> 24)
	return cstKey{idx: idx, tag: tag}
}

// lookup returns the entry for key if it is resident, without allocating.
func (c *cst) lookup(k cstKey) *cstEntry {
	e := &c.entries[k.idx]
	if e.valid && e.tag == k.tag {
		return e
	}
	return nil
}

// ensure returns the entry for key, (re)allocating it if a different
// context occupies the slot. The second result reports whether the entry
// was already resident (warm).
func (c *cst) ensure(k cstKey) (*cstEntry, bool) {
	e := &c.entries[k.idx]
	if e.valid && e.tag == k.tag {
		return e, true
	}
	e.tag = k.tag
	e.valid = true
	e.churn = 0
	e.trials = 0
	e.used = 0
	e.n = 0
	e.deltas = [maxLinks]int8{}
	e.scores = [maxLinks]int8{}
	return e, false
}

// isUsed reports whether link slot i holds a candidate.
func (e *cstEntry) isUsed(i int) bool { return e.used&(1<<uint(i)) != 0 }

// ranksBefore reports whether slot a precedes slot b in the exploitation
// rank: higher score first, lower slot index breaking ties (the order the
// old per-prediction rescan produced, kept so results stay bit-identical).
func (e *cstEntry) ranksBefore(a, b uint8) bool {
	return e.scores[a] > e.scores[b] || (e.scores[a] == e.scores[b] && a < b)
}

// insertIntoOrder places slot (whose used bit and score are already set,
// and which is counted in n) into the rank order.
func (e *cstEntry) insertIntoOrder(slot uint8) {
	j := int(e.n) - 1 // order[:n-1] holds the existing ranked slots
	for j > 0 && !e.ranksBefore(e.order[j-1], slot) {
		e.order[j] = e.order[j-1]
		j--
	}
	e.order[j] = slot
}

// removeFromOrder drops slot from the rank order; n still counts it.
func (e *cstEntry) removeFromOrder(slot uint8) {
	n := int(e.n)
	j := 0
	for j < n && e.order[j] != slot {
		j++
	}
	copy(e.order[j:n-1], e.order[j+1:n])
}

// reposition restores the rank invariant after slot's score changed,
// bubbling it toward the front or back as needed. Reward deltas are small,
// so this almost always terminates after zero or one swap.
func (e *cstEntry) reposition(slot uint8) {
	n := int(e.n)
	j := 0
	for e.order[j] != slot {
		j++
	}
	for j > 0 && !e.ranksBefore(e.order[j-1], slot) {
		e.order[j] = e.order[j-1]
		j--
		e.order[j] = slot
	}
	for j+1 < n && !e.ranksBefore(slot, e.order[j+1]) {
		e.order[j] = e.order[j+1]
		j++
		e.order[j] = slot
	}
}

// rebuildOrder recomputes n and the rank order from used/scores (restore
// path and test helpers; the hot path maintains both incrementally).
func (e *cstEntry) rebuildOrder() {
	e.n = uint8(bits.OnesCount8(e.used))
	k := 0
	for i := 0; i < int(e.links); i++ {
		if !e.isUsed(i) {
			continue
		}
		slot := uint8(i)
		j := k
		for j > 0 && !e.ranksBefore(e.order[j-1], slot) {
			e.order[j] = e.order[j-1]
			j--
		}
		e.order[j] = slot
		k++
	}
}

// candOutcome classifies what addCandidate did with a collected delta —
// the per-event eviction-churn signal the learner-health counters
// aggregate.
type candOutcome uint8

const (
	// candNoop: the delta was already a tracked candidate.
	candNoop candOutcome = iota
	// candInserted: the delta filled a free link slot.
	candInserted
	// candReplaced: the delta evicted the lowest-scoring unprotected link.
	candReplaced
	// candRejected: the delta was dropped because the victim was protected
	// (positive score, or replacement hysteresis withheld the token).
	candRejected
)

// addCandidate records that `delta` followed this context, inserting it as
// an exploration candidate if it is not already tracked. New candidates
// start at score 0 and replace the lowest-scoring link — but an occupied
// victim is only replaced when allowReplace is set (the caller passes a
// probabilistic token), so resident candidates survive long enough for
// their delayed rewards to arrive. Positive-scored links are never
// evicted (score-based replacement, §5). The return value classifies the
// outcome.
func (e *cstEntry) addCandidate(delta int8, allowReplace bool) candOutcome {
	worst := 0
	for i := 0; i < int(e.links); i++ {
		if !e.isUsed(i) {
			worst = i
			break
		}
		if e.deltas[i] == delta {
			return candNoop // already a candidate; scores move only via rewards
		}
		if e.scores[i] < e.scores[worst] {
			worst = i
		}
	}
	wUsed := e.isUsed(worst)
	if wUsed && (e.scores[worst] > 0 || !allowReplace) {
		// Protected (by accumulated positive reward, or by replacement
		// hysteresis); the candidate is dropped but the contention is
		// recorded as churn (overload signal).
		e.noteChurn()
		return candRejected
	}
	out := candInserted
	if wUsed {
		out = candReplaced
		e.noteChurn()
		e.removeFromOrder(uint8(worst))
	} else {
		e.used |= 1 << uint(worst)
		e.n++
	}
	e.deltas[worst] = delta
	e.scores[worst] = 0
	e.insertIntoOrder(uint8(worst))
	return out
}

// best returns the index of the highest-scoring link, or -1 if none.
func (e *cstEntry) best() int {
	if e.n == 0 {
		return -1
	}
	return int(e.order[0])
}

// candidates returns the indices of all used links.
func (e *cstEntry) candidates(buf []int) []int {
	buf = buf[:0]
	for m := e.used; m != 0; m &= m - 1 {
		buf = append(buf, bits.TrailingZeros8(m))
	}
	return buf
}

// reward adjusts the score of the link holding delta and repositions it in
// the rank order.
func (e *cstEntry) reward(delta int8, amount int8) {
	for m := e.used; m != 0; m &= m - 1 {
		i := bits.TrailingZeros8(m)
		if e.deltas[i] != delta {
			continue
		}
		s := saturatingAdd(e.scores[i], amount)
		if s != e.scores[i] {
			e.scores[i] = s
			e.reposition(uint8(i))
		}
		return
	}
}

// rewardSlot is reward with a memoized link slot: the prefetch queue
// records which slot produced each prediction, so the common case skips
// the link scan. The slot is only a hint — if the link was evicted (and
// possibly the same delta re-inserted elsewhere) between prediction and
// feedback, fall back to the scan so the outcome matches reward exactly.
func (e *cstEntry) rewardSlot(slot uint8, delta int8, amount int8) {
	if slot < e.links && e.used&(1<<slot) != 0 && e.deltas[slot] == delta {
		s := saturatingAdd(e.scores[slot], amount)
		if s != e.scores[slot] {
			e.scores[slot] = s
			e.reposition(slot)
		}
		return
	}
	e.reward(delta, amount)
}

// noteTrial counts one prediction round (saturating).
func (e *cstEntry) noteTrial() {
	if e.trials < 65535 {
		e.trials++
	}
}

func (e *cstEntry) noteChurn() {
	if e.churn < 255 {
		e.churn++
	}
}

// overloaded reports whether candidate contention indicates that too many
// full contexts collapse into this reduced context. Contention alone is
// not overload: an entry whose links are earning positive rewards is
// converging despite the churn, and splitting it would only discard what
// it has learned. Overload = heavy churn while nothing sticks.
func (e *cstEntry) overloaded(threshold uint8) bool {
	if e.churn < threshold {
		return false
	}
	// order[0] ranks first: any positive-scored link would be there.
	return e.n == 0 || e.scores[e.order[0]] <= 0
}

// decayChurn halves the churn counter (called periodically so the overload
// signal reflects recent behaviour).
func (e *cstEntry) decayChurn() {
	e.churn /= 2
}
