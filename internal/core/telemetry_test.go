package core

import (
	"bytes"
	"testing"

	"semloc/internal/obs"
)

// benchTrained drives the benchmark stream through a fresh prefetcher so
// tests observe a populated table and live queue.
func benchTrained(t *testing.T, col *obs.Collector) *Prefetcher {
	t.Helper()
	p := MustNew(DefaultConfig())
	if col != nil {
		p.AttachTelemetry(col)
	}
	iss := &benchIssuer{free: 4}
	stream := benchStream(4096)
	for i := range stream {
		p.OnAccess(&stream[i], iss)
	}
	return p
}

func TestTelemetrySnapshotMatchesMetricsAndInspect(t *testing.T) {
	p := benchTrained(t, nil)
	snap := p.TelemetrySnapshot()
	m := p.Metrics()
	st := p.Inspect()

	if snap.Accesses != m.Accesses || snap.Predictions != m.Predictions ||
		snap.QueueHits != m.QueueHits || snap.Expired != m.Expired ||
		snap.RealPrefetches != m.RealPrefetches || snap.ShadowPrefetches != m.ShadowPrefetches {
		t.Fatalf("snapshot counters diverge from Metrics: %+v vs %+v", snap, m)
	}
	if snap.CSTEntries != st.Entries || snap.CSTLinks != st.Links || snap.CSTMeanScore != st.MeanScore {
		t.Fatalf("snapshot table state diverges from Inspect: %+v vs %+v", snap, st)
	}
	if len(snap.TopDeltas) != len(st.TopDeltas) {
		t.Fatalf("top deltas: %d vs %d", len(snap.TopDeltas), len(st.TopDeltas))
	}
	for i := range st.TopDeltas {
		if snap.TopDeltas[i].Delta != st.TopDeltas[i].Delta || snap.TopDeltas[i].Count != st.TopDeltas[i].Count {
			t.Fatalf("top delta %d mismatch: %+v vs %+v", i, snap.TopDeltas[i], st.TopDeltas[i])
		}
	}
	if snap.Accesses == 0 || snap.CSTEntries == 0 {
		t.Fatal("trained prefetcher produced an empty snapshot")
	}
}

func TestDecisionTraceEmitsAllKinds(t *testing.T) {
	var buf bytes.Buffer
	col := obs.NewCollector(obs.Config{DecisionRate: 1, DecisionSink: &buf})
	benchTrained(t, col)
	if err := col.Flush(); err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ReadDecisions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, ev := range evs {
		kinds[ev.Kind]++
		switch ev.Kind {
		case obs.KindDecide:
			if len(ev.Candidates) == 0 {
				t.Fatalf("decide event without candidates: %+v", ev)
			}
		case obs.KindReward:
			if ev.Depth < 0 {
				t.Fatalf("reward event with negative depth: %+v", ev)
			}
		case obs.KindExpire:
			if ev.Reward >= 0 {
				t.Fatalf("expire event without penalty: %+v", ev)
			}
		default:
			t.Fatalf("unknown event kind %q", ev.Kind)
		}
	}
	// The recurring chase trains, predicts and overflows the queue, so
	// every kind must appear at rate 1.
	for _, k := range []string{obs.KindDecide, obs.KindReward, obs.KindExpire} {
		if kinds[k] == 0 {
			t.Fatalf("no %q events traced (kinds: %v)", k, kinds)
		}
	}
}

// TestTelemetryDoesNotPerturbLearning runs the same stream with and
// without an attached collector and requires bit-identical learned state
// and metrics: tracing samples off its own counter, never the policy RNG.
func TestTelemetryDoesNotPerturbLearning(t *testing.T) {
	plain := benchTrained(t, nil)
	var buf bytes.Buffer
	traced := benchTrained(t, obs.NewCollector(obs.Config{DecisionRate: 3, DecisionSink: &buf}))

	mp, mt := plain.Metrics(), traced.Metrics()
	mp.HitDepths, mt.HitDepths = nil, nil
	if mp != mt {
		t.Fatalf("telemetry changed metrics:\n%+v\n%+v", mp, mt)
	}
	sp, st := plain.Inspect(), traced.Inspect()
	if sp.Entries != st.Entries || sp.Links != st.Links || sp.MeanScore != st.MeanScore ||
		sp.PositiveLinks != st.PositiveLinks || sp.SaturatedLinks != st.SaturatedLinks {
		t.Fatalf("telemetry changed learned state:\n%+v\n%+v", sp, st)
	}
	if plain.Accuracy() != traced.Accuracy() || plain.Epsilon() != traced.Epsilon() {
		t.Fatal("telemetry changed policy state")
	}
}
