package core

import (
	"errors"
	"testing"
)

// Non-power-of-two table sizes must be rejected at validation: newCST and
// newReducer derive their index width as floor(log2(entries)), so a
// non-power-of-two size would leave the top entries unreachable and alias
// distinct contexts onto the same rows — silently, with no panic. The only
// guard is Config.Validate; these regression tests pin it down.
func TestConfigRejectsNonPowerOfTwoTables(t *testing.T) {
	for _, n := range []int{3, 6, 1000, 1<<20 - 1, -4} {
		cfg := DefaultConfig()
		cfg.CSTEntries = n
		if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("CSTEntries=%d: got %v, want ErrBadConfig", n, err)
		}

		cfg = DefaultConfig()
		cfg.ReducerEntries = n
		if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("ReducerEntries=%d: got %v, want ErrBadConfig", n, err)
		}
	}
}

// Power-of-two sizes across the Figure 13 sweep range must stay accepted.
func TestConfigAcceptsPowerOfTwoTables(t *testing.T) {
	for shift := 4; shift <= 16; shift++ {
		cfg := DefaultConfig()
		cfg.CSTEntries = 1 << shift
		cfg.ReducerEntries = 1 << (shift + 3)
		if _, err := New(cfg); err != nil {
			t.Errorf("CSTEntries=%d/ReducerEntries=%d rejected: %v", cfg.CSTEntries, cfg.ReducerEntries, err)
		}
	}
}

// MustNew panics on a bad configuration with a value the harness can
// classify via errors.Is(…, ErrBadConfig).
func TestMustNewPanicClassifiable(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustNew accepted a non-power-of-two CST size")
		}
		err, ok := r.(error)
		if !ok || !errors.Is(err, ErrBadConfig) {
			t.Fatalf("panic value %v is not an ErrBadConfig error", r)
		}
	}()
	cfg := DefaultConfig()
	cfg.CSTEntries = 1000
	MustNew(cfg)
}
