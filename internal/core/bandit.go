package core

import "math/bits"

// bandit holds the exploration/exploitation policy state: an ε-greedy rule
// whose exploration rate adapts to prediction accuracy (§4.1, following
// Tokic's value-difference-based adaptation — exploration decays as the
// predictor converges), plus the accuracy estimate that throttles the
// prefetch degree (§5).
type bandit struct {
	epsilon  float64
	adaptive bool
	base     float64
	// accuracy is an exponential moving estimate of the prefetch-queue hit
	// rate in [0,1].
	accuracy float64
	rng      uint64
	// weights is the softmax scratch buffer, sized for the widest legal
	// entry: no policy may allocate per decision (alloc_guard_test.go pins
	// all three).
	weights [maxLinks]float64
}

func newBandit(epsilon float64, adaptive bool, seed uint64) *bandit {
	if seed == 0 {
		seed = 1
	}
	return &bandit{epsilon: epsilon, base: epsilon, adaptive: adaptive, accuracy: 0.5, rng: seed}
}

func (b *bandit) next() uint64 {
	b.rng += 0x9e3779b97f4a7c15
	z := b.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// explore decides whether this prediction should be an exploration step.
func (b *bandit) explore() bool {
	if b.epsilon <= 0 {
		return false
	}
	return float64(b.next()>>11)/float64(1<<53) < b.epsilon
}

// pick returns a uniformly random element of xs (xs must be non-empty).
func (b *bandit) pick(xs []int) int {
	return xs[b.next()%uint64(len(xs))]
}

// pickSlot returns a uniformly random used link slot of e (e must hold at
// least one candidate). It consumes one RNG draw and selects the k-th used
// slot in ascending order — exactly pick() over the entry's candidate
// list, without materializing it.
func (b *bandit) pickSlot(e *cstEntry) int {
	k := b.next() % uint64(e.n)
	m := e.used
	for ; k > 0; k-- {
		m &= m - 1
	}
	return bits.TrailingZeros8(m)
}

const accuracyGain = 1.0 / 256

// feedback folds one prediction outcome into the accuracy estimate and,
// when adaptive, re-derives ε: high accuracy means the predictor has
// converged and exploration tapers toward a floor; low accuracy raises
// exploration back toward the base rate.
func (b *bandit) feedback(hit bool) {
	target := 0.0
	if hit {
		target = 1.0
	}
	b.accuracy += (target - b.accuracy) * accuracyGain
	if b.adaptive {
		const floor = 0.2
		b.epsilon = b.base * (floor + (1-floor)*(1-b.accuracy))
	}
}

// degree scales the number of real prefetches per access by accuracy: a
// converged predictor streams aggressively, a struggling one stays timid.
func (b *bandit) degree(max int) int {
	d := 1 + int(b.accuracy*float64(max))
	if d > max {
		d = max
	}
	return d
}

// reset restores initial policy state.
func (b *bandit) reset() {
	b.epsilon = b.base
	b.accuracy = 0.5
}
