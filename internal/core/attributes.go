package core

import (
	"semloc/internal/prefetch"
)

// AttrID enumerates the context attributes of Table 1.
type AttrID uint8

// Context attributes. The first four form the default active set; the
// rest are activated by the Reducer on context overload, in this order.
const (
	// AttrPC is the instruction pointer of the load site.
	AttrPC AttrID = iota
	// AttrTypeID is the compiler-enumerated object type.
	AttrTypeID
	// AttrLinkOffset is the in-object offset of the link pointer.
	AttrLinkOffset
	// AttrRefForm is the syntactic reference form.
	AttrRefForm
	// AttrBranchHist is the global branch history register.
	AttrBranchHist
	// AttrReg is the relevant general-register operand.
	AttrReg
	// AttrLastValue is the most recently loaded data value.
	AttrLastValue
	// AttrAddrHist folds the last two access deltas ("history of recent
	// memory accesses" — used sparingly, as the paper warns it risks
	// overly localized learning).
	AttrAddrHist
	// NumAttrs is the attribute count.
	NumAttrs
)

// attrName reports the attribute's Table 1 name.
func (a AttrID) String() string {
	switch a {
	case AttrPC:
		return "pc"
	case AttrTypeID:
		return "type"
	case AttrLinkOffset:
		return "linkoff"
	case AttrRefForm:
		return "refform"
	case AttrBranchHist:
		return "branchhist"
	case AttrReg:
		return "reg"
	case AttrLastValue:
		return "lastvalue"
	case AttrAddrHist:
		return "addrhist"
	default:
		return "attr(?)"
	}
}

// AttrSet is a bitmap of active attributes.
type AttrSet uint8

// Has reports whether id is in the set.
func (s AttrSet) Has(id AttrID) bool { return s&(1<<id) != 0 }

// With returns the set with id added.
func (s AttrSet) With(id AttrID) AttrSet { return s | 1<<id }

// Without returns the set with id removed.
func (s AttrSet) Without(id AttrID) AttrSet { return s &^ (1 << id) }

// Count returns the number of active attributes.
func (s AttrSet) Count() int {
	n := 0
	for id := AttrID(0); id < NumAttrs; id++ {
		if s.Has(id) {
			n++
		}
	}
	return n
}

// DefaultAttrSet is the initial active set: the load site plus the three
// compiler hints, the attributes that most directly encode access
// semantics.
const DefaultAttrSet AttrSet = 1<<AttrPC | 1<<AttrTypeID | 1<<AttrLinkOffset | 1<<AttrRefForm

// FullAttrSet has every attribute active (reducer-disabled ablation).
const FullAttrSet AttrSet = 1<<NumAttrs - 1

// activationOrder lists the attributes the reducer may activate on context
// overload, in order: control flow first (cheap, often sufficient), then
// the previously loaded value (identifies the current node of a linked
// traversal), then the register operand (distinguishes lookup keys), then
// the address history (the paper warns it must be used sparingly).
var activationOrder = [...]AttrID{AttrBranchHist, AttrLastValue, AttrReg, AttrAddrHist}

// contextVector holds one access's attribute values, indexed by AttrID.
type contextVector [NumAttrs]uint64

// machineState tracks the hardware attributes that are not carried by the
// access itself: recent access deltas and the last loaded value.
type machineState struct {
	lastLines [2]uint64
	lastValue uint64
}

// capture builds the context vector for access a.
func (m *machineState) capture(a *prefetch.Access, blockShift uint) contextVector {
	block := uint64(a.Addr) >> blockShift
	var v contextVector
	v[AttrPC] = a.PC
	v[AttrTypeID] = uint64(a.Hints.TypeID)
	v[AttrLinkOffset] = uint64(a.Hints.LinkOffset)
	v[AttrRefForm] = uint64(a.Hints.RefForm)
	if a.Hints.Valid {
		// Distinguish "hint present" from zero-valued hints.
		v[AttrTypeID] |= 1 << 32
		v[AttrLinkOffset] |= 1 << 32
		v[AttrRefForm] |= 1 << 32
	}
	v[AttrBranchHist] = uint64(a.BranchHist)
	v[AttrReg] = a.Reg
	v[AttrLastValue] = m.lastValue
	d0 := block - m.lastLines[0]
	d1 := m.lastLines[0] - m.lastLines[1]
	v[AttrAddrHist] = d0*0x100000001 ^ d1
	return v
}

// update advances the machine state after access a.
func (m *machineState) update(a *prefetch.Access, blockShift uint) {
	m.lastLines[1] = m.lastLines[0]
	m.lastLines[0] = uint64(a.Addr) >> blockShift
	if a.Value != 0 {
		m.lastValue = a.Value
	}
}

// hashSeed starts every context hash.
const hashSeed = uint64(0x9e3779b97f4a7c15)

// foldAttr mixes one attribute value into a running context hash.
func foldAttr(h uint64, id AttrID, val uint64) uint64 {
	h ^= uint64(id+1) * 0xff51afd7ed558ccd
	h ^= val
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// hashContext mixes the active attributes of v into a 64-bit hash. The
// caller truncates to the width it needs (16 bits for the reducer index,
// 19 bits for the CST index).
func hashContext(v *contextVector, active AttrSet) uint64 {
	h := hashSeed
	for id := AttrID(0); id < NumAttrs; id++ {
		if !active.Has(id) {
			continue
		}
		h = foldAttr(h, id, v[id])
	}
	return h
}

// hashDefaultPrefix folds the always-active default attributes (Table 1's
// load site plus the three compiler hints). Every attribute set the
// prefetcher hashes on the hot path — FullAttrSet and every reducer-held
// active set — contains DefaultAttrSet, and hashContext folds attributes
// in ascending id order, so this prefix is shared verbatim between the
// full-context hash and the reduced-context hash: OnAccess computes it
// once and extends it twice (DESIGN.md §15).
func hashDefaultPrefix(v *contextVector) uint64 {
	h := foldAttr(hashSeed, AttrPC, v[AttrPC])
	h = foldAttr(h, AttrTypeID, v[AttrTypeID])
	h = foldAttr(h, AttrLinkOffset, v[AttrLinkOffset])
	return foldAttr(h, AttrRefForm, v[AttrRefForm])
}

// hashExtend folds the activatable high attributes of `active` (those
// beyond the default set) onto a default-prefix hash. For any set
// containing DefaultAttrSet, hashExtend(hashDefaultPrefix(v), v, set) ==
// hashContext(v, set).
func hashExtend(h uint64, v *contextVector, active AttrSet) uint64 {
	for id := AttrBranchHist; id < NumAttrs; id++ {
		if active.Has(id) {
			h = foldAttr(h, id, v[id])
		}
	}
	return h
}
