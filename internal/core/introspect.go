package core

import (
	"fmt"
	"io"
	"sort"
)

// TableStats summarizes the learned state of the CST for introspection,
// tuning and tests: how much of the table is populated, how scores are
// distributed, and which deltas dominate.
type TableStats struct {
	// Entries is the number of valid CST entries holding candidates.
	Entries int
	// Links is the total number of resident (delta, score) links.
	Links int
	// PositiveLinks counts links with accumulated positive reward — the
	// associations the prefetcher will actually dispatch.
	PositiveLinks int
	// SaturatedLinks counts links pinned at the score ceiling.
	SaturatedLinks int
	// MeanScore is the average link score.
	MeanScore float64
	// TopDeltas lists the most frequent link deltas, best first (at most
	// eight), for a quick view of what was learned.
	TopDeltas []DeltaCount
}

// DeltaCount pairs a delta with its occurrence count across the CST.
type DeltaCount struct {
	Delta int8
	Count int
}

// Inspect summarizes the current CST contents.
func (p *Prefetcher) Inspect() TableStats {
	var st TableStats
	var scoreSum int
	deltas := make(map[int8]int)
	for i := range p.table.entries {
		e := &p.table.entries[i]
		if !e.valid {
			continue
		}
		for li := 0; li < int(e.links); li++ {
			if !e.isUsed(li) {
				continue
			}
			st.Links++
			scoreSum += int(e.scores[li])
			if e.scores[li] > 0 {
				st.PositiveLinks++
			}
			if e.scores[li] == 127 {
				st.SaturatedLinks++
			}
			deltas[e.deltas[li]]++
		}
		if e.n > 0 {
			st.Entries++
		}
	}
	if st.Links > 0 {
		st.MeanScore = float64(scoreSum) / float64(st.Links)
	}
	type dc struct {
		d int8
		c int
	}
	all := make([]dc, 0, len(deltas))
	for d, c := range deltas {
		all = append(all, dc{d, c})
	}
	// SliceStable with a total-order comparator (count descending, delta
	// ascending breaking ties): equal-count deltas rank identically from
	// run to run regardless of map iteration order, so golden comparisons
	// of TopDeltas never flake.
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].d < all[j].d
	})
	for i := 0; i < len(all) && i < 8; i++ {
		st.TopDeltas = append(st.TopDeltas, DeltaCount{Delta: all[i].d, Count: all[i].c})
	}
	return st
}

// DumpCST writes up to limit non-empty CST entries with their links to w;
// a development and tuning aid.
func (p *Prefetcher) DumpCST(w io.Writer, limit int) {
	n := 0
	for i := range p.table.entries {
		e := &p.table.entries[i]
		if !e.valid {
			continue
		}
		if e.n == 0 {
			continue
		}
		n++
		if n > limit {
			continue
		}
		fmt.Fprintf(w, "  entry idx=%d tag=%d churn=%d trials=%d links=", i, e.tag, e.churn, e.trials)
		for li := 0; li < int(e.links); li++ {
			if e.isUsed(li) {
				fmt.Fprintf(w, "(%+d:%+d) ", e.deltas[li], e.scores[li])
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "  total non-empty entries: %d\n", n)
}
