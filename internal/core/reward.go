package core

import "fmt"

// RewardConfig shapes the feedback function of Figure 5: a bell centred on
// the target prefetch distance, positive inside the effective prefetch
// window and negative outside it, so that associations drifting out of the
// window are demoted (§4.3).
type RewardConfig struct {
	// Low and High bound the positive region in memory accesses (paper:
	// 18–50 for the Table 2 machine).
	Low, High int
	// Peak is the maximum reward, earned at the centre of the window.
	Peak int8
	// Penalty is the magnitude of the negative reward outside the window
	// (applied to too-early predictions and to expired queue entries).
	Penalty int8
	// Flat, when set, replaces the bell with a constant +Peak inside the
	// window (ablation knob for the reward shape).
	Flat bool
}

// DefaultRewardConfig follows the paper's construction: the window is
// derived from the machine's miss penalty and IPC (§4.3; the paper's gem5
// machine lands at 18–50 accesses). This simulator's cores sustain lower
// IPC on the pointer chases the prefetcher targets, which shortens the
// same cycle window in access counts, so the default positive region
// extends all the way down while keeping the paper's upper edge. Even a
// depth-1 prefetch on a serialized miss chain hides a full memory round
// trip here (the dependent demand cannot issue until its producer
// returns); on fast streams the equivalent prediction merges with the
// demand's own in-flight fill and is dropped as a duplicate, so widening
// the window does not reward useless traffic.
func DefaultRewardConfig() RewardConfig {
	return RewardConfig{Low: 0, High: 50, Peak: 16, Penalty: 1}
}

// Validate reports configuration errors.
func (r RewardConfig) Validate() error {
	if r.Low < 0 || r.High <= r.Low {
		return fmt.Errorf("core: reward window [%d,%d] invalid", r.Low, r.High)
	}
	if r.Peak <= 0 {
		return fmt.Errorf("core: reward peak must be positive")
	}
	if r.Penalty < 0 {
		return fmt.Errorf("core: reward penalty must be non-negative")
	}
	return nil
}

// Center returns the centre of the positive window.
func (r RewardConfig) Center() int { return (r.Low + r.High) / 2 }

// Reward returns the score adjustment for a prediction that was hit by a
// demand access `depth` accesses after it was made. The bell is a
// quadratic: +Peak at the centre, zero at Low and High, clamped at
// -Penalty outside the window.
func (r RewardConfig) Reward(depth int) int8 {
	if r.Flat {
		if depth >= r.Low && depth <= r.High {
			return r.Peak
		}
		return -r.Penalty
	}
	c := float64(r.Center())
	half := float64(r.High-r.Low) / 2
	z := (float64(depth) - c) / half
	v := float64(r.Peak) * (1 - z*z)
	if v < float64(-r.Penalty) {
		return -r.Penalty
	}
	return int8(v)
}

// Expired returns the reward applied to predictions that fell out of the
// prefetch queue without ever being hit.
func (r RewardConfig) Expired() int8 { return -r.Penalty }

// saturatingAdd adds delta to score, saturating at the int8 bounds.
func saturatingAdd(score, delta int8) int8 {
	s := int16(score) + int16(delta)
	if s > 127 {
		return 127
	}
	if s < -128 {
		return -128
	}
	return int8(s)
}
