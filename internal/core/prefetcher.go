package core

import (
	"fmt"

	"semloc/internal/memmodel"
	"semloc/internal/obs"
	"semloc/internal/prefetch"
	"semloc/internal/stats"
)

// Thresholds for the reducer's dynamic attribute control (§4.4): a CST
// entry whose candidate churn reaches overloadChurn splits its reduced
// context by activating an attribute; a reducer entry whose lookups miss
// the CST coldStreakLimit times in a row merges states by deactivating
// one.
const (
	overloadChurn   = 8
	coldStreakLimit = 32
	// churnDecayEvery must stay a power of two: the hot path tests it with
	// a mask, not a modulo.
	churnDecayEvery = 4096
)

// Metrics exposes the prefetcher's internal counters, including the
// prefetch-queue hit-depth histogram that Figure 8 plots.
type Metrics struct {
	// Accesses counts observed demand accesses.
	Accesses uint64
	// Predictions counts queue pushes (real + shadow).
	Predictions uint64
	// RealPrefetches counts predictions dispatched to memory.
	RealPrefetches uint64
	// ShadowPrefetches counts predictions tracked without dispatching.
	ShadowPrefetches uint64
	// QueueHits counts demand accesses that matched a queued prediction.
	QueueHits uint64
	// Expired counts predictions that left the queue unhit.
	Expired uint64
	// Activations and Deactivations count reducer attribute changes.
	Activations, Deactivations uint64

	// Outcome taxonomy: every prefetch dispatched to memory ends in exactly
	// one of four buckets. Accurate = consumed by a demand access at a
	// depth earning a positive reward; Late = consumed but past the useful
	// window (reward <= 0); Evicted = displaced from the prefetch queue
	// unconsumed; Useless = still pending in the queue at snapshot time.
	// OutcomeUseless is snapshot-only: the Metrics accessor fills it from
	// the live pending count, the internal field stays zero (saved states
	// store zero and recompute the pending count from the queue on
	// restore). OutcomeCarried counts dispatches still pending when the
	// counters were last reset (the warm-up boundary), so the books
	// balance: Accurate + Late + Evicted + Useless == RealPrefetches +
	// OutcomeCarried at every snapshot (CheckOutcomes asserts it).
	OutcomeAccurate uint64
	OutcomeLate     uint64
	OutcomeEvicted  uint64
	OutcomeUseless  uint64
	OutcomeCarried  uint64

	// Explores counts policy-selected exploration trainings; Exploits
	// counts best-link exploitation dispatch attempts; Suppressed counts
	// prediction rounds where the best score sat under ScoreThreshold and
	// only a shadow trained.
	Explores   uint64
	Exploits   uint64
	Suppressed uint64

	// PosRewards/NegRewards/ZeroRewards split queue-hit rewards by sign
	// (real and shadow alike) — the learner's reward-sign mix.
	PosRewards  uint64
	NegRewards  uint64
	ZeroRewards uint64

	// CSTInsertions/CSTReplacements/CSTRejects classify candidate
	// collection: a fresh link slot filled, a resident unprotected link
	// evicted for a newcomer, or a newcomer dropped because the victim was
	// protected (positive score or replacement hysteresis) — the last two
	// are the eviction-churn signal.
	CSTInsertions   uint64
	CSTReplacements uint64
	CSTRejects      uint64

	// HitDepths is the distribution of prediction-to-demand distances in
	// accesses (real and shadow predictions alike, as in Figure 8).
	HitDepths *stats.Histogram
}

// CheckOutcomes asserts the outcome-taxonomy count-match invariant on a
// snapshot returned by the Metrics accessor: every dispatched prefetch is
// accounted for exactly once.
func (m *Metrics) CheckOutcomes() error {
	got := m.OutcomeAccurate + m.OutcomeLate + m.OutcomeEvicted + m.OutcomeUseless
	want := m.RealPrefetches + m.OutcomeCarried
	if got != want {
		return fmt.Errorf("core: outcome taxonomy mismatch: accurate %d + late %d + evicted %d + useless %d = %d, want real %d + carried %d = %d",
			m.OutcomeAccurate, m.OutcomeLate, m.OutcomeEvicted, m.OutcomeUseless, got,
			m.RealPrefetches, m.OutcomeCarried, want)
	}
	return nil
}

// Prefetcher is the context-based prefetcher. It implements
// prefetch.Prefetcher.
type Prefetcher struct {
	cfg     Config
	reducer *reducer
	table   *cst
	history *historyQueue
	queue   *prefetchQueue
	policy  *bandit
	machine machineState
	index   uint64 // demand access counter
	metrics Metrics
	// pendingIssued tracks dispatched prefetches still live and unconsumed
	// in the queue: ++ on dispatch, -- when a demand access consumes one or
	// an eviction displaces one. It is derived state (always equal to the
	// queue's live && !hit && issued population) kept incrementally so the
	// Metrics accessor can fill OutcomeUseless without scanning the ring;
	// restore recomputes it from the queue.
	pendingIssued uint64
	// rewardTab memoizes cfg.Reward.Reward(depth) for depths up to the
	// point where the bell settles at the expiry penalty; rewardAt consults
	// it so the feedback path does no float math per queue hit.
	rewardTab  []int8
	expPenalty int8
	// obs, when non-nil, receives sampled decision/reward/expire events
	// and interval snapshots (see telemetry.go). nil costs one branch per
	// hook site and nothing else.
	obs *obs.Collector
}

var _ prefetch.Prefetcher = (*Prefetcher)(nil)

// New builds a context prefetcher; the configuration must be valid.
func New(cfg Config) (*Prefetcher, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Prefetcher{
		cfg:        cfg,
		reducer:    newReducer(cfg.ReducerEntries),
		table:      newCST(cfg.CSTEntries, cfg.CSTLinks),
		history:    newHistoryQueue(cfg.HistoryDepth),
		queue:      newPrefetchQueue(cfg.QueueDepth),
		policy:     newBandit(cfg.Epsilon, cfg.AdaptiveEpsilon, cfg.Seed),
		metrics:    Metrics{HitDepths: stats.NewHistogram(cfg.QueueDepth)},
		rewardTab:  buildRewardTable(cfg.Reward),
		expPenalty: cfg.Reward.Expired(),
	}, nil
}

// buildRewardTable tabulates the reward bell by depth. Beyond the window's
// upper edge the quadratic is monotone non-increasing and clamps at the
// expiry penalty, so the table ends at the first such depth and rewardAt
// answers everything past it with the penalty.
func buildRewardTable(r RewardConfig) []int8 {
	tab := make([]int8, 0, r.High+2)
	for d := 0; ; d++ {
		v := r.Reward(d)
		tab = append(tab, v)
		if d > r.High && v == r.Expired() {
			return tab
		}
	}
}

// rewardAt returns cfg.Reward.Reward(depth) via the precomputed table.
func (p *Prefetcher) rewardAt(depth int) int8 {
	if depth < len(p.rewardTab) {
		return p.rewardTab[depth]
	}
	return p.expPenalty
}

// MustNew builds a context prefetcher and panics on configuration errors
// (the panic value is an error wrapping ErrBadConfig, which the simulation
// harness recovers into a typed run failure).
func MustNew(cfg Config) *Prefetcher {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements prefetch.Prefetcher.
func (*Prefetcher) Name() string { return "context" }

// Metrics returns a snapshot of the internal counters. The snapshot's
// OutcomeUseless is the current pending-issued population (the internal
// field is always zero), so CheckOutcomes holds on every snapshot.
func (p *Prefetcher) Metrics() Metrics {
	m := p.metrics
	m.OutcomeUseless = p.pendingIssued
	return m
}

// Accuracy returns the policy's moving estimate of queue hit rate.
func (p *Prefetcher) Accuracy() float64 { return p.policy.accuracy }

// Epsilon returns the current exploration rate.
func (p *Prefetcher) Epsilon() float64 { return p.policy.epsilon }

// ResetMetrics clears counters (at the warm-up boundary) while keeping all
// learned state, as hardware would. Dispatches still pending in the queue
// carry over as OutcomeCarried so the outcome taxonomy stays balanced when
// their fates land after the boundary.
func (p *Prefetcher) ResetMetrics() {
	p.metrics = Metrics{
		OutcomeCarried: p.pendingIssued,
		HitDepths:      stats.NewHistogram(p.cfg.QueueDepth),
	}
}

// OnAccess implements prefetch.Prefetcher: Algorithm 1's three parallel
// operations — feedback, data collection, prediction — executed on every
// demand access.
func (p *Prefetcher) OnAccess(a *prefetch.Access, iss prefetch.Issuer) {
	p.metrics.Accesses++
	block := int64(uint64(a.Addr) >> p.cfg.BlockShift)

	// Context capture and two-level indexing (Figure 7). The default
	// attributes are active in every set the hot path hashes, so their fold
	// is computed once and extended into the full-context hash (reducer
	// key) and the reduced-context hash (CST key); when the reducer holds
	// the full set, the CST key reuses the reducer's hash outright.
	v := p.machine.capture(a, p.cfg.BlockShift)
	prefix := hashDefaultPrefix(&v)
	fullHash := hashExtend(prefix, &v, FullAttrSet)
	reduced := fullHash
	var red *reducerEntry
	if !p.cfg.DisableReducer {
		red = p.reducer.lookup(fullHash)
		if red.active != FullAttrSet {
			reduced = hashExtend(prefix, &v, red.active)
		}
	}
	key := p.table.key(reduced)

	// Feedback: reward every queued prediction of the current block by its
	// depth (Figure 5), and fold the outcome into the policy.
	p.queue.match(block, p.index, func(e *pfEntry, depth int) {
		p.metrics.QueueHits++
		p.metrics.HitDepths.Add(depth)
		r := p.rewardAt(depth)
		switch {
		case r > 0:
			p.metrics.PosRewards++
		case r < 0:
			p.metrics.NegRewards++
		default:
			p.metrics.ZeroRewards++
		}
		if entry := p.table.lookup(e.key); entry != nil {
			entry.rewardSlot(e.slot, e.delta, r)
		}
		if p.obs != nil {
			p.traceReward(e.key, e.delta, r, depth, e.issued)
		}
		// The policy's accuracy estimate tracks the hit rate of actual
		// prefetches (§5); shadow training does not throttle the degree.
		if e.issued {
			p.pendingIssued--
			if r > 0 {
				p.metrics.OutcomeAccurate++
			} else {
				p.metrics.OutcomeLate++
			}
			p.policy.feedback(r > 0)
		}
	})

	// Collection: associate one sampled older context with the current
	// block. The paper samples a subset of the context-address pairs (§4.2)
	// — one random predefined depth per access keeps insertion pressure on
	// a CST entry low enough that candidates survive until their reward
	// arrives (~an effective-window of accesses later).
	d := p.cfg.SampleDepths[int(p.policy.next()%uint64(len(p.cfg.SampleDepths)))]
	if h := p.history.at(d); h != nil {
		delta := block - h.block
		if delta != 0 && delta >= -128 && delta <= 127 {
			entry, _ := p.table.ensure(h.key)
			switch entry.addCandidate(int8(delta), p.policy.next()&3 == 0) {
			case candInserted:
				p.metrics.CSTInsertions++
			case candReplaced:
				p.metrics.CSTReplacements++
			case candRejected:
				p.metrics.CSTRejects++
			}
		}
	}

	// Prediction: look up the current context and issue prefetches.
	entry := p.table.lookup(key)
	if red != nil {
		if entry != nil {
			red.noteWarm()
			if entry.overloaded(overloadChurn) {
				if red.overload() {
					p.metrics.Activations++
				}
				entry.decayChurn()
			}
		} else {
			red.noteCold()
			if red.coldStreak >= coldStreakLimit {
				if red.underload() {
					p.metrics.Deactivations++
				}
			}
		}
	}
	if entry != nil {
		p.predict(entry, key, block, a, iss)
	}

	// The current context joins the history queue for future collection.
	p.history.push(key, block)
	p.index++
	p.machine.update(a, p.cfg.BlockShift)

	if p.index&(churnDecayEvery-1) == 0 {
		for i := range p.table.entries {
			p.table.entries[i].decayChurn()
		}
	}
}

// predict issues up to degree real prefetches from the entry's best links
// and possibly one exploratory shadow prefetch (ε-greedy).
func (p *Prefetcher) predict(entry *cstEntry, key cstKey, block int64, a *prefetch.Access, iss prefetch.Issuer) {
	if entry.n == 0 {
		return
	}

	// Exploration: a policy-selected candidate trains as a shadow
	// operation (ε-greedy by default; softmax/UCB as extensions).
	entry.noteTrial()
	if !p.cfg.DisableShadow {
		if li := p.policy.exploreChoice(p.cfg.Policy, entry); li >= 0 {
			p.metrics.Explores++
			real, reason := p.enqueue(entry.deltas[li], uint8(li), key, block, a, iss, false)
			if p.obs != nil {
				p.traceDecision(entry, key, entry.deltas[li], real, true, reason)
			}
		}
	}

	// Exploitation: the highest-scoring candidates, throttled by accuracy
	// and by memory-system pressure. Each iteration takes the front-most
	// not-yet-issued slot of the live rank order. The scan restarts from
	// the front every time because enqueue can rescore this very entry
	// (queue pushes fire expiry penalties), reshuffling the order mid-loop
	// — re-deriving the best from current scores is precisely what the old
	// per-iteration rescan did, which keeps results bit-identical.
	degree := p.policy.degree(p.cfg.MaxDegree)
	issued := 0
	var issuedMask uint8
	for issued < degree {
		best := -1
		for j := 0; j < int(entry.n); j++ {
			if s := entry.order[j]; issuedMask&(1<<s) == 0 {
				best = int(s)
				break
			}
		}
		if best < 0 {
			break
		}
		issuedMask |= 1 << uint(best)
		delta, score := entry.deltas[best], entry.scores[best]
		if score < p.cfg.ScoreThreshold {
			// No candidate with positive evidence: spend no memory traffic,
			// but keep training — a random under-threshold candidate goes
			// into the queue as a shadow so its reward can be measured
			// (ties would otherwise always train the same link).
			p.metrics.Suppressed++
			if !p.cfg.DisableShadow {
				li := p.policy.pickSlot(entry)
				real, reason := p.enqueue(entry.deltas[li], uint8(li), key, block, a, iss, false)
				if reason == ReasonShadow {
					reason = ReasonSuppressed
				}
				if p.obs != nil {
					p.traceDecision(entry, key, entry.deltas[li], real, true, reason)
				}
			}
			break
		}
		p.metrics.Exploits++
		dispatched, reason := p.enqueue(delta, uint8(best), key, block, a, iss, true)
		if p.obs != nil {
			p.traceDecision(entry, key, delta, dispatched, false, reason)
		}
		issued++
	}
}

// Issue/suppress reasons attached to decision attribution: why a
// prediction did or did not dispatch to memory. The values are package
// constants (never built per decision), so recording one costs a pointer
// copy and no allocation.
const (
	// ReasonIssued marks a prediction dispatched to memory.
	ReasonIssued = "issued"
	// ReasonShadow marks a training-only prediction (exploration or an
	// explicit shadow) that was never meant to dispatch.
	ReasonShadow = "shadow"
	// ReasonSuppressed marks the threshold-suppression shadow: the best
	// candidate's score sat under ScoreThreshold, so the round trained a
	// random link instead of spending memory traffic.
	ReasonSuppressed = "suppressed"
	// ReasonMSHRDemoted marks a wanted-real prediction demoted to a shadow
	// because the memory system was stressed (free MSHRs below reserve).
	ReasonMSHRDemoted = "mshr-demoted"
	// ReasonDupDemoted marks a wanted-real prediction demoted because the
	// block was already in flight from an earlier context.
	ReasonDupDemoted = "dup-demoted"
	// ReasonNegTarget marks a prediction dropped outright: the delta
	// pointed below address zero.
	ReasonNegTarget = "negative-target"
	// ReasonRefused marks a wanted-real prediction the issuer refused to
	// dispatch (no slot at issue time); it trains as a shadow.
	ReasonRefused = "refused"
)

// enqueue pushes one prediction into the prefetch queue, dispatching it to
// memory unless it is a shadow, a duplicate, or the MSHRs are depleted.
// Expired queue entries displaced by the push receive the expiry penalty.
// It reports whether the prediction actually dispatched to memory (false
// for shadows and demotions) and why, which the decision trace records.
func (p *Prefetcher) enqueue(delta int8, slot uint8, key cstKey, block int64, a *prefetch.Access, iss prefetch.Issuer, wantReal bool) (bool, string) {
	target := block + int64(delta)
	if target < 0 {
		return false, ReasonNegTarget
	}
	addr := memmodel.Addr(uint64(target) << p.cfg.BlockShift)

	// The target's bucket chain head serves both the duplicate check and
	// the push below.
	b := p.queue.bucket(target)
	real, reason := wantReal, ReasonShadow
	if real {
		reason = ReasonIssued
		if iss.FreePrefetchSlots(a.Now) < p.cfg.MSHRReserve {
			// Memory system stressed: demote to a shadow operation (§4.2).
			real, reason = false, ReasonMSHRDemoted
		}
	}
	if real {
		if predicted, issuedBefore := p.queue.containsAt(b, target); predicted && issuedBefore {
			// Already in flight from an earlier context: re-enqueue as a
			// shadow to train this context-address pair too (§4.2).
			real, reason = false, ReasonDupDemoted
		}
	}

	dispatched := false
	if real {
		dispatched = iss.Prefetch(addr, a.Now)
		if !dispatched {
			reason = ReasonRefused
		}
	}
	if !dispatched {
		iss.Shadow(addr)
	}

	p.metrics.Predictions++
	if dispatched {
		p.metrics.RealPrefetches++
		p.pendingIssued++
	} else {
		p.metrics.ShadowPrefetches++
	}
	exp, has := p.queue.pushAt(b, target, key, delta, slot, p.index, dispatched)
	if has {
		p.metrics.Expired++
		if entry := p.table.lookup(exp.key); entry != nil {
			entry.rewardSlot(exp.slot, exp.delta, p.expPenalty)
		}
		if exp.issued {
			p.pendingIssued--
			p.metrics.OutcomeEvicted++
			p.policy.feedback(false)
		}
		if p.obs != nil {
			p.traceExpire(exp.key, exp.delta, p.expPenalty, exp.issued)
		}
	}
	return dispatched, reason
}
