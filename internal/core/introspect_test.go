package core

import (
	"strings"
	"testing"
)

func trainedPrefetcher(t *testing.T) *Prefetcher {
	t.Helper()
	p := MustNew(DefaultConfig())
	iss := newTestIssuer()
	blocks := []int64{100, 130, 90, 160, 75, 140, 110, 95}
	for i := 0; i < 200*len(blocks); i++ {
		p.OnAccess(chaseAccess(blocks, i), iss)
	}
	return p
}

func TestInspectTrainedState(t *testing.T) {
	p := trainedPrefetcher(t)
	st := p.Inspect()
	if st.Entries == 0 || st.Links == 0 {
		t.Fatalf("no learned state: %+v", st)
	}
	if st.PositiveLinks == 0 {
		t.Error("expected positive-score links after training on a recurring chase")
	}
	if st.Links < st.PositiveLinks {
		t.Error("positive links cannot exceed total links")
	}
	if len(st.TopDeltas) == 0 {
		t.Error("expected top deltas")
	}
	if len(st.TopDeltas) > 8 {
		t.Errorf("TopDeltas capped at 8, got %d", len(st.TopDeltas))
	}
	for i := 1; i < len(st.TopDeltas); i++ {
		if st.TopDeltas[i].Count > st.TopDeltas[i-1].Count {
			t.Error("TopDeltas not sorted by count")
		}
	}
}

func TestInspectEmpty(t *testing.T) {
	p := MustNew(DefaultConfig())
	st := p.Inspect()
	if st.Entries != 0 || st.Links != 0 || st.MeanScore != 0 {
		t.Errorf("fresh prefetcher should have empty stats: %+v", st)
	}
}

func TestDumpCST(t *testing.T) {
	p := trainedPrefetcher(t)
	var b strings.Builder
	p.DumpCST(&b, 5)
	out := b.String()
	if !strings.Contains(out, "total non-empty entries:") {
		t.Errorf("missing summary line:\n%s", out)
	}
	if !strings.Contains(out, "links=") {
		t.Errorf("missing entry lines:\n%s", out)
	}
}

// link is the test-side view of one CST slot; production state lives in
// the flattened arenas (cst.go), so edge-case shapes are planted through
// this helper struct.
type link struct {
	delta int8
	score int8
	used  bool
}

// plant installs a valid CST entry at idx with the given links, bypassing
// the learning path so edge-case table shapes are exact.
func plant(p *Prefetcher, idx int, links ...link) {
	e := &p.table.entries[idx]
	e.valid = true
	e.tag = uint8(idx)
	e.used = 0
	for li, l := range links {
		e.deltas[li] = l.delta
		e.scores[li] = l.score
		if l.used {
			e.used |= 1 << uint(li)
		}
	}
	e.rebuildOrder()
}

func TestInspectSaturatedLinks(t *testing.T) {
	p := MustNew(DefaultConfig())
	plant(p, 0,
		link{delta: 1, score: 127, used: true},
		link{delta: 2, score: 127, used: true},
		link{delta: 3, score: 50, used: true},
		link{delta: 4, score: -10, used: true})
	plant(p, 1, link{delta: 1, score: 127, used: true})
	st := p.Inspect()
	if st.Entries != 2 || st.Links != 5 {
		t.Fatalf("entries/links = %d/%d, want 2/5", st.Entries, st.Links)
	}
	if st.SaturatedLinks != 3 {
		t.Errorf("SaturatedLinks = %d, want 3", st.SaturatedLinks)
	}
	// Saturated links are positive links too; the ceiling is not a
	// separate category.
	if st.PositiveLinks != 4 {
		t.Errorf("PositiveLinks = %d, want 4", st.PositiveLinks)
	}
	want := float64(127+127+50-10+127) / 5
	if st.MeanScore != want {
		t.Errorf("MeanScore = %v, want %v", st.MeanScore, want)
	}
}

// TestInspectValidEntryWithNoUsedLinks pins the Entries definition: a
// valid entry whose links are all unused holds no candidates and must not
// count as populated.
func TestInspectValidEntryWithNoUsedLinks(t *testing.T) {
	p := MustNew(DefaultConfig())
	plant(p, 0, link{delta: 7, used: false})
	st := p.Inspect()
	if st.Entries != 0 || st.Links != 0 {
		t.Errorf("candidate-free entry counted: %+v", st)
	}
}

func TestTopDeltasTieBreaking(t *testing.T) {
	p := MustNew(DefaultConfig())
	// delta +5 twice, deltas -3 and +9 once each: the tie between -3 and
	// +9 must break toward the smaller delta, deterministically.
	plant(p, 0,
		link{delta: 5, score: 1, used: true},
		link{delta: 9, score: 1, used: true})
	plant(p, 1,
		link{delta: 5, score: 1, used: true},
		link{delta: -3, score: 1, used: true})
	st := p.Inspect()
	want := []DeltaCount{{Delta: 5, Count: 2}, {Delta: -3, Count: 1}, {Delta: 9, Count: 1}}
	if len(st.TopDeltas) != len(want) {
		t.Fatalf("TopDeltas = %+v, want %+v", st.TopDeltas, want)
	}
	for i := range want {
		if st.TopDeltas[i] != want[i] {
			t.Fatalf("TopDeltas[%d] = %+v, want %+v", i, st.TopDeltas[i], want[i])
		}
	}
}

// TestTopDeltasTieStability hammers the tie-break with a table where every
// delta has the same count: the map feeding the sort iterates in random
// order per run, so only a deterministic comparator keeps repeated Inspect
// calls identical.
func TestTopDeltasTieStability(t *testing.T) {
	p := MustNew(DefaultConfig())
	deltas := []int8{44, -7, 19, 3, -120, 88, -1, 25, 6, -60, 101, -33}
	for i, d := range deltas {
		plant(p, i, link{delta: d, score: 1, used: true})
	}
	first := p.Inspect().TopDeltas
	for run := 0; run < 20; run++ {
		got := p.Inspect().TopDeltas
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("run %d: TopDeltas[%d] = %+v, want %+v (unstable tie-break)",
					run, i, got[i], first[i])
			}
		}
	}
	for i := 1; i < len(first); i++ {
		if first[i-1].Count == first[i].Count && first[i-1].Delta >= first[i].Delta {
			t.Fatalf("tie at count %d not broken by ascending delta: %+v before %+v",
				first[i].Count, first[i-1], first[i])
		}
	}
}

func TestTopDeltasCapAtEight(t *testing.T) {
	p := MustNew(DefaultConfig())
	// Twelve distinct deltas, all tied at count 1: exactly eight survive,
	// and by the tie rule they are the eight smallest.
	for i := 0; i < 12; i++ {
		plant(p, i, link{delta: int8(i + 1), score: 1, used: true})
	}
	st := p.Inspect()
	if len(st.TopDeltas) != 8 {
		t.Fatalf("TopDeltas length %d, want 8", len(st.TopDeltas))
	}
	for i, d := range st.TopDeltas {
		if d.Delta != int8(i+1) || d.Count != 1 {
			t.Fatalf("TopDeltas[%d] = %+v, want {%d 1}", i, d, i+1)
		}
	}
}
