package core

import (
	"strings"
	"testing"
)

func trainedPrefetcher(t *testing.T) *Prefetcher {
	t.Helper()
	p := MustNew(DefaultConfig())
	iss := newTestIssuer()
	blocks := []int64{100, 130, 90, 160, 75, 140, 110, 95}
	for i := 0; i < 200*len(blocks); i++ {
		p.OnAccess(chaseAccess(blocks, i), iss)
	}
	return p
}

func TestInspectTrainedState(t *testing.T) {
	p := trainedPrefetcher(t)
	st := p.Inspect()
	if st.Entries == 0 || st.Links == 0 {
		t.Fatalf("no learned state: %+v", st)
	}
	if st.PositiveLinks == 0 {
		t.Error("expected positive-score links after training on a recurring chase")
	}
	if st.Links < st.PositiveLinks {
		t.Error("positive links cannot exceed total links")
	}
	if len(st.TopDeltas) == 0 {
		t.Error("expected top deltas")
	}
	if len(st.TopDeltas) > 8 {
		t.Errorf("TopDeltas capped at 8, got %d", len(st.TopDeltas))
	}
	for i := 1; i < len(st.TopDeltas); i++ {
		if st.TopDeltas[i].Count > st.TopDeltas[i-1].Count {
			t.Error("TopDeltas not sorted by count")
		}
	}
}

func TestInspectEmpty(t *testing.T) {
	p := MustNew(DefaultConfig())
	st := p.Inspect()
	if st.Entries != 0 || st.Links != 0 || st.MeanScore != 0 {
		t.Errorf("fresh prefetcher should have empty stats: %+v", st)
	}
}

func TestDumpCST(t *testing.T) {
	p := trainedPrefetcher(t)
	var b strings.Builder
	p.DumpCST(&b, 5)
	out := b.String()
	if !strings.Contains(out, "total non-empty entries:") {
		t.Errorf("missing summary line:\n%s", out)
	}
	if !strings.Contains(out, "links=") {
		t.Errorf("missing entry lines:\n%s", out)
	}
}
