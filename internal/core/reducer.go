package core

// reducer is the first-level index of §4.4/Figure 7: a direct-mapped table
// keyed by the hash of the full context, holding per-context bitmaps of
// the attributes that actually participate in the CST index. It performs
// online feature selection: activating attributes splits an overloaded
// reduced context, deactivating them merges over-fitted ones.
type reducer struct {
	entries []reducerEntry
	bits    uint
}

type reducerEntry struct {
	tag    uint8
	active AttrSet
	// coldStreak counts consecutive lookups whose reduced context was cold
	// in the CST; a long streak signals over-fitting (contexts spread over
	// too many unique states) and triggers attribute deactivation.
	coldStreak uint8
	valid      bool
}

func newReducer(entries int) *reducer {
	r := &reducer{entries: make([]reducerEntry, entries)}
	n := entries
	for n > 1 {
		n >>= 1
		r.bits++
	}
	return r
}

// lookup returns the entry for the full-context hash, allocating it with
// the default attribute set on first touch. The 16-bit hash value of the
// paper maps to index bits plus a small tag (Figure 7).
func (r *reducer) lookup(fullHash uint64) *reducerEntry {
	mixed := fullHash * 0x9e3779b97f4a7c15
	mixed ^= mixed >> 29
	idx := mixed >> (64 - r.bits)
	tag := uint8(mixed>>24) & 0x3
	e := &r.entries[idx]
	if !e.valid || e.tag != tag {
		*e = reducerEntry{tag: tag, active: DefaultAttrSet, valid: true}
	}
	return e
}

// overload activates the first inactive attribute (in activation order),
// splitting the reduced context (§4.4). It reports whether a change was
// made.
func (e *reducerEntry) overload() bool {
	for _, id := range activationOrder {
		if !e.active.Has(id) {
			e.active = e.active.With(id)
			e.coldStreak = 0
			return true
		}
	}
	return false
}

// underload deactivates the most recently activatable attribute, merging
// context states. The default set is never reduced. It reports whether a
// change was made.
func (e *reducerEntry) underload() bool {
	for i := len(activationOrder) - 1; i >= 0; i-- {
		id := activationOrder[i]
		if e.active.Has(id) {
			e.active = e.active.Without(id)
			e.coldStreak = 0
			return true
		}
	}
	return false
}

// noteCold records that the reduced context missed in the CST; a streak of
// misses indicates overfitting.
func (e *reducerEntry) noteCold() {
	if e.coldStreak < 255 {
		e.coldStreak++
	}
}

// noteWarm records a CST hit, decaying the cold streak.
func (e *reducerEntry) noteWarm() {
	if e.coldStreak > 0 {
		e.coldStreak -= 1
	}
}
