package core

// prefetchQueue is the feedback unit's queue (Table 2: 128 entries). Every
// prediction — real or shadow — is pushed with the context/link that
// produced it and the access index at which it was made. Demand accesses
// search the queue; the depth of a hit feeds the reward function, and
// entries that fall off the end unhit earn the expiry penalty.
//
// The hardware design bounds the per-cycle search and defers lookups; the
// software model used to search the whole queue on every demand access,
// which put two O(QueueDepth) scans on the simulator's hottest path. The
// queue now carries a block→entry hash index (fixed bucket array, entries
// chained intrusively through pfEntry.next in ascending slot order), so
// match and contains cost O(live entries predicting the block) instead of
// O(QueueDepth), with zero per-access allocation. Chains are kept in
// ascending slot order so match visits entries exactly as the old linear
// scan did — feedback order feeds the policy's moving accuracy estimate,
// and reordering it would change simulation results.
type prefetchQueue struct {
	entries []pfEntry
	head    int // next slot to overwrite (oldest entry)
	size    int
	// buckets maps hash(block) to the lowest-slot live, unhit entry
	// predicting a block with that hash; -1 = empty. Sized at ≥2x the queue
	// depth (power of two) so chains stay short.
	buckets []int32
	mask    uint64
}

type pfEntry struct {
	block  int64 // predicted block number
	key    cstKey
	delta  int8  // CST link that produced the prediction
	slot   uint8 // link slot hint for slot-memoized feedback (see rewardSlot)
	index  uint64
	issued bool // real prefetch (false = shadow)
	hit    bool // consumed by a demand access
	live   bool
	next   int32 // next chained entry (same bucket, higher slot); nilIdx = none
}

// nilIdx terminates intrusive bucket chains.
const nilIdx int32 = -1

func newPrefetchQueue(depth int) *prefetchQueue {
	nb := 1
	for nb < 2*depth {
		nb <<= 1
	}
	q := &prefetchQueue{
		entries: make([]pfEntry, depth),
		buckets: make([]int32, nb),
		mask:    uint64(nb - 1),
	}
	for i := range q.buckets {
		q.buckets[i] = nilIdx
	}
	return q
}

// bucket returns the chain head slot for block's hash bucket.
func (q *prefetchQueue) bucket(block int64) *int32 {
	h := uint64(block) * 0x9e3779b97f4a7c15
	return &q.buckets[(h^(h>>32))&q.mask]
}

// link inserts slot i into its block's bucket chain, keeping the chain in
// ascending slot order (the old full-scan match order). b must be the
// chain head of the entry's block (the callers have it in hand already).
func (q *prefetchQueue) link(b *int32, i int32) {
	if *b == nilIdx || *b > i {
		q.entries[i].next = *b
		*b = i
		return
	}
	p := *b
	for q.entries[p].next != nilIdx && q.entries[p].next < i {
		p = q.entries[p].next
	}
	q.entries[i].next = q.entries[p].next
	q.entries[p].next = i
}

// unlink removes slot i from its bucket chain. i must be chained (live and
// unhit).
func (q *prefetchQueue) unlink(i int32) {
	b := q.bucket(q.entries[i].block)
	if *b == i {
		*b = q.entries[i].next
		q.entries[i].next = nilIdx
		return
	}
	p := *b
	for q.entries[p].next != i {
		p = q.entries[p].next
	}
	q.entries[p].next = q.entries[i].next
	q.entries[i].next = nilIdx
}

// push appends a prediction built from the given fields (hit=false,
// live=true), returning the identity of the expired entry it displaced —
// if that entry was live and never hit — so the caller can apply the
// expiry penalty. Field arguments rather than a pfEntry value keep the
// call boundary in registers: this runs once per prediction, and the
// struct would be copied twice per call.
func (q *prefetchQueue) push(block int64, key cstKey, delta int8, slot uint8, index uint64, issued bool) (exp expired, hasExpired bool) {
	return q.pushAt(q.bucket(block), block, key, delta, slot, index, issued)
}

// expired identifies a displaced live-unhit prediction so the caller can
// apply the expiry penalty.
type expired struct {
	key    cstKey
	delta  int8
	slot   uint8
	issued bool
}

// pushAt is push with the block's bucket chain head already in hand —
// enqueue computes it once and shares it between the duplicate check and
// the push (the bucket load is a random access, worth not repeating).
func (q *prefetchQueue) pushAt(b *int32, block int64, key cstKey, delta int8, slot uint8, index uint64, issued bool) (exp expired, hasExpired bool) {
	h := int32(q.head)
	old := &q.entries[h]
	wasLive := old.live && !old.hit
	if wasLive {
		q.unlink(h)
		exp = expired{key: old.key, delta: old.delta, slot: old.slot, issued: old.issued}
	}
	*old = pfEntry{block: block, key: key, delta: delta, slot: slot, index: index, issued: issued, live: true, next: nilIdx}
	q.link(b, h)
	q.head++
	if q.head == len(q.entries) {
		q.head = 0
	}
	if q.size < len(q.entries) {
		// The ring was not yet full, so the displaced slot was never a live
		// prediction.
		q.size++
		return expired{}, false
	}
	return exp, wasLive
}

// match invokes fn for every live, unhit entry predicting `block`, marking
// each as hit (and dropping it from the index). fn receives the entry and
// the depth in accesses between the prediction and now. fn must not mutate
// the queue.
func (q *prefetchQueue) match(block int64, nowIndex uint64, fn func(e *pfEntry, depth int)) {
	b := q.bucket(block)
	prev := nilIdx
	for i := *b; i != nilIdx; {
		e := &q.entries[i]
		next := e.next
		if e.block != block {
			prev = i
			i = next
			continue
		}
		e.hit = true
		if prev == nilIdx {
			*b = next
		} else {
			q.entries[prev].next = next
		}
		e.next = nilIdx
		fn(e, int(nowIndex-e.index))
		i = next
	}
}

// contains reports whether a live, unhit entry predicts block, and whether
// any such entry was actually issued to memory.
func (q *prefetchQueue) contains(block int64) (predicted, issued bool) {
	return q.containsAt(q.bucket(block), block)
}

// containsAt is contains with the block's bucket chain head already in hand.
func (q *prefetchQueue) containsAt(b *int32, block int64) (predicted, issued bool) {
	for i := *b; i != nilIdx; i = q.entries[i].next {
		e := &q.entries[i]
		if e.block == block {
			predicted = true
			if e.issued {
				return true, true
			}
		}
	}
	return predicted, issued
}

// reset clears the queue.
func (q *prefetchQueue) reset() {
	for i := range q.entries {
		q.entries[i] = pfEntry{}
	}
	for i := range q.buckets {
		q.buckets[i] = nilIdx
	}
	q.head, q.size = 0, 0
}
