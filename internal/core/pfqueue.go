package core

// prefetchQueue is the feedback unit's queue (Table 2: 128 entries). Every
// prediction — real or shadow — is pushed with the context/link that
// produced it and the access index at which it was made. Demand accesses
// search the queue; the depth of a hit feeds the reward function, and
// entries that fall off the end unhit earn the expiry penalty.
//
// The hardware design bounds the per-cycle search and defers lookups; the
// software model searches the whole queue, which only strengthens feedback
// fidelity (§5 notes reward delivery may be deferred with no impact).
type prefetchQueue struct {
	entries []pfEntry
	head    int // next slot to overwrite (oldest entry)
	size    int
}

type pfEntry struct {
	block  int64 // predicted block number
	key    cstKey
	delta  int8 // CST link that produced the prediction
	index  uint64
	issued bool // real prefetch (false = shadow)
	hit    bool // consumed by a demand access
	live   bool
}

func newPrefetchQueue(depth int) *prefetchQueue {
	return &prefetchQueue{entries: make([]pfEntry, depth)}
}

// push appends a prediction, returning the expired entry it displaced (if
// that entry was live and never hit) so the caller can apply the expiry
// penalty.
func (q *prefetchQueue) push(e pfEntry) (expired pfEntry, hasExpired bool) {
	old := q.entries[q.head]
	q.entries[q.head] = e
	q.head = (q.head + 1) % len(q.entries)
	if q.size < len(q.entries) {
		q.size++
		return pfEntry{}, false
	}
	if old.live && !old.hit {
		return old, true
	}
	return pfEntry{}, false
}

// match invokes fn for every live, unhit entry predicting `block`, marking
// each as hit. fn receives the entry and the depth in accesses between the
// prediction and now.
func (q *prefetchQueue) match(block int64, nowIndex uint64, fn func(e *pfEntry, depth int)) {
	for i := range q.entries {
		e := &q.entries[i]
		if !e.live || e.hit || e.block != block {
			continue
		}
		e.hit = true
		fn(e, int(nowIndex-e.index))
	}
}

// contains reports whether a live, unhit entry predicts block, and whether
// any such entry was actually issued to memory.
func (q *prefetchQueue) contains(block int64) (predicted, issued bool) {
	for i := range q.entries {
		e := &q.entries[i]
		if e.live && !e.hit && e.block == block {
			predicted = true
			issued = issued || e.issued
		}
	}
	return predicted, issued
}

// reset clears the queue.
func (q *prefetchQueue) reset() {
	for i := range q.entries {
		q.entries[i] = pfEntry{}
	}
	q.head, q.size = 0, 0
}
