package core

import (
	"testing"

	"semloc/internal/memmodel"
	"semloc/internal/stats"
)

// refQueue is the pre-index reference implementation of the prefetch
// queue: full linear scans over the ring, exactly as the original hot path
// did. The differential test below drives it in lockstep with the indexed
// prefetchQueue to prove the index changes nothing observable — including
// match order, which feeds the policy's order-sensitive accuracy estimate.
type refQueue struct {
	entries []pfEntry
	head    int
	size    int
}

func newRefQueue(depth int) *refQueue { return &refQueue{entries: make([]pfEntry, depth)} }

func (q *refQueue) push(e pfEntry) (expired pfEntry, hasExpired bool) {
	old := q.entries[q.head]
	q.entries[q.head] = e
	q.head = (q.head + 1) % len(q.entries)
	if q.size < len(q.entries) {
		q.size++
		return pfEntry{}, false
	}
	if old.live && !old.hit {
		return old, true
	}
	return pfEntry{}, false
}

func (q *refQueue) match(block int64, nowIndex uint64, fn func(e *pfEntry, depth int)) {
	for i := range q.entries {
		e := &q.entries[i]
		if !e.live || e.hit || e.block != block {
			continue
		}
		e.hit = true
		fn(e, int(nowIndex-e.index))
	}
}

func (q *refQueue) contains(block int64) (predicted, issued bool) {
	for i := range q.entries {
		e := &q.entries[i]
		if e.live && !e.hit && e.block == block {
			predicted = true
			issued = issued || e.issued
		}
	}
	return predicted, issued
}

type matchEvent struct {
	block int64
	delta int8
	depth int
}

// TestPrefetchQueueDifferential drives the indexed queue and the reference
// scan with an identical random operation stream and requires identical
// observable behaviour: expiry results, contains results, and the exact
// sequence (order included) of match callbacks.
func TestPrefetchQueueDifferential(t *testing.T) {
	for _, depth := range []int{1, 2, 3, 8, 128} {
		rng := memmodel.NewRNG(uint64(991 + depth))
		q := newPrefetchQueue(depth)
		ref := newRefQueue(depth)
		// A small block universe forces collisions, duplicate predictions of
		// the same block, and bucket chains longer than one.
		const blocks = 24
		for op := 0; op < 20000; op++ {
			block := int64(100 + rng.Intn(blocks))
			switch rng.Intn(4) {
			case 0, 1: // push
				e := pfEntry{
					block:  block,
					delta:  int8(rng.Intn(40) - 20),
					index:  uint64(op),
					issued: rng.Intn(2) == 0,
					live:   true,
				}
				exp1, has1 := q.push(e.block, e.key, e.delta, e.slot, e.index, e.issued)
				exp2, has2 := ref.push(e)
				if has1 != has2 || exp1.key != exp2.key || exp1.delta != exp2.delta || exp1.slot != exp2.slot || exp1.issued != exp2.issued {
					t.Fatalf("depth %d op %d: push expiry diverged: %+v/%v vs %+v/%v",
						depth, op, exp1, has1, exp2, has2)
				}
			case 2: // match
				var got, want []matchEvent
				q.match(block, uint64(op), func(e *pfEntry, d int) {
					got = append(got, matchEvent{e.block, e.delta, d})
				})
				ref.match(block, uint64(op), func(e *pfEntry, d int) {
					want = append(want, matchEvent{e.block, e.delta, d})
				})
				if len(got) != len(want) {
					t.Fatalf("depth %d op %d: match count diverged: %d vs %d", depth, op, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("depth %d op %d: match %d diverged: %+v vs %+v", depth, op, i, got[i], want[i])
					}
				}
			case 3: // contains
				p1, i1 := q.contains(block)
				p2, i2 := ref.contains(block)
				if p1 != p2 || i1 != i2 {
					t.Fatalf("depth %d op %d: contains diverged: %v/%v vs %v/%v", depth, op, p1, i1, p2, i2)
				}
			}
		}
	}
}

// TestPrefetchQueueResetClearsIndex ensures reset drops the index too: a
// block predicted before reset must not match after it.
func TestPrefetchQueueResetClearsIndex(t *testing.T) {
	q := newPrefetchQueue(4)
	q.push(7, cstKey{}, 0, 0, 0, false)
	q.reset()
	if pred, _ := q.contains(7); pred {
		t.Error("contains found an entry after reset")
	}
	q.match(7, 1, func(*pfEntry, int) { t.Error("match fired after reset") })
	// The queue must be fully usable after reset.
	q.push(9, cstKey{}, 0, 0, 0, true)
	if pred, issued := q.contains(9); !pred || !issued {
		t.Error("queue unusable after reset")
	}
}

// TestHitDepthBeyondQueueDepthClamps regresses the sparsely-filled-queue
// overflow: a queue holding a single entry only expires it after QueueDepth
// *pushes*, so a demand access can hit it an unbounded number of *accesses*
// later — the match depth then exceeds the HitDepths histogram sized to
// QueueDepth and must clamp into the overflow bucket, not panic or drop.
func TestHitDepthBeyondQueueDepthClamps(t *testing.T) {
	const depth = 8
	q := newPrefetchQueue(depth)
	hd := stats.NewHistogram(depth)

	// One prediction at access index 0; the queue then sits sparsely filled
	// while 5*depth accesses pass with no further pushes.
	q.push(42, cstKey{}, 0, 0, 0, false)
	now := uint64(5 * depth)

	matched := 0
	q.match(42, now, func(e *pfEntry, d int) {
		matched++
		if d != int(now) {
			t.Errorf("match depth = %d, want %d", d, now)
		}
		hd.Add(d) // the OnAccess feedback path
	})
	if matched != 1 {
		t.Fatalf("matched %d entries, want 1", matched)
	}
	if got := hd.Count(hd.Max()); got != 1 {
		t.Errorf("overflow bucket holds %d, want 1 (clamped depth %d)", got, now)
	}
	if hd.Total() != 1 {
		t.Errorf("histogram total = %d, want 1", hd.Total())
	}
}
