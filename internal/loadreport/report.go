// Package loadreport defines the LOADGEN_<n>.json artifact cmd/loadgen
// writes and cmd/inspect's `serve` subcommand renders: one saturation or
// fixed-rate run against a prefetchd daemon, with client-observed latency
// percentiles, achieved throughput, degradation rates, and (when the
// daemon's observability endpoint was scraped) the server-side latency
// histogram counts. The schema follows the BENCH_<n>.json conventions:
// versioned, validated after write by re-reading, and comparable across
// runs.
package loadreport

import (
	"encoding/json"
	"fmt"
	"os"
)

// Schema is the current artifact schema version. Schema 2 added batched
// serving: the report-level Batch field, and the server scrape's
// batch-size histogram summary plus the coalesced-writes counter. Schema
// 1 artifacts (recorded before batching existed) still load and
// validate — they implicitly ran batch 1.
const Schema = 2

// Percentiles is a latency summary in nanoseconds, estimated from the
// load generator's log-spaced histogram by linear interpolation
// (obs.Histogram.Quantile); values are "at least" when the tail escapes
// the highest finite bucket.
type Percentiles struct {
	P50NS  int64 `json:"p50_ns"`
	P95NS  int64 `json:"p95_ns"`
	P99NS  int64 `json:"p99_ns"`
	P999NS int64 `json:"p999_ns"`
}

// ServerScrape is the server-side view captured from the daemon's
// /debug/vars endpoint after the run: the serving counters plus the count
// of every serve_*_latency histogram. The count-match invariant — every
// latency histogram count equals decisions_total — is part of Validate.
type ServerScrape struct {
	DecisionsTotal uint64 `json:"decisions_total"`
	DegradedTotal  uint64 `json:"degraded_total"`
	ReplayedTotal  uint64 `json:"replayed_total"`
	BusyTotal      uint64 `json:"busy_total"`
	// LatencyCounts maps each serve_*_latency histogram name to its
	// observation count.
	LatencyCounts map[string]uint64 `json:"latency_counts"`
	// FrameLatencySumNS is the serve_frame_latency histogram's sum — with
	// DecisionsTotal it gives the server-side mean end-to-end latency.
	FrameLatencySumNS int64 `json:"frame_latency_sum_ns"`

	// BatchSize summarizes the serve_batch_size histogram (fresh
	// decisions per served frame). Its sum equals DecisionsTotal — the
	// batch-path count-match rule Validate enforces: stage latencies stay
	// per *decision*, never per frame, so batched and unbatched artifacts
	// compare like for like. Nil on schema-1 artifacts.
	BatchSize *BatchSizeSummary `json:"batch_size,omitempty"`
	// CoalescedWritesTotal counts reply frames that shared a syscall with
	// an earlier frame already sitting in a connection's write buffer.
	CoalescedWritesTotal uint64 `json:"coalesced_writes_total,omitempty"`
}

// BatchSizeSummary is the scraped serve_batch_size histogram: how many
// fresh decisions each served frame carried.
type BatchSizeSummary struct {
	Count uint64  `json:"count"` // served frames that produced fresh decisions
	Sum   float64 `json:"sum"`   // total fresh decisions (== decisions_total)
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
}

// Report is the LOADGEN_<n>.json artifact.
type Report struct {
	Loadgen int `json:"loadgen"`
	Schema  int `json:"schema"`

	// Workload/Scale/Seed describe a generated access stream; TraceFile a
	// recorded one (exactly one of Workload/TraceFile is set).
	Workload  string  `json:"workload,omitempty"`
	TraceFile string  `json:"trace_file,omitempty"`
	Scale     float64 `json:"scale,omitempty"`
	Seed      uint64  `json:"seed,omitempty"`

	Sessions int `json:"sessions"`
	// Batch is the per-request batch size the generator packed (1 =
	// frame-at-a-time). Required ≥1 on schema 2; schema-1 artifacts
	// predate the field and implicitly ran 1.
	Batch int `json:"batch,omitempty"`
	// TargetRate is the requested total decisions/sec across all sessions;
	// 0 means closed-loop (each session sends as fast as the daemon
	// answers — the saturation probe).
	TargetRate float64 `json:"target_rate,omitempty"`
	// OpenLoop records whether latency was measured from the scheduled
	// send time (coordinated-omission correction) rather than the actual
	// send time. True exactly when TargetRate > 0.
	OpenLoop   bool  `json:"open_loop"`
	DurationNS int64 `json:"duration_ns"`

	GoVersion string `json:"go"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`

	// Client-observed outcome.
	Decisions    uint64      `json:"decisions"`
	Degraded     uint64      `json:"degraded"`
	Replayed     uint64      `json:"replayed"`
	Errors       uint64      `json:"errors"`
	Busy         uint64      `json:"busy"`
	Retries      uint64      `json:"retries"`
	Reconnects   uint64      `json:"reconnects"`
	AchievedRate float64     `json:"achieved_rate"` // decisions/sec
	DegradedRate float64     `json:"degraded_rate"` // Degraded / Decisions
	BusyRate     float64     `json:"busy_rate"`     // Busy / Decisions
	Latency      Percentiles `json:"latency"`

	// Server is the daemon-side scrape (nil when -metrics wasn't given).
	Server *ServerScrape `json:"server,omitempty"`
}

// Validate sanity-checks a report: the run did work, the percentile
// ladder is ordered, and — when the server was scraped — every latency
// histogram count equals serve_decisions_total.
func (r *Report) Validate() error {
	if r.Schema != 1 && r.Schema != Schema {
		return fmt.Errorf("loadreport: unknown schema %d", r.Schema)
	}
	if r.Sessions <= 0 {
		return fmt.Errorf("loadreport: %d sessions", r.Sessions)
	}
	if r.Schema >= 2 && r.Batch < 1 {
		return fmt.Errorf("loadreport: schema %d requires batch >= 1, got %d", r.Schema, r.Batch)
	}
	if r.Schema == 1 && r.Batch != 0 {
		return fmt.Errorf("loadreport: schema 1 predates the batch field, got %d", r.Batch)
	}
	if (r.Workload == "") == (r.TraceFile == "") {
		return fmt.Errorf("loadreport: exactly one of workload and trace_file must be set")
	}
	if r.Decisions == 0 || r.DurationNS <= 0 || r.AchievedRate <= 0 {
		return fmt.Errorf("loadreport: run measured no work (decisions %d, duration %dns, rate %g)",
			r.Decisions, r.DurationNS, r.AchievedRate)
	}
	p := r.Latency
	if p.P50NS <= 0 || p.P50NS > p.P95NS || p.P95NS > p.P99NS || p.P99NS > p.P999NS {
		return fmt.Errorf("loadreport: percentile ladder out of order: %+v", p)
	}
	if r.OpenLoop != (r.TargetRate > 0) {
		return fmt.Errorf("loadreport: open_loop=%v inconsistent with target_rate=%g", r.OpenLoop, r.TargetRate)
	}
	if s := r.Server; s != nil {
		if s.DecisionsTotal == 0 {
			return fmt.Errorf("loadreport: server scrape saw no decisions")
		}
		if len(s.LatencyCounts) == 0 {
			return fmt.Errorf("loadreport: server scrape holds no latency histograms")
		}
		for name, count := range s.LatencyCounts {
			if count != s.DecisionsTotal {
				return fmt.Errorf("loadreport: %s count %d != serve_decisions_total %d (count-match invariant)",
					name, count, s.DecisionsTotal)
			}
		}
		if b := s.BatchSize; b != nil {
			// The batch histogram observes fresh-decisions-per-frame, so
			// its sum must re-add to decisions_total: latencies stayed
			// per decision, not per frame, even on the batched path.
			if b.Count == 0 {
				return fmt.Errorf("loadreport: batch_size histogram scraped empty")
			}
			if sum := uint64(b.Sum + 0.5); sum != s.DecisionsTotal {
				return fmt.Errorf("loadreport: sum(serve_batch_size) %d != serve_decisions_total %d (batch count-match)",
					sum, s.DecisionsTotal)
			}
		}
	}
	return nil
}

// WriteAndVerify marshals the report to path, re-reads and re-validates
// it, so a truncated or malformed artifact fails loudly.
func WriteAndVerify(rep *Report, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	check, err := Load(path)
	if err != nil {
		return err
	}
	return check.Validate()
}

// Load reads and parses (but does not Validate) an artifact.
func Load(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("loadreport: %s is not well-formed JSON: %w", path, err)
	}
	return &r, nil
}
