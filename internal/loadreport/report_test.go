package loadreport

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func valid() *Report {
	return &Report{
		Loadgen: 1, Schema: Schema,
		Workload: "list", Scale: 0.1, Seed: 1,
		Sessions: 2, Batch: 1, DurationNS: int64(time.Second),
		Decisions: 100, AchievedRate: 100,
		Latency: Percentiles{P50NS: 10, P95NS: 20, P99NS: 30, P999NS: 40},
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Report)
		want   string
	}{
		{"bad schema", func(r *Report) { r.Schema = 99 }, "schema"},
		{"no sessions", func(r *Report) { r.Sessions = 0 }, "sessions"},
		{"schema 2 without batch", func(r *Report) { r.Batch = 0 }, "batch"},
		{"schema 1 with batch", func(r *Report) { r.Schema = 1 }, "batch"},
		{"batch count-match violation", func(r *Report) {
			r.Server = &ServerScrape{DecisionsTotal: 100,
				LatencyCounts: map[string]uint64{"serve_decide_latency": 100},
				BatchSize:     &BatchSizeSummary{Count: 10, Sum: 99, Mean: 9.9, P50: 10, P95: 10}}
		}, "batch count-match"},
		{"empty batch histogram", func(r *Report) {
			r.Server = &ServerScrape{DecisionsTotal: 100,
				LatencyCounts: map[string]uint64{"serve_decide_latency": 100},
				BatchSize:     &BatchSizeSummary{}}
		}, "batch_size"},
		{"both sources", func(r *Report) { r.TraceFile = "x.trace" }, "exactly one"},
		{"neither source", func(r *Report) { r.Workload = "" }, "exactly one"},
		{"no work", func(r *Report) { r.Decisions = 0 }, "no work"},
		{"zero p50", func(r *Report) { r.Latency.P50NS = 0 }, "percentile"},
		{"inverted ladder", func(r *Report) { r.Latency.P99NS = 5 }, "percentile"},
		{"open-loop mismatch", func(r *Report) { r.OpenLoop = true }, "open_loop"},
		{"rate without open-loop", func(r *Report) { r.TargetRate = 10 }, "open_loop"},
		{"empty scrape", func(r *Report) { r.Server = &ServerScrape{} }, "no decisions"},
		{"scrape without histograms", func(r *Report) {
			r.Server = &ServerScrape{DecisionsTotal: 100}
		}, "no latency histograms"},
		{"count-match violation", func(r *Report) {
			r.Server = &ServerScrape{DecisionsTotal: 100,
				LatencyCounts: map[string]uint64{"serve_decide_latency": 99}}
		}, "count-match"},
	}
	for _, tc := range cases {
		r := valid()
		tc.mutate(r)
		err := r.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted a bad report", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("baseline report invalid: %v", err)
	}
	// Schema-1 artifacts (recorded before batching) must keep validating.
	legacy := valid()
	legacy.Schema, legacy.Batch = 1, 0
	if err := legacy.Validate(); err != nil {
		t.Fatalf("schema-1 report rejected: %v", err)
	}
}

func TestWriteAndVerifyRoundTrip(t *testing.T) {
	r := valid()
	r.Server = &ServerScrape{DecisionsTotal: 98,
		LatencyCounts:     map[string]uint64{"serve_frame_latency": 98},
		FrameLatencySumNS: 98_000}
	path := filepath.Join(t.TempDir(), "LOADGEN_1.json")
	if err := WriteAndVerify(r, path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Decisions != r.Decisions || got.Server.DecisionsTotal != 98 ||
		got.Latency != r.Latency {
		t.Fatalf("round trip drifted: %+v", got)
	}

	// WriteAndVerify must refuse to leave an invalid artifact standing as
	// valid: a count-match violation fails after the re-read.
	r.Server.LatencyCounts["serve_frame_latency"] = 1
	if err := WriteAndVerify(r, path); err == nil {
		t.Fatal("WriteAndVerify accepted a count-match violation")
	}

	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("Load of a missing file succeeded")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{truncated"), 0o644)
	if _, err := Load(bad); err == nil {
		t.Fatal("Load of malformed JSON succeeded")
	}
}
