package client

import (
	"bufio"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"semloc/internal/core"
	"semloc/internal/obs"
	"semloc/internal/serve"
)

// chaosProxy sits between client and daemon and injects frame-level
// faults: whole newline-delimited frames are dropped, duplicated or
// delayed in either direction. The backend address is swappable so a
// restarted daemon (new port) slots in without the client noticing.
type chaosProxy struct {
	t  *testing.T
	ln net.Listener
	wg sync.WaitGroup

	mu      sync.Mutex
	backend string

	closed atomic.Bool

	// Per-mille fault rates, applied per frame.
	dropPM, dupPM, delayPM int
	delay                  time.Duration

	rng atomic.Uint64

	dropped    atomic.Uint64
	duplicated atomic.Uint64
	delayed    atomic.Uint64
}

func startProxy(t *testing.T, backend string, dropPM, dupPM, delayPM int) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{
		t: t, ln: ln, backend: backend,
		dropPM: dropPM, dupPM: dupPM, delayPM: delayPM,
		delay: 2 * time.Millisecond,
	}
	p.rng.Store(0x1234567890abcdef)
	p.wg.Add(1)
	go p.accept()
	t.Cleanup(p.Close)
	return p
}

func (p *chaosProxy) addr() string { return p.ln.Addr().String() }

func (p *chaosProxy) setBackend(addr string) {
	p.mu.Lock()
	p.backend = addr
	p.mu.Unlock()
}

func (p *chaosProxy) currentBackend() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.backend
}

func (p *chaosProxy) Close() {
	if p.closed.Swap(true) {
		return
	}
	p.ln.Close()
	p.wg.Wait()
}

// roll steps a shared splitmix64 and returns a value in [0,1000).
func (p *chaosProxy) roll() int {
	z := p.rng.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int((z ^ (z >> 31)) % 1000)
}

func (p *chaosProxy) accept() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		b, err := net.DialTimeout("tcp", p.currentBackend(), time.Second)
		if err != nil {
			c.Close() // daemon down: the client's retry loop handles it
			continue
		}
		p.wg.Add(2)
		go p.pump(c, b)
		go p.pump(b, c)
	}
}

// pump forwards newline frames src→dst with faults. Either side dying
// closes both, severing the whole proxied connection.
func (p *chaosProxy) pump(src, dst net.Conn) {
	defer p.wg.Done()
	defer src.Close()
	defer dst.Close()
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 4096), serve.MaxFrameBytes+2)
	for sc.Scan() {
		line := append(append([]byte(nil), sc.Bytes()...), '\n')
		if p.roll() < p.dropPM {
			p.dropped.Add(1)
			continue
		}
		if p.roll() < p.delayPM {
			p.delayed.Add(1)
			time.Sleep(p.delay)
		}
		if _, err := dst.Write(line); err != nil {
			return
		}
		if p.roll() < p.dupPM {
			p.duplicated.Add(1)
			if _, err := dst.Write(line); err != nil {
				return
			}
		}
	}
}

func startDaemon(t *testing.T, cfg serve.Config) *serve.Server {
	t.Helper()
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	s, err := serve.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s
}

func accessFrame(i uint64) *serve.Frame {
	return &serve.Frame{Type: serve.FrameAccess, Seq: i, PC: 0x400000,
		Addr: 0x100000 + (i%512)*64}
}

// referenceDecisions precomputes what an uninterrupted in-process learner
// decides for every seq of the stream.
func referenceDecisions(t *testing.T, n uint64) []*serve.Frame {
	t.Helper()
	ref, err := serve.NewLearner(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*serve.Frame, n+1)
	for i := uint64(1); i <= n; i++ {
		out[i] = ref.Decide(accessFrame(i))
	}
	return out
}

func chaosClientConfig(p *chaosProxy, session string) Config {
	return Config{
		Addr:           FixedAddr(p.addr()),
		Session:        session,
		DialTimeout:    150 * time.Millisecond,
		RequestTimeout: 150 * time.Millisecond,
		MaxAttempts:    100,
		BackoffBase:    2 * time.Millisecond,
		BackoffMax:     40 * time.Millisecond,
		Seed:           42,
	}
}

// TestChaosLossyTransport streams through a proxy that drops, duplicates
// and delays frames in both directions. The retry/replay discipline must
// deliver every decision, and every decision must match the
// uninterrupted in-process reference bit-for-bit. Both sides run fully
// instrumented (server tracer at sample-every-1 with a tiny slow
// threshold, client metrics registry): tracing must never change a
// decision, and under chaos the count invariant — every serve_*_latency
// histogram count equals serve_decisions_total — must survive retries,
// duplicates and replays.
func TestChaosLossyTransport(t *testing.T) {
	const n = 1200
	want := referenceDecisions(t, n)

	srvReg := obs.NewRegistry()
	s := startDaemon(t, serve.Config{
		Reg: srvReg,
		Trace: &serve.TraceConfig{
			Spans:         obs.NewSpanRecorder(),
			SampleEvery:   1,
			SlowThreshold: time.Nanosecond,
			Logf:          func(string, ...any) {},
		},
	})
	defer s.Close()
	p := startProxy(t, s.Addr().String(), 25, 40, 15)

	cliReg := obs.NewRegistry()
	cfg := chaosClientConfig(p, "lossy")
	cfg.Reg = cliReg
	c, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := uint64(1); i <= n; i++ {
		got, err := c.Decide(accessFrame(i))
		if err != nil {
			t.Fatalf("seq %d: %v", i, err)
		}
		if got.Degraded {
			t.Fatalf("seq %d: degraded decision in lockstep", i)
		}
		if !serve.SameDecision(got, want[i]) {
			t.Fatalf("seq %d: daemon %v/%v, reference %v/%v",
				i, got.Prefetch, got.Shadow, want[i].Prefetch, want[i].Shadow)
		}
	}
	if p.dropped.Load() == 0 || p.duplicated.Load() == 0 {
		t.Fatalf("proxy injected no faults (dropped %d, duplicated %d) — test proved nothing",
			p.dropped.Load(), p.duplicated.Load())
	}

	// The count invariant under chaos: exactly one fresh decision per seq,
	// so decisions_total == n and every latency histogram observed n times
	// (replays and resends never observe).
	decisions := srvReg.Counter("serve_decisions_total", "").Value()
	if decisions != n {
		t.Fatalf("decisions_total %d under chaos, want exactly %d", decisions, n)
	}
	for _, name := range []string{
		serve.MetricDecodeLatency, serve.MetricQueueWaitLatency,
		serve.MetricDecideLatency, serve.MetricWriteLatency, serve.MetricFrameLatency,
	} {
		if got := srvReg.Histogram(name, "", obs.DefaultLatencyBuckets).Count(); got != decisions {
			t.Fatalf("%s count %d != serve_decisions_total %d", name, got, decisions)
		}
	}
	// Client-side metrics agree with the exported int counters, and the
	// RTT histogram saw every successful exchange.
	if got := cliReg.Histogram(MetricClientRTT, "", obs.DefaultLatencyBuckets).Count(); got != n {
		t.Fatalf("client RTT count %d, want %d", got, n)
	}
	if got := cliReg.Counter(MetricClientRetries, "").Value(); got != uint64(c.Retries) {
		t.Fatalf("client_retries_total %d != Retries %d", got, c.Retries)
	}
	if got := cliReg.Counter(MetricClientReconnects, "").Value(); got != uint64(c.Reconnects) {
		t.Fatalf("client_reconnects_total %d != Reconnects %d", got, c.Reconnects)
	}
	t.Logf("faults: dropped %d, duplicated %d, delayed %d; client retries %d, reconnects %d",
		p.dropped.Load(), p.duplicated.Load(), p.delayed.Load(), c.Retries, c.Reconnects)
}

// TestChaosKillRestartWarmStart kills the daemon twice mid-stream — once
// abruptly (crash: tail state since the last snapshot is lost, the
// client rewinds and replays) and once gracefully mid-flight while the
// client keeps streaming — and requires every decision across all three
// daemon incarnations to match a never-killed reference.
func TestChaosKillRestartWarmStart(t *testing.T) {
	const (
		snapAt  = 700  // manual "periodic" snapshot
		crashAt = 900  // abrupt kill: 701..900 lost, must be replayed
		kill2At = 1500 // graceful restart, concurrent with the stream
		n       = 2000
	)
	want := referenceDecisions(t, n)

	dir := t.TempDir()
	cfg := serve.Config{SnapshotPath: dir + "/prefetchd.snap",
		SnapshotInterval: time.Hour} // manual snapshots only
	s1 := startDaemon(t, cfg)
	p := startProxy(t, s1.Addr().String(), 10, 15, 5)

	baseGoroutines := runtime.NumGoroutine()
	baseFDs := countFDs(t)

	c, err := Dial(chaosClientConfig(p, "chaos"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cur := s1
	var restartWG sync.WaitGroup
	replays := 0
	snapped, crashed, killed := false, false, false
	for i := uint64(1); i <= n; i++ {
		got, err := c.Decide(accessFrame(i))
		if rw, ok := err.(*RewindError); ok {
			// The restarted daemon is behind: replay the stream from its
			// high-water mark. Retraining from the snapshot state must
			// reproduce the reference decisions exactly.
			if rw.ServerSeq >= i {
				t.Fatalf("rewind to %d at seq %d: server ahead of stream", rw.ServerSeq, i)
			}
			replays++
			i = rw.ServerSeq // loop increment resends ServerSeq+1
			continue
		}
		if err != nil {
			t.Fatalf("seq %d: %v", i, err)
		}
		if got.Degraded {
			t.Fatalf("seq %d: degraded decision in lockstep", i)
		}
		if !serve.SameDecision(got, want[i]) {
			t.Fatalf("seq %d: decision diverged after restart: daemon %v/%v, reference %v/%v",
				i, got.Prefetch, got.Shadow, want[i].Prefetch, want[i].Shadow)
		}

		// Fault injections fire once each — a rewind replays these seqs,
		// and re-crashing on every replay pass would loop forever.
		switch {
		case i == snapAt && !snapped:
			snapped = true
			if err := cur.WriteSnapshot(); err != nil {
				t.Fatal(err)
			}
		case i == crashAt && !crashed:
			// Crash: no final snapshot. Everything since snapAt dies
			// with the process.
			crashed = true
			cur.Abort()
			next := startDaemon(t, cfg)
			if next.RestoredSessions() != 1 {
				t.Fatalf("restart 1 restored %d sessions, want 1", next.RestoredSessions())
			}
			p.setBackend(next.Addr().String())
			cur = next
		case i == kill2At && !killed:
			// Graceful restart concurrent with the live stream: the
			// client rides the outage on its retry loop.
			killed = true
			old := cur
			restartWG.Add(1)
			go func() {
				defer restartWG.Done()
				old.Close() // drains, writes final snapshot
				next := startDaemon(t, cfg)
				p.setBackend(next.Addr().String())
				cur = next
			}()
		}
	}
	restartWG.Wait()

	if replays == 0 {
		t.Fatal("abrupt kill caused no rewind — crash path not exercised")
	}
	if !c.Resumed() {
		t.Fatal("client never re-attached an existing session")
	}
	if c.Reconnects < 2 {
		t.Fatalf("client reconnected %d times across two restarts", c.Reconnects)
	}

	// Full teardown: no goroutine or fd leaks across three daemon
	// incarnations and a fault-injecting proxy.
	c.Close()
	cur.Close()
	p.Close()
	waitFor(t, 5*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseGoroutines && countFDs(t) <= baseFDs
	}, func() string {
		return "goroutine or fd leak after chaos teardown"
	})
	t.Logf("rewound %d time(s); client retries %d, reconnects %d; proxy dropped %d, duplicated %d",
		replays, c.Retries, c.Reconnects, p.dropped.Load(), p.duplicated.Load())
}

// TestClientStats round-trips the stats frame through the retrying
// client: the server-side session counters reflect the stream so far.
func TestClientStats(t *testing.T) {
	s := startDaemon(t, serve.Config{})
	defer s.Close()
	c, err := Dial(Config{Addr: FixedAddr(s.Addr().String()), Session: "st"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 10
	for i := uint64(1); i <= n; i++ {
		if _, err := c.Decide(accessFrame(i)); err != nil {
			t.Fatalf("seq %d: %v", i, err)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "st" || st.Decisions != n || st.LastSeq != n || !st.Attached {
		t.Fatalf("session stats %+v", st)
	}
}

func countFDs(t *testing.T) int {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return 0 // non-linux: fd tracking unavailable
	}
	return len(ents)
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg func() string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg())
		}
		time.Sleep(20 * time.Millisecond)
	}
}
