package client

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"semloc/internal/core"
	"semloc/internal/obs"
	"semloc/internal/serve"
)

// batchAccs builds k contiguous batch accesses starting at first, on the
// same deterministic stream accessFrame generates.
func batchAccs(first uint64, k int) []serve.BatchAccess {
	accs := make([]serve.BatchAccess, k)
	for j := range accs {
		seq := first + uint64(j)
		accs[j] = serve.BatchAccess{Seq: seq, PC: 0x400000, Addr: 0x100000 + (seq%512)*64}
	}
	return accs
}

// TestClientDecideBatch drives the stream through DecideBatch in mixed
// chunk sizes and requires bit-identical decisions to the in-process
// reference, plus the RTT invariant: one histogram sample per decision,
// never per frame.
func TestClientDecideBatch(t *testing.T) {
	const n = 600
	want := referenceDecisions(t, n)
	s := startDaemon(t, serve.Config{})
	defer s.Close()

	reg := obs.NewRegistry()
	c, err := Dial(Config{Addr: FixedAddr(s.Addr().String()), Session: "db",
		MaxBatch: 16, Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Batch() != 16 {
		t.Fatalf("granted batch %d, want 16", c.Batch())
	}

	sizes := []int{16, 1, 7, 16, 3, 16, 11, 2, 16, 8}
	seq := uint64(1)
	for si := 0; seq <= n; si++ {
		k := sizes[si%len(sizes)]
		if rem := int(n - seq + 1); k > rem {
			k = rem
		}
		res, err := c.DecideBatch(batchAccs(seq, k), nil)
		if err != nil {
			t.Fatalf("batch at %d: %v", seq, err)
		}
		if len(res) != k {
			t.Fatalf("batch at %d: %d results, want %d", seq, len(res), k)
		}
		for j, d := range res {
			i := seq + uint64(j)
			if d.Seq != i || d.Degraded || d.Replayed || d.Code != "" {
				t.Fatalf("seq %d: result %+v in lockstep", i, d)
			}
			if !serve.SameDecision(&serve.Frame{Prefetch: d.Prefetch, Shadow: d.Shadow}, want[i]) {
				t.Fatalf("seq %d: daemon %v/%v, reference %v/%v",
					i, d.Prefetch, d.Shadow, want[i].Prefetch, want[i].Shadow)
			}
		}
		seq += uint64(k)
	}

	rtt := reg.Histogram(MetricClientRTT, "", obs.DefaultLatencyBuckets)
	if got := rtt.Count(); got != n {
		t.Fatalf("RTT histogram saw %d samples for %d decisions (must be per decision, not per frame)", got, n)
	}

	// Scheduled send times correct for coordinated omission: a batch whose
	// members were due 20ms ago reports >=20ms per member, even though the
	// wire exchange itself is microseconds.
	sumBefore := rtt.Sum()
	sched := make([]time.Time, 5)
	for j := range sched {
		sched[j] = time.Now().Add(-20 * time.Millisecond)
	}
	if _, err := c.DecideBatch(batchAccs(n+1, 5), sched); err != nil {
		t.Fatal(err)
	}
	if got := rtt.Count(); got != n+5 {
		t.Fatalf("RTT count %d after scheduled batch, want %d", got, n+5)
	}
	if added := rtt.Sum() - sumBefore; added < 5*0.020 {
		t.Fatalf("scheduled batch added %.4fs of RTT, want >= %.4fs (schedule-relative timing)", added, 5*0.020)
	}
}

// TestClientDecideBatchFallback: against a daemon with batching disabled
// the client is granted 0 and DecideBatch transparently degrades to the
// legacy per-access exchange — same results, old servers keep working.
func TestClientDecideBatchFallback(t *testing.T) {
	const n = 40
	want := referenceDecisions(t, n)
	s := startDaemon(t, serve.Config{MaxBatch: -1})
	defer s.Close()
	c, err := Dial(Config{Addr: FixedAddr(s.Addr().String()), Session: "fb", MaxBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Batch() != 0 {
		t.Fatalf("granted batch %d from a non-batching daemon, want 0", c.Batch())
	}
	res, err := c.DecideBatch(batchAccs(1, n), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != n {
		t.Fatalf("%d results, want %d", len(res), n)
	}
	for j, d := range res {
		i := uint64(j + 1)
		if d.Seq != i || !serve.SameDecision(&serve.Frame{Prefetch: d.Prefetch, Shadow: d.Shadow}, want[i]) {
			t.Fatalf("seq %d: fallback result %+v diverged from reference %v/%v",
				i, d, want[i].Prefetch, want[i].Shadow)
		}
	}
}

// TestClientDecideBatchChunking: a call larger than the negotiated size
// is split into server-sized chunks internally; results come back as one
// slice, earlier chunks surviving the buffer reuse of later ones.
func TestClientDecideBatchChunking(t *testing.T) {
	const n = 23
	want := referenceDecisions(t, n)
	s := startDaemon(t, serve.Config{MaxBatch: 4})
	defer s.Close()
	c, err := Dial(Config{Addr: FixedAddr(s.Addr().String()), Session: "ck", MaxBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Batch() != 4 {
		t.Fatalf("granted batch %d against server cap 4", c.Batch())
	}
	res, err := c.DecideBatch(batchAccs(1, n), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != n {
		t.Fatalf("%d results, want %d", len(res), n)
	}
	for j, d := range res {
		i := uint64(j + 1)
		if d.Seq != i || !serve.SameDecision(&serve.Frame{Prefetch: d.Prefetch, Shadow: d.Shadow}, want[i]) {
			t.Fatalf("seq %d (chunk %d): %v/%v, reference %v/%v",
				i, j/4, d.Prefetch, d.Shadow, want[i].Prefetch, want[i].Shadow)
		}
	}
}

func TestClientDecideBatchValidation(t *testing.T) {
	s := startDaemon(t, serve.Config{})
	defer s.Close()
	c, err := Dial(Config{Addr: FixedAddr(s.Addr().String()), Session: "val", MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bad := [][]serve.BatchAccess{
		{{Seq: 0}},           // zero seq
		{{Seq: 2}, {Seq: 2}}, // duplicate
		{{Seq: 2}, {Seq: 4}}, // gap
		append(batchAccs(1, 2), serve.BatchAccess{Seq: 1}), // descending tail
	}
	for i, accs := range bad {
		if _, err := c.DecideBatch(accs, nil); err == nil {
			t.Errorf("case %d: DecideBatch accepted a malformed seq run", i)
		}
	}
	if res, err := c.DecideBatch(nil, nil); err != nil || len(res) != 0 {
		t.Errorf("empty DecideBatch: res %v err %v, want no-op", res, err)
	}
	// The stream is intact after the rejections.
	if _, err := c.DecideBatch(batchAccs(1, 3), nil); err != nil {
		t.Fatalf("stream broken after local validation errors: %v", err)
	}
}

// TestCoalescer submits accesses one at a time and lets the coalescer
// form the batches: every submission gets its decision, seqs are
// assigned in submission order, and decisions match the reference.
func TestCoalescer(t *testing.T) {
	const n = 200
	want := referenceDecisions(t, n)
	s := startDaemon(t, serve.Config{})
	defer s.Close()
	c, err := Dial(Config{Addr: FixedAddr(s.Addr().String()), Session: "co", MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	co := NewCoalescer(c, 200*time.Microsecond)
	chans := make([]<-chan CoalesceResult, n+1)
	for i := uint64(1); i <= n; i++ {
		chans[i] = co.Submit(serve.BatchAccess{PC: 0x400000, Addr: 0x100000 + (i%512)*64})
	}
	for i := uint64(1); i <= n; i++ {
		r := <-chans[i]
		if r.Err != nil {
			t.Fatalf("submission %d: %v", i, r.Err)
		}
		d := r.Decision
		if d.Seq != i {
			t.Fatalf("submission %d assigned seq %d (order not preserved)", i, d.Seq)
		}
		if d.Degraded || d.Code != "" {
			t.Fatalf("seq %d: %+v in lockstep", i, d)
		}
		if !serve.SameDecision(&serve.Frame{Prefetch: d.Prefetch, Shadow: d.Shadow}, want[i]) {
			t.Fatalf("seq %d: coalesced %v/%v, reference %v/%v",
				i, d.Prefetch, d.Shadow, want[i].Prefetch, want[i].Shadow)
		}
	}
	co.Close()
	if r := <-co.Submit(serve.BatchAccess{Addr: 0x100000}); !errors.Is(r.Err, ErrCoalescerClosed) {
		t.Fatalf("submit after close: %v, want ErrCoalescerClosed", r.Err)
	}

	// The underlying client saw the coalesced stream: server high-water is n.
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.LastSeq != n {
		t.Fatalf("server high-water %d after coalesced stream of %d", st.LastSeq, n)
	}
}

// TestCoalescerConcurrent hammers Submit from several goroutines. Seq
// assignment order is nondeterministic, so every access is identical and
// the reference is order-independent: result k must match the k-th
// reference decision regardless of which goroutine submitted it.
func TestCoalescerConcurrent(t *testing.T) {
	const (
		workers = 4
		each    = 50
		n       = workers * each
	)
	ref, err := serve.NewLearner(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*serve.Frame, n+1)
	for i := uint64(1); i <= n; i++ {
		want[i] = ref.Decide(&serve.Frame{Type: serve.FrameAccess, Seq: i, PC: 0x400000, Addr: 0x100000})
	}

	s := startDaemon(t, serve.Config{})
	defer s.Close()
	c, err := Dial(Config{Addr: FixedAddr(s.Addr().String()), Session: "coc", MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	co := NewCoalescer(c, 100*time.Microsecond)
	defer co.Close()

	var wg sync.WaitGroup
	results := make(chan serve.BatchDecision, n)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				r := <-co.Submit(serve.BatchAccess{PC: 0x400000, Addr: 0x100000})
				if r.Err != nil {
					t.Errorf("concurrent submit: %v", r.Err)
					return
				}
				results <- r.Decision
			}
		}()
	}
	wg.Wait()
	close(results)

	seen := make(map[uint64]bool, n)
	for d := range results {
		if seen[d.Seq] {
			t.Fatalf("seq %d delivered twice", d.Seq)
		}
		seen[d.Seq] = true
		if d.Seq < 1 || d.Seq > n {
			t.Fatalf("seq %d outside the submitted range", d.Seq)
		}
		if !serve.SameDecision(&serve.Frame{Prefetch: d.Prefetch, Shadow: d.Shadow}, want[d.Seq]) {
			t.Fatalf("seq %d: %v/%v, reference %v/%v",
				d.Seq, d.Prefetch, d.Shadow, want[d.Seq].Prefetch, want[d.Seq].Shadow)
		}
	}
	if len(seen) != n {
		t.Fatalf("%d of %d submissions delivered", len(seen), n)
	}
}

// TestChaosLossyTransportBatched is the batched twin of
// TestChaosLossyTransport: the same dropping/duplicating/delaying proxy,
// the server fully instrumented at sample-every-1, the stream driven in
// batches — decisions must still be bit-identical and the count
// invariants must still hold (per-decision, never per-frame).
func TestChaosLossyTransportBatched(t *testing.T) {
	const n = 1200
	want := referenceDecisions(t, n)

	srvReg := obs.NewRegistry()
	s := startDaemon(t, serve.Config{
		Reg: srvReg,
		Trace: &serve.TraceConfig{
			Spans:         obs.NewSpanRecorder(),
			SampleEvery:   1,
			SlowThreshold: time.Nanosecond,
			Logf:          func(string, ...any) {},
		},
	})
	defer s.Close()
	p := startProxy(t, s.Addr().String(), 25, 40, 15)

	cliReg := obs.NewRegistry()
	cfg := chaosClientConfig(p, "lossyb")
	cfg.Reg = cliReg
	cfg.MaxBatch = 16
	c, err := Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sizes := []int{16, 3, 16, 8, 1, 16, 5, 16}
	seq := uint64(1)
	for si := 0; seq <= n; si++ {
		k := sizes[si%len(sizes)]
		if rem := int(n - seq + 1); k > rem {
			k = rem
		}
		res, err := c.DecideBatch(batchAccs(seq, k), nil)
		if err != nil {
			t.Fatalf("batch at %d: %v", seq, err)
		}
		for j, d := range res {
			i := seq + uint64(j)
			if d.Degraded || d.Code != "" {
				t.Fatalf("seq %d: %+v in lockstep", i, d)
			}
			if !serve.SameDecision(&serve.Frame{Prefetch: d.Prefetch, Shadow: d.Shadow}, want[i]) {
				t.Fatalf("seq %d: daemon %v/%v, reference %v/%v",
					i, d.Prefetch, d.Shadow, want[i].Prefetch, want[i].Shadow)
			}
		}
		seq += uint64(k)
	}
	if p.dropped.Load() == 0 || p.duplicated.Load() == 0 {
		t.Fatalf("proxy injected no faults (dropped %d, duplicated %d) — test proved nothing",
			p.dropped.Load(), p.duplicated.Load())
	}

	decisions := srvReg.Counter("serve_decisions_total", "").Value()
	if decisions != n {
		t.Fatalf("decisions_total %d under batched chaos, want exactly %d", decisions, n)
	}
	for _, name := range []string{
		serve.MetricDecodeLatency, serve.MetricQueueWaitLatency,
		serve.MetricDecideLatency, serve.MetricWriteLatency, serve.MetricFrameLatency,
	} {
		if got := srvReg.Histogram(name, "", obs.DefaultLatencyBuckets).Count(); got != decisions {
			t.Fatalf("%s count %d != serve_decisions_total %d", name, got, decisions)
		}
	}
	if got := cliReg.Histogram(MetricClientRTT, "", obs.DefaultLatencyBuckets).Count(); got != n {
		t.Fatalf("client RTT count %d, want %d (one sample per decision)", got, n)
	}
	t.Logf("faults: dropped %d, duplicated %d, delayed %d; client retries %d, reconnects %d",
		p.dropped.Load(), p.duplicated.Load(), p.delayed.Load(), c.Retries, c.Reconnects)
}

// TestChaosKillRestartBatched kills the daemon twice mid-stream — once
// abruptly with a batch in flight (the defining crash case for the
// batched pipeline: the tail since the snapshot is lost, the client
// rewinds, and the re-sent batches no longer align with the original
// batch boundaries, exercising partial-batch replay) and once gracefully
// — and requires every decision across all three incarnations to match a
// never-killed reference bit-for-bit.
func TestChaosKillRestartBatched(t *testing.T) {
	const (
		snapAt  = 700
		crashAt = 900
		kill2At = 1500
		n       = 2000
		bsz     = 16
	)
	want := referenceDecisions(t, n)

	dir := t.TempDir()
	cfg := serve.Config{SnapshotPath: dir + "/prefetchd.snap",
		SnapshotInterval: time.Hour}
	s1 := startDaemon(t, cfg)
	p := startProxy(t, s1.Addr().String(), 10, 15, 5)

	baseGoroutines := runtime.NumGoroutine()
	baseFDs := countFDs(t)

	ccfg := chaosClientConfig(p, "chaosb")
	ccfg.MaxBatch = bsz
	c, err := Dial(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cur := s1
	var restartWG sync.WaitGroup
	replays := 0
	snapped, crashed, killed := false, false, false
	// Deliberately odd chunk sizes so batch boundaries drift relative to
	// any earlier pass of the stream.
	sizes := []int{bsz, 7, bsz, 3, 11, bsz}
	i, si := uint64(1), 0
	for i <= n {
		k := sizes[si%len(sizes)]
		si++
		if rem := int(n - i + 1); k > rem {
			k = rem
		}
		res, err := c.DecideBatch(batchAccs(i, k), nil)
		if rw, ok := err.(*RewindError); ok {
			if rw.ServerSeq >= i+uint64(k)-1 {
				t.Fatalf("rewind to %d at batch [%d..%d]: server ahead of stream", rw.ServerSeq, i, i+uint64(k)-1)
			}
			replays++
			i = rw.ServerSeq + 1
			continue
		}
		if err != nil {
			t.Fatalf("batch at %d: %v", i, err)
		}
		for j, d := range res {
			seq := i + uint64(j)
			if d.Degraded || d.Code != "" {
				t.Fatalf("seq %d: %+v in lockstep", seq, d)
			}
			if !serve.SameDecision(&serve.Frame{Prefetch: d.Prefetch, Shadow: d.Shadow}, want[seq]) {
				t.Fatalf("seq %d: decision diverged after restart: daemon %v/%v, reference %v/%v",
					seq, d.Prefetch, d.Shadow, want[seq].Prefetch, want[seq].Shadow)
			}
		}
		last := i + uint64(k) - 1
		i += uint64(k)

		switch {
		case last >= snapAt && !snapped:
			snapped = true
			if err := cur.WriteSnapshot(); err != nil {
				t.Fatal(err)
			}
		case last >= crashAt && !crashed:
			// Abrupt kill with batches in flight: everything since the
			// snapshot dies with the process.
			crashed = true
			cur.Abort()
			next := startDaemon(t, cfg)
			if next.RestoredSessions() != 1 {
				t.Fatalf("restart 1 restored %d sessions, want 1", next.RestoredSessions())
			}
			p.setBackend(next.Addr().String())
			cur = next
		case last >= kill2At && !killed:
			killed = true
			old := cur
			restartWG.Add(1)
			go func() {
				defer restartWG.Done()
				old.Close() // drains, writes final snapshot
				next := startDaemon(t, cfg)
				p.setBackend(next.Addr().String())
				cur = next
			}()
		}
	}
	restartWG.Wait()

	if replays == 0 {
		t.Fatal("abrupt kill caused no rewind — batched crash path not exercised")
	}
	if c.Reconnects < 2 {
		t.Fatalf("client reconnected %d times across two restarts", c.Reconnects)
	}

	c.Close()
	cur.Close()
	p.Close()
	waitFor(t, 5*time.Second, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseGoroutines && countFDs(t) <= baseFDs
	}, func() string {
		return "goroutine or fd leak after batched chaos teardown"
	})
	t.Logf("rewound %d time(s); client retries %d, reconnects %d; proxy dropped %d, duplicated %d",
		replays, c.Retries, c.Reconnects, p.dropped.Load(), p.duplicated.Load())
}
