package client

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"semloc/internal/serve"
)

// ErrCoalescerClosed answers submissions after Close.
var ErrCoalescerClosed = errors.New("client: coalescer closed")

// CoalesceResult delivers one submitted access's decision (deep-copied —
// safe to retain) or the error that sank its batch.
type CoalesceResult struct {
	Decision serve.BatchDecision
	Err      error
}

// Coalescer turns a lockstep Client into an auto-batching one: accesses
// submitted within a small window (or until the negotiated batch size
// fills) are packed into one DecideBatch exchange, amortizing framing
// and syscall cost without the caller restructuring into explicit
// batches. Seqs are assigned internally, continuing from the client's
// last welcome — while a Coalescer is live, the underlying Client must
// not be used for Decide/DecideBatch directly, or the seq streams
// interleave.
//
// Each submission's RTT sample is measured from its Submit call (the
// coalescing wait counts), so the window shows up honestly in latency.
//
// A batch error (including *RewindError) poisons the coalescer: the
// internal seq stream has diverged from the server, so every pending and
// future submission fails with that error and the driver rebuilds.
type Coalescer struct {
	cl     *Client
	window time.Duration

	mu      sync.Mutex
	pending []pendingAccess
	nextSeq uint64
	closed  bool
	broken  error

	wake chan struct{}
	stop chan struct{}
	done chan struct{}
}

type pendingAccess struct {
	acc   serve.BatchAccess
	sched time.Time
	ch    chan CoalesceResult
}

// NewCoalescer wraps cl. window bounds how long the first access of a
// forming batch waits for company (default 500µs); a batch also
// dispatches as soon as it reaches the size granted at hello.
func NewCoalescer(cl *Client, window time.Duration) *Coalescer {
	if window <= 0 {
		window = 500 * time.Microsecond
	}
	co := &Coalescer{
		cl:      cl,
		window:  window,
		nextSeq: cl.ServerSeq(),
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go co.run()
	return co
}

// Submit queues one access (its Seq field is ignored; the coalescer
// numbers the stream) and returns a 1-buffered channel that receives the
// decision when its batch completes. Safe for concurrent use.
func (co *Coalescer) Submit(acc serve.BatchAccess) <-chan CoalesceResult {
	ch := make(chan CoalesceResult, 1)
	co.mu.Lock()
	switch {
	case co.closed:
		co.mu.Unlock()
		ch <- CoalesceResult{Err: ErrCoalescerClosed}
		return ch
	case co.broken != nil:
		err := co.broken
		co.mu.Unlock()
		ch <- CoalesceResult{Err: fmt.Errorf("client: coalescer poisoned: %w", err)}
		return ch
	}
	co.nextSeq++
	acc.Seq = co.nextSeq
	co.pending = append(co.pending, pendingAccess{acc: acc, sched: time.Now(), ch: ch})
	co.mu.Unlock()
	select {
	case co.wake <- struct{}{}:
	default:
	}
	return ch
}

// Close flushes everything pending and stops the sender. Idempotent;
// returns once the sender goroutine has exited.
func (co *Coalescer) Close() {
	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		<-co.done
		return
	}
	co.closed = true
	co.mu.Unlock()
	close(co.stop)
	<-co.done
}

// run is the single sender: it waits for pending work, holds the window
// open from the oldest submission, and dispatches full or expired
// batches in submission order.
func (co *Coalescer) run() {
	defer close(co.done)
	max := co.cl.Batch()
	if max <= 0 {
		max = 1 // legacy daemon: DecideBatch degrades per-access anyway
	}
	for {
		select {
		case <-co.stop:
			co.drain(max)
			return
		case <-co.wake:
		}
		for {
			co.mu.Lock()
			n := len(co.pending)
			var oldest time.Time
			if n > 0 {
				oldest = co.pending[0].sched
			}
			co.mu.Unlock()
			if n == 0 {
				break
			}
			if n < max {
				if wait := co.window - time.Since(oldest); wait > 0 {
					timer := time.NewTimer(wait)
					select {
					case <-co.stop:
						timer.Stop()
						co.drain(max)
						return
					case <-co.wake:
						timer.Stop()
						continue // re-check fill level
					case <-timer.C:
					}
				}
			}
			co.dispatch(max)
		}
	}
}

// drain dispatches everything still pending, then returns.
func (co *Coalescer) drain(max int) {
	for {
		co.mu.Lock()
		n := len(co.pending)
		co.mu.Unlock()
		if n == 0 {
			return
		}
		co.dispatch(max)
	}
}

// dispatch cuts up to max pending accesses into one DecideBatch call and
// delivers the results (or the shared failure) to their channels.
func (co *Coalescer) dispatch(max int) {
	co.mu.Lock()
	k := min(len(co.pending), max)
	batch := make([]pendingAccess, k)
	copy(batch, co.pending)
	rest := copy(co.pending, co.pending[k:])
	for j := rest; j < len(co.pending); j++ {
		co.pending[j] = pendingAccess{} // drop refs for GC
	}
	co.pending = co.pending[:rest]
	co.mu.Unlock()
	if k == 0 {
		return
	}

	accs := make([]serve.BatchAccess, k)
	sched := make([]time.Time, k)
	for j := range batch {
		accs[j] = batch[j].acc
		sched[j] = batch[j].sched
	}
	res, err := co.cl.DecideBatch(accs, sched)
	if err != nil {
		co.fail(batch, err)
		return
	}
	for j := range batch {
		d := res[j]
		d.Prefetch = append([]uint64(nil), d.Prefetch...)
		d.Shadow = append([]uint64(nil), d.Shadow...)
		batch[j].ch <- CoalesceResult{Decision: d}
	}
}

// fail poisons the coalescer and errors out both the failed batch and
// everything still queued behind it (their seqs are unusable once the
// stream diverged).
func (co *Coalescer) fail(batch []pendingAccess, err error) {
	co.mu.Lock()
	co.broken = err
	queued := co.pending
	co.pending = nil
	co.mu.Unlock()
	for j := range batch {
		batch[j].ch <- CoalesceResult{Err: err}
	}
	for j := range queued {
		queued[j].ch <- CoalesceResult{Err: fmt.Errorf("client: coalescer poisoned: %w", err)}
	}
}
