// Package client is the prefetchd wire client: a lockstep
// request/response loop over the newline-JSONL protocol with the retry
// discipline the daemon's exactly-once semantics assume — reconnect with
// exponential backoff plus deterministic jitter, resend the in-flight
// access under the same seq (the server's replay cache absorbs
// duplicates), honour explicit busy backpressure, and surface a typed
// rewind when a restarted daemon lost trained tail state so the driver
// can replay its stream from the server's high-water mark.
package client

import (
	"fmt"
	"net"
	"time"

	"semloc/internal/obs"
	"semloc/internal/serve"
)

// Client-side metric names, registered when Config.Reg is set. The RTT
// histogram observes one successful exchange (access written → matching
// decision read, including any in-exchange busy waits) — the client's view
// of serving latency, which the load generator scrapes for its artifact.
const (
	MetricClientRTT        = "client_rtt_seconds"
	MetricClientRetries    = "client_retries_total"
	MetricClientReconnects = "client_reconnects_total"
	MetricClientBusy       = "client_busy_total"
)

// Config parameterizes a Client. Addr and Session are required.
type Config struct {
	// Addr returns the daemon address to dial. A plain address is wrapped
	// via FixedAddr; a func lets chaos tests repoint at a restarted
	// daemon without the client noticing.
	Addr func() string
	// Session names the server-side session to create or re-attach.
	Session string

	// DialTimeout bounds one connect attempt; RequestTimeout bounds the
	// wait for one decision before the request is retried.
	DialTimeout    time.Duration
	RequestTimeout time.Duration

	// MaxAttempts bounds connect/request retries before giving up.
	MaxAttempts int
	// BackoffBase doubles per consecutive failure up to BackoffMax, with
	// up to 50% deterministic jitter on top.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives the jitter RNG (deterministic tests).
	Seed uint64

	// Reg, when set, receives the client_* metrics (RTT histogram plus
	// retry/reconnect/busy counters). Nil is the disabled configuration:
	// no metric handles, no clock reads on the request path.
	Reg *obs.Registry

	Logf func(format string, args ...any)
}

// FixedAddr adapts a constant address for Config.Addr.
func FixedAddr(addr string) func() string { return func() string { return addr } }

func (c Config) withDefaults() Config {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 10
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 10 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 500 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 0x9e3779b97f4a7c15
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// RewindError reports that a restarted daemon's session is behind the
// client's stream: the daemon restored a snapshot whose last applied seq
// is ServerSeq, older than the access being sent. The driver owns the
// stream, so it replays everything after ServerSeq — the restored learner
// then retrains those accesses from exactly the state it saw them from,
// keeping it bit-identical to a never-killed learner.
type RewindError struct {
	ServerSeq uint64
}

func (e *RewindError) Error() string {
	return fmt.Sprintf("client: server rewound to seq %d; replay the stream from there", e.ServerSeq)
}

// Client is a lockstep prefetchd client. Not goroutine-safe: one client,
// one stream.
type Client struct {
	cfg  Config
	conn net.Conn
	r    *serve.FrameReader

	serverSeq uint64 // last seq the server reported applied (welcome)
	resumed   bool   // last welcome's Resumed flag
	failures  int    // consecutive transport failures, drives backoff
	rng       uint64

	// Retries / Reconnects / Busy count retried sends, re-dials and busy
	// bounces — chaos tests assert the faults were actually exercised.
	Retries    int
	Reconnects int
	Busy       int

	// Metric handles (nil when Config.Reg is nil; every method is a no-op
	// then, and rtt==nil additionally gates the clock reads).
	rtt         *obs.Histogram
	retriesC    *obs.Counter
	reconnectsC *obs.Counter
	busyC       *obs.Counter
}

// Dial connects and performs the hello/welcome handshake, retrying with
// backoff like any other request (the very first exchange can be hit by
// the same faults as the rest of the stream).
func Dial(cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	if cfg.Addr == nil || cfg.Session == "" {
		return nil, fmt.Errorf("client: Addr and Session are required")
	}
	c := &Client{cfg: cfg, rng: cfg.Seed}
	if cfg.Reg != nil {
		c.rtt = cfg.Reg.Histogram(MetricClientRTT, "client-observed seconds per successful access/decision exchange", obs.DefaultLatencyBuckets)
		c.retriesC = cfg.Reg.Counter(MetricClientRetries, "requests retried after a transport fault")
		c.reconnectsC = cfg.Reg.Counter(MetricClientReconnects, "re-dials (successful or not) after a lost connection")
		c.busyC = cfg.Reg.Counter(MetricClientBusy, "busy bounces honoured with the server's retry hint")
	}
	var err error
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		if err = c.connect(); err == nil {
			return c, nil
		}
		c.failures++
		c.backoff()
	}
	return nil, fmt.Errorf("client: dial gave up after %d attempts: %w", cfg.MaxAttempts, err)
}

// ServerSeq returns the server's last applied seq as of the most recent
// welcome.
func (c *Client) ServerSeq() uint64 { return c.serverSeq }

// Resumed reports whether the most recent welcome re-attached an
// existing session.
func (c *Client) Resumed() bool { return c.resumed }

// connect dials and handshakes once.
func (c *Client) connect() error {
	c.drop()
	conn, err := net.DialTimeout("tcp", c.cfg.Addr(), c.cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("client: dial: %w", err)
	}
	w := &serve.Frame{Type: serve.FrameHello, Version: serve.ProtocolVersion, Session: c.cfg.Session}
	b, err := serve.EncodeFrame(w)
	if err != nil {
		conn.Close()
		return err
	}
	conn.SetDeadline(time.Now().Add(c.cfg.DialTimeout))
	if _, err := conn.Write(b); err != nil {
		conn.Close()
		return fmt.Errorf("client: sending hello: %w", err)
	}
	r := serve.NewFrameReader(conn)
	fr, err := r.Read()
	if err != nil {
		conn.Close()
		return fmt.Errorf("client: reading welcome: %w", err)
	}
	if fr.Type != serve.FrameWelcome {
		conn.Close()
		return fmt.Errorf("client: handshake refused: %s (%s: %s)", fr.Type, fr.Code, fr.Msg)
	}
	conn.SetDeadline(time.Time{})
	c.conn, c.r = conn, r
	c.serverSeq, c.resumed = fr.LastSeq, fr.Resumed
	return nil
}

func (c *Client) drop() {
	if c.conn != nil {
		c.conn.Close()
		c.conn, c.r = nil, nil
	}
}

// backoff sleeps the exponential-plus-jitter delay for the current
// consecutive-failure count.
func (c *Client) backoff() {
	d := c.cfg.BackoffBase << uint(min(c.failures, 16))
	if d > c.cfg.BackoffMax || d <= 0 {
		d = c.cfg.BackoffMax
	}
	// splitmix64 step for deterministic jitter in [0, d/2).
	c.rng += 0x9e3779b97f4a7c15
	z := c.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	time.Sleep(d + time.Duration(z%uint64(d/2+1)))
}

// Decide streams one access and returns its decision, riding out
// transport faults: duplicate replies for older seqs are skipped, busy
// frames honour the server's retry hint, broken connections reconnect
// with backoff and resend the same seq, and a post-restart server behind
// the stream returns *RewindError.
func (c *Client) Decide(fr *serve.Frame) (*serve.Frame, error) {
	if fr.Type != serve.FrameAccess {
		return nil, fmt.Errorf("client: Decide wants an access frame, got %s", fr.Type)
	}
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if c.conn == nil {
			if err := c.connect(); err != nil {
				lastErr = err
				c.failures++
				c.Reconnects++
				c.reconnectsC.Inc()
				c.cfg.Logf("client: reconnect failed (attempt %d): %v", attempt, err)
				c.backoff()
				continue
			}
			c.Reconnects++
			c.reconnectsC.Inc()
			// A restarted server may have restored an older snapshot:
			// its session is behind our stream and sending fr.Seq now
			// would silently skip the gap. Hand control to the driver.
			if c.serverSeq+1 < fr.Seq {
				return nil, &RewindError{ServerSeq: c.serverSeq}
			}
		}
		var start time.Time
		if c.rtt != nil {
			start = time.Now()
		}
		dec, err := c.exchange(fr)
		if err != nil {
			lastErr = err
			c.failures++
			c.Retries++
			c.retriesC.Inc()
			c.cfg.Logf("client: request seq %d failed (attempt %d): %v", fr.Seq, attempt, err)
			c.drop()
			c.backoff()
			continue
		}
		c.failures = 0
		if c.rtt != nil {
			c.rtt.Observe(time.Since(start).Seconds())
		}
		return dec, nil
	}
	return nil, fmt.Errorf("client: seq %d: giving up after %d attempts: %w", fr.Seq, c.cfg.MaxAttempts, lastErr)
}

// exchange sends one access and reads until its answer arrives. Busy
// bounces are resent on the same connection after the server's hinted
// wait; only transport faults bubble up to the reconnect path.
func (c *Client) exchange(fr *serve.Frame) (*serve.Frame, error) {
	b, err := serve.EncodeFrame(fr)
	if err != nil {
		return nil, err
	}
	c.conn.SetWriteDeadline(time.Now().Add(c.cfg.RequestTimeout))
	if _, err := c.conn.Write(b); err != nil {
		return nil, fmt.Errorf("client: send: %w", err)
	}
	deadline := time.Now().Add(c.cfg.RequestTimeout)
	busyN := 0
	for {
		c.conn.SetReadDeadline(deadline)
		got, err := c.r.Read()
		if err != nil {
			return nil, fmt.Errorf("client: recv: %w", err)
		}
		switch got.Type {
		case serve.FrameDecision:
			if got.Seq == fr.Seq {
				return got, nil
			}
			// A duplicated or delayed reply for an earlier seq (the
			// chaos proxy does this): skip it.
		case serve.FrameBusy:
			if got.Seq != 0 && got.Seq != fr.Seq {
				continue
			}
			c.Busy++
			c.busyC.Inc()
			if busyN++; busyN > c.cfg.MaxAttempts {
				return nil, fmt.Errorf("client: server busy %d times for seq %d", busyN, fr.Seq)
			}
			wait := time.Duration(got.RetryMs) * time.Millisecond
			if wait <= 0 {
				wait = c.cfg.BackoffBase
			}
			time.Sleep(wait)
			c.conn.SetWriteDeadline(time.Now().Add(c.cfg.RequestTimeout))
			if _, err := c.conn.Write(b); err != nil {
				return nil, fmt.Errorf("client: resend after busy: %w", err)
			}
			deadline = time.Now().Add(c.cfg.RequestTimeout)
		case serve.FramePong:
			// Keepalive noise.
		case serve.FrameError:
			switch got.Code {
			case serve.CodeSessionClosed, serve.CodeShuttingDown:
				// Reconnect (fresh hello revives or recreates the
				// session) and resend.
				return nil, fmt.Errorf("client: %s: %s", got.Code, got.Msg)
			case serve.CodeStaleSeq:
				if got.Seq != 0 && got.Seq != fr.Seq {
					continue // stale answer to a duplicated old frame
				}
				return nil, fmt.Errorf("client: seq %d stale on server: %s", fr.Seq, got.Msg)
			default:
				return nil, fmt.Errorf("client: server error %s: %s", got.Code, got.Msg)
			}
		default:
			return nil, fmt.Errorf("client: unexpected %s frame mid-stream", got.Type)
		}
	}
}

// Ping round-trips a keepalive on the current connection.
func (c *Client) Ping() error {
	if c.conn == nil {
		if err := c.connect(); err != nil {
			return err
		}
	}
	b, err := serve.EncodeFrame(&serve.Frame{Type: serve.FramePing})
	if err != nil {
		return err
	}
	c.conn.SetWriteDeadline(time.Now().Add(c.cfg.RequestTimeout))
	if _, err := c.conn.Write(b); err != nil {
		return err
	}
	c.conn.SetReadDeadline(time.Now().Add(c.cfg.RequestTimeout))
	got, err := c.r.Read()
	if err != nil {
		return err
	}
	if got.Type != serve.FramePong {
		return fmt.Errorf("client: ping answered with %s", got.Type)
	}
	return nil
}

// Stats fetches the server-side serving statistics for this client's
// session (decisions, degraded fallbacks, replays, inbox high-water).
// Lockstep like Ping: call it between Decide exchanges, not concurrently.
func (c *Client) Stats() (*serve.SessionStats, error) {
	if c.conn == nil {
		if err := c.connect(); err != nil {
			return nil, err
		}
	}
	b, err := serve.EncodeFrame(&serve.Frame{Type: serve.FrameStats})
	if err != nil {
		return nil, err
	}
	c.conn.SetWriteDeadline(time.Now().Add(c.cfg.RequestTimeout))
	if _, err := c.conn.Write(b); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(c.cfg.RequestTimeout)
	for {
		c.conn.SetReadDeadline(deadline)
		got, err := c.r.Read()
		if err != nil {
			return nil, err
		}
		switch got.Type {
		case serve.FrameStats:
			if got.Stats == nil {
				return nil, fmt.Errorf("client: stats reply without payload")
			}
			return got.Stats, nil
		case serve.FrameDecision, serve.FramePong:
			// Late answers to earlier traffic (duplicated by a chaos
			// proxy): skip.
		case serve.FrameError:
			return nil, fmt.Errorf("client: stats: server error %s: %s", got.Code, got.Msg)
		default:
			return nil, fmt.Errorf("client: stats answered with %s", got.Type)
		}
	}
}

// Close detaches politely (bye) and closes the connection.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	if b, err := serve.EncodeFrame(&serve.Frame{Type: serve.FrameBye}); err == nil {
		c.conn.SetWriteDeadline(time.Now().Add(time.Second))
		c.conn.Write(b)
	}
	err := c.conn.Close()
	c.conn, c.r = nil, nil
	return err
}
