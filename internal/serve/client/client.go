// Package client is the prefetchd wire client: a lockstep
// request/response loop over the newline-JSONL protocol with the retry
// discipline the daemon's exactly-once semantics assume — reconnect with
// exponential backoff plus deterministic jitter, resend the in-flight
// access under the same seq (the server's replay cache absorbs
// duplicates), honour explicit busy backpressure, and surface a typed
// rewind when a restarted daemon lost trained tail state so the driver
// can replay its stream from the server's high-water mark.
package client

import (
	"fmt"
	"net"
	"time"

	"semloc/internal/obs"
	"semloc/internal/serve"
)

// Client-side metric names, registered when Config.Reg is set. The RTT
// histogram observes one sample per decision — for Decide, the successful
// exchange (access written → matching decision read, including any
// in-exchange busy waits); for DecideBatch with a schedule, each access's
// latency from its own intended send time, which corrects for coordinated
// omission instead of letting batching hide queueing delay.
const (
	MetricClientRTT        = "client_rtt_seconds"
	MetricClientRetries    = "client_retries_total"
	MetricClientReconnects = "client_reconnects_total"
	MetricClientBusy       = "client_busy_total"
)

// Config parameterizes a Client. Addr and Session are required.
type Config struct {
	// Addr returns the daemon address to dial. A plain address is wrapped
	// via FixedAddr; a func lets chaos tests repoint at a restarted
	// daemon without the client noticing.
	Addr func() string
	// Session names the server-side session to create or re-attach.
	Session string

	// DialTimeout bounds one connect attempt; RequestTimeout bounds the
	// wait for one decision before the request is retried.
	DialTimeout    time.Duration
	RequestTimeout time.Duration

	// MaxBatch, when positive, asks the daemon at hello for batched
	// decisions of up to this size (clamped to serve.MaxBatch). The
	// granted size is Batch(); 0 keeps the legacy frame-at-a-time
	// protocol, and DecideBatch degrades to per-access exchanges against
	// daemons that grant 0.
	MaxBatch int

	// MaxAttempts bounds connect/request retries before giving up.
	MaxAttempts int
	// BackoffBase doubles per consecutive failure up to BackoffMax, with
	// up to 50% deterministic jitter on top.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed drives the jitter RNG (deterministic tests).
	Seed uint64

	// Reg, when set, receives the client_* metrics (RTT histogram plus
	// retry/reconnect/busy counters). Nil is the disabled configuration:
	// no metric handles, no clock reads on the request path.
	Reg *obs.Registry

	Logf func(format string, args ...any)
}

// FixedAddr adapts a constant address for Config.Addr.
func FixedAddr(addr string) func() string { return func() string { return addr } }

func (c Config) withDefaults() Config {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 10
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 10 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 500 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 0x9e3779b97f4a7c15
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// RewindError reports that a restarted daemon's session is behind the
// client's stream: the daemon restored a snapshot whose last applied seq
// is ServerSeq, older than the access being sent. The driver owns the
// stream, so it replays everything after ServerSeq — the restored learner
// then retrains those accesses from exactly the state it saw them from,
// keeping it bit-identical to a never-killed learner.
type RewindError struct {
	ServerSeq uint64
}

func (e *RewindError) Error() string {
	return fmt.Sprintf("client: server rewound to seq %d; replay the stream from there", e.ServerSeq)
}

// Client is a lockstep prefetchd client. Not goroutine-safe: one client,
// one stream.
type Client struct {
	cfg  Config
	conn net.Conn
	r    *serve.FrameReader

	serverSeq uint64 // last seq the server reported applied (welcome)
	resumed   bool   // last welcome's Resumed flag
	batch     int    // batch size granted at the last welcome (0: unbatched)
	failures  int    // consecutive transport failures, drives backoff
	rng       uint64

	// Reused buffers: enc holds the last encoded request (kept intact for
	// same-bytes resends after busy), resp receives batch replies in
	// place, out accumulates multi-chunk DecideBatch results.
	enc  []byte
	resp serve.Frame
	out  []serve.BatchDecision

	// Retries / Reconnects / Busy count retried sends, re-dials and busy
	// bounces — chaos tests assert the faults were actually exercised.
	Retries    int
	Reconnects int
	Busy       int

	// Metric handles (nil when Config.Reg is nil; every method is a no-op
	// then, and rtt==nil additionally gates the clock reads).
	rtt         *obs.Histogram
	retriesC    *obs.Counter
	reconnectsC *obs.Counter
	busyC       *obs.Counter
}

// Dial connects and performs the hello/welcome handshake, retrying with
// backoff like any other request (the very first exchange can be hit by
// the same faults as the rest of the stream).
func Dial(cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	if cfg.Addr == nil || cfg.Session == "" {
		return nil, fmt.Errorf("client: Addr and Session are required")
	}
	c := &Client{cfg: cfg, rng: cfg.Seed}
	if cfg.Reg != nil {
		c.rtt = cfg.Reg.Histogram(MetricClientRTT, "client-observed seconds per successful access/decision exchange", obs.DefaultLatencyBuckets)
		c.retriesC = cfg.Reg.Counter(MetricClientRetries, "requests retried after a transport fault")
		c.reconnectsC = cfg.Reg.Counter(MetricClientReconnects, "re-dials (successful or not) after a lost connection")
		c.busyC = cfg.Reg.Counter(MetricClientBusy, "busy bounces honoured with the server's retry hint")
	}
	var err error
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		if err = c.connect(); err == nil {
			return c, nil
		}
		c.failures++
		c.backoff()
	}
	return nil, fmt.Errorf("client: dial gave up after %d attempts: %w", cfg.MaxAttempts, err)
}

// ServerSeq returns the server's last applied seq as of the most recent
// welcome.
func (c *Client) ServerSeq() uint64 { return c.serverSeq }

// Resumed reports whether the most recent welcome re-attached an
// existing session.
func (c *Client) Resumed() bool { return c.resumed }

// Batch returns the batch size the daemon granted at the most recent
// welcome (0: frame-at-a-time protocol). It can change across
// reconnects — a restarted daemon may cap batching differently.
func (c *Client) Batch() int { return c.batch }

// connect dials and handshakes once.
func (c *Client) connect() error {
	c.drop()
	conn, err := net.DialTimeout("tcp", c.cfg.Addr(), c.cfg.DialTimeout)
	if err != nil {
		return fmt.Errorf("client: dial: %w", err)
	}
	ask := c.cfg.MaxBatch
	if ask < 0 {
		ask = 0
	}
	if ask > serve.MaxBatch {
		ask = serve.MaxBatch
	}
	w := &serve.Frame{Type: serve.FrameHello, Version: serve.ProtocolVersion, Session: c.cfg.Session, Batch: ask}
	b, err := serve.AppendFrame(c.enc[:0], w)
	if err != nil {
		conn.Close()
		return err
	}
	c.enc = b
	conn.SetDeadline(time.Now().Add(c.cfg.DialTimeout))
	if _, err := conn.Write(b); err != nil {
		conn.Close()
		return fmt.Errorf("client: sending hello: %w", err)
	}
	r := serve.NewFrameReader(conn)
	fr, err := r.Read()
	if err != nil {
		conn.Close()
		return fmt.Errorf("client: reading welcome: %w", err)
	}
	if fr.Type != serve.FrameWelcome {
		conn.Close()
		return fmt.Errorf("client: handshake refused: %s (%s: %s)", fr.Type, fr.Code, fr.Msg)
	}
	conn.SetDeadline(time.Time{})
	c.conn, c.r = conn, r
	c.serverSeq, c.resumed = fr.LastSeq, fr.Resumed
	granted := fr.Batch
	if granted > ask {
		granted = ask
	}
	if granted < 0 {
		granted = 0
	}
	c.batch = granted
	return nil
}

// send encodes f into the client's reused buffer and writes it under the
// given deadline. The encoded bytes stay intact (for a same-bytes resend
// after a busy bounce) until the next send.
func (c *Client) send(f *serve.Frame, timeout time.Duration) error {
	b, err := serve.AppendFrame(c.enc[:0], f)
	if err != nil {
		return err
	}
	c.enc = b
	c.conn.SetWriteDeadline(time.Now().Add(timeout))
	if _, err := c.conn.Write(b); err != nil {
		return fmt.Errorf("client: send: %w", err)
	}
	return nil
}

// resend rewrites the bytes of the last send (same seq, same payload).
func (c *Client) resend(timeout time.Duration) error {
	c.conn.SetWriteDeadline(time.Now().Add(timeout))
	_, err := c.conn.Write(c.enc)
	return err
}

func (c *Client) drop() {
	if c.conn != nil {
		c.conn.Close()
		c.conn, c.r = nil, nil
	}
}

// backoff sleeps the exponential-plus-jitter delay for the current
// consecutive-failure count.
func (c *Client) backoff() {
	d := c.cfg.BackoffBase << uint(min(c.failures, 16))
	if d > c.cfg.BackoffMax || d <= 0 {
		d = c.cfg.BackoffMax
	}
	// splitmix64 step for deterministic jitter in [0, d/2).
	c.rng += 0x9e3779b97f4a7c15
	z := c.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	time.Sleep(d + time.Duration(z%uint64(d/2+1)))
}

// Decide streams one access and returns its decision, riding out
// transport faults: duplicate replies for older seqs are skipped, busy
// frames honour the server's retry hint, broken connections reconnect
// with backoff and resend the same seq, and a post-restart server behind
// the stream returns *RewindError.
func (c *Client) Decide(fr *serve.Frame) (*serve.Frame, error) {
	if fr.Type != serve.FrameAccess {
		return nil, fmt.Errorf("client: Decide wants an access frame, got %s", fr.Type)
	}
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if c.conn == nil {
			if err := c.connect(); err != nil {
				lastErr = err
				c.failures++
				c.Reconnects++
				c.reconnectsC.Inc()
				c.cfg.Logf("client: reconnect failed (attempt %d): %v", attempt, err)
				c.backoff()
				continue
			}
			c.Reconnects++
			c.reconnectsC.Inc()
			// A restarted server may have restored an older snapshot:
			// its session is behind our stream and sending fr.Seq now
			// would silently skip the gap. Hand control to the driver.
			if c.serverSeq+1 < fr.Seq {
				return nil, &RewindError{ServerSeq: c.serverSeq}
			}
		}
		var start time.Time
		if c.rtt != nil {
			start = time.Now()
		}
		dec, err := c.exchange(fr)
		if err != nil {
			lastErr = err
			c.failures++
			c.Retries++
			c.retriesC.Inc()
			c.cfg.Logf("client: request seq %d failed (attempt %d): %v", fr.Seq, attempt, err)
			c.drop()
			c.backoff()
			continue
		}
		c.failures = 0
		if c.rtt != nil {
			c.rtt.Observe(time.Since(start).Seconds())
		}
		return dec, nil
	}
	return nil, fmt.Errorf("client: seq %d: giving up after %d attempts: %w", fr.Seq, c.cfg.MaxAttempts, lastErr)
}

// DecideBatch streams the accesses (contiguous ascending seqs, like one
// batch frame) and returns their decisions in order. The request is
// chunked to the batch size granted at hello; against a daemon that
// granted no batching it degrades to per-access Decide exchanges, so
// callers can use it unconditionally. Retry semantics match Decide —
// same-seq resend of the whole chunk (the server's replay ring absorbs
// the already-applied prefix as Replayed decisions), busy honoured with
// the server's hint, and *RewindError when a restarted daemon is behind
// the chunk about to be sent.
//
// The returned slice and its payloads alias client-owned buffers that
// stay valid only until the next Decide/DecideBatch call — callers copy
// what they keep.
//
// sched, when non-nil (must match len(accs)), carries each access's
// intended send time; the RTT histogram then records one sample per
// decision measured from that schedule — coordinated-omission-corrected,
// so batching cannot hide queueing delay. With a nil sched each decision
// still gets one sample, measured from its chunk's send.
func (c *Client) DecideBatch(accs []serve.BatchAccess, sched []time.Time) ([]serve.BatchDecision, error) {
	if len(accs) == 0 {
		return nil, nil
	}
	if sched != nil && len(sched) != len(accs) {
		return nil, fmt.Errorf("client: DecideBatch: %d accesses but %d schedule entries", len(accs), len(sched))
	}
	if accs[0].Seq == 0 {
		return nil, fmt.Errorf("client: DecideBatch: zero seq")
	}
	for k := 1; k < len(accs); k++ {
		if accs[k].Seq != accs[0].Seq+uint64(k) {
			return nil, fmt.Errorf("client: DecideBatch: seqs must be contiguous ascending (index %d has %d, want %d)",
				k, accs[k].Seq, accs[0].Seq+uint64(k))
		}
	}
	c.out = c.out[:0]
	var lastErr error
	attempt := 0
	for i := 0; i < len(accs); {
		if attempt >= c.cfg.MaxAttempts {
			return nil, fmt.Errorf("client: seq %d: giving up after %d attempts: %w", accs[i].Seq, c.cfg.MaxAttempts, lastErr)
		}
		if c.conn == nil {
			if err := c.connect(); err != nil {
				lastErr = err
				attempt++
				c.failures++
				c.Reconnects++
				c.reconnectsC.Inc()
				c.cfg.Logf("client: reconnect failed (attempt %d): %v", attempt, err)
				c.backoff()
				continue
			}
			c.Reconnects++
			c.reconnectsC.Inc()
			if c.serverSeq+1 < accs[i].Seq {
				return nil, &RewindError{ServerSeq: c.serverSeq}
			}
			// The granted batch size may have changed across the
			// reconnect; the chunking below re-reads it every iteration.
		}
		if c.batch <= 0 {
			// Legacy daemon (or batching disabled): finish the remaining
			// accesses frame-at-a-time. Decide carries its own retry
			// budget and rewind check.
			for ; i < len(accs); i++ {
				a := &accs[i]
				dec, err := c.Decide(&serve.Frame{
					Type: serve.FrameAccess, Seq: a.Seq, PC: a.PC, Addr: a.Addr,
					Value: a.Value, Reg: a.Reg, BranchHist: a.BranchHist,
					Store: a.Store, Hints: a.Hints,
				})
				if err != nil {
					return nil, err
				}
				c.out = append(c.out, serve.BatchDecision{
					Seq: a.Seq, Prefetch: dec.Prefetch, Shadow: dec.Shadow,
					Degraded: dec.Degraded, Replayed: dec.Replayed,
				})
			}
			return c.out, nil
		}
		k := min(c.batch, len(accs)-i)
		chunk := accs[i : i+k]
		var start time.Time
		if c.rtt != nil && sched == nil {
			start = time.Now()
		}
		res, err := c.exchangeBatch(chunk)
		if err != nil {
			lastErr = err
			attempt++
			c.failures++
			c.Retries++
			c.retriesC.Inc()
			c.cfg.Logf("client: batch seq %d+%d failed (attempt %d): %v", chunk[0].Seq, k, attempt, err)
			c.drop()
			c.backoff()
			continue
		}
		c.failures = 0
		attempt = 0
		if c.rtt != nil {
			if sched != nil {
				for j := 0; j < k; j++ {
					c.rtt.Observe(time.Since(sched[i+j]).Seconds())
				}
			} else {
				el := time.Since(start).Seconds()
				for j := 0; j < k; j++ {
					c.rtt.Observe(el)
				}
			}
		}
		if i == 0 && k == len(accs) {
			// Single chunk: hand back the reply frame's results directly
			// (valid until the next call) — the steady-state zero-copy path.
			return res, nil
		}
		if i+k == len(accs) {
			// Final chunk: the reply frame stays untouched until the next
			// call, so shallow headers are safe.
			c.out = append(c.out, res...)
		} else {
			// Earlier chunks: the reply frame's buffers are recycled by
			// the next chunk's read, so deep-copy.
			for j := range res {
				d := res[j]
				d.Prefetch = append([]uint64(nil), d.Prefetch...)
				d.Shadow = append([]uint64(nil), d.Shadow...)
				c.out = append(c.out, d)
			}
		}
		i += k
	}
	return c.out, nil
}

// exchangeBatch sends one batch chunk and reads until its answer
// arrives, decoding replies into the client's reused frame. Matching is
// by identity of the seq range: a batch reply whose first seq and length
// equal the chunk's is the answer (duplicated or delayed replies for
// other chunks are skipped, like stray decisions on the single path).
// A per-item stale_seq code means this client's stream fell further
// behind the replay window than one chunk — unrecoverable, like the
// single path's stale error.
func (c *Client) exchangeBatch(chunk []serve.BatchAccess) ([]serve.BatchDecision, error) {
	first := chunk[0].Seq
	req := serve.Frame{Type: serve.FrameBatch, Accesses: chunk}
	if err := c.send(&req, c.cfg.RequestTimeout); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(c.cfg.RequestTimeout)
	busyN := 0
	for {
		c.conn.SetReadDeadline(deadline)
		if err := c.r.ReadInto(&c.resp); err != nil {
			return nil, fmt.Errorf("client: recv: %w", err)
		}
		got := &c.resp
		switch got.Type {
		case serve.FrameBatch:
			if len(got.Results) != len(chunk) || got.Results[0].Seq != first {
				continue // delayed/duplicated reply for another chunk
			}
			for j := range got.Results {
				if code := got.Results[j].Code; code != "" {
					return nil, fmt.Errorf("client: seq %d %s on server", got.Results[j].Seq, code)
				}
			}
			return got.Results, nil
		case serve.FrameDecision, serve.FramePong:
			// Stray singles from pre-batch traffic or keepalive noise.
		case serve.FrameBusy:
			if got.Seq != 0 && got.Seq != first {
				continue
			}
			c.Busy++
			c.busyC.Inc()
			if busyN++; busyN > c.cfg.MaxAttempts {
				return nil, fmt.Errorf("client: server busy %d times for batch at seq %d", busyN, first)
			}
			wait := time.Duration(got.RetryMs) * time.Millisecond
			if wait <= 0 {
				wait = c.cfg.BackoffBase
			}
			time.Sleep(wait)
			if err := c.resend(c.cfg.RequestTimeout); err != nil {
				return nil, fmt.Errorf("client: resend after busy: %w", err)
			}
			deadline = time.Now().Add(c.cfg.RequestTimeout)
		case serve.FrameError:
			switch got.Code {
			case serve.CodeSessionClosed, serve.CodeShuttingDown:
				return nil, fmt.Errorf("client: %s: %s", got.Code, got.Msg)
			case serve.CodeStaleSeq:
				if got.Seq != 0 && (got.Seq < first || got.Seq >= first+uint64(len(chunk))) {
					continue // stale answer to a duplicated old frame
				}
				return nil, fmt.Errorf("client: batch at seq %d stale on server: %s", first, got.Msg)
			default:
				return nil, fmt.Errorf("client: server error %s: %s", got.Code, got.Msg)
			}
		default:
			return nil, fmt.Errorf("client: unexpected %s frame mid-stream", got.Type)
		}
	}
}

// exchange sends one access and reads until its answer arrives. Busy
// bounces are resent on the same connection after the server's hinted
// wait; only transport faults bubble up to the reconnect path.
func (c *Client) exchange(fr *serve.Frame) (*serve.Frame, error) {
	if err := c.send(fr, c.cfg.RequestTimeout); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(c.cfg.RequestTimeout)
	busyN := 0
	for {
		c.conn.SetReadDeadline(deadline)
		got, err := c.r.Read()
		if err != nil {
			return nil, fmt.Errorf("client: recv: %w", err)
		}
		switch got.Type {
		case serve.FrameDecision:
			if got.Seq == fr.Seq {
				return got, nil
			}
			// A duplicated or delayed reply for an earlier seq (the
			// chaos proxy does this): skip it.
		case serve.FrameBusy:
			if got.Seq != 0 && got.Seq != fr.Seq {
				continue
			}
			c.Busy++
			c.busyC.Inc()
			if busyN++; busyN > c.cfg.MaxAttempts {
				return nil, fmt.Errorf("client: server busy %d times for seq %d", busyN, fr.Seq)
			}
			wait := time.Duration(got.RetryMs) * time.Millisecond
			if wait <= 0 {
				wait = c.cfg.BackoffBase
			}
			time.Sleep(wait)
			if err := c.resend(c.cfg.RequestTimeout); err != nil {
				return nil, fmt.Errorf("client: resend after busy: %w", err)
			}
			deadline = time.Now().Add(c.cfg.RequestTimeout)
		case serve.FramePong:
			// Keepalive noise.
		case serve.FrameError:
			switch got.Code {
			case serve.CodeSessionClosed, serve.CodeShuttingDown:
				// Reconnect (fresh hello revives or recreates the
				// session) and resend.
				return nil, fmt.Errorf("client: %s: %s", got.Code, got.Msg)
			case serve.CodeStaleSeq:
				if got.Seq != 0 && got.Seq != fr.Seq {
					continue // stale answer to a duplicated old frame
				}
				return nil, fmt.Errorf("client: seq %d stale on server: %s", fr.Seq, got.Msg)
			default:
				return nil, fmt.Errorf("client: server error %s: %s", got.Code, got.Msg)
			}
		default:
			return nil, fmt.Errorf("client: unexpected %s frame mid-stream", got.Type)
		}
	}
}

// Ping round-trips a keepalive on the current connection.
func (c *Client) Ping() error {
	if c.conn == nil {
		if err := c.connect(); err != nil {
			return err
		}
	}
	if err := c.send(&serve.Frame{Type: serve.FramePing}, c.cfg.RequestTimeout); err != nil {
		return err
	}
	c.conn.SetReadDeadline(time.Now().Add(c.cfg.RequestTimeout))
	got, err := c.r.Read()
	if err != nil {
		return err
	}
	if got.Type != serve.FramePong {
		return fmt.Errorf("client: ping answered with %s", got.Type)
	}
	return nil
}

// Stats fetches the server-side serving statistics for this client's
// session (decisions, degraded fallbacks, replays, inbox high-water).
// Lockstep like Ping: call it between Decide exchanges, not concurrently.
func (c *Client) Stats() (*serve.SessionStats, error) {
	if c.conn == nil {
		if err := c.connect(); err != nil {
			return nil, err
		}
	}
	if err := c.send(&serve.Frame{Type: serve.FrameStats}, c.cfg.RequestTimeout); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(c.cfg.RequestTimeout)
	for {
		c.conn.SetReadDeadline(deadline)
		got, err := c.r.Read()
		if err != nil {
			return nil, err
		}
		switch got.Type {
		case serve.FrameStats:
			if got.Stats == nil {
				return nil, fmt.Errorf("client: stats reply without payload")
			}
			return got.Stats, nil
		case serve.FrameDecision, serve.FramePong:
			// Late answers to earlier traffic (duplicated by a chaos
			// proxy): skip.
		case serve.FrameError:
			return nil, fmt.Errorf("client: stats: server error %s: %s", got.Code, got.Msg)
		default:
			return nil, fmt.Errorf("client: stats answered with %s", got.Type)
		}
	}
}

// Explain fetches the live learner-introspection report for this
// client's session: the learner-health snapshot plus the topK hottest
// contexts with their candidate score tables (topK 0 takes the server
// default, serve.DefaultExplainContexts). Lockstep like Stats: call it
// between Decide exchanges, not concurrently.
func (c *Client) Explain(topK int) (*serve.ExplainReport, error) {
	if topK < 0 || topK > serve.MaxExplainContexts {
		return nil, fmt.Errorf("client: explain topK %d out of range [0,%d]", topK, serve.MaxExplainContexts)
	}
	if c.conn == nil {
		if err := c.connect(); err != nil {
			return nil, err
		}
	}
	if err := c.send(&serve.Frame{Type: serve.FrameExplain, TopK: topK}, c.cfg.RequestTimeout); err != nil {
		return nil, err
	}
	deadline := time.Now().Add(c.cfg.RequestTimeout)
	for {
		c.conn.SetReadDeadline(deadline)
		got, err := c.r.Read()
		if err != nil {
			return nil, err
		}
		switch got.Type {
		case serve.FrameExplain:
			if got.Explain == nil {
				return nil, fmt.Errorf("client: explain reply without payload")
			}
			return got.Explain, nil
		case serve.FrameDecision, serve.FramePong:
			// Late answers to earlier traffic (duplicated by a chaos
			// proxy): skip.
		case serve.FrameError:
			return nil, fmt.Errorf("client: explain: server error %s: %s", got.Code, got.Msg)
		default:
			return nil, fmt.Errorf("client: explain answered with %s", got.Type)
		}
	}
}

// Close detaches politely (bye) and closes the connection.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	c.send(&serve.Frame{Type: serve.FrameBye}, time.Second)
	err := c.conn.Close()
	c.conn, c.r = nil, nil
	return err
}
