package serve

import (
	"semloc/internal/cache"
	"semloc/internal/core"
	"semloc/internal/memmodel"
	"semloc/internal/prefetch"
	"semloc/internal/trace"
)

// Learner wraps one session's context prefetcher behind a deterministic
// serving issuer: Decide feeds an access frame through core.OnAccess and
// collects the issued/shadow prefetch addresses into a decision frame.
//
// Serving has no simulated memory system, so the issuer is a fixed point:
// prefetch slots are always free and every real prefetch dispatches. That
// makes a daemon-side learner a pure function of (initial state, access
// stream) — which is what lets prefetchsim -remote cross-check daemon
// decisions against an in-process learner, and the chaos tests compare a
// killed-and-restored daemon against a never-killed reference.
//
// Learner is not goroutine-safe; the session worker serializes access.
type Learner struct {
	pf  *core.Prefetcher
	iss collectIssuer
	// seen counts accesses applied (the learner-side access index).
	seen uint64
}

// NewLearner builds a serving learner. A zero cfg means core defaults.
func NewLearner(cfg core.Config) (*Learner, error) {
	if cfg.CSTEntries == 0 {
		cfg = core.DefaultConfig()
	}
	pf, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Learner{pf: pf}, nil
}

// RestoreLearner warm-starts a learner from saved state.
func RestoreLearner(st *core.LearnerState) (*Learner, error) {
	pf, err := core.NewFromState(st)
	if err != nil {
		return nil, err
	}
	l := &Learner{pf: pf}
	l.seen = pf.Metrics().Accesses
	return l, nil
}

// Save captures the learner's state for a snapshot.
func (l *Learner) Save() *core.LearnerState { return l.pf.SaveState() }

// Accesses returns how many accesses this learner has applied.
func (l *Learner) Accesses() uint64 { return l.pf.Metrics().Accesses }

// Health snapshots the learner's RL health (outcome taxonomy,
// explore/exploit split, reward-sign mix, CST occupancy and churn).
func (l *Learner) Health() core.LearnerHealth { return l.pf.LearnerHealth() }

// Explain returns the learner's top-K hottest contexts with their
// candidate score tables (see core.ExplainTopContexts).
func (l *Learner) Explain(topK int) []core.ContextExplain {
	return l.pf.ExplainTopContexts(topK)
}

// Decide applies one access frame and returns the decision frame (without
// Seq, which the session fills in).
func (l *Learner) Decide(fr *Frame) *Frame {
	pf, sh := l.apply(fr.PC, fr.Addr, fr.Value, fr.Reg, fr.BranchHist, fr.Store, fr.Hints)
	dec := &Frame{Type: FrameDecision}
	if len(pf) > 0 {
		dec.Prefetch = append([]uint64(nil), pf...)
	}
	if len(sh) > 0 {
		dec.Shadow = append([]uint64(nil), sh...)
	}
	return dec
}

// DecideAccess applies one batch item and returns the issued and shadow
// addresses. The returned slices are owned by the learner's issuer and
// valid only until the next Decide/DecideAccess call — callers copy what
// they keep. Batch serving uses this to avoid one slice allocation pair
// per access.
func (l *Learner) DecideAccess(a *BatchAccess) (prefetch, shadow []uint64) {
	return l.apply(a.PC, a.Addr, a.Value, a.Reg, a.BranchHist, a.Store, a.Hints)
}

// apply feeds one access through the prefetcher and returns the
// issuer-owned result slices.
func (l *Learner) apply(pc, addr, value, reg uint64, branchHist uint16, store bool, hints *Hints) ([]uint64, []uint64) {
	a := prefetch.Access{
		PC:         pc,
		Addr:       memmodel.Addr(addr),
		Line:       memmodel.Line(addr >> 6),
		Now:        cache.Cycle(l.seen),
		Index:      l.seen,
		IsStore:    store,
		Value:      value,
		Reg:        reg,
		BranchHist: branchHist,
	}
	if hints != nil {
		a.Hints = trace.SWHints{
			Valid:      hints.Valid,
			TypeID:     hints.TypeID,
			LinkOffset: hints.LinkOffset,
			RefForm:    trace.RefForm(hints.RefForm),
		}
	}
	l.iss.reset()
	l.pf.OnAccess(&a, &l.iss)
	l.seen++
	return l.iss.prefetches, l.iss.shadows
}

// collectIssuer is the serving-side prefetch.Issuer: it records addresses
// instead of driving a cache hierarchy. Slots never run out — backpressure
// is handled at the session layer, not by silently demoting predictions,
// so decisions stay a deterministic function of the access stream.
type collectIssuer struct {
	prefetches []uint64
	shadows    []uint64
}

func (c *collectIssuer) reset() {
	c.prefetches = c.prefetches[:0]
	c.shadows = c.shadows[:0]
}

// Prefetch implements prefetch.Issuer.
func (c *collectIssuer) Prefetch(addr memmodel.Addr, now cache.Cycle) bool {
	c.prefetches = append(c.prefetches, uint64(addr))
	return true
}

// Shadow implements prefetch.Issuer.
func (c *collectIssuer) Shadow(addr memmodel.Addr) {
	c.shadows = append(c.shadows, uint64(addr))
}

// FreePrefetchSlots implements prefetch.Issuer.
func (c *collectIssuer) FreePrefetchSlots(now cache.Cycle) int { return 1 << 20 }

// FallbackDecision is the degradation-ladder bottom rung: a next-line
// stride guess computed without touching any learner state, served
// immediately from the connection reader when a session's inbox is full.
// Cheap, stateless, safe to produce concurrently with the session worker.
func FallbackDecision(fr *Frame, blockShift uint) *Frame {
	blockBytes := uint64(1) << blockShift
	next := (fr.Addr &^ (blockBytes - 1)) + blockBytes
	return &Frame{
		Type:     FrameDecision,
		Seq:      fr.Seq,
		Prefetch: []uint64{next},
		Degraded: true,
	}
}

// FallbackBatchDecision is FallbackDecision for a whole batch: one
// next-line guess per access, produced without learner state when the
// session's inbox is full.
func FallbackBatchDecision(accs []BatchAccess, blockShift uint) *Frame {
	blockBytes := uint64(1) << blockShift
	out := &Frame{Type: FrameBatch, Results: make([]BatchDecision, len(accs))}
	for i := range accs {
		next := (accs[i].Addr &^ (blockBytes - 1)) + blockBytes
		out.Results[i] = BatchDecision{
			Seq:      accs[i].Seq,
			Prefetch: []uint64{next},
			Degraded: true,
		}
	}
	return out
}

// AccessFrames converts a trace's memory records into the access frames a
// client streams to the daemon, reproducing the attribute derivation the
// simulator performs (global 16-bit branch history accumulated in record
// order). Seq numbering starts at 1.
func AccessFrames(tr *trace.Trace) []Frame {
	var out []Frame
	var hist uint16
	seq := uint64(0)
	for i := range tr.Records {
		r := &tr.Records[i]
		switch r.Kind {
		case trace.KindBranch:
			hist <<= 1
			if r.Taken {
				hist |= 1
			}
		case trace.KindLoad, trace.KindStore:
			seq++
			f := Frame{
				Type:       FrameAccess,
				Seq:        seq,
				PC:         r.PC,
				Addr:       uint64(r.Addr),
				Value:      r.Value,
				Reg:        r.Reg,
				BranchHist: hist,
				Store:      r.Kind == trace.KindStore,
			}
			if r.Hints.Valid {
				f.Hints = &Hints{
					Valid:      true,
					TypeID:     r.Hints.TypeID,
					LinkOffset: r.Hints.LinkOffset,
					RefForm:    uint8(r.Hints.RefForm),
				}
			}
			out = append(out, f)
		}
	}
	return out
}

// SameDecision reports whether two decision frames carry the same
// prediction payload (ignoring transport markers like Replayed).
func SameDecision(a, b *Frame) bool {
	return equalU64(a.Prefetch, b.Prefetch) && equalU64(a.Shadow, b.Shadow)
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
