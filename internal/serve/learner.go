package serve

import (
	"semloc/internal/cache"
	"semloc/internal/core"
	"semloc/internal/memmodel"
	"semloc/internal/prefetch"
	"semloc/internal/trace"
)

// Learner wraps one session's context prefetcher behind a deterministic
// serving issuer: Decide feeds an access frame through core.OnAccess and
// collects the issued/shadow prefetch addresses into a decision frame.
//
// Serving has no simulated memory system, so the issuer is a fixed point:
// prefetch slots are always free and every real prefetch dispatches. That
// makes a daemon-side learner a pure function of (initial state, access
// stream) — which is what lets prefetchsim -remote cross-check daemon
// decisions against an in-process learner, and the chaos tests compare a
// killed-and-restored daemon against a never-killed reference.
//
// Learner is not goroutine-safe; the session worker serializes access.
type Learner struct {
	pf  *core.Prefetcher
	iss collectIssuer
	// seen counts accesses applied (the learner-side access index).
	seen uint64
}

// NewLearner builds a serving learner. A zero cfg means core defaults.
func NewLearner(cfg core.Config) (*Learner, error) {
	if cfg.CSTEntries == 0 {
		cfg = core.DefaultConfig()
	}
	pf, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Learner{pf: pf}, nil
}

// RestoreLearner warm-starts a learner from saved state.
func RestoreLearner(st *core.LearnerState) (*Learner, error) {
	pf, err := core.NewFromState(st)
	if err != nil {
		return nil, err
	}
	l := &Learner{pf: pf}
	l.seen = pf.Metrics().Accesses
	return l, nil
}

// Save captures the learner's state for a snapshot.
func (l *Learner) Save() *core.LearnerState { return l.pf.SaveState() }

// Accesses returns how many accesses this learner has applied.
func (l *Learner) Accesses() uint64 { return l.pf.Metrics().Accesses }

// Decide applies one access frame and returns the decision frame (without
// Seq, which the session fills in).
func (l *Learner) Decide(fr *Frame) *Frame {
	a := prefetch.Access{
		PC:         fr.PC,
		Addr:       memmodel.Addr(fr.Addr),
		Line:       memmodel.Line(fr.Addr >> 6),
		Now:        cache.Cycle(l.seen),
		Index:      l.seen,
		IsStore:    fr.Store,
		Value:      fr.Value,
		Reg:        fr.Reg,
		BranchHist: fr.BranchHist,
	}
	if fr.Hints != nil {
		a.Hints = trace.SWHints{
			Valid:      fr.Hints.Valid,
			TypeID:     fr.Hints.TypeID,
			LinkOffset: fr.Hints.LinkOffset,
			RefForm:    trace.RefForm(fr.Hints.RefForm),
		}
	}
	l.iss.reset()
	l.pf.OnAccess(&a, &l.iss)
	l.seen++
	dec := &Frame{Type: FrameDecision}
	if len(l.iss.prefetches) > 0 {
		dec.Prefetch = append([]uint64(nil), l.iss.prefetches...)
	}
	if len(l.iss.shadows) > 0 {
		dec.Shadow = append([]uint64(nil), l.iss.shadows...)
	}
	return dec
}

// collectIssuer is the serving-side prefetch.Issuer: it records addresses
// instead of driving a cache hierarchy. Slots never run out — backpressure
// is handled at the session layer, not by silently demoting predictions,
// so decisions stay a deterministic function of the access stream.
type collectIssuer struct {
	prefetches []uint64
	shadows    []uint64
}

func (c *collectIssuer) reset() {
	c.prefetches = c.prefetches[:0]
	c.shadows = c.shadows[:0]
}

// Prefetch implements prefetch.Issuer.
func (c *collectIssuer) Prefetch(addr memmodel.Addr, now cache.Cycle) bool {
	c.prefetches = append(c.prefetches, uint64(addr))
	return true
}

// Shadow implements prefetch.Issuer.
func (c *collectIssuer) Shadow(addr memmodel.Addr) {
	c.shadows = append(c.shadows, uint64(addr))
}

// FreePrefetchSlots implements prefetch.Issuer.
func (c *collectIssuer) FreePrefetchSlots(now cache.Cycle) int { return 1 << 20 }

// FallbackDecision is the degradation-ladder bottom rung: a next-line
// stride guess computed without touching any learner state, served
// immediately from the connection reader when a session's inbox is full.
// Cheap, stateless, safe to produce concurrently with the session worker.
func FallbackDecision(fr *Frame, blockShift uint) *Frame {
	blockBytes := uint64(1) << blockShift
	next := (fr.Addr &^ (blockBytes - 1)) + blockBytes
	return &Frame{
		Type:     FrameDecision,
		Seq:      fr.Seq,
		Prefetch: []uint64{next},
		Degraded: true,
	}
}

// AccessFrames converts a trace's memory records into the access frames a
// client streams to the daemon, reproducing the attribute derivation the
// simulator performs (global 16-bit branch history accumulated in record
// order). Seq numbering starts at 1.
func AccessFrames(tr *trace.Trace) []Frame {
	var out []Frame
	var hist uint16
	seq := uint64(0)
	for i := range tr.Records {
		r := &tr.Records[i]
		switch r.Kind {
		case trace.KindBranch:
			hist <<= 1
			if r.Taken {
				hist |= 1
			}
		case trace.KindLoad, trace.KindStore:
			seq++
			f := Frame{
				Type:       FrameAccess,
				Seq:        seq,
				PC:         r.PC,
				Addr:       uint64(r.Addr),
				Value:      r.Value,
				Reg:        r.Reg,
				BranchHist: hist,
				Store:      r.Kind == trace.KindStore,
			}
			if r.Hints.Valid {
				f.Hints = &Hints{
					Valid:      true,
					TypeID:     r.Hints.TypeID,
					LinkOffset: r.Hints.LinkOffset,
					RefForm:    uint8(r.Hints.RefForm),
				}
			}
			out = append(out, f)
		}
	}
	return out
}

// SameDecision reports whether two decision frames carry the same
// prediction payload (ignoring transport markers like Replayed).
func SameDecision(a, b *Frame) bool {
	return equalU64(a.Prefetch, b.Prefetch) && equalU64(a.Shadow, b.Shadow)
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
