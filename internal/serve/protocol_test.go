package serve

import (
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"semloc/internal/core"
)

func TestFrameEncodeDecodeRoundTrip(t *testing.T) {
	frames := []*Frame{
		{Type: FrameHello, Version: ProtocolVersion, Session: "s1"},
		{Type: FrameWelcome, Session: "s1", LastSeq: 42, Resumed: true},
		{Type: FrameAccess, Seq: 7, PC: 0x400123, Addr: 0xdeadbe00, Value: 9, Reg: 3,
			BranchHist: 0xabcd, Store: true,
			Hints: &Hints{Valid: true, TypeID: 2, LinkOffset: 8, RefForm: 1}},
		{Type: FrameDecision, Seq: 7, Prefetch: []uint64{0xdeadbe40}, Shadow: []uint64{0xdeadbe80}},
		{Type: FrameDecision, Seq: 8, Degraded: true, Prefetch: []uint64{1}},
		{Type: FrameBusy, Seq: 9, RetryMs: 50},
		{Type: FrameError, Code: CodeStaleSeq, Msg: "too old"},
		{Type: FramePing},
		{Type: FramePong},
		{Type: FrameStats},
		{Type: FrameStats, Stats: &SessionStats{
			ID: "s1", Decisions: 10, Degraded: 2, Replayed: 1,
			InboxHighWater: 3, LastSeq: 10, Attached: true}},
		{Type: FrameStats, Stats: &SessionStats{
			ID: "s1", Decisions: 10, LastSeq: 10, Attached: true,
			Learner: &core.LearnerHealth{
				Accesses: 10, Predictions: 4, RealPrefetches: 2,
				OutcomeAccurate: 1, OutcomeUseless: 1,
				Epsilon: 0.5, CSTEntries: 3, CSTCapacity: 512}}},
		{Type: FrameExplain},
		{Type: FrameExplain, TopK: 4},
		{Type: FrameExplain, Explain: &ExplainReport{
			Session: "s1",
			Health:  core.LearnerHealth{Accesses: 10, Explores: 2, PosRewards: 1},
			Contexts: []core.ContextExplain{{
				Context: 0xabc, Trials: 7, Churn: 1,
				Links: []core.LinkExplain{{Delta: 2, Score: 5}, {Delta: -3, Score: -1}}}}}},
		{Type: FrameBye},
	}
	for _, f := range frames {
		b, err := EncodeFrame(f)
		if err != nil {
			t.Fatalf("encode %s: %v", f.Type, err)
		}
		if b[len(b)-1] != '\n' {
			t.Fatalf("encode %s: no trailing newline", f.Type)
		}
		got, err := DecodeFrame(b[:len(b)-1])
		if err != nil {
			t.Fatalf("decode %s: %v", f.Type, err)
		}
		b2, err := EncodeFrame(got)
		if err != nil {
			t.Fatalf("re-encode %s: %v", f.Type, err)
		}
		if !bytes.Equal(b, b2) {
			t.Fatalf("%s round trip drifted:\n%s%s", f.Type, b, b2)
		}
	}
}

func TestFrameValidateRejects(t *testing.T) {
	bad := []*Frame{
		{Type: "bogus"},
		{Type: FrameHello, Version: ProtocolVersion + 1, Session: "s"},
		{Type: FrameHello, Version: ProtocolVersion},
		{Type: FrameHello, Version: ProtocolVersion, Session: strings.Repeat("x", 129)},
		{Type: FrameAccess},
		{Type: FrameError},
		{Type: FrameExplain, TopK: -1},
		{Type: FrameExplain, TopK: MaxExplainContexts + 1},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Fatalf("case %d (%s): invalid frame validated", i, f.Type)
		}
		if _, err := EncodeFrame(f); err == nil {
			t.Fatalf("case %d (%s): invalid frame encoded", i, f.Type)
		}
	}
}

func TestDecodeFrameRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"", "not json", "[1,2,3]", `{"type":}`, `{"type":"access"}`,
	} {
		if _, err := DecodeFrame([]byte(line)); err == nil {
			t.Fatalf("decoded %q", line)
		}
	}
	if _, err := DecodeFrame(bytes.Repeat([]byte("a"), MaxFrameBytes+1)); err == nil {
		t.Fatal("decoded an oversize frame")
	}
}

func TestFrameReaderStream(t *testing.T) {
	var buf bytes.Buffer
	want := []*Frame{
		{Type: FrameHello, Version: ProtocolVersion, Session: "s"},
		{Type: FrameAccess, Seq: 1, Addr: 64},
		{Type: FrameBye},
	}
	for _, f := range want {
		b, err := EncodeFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
	}
	r := NewFrameReader(&buf)
	for i, w := range want {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != w.Type || got.Seq != w.Seq {
			t.Fatalf("frame %d: got %s/%d, want %s/%d", i, got.Type, got.Seq, w.Type, w.Seq)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

func TestFrameReaderRejectsOversizeAndTruncated(t *testing.T) {
	// A line longer than the frame bound must fail without buffering it all.
	huge := strings.Repeat("x", MaxFrameBytes+2) + "\n"
	if _, err := NewFrameReader(strings.NewReader(huge)).Read(); err == nil {
		t.Fatal("read an oversize line")
	}
	// A final unterminated line is a truncated frame, not a clean EOF.
	if _, err := NewFrameReader(strings.NewReader(`{"type":"ping"}`)).Read(); err != io.ErrUnexpectedEOF {
		t.Fatalf("want ErrUnexpectedEOF for truncated tail, got %v", err)
	}
}

// TestFrameReaderPartialFrameOverConn: a peer that writes half a frame and
// closes leaves a truncated tail, and the reader must surface
// io.ErrUnexpectedEOF (not a clean EOF and not a parsed frame).
func TestFrameReaderPartialFrameOverConn(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go func() {
		client.Write([]byte(`{"type":"access","se`)) // no newline
		client.Close()
	}()
	if _, err := NewFrameReader(server).Read(); err != io.ErrUnexpectedEOF {
		t.Fatalf("partial frame then close: want ErrUnexpectedEOF, got %v", err)
	}
}

// TestFrameReaderDeadlineExpiry: when the read deadline fires mid-frame,
// the reader surfaces the conn's timeout error — and because the partial
// line is buffered inside the FrameReader, the conn is not resumable for
// framing (the daemon's reader loop treats any non-nil error as fatal for
// the connection, which this pins).
func TestFrameReaderDeadlineExpiry(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	go client.Write([]byte(`{"type":"ping"`)) // stall mid-frame, never newline
	server.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	r := NewFrameReader(server)
	_, err := r.Read()
	if err == nil {
		t.Fatal("read succeeded with an unterminated frame")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("want a net timeout error, got %v", err)
	}
}

// TestFrameReaderReadTimed: the timed variant returns the same frames as
// Read and a decode duration that reflects parse cost only.
func TestFrameReaderReadTimed(t *testing.T) {
	var buf bytes.Buffer
	for i := uint64(1); i <= 3; i++ {
		b, err := EncodeFrame(&Frame{Type: FrameAccess, Seq: i, Addr: i * 64})
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
	}
	r := NewFrameReader(&buf)
	for i := uint64(1); i <= 3; i++ {
		f, d, err := r.ReadTimed()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Seq != i || f.Addr != i*64 {
			t.Fatalf("frame %d: %+v", i, f)
		}
		if d < 0 {
			t.Fatalf("negative decode duration %v", d)
		}
	}
	if _, _, err := r.ReadTimed(); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

// FuzzDecodeFrame is the wire-decoder fuzz target: DecodeFrame must never
// panic, and anything it accepts must re-encode and re-decode cleanly
// (no frame can pass validation yet be unrepresentable).
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte(`{"type":"hello","v":1,"session":"s"}`))
	f.Add([]byte(`{"type":"access","seq":1,"pc":1,"addr":64,"store":true}`))
	f.Add([]byte(`{"type":"decision","seq":1,"prefetch":[128],"degraded":true}`))
	f.Add([]byte(`{"type":"error","code":"bad-frame","msg":"x"}`))
	f.Add([]byte(`{"type":"busy","retry_ms":50}`))
	f.Add([]byte(``))
	f.Add([]byte(`{"type":"access","seq":0}`))
	f.Add([]byte(`{"hints":{"valid":true}}`))
	f.Add([]byte(`{"type":"hello","v":1,"session":"s","batch":64}`))
	f.Add([]byte(`{"type":"batch","accesses":[{"seq":1,"addr":64},{"seq":2,"addr":128}]}`))
	f.Add([]byte(`{"type":"batch","results":[{"seq":1,"prefetch":[64]},{"seq":2,"replayed":true}]}`))
	f.Add([]byte(`{"type":"batch","accesses":[]}`))                    // zero-length: rejected
	f.Add([]byte(`{"type":"batch","accesses":[{"seq":3},{"seq":3}]}`)) // duplicate seqs: rejected
	f.Add([]byte(`{"type":"batch","accesses":[{"seq":3},{"seq":9}]}`)) // gapped seqs: rejected
	f.Add([]byte(`{"type":"explain"}`))
	f.Add([]byte(`{"type":"explain","top_k":4}`))
	f.Add([]byte(`{"type":"explain","top_k":-1}`)) // negative top_k: rejected
	f.Add([]byte(`{"type":"explain","explain":{"session":"s1","health":{"accesses":10,"real_prefetches":2,"outcome_accurate":1,"outcome_useless":1,"epsilon":0.5},"contexts":[{"context":123,"trials":7,"churn":1,"links":[{"delta":2,"score":5},{"delta":-3,"score":-1}]}]}}`))
	f.Add([]byte(`{"type":"stats","stats":{"id":"s1","decisions":10,"degraded":0,"replayed":0,"inbox_high_water":1,"last_seq":10,"attached":true,"learner":{"accesses":10,"predictions":4,"real_prefetches":2,"outcome_accurate":1,"outcome_useless":1,"cst_entries":3,"cst_capacity":512}}}`))
	f.Add(append([]byte(`{"type":"batch","accesses":[{"seq":1}`),
		append(bytes.Repeat([]byte(`,{"seq":2}`), MaxBatch), ']', '}')...)) // oversize: rejected
	f.Fuzz(func(t *testing.T, line []byte) {
		fr, err := DecodeFrame(line)
		if err != nil {
			return
		}
		b, err := EncodeFrame(fr)
		if err != nil {
			t.Fatalf("accepted frame failed to encode: %v (input %q)", err, line)
		}
		if _, err := DecodeFrame(b[:len(b)-1]); err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v (input %q)", err, line)
		}
	})
}
