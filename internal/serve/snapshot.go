package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// SnapshotSchema versions the daemon snapshot envelope (the per-learner
// encoding is versioned separately by core.StateSchema).
const SnapshotSchema = 1

// Snapshot is the daemon's durable state: every live session, sorted by
// id so marshaling is deterministic.
type Snapshot struct {
	Sessions []SessionSnapshot `json:"sessions"`
}

// snapshotFile is the on-disk envelope: the payload bytes plus a sha256
// over exactly those bytes, so a torn or bit-flipped file is detected at
// restore instead of silently warm-starting a corrupt learner.
type snapshotFile struct {
	Schema  int             `json:"schema"`
	SHA256  string          `json:"sha256"`
	Payload json.RawMessage `json:"payload"`
}

// SaveSnapshot atomically persists snap at path: the envelope is written
// to a temp file in the same directory and renamed into place, so readers
// only ever observe a complete previous or complete new snapshot.
func SaveSnapshot(path string, snap *Snapshot) error {
	payload, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("serve: encoding snapshot: %w", err)
	}
	sum := sha256.Sum256(payload)
	env, err := json.Marshal(snapshotFile{
		Schema:  SnapshotSchema,
		SHA256:  hex.EncodeToString(sum[:]),
		Payload: payload,
	})
	if err != nil {
		return fmt.Errorf("serve: encoding snapshot envelope: %w", err)
	}
	env = append(env, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("serve: snapshot temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(env); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("serve: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("serve: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("serve: closing snapshot: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("serve: installing snapshot: %w", err)
	}
	return nil
}

// LoadSnapshot reads and verifies a snapshot. A missing file is not an
// error: it returns (nil, nil) — the cold-start case.
func LoadSnapshot(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: reading snapshot: %w", err)
	}
	var env snapshotFile
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, fmt.Errorf("serve: parsing snapshot envelope: %w", err)
	}
	if env.Schema != SnapshotSchema {
		return nil, fmt.Errorf("serve: snapshot schema %d, want %d", env.Schema, SnapshotSchema)
	}
	sum := sha256.Sum256(env.Payload)
	if got := hex.EncodeToString(sum[:]); got != env.SHA256 {
		return nil, fmt.Errorf("serve: snapshot checksum mismatch: file says %s, payload hashes to %s", env.SHA256, got)
	}
	var snap Snapshot
	if err := json.Unmarshal(env.Payload, &snap); err != nil {
		return nil, fmt.Errorf("serve: parsing snapshot payload: %w", err)
	}
	for i := range snap.Sessions {
		ss := &snap.Sessions[i]
		if ss.ID == "" {
			return nil, fmt.Errorf("serve: snapshot session %d has empty id", i)
		}
		if err := ss.Learner.Validate(); err != nil {
			return nil, fmt.Errorf("serve: snapshot session %s: %w", ss.ID, err)
		}
	}
	return &snap, nil
}
