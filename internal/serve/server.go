package serve

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"semloc/internal/core"
	"semloc/internal/harness"
	"semloc/internal/obs"
)

// Config parameterizes a Server. The zero value plus Listen is usable;
// withDefaults fills the rest.
type Config struct {
	// Listen is the TCP address for the serving socket ("127.0.0.1:0" for
	// an ephemeral test port).
	Listen string

	// SessionTTL expires detached sessions idle for longer than this;
	// ReapInterval is how often the reaper scans (default TTL/4).
	SessionTTL   time.Duration
	ReapInterval time.Duration

	// InboxDepth bounds each session's inbox; a full inbox sheds the
	// access with an immediate degraded fallback decision. ReplayDepth
	// bounds the per-session duplicate-decision cache.
	InboxDepth  int
	ReplayDepth int

	// MaxInflight caps accesses accepted but not yet answered across all
	// sessions (each batched access counts one); beyond it clients get an
	// explicit busy frame.
	MaxInflight int
	// RetryMs is the backoff hint carried by busy frames.
	RetryMs int

	// MaxBatch caps the batch size granted at hello: 0 grants up to the
	// protocol limit (serve.MaxBatch), negative disables batching (every
	// hello is granted 0 and batch frames are protocol errors).
	MaxBatch int

	// WriteCoalesce and WriteCoalesceDelay shape the connection writer's
	// flush policy for worker replies: replies buffer until the session
	// inbox goes idle, the buffer reaches WriteCoalesce bytes, or the
	// delay deadline fires — so pipelined clients get replies packed into
	// fewer syscalls while lockstep clients still flush per reply.
	// WriteCoalesce 0 means the 4096-byte default; negative writes
	// through. WriteCoalesceDelay 0 means 200µs.
	WriteCoalesce      int
	WriteCoalesceDelay time.Duration

	// ReadTimeout bounds the gap between frames on a connection (a dead
	// peer is collected instead of pinning a reader goroutine forever);
	// WriteTimeout bounds one reply write.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration

	// SnapshotPath, when set, enables durability: restore-on-boot plus
	// periodic (SnapshotInterval) and on-shutdown snapshots.
	SnapshotPath     string
	SnapshotInterval time.Duration

	// Learner configures fresh sessions' prefetchers (zero: core defaults).
	Learner core.Config
	// BlockShift is the cache-block shift used by the degraded fallback
	// (default 6: 64-byte lines).
	BlockShift uint

	// Shards is the session-store shard count.
	Shards int

	// Reg receives serving metrics; nil gets a private registry.
	Reg *obs.Registry
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)

	// Trace enables serving-path latency instrumentation (stage
	// histograms, sampled request spans, slow-request log). Nil is the
	// zero-overhead disabled path: the per-frame code reads no clocks and
	// allocates nothing beyond the uninstrumented daemon.
	Trace *TraceConfig
}

func (c Config) withDefaults() Config {
	if c.SessionTTL <= 0 {
		c.SessionTTL = 5 * time.Minute
	}
	if c.ReapInterval <= 0 {
		c.ReapInterval = c.SessionTTL / 4
	}
	if c.InboxDepth <= 0 {
		c.InboxDepth = 64
	}
	if c.ReplayDepth <= 0 {
		c.ReplayDepth = 64
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 1024
	}
	if c.RetryMs <= 0 {
		c.RetryMs = 50
	}
	switch {
	case c.MaxBatch < 0:
		c.MaxBatch = 0
	case c.MaxBatch == 0 || c.MaxBatch > MaxBatch:
		c.MaxBatch = MaxBatch
	}
	if c.WriteCoalesce == 0 {
		c.WriteCoalesce = 4096
	}
	if c.WriteCoalesceDelay <= 0 {
		c.WriteCoalesceDelay = 200 * time.Microsecond
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 60 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.SnapshotInterval <= 0 {
		c.SnapshotInterval = 30 * time.Second
	}
	if c.BlockShift == 0 {
		c.BlockShift = 6
	}
	if c.Shards <= 0 {
		c.Shards = 16
	}
	if c.Reg == nil {
		c.Reg = obs.NewRegistry()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the prefetch-serving daemon core: a TCP accept loop feeding
// per-session workers, with idle reaping, snapshot durability and a
// graceful drain. Lifecycle: New → Start → (serve) → Close.
type Server struct {
	cfg   Config
	store *sessionStore
	trace *tracer // nil = uninstrumented per-frame path

	ln       net.Listener
	draining atomic.Bool

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	loops    sync.WaitGroup // accept loop, reaper, snapshotter
	readers  sync.WaitGroup // one per live connection
	bg       chan struct{}  // closed to stop reaper/snapshotter
	stopOnce sync.Once

	inflight atomic.Int64

	// framePool recycles decoded request frames between the connection
	// readers and the session workers, keeping the steady-state decode
	// path allocation-free.
	framePool sync.Pool

	// restored reports how many sessions the boot snapshot rebuilt.
	restored int

	// Test-only fault injection, set before Start: gate, when non-nil,
	// makes every session worker wait for a token before processing an
	// item (deterministic inbox filling for backpressure tests);
	// panicOnSeq, when non-zero, panics inside process() at that seq
	// (exercises the containment path without corrupting real state).
	gate       chan struct{}
	panicOnSeq uint64

	decisionsTotal *obs.Counter
	degradedTotal  *obs.Counter
	busyTotal      *obs.Counter
	replayedTotal  *obs.Counter
	staleTotal     *obs.Counter
	panicsTotal    *obs.Counter
	badFrames      *obs.Counter
	snapsTotal     *obs.Counter
	snapErrors     *obs.Counter
	reapedTotal    *obs.Counter
	coalescedTotal *obs.Counter
	sessionsGauge  *obs.Gauge
	connsGauge     *obs.Gauge
	inflightGauge  *obs.Gauge
}

// getFrame takes a reusable frame from the pool.
func (s *Server) getFrame() *Frame {
	if v := s.framePool.Get(); v != nil {
		return v.(*Frame)
	}
	return new(Frame)
}

// putFrame returns a request frame after its last read. Frames keep their
// slice capacities and Hints allocations across reuse.
func (s *Server) putFrame(f *Frame) {
	if f == nil {
		return
	}
	f.reset()
	s.framePool.Put(f)
}

// NewServer builds a server and, when SnapshotPath is set, restores the
// boot snapshot (warm start) before any socket exists — a caller flips
// readiness only after Start returns, so clients never reach a learner
// that is still loading state.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		store: newSessionStore(cfg.Shards),
		trace: newTracer(cfg.Trace, cfg.Reg, cfg.Logf),
		conns: make(map[net.Conn]struct{}),
		bg:    make(chan struct{}),
	}
	reg := cfg.Reg
	s.decisionsTotal = reg.Counter("serve_decisions_total", "prefetch decisions computed by session learners")
	s.degradedTotal = reg.Counter("serve_degraded_total", "accesses shed to the degraded fallback policy (inbox full)")
	s.busyTotal = reg.Counter("serve_busy_total", "accesses refused with a busy frame (global in-flight limit)")
	s.replayedTotal = reg.Counter("serve_replayed_total", "duplicate accesses answered from the replay cache")
	s.staleTotal = reg.Counter("serve_stale_seq_total", "duplicate accesses older than the replay cache")
	s.panicsTotal = reg.Counter("serve_session_panics_total", "sessions poisoned by a contained learner panic")
	s.badFrames = reg.Counter("serve_bad_frames_total", "connection frames that failed to decode or validate")
	s.snapsTotal = reg.Counter("serve_snapshots_total", "snapshots written")
	s.snapErrors = reg.Counter("serve_snapshot_errors_total", "snapshot writes that failed")
	s.reapedTotal = reg.Counter("serve_sessions_reaped_total", "idle sessions expired by the reaper")
	s.coalescedTotal = reg.Counter("serve_coalesced_writes_total", "reply frames appended to an already-pending write buffer (syscalls saved by coalescing)")
	s.sessionsGauge = reg.Gauge("serve_sessions", "live sessions")
	s.connsGauge = reg.Gauge("serve_connections", "open client connections")
	s.inflightGauge = reg.Gauge("serve_inflight", "accesses accepted but not yet answered")

	if cfg.SnapshotPath != "" {
		snap, err := LoadSnapshot(cfg.SnapshotPath)
		if err != nil {
			return nil, err
		}
		if snap != nil {
			for _, ss := range snap.Sessions {
				sess, err := restoreSession(ss, s)
				if err != nil {
					return nil, err
				}
				s.store.put(sess)
			}
			s.restored = len(snap.Sessions)
			cfg.Logf("serve: warm start: restored %d session(s) from %s", s.restored, cfg.SnapshotPath)
		}
	}
	s.sessionsGauge.Set(float64(s.store.count()))
	return s, nil
}

// RestoredSessions reports how many sessions the boot snapshot rebuilt.
func (s *Server) RestoredSessions() int { return s.restored }

// Start binds the listener and launches the accept loop, the idle reaper
// and (when configured) the periodic snapshotter.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Listen)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", s.cfg.Listen, err)
	}
	s.ln = ln
	s.loops.Add(1)
	go s.acceptLoop()
	s.loops.Add(1)
	go s.reapLoop()
	if s.cfg.SnapshotPath != "" {
		s.loops.Add(1)
		go s.snapshotLoop()
	}
	return nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close drains gracefully: stop accepting, sever connections, wait for
// readers, let every session worker finish what it already accepted, then
// write the final snapshot. Safe to call more than once.
func (s *Server) Close() error {
	s.teardown()
	var err error
	if s.cfg.SnapshotPath != "" {
		if err = s.writeSnapshot(); err != nil {
			s.cfg.Logf("serve: final snapshot failed: %v", err)
		}
	}
	return err
}

// teardown is the shared stop sequence: stop accepting, sever
// connections, wait for readers, stop the background loops, and drain
// every session worker. Idempotent.
func (s *Server) teardown() {
	s.draining.Store(true)
	s.stopOnce.Do(func() {
		if s.ln != nil {
			s.ln.Close()
		}
		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		s.readers.Wait()
		close(s.bg)
		s.loops.Wait()
		for _, sess := range s.store.all() {
			sess.close()
		}
	})
}

// Abort terminates like a crash: connections sever, goroutines stop, but
// no final snapshot is written — a restart sees only what the last
// periodic snapshot captured. The chaos tests use it to prove the
// restore path tolerates ungraceful death.
func (s *Server) Abort() { s.teardown() }

// WriteSnapshot forces one snapshot write now (the periodic loop calls
// the same path on its ticker).
func (s *Server) WriteSnapshot() error {
	if s.cfg.SnapshotPath == "" {
		return fmt.Errorf("serve: no snapshot path configured")
	}
	return s.writeSnapshot()
}

// Snapshot captures every live session, sorted by id.
func (s *Server) Snapshot() *Snapshot {
	sessions := s.store.all()
	snap := &Snapshot{}
	for _, sess := range sessions {
		snap.Sessions = append(snap.Sessions, sess.snapshot())
	}
	return snap
}

func (s *Server) writeSnapshot() error {
	if err := SaveSnapshot(s.cfg.SnapshotPath, s.Snapshot()); err != nil {
		s.snapErrors.Inc()
		return err
	}
	s.snapsTotal.Inc()
	return nil
}

func (s *Server) snapshotLoop() {
	defer s.loops.Done()
	t := time.NewTicker(s.cfg.SnapshotInterval)
	defer t.Stop()
	for {
		select {
		case <-s.bg:
			return
		case <-t.C:
			if err := s.writeSnapshot(); err != nil {
				s.cfg.Logf("serve: periodic snapshot failed: %v", err)
			}
		}
	}
}

func (s *Server) reapLoop() {
	defer s.loops.Done()
	t := time.NewTicker(s.cfg.ReapInterval)
	defer t.Stop()
	for {
		select {
		case <-s.bg:
			return
		case now := <-t.C:
			dead := s.store.reapIdle(s.cfg.SessionTTL, now)
			for _, sess := range dead {
				sess.close()
				s.reapedTotal.Inc()
			}
			if len(dead) > 0 {
				s.cfg.Logf("serve: reaped %d idle session(s)", len(dead))
			}
			s.sessionsGauge.Set(float64(s.store.count()))
			s.inflightGauge.Set(float64(s.inflight.Load()))
		}
	}
}

// noteSessionPanic records a contained learner panic and unlinks the
// poisoned session so the next hello under the same id starts fresh.
func (s *Server) noteSessionPanic(sess *session, err error) {
	s.panicsTotal.Inc()
	s.store.remove(sess)
	s.cfg.Logf("serve: session %s poisoned by contained panic: %v", sess.id, err)
}

func (s *Server) acceptLoop() {
	defer s.loops.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed (drain) or fatal; either way stop accepting
		}
		s.connMu.Lock()
		if s.draining.Load() {
			s.connMu.Unlock()
			c.Close()
			continue
		}
		s.conns[c] = struct{}{}
		// Registering the reader under connMu means Close() either sees
		// this connection in the map (and severs it) or sees draining set
		// before we got here — readers.Wait() can never miss a reader.
		s.readers.Add(1)
		s.connMu.Unlock()
		s.connsGauge.Add(1)
		go func(c net.Conn) {
			defer s.readers.Done()
			// A panic in connection handling takes down this connection
			// only, never the daemon.
			if err := harness.Safely(func() error {
				s.handleConn(c)
				return nil
			}); err != nil {
				s.cfg.Logf("serve: connection handler panic contained: %v", err)
			}
			c.Close()
			s.connMu.Lock()
			delete(s.conns, c)
			s.connMu.Unlock()
			s.connsGauge.Add(-1)
		}(c)
	}
}

// handleConn runs one connection: hello/welcome handshake (negotiating
// the batch size), then a frame loop under a per-frame read deadline.
func (s *Server) handleConn(c net.Conn) {
	w := newConnWriter(c, s.cfg.WriteTimeout, s.cfg.WriteCoalesce, s.cfg.WriteCoalesceDelay, s.coalescedTotal)
	defer w.close()
	r := NewFrameReader(c)

	c.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
	first, err := r.Read()
	if err != nil {
		s.badFrames.Inc()
		w.write(&Frame{Type: FrameError, Code: CodeBadFrame, Msg: fmt.Sprintf("reading hello: %v", err)})
		return
	}
	if first.Type != FrameHello {
		w.write(&Frame{Type: FrameError, Code: CodeProtocol, Msg: fmt.Sprintf("expected hello, got %s", first.Type)})
		return
	}
	if s.draining.Load() {
		w.write(&Frame{Type: FrameError, Code: CodeShuttingDown, Msg: "draining"})
		return
	}
	// Grant the smaller of what the client asked for and the server cap.
	// Old clients never set Batch and are granted 0: the connection
	// behaves exactly as before batching existed.
	batch := first.Batch
	if batch > s.cfg.MaxBatch {
		batch = s.cfg.MaxBatch
	}
	sess, existed, err := s.store.getOrCreate(first.Session, func() (*session, error) {
		l, err := NewLearner(s.cfg.Learner)
		if err != nil {
			return nil, err
		}
		return newSession(first.Session, l, s), nil
	})
	if err != nil {
		w.write(&Frame{Type: FrameError, Code: CodeProtocol, Msg: fmt.Sprintf("creating session: %v", err)})
		return
	}
	lastSeq := sess.attach(w)
	defer sess.detach(w)
	s.sessionsGauge.Set(float64(s.store.count()))
	if !w.write(&Frame{Type: FrameWelcome, Session: sess.id, LastSeq: lastSeq, Resumed: existed, Batch: batch}) {
		return
	}

	for {
		c.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		// With tracing on, split the decode cost out of the read (the wait
		// for bytes is client think-time, not serving latency). Frames
		// decode into pooled storage; ownership passes to the session
		// worker on enqueue and returns to the pool at every other exit.
		fr := s.getFrame()
		var (
			decodeDur time.Duration
			err       error
		)
		if s.trace != nil {
			decodeDur, err = r.ReadTimedInto(fr)
		} else {
			err = r.ReadInto(fr)
		}
		if err != nil {
			s.putFrame(fr)
			// io errors (peer gone, deadline, drain-close) end the
			// connection silently; decode errors get one parting error
			// frame — after a framing desync the stream is unusable.
			if _, ok := err.(net.Error); !ok {
				s.badFrames.Inc()
				w.write(&Frame{Type: FrameError, Code: CodeBadFrame, Msg: err.Error()})
			}
			return
		}
		switch fr.Type {
		case FrameAccess:
			it := inboxItem{fr: fr, conn: w}
			if s.trace != nil {
				it.arrival = time.Now()
				it.decodeDur = decodeDur
				it.sampled, it.spanStart = s.trace.sample(decodeDur)
			}
			s.handleAccess(sess, it)
		case FrameBatch:
			if batch == 0 || len(fr.Accesses) == 0 || len(fr.Accesses) > batch {
				msg := "batch frame on a connection that did not negotiate batching"
				switch {
				case len(fr.Accesses) == 0:
					msg = "batch frame without accesses"
				case batch > 0:
					msg = fmt.Sprintf("batch of %d exceeds the negotiated size %d", len(fr.Accesses), batch)
				}
				w.write(&Frame{Type: FrameError, Code: CodeProtocol, Msg: msg})
				s.putFrame(fr)
				continue
			}
			it := inboxItem{fr: fr, conn: w}
			if s.trace != nil {
				it.arrival = time.Now()
				it.decodeDur = decodeDur
				it.sampled, it.spanStart = s.trace.sample(decodeDur)
			}
			s.handleAccess(sess, it)
		case FramePing:
			w.write(&Frame{Type: FramePong})
			s.putFrame(fr)
		case FrameStats:
			st := sess.stats()
			w.write(&Frame{Type: FrameStats, Stats: &st})
			s.putFrame(fr)
		case FrameExplain:
			rep := sess.explain(fr.TopK)
			s.putFrame(fr)
			if rep == nil {
				w.write(&Frame{Type: FrameError, Code: CodeSessionClosed,
					Msg: "session closed or expired; reconnect with a new hello"})
				continue
			}
			w.write(&Frame{Type: FrameExplain, Explain: rep})
		case FrameBye:
			s.putFrame(fr)
			return
		default:
			w.write(&Frame{Type: FrameError, Code: CodeProtocol,
				Msg: fmt.Sprintf("unexpected %s frame after handshake", fr.Type)})
			s.putFrame(fr)
		}
	}
}

// handleAccess walks the degradation ladder for one access or batch
// frame (a batch holds one inbox slot but counts every access against
// the global in-flight budget):
//
//  1. global in-flight budget exhausted → explicit busy frame
//  2. session inbox full → immediate degraded fallback decision(s)
//  3. session closed/expired → session-closed error (client re-hellos)
//  4. otherwise → enqueue for the session worker
func (s *Server) handleAccess(sess *session, it inboxItem) {
	fr, w := it.fr, it.conn
	n := inflightCost(fr)
	seq := fr.Seq
	if fr.Type == FrameBatch {
		seq = fr.Accesses[0].Seq
	}
	if cur := s.inflight.Add(n); cur > int64(s.cfg.MaxInflight) {
		s.inflight.Add(-n)
		s.busyTotal.Add(uint64(n))
		w.write(&Frame{Type: FrameBusy, Seq: seq, RetryMs: s.cfg.RetryMs})
		s.putFrame(fr)
		return
	}
	switch sess.enqueue(it) {
	case enqueueOK:
		// The worker owns the in-flight slots and the frame now.
	case enqueueFull:
		s.inflight.Add(-n)
		s.degradedTotal.Add(uint64(n))
		sess.degraded.Add(uint64(n))
		if fr.Type == FrameBatch {
			w.write(FallbackBatchDecision(fr.Accesses, s.cfg.BlockShift))
		} else {
			w.write(FallbackDecision(fr, s.cfg.BlockShift))
		}
		s.putFrame(fr)
	case enqueueClosed:
		s.inflight.Add(-n)
		w.write(&Frame{Type: FrameError, Seq: seq, Code: CodeSessionClosed,
			Msg: "session closed or expired; reconnect with a new hello"})
		s.putFrame(fr)
	}
}

// SessionStatsAll snapshots every live session's serving statistics,
// sorted by id (the /debug/serve HTTP endpoint renders it).
func (s *Server) SessionStatsAll() []SessionStats {
	sessions := s.store.all()
	out := make([]SessionStats, 0, len(sessions))
	for _, sess := range sessions {
		out = append(out, sess.stats())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// connWriter serializes frame writes to one connection under a write
// deadline. Both the connection reader (busy/error/fallback replies) and
// the session worker (decisions) write through it concurrently. Frames
// encode into one reused buffer (zero steady-state encode allocations);
// worker replies may additionally linger in that buffer so consecutive
// replies to a pipelined client coalesce into one syscall — write order
// is preserved because every path appends to, and flushes, the same
// buffer.
type connWriter struct {
	mu      sync.Mutex
	c       net.Conn
	timeout time.Duration

	// Coalescing policy: buffer worker replies until coalesce bytes are
	// pending or the delay timer fires (the session worker also flushes
	// whenever its inbox goes idle). coalesce <= 0 writes through.
	coalesce  int
	delay     time.Duration
	buf       []byte
	timer     *time.Timer
	armed     bool
	coalesced *obs.Counter // nil when uncounted (client-side tests)
}

func newConnWriter(c net.Conn, timeout time.Duration, coalesce int, delay time.Duration, coalesced *obs.Counter) *connWriter {
	return &connWriter{c: c, timeout: timeout, coalesce: coalesce, delay: delay, coalesced: coalesced}
}

// write appends one frame and flushes everything pending, reporting
// success. Failures (peer gone, frame invalid) are swallowed: the
// reader's next Read surfaces the broken connection, and the client's
// retry discipline recovers the decision.
func (w *connWriter) write(f *Frame) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.appendLocked(f) {
		return false
	}
	return w.flushLocked()
}

// writeq appends one worker reply under the coalescing policy: flush only
// once the buffer crosses the byte threshold. The caller (session worker)
// follows up with flush() when its inbox is idle or armFlush() when more
// replies are coming.
func (w *connWriter) writeq(f *Frame) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.coalesce <= 0 {
		if !w.appendLocked(f) {
			return false
		}
		return w.flushLocked()
	}
	if len(w.buf) > 0 && w.coalesced != nil {
		w.coalesced.Inc()
	}
	if !w.appendLocked(f) {
		return false
	}
	if len(w.buf) >= w.coalesce {
		return w.flushLocked()
	}
	return true
}

// flush writes out anything pending.
func (w *connWriter) flush() {
	w.mu.Lock()
	w.flushLocked()
	w.mu.Unlock()
}

// armFlush schedules the delay-deadline flush for bytes left pending, so
// a reply never waits on the next inbox item for more than the configured
// delay even if the pipeline stalls.
func (w *connWriter) armFlush() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.buf) == 0 || w.armed {
		return
	}
	w.armed = true
	if w.timer == nil {
		w.timer = time.AfterFunc(w.delay, w.timedFlush)
	} else {
		w.timer.Reset(w.delay)
	}
}

func (w *connWriter) timedFlush() {
	w.mu.Lock()
	w.flushLocked()
	w.mu.Unlock()
}

// close flushes any pending bytes and stops the flush timer.
func (w *connWriter) close() {
	w.mu.Lock()
	w.flushLocked()
	if w.timer != nil {
		w.timer.Stop()
	}
	w.mu.Unlock()
}

func (w *connWriter) appendLocked(f *Frame) bool {
	b, err := AppendFrame(w.buf, f)
	if err != nil {
		return false
	}
	w.buf = b
	return true
}

func (w *connWriter) flushLocked() bool {
	w.armed = false
	if len(w.buf) == 0 {
		return true
	}
	w.c.SetWriteDeadline(time.Now().Add(w.timeout))
	_, err := w.c.Write(w.buf)
	w.buf = w.buf[:0]
	return err == nil
}
