package serve

import (
	"sync/atomic"
	"time"

	"semloc/internal/obs"
)

// TraceConfig enables serving-path latency instrumentation: per-frame
// stage histograms (decode, inbox queue-wait, learner decide, encode/
// write), sampled per-request spans in the Chrome-trace format `inspect
// spans` renders, and a threshold-gated slow-request log. A nil
// *TraceConfig in serve.Config is the disabled configuration and restores
// the uninstrumented hot path exactly: no clock reads, no allocations, no
// histogram updates (the package's nil-collector contract, DESIGN.md §11).
type TraceConfig struct {
	// Reg receives the serve_*_latency histograms (nil: the server's
	// Config.Reg).
	Reg *obs.Registry
	// Spans, when set, receives sampled per-request spans (category
	// "serve", phases decode/queue_wait/decide/write).
	Spans *obs.SpanRecorder
	// SampleEvery records one span per N fresh decisions (default 256;
	// only meaningful with Spans).
	SampleEvery int
	// SlowThreshold logs any request whose end-to-end latency (decode
	// through reply write) exceeds it, with the per-stage breakdown.
	// 0 disables the slow log.
	SlowThreshold time.Duration
	// Logf receives slow-request lines (nil: the server's Config.Logf).
	Logf func(format string, args ...any)
}

func (tc *TraceConfig) withDefaults(reg *obs.Registry, logf func(string, ...any)) TraceConfig {
	out := *tc
	if out.Reg == nil {
		out.Reg = reg
	}
	if out.SampleEvery <= 0 {
		out.SampleEvery = 256
	}
	if out.Logf == nil {
		out.Logf = logf
	}
	return out
}

// Latency histogram names. All are observed exactly once per fresh
// decision — never for replays, degraded fallbacks or busy bounces — so
// every serve_*_latency count equals serve_decisions_total, an invariant
// the loadgen smoke asserts. Values are seconds on the nanosecond-scale
// log-spaced grid of obs.DefaultLatencyBuckets.
const (
	MetricDecodeLatency    = "serve_decode_latency"
	MetricQueueWaitLatency = "serve_queue_wait_latency"
	MetricDecideLatency    = "serve_decide_latency"
	MetricWriteLatency     = "serve_write_latency"
	MetricFrameLatency     = "serve_frame_latency"
)

// MetricBatchSize is the histogram of fresh decisions per served frame:
// one observation of 1 per unbatched decision, one observation of F per
// batch frame that produced F fresh decisions. Its sum therefore equals
// serve_decisions_total (the batch-path count-match invariant), while its
// quantiles show how full client batches actually run.
const MetricBatchSize = "serve_batch_size"

// batchSizeBuckets grids 1..MaxBatch with enough resolution to tell
// "mostly full" from "mostly single".
var batchSizeBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}

// tracer is the serving-path instrumentation a Server carries when
// Config.Trace is set. A nil *tracer is the disabled path: the per-frame
// code asks `s.trace != nil` once per stage and otherwise touches nothing.
type tracer struct {
	decode    *obs.Histogram
	queueWait *obs.Histogram
	decide    *obs.Histogram
	write     *obs.Histogram
	frame     *obs.Histogram
	batchSize *obs.Histogram

	spans       *obs.SpanRecorder
	sampleEvery uint64
	reqs        atomic.Uint64

	slow time.Duration
	logf func(format string, args ...any)
}

func newTracer(tc *TraceConfig, reg *obs.Registry, logf func(string, ...any)) *tracer {
	if tc == nil {
		return nil
	}
	c := tc.withDefaults(reg, logf)
	r := c.Reg
	return &tracer{
		decode:      r.Histogram(MetricDecodeLatency, "seconds parsing one access frame off the wire", obs.DefaultLatencyBuckets),
		queueWait:   r.Histogram(MetricQueueWaitLatency, "seconds an access waited in the session inbox before the worker picked it up", obs.DefaultLatencyBuckets),
		decide:      r.Histogram(MetricDecideLatency, "seconds inside the learner per fresh decision", obs.DefaultLatencyBuckets),
		write:       r.Histogram(MetricWriteLatency, "seconds encoding and writing one decision reply", obs.DefaultLatencyBuckets),
		frame:       r.Histogram(MetricFrameLatency, "end-to-end seconds from frame decode to reply written", obs.DefaultLatencyBuckets),
		batchSize:   r.Histogram(MetricBatchSize, "fresh decisions per served frame (sum equals serve_decisions_total)", batchSizeBuckets),
		spans:       c.Spans,
		sampleEvery: uint64(c.SampleEvery),
		slow:        c.SlowThreshold,
		logf:        c.Logf,
	}
}

// sample decides at frame arrival whether this request's span is recorded,
// and if so returns the span's start offset (decode start) on the span
// recorder's epoch. Nil-safe: a nil tracer (or one without a span
// recorder) never reads a clock.
func (t *tracer) sample(decodeDur time.Duration) (bool, time.Duration) {
	if t == nil || t.spans == nil {
		return false, 0
	}
	if t.reqs.Add(1)%t.sampleEvery != 0 {
		return false, 0
	}
	return true, t.spans.Now() - decodeDur
}

// frameTiming carries one fresh decision's stage boundaries from the
// session worker to observe.
type frameTiming struct {
	decode    time.Duration // DecodeFrame cost (measured on the reader)
	queueWait time.Duration // arrival → worker dequeue (incl. serialization)
	decide    time.Duration // learner step
	write     time.Duration // encode + reply write
}

func (ft frameTiming) total() time.Duration {
	return ft.decode + ft.queueWait + ft.decide + ft.write
}

// observe records one fresh decision: histograms always, a span when the
// request was sampled at arrival, and a slow-request log line when the
// end-to-end latency crosses the threshold.
func (t *tracer) observe(sessionID string, seq uint64, ft frameTiming, sampled bool, spanStart time.Duration, inboxLen int) {
	sec := func(d time.Duration) float64 { return d.Seconds() }
	t.decode.Observe(sec(ft.decode))
	t.queueWait.Observe(sec(ft.queueWait))
	t.decide.Observe(sec(ft.decide))
	t.write.Observe(sec(ft.write))
	total := ft.total()
	t.frame.Observe(sec(total))
	t.batchSize.Observe(1)

	if sampled {
		at := spanStart
		phases := make([]obs.Phase, 0, 4)
		for _, p := range []struct {
			name string
			dur  time.Duration
		}{
			{obs.PhaseDecode, ft.decode},
			{obs.PhaseQueueWait, ft.queueWait},
			{obs.PhaseDecide, ft.decide},
			{obs.PhaseWrite, ft.write},
		} {
			phases = append(phases, obs.Phase{Name: p.name, Start: at, Dur: p.dur})
			at += p.dur
		}
		t.spans.Add(obs.Span{
			Cat:      obs.CatServe,
			Workload: sessionID,
			Point:    int(seq),
			Start:    spanStart,
			Dur:      total,
			Phases:   phases,
		})
	}

	if t.slow > 0 && total > t.slow {
		t.logf("serve: slow request session=%s seq=%d total=%s decode=%s queue_wait=%s decide=%s write=%s inbox_len=%d",
			sessionID, seq, total, ft.decode, ft.queueWait, ft.decide, ft.write, inboxLen)
	}
}

// observeBatch records one batch frame that produced fresh > 0 new
// decisions. Per-decision attribution keeps the count-match invariant:
// each stage duration is split evenly over the fresh decisions and
// observed fresh times, so serve_*_latency counts advance by fresh (==
// the serve_decisions_total increment) and the histogram sums still add
// up to real elapsed stage time. The batch gets one span and one slow-log
// check, sized by the whole frame.
func (t *tracer) observeBatch(sessionID string, firstSeq uint64, size, fresh int, ft frameTiming, sampled bool, spanStart time.Duration, inboxLen int) {
	t.batchSize.Observe(float64(fresh))
	n := time.Duration(fresh)
	decode := (ft.decode / n).Seconds()
	queueWait := (ft.queueWait / n).Seconds()
	decide := (ft.decide / n).Seconds()
	write := (ft.write / n).Seconds()
	perFrame := (ft.total() / n).Seconds()
	for i := 0; i < fresh; i++ {
		t.decode.Observe(decode)
		t.queueWait.Observe(queueWait)
		t.decide.Observe(decide)
		t.write.Observe(write)
		t.frame.Observe(perFrame)
	}
	total := ft.total()

	if sampled {
		at := spanStart
		phases := make([]obs.Phase, 0, 4)
		for _, p := range []struct {
			name string
			dur  time.Duration
		}{
			{obs.PhaseDecode, ft.decode},
			{obs.PhaseQueueWait, ft.queueWait},
			{obs.PhaseDecide, ft.decide},
			{obs.PhaseWrite, ft.write},
		} {
			phases = append(phases, obs.Phase{Name: p.name, Start: at, Dur: p.dur})
			at += p.dur
		}
		t.spans.Add(obs.Span{
			Cat:      obs.CatServe,
			Workload: sessionID,
			Point:    int(firstSeq),
			Start:    spanStart,
			Dur:      total,
			Phases:   phases,
		})
	}

	if t.slow > 0 && total > t.slow {
		t.logf("serve: slow batch session=%s first_seq=%d size=%d fresh=%d total=%s decode=%s queue_wait=%s decide=%s write=%s inbox_len=%d",
			sessionID, firstSeq, size, fresh, total, ft.decode, ft.queueWait, ft.decide, ft.write, inboxLen)
	}
}
