package serve

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// This file is the allocation-free frame codec for the steady-state
// serving path. AppendFrame renders a frame into a caller-owned buffer
// with output byte-identical to encoding/json (struct field order,
// omitempty, string quoting); decodeFrameFast parses the canonical shape
// AppendFrame emits back into a reused Frame. Both bail to encoding/json
// on anything unusual — escaped or non-ASCII strings, exotic number
// forms, unknown or duplicate keys, stats payloads — so wire behavior is
// defined by encoding/json and the fast paths are pure optimizations.
// FuzzDecodeFrame pins the equivalence.

// reset clears f for reuse, keeping slice capacities and parking any
// Hints allocation for the next decode.
func (f *Frame) reset() {
	spare := f.spareHints
	if f.Hints != nil {
		spare = f.Hints
	}
	pf, sh := f.Prefetch[:0], f.Shadow[:0]
	accs, res := f.Accesses[:0], f.Results[:0]
	*f = Frame{Prefetch: pf, Shadow: sh, Accesses: accs, Results: res, spareHints: spare}
}

// AppendFrame validates f and appends its newline-terminated wire line to
// dst, returning the extended buffer. The steady-state path appends into
// a reused buffer with zero allocations; output is byte-identical to
// EncodeFrame's original json.Marshal form.
func AppendFrame(dst []byte, f *Frame) ([]byte, error) {
	if err := f.Validate(); err != nil {
		return dst, err
	}
	mark := len(dst)
	out, ok := appendFrameFast(dst, f)
	if !ok {
		b, err := json.Marshal(f)
		if err != nil {
			return dst[:mark], fmt.Errorf("serve: encoding frame: %w", err)
		}
		out = append(dst[:mark], b...)
	}
	if len(out)-mark > MaxFrameBytes {
		n := len(out) - mark
		return dst[:mark], fmt.Errorf("serve: encoded frame of %d bytes exceeds limit %d", n, MaxFrameBytes)
	}
	return append(out, '\n'), nil
}

// appendFrameFast renders f in encoding/json's exact output form, or
// reports false if any string needs escaping (the caller then falls back
// to json.Marshal).
func appendFrameFast(dst []byte, f *Frame) ([]byte, bool) {
	// Introspection payloads (explain requests/replies, stats with a
	// learner-health snapshot) are rare and structurally deep: leave them
	// to encoding/json rather than mirror the nested schema here.
	if f.TopK != 0 || f.Explain != nil || (f.Stats != nil && f.Stats.Learner != nil) {
		return dst, false
	}
	var ok bool
	dst = append(dst, `{"type":`...)
	if dst, ok = appendString(dst, string(f.Type)); !ok {
		return dst, false
	}
	if f.Version != 0 {
		dst = append(dst, `,"v":`...)
		dst = strconv.AppendInt(dst, int64(f.Version), 10)
	}
	if f.Session != "" {
		dst = append(dst, `,"session":`...)
		if dst, ok = appendString(dst, f.Session); !ok {
			return dst, false
		}
	}
	if f.Batch != 0 {
		dst = append(dst, `,"batch":`...)
		dst = strconv.AppendInt(dst, int64(f.Batch), 10)
	}
	if f.Seq != 0 {
		dst = append(dst, `,"seq":`...)
		dst = strconv.AppendUint(dst, f.Seq, 10)
	}
	dst = appendAccessFields(dst, f.PC, f.Addr, f.Value, f.Reg, f.BranchHist, f.Store)
	if f.Hints != nil {
		dst = append(dst, `,"hints":`...)
		dst = appendHints(dst, f.Hints)
	}
	if len(f.Prefetch) > 0 {
		dst = append(dst, `,"prefetch":`...)
		dst = appendUints(dst, f.Prefetch)
	}
	if len(f.Shadow) > 0 {
		dst = append(dst, `,"shadow":`...)
		dst = appendUints(dst, f.Shadow)
	}
	if f.Degraded {
		dst = append(dst, `,"degraded":true`...)
	}
	if f.Replayed {
		dst = append(dst, `,"replayed":true`...)
	}
	if len(f.Accesses) > 0 {
		dst = append(dst, `,"accesses":[`...)
		for i := range f.Accesses {
			a := &f.Accesses[i]
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, `{"seq":`...)
			dst = strconv.AppendUint(dst, a.Seq, 10)
			dst = appendAccessFields(dst, a.PC, a.Addr, a.Value, a.Reg, a.BranchHist, a.Store)
			if a.Hints != nil {
				dst = append(dst, `,"hints":`...)
				dst = appendHints(dst, a.Hints)
			}
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	if len(f.Results) > 0 {
		dst = append(dst, `,"results":[`...)
		for i := range f.Results {
			r := &f.Results[i]
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, `{"seq":`...)
			dst = strconv.AppendUint(dst, r.Seq, 10)
			if len(r.Prefetch) > 0 {
				dst = append(dst, `,"prefetch":`...)
				dst = appendUints(dst, r.Prefetch)
			}
			if len(r.Shadow) > 0 {
				dst = append(dst, `,"shadow":`...)
				dst = appendUints(dst, r.Shadow)
			}
			if r.Degraded {
				dst = append(dst, `,"degraded":true`...)
			}
			if r.Replayed {
				dst = append(dst, `,"replayed":true`...)
			}
			if r.Code != "" {
				dst = append(dst, `,"code":`...)
				if dst, ok = appendString(dst, r.Code); !ok {
					return dst, false
				}
			}
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	if f.LastSeq != 0 {
		dst = append(dst, `,"last_seq":`...)
		dst = strconv.AppendUint(dst, f.LastSeq, 10)
	}
	if f.Resumed {
		dst = append(dst, `,"resumed":true`...)
	}
	if f.RetryMs != 0 {
		dst = append(dst, `,"retry_ms":`...)
		dst = strconv.AppendInt(dst, int64(f.RetryMs), 10)
	}
	if f.Stats != nil {
		s := f.Stats
		dst = append(dst, `,"stats":{"id":`...)
		if dst, ok = appendString(dst, s.ID); !ok {
			return dst, false
		}
		dst = append(dst, `,"decisions":`...)
		dst = strconv.AppendUint(dst, s.Decisions, 10)
		dst = append(dst, `,"degraded":`...)
		dst = strconv.AppendUint(dst, s.Degraded, 10)
		dst = append(dst, `,"replayed":`...)
		dst = strconv.AppendUint(dst, s.Replayed, 10)
		dst = append(dst, `,"inbox_high_water":`...)
		dst = strconv.AppendInt(dst, int64(s.InboxHighWater), 10)
		dst = append(dst, `,"last_seq":`...)
		dst = strconv.AppendUint(dst, s.LastSeq, 10)
		dst = append(dst, `,"attached":`...)
		dst = strconv.AppendBool(dst, s.Attached)
		dst = append(dst, '}')
	}
	if f.Code != "" {
		dst = append(dst, `,"code":`...)
		if dst, ok = appendString(dst, f.Code); !ok {
			return dst, false
		}
	}
	if f.Msg != "" {
		dst = append(dst, `,"msg":`...)
		if dst, ok = appendString(dst, f.Msg); !ok {
			return dst, false
		}
	}
	return append(dst, '}'), true
}

// appendAccessFields emits the shared access payload fields (all
// omitempty) for both Frame and BatchAccess.
func appendAccessFields(dst []byte, pc, addr, value, reg uint64, bh uint16, store bool) []byte {
	if pc != 0 {
		dst = append(dst, `,"pc":`...)
		dst = strconv.AppendUint(dst, pc, 10)
	}
	if addr != 0 {
		dst = append(dst, `,"addr":`...)
		dst = strconv.AppendUint(dst, addr, 10)
	}
	if value != 0 {
		dst = append(dst, `,"value":`...)
		dst = strconv.AppendUint(dst, value, 10)
	}
	if reg != 0 {
		dst = append(dst, `,"reg":`...)
		dst = strconv.AppendUint(dst, reg, 10)
	}
	if bh != 0 {
		dst = append(dst, `,"branch_hist":`...)
		dst = strconv.AppendUint(dst, uint64(bh), 10)
	}
	if store {
		dst = append(dst, `,"store":true`...)
	}
	return dst
}

// appendHints emits a Hints object (its fields carry no omitempty).
func appendHints(dst []byte, h *Hints) []byte {
	dst = append(dst, `{"valid":`...)
	dst = strconv.AppendBool(dst, h.Valid)
	dst = append(dst, `,"type_id":`...)
	dst = strconv.AppendUint(dst, uint64(h.TypeID), 10)
	dst = append(dst, `,"link_offset":`...)
	dst = strconv.AppendUint(dst, uint64(h.LinkOffset), 10)
	dst = append(dst, `,"ref_form":`...)
	dst = strconv.AppendUint(dst, uint64(h.RefForm), 10)
	return append(dst, '}')
}

// appendUints emits a JSON array of unsigned integers.
func appendUints(dst []byte, vs []uint64) []byte {
	dst = append(dst, '[')
	for i, v := range vs {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = strconv.AppendUint(dst, v, 10)
	}
	return append(dst, ']')
}

// appendString quotes s if it needs no escaping under encoding/json's
// rules (printable ASCII minus the HTML-escaped set); otherwise it
// reports false and the whole frame falls back to json.Marshal.
func appendString(dst []byte, s string) ([]byte, bool) {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x80 || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return dst, false
		}
	}
	dst = append(dst, '"')
	dst = append(dst, s...)
	return append(dst, '"'), true
}

// Key bitmask indices for duplicate-key detection; a repeated key at any
// object level bails to encoding/json (which has merge semantics the fast
// path does not replicate).
const (
	keyType = 1 << iota
	keyV
	keySession
	keyBatch
	keySeq
	keyPC
	keyAddr
	keyValue
	keyReg
	keyBranchHist
	keyStore
	keyHints
	keyPrefetch
	keyShadow
	keyDegraded
	keyReplayed
	keyAccesses
	keyResults
	keyLastSeq
	keyResumed
	keyRetryMs
	keyCode
	keyMsg
	keyValid
	keyTypeID
	keyLinkOffset
	keyRefForm
)

type frameParser struct {
	b []byte
	i int
}

func (p *frameParser) skipWS() {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

func (p *frameParser) expect(c byte) bool {
	if p.i < len(p.b) && p.b[p.i] == c {
		p.i++
		return true
	}
	return false
}

func (p *frameParser) peek() byte {
	if p.i < len(p.b) {
		return p.b[p.i]
	}
	return 0
}

// parseString returns the raw bytes of a quoted string containing only
// unescaped printable ASCII; anything else fails to the fallback.
func (p *frameParser) parseString() ([]byte, bool) {
	if !p.expect('"') {
		return nil, false
	}
	start := p.i
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c == '"' {
			s := p.b[start:p.i]
			p.i++
			return s, true
		}
		if c < 0x20 || c >= 0x80 || c == '\\' {
			return nil, false
		}
		p.i++
	}
	return nil, false
}

// parseUint parses a plain non-negative integer literal (no sign, no
// leading zeros, no fraction/exponent, no overflow).
func (p *frameParser) parseUint() (uint64, bool) {
	start := p.i
	var v uint64
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c < '0' || c > '9' {
			break
		}
		d := uint64(c - '0')
		if v > (1<<64-1)/10 || (v == (1<<64-1)/10 && d > (1<<64-1)%10) {
			return 0, false
		}
		v = v*10 + d
		p.i++
	}
	n := p.i - start
	if n == 0 || (n > 1 && p.b[start] == '0') {
		return 0, false
	}
	return v, true
}

func (p *frameParser) parseUint16() (uint16, bool) {
	v, ok := p.parseUint()
	if !ok || v > 1<<16-1 {
		return 0, false
	}
	return uint16(v), true
}

func (p *frameParser) parseBool() (bool, bool) {
	if len(p.b)-p.i >= 4 && string(p.b[p.i:p.i+4]) == "true" {
		p.i += 4
		return true, true
	}
	if len(p.b)-p.i >= 5 && string(p.b[p.i:p.i+5]) == "false" {
		p.i += 5
		return false, true
	}
	return false, false
}

// parseUints parses a JSON array of plain integers into dst (reused).
func (p *frameParser) parseUints(dst []uint64) ([]uint64, bool) {
	if !p.expect('[') {
		return dst, false
	}
	p.skipWS()
	if p.expect(']') {
		return dst, true
	}
	for {
		v, ok := p.parseUint()
		if !ok {
			return dst, false
		}
		dst = append(dst, v)
		p.skipWS()
		if p.expect(']') {
			return dst, true
		}
		if !p.expect(',') {
			return dst, false
		}
		p.skipWS()
	}
}

// parseHints parses a Hints object into h (zeroed first).
func (p *frameParser) parseHints(h *Hints) bool {
	*h = Hints{}
	if !p.expect('{') {
		return false
	}
	p.skipWS()
	if p.expect('}') {
		return true
	}
	var seen uint32
	for {
		key, ok := p.parseString()
		if !ok {
			return false
		}
		p.skipWS()
		if !p.expect(':') {
			return false
		}
		p.skipWS()
		var bit uint32
		switch string(key) {
		case "valid":
			bit = keyValid
			if h.Valid, ok = p.parseBool(); !ok {
				return false
			}
		case "type_id":
			bit = keyTypeID
			if h.TypeID, ok = p.parseUint16(); !ok {
				return false
			}
		case "link_offset":
			bit = keyLinkOffset
			if h.LinkOffset, ok = p.parseUint16(); !ok {
				return false
			}
		case "ref_form":
			bit = keyRefForm
			v, ok := p.parseUint()
			if !ok || v > 1<<8-1 {
				return false
			}
			h.RefForm = uint8(v)
		default:
			return false
		}
		if seen&bit != 0 {
			return false
		}
		seen |= bit
		p.skipWS()
		if p.expect('}') {
			return true
		}
		if !p.expect(',') {
			return false
		}
		p.skipWS()
	}
}

// growAccess extends s by one zeroed element, recycling capacity and any
// parked Hints allocation.
func growAccess(s []BatchAccess) ([]BatchAccess, *BatchAccess) {
	if len(s) < cap(s) {
		s = s[:len(s)+1]
		a := &s[len(s)-1]
		spare := a.spareHints
		if a.Hints != nil {
			spare = a.Hints
		}
		*a = BatchAccess{spareHints: spare}
		return s, a
	}
	s = append(s, BatchAccess{})
	return s, &s[len(s)-1]
}

// growResult extends s by one zeroed element, recycling slice capacity.
func growResult(s []BatchDecision) ([]BatchDecision, *BatchDecision) {
	if len(s) < cap(s) {
		s = s[:len(s)+1]
		r := &s[len(s)-1]
		*r = BatchDecision{Prefetch: r.Prefetch[:0], Shadow: r.Shadow[:0]}
		return s, r
	}
	s = append(s, BatchDecision{})
	return s, &s[len(s)-1]
}

// parseAccess parses one BatchAccess object into a (already zeroed by
// growAccess).
func (p *frameParser) parseAccess(a *BatchAccess) bool {
	if !p.expect('{') {
		return false
	}
	p.skipWS()
	if p.expect('}') {
		return true
	}
	var seen uint32
	for {
		key, ok := p.parseString()
		if !ok {
			return false
		}
		p.skipWS()
		if !p.expect(':') {
			return false
		}
		p.skipWS()
		var bit uint32
		switch string(key) {
		case "seq":
			bit = keySeq
			if a.Seq, ok = p.parseUint(); !ok {
				return false
			}
		case "pc":
			bit = keyPC
			if a.PC, ok = p.parseUint(); !ok {
				return false
			}
		case "addr":
			bit = keyAddr
			if a.Addr, ok = p.parseUint(); !ok {
				return false
			}
		case "value":
			bit = keyValue
			if a.Value, ok = p.parseUint(); !ok {
				return false
			}
		case "reg":
			bit = keyReg
			if a.Reg, ok = p.parseUint(); !ok {
				return false
			}
		case "branch_hist":
			bit = keyBranchHist
			if a.BranchHist, ok = p.parseUint16(); !ok {
				return false
			}
		case "store":
			bit = keyStore
			if a.Store, ok = p.parseBool(); !ok {
				return false
			}
		case "hints":
			bit = keyHints
			if a.Hints == nil {
				if a.spareHints != nil {
					a.Hints, a.spareHints = a.spareHints, nil
				} else {
					a.Hints = new(Hints)
				}
			}
			if !p.parseHints(a.Hints) {
				return false
			}
		default:
			return false
		}
		if seen&bit != 0 {
			return false
		}
		seen |= bit
		p.skipWS()
		if p.expect('}') {
			return true
		}
		if !p.expect(',') {
			return false
		}
		p.skipWS()
	}
}

// parseResult parses one BatchDecision object into r (already zeroed by
// growResult).
func (p *frameParser) parseResult(r *BatchDecision) bool {
	if !p.expect('{') {
		return false
	}
	p.skipWS()
	if p.expect('}') {
		return true
	}
	var seen uint32
	for {
		key, ok := p.parseString()
		if !ok {
			return false
		}
		p.skipWS()
		if !p.expect(':') {
			return false
		}
		p.skipWS()
		var bit uint32
		switch string(key) {
		case "seq":
			bit = keySeq
			if r.Seq, ok = p.parseUint(); !ok {
				return false
			}
		case "prefetch":
			bit = keyPrefetch
			if r.Prefetch, ok = p.parseUints(r.Prefetch); !ok {
				return false
			}
		case "shadow":
			bit = keyShadow
			if r.Shadow, ok = p.parseUints(r.Shadow); !ok {
				return false
			}
		case "degraded":
			bit = keyDegraded
			if r.Degraded, ok = p.parseBool(); !ok {
				return false
			}
		case "replayed":
			bit = keyReplayed
			if r.Replayed, ok = p.parseBool(); !ok {
				return false
			}
		case "code":
			bit = keyCode
			s, ok := p.parseString()
			if !ok {
				return false
			}
			r.Code = internCode(s)
		default:
			return false
		}
		if seen&bit != 0 {
			return false
		}
		seen |= bit
		p.skipWS()
		if p.expect('}') {
			return true
		}
		if !p.expect(',') {
			return false
		}
		p.skipWS()
	}
}

// internFrameType maps a known frame-type literal to its constant
// (avoiding a string allocation); unknown types fail to the fallback,
// where Validate rejects them with the same error either way.
func internFrameType(b []byte) (FrameType, bool) {
	switch string(b) {
	case string(FrameHello):
		return FrameHello, true
	case string(FrameWelcome):
		return FrameWelcome, true
	case string(FrameAccess):
		return FrameAccess, true
	case string(FrameDecision):
		return FrameDecision, true
	case string(FrameBatch):
		return FrameBatch, true
	case string(FrameBusy):
		return FrameBusy, true
	case string(FrameError):
		return FrameError, true
	case string(FramePing):
		return FramePing, true
	case string(FramePong):
		return FramePong, true
	case string(FrameStats):
		return FrameStats, true
	case string(FrameExplain):
		return FrameExplain, true
	case string(FrameBye):
		return FrameBye, true
	}
	return "", false
}

// internCode maps known error codes to their constants to avoid
// allocating on the steady-state batch path.
func internCode(b []byte) string {
	switch string(b) {
	case CodeBadFrame:
		return CodeBadFrame
	case CodeProtocol:
		return CodeProtocol
	case CodeStaleSeq:
		return CodeStaleSeq
	case CodeShuttingDown:
		return CodeShuttingDown
	case CodeSessionClosed:
		return CodeSessionClosed
	}
	return string(b)
}

// decodeFrameFast parses the canonical frame shape into f (reset first),
// reporting false on anything it cannot handle exactly as encoding/json
// would; the caller then reparses with encoding/json from a zero Frame.
func decodeFrameFast(line []byte, f *Frame) bool {
	f.reset()
	p := frameParser{b: line}
	p.skipWS()
	if !p.expect('{') {
		return false
	}
	p.skipWS()
	if p.expect('}') {
		p.skipWS()
		return p.i == len(p.b)
	}
	var seen uint32
	for {
		key, ok := p.parseString()
		if !ok {
			return false
		}
		p.skipWS()
		if !p.expect(':') {
			return false
		}
		p.skipWS()
		var bit uint32
		switch string(key) {
		case "type":
			bit = keyType
			s, ok := p.parseString()
			if !ok {
				return false
			}
			if f.Type, ok = internFrameType(s); !ok {
				return false
			}
		case "v":
			bit = keyV
			v, ok := p.parseUint()
			if !ok || v > 1<<31-1 {
				return false
			}
			f.Version = int(v)
		case "session":
			bit = keySession
			s, ok := p.parseString()
			if !ok {
				return false
			}
			f.Session = string(s)
		case "batch":
			bit = keyBatch
			v, ok := p.parseUint()
			if !ok || v > 1<<31-1 {
				return false
			}
			f.Batch = int(v)
		case "seq":
			bit = keySeq
			if f.Seq, ok = p.parseUint(); !ok {
				return false
			}
		case "pc":
			bit = keyPC
			if f.PC, ok = p.parseUint(); !ok {
				return false
			}
		case "addr":
			bit = keyAddr
			if f.Addr, ok = p.parseUint(); !ok {
				return false
			}
		case "value":
			bit = keyValue
			if f.Value, ok = p.parseUint(); !ok {
				return false
			}
		case "reg":
			bit = keyReg
			if f.Reg, ok = p.parseUint(); !ok {
				return false
			}
		case "branch_hist":
			bit = keyBranchHist
			if f.BranchHist, ok = p.parseUint16(); !ok {
				return false
			}
		case "store":
			bit = keyStore
			if f.Store, ok = p.parseBool(); !ok {
				return false
			}
		case "hints":
			bit = keyHints
			if f.Hints == nil {
				if f.spareHints != nil {
					f.Hints, f.spareHints = f.spareHints, nil
				} else {
					f.Hints = new(Hints)
				}
			}
			if !p.parseHints(f.Hints) {
				return false
			}
		case "prefetch":
			bit = keyPrefetch
			if f.Prefetch, ok = p.parseUints(f.Prefetch); !ok {
				return false
			}
		case "shadow":
			bit = keyShadow
			if f.Shadow, ok = p.parseUints(f.Shadow); !ok {
				return false
			}
		case "degraded":
			bit = keyDegraded
			if f.Degraded, ok = p.parseBool(); !ok {
				return false
			}
		case "replayed":
			bit = keyReplayed
			if f.Replayed, ok = p.parseBool(); !ok {
				return false
			}
		case "accesses":
			bit = keyAccesses
			if !p.expect('[') {
				return false
			}
			p.skipWS()
			if p.expect(']') {
				break
			}
			for {
				var a *BatchAccess
				f.Accesses, a = growAccess(f.Accesses)
				if !p.parseAccess(a) {
					return false
				}
				p.skipWS()
				if p.expect(']') {
					break
				}
				if !p.expect(',') {
					return false
				}
				p.skipWS()
				if len(f.Accesses) == MaxBatch {
					// More items than any valid batch: let the fallback
					// parse it and Validate reject it, without the fast
					// path growing an unbounded slice.
					return false
				}
			}
		case "results":
			bit = keyResults
			if !p.expect('[') {
				return false
			}
			p.skipWS()
			if p.expect(']') {
				break
			}
			for {
				var r *BatchDecision
				f.Results, r = growResult(f.Results)
				if !p.parseResult(r) {
					return false
				}
				p.skipWS()
				if p.expect(']') {
					break
				}
				if !p.expect(',') {
					return false
				}
				p.skipWS()
				if len(f.Results) == MaxBatch {
					return false
				}
			}
		case "last_seq":
			bit = keyLastSeq
			if f.LastSeq, ok = p.parseUint(); !ok {
				return false
			}
		case "resumed":
			bit = keyResumed
			if f.Resumed, ok = p.parseBool(); !ok {
				return false
			}
		case "retry_ms":
			bit = keyRetryMs
			v, ok := p.parseUint()
			if !ok || v > 1<<31-1 {
				return false
			}
			f.RetryMs = int(v)
		case "code":
			bit = keyCode
			s, ok := p.parseString()
			if !ok {
				return false
			}
			f.Code = internCode(s)
		case "msg":
			bit = keyMsg
			s, ok := p.parseString()
			if !ok {
				return false
			}
			f.Msg = string(s)
		default:
			// Unknown keys (including "stats") go to the fallback.
			return false
		}
		if seen&bit != 0 {
			return false
		}
		seen |= bit
		p.skipWS()
		if p.expect('}') {
			p.skipWS()
			return p.i == len(p.b)
		}
		if !p.expect(',') {
			return false
		}
		p.skipWS()
	}
}
