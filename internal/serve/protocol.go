// Package serve is the online serving counterpart of the offline
// simulator: a long-running daemon (cmd/prefetchd) that accepts streaming
// access records from many concurrent client sessions over the network
// and replies with prefetch decisions, with robustness as the headline —
// session lifecycle with idle expiry, bounded inboxes with explicit
// backpressure and a degraded fallback policy, learner-state
// snapshot/restore for warm starts, and per-connection failure
// containment. See DESIGN.md §14 "Serving and failure model".
package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"semloc/internal/core"
)

// ProtocolVersion is negotiated in the hello/welcome handshake.
const ProtocolVersion = 1

// MaxFrameBytes bounds one wire frame. The decoder rejects longer frames
// before parsing, so a hostile or corrupted peer cannot balloon memory.
const MaxFrameBytes = 1 << 16

// FrameType discriminates wire frames.
type FrameType string

// Wire frame types. The protocol is newline-delimited JSON (one object
// per line): trivially debuggable with netcat, trivially fuzzable, and
// framed so a chaos proxy can drop/duplicate/delay whole frames.
const (
	// FrameHello opens a connection: client → server, naming the session
	// to create or re-attach.
	FrameHello FrameType = "hello"
	// FrameWelcome acknowledges hello: server → client, carrying the
	// session's last applied sequence number so the client can dedupe.
	FrameWelcome FrameType = "welcome"
	// FrameAccess streams one demand access: client → server.
	FrameAccess FrameType = "access"
	// FrameDecision answers one access: server → client.
	FrameDecision FrameType = "decision"
	// FrameBusy is the explicit backpressure reply: the daemon's global
	// in-flight budget is exhausted; retry after RetryMs.
	FrameBusy FrameType = "busy"
	// FrameError reports a protocol or session error.
	FrameError FrameType = "error"
	// FramePing / FramePong keep an idle connection's read deadline fresh.
	FramePing FrameType = "ping"
	FramePong FrameType = "pong"
	// FrameStats requests (client → server, empty) or carries (server →
	// client, Stats set) the attached session's serving statistics.
	FrameStats FrameType = "stats"
	// FrameBye detaches cleanly: client → server.
	FrameBye FrameType = "bye"
	// FrameBatch carries up to MaxBatch accesses (client → server,
	// Accesses set) or their decisions (server → client, Results set) in
	// one frame, amortizing the per-frame JSON and syscall cost. Batching
	// is negotiated at hello (Frame.Batch); connections that did not
	// negotiate it never see this type.
	FrameBatch FrameType = "batch"
	// FrameExplain requests (client → server, optional TopK) or carries
	// (server → client, Explain set) a live learner-introspection report
	// for the attached session: the learner-health snapshot plus the
	// top-K hottest contexts with their candidate score tables.
	FrameExplain FrameType = "explain"
)

// MaxBatch bounds the number of accesses one batch frame may carry. The
// seqs inside a batch must be contiguous and ascending, so a batch is
// fully described by its first seq and length — this is what lets the
// replay ring store one span per batch and split it on partial replay.
const MaxBatch = 64

// Error codes carried by FrameError.
const (
	// CodeBadFrame: the frame failed to parse or validate.
	CodeBadFrame = "bad-frame"
	// CodeProtocol: a valid frame arrived in the wrong state (e.g. access
	// before hello).
	CodeProtocol = "protocol"
	// CodeStaleSeq: the access seq was already applied and its decision
	// has left the replay cache; the client is too far behind.
	CodeStaleSeq = "stale-seq"
	// CodeShuttingDown: the daemon is draining; reconnect later.
	CodeShuttingDown = "shutting-down"
	// CodeSessionClosed: the session expired or was closed mid-request.
	CodeSessionClosed = "session-closed"
)

// SessionStats is one session's serving statistics, carried by a stats
// frame and by the daemon's /debug/serve HTTP endpoint: how many fresh
// decisions the learner produced, how much load was shed (degraded
// fallbacks when the inbox filled), how many duplicates were replayed, and
// the inbox high-water mark (the deepest the bounded inbox ever got —
// InboxHighWater at the configured depth means the session brushed its
// degraded threshold).
type SessionStats struct {
	ID             string `json:"id"`
	Decisions      uint64 `json:"decisions"`
	Degraded       uint64 `json:"degraded"`
	Replayed       uint64 `json:"replayed"`
	InboxHighWater int    `json:"inbox_high_water"`
	LastSeq        uint64 `json:"last_seq"`
	Attached       bool   `json:"attached"`
	// Learner is the session learner's health snapshot at stats time
	// (nil when the session was already closed). Stats frames carrying it
	// take the encoding/json path — stats are rare, decisions are not.
	Learner *core.LearnerHealth `json:"learner,omitempty"`
}

// MaxExplainContexts bounds an explain request's TopK so the reply stays
// well under MaxFrameBytes whatever the learner's CST width.
const MaxExplainContexts = 64

// DefaultExplainContexts is the context count served when an explain
// request leaves TopK zero.
const DefaultExplainContexts = 8

// ExplainReport is the explain frame's payload: a live view of one
// session's learner — the health snapshot plus the hottest contexts
// (most-trialed first) with their candidate score tables.
type ExplainReport struct {
	Session  string                `json:"session"`
	Health   core.LearnerHealth    `json:"health"`
	Contexts []core.ContextExplain `json:"contexts,omitempty"`
}

// Hints mirrors trace.SWHints on the wire.
type Hints struct {
	Valid      bool   `json:"valid"`
	TypeID     uint16 `json:"type_id"`
	LinkOffset uint16 `json:"link_offset"`
	RefForm    uint8  `json:"ref_form"`
}

// BatchAccess is one access inside a batch frame. It mirrors the access
// payload of Frame, with the seq carried per item; Validate requires the
// items' seqs to be nonzero, ascending, and contiguous.
type BatchAccess struct {
	Seq        uint64 `json:"seq"`
	PC         uint64 `json:"pc,omitempty"`
	Addr       uint64 `json:"addr,omitempty"`
	Value      uint64 `json:"value,omitempty"`
	Reg        uint64 `json:"reg,omitempty"`
	BranchHist uint16 `json:"branch_hist,omitempty"`
	Store      bool   `json:"store,omitempty"`
	Hints      *Hints `json:"hints,omitempty"`

	// spareHints parks a previously allocated Hints value across
	// Frame.reset so the in-place decoder can reuse it (invisible to
	// encoding/json: unexported).
	spareHints *Hints
}

// BatchDecision answers one BatchAccess. Code, when set, marks a per-item
// serving error (CodeStaleSeq: the seq was already applied and its
// decision has left the replay ring); the rest of the batch is still
// answered.
type BatchDecision struct {
	Seq      uint64   `json:"seq"`
	Prefetch []uint64 `json:"prefetch,omitempty"`
	Shadow   []uint64 `json:"shadow,omitempty"`
	Degraded bool     `json:"degraded,omitempty"`
	Replayed bool     `json:"replayed,omitempty"`
	Code     string   `json:"code,omitempty"`
}

// Frame is one wire message. A single flat struct (rather than one type
// per frame kind) keeps the codec allocation-light and the fuzz target
// simple; Validate enforces per-type required fields.
type Frame struct {
	Type FrameType `json:"type"`

	// Hello.
	Version int    `json:"v,omitempty"`
	Session string `json:"session,omitempty"`
	// Batch negotiates batching: on hello it is the largest batch the
	// client wants to send (0: frame-at-a-time); on welcome it is the
	// granted size, min(client ask, server cap, MaxBatch). Old peers
	// ignore the field and keep speaking frame-for-frame.
	Batch int `json:"batch,omitempty"`

	// Access / decision correlation. Seq is per-session, strictly
	// increasing; the first access of a session is seq 1.
	Seq uint64 `json:"seq,omitempty"`

	// Access payload (mirrors prefetch.Access).
	PC         uint64 `json:"pc,omitempty"`
	Addr       uint64 `json:"addr,omitempty"`
	Value      uint64 `json:"value,omitempty"`
	Reg        uint64 `json:"reg,omitempty"`
	BranchHist uint16 `json:"branch_hist,omitempty"`
	Store      bool   `json:"store,omitempty"`
	Hints      *Hints `json:"hints,omitempty"`

	// Decision payload: absolute byte addresses to prefetch, and the
	// shadow (train-only) predictions for observability.
	Prefetch []uint64 `json:"prefetch,omitempty"`
	Shadow   []uint64 `json:"shadow,omitempty"`
	// Degraded marks a fallback decision produced without the learner
	// (backpressure shed); Replayed marks a decision served from the
	// replay cache after a duplicate seq.
	Degraded bool `json:"degraded,omitempty"`
	Replayed bool `json:"replayed,omitempty"`

	// Batch payload: exactly one of Accesses (client → server) or
	// Results (server → client) on a batch frame.
	Accesses []BatchAccess   `json:"accesses,omitempty"`
	Results  []BatchDecision `json:"results,omitempty"`

	// Welcome payload.
	LastSeq uint64 `json:"last_seq,omitempty"`
	// Resumed reports whether the session existed before this attach
	// (false: created fresh, possibly after an idle expiry).
	Resumed bool `json:"resumed,omitempty"`

	// Busy payload.
	RetryMs int `json:"retry_ms,omitempty"`

	// Stats payload (server → client stats frames only).
	Stats *SessionStats `json:"stats,omitempty"`

	// Explain payload: TopK on the request bounds how many hottest
	// contexts the reply carries (0: DefaultExplainContexts); Explain on
	// the reply is the session's learner-introspection report.
	TopK    int            `json:"top_k,omitempty"`
	Explain *ExplainReport `json:"explain,omitempty"`

	// Error payload.
	Code string `json:"code,omitempty"`
	Msg  string `json:"msg,omitempty"`

	// spareHints parks a previously allocated Hints value across reset so
	// the in-place decoder can reuse it (unexported: encoding/json and
	// AppendFrame both skip it).
	spareHints *Hints
}

// Validate enforces the per-type frame contract.
func (f *Frame) Validate() error {
	switch f.Type {
	case FrameHello:
		if f.Version != ProtocolVersion {
			return fmt.Errorf("serve: hello version %d, want %d", f.Version, ProtocolVersion)
		}
		if f.Session == "" || len(f.Session) > 128 {
			return fmt.Errorf("serve: hello session id empty or too long")
		}
		if f.Batch < 0 {
			return fmt.Errorf("serve: hello with negative batch %d", f.Batch)
		}
	case FrameAccess:
		if f.Seq == 0 {
			return fmt.Errorf("serve: access frame without seq")
		}
	case FrameBatch:
		na, nr := len(f.Accesses), len(f.Results)
		switch {
		case na == 0 && nr == 0:
			return fmt.Errorf("serve: empty batch frame")
		case na > 0 && nr > 0:
			return fmt.Errorf("serve: batch frame with both accesses and results")
		case na > MaxBatch || nr > MaxBatch:
			return fmt.Errorf("serve: batch of %d exceeds limit %d", na+nr, MaxBatch)
		}
		for i := range f.Accesses {
			if f.Accesses[i].Seq == 0 {
				return fmt.Errorf("serve: batch access %d without seq", i)
			}
			if i > 0 && f.Accesses[i].Seq != f.Accesses[0].Seq+uint64(i) {
				return fmt.Errorf("serve: batch seqs not contiguous at index %d", i)
			}
		}
		for i := range f.Results {
			if f.Results[i].Seq == 0 {
				return fmt.Errorf("serve: batch result %d without seq", i)
			}
			if i > 0 && f.Results[i].Seq != f.Results[0].Seq+uint64(i) {
				return fmt.Errorf("serve: batch result seqs not contiguous at index %d", i)
			}
		}
	case FrameWelcome, FrameDecision, FrameBusy, FramePing, FramePong, FrameBye:
	case FrameStats:
		// Valid both ways: the request carries no payload, the reply
		// carries Stats.
	case FrameExplain:
		// Valid both ways: the request carries an optional TopK bound, the
		// reply carries Explain.
		if f.TopK < 0 || f.TopK > MaxExplainContexts {
			return fmt.Errorf("serve: explain top_k %d out of range [0,%d]", f.TopK, MaxExplainContexts)
		}
	case FrameError:
		if f.Code == "" {
			return fmt.Errorf("serve: error frame without code")
		}
	default:
		return fmt.Errorf("serve: unknown frame type %q", f.Type)
	}
	return nil
}

// DecodeFrame parses and validates one frame from a single line (without
// the trailing newline). It is the fuzz target FuzzDecodeFrame exercises:
// it must never panic and never accept a frame Validate rejects.
func DecodeFrame(line []byte) (*Frame, error) {
	var f Frame
	if err := DecodeFrameInto(line, &f); err != nil {
		return nil, err
	}
	return &f, nil
}

// DecodeFrameInto parses and validates one frame from a single line into
// f, reusing f's slice capacities and Hints allocations: canonical frames
// (the exact shape AppendFrame emits) decode with zero allocations. Any
// non-canonical but legal JSON falls back to encoding/json with identical
// accept/reject behavior — the fuzz target checks the two paths agree.
func DecodeFrameInto(line []byte, f *Frame) error {
	if len(line) > MaxFrameBytes {
		f.reset()
		return fmt.Errorf("serve: frame of %d bytes exceeds limit %d", len(line), MaxFrameBytes)
	}
	if !decodeFrameFast(line, f) {
		// The fast path bailed (escape sequences, unusual number forms,
		// unknown keys, stats payloads, …): reparse from scratch. A clean
		// struct keeps encoding/json's element reuse from leaking stale
		// fields into sparsely populated batch items.
		*f = Frame{}
		if err := json.Unmarshal(line, f); err != nil {
			return fmt.Errorf("serve: bad frame: %w", err)
		}
	}
	return f.Validate()
}

// EncodeFrame renders f as one newline-terminated wire line.
func EncodeFrame(f *Frame) ([]byte, error) {
	return AppendFrame(nil, f)
}

// FrameReader reads newline-delimited frames with a hard per-frame size
// bound.
type FrameReader struct {
	r *bufio.Reader
	// line backs readLine when a frame straddles the buffered reader's
	// window; decoded frames never retain it.
	line []byte
}

// frameReaderBuf sizes the buffered reader so a full MaxBatch access
// frame normally fits in one ReadSlice window (zero-copy readLine).
const frameReaderBuf = 1 << 14

// NewFrameReader wraps r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReaderSize(r, frameReaderBuf)}
}

// Read returns the next frame. Oversized lines fail without being
// buffered whole; io.EOF surfaces unchanged so callers can distinguish a
// clean close.
func (fr *FrameReader) Read() (*Frame, error) {
	line, err := fr.readLine()
	if err != nil {
		return nil, err
	}
	return DecodeFrame(line)
}

// ReadInto decodes the next frame into f, reusing its buffers (see
// DecodeFrameInto). The steady-state serving path uses it to keep decode
// allocation-free.
func (fr *FrameReader) ReadInto(f *Frame) error {
	line, err := fr.readLine()
	if err != nil {
		return err
	}
	return DecodeFrameInto(line, f)
}

// ReadTimed is Read with the parse cost split out: it returns how long
// DecodeFrame took, excluding the wait for bytes to arrive on the wire.
// The instrumented serving path uses it so the decode histogram measures
// JSON parsing, not client think-time.
func (fr *FrameReader) ReadTimed() (*Frame, time.Duration, error) {
	line, err := fr.readLine()
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	f, err := DecodeFrame(line)
	return f, time.Since(start), err
}

// ReadTimedInto is ReadInto with the parse cost split out, as ReadTimed.
func (fr *FrameReader) ReadTimedInto(f *Frame) (time.Duration, error) {
	line, err := fr.readLine()
	if err != nil {
		return 0, err
	}
	start := time.Now()
	err = DecodeFrameInto(line, f)
	return time.Since(start), err
}

// readLine returns one newline-terminated line (without the newline)
// under the frame size bound. The returned slice aliases either the
// bufio window or fr.line and is only valid until the next call.
func (fr *FrameReader) readLine() ([]byte, error) {
	chunk, err := fr.r.ReadSlice('\n')
	if err == nil {
		// Whole line in one window: hand it out without copying.
		if len(chunk) > MaxFrameBytes+1 {
			return nil, fmt.Errorf("serve: frame exceeds %d bytes", MaxFrameBytes)
		}
		return chunk[:len(chunk)-1], nil
	}
	fr.line = fr.line[:0]
	for {
		if len(chunk) > 0 {
			fr.line = append(fr.line, chunk...)
			if len(fr.line) > MaxFrameBytes+1 {
				return nil, fmt.Errorf("serve: frame exceeds %d bytes", MaxFrameBytes)
			}
		}
		if err == nil {
			return fr.line[:len(fr.line)-1], nil
		}
		if err != bufio.ErrBufferFull {
			if err == io.EOF && len(fr.line) > 0 {
				// A final unterminated line is a truncated frame.
				return nil, io.ErrUnexpectedEOF
			}
			return nil, err
		}
		chunk, err = fr.r.ReadSlice('\n')
	}
}
