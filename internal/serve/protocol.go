// Package serve is the online serving counterpart of the offline
// simulator: a long-running daemon (cmd/prefetchd) that accepts streaming
// access records from many concurrent client sessions over the network
// and replies with prefetch decisions, with robustness as the headline —
// session lifecycle with idle expiry, bounded inboxes with explicit
// backpressure and a degraded fallback policy, learner-state
// snapshot/restore for warm starts, and per-connection failure
// containment. See DESIGN.md §14 "Serving and failure model".
package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// ProtocolVersion is negotiated in the hello/welcome handshake.
const ProtocolVersion = 1

// MaxFrameBytes bounds one wire frame. The decoder rejects longer frames
// before parsing, so a hostile or corrupted peer cannot balloon memory.
const MaxFrameBytes = 1 << 16

// FrameType discriminates wire frames.
type FrameType string

// Wire frame types. The protocol is newline-delimited JSON (one object
// per line): trivially debuggable with netcat, trivially fuzzable, and
// framed so a chaos proxy can drop/duplicate/delay whole frames.
const (
	// FrameHello opens a connection: client → server, naming the session
	// to create or re-attach.
	FrameHello FrameType = "hello"
	// FrameWelcome acknowledges hello: server → client, carrying the
	// session's last applied sequence number so the client can dedupe.
	FrameWelcome FrameType = "welcome"
	// FrameAccess streams one demand access: client → server.
	FrameAccess FrameType = "access"
	// FrameDecision answers one access: server → client.
	FrameDecision FrameType = "decision"
	// FrameBusy is the explicit backpressure reply: the daemon's global
	// in-flight budget is exhausted; retry after RetryMs.
	FrameBusy FrameType = "busy"
	// FrameError reports a protocol or session error.
	FrameError FrameType = "error"
	// FramePing / FramePong keep an idle connection's read deadline fresh.
	FramePing FrameType = "ping"
	FramePong FrameType = "pong"
	// FrameStats requests (client → server, empty) or carries (server →
	// client, Stats set) the attached session's serving statistics.
	FrameStats FrameType = "stats"
	// FrameBye detaches cleanly: client → server.
	FrameBye FrameType = "bye"
)

// Error codes carried by FrameError.
const (
	// CodeBadFrame: the frame failed to parse or validate.
	CodeBadFrame = "bad-frame"
	// CodeProtocol: a valid frame arrived in the wrong state (e.g. access
	// before hello).
	CodeProtocol = "protocol"
	// CodeStaleSeq: the access seq was already applied and its decision
	// has left the replay cache; the client is too far behind.
	CodeStaleSeq = "stale-seq"
	// CodeShuttingDown: the daemon is draining; reconnect later.
	CodeShuttingDown = "shutting-down"
	// CodeSessionClosed: the session expired or was closed mid-request.
	CodeSessionClosed = "session-closed"
)

// SessionStats is one session's serving statistics, carried by a stats
// frame and by the daemon's /debug/serve HTTP endpoint: how many fresh
// decisions the learner produced, how much load was shed (degraded
// fallbacks when the inbox filled), how many duplicates were replayed, and
// the inbox high-water mark (the deepest the bounded inbox ever got —
// InboxHighWater at the configured depth means the session brushed its
// degraded threshold).
type SessionStats struct {
	ID             string `json:"id"`
	Decisions      uint64 `json:"decisions"`
	Degraded       uint64 `json:"degraded"`
	Replayed       uint64 `json:"replayed"`
	InboxHighWater int    `json:"inbox_high_water"`
	LastSeq        uint64 `json:"last_seq"`
	Attached       bool   `json:"attached"`
}

// Hints mirrors trace.SWHints on the wire.
type Hints struct {
	Valid      bool   `json:"valid"`
	TypeID     uint16 `json:"type_id"`
	LinkOffset uint16 `json:"link_offset"`
	RefForm    uint8  `json:"ref_form"`
}

// Frame is one wire message. A single flat struct (rather than one type
// per frame kind) keeps the codec allocation-light and the fuzz target
// simple; Validate enforces per-type required fields.
type Frame struct {
	Type FrameType `json:"type"`

	// Hello.
	Version int    `json:"v,omitempty"`
	Session string `json:"session,omitempty"`

	// Access / decision correlation. Seq is per-session, strictly
	// increasing; the first access of a session is seq 1.
	Seq uint64 `json:"seq,omitempty"`

	// Access payload (mirrors prefetch.Access).
	PC         uint64 `json:"pc,omitempty"`
	Addr       uint64 `json:"addr,omitempty"`
	Value      uint64 `json:"value,omitempty"`
	Reg        uint64 `json:"reg,omitempty"`
	BranchHist uint16 `json:"branch_hist,omitempty"`
	Store      bool   `json:"store,omitempty"`
	Hints      *Hints `json:"hints,omitempty"`

	// Decision payload: absolute byte addresses to prefetch, and the
	// shadow (train-only) predictions for observability.
	Prefetch []uint64 `json:"prefetch,omitempty"`
	Shadow   []uint64 `json:"shadow,omitempty"`
	// Degraded marks a fallback decision produced without the learner
	// (backpressure shed); Replayed marks a decision served from the
	// replay cache after a duplicate seq.
	Degraded bool `json:"degraded,omitempty"`
	Replayed bool `json:"replayed,omitempty"`

	// Welcome payload.
	LastSeq uint64 `json:"last_seq,omitempty"`
	// Resumed reports whether the session existed before this attach
	// (false: created fresh, possibly after an idle expiry).
	Resumed bool `json:"resumed,omitempty"`

	// Busy payload.
	RetryMs int `json:"retry_ms,omitempty"`

	// Stats payload (server → client stats frames only).
	Stats *SessionStats `json:"stats,omitempty"`

	// Error payload.
	Code string `json:"code,omitempty"`
	Msg  string `json:"msg,omitempty"`
}

// Validate enforces the per-type frame contract.
func (f *Frame) Validate() error {
	switch f.Type {
	case FrameHello:
		if f.Version != ProtocolVersion {
			return fmt.Errorf("serve: hello version %d, want %d", f.Version, ProtocolVersion)
		}
		if f.Session == "" || len(f.Session) > 128 {
			return fmt.Errorf("serve: hello session id empty or too long")
		}
	case FrameAccess:
		if f.Seq == 0 {
			return fmt.Errorf("serve: access frame without seq")
		}
	case FrameWelcome, FrameDecision, FrameBusy, FramePing, FramePong, FrameBye:
	case FrameStats:
		// Valid both ways: the request carries no payload, the reply
		// carries Stats.
	case FrameError:
		if f.Code == "" {
			return fmt.Errorf("serve: error frame without code")
		}
	default:
		return fmt.Errorf("serve: unknown frame type %q", f.Type)
	}
	return nil
}

// DecodeFrame parses and validates one frame from a single line (without
// the trailing newline). It is the fuzz target FuzzDecodeFrame exercises:
// it must never panic and never accept a frame Validate rejects.
func DecodeFrame(line []byte) (*Frame, error) {
	if len(line) > MaxFrameBytes {
		return nil, fmt.Errorf("serve: frame of %d bytes exceeds limit %d", len(line), MaxFrameBytes)
	}
	var f Frame
	if err := json.Unmarshal(line, &f); err != nil {
		return nil, fmt.Errorf("serve: bad frame: %w", err)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// EncodeFrame renders f as one newline-terminated wire line.
func EncodeFrame(f *Frame) ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	b, err := json.Marshal(f)
	if err != nil {
		return nil, fmt.Errorf("serve: encoding frame: %w", err)
	}
	if len(b) > MaxFrameBytes {
		return nil, fmt.Errorf("serve: encoded frame of %d bytes exceeds limit %d", len(b), MaxFrameBytes)
	}
	return append(b, '\n'), nil
}

// FrameReader reads newline-delimited frames with a hard per-frame size
// bound.
type FrameReader struct {
	r *bufio.Reader
}

// NewFrameReader wraps r.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReaderSize(r, 4096)}
}

// Read returns the next frame. Oversized lines fail without being
// buffered whole; io.EOF surfaces unchanged so callers can distinguish a
// clean close.
func (fr *FrameReader) Read() (*Frame, error) {
	line, err := fr.readLine()
	if err != nil {
		return nil, err
	}
	return DecodeFrame(line)
}

// ReadTimed is Read with the parse cost split out: it returns how long
// DecodeFrame took, excluding the wait for bytes to arrive on the wire.
// The instrumented serving path uses it so the decode histogram measures
// JSON parsing, not client think-time.
func (fr *FrameReader) ReadTimed() (*Frame, time.Duration, error) {
	line, err := fr.readLine()
	if err != nil {
		return nil, 0, err
	}
	start := time.Now()
	f, err := DecodeFrame(line)
	return f, time.Since(start), err
}

// readLine accumulates one newline-terminated line (without the newline)
// under the frame size bound.
func (fr *FrameReader) readLine() ([]byte, error) {
	var line []byte
	for {
		chunk, err := fr.r.ReadSlice('\n')
		if len(chunk) > 0 {
			line = append(line, chunk...)
			if len(line) > MaxFrameBytes+1 {
				return nil, fmt.Errorf("serve: frame exceeds %d bytes", MaxFrameBytes)
			}
		}
		if err == nil {
			return line[:len(line)-1], nil
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		if err == io.EOF && len(line) > 0 {
			// A final unterminated line is a truncated frame.
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
}
