package serve

import (
	"hash/fnv"
	"sort"
	"sync"
	"time"
)

// sessionStore shards sessions by FNV-1a of the id so concurrent
// hello/reap traffic on unrelated sessions never contends on one lock.
type sessionStore struct {
	shards []storeShard
}

type storeShard struct {
	mu       sync.Mutex
	sessions map[string]*session
}

func newSessionStore(shards int) *sessionStore {
	if shards <= 0 {
		shards = 1
	}
	st := &sessionStore{shards: make([]storeShard, shards)}
	for i := range st.shards {
		st.shards[i].sessions = make(map[string]*session)
	}
	return st
}

func (st *sessionStore) shard(id string) *storeShard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &st.shards[h.Sum32()%uint32(len(st.shards))]
}

// getOrCreate returns the session for id, creating it with mk when absent.
// existed reports whether the session predated this call.
func (st *sessionStore) getOrCreate(id string, mk func() (*session, error)) (s *session, existed bool, err error) {
	sh := st.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s, ok := sh.sessions[id]; ok {
		return s, true, nil
	}
	s, err = mk()
	if err != nil {
		return nil, false, err
	}
	sh.sessions[id] = s
	return s, false, nil
}

// put inserts a restored session (boot-time warm start; no races yet).
func (st *sessionStore) put(s *session) {
	sh := st.shard(s.id)
	sh.mu.Lock()
	sh.sessions[s.id] = s
	sh.mu.Unlock()
}

// remove unlinks s if the map still holds this exact pointer (a newer
// session under the same id is left alone).
func (st *sessionStore) remove(s *session) {
	sh := st.shard(s.id)
	sh.mu.Lock()
	if cur, ok := sh.sessions[s.id]; ok && cur == s {
		delete(sh.sessions, s.id)
	}
	sh.mu.Unlock()
}

// all returns every live session sorted by id (snapshot determinism).
func (st *sessionStore) all() []*session {
	var out []*session
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for _, s := range sh.sessions {
			out = append(out, s)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// count returns the number of live sessions.
func (st *sessionStore) count() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		n += len(sh.sessions)
		sh.mu.Unlock()
	}
	return n
}

// reapIdle removes every detached session idle for longer than ttl and
// returns the removed set; the caller closes them outside the shard locks.
func (st *sessionStore) reapIdle(ttl time.Duration, now time.Time) []*session {
	var dead []*session
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		for id, s := range sh.sessions {
			s.attachMu.Lock()
			attached := s.attached != nil
			s.attachMu.Unlock()
			if !attached && s.idleFor(now) > ttl {
				delete(sh.sessions, id)
				dead = append(dead, s)
			}
		}
		sh.mu.Unlock()
	}
	return dead
}
