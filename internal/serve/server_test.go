package serve

import (
	"net"
	"runtime"
	"testing"
	"time"

	"semloc/internal/core"
)

// testConn is a minimal raw-wire client for in-package server tests (the
// full retrying client lives in serve/client and gets its own tests).
type testConn struct {
	t *testing.T
	c net.Conn
	r *FrameReader
}

func dialServer(t *testing.T, s *Server) *testConn {
	t.Helper()
	c, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	tc := &testConn{t: t, c: c, r: NewFrameReader(c)}
	t.Cleanup(func() { c.Close() })
	return tc
}

func (tc *testConn) send(f *Frame) {
	tc.t.Helper()
	b, err := EncodeFrame(f)
	if err != nil {
		tc.t.Fatal(err)
	}
	if _, err := tc.c.Write(b); err != nil {
		tc.t.Fatal(err)
	}
}

func (tc *testConn) recv() *Frame {
	tc.t.Helper()
	tc.c.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := tc.r.Read()
	if err != nil {
		tc.t.Fatalf("reading frame: %v", err)
	}
	return f
}

func (tc *testConn) hello(session string) *Frame {
	tc.t.Helper()
	tc.send(&Frame{Type: FrameHello, Version: ProtocolVersion, Session: session})
	w := tc.recv()
	if w.Type != FrameWelcome {
		tc.t.Fatalf("want welcome, got %s (%s: %s)", w.Type, w.Code, w.Msg)
	}
	return w
}

func (tc *testConn) access(seq, addr uint64) *Frame {
	tc.t.Helper()
	tc.send(&Frame{Type: FrameAccess, Seq: seq, PC: 0x400000, Addr: addr})
	return tc.recv()
}

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// accessAddr is the shared deterministic access stream: a strided scan
// with a periodic revisit, enough structure for the learner to predict.
func accessAddr(i uint64) uint64 { return 0x100000 + (i%512)*64 }

func TestServerLifecycleAndDecisionParity(t *testing.T) {
	s := startServer(t, Config{})
	tc := dialServer(t, s)
	w := tc.hello("parity")
	if w.Resumed || w.LastSeq != 0 {
		t.Fatalf("fresh session welcomed as resumed=%v lastSeq=%d", w.Resumed, w.LastSeq)
	}

	// The same stream through an in-process learner must match the
	// daemon's decisions exactly.
	ref, err := NewLearner(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	for i := uint64(1); i <= n; i++ {
		fr := &Frame{Type: FrameAccess, Seq: i, PC: 0x400000, Addr: accessAddr(i)}
		want := ref.Decide(fr)
		got := tc.access(i, accessAddr(i))
		if got.Type != FrameDecision || got.Seq != i {
			t.Fatalf("seq %d: got %s/%d", i, got.Type, got.Seq)
		}
		if got.Degraded {
			t.Fatalf("seq %d: unexpected degraded decision in lockstep", i)
		}
		if !SameDecision(got, want) {
			t.Fatalf("seq %d: daemon %v/%v, reference %v/%v",
				i, got.Prefetch, got.Shadow, want.Prefetch, want.Shadow)
		}
	}

	// Detach and re-attach: the session survives with its seq high-water.
	tc.send(&Frame{Type: FrameBye})
	tc.c.Close()
	tc2 := dialServer(t, s)
	w2 := tc2.hello("parity")
	if !w2.Resumed || w2.LastSeq != n {
		t.Fatalf("re-attach: resumed=%v lastSeq=%d, want true/%d", w2.Resumed, w2.LastSeq, n)
	}
	// The learner kept its state: decisions still match the reference.
	for i := uint64(n + 1); i <= n+200; i++ {
		fr := &Frame{Type: FrameAccess, Seq: i, PC: 0x400000, Addr: accessAddr(i)}
		want := ref.Decide(fr)
		if got := tc2.access(i, accessAddr(i)); !SameDecision(got, want) {
			t.Fatalf("post-reattach seq %d: decisions diverged", i)
		}
	}
}

func TestServerDuplicateSeqReplaysDecision(t *testing.T) {
	s := startServer(t, Config{ReplayDepth: 8})
	tc := dialServer(t, s)
	tc.hello("dup")
	var last *Frame
	for i := uint64(1); i <= 20; i++ {
		last = tc.access(i, accessAddr(i))
	}
	// Duplicate of the newest seq: replayed, identical payload, no retrain.
	dup := tc.access(20, accessAddr(20))
	if dup.Type != FrameDecision || !dup.Replayed || !SameDecision(dup, last) {
		t.Fatalf("duplicate seq 20: %+v", dup)
	}
	// A seq far behind the replay window is stale.
	stale := tc.access(1, accessAddr(1))
	if stale.Type != FrameError || stale.Code != CodeStaleSeq {
		t.Fatalf("ancient duplicate: %+v", stale)
	}
	// Neither touched the learner: a fresh access continues the stream.
	if got := tc.access(21, accessAddr(21)); got.Type != FrameDecision || got.Seq != 21 {
		t.Fatalf("stream desynced after duplicates: %+v", got)
	}
}

func TestServerBusyWhenInflightSaturated(t *testing.T) {
	s := startServer(t, Config{MaxInflight: 4, RetryMs: 7})
	tc := dialServer(t, s)
	tc.hello("busy")
	// Saturate the global budget directly (simulating load from other
	// connections), then every access bounces with an explicit busy frame.
	s.inflight.Add(4)
	got := tc.access(1, accessAddr(1))
	if got.Type != FrameBusy || got.RetryMs != 7 || got.Seq != 1 {
		t.Fatalf("want busy/retry 7ms, got %+v", got)
	}
	if s.busyTotal.Value() == 0 {
		t.Fatal("busy counter not incremented")
	}
	// Budget released: the same access goes through and trains normally.
	s.inflight.Add(-4)
	if got := tc.access(1, accessAddr(1)); got.Type != FrameDecision {
		t.Fatalf("after release: %+v", got)
	}
}

func TestServerDegradedFallbackWhenInboxFull(t *testing.T) {
	cfg := Config{InboxDepth: 2}
	s, err := NewServer(cfg.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	s.gate = make(chan struct{})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	defer close(s.gate) // release held workers so Close can drain

	tc := dialServer(t, s)
	tc.hello("shed")
	// With the worker gated, the first access is pulled off the inbox and
	// parks at the gate; the next InboxDepth fill the inbox; one more must
	// shed to the degraded fallback — served inline by the reader, so it
	// answers even though every learner slot is stuck.
	for i := uint64(1); i <= 3; i++ {
		tc.send(&Frame{Type: FrameAccess, Seq: i, PC: 1, Addr: accessAddr(i)})
	}
	// Give the worker/inbox a moment to reach steady state, then overflow.
	deadline := time.Now().Add(2 * time.Second)
	for int(s.inflight.Load()) < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	tc.send(&Frame{Type: FrameAccess, Seq: 4, PC: 1, Addr: 0x5000})
	got := tc.recv()
	if got.Type != FrameDecision || !got.Degraded || got.Seq != 4 {
		t.Fatalf("want degraded decision for seq 4, got %+v", got)
	}
	// The fallback is the documented next-line policy.
	if len(got.Prefetch) != 1 || got.Prefetch[0] != 0x5040 {
		t.Fatalf("fallback prefetch %v, want [0x5040]", got.Prefetch)
	}
	if s.degradedTotal.Value() != 1 {
		t.Fatalf("degraded counter %d, want 1", s.degradedTotal.Value())
	}
	// Release the gate: the queued accesses drain as real decisions.
	for i := 0; i < 3; i++ {
		s.gate <- struct{}{}
		if got := tc.recv(); got.Type != FrameDecision || got.Degraded {
			t.Fatalf("queued access %d: %+v", i, got)
		}
	}
}

func TestServerPanicContainment(t *testing.T) {
	s := startServer(t, Config{})
	s.panicOnSeq = 3
	tc := dialServer(t, s)
	tc.hello("boom")
	tc.access(1, accessAddr(1))
	tc.access(2, accessAddr(2))
	got := tc.access(3, accessAddr(3))
	if got.Type != FrameError || got.Code != CodeSessionClosed {
		t.Fatalf("want session-closed error at the faulting seq, got %+v", got)
	}
	if s.panicsTotal.Value() != 1 {
		t.Fatalf("panic counter %d, want 1", s.panicsTotal.Value())
	}
	// The poisoned session is gone; other sessions are untouched and a
	// re-hello under the same id starts fresh.
	s.panicOnSeq = 0
	tc2 := dialServer(t, s)
	w := tc2.hello("boom")
	if w.Resumed || w.LastSeq != 0 {
		t.Fatalf("poisoned session not replaced: %+v", w)
	}
	if got := tc2.access(1, accessAddr(1)); got.Type != FrameDecision {
		t.Fatalf("fresh session after poison: %+v", got)
	}
}

func TestServerIdleSessionExpiry(t *testing.T) {
	s := startServer(t, Config{SessionTTL: 30 * time.Millisecond, ReapInterval: 10 * time.Millisecond})
	tc := dialServer(t, s)
	tc.hello("ttl")
	tc.access(1, accessAddr(1))
	tc.send(&Frame{Type: FrameBye})
	tc.c.Close()

	deadline := time.Now().Add(5 * time.Second)
	for s.store.count() != 0 || s.reapedTotal.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle session not reaped; %d live, %d reaped",
				s.store.count(), s.reapedTotal.Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Re-hello after expiry: a fresh session.
	tc2 := dialServer(t, s)
	if w := tc2.hello("ttl"); w.Resumed || w.LastSeq != 0 {
		t.Fatalf("expired session resumed: %+v", w)
	}
}

func TestServerAttachedSessionIsNotReaped(t *testing.T) {
	s := startServer(t, Config{SessionTTL: 20 * time.Millisecond, ReapInterval: 5 * time.Millisecond})
	tc := dialServer(t, s)
	tc.hello("pinned")
	time.Sleep(100 * time.Millisecond) // idle but attached: several TTLs pass
	if got := tc.access(1, accessAddr(1)); got.Type != FrameDecision {
		t.Fatalf("attached session expired under us: %+v", got)
	}
}

func TestServerProtocolErrors(t *testing.T) {
	s := startServer(t, Config{})
	// Access before hello.
	tc := dialServer(t, s)
	tc.send(&Frame{Type: FrameAccess, Seq: 1, Addr: 64})
	if got := tc.recv(); got.Type != FrameError || got.Code != CodeProtocol {
		t.Fatalf("access before hello: %+v", got)
	}
	// Garbage line after handshake.
	tc2 := dialServer(t, s)
	tc2.hello("proto")
	if _, err := tc2.c.Write([]byte("not json\n")); err != nil {
		t.Fatal(err)
	}
	if got := tc2.recv(); got.Type != FrameError || got.Code != CodeBadFrame {
		t.Fatalf("garbage frame: %+v", got)
	}
	// Ping/pong keeps a session alive.
	tc3 := dialServer(t, s)
	tc3.hello("ping")
	tc3.send(&Frame{Type: FramePing})
	if got := tc3.recv(); got.Type != FramePong {
		t.Fatalf("ping answered with %+v", got)
	}
}

func TestServerDrainRestoreWarmStart(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/prefetchd.snap"

	// Reference: an uninterrupted in-process learner over the full stream.
	ref, err := NewLearner(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	const split, total = 1500, 3000

	cfg := Config{SnapshotPath: path}
	s1, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Start(); err != nil {
		t.Fatal(err)
	}
	tc := dialServer(t, s1)
	tc.hello("warm")
	for i := uint64(1); i <= split; i++ {
		fr := &Frame{Type: FrameAccess, Seq: i, PC: 0x400000, Addr: accessAddr(i)}
		want := ref.Decide(fr)
		if got := tc.access(i, accessAddr(i)); !SameDecision(got, want) {
			t.Fatalf("pre-drain seq %d diverged", i)
		}
	}
	// Graceful drain writes the final snapshot.
	before := runtime.NumGoroutine()
	_ = before
	if err := s1.Close(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// Reboot from the snapshot: sessions restore before the socket opens.
	s2 := startServer(t, cfg)
	if s2.RestoredSessions() != 1 {
		t.Fatalf("restored %d sessions, want 1", s2.RestoredSessions())
	}
	tc2 := dialServer(t, s2)
	w := tc2.hello("warm")
	if !w.Resumed || w.LastSeq != split {
		t.Fatalf("warm attach: resumed=%v lastSeq=%d, want true/%d", w.Resumed, w.LastSeq, split)
	}
	// The restored learner continues bit-identically to the never-killed
	// reference — the durability contract the chaos harness leans on.
	for i := uint64(split + 1); i <= total; i++ {
		fr := &Frame{Type: FrameAccess, Seq: i, PC: 0x400000, Addr: accessAddr(i)}
		want := ref.Decide(fr)
		if got := tc2.access(i, accessAddr(i)); !SameDecision(got, want) {
			t.Fatalf("post-restore seq %d diverged from uninterrupted reference", i)
		}
	}
}

func TestServerCloseReleasesGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	s, err := NewServer(Config{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	var conns []*testConn
	for i := 0; i < 4; i++ {
		tc := dialServer(t, s)
		tc.hello(string(rune('a' + i)))
		tc.access(1, accessAddr(1))
		conns = append(conns, tc)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Readers, workers, reaper and accept loop must all be gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after Close: %d > baseline %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// New dials are refused once draining.
	if c, err := net.Dial("tcp", s.Addr().String()); err == nil {
		c.Close()
		t.Fatal("listener still accepting after Close")
	}
}
