package serve

import (
	"bytes"
	"encoding/json"
	"net"
	"testing"
	"time"

	"semloc/internal/core"
	"semloc/internal/obs"
)

// batchAccesses builds n contiguous accesses starting at first, on the
// shared deterministic stream.
func batchAccesses(first uint64, n int) []BatchAccess {
	accs := make([]BatchAccess, n)
	for i := range accs {
		seq := first + uint64(i)
		accs[i] = BatchAccess{Seq: seq, PC: 0x400000, Addr: accessAddr(seq)}
	}
	return accs
}

func (tc *testConn) helloBatch(session string, ask int) *Frame {
	tc.t.Helper()
	tc.send(&Frame{Type: FrameHello, Version: ProtocolVersion, Session: session, Batch: ask})
	w := tc.recv()
	if w.Type != FrameWelcome {
		tc.t.Fatalf("want welcome, got %s (%s: %s)", w.Type, w.Code, w.Msg)
	}
	return w
}

func (tc *testConn) batch(first uint64, n int) *Frame {
	tc.t.Helper()
	tc.send(&Frame{Type: FrameBatch, Accesses: batchAccesses(first, n)})
	return tc.recv()
}

func TestBatchFrameRoundTrip(t *testing.T) {
	frames := []*Frame{
		{Type: FrameHello, Version: ProtocolVersion, Session: "s1", Batch: 16},
		{Type: FrameWelcome, Session: "s1", LastSeq: 9, Batch: 16},
		{Type: FrameBatch, Accesses: []BatchAccess{
			{Seq: 10, PC: 0x400123, Addr: 0xdeadbe00, Value: 7, Reg: 3, BranchHist: 0xabcd, Store: true,
				Hints: &Hints{Valid: true, TypeID: 2, LinkOffset: 8, RefForm: 1}},
			{Seq: 11, Addr: 0xdeadbe40},
		}},
		{Type: FrameBatch, Results: []BatchDecision{
			{Seq: 10, Prefetch: []uint64{0xdeadbe40}, Shadow: []uint64{0xdeadbe80}},
			{Seq: 11, Replayed: true},
			{Seq: 12, Degraded: true, Prefetch: []uint64{64}},
			{Seq: 13, Code: CodeStaleSeq},
		}},
	}
	for _, f := range frames {
		b, err := EncodeFrame(f)
		if err != nil {
			t.Fatalf("encode %s: %v", f.Type, err)
		}
		got, err := DecodeFrame(b[:len(b)-1])
		if err != nil {
			t.Fatalf("decode %s: %v", f.Type, err)
		}
		b2, err := EncodeFrame(got)
		if err != nil {
			t.Fatalf("re-encode %s: %v", f.Type, err)
		}
		if !bytes.Equal(b, b2) {
			t.Fatalf("%s round trip drifted:\n%s%s", f.Type, b, b2)
		}
	}
}

func TestBatchValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		f    *Frame
	}{
		{"empty batch", &Frame{Type: FrameBatch}},
		{"both sides", &Frame{Type: FrameBatch,
			Accesses: batchAccesses(1, 1), Results: []BatchDecision{{Seq: 1}}}},
		{"oversize", &Frame{Type: FrameBatch, Accesses: batchAccesses(1, MaxBatch+1)}},
		{"zero seq", &Frame{Type: FrameBatch, Accesses: []BatchAccess{{Seq: 0}}}},
		{"duplicate seqs", &Frame{Type: FrameBatch,
			Accesses: []BatchAccess{{Seq: 5}, {Seq: 5}}}},
		{"descending seqs", &Frame{Type: FrameBatch,
			Accesses: []BatchAccess{{Seq: 5}, {Seq: 4}}}},
		{"gapped seqs", &Frame{Type: FrameBatch,
			Accesses: []BatchAccess{{Seq: 5}, {Seq: 7}}}},
		{"gapped results", &Frame{Type: FrameBatch,
			Results: []BatchDecision{{Seq: 5}, {Seq: 7}}}},
		{"negative hello ask", &Frame{Type: FrameHello, Version: ProtocolVersion, Session: "s", Batch: -1}},
	}
	for _, tc := range cases {
		if err := tc.f.Validate(); err == nil {
			t.Errorf("%s: invalid frame validated", tc.name)
		}
		if _, err := EncodeFrame(tc.f); err == nil {
			t.Errorf("%s: invalid frame encoded", tc.name)
		}
	}
	// The edge that must pass: a full MaxBatch frame.
	full := &Frame{Type: FrameBatch, Accesses: batchAccesses(1, MaxBatch)}
	if err := full.Validate(); err != nil {
		t.Fatalf("MaxBatch frame rejected: %v", err)
	}
}

// TestAppendFrameMatchesJSONMarshal pins the hand-rolled encoder to
// encoding/json byte for byte: for every valid frame — including ones
// whose strings force the fallback (escapes, non-ASCII, HTML-escaped
// runes) — AppendFrame must produce exactly json.Marshal's bytes plus
// the newline.
func TestAppendFrameMatchesJSONMarshal(t *testing.T) {
	frames := []*Frame{
		{Type: FrameHello, Version: ProtocolVersion, Session: "s1", Batch: 64},
		{Type: FrameWelcome, Session: "s1", LastSeq: 1<<64 - 1, Resumed: true, Batch: 1},
		{Type: FrameAccess, Seq: 7, PC: 0x400123, Addr: 0xdeadbe00, Value: 9, Reg: 3,
			BranchHist: 0xffff, Store: true,
			Hints: &Hints{Valid: true, TypeID: 255, LinkOffset: 1<<16 - 1, RefForm: 2}},
		{Type: FrameDecision, Seq: 7, Prefetch: []uint64{0, 1, 1<<64 - 1}, Shadow: []uint64{2}},
		{Type: FrameBusy, Seq: 9, RetryMs: 50},
		{Type: FramePong},
		{Type: FrameStats, Stats: &SessionStats{ID: "s", Decisions: 1, LastSeq: 1}},
		{Type: FrameBatch, Accesses: batchAccesses(1, MaxBatch)},
		{Type: FrameBatch, Results: []BatchDecision{
			{Seq: 3, Prefetch: []uint64{64}, Shadow: []uint64{128}},
			{Seq: 4, Replayed: true}, {Seq: 5, Degraded: true}, {Seq: 6, Code: CodeStaleSeq},
		}},
		// Strings the fast path must bail on, falling back to
		// encoding/json (which escapes <, >, & and control bytes).
		{Type: FrameError, Code: CodeProtocol, Msg: `quote " backslash \ done`},
		{Type: FrameError, Code: CodeBadFrame, Msg: "<html> & ünïcode \t tab"},
		{Type: FrameError, Code: CodeStaleSeq, Msg: "plain ascii msg"},
		{Type: FrameHello, Version: ProtocolVersion, Session: "sess-é"},
	}
	for i, f := range frames {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatalf("case %d: json.Marshal: %v", i, err)
		}
		got, err := AppendFrame(nil, f)
		if err != nil {
			t.Fatalf("case %d: AppendFrame: %v", i, err)
		}
		if !bytes.Equal(got, append(want, '\n')) {
			t.Fatalf("case %d (%s): encoder diverged from encoding/json:\nfast: %s\njson: %s\n",
				i, f.Type, got, want)
		}
	}
}

// TestDecodeFrameIntoMatchesEncodingJSON runs canonical and deliberately
// non-canonical inputs through DecodeFrameInto and through a plain
// json.Unmarshal+Validate, and requires identical outcomes: same frame
// or both rejecting. The non-canonical shapes (reordered keys,
// whitespace, escapes, floats, leading zeros, duplicate keys) are
// exactly the ones the fast parser must bail on rather than mis-parse.
func TestDecodeFrameIntoMatchesEncodingJSON(t *testing.T) {
	lines := []string{
		`{"type":"access","seq":1,"pc":4,"addr":64}`,
		`{"seq":1,"addr":64,"type":"access","pc":4}`,             // reordered keys
		`{ "type" : "access" , "seq" : 1 , "addr" : 64 }`,        // whitespace
		`{"type":"access","seq":1,"addr":64}`,                    // escaped type
		`{"type":"access","seq":01,"addr":64}`,                   // leading zero: invalid JSON
		`{"type":"access","seq":1.0,"addr":64}`,                  // float into uint64
		`{"type":"access","seq":1e0,"addr":64}`,                  // exponent
		`{"type":"access","seq":-1,"addr":64}`,                   // negative into uint64
		`{"type":"access","seq":18446744073709551615,"addr":64}`, // max uint64
		`{"type":"access","seq":18446744073709551616,"addr":64}`, // overflow
		`{"type":"access","seq":1,"seq":2,"addr":64}`,            // duplicate key
		`{"type":"access","seq":1,"addr":64,"unknown_key":true}`, // unknown key
		`{"type":"access","seq":1,"addr":64,"hints":null}`,       // null hints
		`{"type":"access","seq":1,"addr":64,"store":false}`,      // explicit zero value
		`{"type":"batch","accesses":[{"seq":1},{"seq":2}]}`,      // minimal batch
		`{"type":"batch","accesses":[{"seq":1},{"seq":1}]}`,      // duplicate seqs: invalid
		`{"type":"batch","accesses":[]}`,                         // empty batch: invalid
		`{"type":"batch","results":[{"seq":1,"prefetch":[64]}]}`, // results side
		`{"type":"batch","accesses":[{"seq":1,"hints":{"valid":true,"type_id":3}}]}`,
		`{"type":"decision","seq":1,"prefetch":[1,2,3],"shadow":[]}`,
		`{"type":"hello","v":1,"session":"s","batch":16}`,
		`{"type":"hello","v":1,"session":"s","batch":-2}`, // negative ask: invalid
		`{"type":"error","code":"stale_seq","msg":"mé"}`,
		`{"type":"access","seq":1,"addr":64}extra`, // trailing garbage
		`{"type":"access","seq":1,"addr":64} `,     // trailing space
	}
	for _, line := range lines {
		var fast Frame
		fastErr := DecodeFrameInto([]byte(line), &fast)

		var ref Frame
		refErr := json.Unmarshal([]byte(line), &ref)
		if refErr == nil {
			refErr = ref.Validate()
		}
		if (fastErr == nil) != (refErr == nil) {
			t.Errorf("%s: decoder disagreement: fast err %v, encoding/json err %v", line, fastErr, refErr)
			continue
		}
		if fastErr != nil {
			continue
		}
		// Compare through re-encoding: the frames' public payloads must
		// be identical (spare buffers aside).
		fb, _ := json.Marshal(&fast)
		rb, _ := json.Marshal(&ref)
		if !bytes.Equal(fb, rb) {
			t.Errorf("%s: decoded frames differ:\nfast: %s\njson: %s", line, fb, rb)
		}
	}
}

// TestSteadyStateCodecZeroAlloc is the batched-pipeline alloc guard: once
// warm, encoding and decoding a full 64-access batch (hints included)
// into reused buffers must not allocate at all — that is the whole
// premise of the amortized serving path.
func TestSteadyStateCodecZeroAlloc(t *testing.T) {
	fr := &Frame{Type: FrameBatch}
	for i := 0; i < MaxBatch; i++ {
		fr.Accesses = append(fr.Accesses, BatchAccess{
			Seq: uint64(i + 1), PC: 0x400000 + uint64(i), Addr: uint64(0x100000 + i*64),
			Value: uint64(i), Reg: uint64(i % 16), BranchHist: uint16(i), Store: i%2 == 0,
			Hints: &Hints{Valid: true, TypeID: 3, LinkOffset: 8, RefForm: 1},
		})
	}
	buf, err := AppendFrame(nil, fr) // warm the buffer
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		buf, err = AppendFrame(buf[:0], fr)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("steady-state batch encode allocates %.1f/op, want 0", n)
	}

	line := buf[:len(buf)-1]
	var dec Frame
	if err := DecodeFrameInto(line, &dec); err != nil { // warm the frame's storage
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := DecodeFrameInto(line, &dec); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("steady-state batch decode allocates %.1f/op, want 0", n)
	}
	if len(dec.Accesses) != MaxBatch || dec.Accesses[63].Hints == nil {
		t.Fatalf("reused decode dropped payload: %d accesses", len(dec.Accesses))
	}

	// The single-frame path gets the same guarantee (satellite: writer-side
	// buffer reuse on the legacy path).
	single := &Frame{Type: FrameDecision, Seq: 9, Prefetch: []uint64{64, 128}, Shadow: []uint64{192}}
	if buf, err = AppendFrame(buf[:0], single); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		buf, err = AppendFrame(buf[:0], single)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("steady-state single encode allocates %.1f/op, want 0", n)
	}
	sline := buf[:len(buf)-1]
	if err := DecodeFrameInto(sline, &dec); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := DecodeFrameInto(sline, &dec); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("steady-state single decode allocates %.1f/op, want 0", n)
	}
}

// TestReplayRingSpanStraddle pins span-granular replay: the ring holds
// whole batch spans, lookup resolves any seq inside a span, eviction
// drops whole oldest spans, and entries() flattens in ascending order
// for snapshots.
func TestReplayRingSpanStraddle(t *testing.T) {
	span := func(first uint64, n int) []ReplayEntry {
		es := make([]ReplayEntry, n)
		for i := range es {
			seq := first + uint64(i)
			es[i] = ReplayEntry{Seq: seq, Prefetch: []uint64{seq * 64}}
		}
		return es
	}
	var r replayRing
	r.init(2)
	r.putSpan(span(1, 4))
	r.putSpan(span(5, 4))
	r.putSpan(span(9, 4)) // evicts span 1..4 whole
	for seq := uint64(1); seq <= 4; seq++ {
		if _, ok := r.get(seq); ok {
			t.Fatalf("seq %d survived span eviction", seq)
		}
	}
	for seq := uint64(5); seq <= 12; seq++ {
		e, ok := r.get(seq)
		if !ok || e.Seq != seq || e.Prefetch[0] != seq*64 {
			t.Fatalf("seq %d not resolvable inside its span (ok=%v e=%+v)", seq, ok, e)
		}
	}
	if _, ok := r.get(13); ok {
		t.Fatal("seq past the newest span resolved")
	}
	es := r.entries()
	if len(es) != 8 {
		t.Fatalf("entries() flattened %d entries, want 8", len(es))
	}
	for i, e := range es {
		if want := uint64(5 + i); e.Seq != want {
			t.Fatalf("entries()[%d].Seq = %d, want %d (ascending oldest-first)", i, e.Seq, want)
		}
	}
	// Mixed granularity: singles and spans share the ring.
	r.put(ReplayEntry{Seq: 13, Prefetch: []uint64{13 * 64}})
	if _, ok := r.get(9); !ok {
		t.Fatal("span 9..12 evicted by a single put into a depth-2 ring")
	}
	if e, ok := r.get(13); !ok || e.Prefetch[0] != 13*64 {
		t.Fatal("single entry lost")
	}
}

func TestServerBatchNegotiation(t *testing.T) {
	s := startServer(t, Config{MaxBatch: 8})

	// Old client: no batch field, granted 0; batch frames are protocol
	// errors but the connection survives them.
	tc := dialServer(t, s)
	if w := tc.hello("nb"); w.Batch != 0 {
		t.Fatalf("unasked hello granted batch %d", w.Batch)
	}
	if got := tc.batch(1, 2); got.Type != FrameError || got.Code != CodeProtocol {
		t.Fatalf("unnegotiated batch: want protocol error, got %+v", got)
	}
	if got := tc.access(1, accessAddr(1)); got.Type != FrameDecision {
		t.Fatalf("connection unusable after batch rejection: %+v", got)
	}

	// Ask above the server cap: granted the cap.
	tc2 := dialServer(t, s)
	if w := tc2.helloBatch("nb2", 200); w.Batch != 8 {
		t.Fatalf("asked 200 against cap 8, granted %d", w.Batch)
	}
	if got := tc2.batch(1, 9); got.Type != FrameError || got.Code != CodeProtocol {
		t.Fatalf("oversize batch: want protocol error, got %+v", got)
	}
	if got := tc2.batch(1, 8); got.Type != FrameBatch || len(got.Results) != 8 {
		t.Fatalf("at-cap batch rejected: %+v", got)
	}

	// A client-sent results batch is a protocol error (no accesses).
	tc2.send(&Frame{Type: FrameBatch, Results: []BatchDecision{{Seq: 99}}})
	if got := tc2.recv(); got.Type != FrameError || got.Code != CodeProtocol {
		t.Fatalf("results batch from client: want protocol error, got %+v", got)
	}

	// Batching disabled server-side: every ask granted 0.
	s2 := startServer(t, Config{MaxBatch: -1})
	tc3 := dialServer(t, s2)
	if w := tc3.helloBatch("nb3", 64); w.Batch != 0 {
		t.Fatalf("disabled batching granted %d", w.Batch)
	}
}

// TestServerBatchDecisionParity drives the same stream batched (varying
// sizes, mixed with single access frames on the same connection) and
// requires bit-identical decisions to an in-process reference learner.
func TestServerBatchDecisionParity(t *testing.T) {
	s := startServer(t, Config{})
	ref, err := NewLearner(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tc := dialServer(t, s)
	if w := tc.helloBatch("bparity", 16); w.Batch != 16 {
		t.Fatalf("granted %d, want 16", w.Batch)
	}

	check := func(seq uint64, prefetch, shadow []uint64, degraded, replayed bool) {
		t.Helper()
		want := ref.Decide(&Frame{Type: FrameAccess, Seq: seq, PC: 0x400000, Addr: accessAddr(seq)})
		if degraded || replayed {
			t.Fatalf("seq %d: degraded=%v replayed=%v in lockstep", seq, degraded, replayed)
		}
		if !equalU64(prefetch, want.Prefetch) || !equalU64(shadow, want.Shadow) {
			t.Fatalf("seq %d: daemon %v/%v, reference %v/%v", seq, prefetch, shadow, want.Prefetch, want.Shadow)
		}
	}

	seq := uint64(1)
	for _, k := range []int{1, 3, 16, 7, 16, 2, 11, 16, 16, 5, 16, 16, 9, 16} {
		got := tc.batch(seq, k)
		if got.Type != FrameBatch || len(got.Results) != k {
			t.Fatalf("batch at %d size %d: got %s with %d results (%s)", seq, k, got.Type, len(got.Results), got.Msg)
		}
		for i, d := range got.Results {
			if d.Seq != seq+uint64(i) {
				t.Fatalf("result %d: seq %d, want %d", i, d.Seq, seq+uint64(i))
			}
			check(d.Seq, d.Prefetch, d.Shadow, d.Degraded, d.Replayed)
		}
		seq += uint64(k)

		// Interleave a plain access frame: single and batched framing
		// coexist on one negotiated connection.
		single := tc.access(seq, accessAddr(seq))
		if single.Type != FrameDecision || single.Seq != seq {
			t.Fatalf("interleaved single at %d: %+v", seq, single)
		}
		check(seq, single.Prefetch, single.Shadow, single.Degraded, single.Replayed)
		seq++
	}
}

// TestServerBatchPartialReplay pins the straddle semantics: a resent
// batch overlapping the session's high-water mark gets its applied
// prefix answered from the replay ring (Replayed), its unseen tail
// decided fresh — and seqs that fell off the ring come back per-item as
// stale_seq codes, not a connection error.
func TestServerBatchPartialReplay(t *testing.T) {
	s := startServer(t, Config{ReplayDepth: 2}) // two spans of replay window
	tc := dialServer(t, s)
	tc.helloBatch("breplay", 16)

	for _, first := range []uint64{1, 5, 9} {
		if got := tc.batch(first, 4); got.Type != FrameBatch || len(got.Results) != 4 {
			t.Fatalf("batch at %d: %+v", first, got)
		}
	}
	// lastSeq = 12; ring holds spans [5..8] and [9..12]; [1..4] evicted.

	// Straddle high-water: [11..14] → 11,12 replayed, 13,14 fresh.
	got := tc.batch(11, 4)
	if got.Type != FrameBatch || len(got.Results) != 4 {
		t.Fatalf("straddle batch: %+v", got)
	}
	for i, wantReplay := range []bool{true, true, false, false} {
		d := got.Results[i]
		if d.Replayed != wantReplay || d.Code != "" {
			t.Fatalf("straddle result %d (seq %d): replayed=%v code=%q, want replayed=%v",
				i, d.Seq, d.Replayed, d.Code, wantReplay)
		}
		if len(d.Prefetch) == 0 && len(d.Shadow) == 0 && !wantReplay {
			// fresh decisions may legitimately be empty early in training;
			// nothing to assert beyond the flags.
			_ = d
		}
	}
	// lastSeq = 14 now. Resend [3..10]: 3,4 evicted → stale codes; 5..10
	// replayed from the surviving spans... unless the fresh tail above
	// already rolled the ring. Recompute: the straddle batch put one new
	// span [13,14], evicting [5..8]. So 3..8 are stale, 9,10 replayed.
	got = tc.batch(3, 8)
	if got.Type != FrameBatch || len(got.Results) != 8 {
		t.Fatalf("stale-split batch: %+v", got)
	}
	for i, d := range got.Results {
		seq := uint64(3 + i)
		switch {
		case seq <= 8:
			if d.Code != CodeStaleSeq || d.Replayed {
				t.Fatalf("seq %d: want stale_seq code, got replayed=%v code=%q", seq, d.Replayed, d.Code)
			}
		default: // 9, 10
			if !d.Replayed || d.Code != "" {
				t.Fatalf("seq %d: want replay, got replayed=%v code=%q", seq, d.Replayed, d.Code)
			}
		}
	}

	// The stream is undisturbed: the next fresh batch continues at 15.
	got = tc.batch(15, 2)
	if got.Type != FrameBatch || len(got.Results) != 2 || got.Results[0].Replayed {
		t.Fatalf("stream desynced after replay probes: %+v", got)
	}
}

// TestServerBatchTracerCountMatch drives batched traffic (with replays
// mixed in) through a fully instrumented server and asserts the
// invariants that keep batched and unbatched artifacts comparable:
// every serve_*_latency histogram count equals serve_decisions_total,
// and the serve_batch_size histogram's sum re-adds to the same total.
func TestServerBatchTracerCountMatch(t *testing.T) {
	reg := obs.NewRegistry()
	s := startServer(t, Config{
		Reg: reg,
		Trace: &TraceConfig{
			Spans:       obs.NewSpanRecorder(),
			SampleEvery: 1,
			Logf:        func(string, ...any) {},
		},
	})
	tc := dialServer(t, s)
	tc.helloBatch("btrace", 16)

	const fresh = 16 + 16 + 5 + 1 // three batches and one single
	tc.batch(1, 16)
	tc.batch(17, 16)
	tc.batch(33, 5)
	tc.access(38, accessAddr(38))
	// Replays must not observe: resend a fully applied batch.
	if got := tc.batch(17, 16); !got.Results[0].Replayed {
		t.Fatalf("expected replayed resend, got %+v", got.Results[0])
	}

	waitFor := func(cond func() bool, msg string) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatal(msg)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	decisions := func() uint64 { return reg.Counter("serve_decisions_total", "").Value() }
	waitFor(func() bool { return decisions() == fresh }, "decisions_total never settled")

	for _, name := range []string{
		MetricDecodeLatency, MetricQueueWaitLatency,
		MetricDecideLatency, MetricWriteLatency, MetricFrameLatency,
	} {
		h := reg.Histogram(name, "", obs.DefaultLatencyBuckets)
		waitFor(func() bool { return h.Count() == fresh },
			name+" count never reached decisions_total")
	}
	bs := reg.Histogram(MetricBatchSize, "", batchSizeBuckets)
	waitFor(func() bool { return uint64(bs.Sum()+0.5) == fresh },
		"sum(serve_batch_size) never reached decisions_total")
	if bs.Count() != 4 {
		t.Fatalf("batch_size observed %d frames, want 4 (replays never observe)", bs.Count())
	}
}

// TestConnWriterCoalesce unit-tests the reply writer: queued writes
// buffer until flush, the coalesced counter counts frames that joined a
// non-empty buffer, the byte threshold forces a flush, and write()
// (reader-path frames) flushes everything in order.
func TestConnWriterCoalesce(t *testing.T) {
	type chunk struct {
		n int // frames in one Write call
	}
	client, server := net.Pipe()
	defer client.Close()
	got := make(chan chunk, 16)
	go func() {
		buf := make([]byte, 1<<16)
		for {
			n, err := server.Read(buf)
			if err != nil {
				close(got)
				return
			}
			got <- chunk{n: bytes.Count(buf[:n], []byte("\n"))}
		}
	}()

	reg := obs.NewRegistry()
	coalesced := reg.Counter("serve_coalesced_writes_total", "")
	w := newConnWriter(client, time.Second, 1<<20, time.Hour, coalesced)
	defer w.close()

	dec := func(seq uint64) *Frame { return &Frame{Type: FrameDecision, Seq: seq} }
	w.writeq(dec(1))
	w.writeq(dec(2))
	w.writeq(dec(3))
	if n := coalesced.Value(); n != 2 {
		t.Fatalf("coalesced counter %d after 3 queued frames, want 2", n)
	}
	w.flush()
	if c := <-got; c.n != 3 {
		t.Fatalf("flush wrote %d frames in one syscall, want 3", c.n)
	}

	// write() (reader-path) drains anything queued ahead of it, in order.
	w.writeq(dec(4))
	w.write(&Frame{Type: FramePong})
	if c := <-got; c.n != 2 {
		t.Fatalf("write() flushed %d frames, want 2 (queued + own)", c.n)
	}

	// Byte threshold: pick a limit one frame stays under but two cross,
	// so the second writeq flushes both in one syscall.
	one, err := EncodeFrame(dec(5))
	if err != nil {
		t.Fatal(err)
	}
	w2 := newConnWriter(client, time.Second, len(one)+1, time.Hour, coalesced)
	defer w2.close()
	w2.writeq(dec(5))
	w2.writeq(dec(6))
	if c := <-got; c.n != 2 {
		t.Fatalf("threshold flush wrote %d frames, want 2", c.n)
	}

	// Write-through mode (coalesce <= 0): every writeq is its own syscall.
	w3 := newConnWriter(client, time.Second, -1, time.Hour, coalesced)
	defer w3.close()
	before := coalesced.Value()
	w3.writeq(dec(7))
	if c := <-got; c.n != 1 {
		t.Fatalf("write-through batched %d frames", c.n)
	}
	if coalesced.Value() != before {
		t.Fatal("write-through counted a coalesced write")
	}
}
