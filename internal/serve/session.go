package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"semloc/internal/core"
	"semloc/internal/harness"
)

// SessionSnapshot is one session's slice of a daemon snapshot: the learner
// state plus the exactly-once bookkeeping (last applied seq and the replay
// cache), so a client that resends an acked-but-unanswered access after a
// restart gets the original decision replayed instead of double-training
// the learner.
type SessionSnapshot struct {
	ID      string             `json:"id"`
	LastSeq uint64             `json:"last_seq"`
	Replay  []ReplayEntry      `json:"replay,omitempty"`
	Learner *core.LearnerState `json:"learner"`
}

// ReplayEntry is one cached decision, keyed by the access seq it answered.
type ReplayEntry struct {
	Seq      uint64   `json:"seq"`
	Prefetch []uint64 `json:"prefetch,omitempty"`
	Shadow   []uint64 `json:"shadow,omitempty"`
}

// inboxItem is one access awaiting the session worker, together with the
// connection to answer on. The trailing fields carry per-frame timing when
// the server's tracer is enabled; with tracing off they stay zero and cost
// nothing (the item travels by value through a preallocated channel).
type inboxItem struct {
	fr   *Frame
	conn *connWriter

	arrival   time.Time     // frame fully decoded; inbox queue-wait starts here
	decodeDur time.Duration // DecodeFrame cost, measured on the reader
	spanStart time.Duration // span-epoch offset of decode start (sampled only)
	sampled   bool          // this request's span is recorded
}

// session is one client stream's server-side state: a learner, a bounded
// inbox drained by a dedicated worker goroutine, the exactly-once seq
// bookkeeping, and attachment to at most one connection at a time.
type session struct {
	id  string
	srv *Server

	// mu guards learner, lastSeq, replay, closed and inboxHW. The worker
	// holds it while processing; the snapshotter holds it while saving.
	mu      sync.Mutex
	learner *Learner
	lastSeq uint64
	replay  replayRing
	closed  bool
	// inboxHW is the deepest the bounded inbox ever got (serving stats).
	inboxHW int

	// Serving statistics (SessionStats). Atomics because degraded is
	// bumped from the connection reader while the worker runs.
	decisions atomic.Uint64
	degraded  atomic.Uint64
	replayedN atomic.Uint64

	inbox chan inboxItem
	done  chan struct{} // closed when the worker has exited

	// attached is the connection currently owning this session (nil when
	// detached). Guarded by attachMu, not mu: attachment changes must not
	// wait behind a long learner step.
	attachMu sync.Mutex
	attached *connWriter

	lastActive atomic.Int64 // unix nanos of the last touch
}

func newSession(id string, l *Learner, srv *Server) *session {
	s := &session{
		id:      id,
		srv:     srv,
		learner: l,
		inbox:   make(chan inboxItem, srv.cfg.InboxDepth),
		done:    make(chan struct{}),
	}
	s.replay.init(srv.cfg.ReplayDepth)
	s.touch()
	go s.work()
	return s
}

func (s *session) touch() { s.lastActive.Store(time.Now().UnixNano()) }

func (s *session) idleFor(now time.Time) time.Duration {
	return now.Sub(time.Unix(0, s.lastActive.Load()))
}

// attach makes conn the session's owner, stealing it from a previous
// connection if one is still attached (the common half-open case after a
// client-side reconnect: the new connection wins, writes to the old one
// fail and its reader exits on its own deadline).
func (s *session) attach(conn *connWriter) (lastSeq uint64) {
	s.attachMu.Lock()
	s.attached = conn
	s.attachMu.Unlock()
	s.touch()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeq
}

// detach releases the session if conn still owns it.
func (s *session) detach(conn *connWriter) {
	s.attachMu.Lock()
	if s.attached == conn {
		s.attached = nil
	}
	s.attachMu.Unlock()
}

// enqueueResult classifies an enqueue attempt.
type enqueueResult int

const (
	enqueueOK enqueueResult = iota
	// enqueueFull: the bounded inbox is at capacity — the caller sheds
	// load with a degraded fallback decision instead of blocking.
	enqueueFull
	// enqueueClosed: the session expired or the daemon is draining.
	enqueueClosed
)

// enqueue offers one access to the worker without ever blocking the
// connection reader.
func (s *session) enqueue(it inboxItem) enqueueResult {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return enqueueClosed
	}
	select {
	case s.inbox <- it:
		if n := len(s.inbox); n > s.inboxHW {
			s.inboxHW = n
		}
		s.mu.Unlock()
		return enqueueOK
	default:
		s.mu.Unlock()
		return enqueueFull
	}
}

// stats snapshots the session's serving statistics.
func (s *session) stats() SessionStats {
	s.attachMu.Lock()
	attached := s.attached != nil
	s.attachMu.Unlock()
	s.mu.Lock()
	lastSeq, hw := s.lastSeq, s.inboxHW
	s.mu.Unlock()
	return SessionStats{
		ID:             s.id,
		Decisions:      s.decisions.Load(),
		Degraded:       s.degraded.Load(),
		Replayed:       s.replayedN.Load(),
		InboxHighWater: hw,
		LastSeq:        lastSeq,
		Attached:       attached,
	}
}

// close stops the worker after it drains everything already accepted, and
// waits for it to exit. Idempotent.
func (s *session) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.closed = true
	close(s.inbox)
	s.mu.Unlock()
	<-s.done
}

// work is the session's single worker goroutine: it serializes all
// learner access, applies the exactly-once seq discipline, and answers on
// the item's connection. A panic in the learner is contained to this
// session: the panic is converted to a typed error, the session is marked
// closed, and every queued client gets an error frame instead of silence.
func (s *session) work() {
	defer close(s.done)
	for it := range s.inbox {
		if g := s.srv.gate; g != nil {
			<-g
		}
		err := harness.Safely(func() error {
			s.process(it)
			return nil
		})
		s.srv.inflight.Add(-1)
		if err == nil {
			continue
		}
		// The session is poisoned: mark it closed so no further enqueues
		// land, close the inbox ourselves (close() may not have run), fail
		// the queued remainder, and exit. Never call s.close() here — it
		// waits on done, which this goroutine owns.
		s.mu.Lock()
		if !s.closed {
			s.closed = true
			close(s.inbox)
		}
		s.mu.Unlock()
		s.srv.noteSessionPanic(s, err)
		s.fail(it, err)
		for it := range s.inbox {
			s.fail(it, err)
			s.srv.inflight.Add(-1)
		}
		return
	}
}

// fail answers one queued item with a session-closed error.
func (s *session) fail(it inboxItem, err error) {
	it.conn.write(&Frame{
		Type: FrameError, Seq: it.fr.Seq,
		Code: CodeSessionClosed, Msg: fmt.Sprintf("session %s: %v", s.id, err),
	})
}

// process applies one access under the exactly-once discipline:
//
//	seq == lastSeq+k (k>=1): fresh — train the learner, cache and reply
//	seq <= lastSeq, cached:  duplicate — replay the original decision
//	seq <= lastSeq, evicted: too old — stale-seq error
func (s *session) process(it inboxItem) {
	fr := it.fr
	s.touch()
	if q := s.srv.panicOnSeq; q != 0 && fr.Seq == q {
		panic(fmt.Sprintf("injected fault at seq %d", q))
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.fail(it, fmt.Errorf("closed"))
		return
	}
	if fr.Seq <= s.lastSeq {
		entry, ok := s.replay.get(fr.Seq)
		s.mu.Unlock()
		if !ok {
			s.srv.staleTotal.Inc()
			it.conn.write(&Frame{
				Type: FrameError, Seq: fr.Seq, Code: CodeStaleSeq,
				Msg: fmt.Sprintf("seq %d already applied and evicted from the replay cache", fr.Seq),
			})
			return
		}
		s.srv.replayedTotal.Inc()
		s.replayedN.Add(1)
		it.conn.write(&Frame{
			Type: FrameDecision, Seq: fr.Seq,
			Prefetch: entry.Prefetch, Shadow: entry.Shadow, Replayed: true,
		})
		return
	}
	// Stage clocks (fresh decisions only, so every latency histogram's
	// count equals serve_decisions_total). decideStart doubles as the end
	// of the queue-wait stage: arrival → here covers the inbox wait plus
	// worker serialization.
	tr := s.srv.trace
	var decideStart time.Time
	if tr != nil {
		decideStart = time.Now()
	}
	dec := s.learner.Decide(fr)
	dec.Seq = fr.Seq
	s.lastSeq = fr.Seq
	s.replay.put(ReplayEntry{Seq: fr.Seq, Prefetch: dec.Prefetch, Shadow: dec.Shadow})
	s.mu.Unlock()
	s.srv.decisionsTotal.Inc()
	s.decisions.Add(1)
	if tr == nil {
		it.conn.write(dec)
		return
	}
	decided := time.Now()
	it.conn.write(dec)
	written := time.Now()
	tr.observe(s.id, fr.Seq, frameTiming{
		decode:    it.decodeDur,
		queueWait: decideStart.Sub(it.arrival),
		decide:    decided.Sub(decideStart),
		write:     written.Sub(decided),
	}, it.sampled, it.spanStart, len(s.inbox))
}

// snapshot captures the session under its lock.
func (s *session) snapshot() SessionSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionSnapshot{
		ID:      s.id,
		LastSeq: s.lastSeq,
		Replay:  s.replay.entries(),
		Learner: s.learner.Save(),
	}
}

// restoreSession rebuilds a session from a snapshot slice.
func restoreSession(snap SessionSnapshot, srv *Server) (*session, error) {
	l, err := RestoreLearner(snap.Learner)
	if err != nil {
		return nil, fmt.Errorf("serve: session %s: %w", snap.ID, err)
	}
	s := newSession(snap.ID, l, srv)
	s.lastSeq = snap.LastSeq
	for _, e := range snap.Replay {
		s.replay.put(e)
	}
	return s, nil
}

// replayRing caches the most recent decisions by seq for duplicate
// suppression, bounded and allocation-stable.
type replayRing struct {
	entries_ []ReplayEntry
	next     int
	filled   bool
}

func (r *replayRing) init(depth int) {
	if depth <= 0 {
		depth = 1
	}
	r.entries_ = make([]ReplayEntry, depth)
}

func (r *replayRing) put(e ReplayEntry) {
	r.entries_[r.next] = e
	r.next++
	if r.next == len(r.entries_) {
		r.next = 0
		r.filled = true
	}
}

func (r *replayRing) get(seq uint64) (ReplayEntry, bool) {
	for i := range r.entries_ {
		if r.entries_[i].Seq == seq && seq != 0 {
			return r.entries_[i], true
		}
	}
	return ReplayEntry{}, false
}

// entries returns the cached decisions in ascending seq order (snapshot
// determinism).
func (r *replayRing) entries() []ReplayEntry {
	var out []ReplayEntry
	for i := range r.entries_ {
		if r.entries_[i].Seq != 0 {
			out = append(out, r.entries_[i])
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Seq < out[j-1].Seq; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
