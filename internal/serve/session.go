package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"semloc/internal/core"
	"semloc/internal/harness"
)

// SessionSnapshot is one session's slice of a daemon snapshot: the learner
// state plus the exactly-once bookkeeping (last applied seq and the replay
// cache), so a client that resends an acked-but-unanswered access after a
// restart gets the original decision replayed instead of double-training
// the learner.
type SessionSnapshot struct {
	ID      string             `json:"id"`
	LastSeq uint64             `json:"last_seq"`
	Replay  []ReplayEntry      `json:"replay,omitempty"`
	Learner *core.LearnerState `json:"learner"`
}

// ReplayEntry is one cached decision, keyed by the access seq it answered.
type ReplayEntry struct {
	Seq      uint64   `json:"seq"`
	Prefetch []uint64 `json:"prefetch,omitempty"`
	Shadow   []uint64 `json:"shadow,omitempty"`
}

// inboxItem is one access awaiting the session worker, together with the
// connection to answer on. The trailing fields carry per-frame timing when
// the server's tracer is enabled; with tracing off they stay zero and cost
// nothing (the item travels by value through a preallocated channel).
type inboxItem struct {
	fr   *Frame
	conn *connWriter

	arrival   time.Time     // frame fully decoded; inbox queue-wait starts here
	decodeDur time.Duration // DecodeFrame cost, measured on the reader
	spanStart time.Duration // span-epoch offset of decode start (sampled only)
	sampled   bool          // this request's span is recorded
}

// session is one client stream's server-side state: a learner, a bounded
// inbox drained by a dedicated worker goroutine, the exactly-once seq
// bookkeeping, and attachment to at most one connection at a time.
type session struct {
	id  string
	srv *Server

	// mu guards learner, lastSeq, replay, closed and inboxHW. The worker
	// holds it while processing; the snapshotter holds it while saving.
	mu      sync.Mutex
	learner *Learner
	lastSeq uint64
	replay  replayRing
	closed  bool
	// inboxHW is the deepest the bounded inbox ever got (serving stats).
	inboxHW int

	// Serving statistics (SessionStats). Atomics because degraded is
	// bumped from the connection reader while the worker runs.
	decisions atomic.Uint64
	degraded  atomic.Uint64
	replayedN atomic.Uint64

	inbox chan inboxItem
	done  chan struct{} // closed when the worker has exited

	// attached is the connection currently owning this session (nil when
	// detached). Guarded by attachMu, not mu: attachment changes must not
	// wait behind a long learner step.
	attachMu sync.Mutex
	attached *connWriter

	lastActive atomic.Int64 // unix nanos of the last touch
}

func newSession(id string, l *Learner, srv *Server) *session {
	s := &session{
		id:      id,
		srv:     srv,
		learner: l,
		inbox:   make(chan inboxItem, srv.cfg.InboxDepth),
		done:    make(chan struct{}),
	}
	s.replay.init(srv.cfg.ReplayDepth)
	s.touch()
	go s.work()
	return s
}

func (s *session) touch() { s.lastActive.Store(time.Now().UnixNano()) }

func (s *session) idleFor(now time.Time) time.Duration {
	return now.Sub(time.Unix(0, s.lastActive.Load()))
}

// attach makes conn the session's owner, stealing it from a previous
// connection if one is still attached (the common half-open case after a
// client-side reconnect: the new connection wins, writes to the old one
// fail and its reader exits on its own deadline).
func (s *session) attach(conn *connWriter) (lastSeq uint64) {
	s.attachMu.Lock()
	s.attached = conn
	s.attachMu.Unlock()
	s.touch()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSeq
}

// detach releases the session if conn still owns it.
func (s *session) detach(conn *connWriter) {
	s.attachMu.Lock()
	if s.attached == conn {
		s.attached = nil
	}
	s.attachMu.Unlock()
}

// enqueueResult classifies an enqueue attempt.
type enqueueResult int

const (
	enqueueOK enqueueResult = iota
	// enqueueFull: the bounded inbox is at capacity — the caller sheds
	// load with a degraded fallback decision instead of blocking.
	enqueueFull
	// enqueueClosed: the session expired or the daemon is draining.
	enqueueClosed
)

// enqueue offers one access to the worker without ever blocking the
// connection reader.
func (s *session) enqueue(it inboxItem) enqueueResult {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return enqueueClosed
	}
	select {
	case s.inbox <- it:
		if n := len(s.inbox); n > s.inboxHW {
			s.inboxHW = n
		}
		s.mu.Unlock()
		return enqueueOK
	default:
		s.mu.Unlock()
		return enqueueFull
	}
}

// stats snapshots the session's serving statistics, including the
// learner's health snapshot (taken under the session lock, so it is
// always consistent with a decision boundary — never mid-access).
func (s *session) stats() SessionStats {
	s.attachMu.Lock()
	attached := s.attached != nil
	s.attachMu.Unlock()
	s.mu.Lock()
	lastSeq, hw := s.lastSeq, s.inboxHW
	var lh *core.LearnerHealth
	if !s.closed {
		h := s.learner.Health()
		lh = &h
	}
	s.mu.Unlock()
	return SessionStats{
		ID:             s.id,
		Decisions:      s.decisions.Load(),
		Degraded:       s.degraded.Load(),
		Replayed:       s.replayedN.Load(),
		InboxHighWater: hw,
		LastSeq:        lastSeq,
		Attached:       attached,
		Learner:        lh,
	}
}

// explain builds the session's live learner-introspection report: the
// health snapshot plus the topK hottest contexts, captured under the
// session lock (so a concurrent worker never mutates the CST mid-scan).
// Returns nil when the session is closed.
func (s *session) explain(topK int) *ExplainReport {
	if topK <= 0 {
		topK = DefaultExplainContexts
	}
	if topK > MaxExplainContexts {
		topK = MaxExplainContexts
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	return &ExplainReport{
		Session:  s.id,
		Health:   s.learner.Health(),
		Contexts: s.learner.Explain(topK),
	}
}

// close stops the worker after it drains everything already accepted, and
// waits for it to exit. Idempotent.
func (s *session) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.closed = true
	close(s.inbox)
	s.mu.Unlock()
	<-s.done
}

// work is the session's single worker goroutine: it serializes all
// learner access, applies the exactly-once seq discipline, and answers on
// the item's connection. A panic in the learner is contained to this
// session: the panic is converted to a typed error, the session is marked
// closed, and every queued client gets an error frame instead of silence.
func (s *session) work() {
	defer close(s.done)
	for it := range s.inbox {
		if g := s.srv.gate; g != nil {
			<-g
		}
		n := inflightCost(it.fr)
		err := harness.Safely(func() error {
			s.process(it)
			return nil
		})
		s.srv.inflight.Add(-n)
		if err == nil {
			s.srv.putFrame(it.fr)
			continue
		}
		// The session is poisoned: mark it closed so no further enqueues
		// land, close the inbox ourselves (close() may not have run), fail
		// the queued remainder, and exit. Never call s.close() here — it
		// waits on done, which this goroutine owns.
		s.mu.Lock()
		if !s.closed {
			s.closed = true
			close(s.inbox)
		}
		s.mu.Unlock()
		s.srv.noteSessionPanic(s, err)
		s.fail(it, err)
		s.srv.putFrame(it.fr)
		for it := range s.inbox {
			s.fail(it, err)
			s.srv.inflight.Add(-inflightCost(it.fr))
			s.srv.putFrame(it.fr)
		}
		return
	}
}

// inflightCost is how many accesses a queued frame holds against the
// global in-flight budget: a batch counts each access.
func inflightCost(fr *Frame) int64 {
	if fr.Type == FrameBatch {
		return int64(len(fr.Accesses))
	}
	return 1
}

// fail answers one queued item with a session-closed error.
func (s *session) fail(it inboxItem, err error) {
	seq := it.fr.Seq
	if it.fr.Type == FrameBatch && len(it.fr.Accesses) > 0 {
		seq = it.fr.Accesses[0].Seq
	}
	it.conn.write(&Frame{
		Type: FrameError, Seq: seq,
		Code: CodeSessionClosed, Msg: fmt.Sprintf("session %s: %v", s.id, err),
	})
}

// process applies one access under the exactly-once discipline:
//
//	seq == lastSeq+k (k>=1): fresh — train the learner, cache and reply
//	seq <= lastSeq, cached:  duplicate — replay the original decision
//	seq <= lastSeq, evicted: too old — stale-seq error
func (s *session) process(it inboxItem) {
	if it.fr.Type == FrameBatch {
		s.processBatch(it)
		return
	}
	fr := it.fr
	s.touch()
	if q := s.srv.panicOnSeq; q != 0 && fr.Seq == q {
		panic(fmt.Sprintf("injected fault at seq %d", q))
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.fail(it, fmt.Errorf("closed"))
		return
	}
	if fr.Seq <= s.lastSeq {
		entry, ok := s.replay.get(fr.Seq)
		s.mu.Unlock()
		if !ok {
			s.srv.staleTotal.Inc()
			it.conn.write(&Frame{
				Type: FrameError, Seq: fr.Seq, Code: CodeStaleSeq,
				Msg: fmt.Sprintf("seq %d already applied and evicted from the replay cache", fr.Seq),
			})
			return
		}
		s.srv.replayedTotal.Inc()
		s.replayedN.Add(1)
		it.conn.write(&Frame{
			Type: FrameDecision, Seq: fr.Seq,
			Prefetch: entry.Prefetch, Shadow: entry.Shadow, Replayed: true,
		})
		return
	}
	// Stage clocks (fresh decisions only, so every latency histogram's
	// count equals serve_decisions_total). decideStart doubles as the end
	// of the queue-wait stage: arrival → here covers the inbox wait plus
	// worker serialization.
	tr := s.srv.trace
	var decideStart time.Time
	if tr != nil {
		decideStart = time.Now()
	}
	dec := s.learner.Decide(fr)
	dec.Seq = fr.Seq
	s.lastSeq = fr.Seq
	s.replay.put(ReplayEntry{Seq: fr.Seq, Prefetch: dec.Prefetch, Shadow: dec.Shadow})
	s.mu.Unlock()
	s.srv.decisionsTotal.Inc()
	s.decisions.Add(1)
	if tr == nil {
		s.reply(it.conn, dec)
		return
	}
	decided := time.Now()
	s.reply(it.conn, dec)
	written := time.Now()
	tr.observe(s.id, fr.Seq, frameTiming{
		decode:    it.decodeDur,
		queueWait: decideStart.Sub(it.arrival),
		decide:    decided.Sub(decideStart),
		write:     written.Sub(decided),
	}, it.sampled, it.spanStart, len(s.inbox))
}

// reply sends a worker-produced decision through the connection's
// coalescing buffer, flushing when the inbox is idle (a lockstep client
// is waiting on exactly this reply) and otherwise letting the writer's
// byte/deadline policy batch the syscall with the next replies.
func (s *session) reply(conn *connWriter, f *Frame) {
	conn.writeq(f)
	if len(s.inbox) == 0 {
		conn.flush()
	} else {
		conn.armFlush()
	}
}

// processBatch applies one negotiated batch under a single lock hold and
// a single inbox hop: per access the same exactly-once discipline as
// process (fresh / replayed / stale), with the whole fresh tail cached as
// one replay-ring span so a resent batch after reconnect splits into
// Replayed items and (if the span was evicted) per-item stale-seq codes.
// Holding s.mu across the batch means snapshots only ever observe
// batch-aligned learner state — a restore never lands mid-batch.
func (s *session) processBatch(it inboxItem) {
	fr := it.fr
	s.touch()
	if q := s.srv.panicOnSeq; q != 0 {
		first, last := fr.Accesses[0].Seq, fr.Accesses[len(fr.Accesses)-1].Seq
		if first <= q && q <= last {
			panic(fmt.Sprintf("injected fault at seq %d", q))
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.fail(it, fmt.Errorf("closed"))
		return
	}
	tr := s.srv.trace
	var decideStart time.Time
	if tr != nil {
		decideStart = time.Now()
	}
	out := &Frame{Type: FrameBatch, Results: make([]BatchDecision, 0, len(fr.Accesses))}
	var fresh, replayed, stale int
	for i := range fr.Accesses {
		a := &fr.Accesses[i]
		if a.Seq <= s.lastSeq {
			if entry, ok := s.replay.get(a.Seq); ok {
				replayed++
				out.Results = append(out.Results, BatchDecision{
					Seq: a.Seq, Prefetch: entry.Prefetch, Shadow: entry.Shadow, Replayed: true,
				})
			} else {
				stale++
				out.Results = append(out.Results, BatchDecision{Seq: a.Seq, Code: CodeStaleSeq})
			}
			continue
		}
		pf, sh := s.learner.DecideAccess(a)
		d := BatchDecision{Seq: a.Seq}
		if len(pf) > 0 {
			d.Prefetch = append([]uint64(nil), pf...)
		}
		if len(sh) > 0 {
			d.Shadow = append([]uint64(nil), sh...)
		}
		out.Results = append(out.Results, d)
		s.lastSeq = a.Seq
		fresh++
	}
	if fresh > 0 {
		span := make([]ReplayEntry, 0, fresh)
		for _, d := range out.Results[len(out.Results)-fresh:] {
			span = append(span, ReplayEntry{Seq: d.Seq, Prefetch: d.Prefetch, Shadow: d.Shadow})
		}
		s.replay.putSpan(span)
	}
	s.mu.Unlock()
	if fresh > 0 {
		s.srv.decisionsTotal.Add(uint64(fresh))
		s.decisions.Add(uint64(fresh))
	}
	if replayed > 0 {
		s.srv.replayedTotal.Add(uint64(replayed))
		s.replayedN.Add(uint64(replayed))
	}
	if stale > 0 {
		s.srv.staleTotal.Add(uint64(stale))
	}
	if tr == nil || fresh == 0 {
		s.reply(it.conn, out)
		return
	}
	decided := time.Now()
	s.reply(it.conn, out)
	written := time.Now()
	tr.observeBatch(s.id, fr.Accesses[0].Seq, len(fr.Accesses), fresh, frameTiming{
		decode:    it.decodeDur,
		queueWait: decideStart.Sub(it.arrival),
		decide:    decided.Sub(decideStart),
		write:     written.Sub(decided),
	}, it.sampled, it.spanStart, len(s.inbox))
}

// snapshot captures the session under its lock.
func (s *session) snapshot() SessionSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionSnapshot{
		ID:      s.id,
		LastSeq: s.lastSeq,
		Replay:  s.replay.entries(),
		Learner: s.learner.Save(),
	}
}

// restoreSession rebuilds a session from a snapshot slice. The snapshot
// stores the replay cache flat (ascending seqs); contiguous runs are
// regrouped into spans so the restored ring keeps the same replay window
// the live ring had, whatever mix of batch sizes produced it.
func restoreSession(snap SessionSnapshot, srv *Server) (*session, error) {
	l, err := RestoreLearner(snap.Learner)
	if err != nil {
		return nil, fmt.Errorf("serve: session %s: %w", snap.ID, err)
	}
	s := newSession(snap.ID, l, srv)
	s.lastSeq = snap.LastSeq
	for i := 0; i < len(snap.Replay); {
		j := i + 1
		for j < len(snap.Replay) && snap.Replay[j].Seq == snap.Replay[j-1].Seq+1 {
			j++
		}
		s.replay.putSpan(append([]ReplayEntry(nil), snap.Replay[i:j]...))
		i = j
	}
	return s, nil
}

// replayRing caches the most recent decisions for duplicate suppression:
// a bounded ring of spans, each span one contiguous seq range (a batch's
// fresh decisions, or a single decision). One slot per served frame keeps
// the lookup and eviction cost independent of batch size, and a resent
// batch that straddles the ring edge naturally splits into the entries
// still cached and the seqs already evicted.
type replayRing struct {
	spans []replaySpan
	next  int
}

// replaySpan is one cached contiguous decision run; empty slots hold nil.
type replaySpan struct {
	entries []ReplayEntry
}

func (r *replayRing) init(depth int) {
	if depth <= 0 {
		depth = 1
	}
	r.spans = make([]replaySpan, depth)
}

func (r *replayRing) put(e ReplayEntry) {
	r.putSpan([]ReplayEntry{e})
}

// putSpan caches one contiguous run (ascending seqs), taking ownership of
// es and evicting the oldest span.
func (r *replayRing) putSpan(es []ReplayEntry) {
	if len(es) == 0 {
		return
	}
	r.spans[r.next] = replaySpan{entries: es}
	r.next++
	if r.next == len(r.spans) {
		r.next = 0
	}
}

func (r *replayRing) get(seq uint64) (ReplayEntry, bool) {
	if seq == 0 {
		return ReplayEntry{}, false
	}
	for i := range r.spans {
		es := r.spans[i].entries
		if len(es) == 0 {
			continue
		}
		if first := es[0].Seq; seq >= first && seq-first < uint64(len(es)) {
			return es[seq-first], true
		}
	}
	return ReplayEntry{}, false
}

// entries returns the cached decisions in ascending seq order (snapshot
// determinism): walking slots oldest-first flattens to ascending seqs
// because spans are only ever appended with increasing ranges.
func (r *replayRing) entries() []ReplayEntry {
	var out []ReplayEntry
	for k := 0; k < len(r.spans); k++ {
		out = append(out, r.spans[(r.next+k)%len(r.spans)].entries...)
	}
	return out
}
