package serve

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"semloc/internal/core"
)

// buildSnapshot trains a learner a little and wraps it as a one-session
// snapshot, so tests exercise non-trivial table state.
func buildSnapshot(t *testing.T, id string, accesses int) *Snapshot {
	t.Helper()
	l, err := NewLearner(core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var last *Frame
	for i := 0; i < accesses; i++ {
		fr := &Frame{Type: FrameAccess, Seq: uint64(i + 1),
			PC: 0x400000, Addr: uint64(0x10000 + i*64)}
		last = l.Decide(fr)
		last.Seq = fr.Seq
	}
	ss := SessionSnapshot{ID: id, LastSeq: uint64(accesses), Learner: l.Save()}
	if last != nil {
		ss.Replay = []ReplayEntry{{Seq: ss.LastSeq, Prefetch: last.Prefetch, Shadow: last.Shadow}}
	}
	return &Snapshot{Sessions: []SessionSnapshot{ss}}
}

func TestSnapshotSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	snap := buildSnapshot(t, "sess-a", 500)

	if err := SaveSnapshot(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(snap)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Fatal("snapshot drifted through save/load")
	}

	// Saving the loaded snapshot again must produce identical file bytes
	// (rename-on-write means no timestamps or nondeterminism in the file).
	path2 := filepath.Join(dir, "state2.snap")
	if err := SaveSnapshot(path2, got); err != nil {
		t.Fatal(err)
	}
	f1, _ := os.ReadFile(path)
	f2, _ := os.ReadFile(path2)
	if string(f1) != string(f2) {
		t.Fatal("snapshot file bytes drifted through a save/load/save cycle")
	}
}

func TestSnapshotMissingFileIsColdStart(t *testing.T) {
	got, err := LoadSnapshot(filepath.Join(t.TempDir(), "nope.snap"))
	if err != nil || got != nil {
		t.Fatalf("missing snapshot: got %v, %v; want nil, nil", got, err)
	}
}

func TestSnapshotDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	if err := SaveSnapshot(path, buildSnapshot(t, "s", 100)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	flip := func(name string, mutate func([]byte) []byte) {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, mutate(append([]byte(nil), raw...)), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadSnapshot(p); err == nil {
			t.Fatalf("%s: corrupt snapshot loaded", name)
		}
	}
	// Flip one byte inside the payload: checksum must catch it. Find a
	// digit in the payload region and change it.
	flip("bitflip.snap", func(b []byte) []byte {
		for i := len(b) / 2; i < len(b); i++ {
			if b[i] >= '1' && b[i] <= '8' {
				b[i]++
				break
			}
		}
		return b
	})
	// Truncate: envelope no longer parses.
	flip("trunc.snap", func(b []byte) []byte { return b[:len(b)/2] })
	// Garbage.
	flip("garbage.snap", func(b []byte) []byte { return []byte("not a snapshot") })
}

func TestSnapshotRejectsBadLearnerState(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	snap := buildSnapshot(t, "s", 10)
	snap.Sessions[0].Learner.Schema = 99
	if err := SaveSnapshot(path, snap); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(path); err == nil {
		t.Fatal("snapshot with bad learner schema loaded")
	}
}

func TestSnapshotAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")
	if err := SaveSnapshot(path, buildSnapshot(t, "one", 50)); err != nil {
		t.Fatal(err)
	}
	if err := SaveSnapshot(path, buildSnapshot(t, "two", 80)); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sessions) != 1 || got.Sessions[0].ID != "two" {
		t.Fatalf("second save not visible: %+v", got.Sessions)
	}
	// No temp litter left behind.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("snapshot dir has %d entries, want just the snapshot", len(ents))
	}
}
