package serve

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"semloc/internal/obs"
)

// logSink captures Logf lines concurrently (the session worker logs slow
// requests from its own goroutine).
type logSink struct {
	mu    sync.Mutex
	lines []string
}

func (ls *logSink) logf(format string, args ...any) {
	ls.mu.Lock()
	ls.lines = append(ls.lines, fmt.Sprintf(format, args...))
	ls.mu.Unlock()
}

func (ls *logSink) all() []string {
	ls.mu.Lock()
	defer ls.mu.Unlock()
	return append([]string(nil), ls.lines...)
}

// TestServerTracingEndToEnd drives an instrumented daemon through fresh
// decisions, a replay and a stats exchange, and checks the whole tracing
// surface: the five serve_*_latency histograms (whose counts must equal
// serve_decisions_total exactly — replays and duplicates never observe),
// sampled CatServe spans with the four-stage phase breakdown, the slow-
// request log, and the per-session stats in both the stats frame and
// SessionStatsAll.
func TestServerTracingEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	spans := obs.NewSpanRecorder()
	var sink logSink
	s := startServer(t, Config{
		Reg: reg,
		Trace: &TraceConfig{
			Spans:         spans,
			SampleEvery:   4,
			SlowThreshold: time.Nanosecond, // everything is "slow"
			Logf:          sink.logf,
		},
	})
	tc := dialServer(t, s)
	tc.hello("traced")

	const n = 64
	for i := uint64(1); i <= n; i++ {
		if got := tc.access(i, accessAddr(i)); got.Type != FrameDecision || got.Seq != i {
			t.Fatalf("seq %d: %+v", i, got)
		}
	}
	// A duplicate replay and a garbage frame: neither may observe latency.
	if dup := tc.access(n, accessAddr(n)); !dup.Replayed {
		t.Fatalf("duplicate not replayed: %+v", dup)
	}

	if got := s.decisionsTotal.Value(); got != n {
		t.Fatalf("decisions_total %d, want %d", got, n)
	}
	for _, name := range []string{
		MetricDecodeLatency, MetricQueueWaitLatency, MetricDecideLatency,
		MetricWriteLatency, MetricFrameLatency,
	} {
		h := reg.Histogram(name, "", obs.DefaultLatencyBuckets)
		if got := h.Count(); got != n {
			t.Fatalf("%s count %d, want %d (must equal serve_decisions_total)", name, got, n)
		}
	}

	// Sampled spans: every 4th fresh decision, category serve, with the
	// four consecutive stage phases covering the span exactly.
	got := spans.Spans()
	if len(got) != n/4 {
		t.Fatalf("%d spans recorded, want %d", len(got), n/4)
	}
	wantPhases := []string{obs.PhaseDecode, obs.PhaseQueueWait, obs.PhaseDecide, obs.PhaseWrite}
	for _, sp := range got {
		if sp.Cat != obs.CatServe || sp.Workload != "traced" {
			t.Fatalf("span %+v: want cat %q session traced", sp, obs.CatServe)
		}
		if sp.Point%4 != 0 {
			t.Fatalf("span for seq %d: sampling should pick every 4th", sp.Point)
		}
		if len(sp.Phases) != 4 {
			t.Fatalf("span seq %d has %d phases", sp.Point, len(sp.Phases))
		}
		at := sp.Start
		var sum time.Duration
		for i, p := range sp.Phases {
			if p.Name != wantPhases[i] {
				t.Fatalf("span seq %d phase %d: %q, want %q", sp.Point, i, p.Name, wantPhases[i])
			}
			if p.Start != at {
				t.Fatalf("span seq %d phase %q starts at %v, want contiguous %v", sp.Point, p.Name, p.Start, at)
			}
			at += p.Dur
			sum += p.Dur
		}
		if sum != sp.Dur {
			t.Fatalf("span seq %d: phases sum to %v, span dur %v", sp.Point, sum, sp.Dur)
		}
	}

	// Slow log: threshold 1ns means every fresh decision logged a line with
	// the stage breakdown.
	lines := sink.all()
	if len(lines) != n {
		t.Fatalf("%d slow lines, want %d", len(lines), n)
	}
	for _, want := range []string{"slow request", "session=traced", "decode=", "queue_wait=", "decide=", "write=", "inbox_len="} {
		if !strings.Contains(lines[0], want) {
			t.Fatalf("slow line %q missing %q", lines[0], want)
		}
	}

	// Stats frame: request carries no payload, reply carries the session's
	// counters.
	tc.send(&Frame{Type: FrameStats})
	st := tc.recv()
	if st.Type != FrameStats || st.Stats == nil {
		t.Fatalf("stats reply: %+v", st)
	}
	if st.Stats.ID != "traced" || st.Stats.Decisions != n || st.Stats.Replayed != 1 ||
		st.Stats.LastSeq != n || !st.Stats.Attached {
		t.Fatalf("session stats %+v", st.Stats)
	}

	// The debug aggregation view agrees.
	all := s.SessionStatsAll()
	if len(all) != 1 || all[0].Decisions != n || all[0].ID != "traced" {
		t.Fatalf("SessionStatsAll: %+v", all)
	}
}

// TestServerStatsBeforeHello: a stats frame outside a session is a
// protocol error, like any other pre-handshake traffic.
func TestServerStatsBeforeHello(t *testing.T) {
	s := startServer(t, Config{})
	tc := dialServer(t, s)
	tc.send(&Frame{Type: FrameStats})
	if got := tc.recv(); got.Type != FrameError || got.Code != CodeProtocol {
		t.Fatalf("stats before hello: %+v", got)
	}
}

// TestServerUninstrumentedRecordsNothing pins the disabled contract: with
// Config.Trace nil, serving registers no latency histograms and records no
// spans — the registry holds only the server's counters.
func TestServerUninstrumentedRecordsNothing(t *testing.T) {
	reg := obs.NewRegistry()
	s := startServer(t, Config{Reg: reg})
	tc := dialServer(t, s)
	tc.hello("plain")
	for i := uint64(1); i <= 16; i++ {
		tc.access(i, accessAddr(i))
	}
	if s.trace != nil {
		t.Fatal("tracer built despite nil TraceConfig")
	}
	m := reg.ExpvarMap()
	for _, name := range []string{
		MetricDecodeLatency, MetricQueueWaitLatency, MetricDecideLatency,
		MetricWriteLatency, MetricFrameLatency,
	} {
		if _, ok := m[name]; ok {
			t.Fatalf("%s registered on the uninstrumented path", name)
		}
	}
}

// TestTracerDisabledZeroAlloc is the alloc guard for the disabled serving
// hot path: every tracing seam the per-frame code touches when Config.Trace
// is nil — the nil-tracer sample call and the zero-valued inboxItem timing
// fields — must cost zero allocations. The enabled-but-unsampled steady
// state (histogram observes only, no span, no slow line) must also stay
// allocation-free, since that is the per-frame cost of an instrumented
// daemon.
func TestTracerDisabledZeroAlloc(t *testing.T) {
	var nilTr *tracer
	if n := testing.AllocsPerRun(500, func() {
		sampled, off := nilTr.sample(0)
		if sampled || off != 0 {
			t.Fatal("nil tracer sampled")
		}
		it := inboxItem{}
		_ = it
	}); n != 0 {
		t.Fatalf("disabled tracing path allocates %.1f/op, want 0", n)
	}

	reg := obs.NewRegistry()
	tr := newTracer(&TraceConfig{
		Spans:       obs.NewSpanRecorder(),
		SampleEvery: 1 << 30, // never sample within the run
	}, reg, func(string, ...any) {})
	ft := frameTiming{decode: 100, queueWait: 200, decide: 300, write: 400}
	if n := testing.AllocsPerRun(500, func() {
		sampled, off := tr.sample(time.Microsecond)
		tr.observe("s", 1, ft, sampled, off, 0)
	}); n != 0 {
		t.Fatalf("enabled unsampled observe allocates %.1f/op, want 0", n)
	}
}

// TestReplayRingExactBoundary pins the replay-window edge: with depth D and
// N > D decisions applied, seq N-D+1 (the oldest still cached) replays,
// while seq N-D (one past the ring edge) is stale.
func TestReplayRingExactBoundary(t *testing.T) {
	const depth, n = 8, 20
	s := startServer(t, Config{ReplayDepth: depth})
	tc := dialServer(t, s)
	tc.hello("edge")
	for i := uint64(1); i <= n; i++ {
		tc.access(i, accessAddr(i))
	}
	oldest := uint64(n - depth + 1) // 13: still in the ring
	if got := tc.access(oldest, accessAddr(oldest)); got.Type != FrameDecision || !got.Replayed {
		t.Fatalf("seq %d (ring edge): want replayed decision, got %+v", oldest, got)
	}
	evicted := oldest - 1 // 12: just evicted
	if got := tc.access(evicted, accessAddr(evicted)); got.Type != FrameError || got.Code != CodeStaleSeq {
		t.Fatalf("seq %d (past ring edge): want stale-seq, got %+v", evicted, got)
	}
	// The boundary probes didn't disturb the stream.
	if got := tc.access(n+1, accessAddr(n+1)); got.Type != FrameDecision || got.Seq != n+1 {
		t.Fatalf("stream desynced after boundary probes: %+v", got)
	}
}

// TestReplayRingUnit exercises the ring directly at its capacity edge:
// exactly depth entries all resolve; one more put evicts exactly the
// oldest.
func TestReplayRingUnit(t *testing.T) {
	var r replayRing
	r.init(4)
	for seq := uint64(1); seq <= 4; seq++ {
		r.put(ReplayEntry{Seq: seq, Prefetch: []uint64{seq * 64}})
	}
	for seq := uint64(1); seq <= 4; seq++ {
		e, ok := r.get(seq)
		if !ok || e.Prefetch[0] != seq*64 {
			t.Fatalf("seq %d missing from a full ring", seq)
		}
	}
	r.put(ReplayEntry{Seq: 5})
	if _, ok := r.get(1); ok {
		t.Fatal("oldest entry survived eviction at the ring edge")
	}
	for seq := uint64(2); seq <= 5; seq++ {
		if _, ok := r.get(seq); !ok {
			t.Fatalf("seq %d evicted early", seq)
		}
	}
	// Seq 0 never matches (the zero value marks an empty slot).
	if _, ok := r.get(0); ok {
		t.Fatal("ring matched the empty-slot sentinel")
	}
}
