package stats

import (
	"encoding/json"
	"fmt"
)

// histogramJSON is the wire form of Histogram: the bucket counts plus the
// redundant total, which UnmarshalJSON verifies so a hand-edited or
// truncated artifact fails loudly instead of skewing a figure.
type histogramJSON struct {
	Counts []uint64 `json:"counts"`
	Total  uint64   `json:"total"`
}

// MarshalJSON implements json.Marshaler, making histogram-bearing results
// (core.Metrics, sim.Result) persistable by the run artifacts exp.Runner
// writes.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{Counts: h.counts, Total: h.total})
}

// UnmarshalJSON implements json.Unmarshaler.
func (h *Histogram) UnmarshalJSON(b []byte) error {
	var w histogramJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	var sum uint64
	for _, c := range w.Counts {
		sum += c
	}
	if sum != w.Total {
		return fmt.Errorf("stats: histogram counts sum to %d, total says %d", sum, w.Total)
	}
	if len(w.Counts) == 0 {
		w.Counts = make([]uint64, 1)
	}
	h.counts = w.Counts
	h.total = w.Total
	return nil
}
