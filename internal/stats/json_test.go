package stats

import (
	"encoding/json"
	"testing"
)

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram(8)
	for _, v := range []int{0, 3, 3, 7, 12} { // 12 clamps into the top bucket
		h.Add(v)
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	back := NewHistogram(0)
	if err := json.Unmarshal(data, back); err != nil {
		t.Fatal(err)
	}
	if back.Total() != h.Total() || back.Max() != h.Max() {
		t.Fatalf("round trip changed shape: total %d/%d max %d/%d", back.Total(), h.Total(), back.Max(), h.Max())
	}
	for v := 0; v <= h.Max(); v++ {
		if back.Count(v) != h.Count(v) {
			t.Fatalf("bucket %d: %d != %d", v, back.Count(v), h.Count(v))
		}
	}
}

func TestHistogramJSONRejectsInconsistentTotal(t *testing.T) {
	h := NewHistogram(0)
	if err := json.Unmarshal([]byte(`{"counts":[1,2],"total":5}`), h); err == nil {
		t.Fatal("inconsistent total accepted")
	}
}
