// Package stats provides the small statistical toolkit the experiment
// harness needs: integer histograms, cumulative distributions, and the
// aggregate means used when reporting speedups and miss rates.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram counts occurrences of non-negative integer values (e.g. prefetch
// hit depths). Values beyond the configured maximum are clamped into the
// final overflow bucket so tail mass is never lost.
type Histogram struct {
	counts []uint64
	total  uint64
}

// NewHistogram creates a histogram covering values [0, max]; values above
// max land in the bucket for max.
func NewHistogram(max int) *Histogram {
	if max < 0 {
		max = 0
	}
	return &Histogram{counts: make([]uint64, max+1)}
}

// Add records one observation of v. Negative values clamp to 0.
func (h *Histogram) Add(v int) {
	if v < 0 {
		v = 0
	}
	if v >= len(h.counts) {
		v = len(h.counts) - 1
	}
	h.counts[v]++
	h.total++
}

// Reset clears all observations in place, keeping the bucket storage (the
// warm-up boundary and the run-scratch pool recycle histograms this way).
func (h *Histogram) Reset() {
	clear(h.counts)
	h.total = 0
}

// Clone returns an independent copy (used by learner-state snapshots so a
// live histogram cannot mutate a captured one).
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{counts: make([]uint64, len(h.counts)), total: h.total}
	copy(c.counts, h.counts)
	return c
}

// Count returns the number of observations equal to v (after clamping).
func (h *Histogram) Count(v int) uint64 {
	if v < 0 || v >= len(h.counts) {
		return 0
	}
	return h.counts[v]
}

// Total returns the number of observations.
func (h *Histogram) Total() uint64 { return h.total }

// Max returns the largest representable value (the overflow bucket index).
func (h *Histogram) Max() int { return len(h.counts) - 1 }

// CDF returns the cumulative distribution F(v) = P(X <= v) for each v in
// [0, Max]. An empty histogram yields all zeros.
func (h *Histogram) CDF() []float64 {
	out := make([]float64, len(h.counts))
	if h.total == 0 {
		return out
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		out[i] = float64(cum) / float64(h.total)
	}
	return out
}

// Fraction returns the fraction of observations in [lo, hi] inclusive.
func (h *Histogram) Fraction(lo, hi int) float64 {
	if h.total == 0 {
		return 0
	}
	if lo < 0 {
		lo = 0
	}
	if hi >= len(h.counts) {
		hi = len(h.counts) - 1
	}
	var sum uint64
	for i := lo; i <= hi; i++ {
		sum += h.counts[i]
	}
	return float64(sum) / float64(h.total)
}

// Mean returns the mean observed value (clamped values count as clamped).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var sum float64
	for v, c := range h.counts {
		sum += float64(v) * float64(c)
	}
	return sum / float64(h.total)
}

// Percentile returns the smallest v with CDF(v) >= p, for p in (0,1].
func (h *Histogram) Percentile(p float64) int {
	if h.total == 0 {
		return 0
	}
	target := p * float64(h.total)
	var cum float64
	for v, c := range h.counts {
		cum += float64(c)
		if cum >= target {
			return v
		}
	}
	return h.Max()
}

// Merge adds all observations of o into h. Histograms may differ in size;
// overflow clamps apply.
func (h *Histogram) Merge(o *Histogram) {
	for v, c := range o.counts {
		if c == 0 {
			continue
		}
		idx := v
		if idx >= len(h.counts) {
			idx = len(h.counts) - 1
		}
		h.counts[idx] += c
		h.total += c
	}
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. Non-positive entries are
// rejected with an error since a geometric mean is undefined for them.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: geomean of empty slice")
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geomean requires positive values, got %v", x)
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}

// HarmonicMean returns the harmonic mean of xs (used for aggregating rates).
func HarmonicMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: harmonic mean of empty slice")
	}
	var inv float64
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("stats: harmonic mean requires positive values, got %v", x)
		}
		inv += 1 / x
	}
	return float64(len(xs)) / inv, nil
}

// Median returns the median of xs (0 for empty input). xs is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
