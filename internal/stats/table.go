package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of labelled values and renders them as an aligned
// text table. The experiment harness uses it to print the same rows/series
// the paper's figures report.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row. Cells are formatted with %v; float64 cells use
// three decimal places.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows added so far.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.title)
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
