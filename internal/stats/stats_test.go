package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(10)
	h.Add(3)
	h.Add(3)
	h.Add(7)
	if h.Total() != 3 {
		t.Errorf("Total = %d, want 3", h.Total())
	}
	if h.Count(3) != 2 {
		t.Errorf("Count(3) = %d, want 2", h.Count(3))
	}
	if h.Count(0) != 0 {
		t.Errorf("Count(0) = %d, want 0", h.Count(0))
	}
}

func TestHistogramClamping(t *testing.T) {
	h := NewHistogram(5)
	h.Add(-3)
	h.Add(100)
	if h.Count(0) != 1 {
		t.Errorf("negative value should clamp to 0")
	}
	if h.Count(5) != 1 {
		t.Errorf("overflow should clamp to max bucket")
	}
	if h.Count(-1) != 0 || h.Count(99) != 0 {
		t.Errorf("out-of-range Count should be 0")
	}
}

func TestHistogramCDFMonotone(t *testing.T) {
	f := func(vals []uint8) bool {
		h := NewHistogram(64)
		for _, v := range vals {
			h.Add(int(v))
		}
		cdf := h.CDF()
		prev := 0.0
		for _, p := range cdf {
			if p < prev || p < 0 || p > 1.0000001 {
				return false
			}
			prev = p
		}
		if len(vals) > 0 && math.Abs(cdf[len(cdf)-1]-1) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramEmptyCDF(t *testing.T) {
	h := NewHistogram(4)
	for _, p := range h.CDF() {
		if p != 0 {
			t.Errorf("empty CDF should be all zero")
		}
	}
}

func TestHistogramFraction(t *testing.T) {
	h := NewHistogram(20)
	for i := 0; i < 10; i++ {
		h.Add(i)
	}
	if got := h.Fraction(0, 4); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("Fraction(0,4) = %v, want 0.5", got)
	}
	if got := h.Fraction(-5, 100); math.Abs(got-1) > 1e-9 {
		t.Errorf("Fraction clamped = %v, want 1", got)
	}
}

func TestHistogramMeanPercentile(t *testing.T) {
	h := NewHistogram(100)
	for i := 1; i <= 100; i++ {
		h.Add(i)
	}
	if m := h.Mean(); math.Abs(m-50.5) > 1e-9 {
		t.Errorf("Mean = %v, want 50.5", m)
	}
	if p := h.Percentile(0.5); p != 50 {
		t.Errorf("Percentile(0.5) = %d, want 50", p)
	}
	if p := h.Percentile(1.0); p != 100 {
		t.Errorf("Percentile(1.0) = %d, want 100", p)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(10)
	b := NewHistogram(20)
	a.Add(5)
	b.Add(15)
	b.Add(5)
	a.Merge(b)
	if a.Total() != 3 {
		t.Errorf("merged total = %d, want 3", a.Total())
	}
	if a.Count(10) != 1 { // 15 clamps into a's overflow bucket
		t.Errorf("overflow merge: Count(10) = %d, want 1", a.Count(10))
	}
	if a.Count(5) != 2 {
		t.Errorf("Count(5) = %d, want 2", a.Count(5))
	}
}

func TestMeans(t *testing.T) {
	xs := []float64{1, 2, 4}
	if m := Mean(xs); math.Abs(m-7.0/3) > 1e-9 {
		t.Errorf("Mean = %v", m)
	}
	g, err := GeoMean(xs)
	if err != nil || math.Abs(g-2) > 1e-9 {
		t.Errorf("GeoMean = %v, err=%v, want 2", g, err)
	}
	hm, err := HarmonicMean([]float64{1, 1, 1})
	if err != nil || math.Abs(hm-1) > 1e-9 {
		t.Errorf("HarmonicMean = %v, err=%v", hm, err)
	}
}

func TestMeanEdgeCases(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("GeoMean(nil) should error")
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Error("GeoMean with negative should error")
	}
	if _, err := HarmonicMean([]float64{0}); err == nil {
		t.Error("HarmonicMean with zero should error")
	}
}

func TestMedianMinMax(t *testing.T) {
	xs := []float64{5, 1, 3}
	if m := Median(xs); m != 3 {
		t.Errorf("Median = %v, want 3", m)
	}
	if m := Median([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Errorf("even Median = %v, want 2.5", m)
	}
	if xs[0] != 5 {
		t.Error("Median must not mutate input")
	}
	if Max(xs) != 5 || Min(xs) != 1 {
		t.Errorf("Max/Min wrong: %v %v", Max(xs), Min(xs))
	}
	if Max(nil) != 0 || Min(nil) != 0 || Median(nil) != 0 {
		t.Error("empty aggregates should be 0")
	}
}

func TestGeoMeanProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)/1000 + 0.001
		}
		g, err := GeoMean(xs)
		if err != nil {
			return false
		}
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 42)
	out := tb.String()
	want := "== demo ==\nname   value\n-----  -----\nalpha  1.500\nb      42\n"
	if out != want {
		t.Errorf("Render mismatch:\n%q\nwant\n%q", out, want)
	}
	if tb.Rows() != 2 {
		t.Errorf("Rows = %d, want 2", tb.Rows())
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "x")
	tb.AddRow("y")
	out := tb.String()
	if out != "x\n-\ny\n" {
		t.Errorf("Render = %q", out)
	}
}
