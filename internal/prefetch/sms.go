package prefetch

import (
	"semloc/internal/memmodel"
)

// SMS implements spatial memory streaming (Somogyi et al., ISCA 2006), the
// strongest competing prefetcher in the paper's evaluation. SMS learns the
// spatial footprint of code within fixed-size memory regions:
//
//   - An access to a region with no active generation becomes the trigger;
//     the generation is keyed by (trigger PC, trigger offset in region).
//   - While the generation is active in the accumulation table (AGT), the
//     bit for every line touched in the region is set.
//   - When the generation ends (the region's entry is evicted from the
//     AGT), the accumulated pattern is stored in the pattern history table
//     (PHT) under its key.
//   - A later trigger with a matching key streams prefetches for every
//     line in the recorded pattern.
//
// Table 2 scaling: 2K-entry PHT, 32-entry AGT, 32-entry filter table,
// 2 kB regions, ~20 kB total.
type SMS struct {
	cfg            SMSConfig
	filter         []smsGen // trigger seen, single access so far
	accum          []smsGen // active generations accumulating patterns
	pht            []smsPattern
	phtBits        uint
	linesPerRegion uint
	clock          uint64
}

// SMSConfig parameterizes SMS.
type SMSConfig struct {
	// RegionSize is the spatial region size in bytes (Table 2: 2 kB).
	RegionSize int
	// FilterEntries and AGTEntries size the two small tables (Table 2: 32).
	FilterEntries, AGTEntries int
	// PHTEntries sizes the pattern history table (Table 2: 2K).
	PHTEntries int
}

// DefaultSMSConfig returns the Table 2 configuration.
func DefaultSMSConfig() SMSConfig {
	return SMSConfig{RegionSize: 2048, FilterEntries: 32, AGTEntries: 32, PHTEntries: 2048}
}

type smsGen struct {
	region  uint64 // region number
	key     uint64 // trigger PC + offset
	pattern uint64 // bit per line in region
	lru     uint64
	valid   bool
}

type smsPattern struct {
	key     uint64
	pattern uint64
	valid   bool
}

// NewSMS creates an SMS prefetcher. Zero-value fields default to Table 2.
func NewSMS(cfg SMSConfig) *SMS {
	def := DefaultSMSConfig()
	if cfg.RegionSize == 0 {
		cfg.RegionSize = def.RegionSize
	}
	if cfg.FilterEntries == 0 {
		cfg.FilterEntries = def.FilterEntries
	}
	if cfg.AGTEntries == 0 {
		cfg.AGTEntries = def.AGTEntries
	}
	if cfg.PHTEntries == 0 {
		cfg.PHTEntries = def.PHTEntries
	}
	phtSize := 1
	for phtSize < cfg.PHTEntries {
		phtSize <<= 1
	}
	lines := uint(cfg.RegionSize / memmodel.LineSize)
	if lines > 64 {
		lines = 64 // pattern is one uint64
	}
	return &SMS{
		cfg:            cfg,
		filter:         make([]smsGen, cfg.FilterEntries),
		accum:          make([]smsGen, cfg.AGTEntries),
		pht:            make([]smsPattern, phtSize),
		phtBits:        log2(phtSize),
		linesPerRegion: lines,
	}
}

// Name implements Prefetcher.
func (*SMS) Name() string { return "sms" }

func (s *SMS) regionOf(a memmodel.Addr) (region uint64, lineOff uint) {
	region = uint64(a) / uint64(s.cfg.RegionSize)
	lineOff = uint((uint64(a) % uint64(s.cfg.RegionSize)) / memmodel.LineSize)
	return region, lineOff
}

func (s *SMS) phtSlot(key uint64) *smsPattern {
	return &s.pht[hashBits(key, s.phtBits)]
}

func findGen(table []smsGen, region uint64) *smsGen {
	for i := range table {
		if table[i].valid && table[i].region == region {
			return &table[i]
		}
	}
	return nil
}

// victimGen picks an invalid or LRU slot.
func victimGen(table []smsGen) *smsGen {
	var v *smsGen
	for i := range table {
		if !table[i].valid {
			return &table[i]
		}
		if v == nil || table[i].lru < v.lru {
			v = &table[i]
		}
	}
	return v
}

// OnAccess implements Prefetcher.
func (s *SMS) OnAccess(a *Access, iss Issuer) {
	s.clock++
	region, off := s.regionOf(a.Addr)
	bit := uint64(1) << off

	// Already accumulating?
	if g := findGen(s.accum, region); g != nil {
		g.pattern |= bit
		g.lru = s.clock
		return
	}
	// In the filter (one access so far)?
	if g := findGen(s.filter, region); g != nil {
		if g.pattern&bit != 0 {
			// Same line again: still a single-line generation.
			g.lru = s.clock
			return
		}
		// Second distinct line: promote to the accumulation table.
		promoted := *g
		promoted.pattern |= bit
		promoted.lru = s.clock
		g.valid = false
		v := victimGen(s.accum)
		if v.valid {
			s.recordPattern(v)
		}
		*v = promoted
		return
	}

	// New generation: this access is the trigger. Patterns are committed
	// to the PHT only when a generation is evicted from the accumulation
	// table (the paper's design: generations end on eviction), so the
	// 32-entry AGT is the window over which footprints mature.
	key := triggerKey(a.PC, off)
	// Predict from PHT before starting to accumulate.
	if p := s.phtSlot(key); p.valid && p.key == key {
		base := memmodel.Addr(region * uint64(s.cfg.RegionSize))
		for l := uint(0); l < s.linesPerRegion; l++ {
			if p.pattern&(uint64(1)<<l) != 0 && l != off {
				iss.Prefetch(base+memmodel.Addr(l*memmodel.LineSize), a.Now)
			}
		}
	}
	v := victimGen(s.filter)
	if v.valid {
		// A filter-table generation ends with a single line; such patterns
		// carry no spatial information and are dropped (as in the paper).
		v.valid = false
	}
	*v = smsGen{region: region, key: key, pattern: bit, lru: s.clock, valid: true}
}

// recordPattern stores an evicted generation's footprint in the PHT.
func (s *SMS) recordPattern(g *smsGen) {
	slot := s.phtSlot(g.key)
	*slot = smsPattern{key: g.key, pattern: g.pattern, valid: true}
}

func triggerKey(pc uint64, off uint) uint64 {
	return pc<<6 | uint64(off)&63
}
