package prefetch

import (
	"semloc/internal/memmodel"
	"semloc/internal/trace"
)

// Oracle is a limit-study prefetcher: it reads the trace ahead of time and
// prefetches exactly the line that will be demanded Distance accesses in
// the future. It bounds what any single-request-per-access prefetcher with
// perfect knowledge could achieve on this machine — useful for placing the
// context prefetcher's results on an absolute scale (how much of the
// achievable benefit the learning actually captured).
type Oracle struct {
	future   []memmodel.Line
	distance int
	cursor   int
}

// NewOracle builds the oracle for one specific trace. distance is how many
// accesses ahead it prefetches (0 or negative defaults to 24, inside the
// default reward window).
func NewOracle(tr *trace.Trace, distance int) *Oracle {
	if distance <= 0 {
		distance = 24
	}
	var future []memmodel.Line
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.IsMem() {
			future = append(future, memmodel.LineOf(r.Addr))
		}
	}
	return &Oracle{future: future, distance: distance}
}

// Name implements Prefetcher.
func (*Oracle) Name() string { return "oracle" }

// OnAccess implements Prefetcher: prefetch the line demanded `distance`
// accesses from now.
func (o *Oracle) OnAccess(a *Access, iss Issuer) {
	target := o.cursor + o.distance
	o.cursor++
	if target >= len(o.future) {
		return
	}
	line := o.future[target]
	if line == a.Line {
		return
	}
	iss.Prefetch(line.Base(), a.Now)
}
