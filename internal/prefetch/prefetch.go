// Package prefetch defines the prefetcher interface shared by the context
// prefetcher and the competing spatio-temporal prefetchers the paper
// evaluates against (§7): a PC-indexed stride prefetcher, the global
// history buffer in its G/DC and PC/DC flavours, spatial memory streaming
// (SMS), and a Markov predictor.
//
// All table sizes default to the storage-parity budgets of Table 2: the
// competing prefetchers are scaled to roughly the ~31 kB of state used by
// the context prefetcher.
package prefetch

import (
	"semloc/internal/cache"
	"semloc/internal/memmodel"
	"semloc/internal/trace"
)

// Access describes one demand access as seen by a prefetcher, including the
// context attributes of Table 1 that the hardware exposes.
type Access struct {
	// PC is the instruction pointer of the memory operation.
	PC uint64
	// Addr is the accessed byte address; Line its cache line.
	Addr memmodel.Addr
	Line memmodel.Line
	// Now is the cycle at which the access issued.
	Now cache.Cycle
	// Index is the running count of demand accesses (used for distances).
	Index uint64
	// IsStore distinguishes stores.
	IsStore bool
	// MissedL1 reports whether the access missed in the L1.
	MissedL1 bool
	// Value is the data returned by the access, when the trace knows it
	// (e.g. the pointer loaded from a node). Zero when unknown.
	Value uint64
	// Reg is the relevant general-register operand (e.g. a search key).
	Reg uint64
	// BranchHist is the global branch history register at this access.
	BranchHist uint16
	// Hints carries the compiler-injected attributes.
	Hints trace.SWHints
}

// Issuer is the channel through which a prefetcher acts on the memory
// system. Implemented by the simulation driver.
type Issuer interface {
	// Prefetch requests a prefetch of the line containing addr, issued at
	// cycle now. It reports whether a new request was actually generated
	// (false when the line is already present or in flight).
	Prefetch(addr memmodel.Addr, now cache.Cycle) bool
	// Shadow records a prediction that is deliberately not dispatched to
	// memory (a shadow prefetch, or a throttled prediction). The driver
	// uses it for the non-timely accounting of Figure 9 and the hit-depth
	// CDF of Figure 8.
	Shadow(addr memmodel.Addr)
	// FreePrefetchSlots reports prefetch-request-queue availability so
	// prefetchers can back off when the memory system is stressed.
	FreePrefetchSlots(now cache.Cycle) int
}

// Prefetcher observes the demand access stream and issues prefetches.
type Prefetcher interface {
	// Name identifies the prefetcher in reports ("context", "ghb-gdc", ...).
	Name() string
	// OnAccess is invoked for every demand access, after the access itself
	// has been performed.
	OnAccess(a *Access, iss Issuer)
}

// hashBits spreads key with a Fibonacci multiplier and keeps the high
// `bits` bits, which stay well mixed even for strongly aligned keys (PCs,
// line numbers). Masking the low bits instead would collapse aligned keys
// into a handful of slots.
func hashBits(key uint64, bits uint) uint64 {
	return (key * 0x9e3779b97f4a7c15) >> (64 - bits)
}

// log2 returns floor(log2(n)) for n >= 1.
func log2(n int) uint {
	b := uint(0)
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// None is the no-prefetching baseline.
type None struct{}

// NewNone returns the no-op prefetcher.
func NewNone() *None { return &None{} }

// Name implements Prefetcher.
func (*None) Name() string { return "none" }

// OnAccess implements Prefetcher.
func (*None) OnAccess(*Access, Issuer) {}
