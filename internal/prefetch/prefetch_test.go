package prefetch

import (
	"testing"

	"semloc/internal/cache"
	"semloc/internal/memmodel"
)

// mockIssuer records issued and shadow prefetches.
type mockIssuer struct {
	issued  []memmodel.Addr
	shadows []memmodel.Addr
	free    int
}

func newMockIssuer() *mockIssuer { return &mockIssuer{free: 4} }

func (m *mockIssuer) Prefetch(addr memmodel.Addr, now cache.Cycle) bool {
	m.issued = append(m.issued, addr)
	return true
}

func (m *mockIssuer) Shadow(addr memmodel.Addr) {
	m.shadows = append(m.shadows, addr)
}

func (m *mockIssuer) FreePrefetchSlots(now cache.Cycle) int { return m.free }

func (m *mockIssuer) issuedLines() map[memmodel.Line]bool {
	out := make(map[memmodel.Line]bool)
	for _, a := range m.issued {
		out[memmodel.LineOf(a)] = true
	}
	return out
}

// access builds a miss access for the given pc/addr.
func access(pc uint64, addr memmodel.Addr, idx uint64) *Access {
	return &Access{PC: pc, Addr: addr, Line: memmodel.LineOf(addr), Index: idx, MissedL1: true, Now: cache.Cycle(idx * 10)}
}

func TestNonePrefetcher(t *testing.T) {
	p := NewNone()
	iss := newMockIssuer()
	p.OnAccess(access(1, 0x1000, 0), iss)
	if p.Name() != "none" {
		t.Errorf("Name = %q", p.Name())
	}
	if len(iss.issued)+len(iss.shadows) != 0 {
		t.Error("none prefetcher must not issue")
	}
}

func TestStrideDetectsStride(t *testing.T) {
	p := NewStride(StrideConfig{})
	iss := newMockIssuer()
	const stride = 256
	for i := 0; i < 10; i++ {
		p.OnAccess(access(0x400, memmodel.Addr(0x10000+i*stride), uint64(i)), iss)
	}
	if len(iss.issued) == 0 {
		t.Fatal("stride prefetcher issued nothing on a steady stride")
	}
	// The last round should have prefetched addr+stride..addr+3*stride.
	last := memmodel.Addr(0x10000 + 9*stride)
	lines := iss.issuedLines()
	for d := 1; d <= 3; d++ {
		want := memmodel.LineOf(last + memmodel.Addr(d*stride))
		if !lines[want] {
			t.Errorf("expected prefetch of %v (d=%d)", want, d)
		}
	}
}

func TestStrideIgnoresRandom(t *testing.T) {
	p := NewStride(StrideConfig{})
	iss := newMockIssuer()
	rng := memmodel.NewRNG(2)
	for i := 0; i < 100; i++ {
		p.OnAccess(access(0x400, memmodel.Addr(rng.Uint64()&0xfffff0), uint64(i)), iss)
	}
	if len(iss.issued) > 10 {
		t.Errorf("stride prefetcher issued %d prefetches on random stream", len(iss.issued))
	}
}

func TestStrideSeparatesPCs(t *testing.T) {
	p := NewStride(StrideConfig{})
	iss := newMockIssuer()
	// Two interleaved streams with different strides at different PCs.
	for i := 0; i < 10; i++ {
		p.OnAccess(access(0x400, memmodel.Addr(0x100000+i*64), uint64(2*i)), iss)
		p.OnAccess(access(0x800, memmodel.Addr(0x900000+i*4096), uint64(2*i+1)), iss)
	}
	lines := iss.issuedLines()
	if !lines[memmodel.LineOf(0x100000+10*64)] {
		t.Error("stream A next line not prefetched")
	}
	if !lines[memmodel.LineOf(0x900000+10*4096)] {
		t.Error("stream B next line not prefetched")
	}
}

func TestStrideZeroStrideNoPrefetch(t *testing.T) {
	p := NewStride(StrideConfig{})
	iss := newMockIssuer()
	for i := 0; i < 20; i++ {
		p.OnAccess(access(0x400, 0x5000, uint64(i)), iss)
	}
	if len(iss.issued) != 0 {
		t.Errorf("zero stride should not prefetch, got %d", len(iss.issued))
	}
}

func TestGHBGDCRepeatingDeltas(t *testing.T) {
	p := NewGHB(GHBConfig{Localization: LocalizeGlobal})
	iss := newMockIssuer()
	// Delta pattern (in lines): +1,+2,+3 repeating from a base.
	deltas := []int64{1, 2, 3}
	line := memmodel.Line(0x1000)
	for rep := 0; rep < 6; rep++ {
		for _, d := range deltas {
			line = line.AddLines(d)
			p.OnAccess(access(0x400, line.Base(), 0), iss)
		}
	}
	if len(iss.issued) == 0 {
		t.Fatal("GHB G/DC issued nothing on repeating delta pattern")
	}
	// After the last access the next deltas should be predicted.
	lines := iss.issuedLines()
	next := line.AddLines(1)
	if !lines[next] {
		t.Errorf("expected prefetch of next line %v; issued %v", next, iss.issued)
	}
}

func TestGHBPCDCInterleavedStreams(t *testing.T) {
	gdc := NewGHB(GHBConfig{Localization: LocalizeGlobal})
	pcdc := NewGHB(GHBConfig{Localization: LocalizePC})
	issG, issP := newMockIssuer(), newMockIssuer()
	// Two interleaved per-PC unit-stride streams; globally the deltas
	// alternate wildly, defeating G/DC but not PC/DC.
	for i := 0; i < 40; i++ {
		a1 := access(0x400, memmodel.Addr(0x100000+i*64), uint64(2*i))
		a2 := access(0x800, memmodel.Addr(0xf00000+i*64), uint64(2*i+1))
		gdc.OnAccess(a1, issG)
		gdc.OnAccess(a2, issG)
		pcdc.OnAccess(a1, issP)
		pcdc.OnAccess(a2, issP)
	}
	linesP := issP.issuedLines()
	if !linesP[memmodel.LineOf(0x100000+40*64)] {
		t.Error("PC/DC should predict stream A's next line")
	}
	if len(issP.issued) == 0 {
		t.Error("PC/DC issued nothing")
	}
}

func TestGHBHitsOnlyOnMisses(t *testing.T) {
	p := NewGHB(GHBConfig{Localization: LocalizeGlobal})
	iss := newMockIssuer()
	for i := 0; i < 30; i++ {
		a := access(0x400, memmodel.Addr(0x1000+i*64), uint64(i))
		a.MissedL1 = false
		p.OnAccess(a, iss)
	}
	if len(iss.issued) != 0 {
		t.Errorf("misses-only GHB trained on hits: %d prefetches", len(iss.issued))
	}
}

func TestGHBNames(t *testing.T) {
	if NewGHB(GHBConfig{Localization: LocalizeGlobal}).Name() != "ghb-gdc" {
		t.Error("G/DC name wrong")
	}
	if NewGHB(GHBConfig{Localization: LocalizePC}).Name() != "ghb-pcdc" {
		t.Error("PC/DC name wrong")
	}
}

func TestGHBWrapAroundSafe(t *testing.T) {
	p := NewGHB(GHBConfig{Localization: LocalizePC, BufferSize: 16, IndexSize: 8})
	iss := newMockIssuer()
	rng := memmodel.NewRNG(7)
	// Hammer with many PCs so buffer wraps and stale links appear.
	for i := 0; i < 1000; i++ {
		pc := uint64(0x400 + rng.Intn(64)*4)
		p.OnAccess(access(pc, memmodel.Addr(rng.Uint64()&0xffffff), uint64(i)), iss)
	}
	// Passing without panicking and without bogus self-prefetch floods.
}

func TestSMSLearnsSpatialPattern(t *testing.T) {
	p := NewSMS(SMSConfig{})
	iss := newMockIssuer()
	// Touch a fixed footprint {0, 2, 5, 9} (line offsets) in region after
	// region, always triggered by the same PC at offset 0. Generations
	// commit when evicted from the 32-entry AGT, so run enough regions for
	// early patterns to mature before the final trigger.
	footprint := []int{0, 2, 5, 9}
	const regions = 40
	for r := 0; r < regions; r++ {
		base := memmodel.Addr(0x100000 + r*2048)
		for _, off := range footprint {
			p.OnAccess(access(0x400, base+memmodel.Addr(off*64), 0), iss)
		}
	}
	if len(iss.issued) == 0 {
		t.Fatal("SMS issued nothing on recurring spatial footprint")
	}
	// The last trigger should have streamed the learned footprint.
	lastBase := memmodel.Addr(0x100000 + (regions-1)*2048)
	lines := iss.issuedLines()
	for _, off := range footprint[1:] {
		if !lines[memmodel.LineOf(lastBase+memmodel.Addr(off*64))] {
			t.Errorf("footprint offset %d not prefetched", off)
		}
	}
}

func TestSMSNoPredictionWithoutHistory(t *testing.T) {
	p := NewSMS(SMSConfig{})
	iss := newMockIssuer()
	p.OnAccess(access(0x400, 0x100000, 0), iss)
	p.OnAccess(access(0x400, 0x100040, 1), iss)
	if len(iss.issued) != 0 {
		t.Errorf("SMS predicted with no trained patterns: %v", iss.issued)
	}
}

func TestSMSDifferentTriggerNoPrediction(t *testing.T) {
	p := NewSMS(SMSConfig{AGTEntries: 2, FilterEntries: 2})
	iss := newMockIssuer()
	// Train pattern with trigger PC 0x400.
	for r := 0; r < 8; r++ {
		base := memmodel.Addr(0x100000 + r*2048)
		p.OnAccess(access(0x400, base, 0), iss)
		p.OnAccess(access(0x404, base+256, 0), iss)
	}
	before := len(iss.issued)
	// New region triggered by an unrelated PC/offset: no pattern match.
	p.OnAccess(access(0xc00, 0x900000+512, 0), iss)
	if len(iss.issued) != before {
		t.Errorf("unrelated trigger should not predict (%d -> %d)", before, len(iss.issued))
	}
}

func TestMarkovLearnsSuccession(t *testing.T) {
	p := NewMarkov(MarkovConfig{})
	iss := newMockIssuer()
	// Pointer-chase loop A -> B -> C -> A ... with scattered lines.
	seq := []memmodel.Addr{0x10000, 0x83000, 0x21c0, 0x50440}
	for rep := 0; rep < 6; rep++ {
		for i, a := range seq {
			p.OnAccess(access(0x500, a, uint64(rep*len(seq)+i)), iss)
		}
	}
	lines := iss.issuedLines()
	// After seeing 0x10000 the predictor should prefetch 0x83000's line.
	if !lines[memmodel.LineOf(0x83000)] {
		t.Errorf("markov did not prefetch learned successor; issued %v", iss.issued)
	}
}

func TestMarkovMultipleSuccessors(t *testing.T) {
	p := NewMarkov(MarkovConfig{Degree: 2})
	iss := newMockIssuer()
	// A is followed by B twice as often as C.
	a, b, c := memmodel.Addr(0x10000), memmodel.Addr(0x20000), memmodel.Addr(0x30000)
	idx := uint64(0)
	emit := func(x memmodel.Addr) { p.OnAccess(access(0x500, x, idx), iss); idx++ }
	for i := 0; i < 12; i++ {
		emit(a)
		if i%3 == 2 {
			emit(c)
		} else {
			emit(b)
		}
	}
	iss.issued = nil
	emit(a)
	lines := iss.issuedLines()
	if !lines[memmodel.LineOf(b)] {
		t.Error("dominant successor B not prefetched")
	}
	if !lines[memmodel.LineOf(c)] {
		t.Error("secondary successor C not prefetched at degree 2")
	}
}

func TestMarkovNames(t *testing.T) {
	if NewMarkov(MarkovConfig{}).Name() != "markov" {
		t.Error("markov name wrong")
	}
	if NewSMS(SMSConfig{}).Name() != "sms" {
		t.Error("sms name wrong")
	}
	if NewStride(StrideConfig{}).Name() != "stride" {
		t.Error("stride name wrong")
	}
}
