package prefetch

import (
	"semloc/internal/memmodel"
)

// Stride is a classic PC-indexed stride prefetcher (Fu, Patel & Janssens,
// MICRO 1992). Each load site tracks its last address and stride with a
// two-bit confidence counter; confident entries prefetch Degree strides
// ahead. The paper evaluates it but omits it from the plots because its
// performance trailed the other prefetchers; it is included here both as a
// baseline and for the training-speed comparison of §7.3.
type Stride struct {
	cfg     StrideConfig
	entries []strideEntry
	mask    uint64
}

// StrideConfig parameterizes the stride prefetcher.
type StrideConfig struct {
	// TableSize is the number of PC-indexed entries (power of two).
	TableSize int
	// Degree is how many strides ahead to prefetch once confident.
	Degree int
}

// DefaultStrideConfig matches the scaled baseline: 2K entries, degree 3.
func DefaultStrideConfig() StrideConfig {
	return StrideConfig{TableSize: 2048, Degree: 3}
}

type strideEntry struct {
	tag      uint64
	lastAddr memmodel.Addr
	stride   int64
	conf     uint8 // 0..3; >=2 issues prefetches
	valid    bool
}

// NewStride creates a stride prefetcher. Zero-value config fields default.
func NewStride(cfg StrideConfig) *Stride {
	def := DefaultStrideConfig()
	if cfg.TableSize == 0 {
		cfg.TableSize = def.TableSize
	}
	if cfg.Degree == 0 {
		cfg.Degree = def.Degree
	}
	size := 1
	for size < cfg.TableSize {
		size <<= 1
	}
	return &Stride{cfg: cfg, entries: make([]strideEntry, size), mask: uint64(size - 1)}
}

// Name implements Prefetcher.
func (*Stride) Name() string { return "stride" }

// OnAccess implements Prefetcher.
func (s *Stride) OnAccess(a *Access, iss Issuer) {
	idx := (a.PC >> 2) & s.mask
	e := &s.entries[idx]
	if !e.valid || e.tag != a.PC {
		*e = strideEntry{tag: a.PC, lastAddr: a.Addr, valid: true}
		return
	}
	stride := int64(a.Addr) - int64(e.lastAddr)
	if stride == e.stride && stride != 0 {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		if e.conf > 0 {
			e.conf--
		}
		if e.conf == 0 {
			e.stride = stride
		}
	}
	e.lastAddr = a.Addr
	if e.conf >= 2 && e.stride != 0 {
		for d := 1; d <= s.cfg.Degree; d++ {
			target := memmodel.Addr(int64(a.Addr) + e.stride*int64(d))
			iss.Prefetch(target, a.Now)
		}
	}
}
