package prefetch

import (
	"semloc/internal/memmodel"
)

// Markov implements the Markov predictor of Joseph & Grunwald (ISCA 1997):
// the miss-address stream is modelled as a Markov chain whose states are
// addresses; each state records the most likely successors, and a miss
// prefetches its top transitions. The paper discusses it as related work
// whose state is limited to the address alone — it serves here as an extra
// temporal-correlation baseline and as an ablation point ("context =
// address only") against the context prefetcher.
type Markov struct {
	cfg     MarkovConfig
	entries []markovEntry
	bits    uint
	last    memmodel.Line
	hasLast bool
}

// MarkovConfig parameterizes the predictor.
type MarkovConfig struct {
	// TableSize is the number of source states (power of two).
	TableSize int
	// Successors is the number of successor slots per state.
	Successors int
	// Degree is the number of prefetches per miss.
	Degree int
	// TrainOnHits extends training to all accesses; the classical
	// formulation observes only L1 misses.
	TrainOnHits bool
}

// DefaultMarkovConfig scales the predictor to the common storage budget:
// 2K states x 4 successors.
func DefaultMarkovConfig() MarkovConfig {
	return MarkovConfig{TableSize: 2048, Successors: 4, Degree: 2}
}

type markovEntry struct {
	tag   uint64
	succ  [4]memmodel.Line
	count [4]uint8
	valid bool
}

// NewMarkov creates a Markov prefetcher. Zero-value fields take defaults.
func NewMarkov(cfg MarkovConfig) *Markov {
	def := DefaultMarkovConfig()
	if cfg.TableSize == 0 {
		cfg.TableSize = def.TableSize
	}
	if cfg.Successors == 0 || cfg.Successors > 4 {
		cfg.Successors = def.Successors
	}
	if cfg.Degree == 0 {
		cfg.Degree = def.Degree
	}
	size := 1
	for size < cfg.TableSize {
		size <<= 1
	}
	return &Markov{cfg: cfg, entries: make([]markovEntry, size), bits: log2(size)}
}

// Name implements Prefetcher.
func (*Markov) Name() string { return "markov" }

// OnAccess implements Prefetcher.
func (m *Markov) OnAccess(a *Access, iss Issuer) {
	if !m.cfg.TrainOnHits && !a.MissedL1 {
		return
	}
	line := memmodel.LineOf(a.Addr)
	if m.hasLast && m.last != line {
		m.train(m.last, line)
	}
	m.last = line
	m.hasLast = true

	e := m.slot(line)
	if !e.valid || e.tag != uint64(line) {
		return
	}
	// Prefetch the Degree highest-count successors.
	usedMask := 0
	for issued := 0; issued < m.cfg.Degree; issued++ {
		best := -1
		var bestCount uint8
		for i := 0; i < m.cfg.Successors; i++ {
			if usedMask&(1<<i) == 0 && e.count[i] > bestCount {
				best, bestCount = i, e.count[i]
			}
		}
		if best < 0 {
			break
		}
		usedMask |= 1 << best
		iss.Prefetch(e.succ[best].Base(), a.Now)
	}
}

func (m *Markov) slot(line memmodel.Line) *markovEntry {
	return &m.entries[hashBits(uint64(line), m.bits)]
}

// train strengthens the from -> to transition.
func (m *Markov) train(from, to memmodel.Line) {
	e := m.slot(from)
	if !e.valid || e.tag != uint64(from) {
		*e = markovEntry{tag: uint64(from), valid: true}
		e.succ[0] = to
		e.count[0] = 1
		return
	}
	// Existing successor?
	weakest := 0
	for i := 0; i < m.cfg.Successors; i++ {
		if e.count[i] > 0 && e.succ[i] == to {
			if e.count[i] < 255 {
				e.count[i]++
			}
			return
		}
		if e.count[i] < e.count[weakest] {
			weakest = i
		}
	}
	// Replace the weakest successor (decay-and-replace policy).
	if e.count[weakest] > 0 {
		e.count[weakest]--
	}
	if e.count[weakest] == 0 {
		e.succ[weakest] = to
		e.count[weakest] = 1
	}
}
