package prefetch

import (
	"semloc/internal/memmodel"
)

// GHB implements the global history buffer prefetcher of Nesbit & Smith
// (HPCA 2004) with delta correlation, in both localizations the paper
// compares against (§7):
//
//   - G/DC  (global, delta correlation): one global stream of miss
//     addresses; the last two deltas form the correlation key.
//   - PC/DC (per-PC, delta correlation): the history buffer is localized
//     into per-PC streams through the index table.
//
// The history buffer is a circular buffer of the most recent miss
// addresses; entries of one stream are chained by buffer index. On each
// access the prefetcher walks its stream's recent deltas, searches for the
// previous occurrence of the current delta pair, and prefetches the deltas
// that followed it.
//
// Table 2 scaling: 2K-entry GHB, history (correlation) length 3, prefetch
// degree 3, ~32 kB total.
type GHB struct {
	cfg GHBConfig

	buf  []ghbEntry
	head int   // next write position
	gen  []int // generation stamp: buffer write count at entry
	tick int

	index []ghbIndex
	ibits uint
}

// GHBLocalization selects the stream localization.
type GHBLocalization uint8

// Localizations.
const (
	// LocalizeGlobal keys the single global access stream (G/DC).
	LocalizeGlobal GHBLocalization = iota
	// LocalizePC localizes streams by load PC (PC/DC).
	LocalizePC
)

// GHBConfig parameterizes a GHB prefetcher.
type GHBConfig struct {
	// Localization picks G/DC or PC/DC.
	Localization GHBLocalization
	// BufferSize is the circular history buffer size (Table 2: 2K).
	BufferSize int
	// IndexSize is the index table size (power of two).
	IndexSize int
	// HistoryLength is the number of trailing deltas correlated (Table 2: 3;
	// the delta-pair key uses the last two, matching two-delta correlation).
	HistoryLength int
	// Degree is the number of prefetches issued per match (Table 2: 3).
	Degree int
	// TrainOnHits extends training to all accesses; by default the GHB
	// observes only L1 misses, the classic trigger.
	TrainOnHits bool
}

// DefaultGHBConfig returns the Table 2 configuration for the given flavour.
func DefaultGHBConfig(loc GHBLocalization) GHBConfig {
	return GHBConfig{
		Localization:  loc,
		BufferSize:    2048,
		IndexSize:     1024,
		HistoryLength: 3,
		Degree:        3,
	}
}

type ghbEntry struct {
	line memmodel.Line
	prev int // buffer index of previous entry in same stream (-1 none)
	gen  int // tick at which prev was written (validity check)
}

type ghbIndex struct {
	key   uint64
	last  int // buffer index of stream head
	gen   int
	valid bool
}

// NewGHB creates a GHB prefetcher. Zero-value config fields default to the
// flavour's Table 2 values.
func NewGHB(cfg GHBConfig) *GHB {
	def := DefaultGHBConfig(cfg.Localization)
	if cfg.BufferSize == 0 {
		cfg.BufferSize = def.BufferSize
	}
	if cfg.IndexSize == 0 {
		cfg.IndexSize = def.IndexSize
	}
	if cfg.HistoryLength == 0 {
		cfg.HistoryLength = def.HistoryLength
	}
	if cfg.Degree == 0 {
		cfg.Degree = def.Degree
	}
	isize := 1
	for isize < cfg.IndexSize {
		isize <<= 1
	}
	g := &GHB{
		cfg:   cfg,
		buf:   make([]ghbEntry, cfg.BufferSize),
		gen:   make([]int, cfg.BufferSize),
		index: make([]ghbIndex, isize),
		ibits: log2(isize),
	}
	for i := range g.buf {
		g.buf[i].prev = -1
	}
	return g
}

// Name implements Prefetcher.
func (g *GHB) Name() string {
	if g.cfg.Localization == LocalizePC {
		return "ghb-pcdc"
	}
	return "ghb-gdc"
}

func (g *GHB) streamKey(a *Access) uint64 {
	if g.cfg.Localization == LocalizePC {
		return a.PC
	}
	return 0
}

// OnAccess implements Prefetcher.
func (g *GHB) OnAccess(a *Access, iss Issuer) {
	if !g.cfg.TrainOnHits && !a.MissedL1 {
		return
	}
	key := g.streamKey(a)
	slot := &g.index[hashBits(key, g.ibits)]

	// Link the new entry into its stream.
	prev := -1
	prevGen := 0
	if slot.valid && slot.key == key && g.entryLive(slot.last, slot.gen) {
		prev = slot.last
		prevGen = slot.gen
	}
	pos := g.head
	g.tick++
	g.buf[pos] = ghbEntry{line: memmodel.LineOf(a.Addr), prev: prev, gen: prevGen}
	g.gen[pos] = g.tick
	g.head = (g.head + 1) % len(g.buf)
	*slot = ghbIndex{key: key, last: pos, gen: g.tick, valid: true}

	// Gather the stream's most recent lines (newest first).
	const maxWalk = 64
	var lines [maxWalk]memmodel.Line
	n := 0
	idx, gen := pos, g.tick
	for n < maxWalk && idx >= 0 && g.entryLive(idx, gen) {
		lines[n] = g.buf[idx].line
		gen = g.buf[idx].gen
		idx = g.buf[idx].prev
		n++
	}
	// Need at least 3 lines for two trailing deltas plus a match window.
	h := g.cfg.HistoryLength
	if h < 2 {
		h = 2
	}
	if n < h+2 {
		return
	}
	// deltas[i] = lines[i] - lines[i+1]; deltas[0] is the most recent.
	// Fixed-size backing array: a make() here would heap-allocate on every
	// trained access (n is capped at maxWalk).
	var deltaBuf [maxWalk - 1]int64
	deltas := deltaBuf[:n-1]
	for i := 0; i < n-1; i++ {
		deltas[i] = lines[i].Delta(lines[i+1])
	}
	// Correlation key: the last two deltas (standard delta-pair
	// correlation). Find the previous position with the same pair.
	k0, k1 := deltas[0], deltas[1]
	for i := 2; i+1 < len(deltas); i++ {
		if deltas[i] == k0 && deltas[i+1] == k1 {
			// Replay the deltas that followed the earlier occurrence
			// (moving toward the present), i.e. deltas[i-1], deltas[i-2]...
			cur := memmodel.LineOf(a.Addr)
			issued := 0
			for j := i - 1; j >= 0 && issued < g.cfg.Degree; j-- {
				cur = cur.AddLines(deltas[j])
				iss.Prefetch(cur.Base(), a.Now)
				issued++
			}
			return
		}
	}
}

// entryLive checks that buffer position idx still holds the entry written
// at generation gen (it may have been overwritten by wrap-around).
func (g *GHB) entryLive(idx, gen int) bool {
	return idx >= 0 && gen > 0 && g.gen[idx] == gen
}
