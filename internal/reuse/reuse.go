// Package reuse computes LRU stack-distance (reuse-distance) profiles of
// memory traces. A stack distance is the number of distinct cache lines
// touched between two accesses to the same line; the profile predicts the
// miss ratio of any fully-associative LRU cache (an access misses iff its
// distance is at least the cache's capacity in lines), which makes it both
// a workload-characterization tool (cmd/traceinfo -reuse) and an
// independent cross-check of the cache simulator.
package reuse

import (
	"semloc/internal/memmodel"
	"semloc/internal/stats"
	"semloc/internal/trace"
)

// Profile is the reuse-distance distribution of a trace's data accesses.
type Profile struct {
	// Distances histograms finite stack distances (in lines), clamped at
	// the configured maximum.
	Distances *stats.Histogram
	// Cold counts first-touch accesses (infinite distance).
	Cold uint64
	// Accesses is the number of memory accesses profiled.
	Accesses uint64
}

// Analyze profiles every load and store of the trace at cache-line
// granularity. Distances of maxDist lines or more land in the histogram's
// final bucket.
func Analyze(tr *trace.Trace, maxDist int) *Profile {
	p := &Profile{Distances: stats.NewHistogram(maxDist)}
	memCount := 0
	for i := range tr.Records {
		if tr.Records[i].IsMem() {
			memCount++
		}
	}
	bit := newFenwick(memCount)
	last := make(map[memmodel.Line]int) // line -> time of previous access
	t := 0
	for i := range tr.Records {
		r := &tr.Records[i]
		if !r.IsMem() {
			continue
		}
		t++
		line := memmodel.LineOf(r.Addr)
		p.Accesses++
		if prev, ok := last[line]; ok {
			// Distinct lines touched strictly between prev and t = number
			// of "last access" markers in (prev, t).
			d := bit.rangeSum(prev+1, t-1)
			p.Distances.Add(d)
			bit.add(prev, -1)
		} else {
			p.Cold++
		}
		bit.add(t, 1)
		last[line] = t
	}
	return p
}

// MissRatio predicts the miss ratio of a fully-associative LRU cache with
// the given capacity in lines: cold misses plus accesses whose distance is
// at least the capacity.
func (p *Profile) MissRatio(capacityLines int) float64 {
	if p.Accesses == 0 {
		return 0
	}
	misses := p.Cold
	if capacityLines <= p.Distances.Max() {
		misses += uint64(float64(p.Distances.Total()) * p.Distances.Fraction(capacityLines, p.Distances.Max()))
	}
	return float64(misses) / float64(p.Accesses)
}

// WorkingSetLines returns the number of distinct lines that cover the
// given fraction of reuses — a compact working-set-size estimate.
func (p *Profile) WorkingSetLines(fraction float64) int {
	return p.Distances.Percentile(fraction)
}

// fenwick is a growable binary indexed tree over access timestamps.
type fenwick struct {
	tree []int
}

func newFenwick(capacity int) *fenwick {
	return &fenwick{tree: make([]int, capacity+1)}
}

func (f *fenwick) add(i, v int) {
	for ; i < len(f.tree); i += i & (-i) {
		f.tree[i] += v
	}
}

// prefixSum returns the sum of positions 1..i.
func (f *fenwick) prefixSum(i int) int {
	if i >= len(f.tree) {
		i = len(f.tree) - 1
	}
	s := 0
	for ; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// rangeSum returns the sum of positions lo..hi (inclusive); 0 if empty.
func (f *fenwick) rangeSum(lo, hi int) int {
	if lo > hi {
		return 0
	}
	if lo < 1 {
		lo = 1
	}
	return f.prefixSum(hi) - f.prefixSum(lo-1)
}
