package reuse

import (
	"testing"

	"semloc/internal/cache"
	"semloc/internal/memmodel"
	"semloc/internal/trace"
	"semloc/internal/workloads"
)

// loadsTrace builds a trace of 8-byte loads at the given line numbers.
func loadsTrace(lines ...int) *trace.Trace {
	e := trace.NewEmitter("t")
	for _, l := range lines {
		e.Load(0x100, memmodel.Addr(l*memmodel.LineSize))
	}
	return e.Finish()
}

func TestColdOnlyTrace(t *testing.T) {
	p := Analyze(loadsTrace(1, 2, 3, 4, 5), 64)
	if p.Cold != 5 || p.Accesses != 5 {
		t.Errorf("cold=%d accesses=%d, want 5/5", p.Cold, p.Accesses)
	}
	if p.Distances.Total() != 0 {
		t.Error("unique-line trace should have no finite distances")
	}
}

func TestSameLineZeroDistance(t *testing.T) {
	p := Analyze(loadsTrace(7, 7, 7, 7), 64)
	if p.Cold != 1 {
		t.Errorf("cold=%d, want 1", p.Cold)
	}
	if p.Distances.Count(0) != 3 {
		t.Errorf("distance-0 count = %d, want 3", p.Distances.Count(0))
	}
}

func TestCyclicDistances(t *testing.T) {
	// Cycle over n lines repeated: every non-cold access has distance n-1.
	const n = 10
	var seq []int
	for rep := 0; rep < 4; rep++ {
		for i := 0; i < n; i++ {
			seq = append(seq, i)
		}
	}
	p := Analyze(loadsTrace(seq...), 64)
	if p.Cold != n {
		t.Errorf("cold=%d, want %d", p.Cold, n)
	}
	if got := p.Distances.Count(n - 1); got != uint64(len(seq)-n) {
		t.Errorf("distance-%d count = %d, want %d", n-1, got, len(seq)-n)
	}
}

func TestInterleavedDistances(t *testing.T) {
	// a b a -> a's reuse distance is 1 (only b in between).
	p := Analyze(loadsTrace(1, 2, 1), 64)
	if p.Distances.Count(1) != 1 {
		t.Errorf("distance-1 count = %d, want 1", p.Distances.Count(1))
	}
	// a b b a -> still distance 1 (b is one distinct line).
	p = Analyze(loadsTrace(1, 2, 2, 1), 64)
	if p.Distances.Count(1) != 1 {
		t.Errorf("dedup: distance-1 count = %d, want 1", p.Distances.Count(1))
	}
}

func TestMissRatioMonotone(t *testing.T) {
	w, _ := workloads.ByName("list")
	tr := w.Generate(workloads.GenConfig{Scale: 0.05, Seed: 1})
	p := Analyze(tr, 1<<16)
	prev := 1.1
	for c := 1; c <= 1<<16; c *= 4 {
		mr := p.MissRatio(c)
		if mr > prev+1e-9 {
			t.Fatalf("miss ratio not monotone: %f at %d after %f", mr, c, prev)
		}
		if mr < 0 || mr > 1 {
			t.Fatalf("miss ratio out of range: %f", mr)
		}
		prev = mr
	}
}

// TestPredictsFullyAssociativeCache cross-validates the analyzer against
// the cache simulator: for a fully-associative LRU L1, the measured miss
// ratio must match the stack-distance prediction.
func TestPredictsFullyAssociativeCache(t *testing.T) {
	w, _ := workloads.ByName("listsort")
	tr := w.Generate(workloads.GenConfig{Scale: 0.3, Seed: 1})

	const capLines = 256 // 16 kB fully-associative L1
	cfg := cache.DefaultConfig()
	cfg.L1 = cache.LevelConfig{Name: "L1D", Size: capLines * memmodel.LineSize, Ways: capLines, Latency: 2, MSHRs: 4}
	h := cache.MustNew(cfg)
	var accesses, misses uint64
	now := cache.Cycle(0)
	for i := range tr.Records {
		r := &tr.Records[i]
		if !r.IsMem() {
			continue
		}
		res := h.Access(r.Addr, now)
		accesses++
		if res.Outcome != cache.OutcomeL1Hit {
			misses++
		}
		now = res.Done
	}
	measured := float64(misses) / float64(accesses)

	p := Analyze(tr, 1<<16)
	predicted := p.MissRatio(capLines)
	diff := measured - predicted
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.02 {
		t.Errorf("cache simulator disagrees with stack-distance prediction: measured %.4f vs predicted %.4f", measured, predicted)
	}
}

func TestWorkingSetLines(t *testing.T) {
	const n = 32
	var seq []int
	for rep := 0; rep < 8; rep++ {
		for i := 0; i < n; i++ {
			seq = append(seq, i)
		}
	}
	p := Analyze(loadsTrace(seq...), 1024)
	ws := p.WorkingSetLines(0.99)
	if ws != n-1 {
		t.Errorf("working set = %d lines, want %d", ws, n-1)
	}
}

func TestEmptyTrace(t *testing.T) {
	p := Analyze(&trace.Trace{Name: "empty"}, 16)
	if p.Accesses != 0 || p.MissRatio(4) != 0 {
		t.Errorf("empty trace should produce zero profile")
	}
}
