package cpu

import (
	"testing"

	"semloc/internal/cache"
	"semloc/internal/memmodel"
	"semloc/internal/trace"
)

// fixedMem satisfies every access after a fixed latency, with no bandwidth
// limits — a pure latency model for isolating core behaviour.
type fixedMem struct{ lat cache.Cycle }

func (m fixedMem) Access(rec *trace.Record, now cache.Cycle) cache.Cycle {
	return now + m.lat
}

func run(t *testing.T, tr *trace.Trace, mem Memory, cfg Config) Result {
	t.Helper()
	res, err := Run(tr, mem, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestComputeOnlyIPC(t *testing.T) {
	e := trace.NewEmitter("compute")
	e.Compute(4000)
	res := run(t, e.Finish(), fixedMem{0}, DefaultConfig())
	if res.Instructions != 4000 {
		t.Fatalf("Instructions = %d", res.Instructions)
	}
	// 4-wide: ~1000 cycles.
	if res.Cycles < 1000 || res.Cycles > 1010 {
		t.Errorf("Cycles = %d, want ~1000", res.Cycles)
	}
	if ipc := res.IPC(); ipc < 3.9 || ipc > 4.01 {
		t.Errorf("IPC = %v, want ~4", ipc)
	}
}

func TestIndependentLoadsOverlap(t *testing.T) {
	e := trace.NewEmitter("mlp")
	const n = 16
	for i := 0; i < n; i++ {
		e.Load(0x100, 0x1000+64*memAddr(i))
	}
	res := run(t, e.Finish(), fixedMem{300}, DefaultConfig())
	// Fully overlapped: ~300 cycles, far below serialized 16*300.
	if res.Cycles > 400 {
		t.Errorf("Cycles = %d; independent loads should overlap (<400)", res.Cycles)
	}
}

func TestDependentLoadsSerialize(t *testing.T) {
	e := trace.NewEmitter("chain")
	const n = 16
	prev := -1
	for i := 0; i < n; i++ {
		prev = e.LoadSpec(trace.MemSpec{PC: 0x100, Addr: 0x1000 + 64*memAddr(i), Dep: prev})
	}
	res := run(t, e.Finish(), fixedMem{300}, DefaultConfig())
	if res.Cycles < 16*300 {
		t.Errorf("Cycles = %d; dependent chain should serialize (>=4800)", res.Cycles)
	}
}

func TestLQBoundsOverlap(t *testing.T) {
	mk := func(lq int) uint64 {
		e := trace.NewEmitter("lq")
		for i := 0; i < 64; i++ {
			e.Load(0x100, 0x1000+64*memAddr(i))
		}
		cfg := DefaultConfig()
		cfg.LQ = lq
		res, err := Run(e.Finish(), fixedMem{300}, cfg)
		if err != nil {
			panic(err)
		}
		return res.Cycles
	}
	narrow, wide := mk(4), mk(64)
	if narrow <= wide {
		t.Errorf("LQ=4 cycles (%d) should exceed LQ=64 cycles (%d)", narrow, wide)
	}
}

func TestROBBoundsOverlap(t *testing.T) {
	mk := func(rob int) uint64 {
		e := trace.NewEmitter("rob")
		for i := 0; i < 32; i++ {
			e.Load(0x100, 0x1000+64*memAddr(i))
			e.Compute(100) // spread loads across the window
		}
		cfg := DefaultConfig()
		cfg.ROB = rob
		res, err := Run(e.Finish(), fixedMem{300}, cfg)
		if err != nil {
			panic(err)
		}
		return res.Cycles
	}
	small, large := mk(32), mk(1024)
	if small <= large {
		t.Errorf("ROB=32 cycles (%d) should exceed ROB=1024 cycles (%d)", small, large)
	}
}

func TestStoresDoNotBlockRetirement(t *testing.T) {
	e := trace.NewEmitter("stores")
	for i := 0; i < 16; i++ {
		e.Store(0x100, 0x1000+64*memAddr(i))
	}
	res := run(t, e.Finish(), fixedMem{300}, DefaultConfig())
	// Stores retire at dispatch+1; with 16 stores and SQ=32 no stall.
	if res.Cycles > 50 {
		t.Errorf("Cycles = %d; stores should not serialize retirement", res.Cycles)
	}
	if res.Stores != 16 {
		t.Errorf("Stores = %d", res.Stores)
	}
}

func TestStoreBufferFullStalls(t *testing.T) {
	mk := func(sq int) uint64 {
		e := trace.NewEmitter("sq")
		for i := 0; i < 128; i++ {
			e.Store(0x100, 0x1000+64*memAddr(i))
		}
		cfg := DefaultConfig()
		cfg.SQ = sq
		res, err := Run(e.Finish(), fixedMem{300}, cfg)
		if err != nil {
			panic(err)
		}
		return res.Cycles
	}
	narrow, wide := mk(2), mk(128)
	if narrow <= wide {
		t.Errorf("SQ=2 cycles (%d) should exceed SQ=128 cycles (%d)", narrow, wide)
	}
}

func TestBranchPredictorLearnsBias(t *testing.T) {
	mkTrace := func(pattern func(i int) bool) *trace.Trace {
		e := trace.NewEmitter("branches")
		for i := 0; i < 4000; i++ {
			e.Branch(0x200, pattern(i))
			e.Compute(3)
		}
		return e.Finish()
	}
	biased := run(t, mkTrace(func(int) bool { return true }), fixedMem{0}, DefaultConfig())
	rng := uint64(12345)
	random := run(t, mkTrace(func(int) bool {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng>>63 == 1
	}), fixedMem{0}, DefaultConfig())
	if biased.Mispredicts > biased.Branches/20 {
		t.Errorf("always-taken mispredicts = %d/%d, want few", biased.Mispredicts, biased.Branches)
	}
	if random.Mispredicts < random.Branches/4 {
		t.Errorf("random mispredicts = %d/%d, want many", random.Mispredicts, random.Branches)
	}
	if random.Cycles <= biased.Cycles {
		t.Errorf("random-branch cycles (%d) should exceed biased (%d)", random.Cycles, biased.Cycles)
	}
}

func TestMispredictPenaltyZeroDisables(t *testing.T) {
	e := trace.NewEmitter("nopred")
	for i := 0; i < 100; i++ {
		e.Branch(0x200, i%2 == 0)
	}
	cfg := DefaultConfig()
	cfg.MispredictPenalty = 0
	res := run(t, e.Finish(), fixedMem{0}, cfg)
	if res.Mispredicts != 0 {
		t.Errorf("Mispredicts = %d with penalty disabled", res.Mispredicts)
	}
}

func TestWarmupSubtraction(t *testing.T) {
	e := trace.NewEmitter("warm")
	e.Compute(4000)
	e.EndWarmup()
	e.Compute(8000)
	var warmCycle cache.Cycle
	cfg := DefaultConfig()
	cfg.OnWarmupEnd = func(now cache.Cycle) { warmCycle = now }
	res := run(t, e.Finish(), fixedMem{0}, cfg)
	if res.Instructions != 8000 {
		t.Errorf("post-warmup Instructions = %d, want 8000", res.Instructions)
	}
	if res.Cycles < 1990 || res.Cycles > 2020 {
		t.Errorf("post-warmup Cycles = %d, want ~2000", res.Cycles)
	}
	if warmCycle == 0 {
		t.Error("OnWarmupEnd not invoked")
	}
}

func TestSecondWarmupIgnored(t *testing.T) {
	e := trace.NewEmitter("warm2")
	e.Compute(100)
	e.EndWarmup()
	e.Compute(100)
	e.EndWarmup()
	e.Compute(100)
	calls := 0
	cfg := DefaultConfig()
	cfg.OnWarmupEnd = func(cache.Cycle) { calls++ }
	res := run(t, e.Finish(), fixedMem{0}, cfg)
	if calls != 1 {
		t.Errorf("OnWarmupEnd called %d times, want 1", calls)
	}
	if res.Instructions != 200 {
		t.Errorf("Instructions = %d, want 200", res.Instructions)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Width: 0, ROB: 1, LQ: 1, SQ: 1},
		{Width: 1, ROB: 0, LQ: 1, SQ: 1},
		{Width: 1, ROB: 1, LQ: 0, SQ: 1},
		{Width: 1, ROB: 1, LQ: 1, SQ: 0},
	}
	e := trace.NewEmitter("x")
	e.Compute(1)
	tr := e.Finish()
	for i, cfg := range bad {
		if _, err := Run(tr, fixedMem{0}, cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}

func TestUnknownKindErrors(t *testing.T) {
	tr := &trace.Trace{Name: "bad", Records: []trace.Record{{Kind: trace.Kind(88)}}}
	if _, err := Run(tr, fixedMem{0}, DefaultConfig()); err == nil {
		t.Error("expected error for unknown record kind")
	}
}

func TestIPCandCPI(t *testing.T) {
	r := Result{Cycles: 100, Instructions: 200}
	if r.IPC() != 2 || r.CPI() != 0.5 {
		t.Errorf("IPC=%v CPI=%v", r.IPC(), r.CPI())
	}
	empty := Result{}
	if empty.IPC() != 0 || empty.CPI() != 0 {
		t.Error("empty Result should report zero rates")
	}
}

func TestMemLatencyDominatesSlowTrace(t *testing.T) {
	// Sanity: with a huge memory latency and a dependent chain, IPC tends
	// toward instructions/(n*latency).
	e := trace.NewEmitter("slow")
	prev := -1
	for i := 0; i < 10; i++ {
		prev = e.LoadSpec(trace.MemSpec{PC: 0x1, Addr: memAddr(i) * 64, Dep: prev})
		e.Compute(10)
	}
	res := run(t, e.Finish(), fixedMem{1000}, DefaultConfig())
	if res.Cycles < 10000 {
		t.Errorf("Cycles = %d, want >= 10000", res.Cycles)
	}
}

func memAddr(i int) memmodel.Addr { return memmodel.Addr(i) }
