// Package cpu implements the trace-driven, approximate out-of-order core
// timing model that substitutes for the paper's gem5 x86 configuration
// (Table 2: 4-wide fetch, 192 ROB, 32 LQ/SQ).
//
// The model is a first-order interval simulation. It preserves the three
// phenomena that decide prefetcher benefit:
//
//  1. Independent load misses overlap (memory-level parallelism), bounded
//     by the reorder-buffer window, the load queue, and the cache MSHRs.
//  2. Dependent loads (pointer chasing, Record.Dep) serialize: a load
//     cannot issue before the load that produced its address completes.
//  3. Non-memory instructions stream through a fixed-width frontend, so
//     compute-heavy phases hide memory latency.
//
// Branches run through a small gshare predictor; mispredictions charge a
// fixed refill penalty. Absolute cycle counts are not gem5's, but relative
// effects — which is what every figure in the paper reports — survive.
package cpu

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"semloc/internal/cache"
	"semloc/internal/trace"
)

// Memory is the interface the core uses for data accesses. The simulation
// driver implements it by combining the cache hierarchy with a prefetcher.
type Memory interface {
	// Access performs the access of rec (a load or store) issued at cycle
	// now and returns the cycle at which its data is available.
	Access(rec *trace.Record, now cache.Cycle) cache.Cycle
}

// Config parameterizes the core.
type Config struct {
	// Width is the dispatch width in instructions per cycle.
	Width int
	// ROB is the reorder-buffer size in instructions.
	ROB int
	// LQ and SQ are the load/store queue sizes.
	LQ, SQ int
	// MispredictPenalty is the frontend refill penalty for a mispredicted
	// branch, in cycles. Zero disables branch modelling.
	MispredictPenalty cache.Cycle
	// OnWarmupEnd, if set, is invoked when the trace's warm-up marker
	// retires, with the current cycle. The driver uses it to reset cache
	// and prefetcher statistics.
	OnWarmupEnd func(now cache.Cycle)
	// Progress, if set, receives the retired-instruction count at the
	// simulation loop's periodic checkpoints (every few thousand records).
	// External watchdogs sample it to detect a run that has stopped making
	// forward progress.
	Progress *atomic.Uint64
}

// DefaultConfig returns the Table 2 core: out-of-order, 4-wide fetch,
// 192-entry ROB, 32-entry load and store queues.
func DefaultConfig() Config {
	return Config{Width: 4, ROB: 192, LQ: 32, SQ: 32, MispredictPenalty: 12}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Width <= 0 {
		return fmt.Errorf("cpu: width must be positive")
	}
	if c.ROB <= 0 || c.LQ <= 0 || c.SQ <= 0 {
		return fmt.Errorf("cpu: ROB/LQ/SQ must be positive")
	}
	return nil
}

// Result summarizes a run. If the trace contains a warm-up marker, the
// counters cover only the post-warm-up region.
type Result struct {
	// Cycles is the simulated execution time.
	Cycles uint64
	// Instructions is the number of retired instructions.
	Instructions uint64
	// Loads and Stores count memory operations.
	Loads, Stores uint64
	// Branches and Mispredicts count control flow.
	Branches, Mispredicts uint64
}

// IPC returns retired instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// CPI returns cycles per instruction.
func (r Result) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Instructions)
}

type robEntry struct {
	idx    uint64 // instruction index at dispatch
	retire cache.Cycle
}

// Run executes the trace against mem and returns timing results. It is
// RunContext with a background context.
func Run(tr *trace.Trace, mem Memory, cfg Config) (Result, error) {
	return RunContext(context.Background(), tr, mem, cfg)
}

// checkEvery is the record interval between cancellation checks and
// progress-counter publications; a power of two so the check is a mask.
const checkEvery = 8192

// donePool recycles the per-run completion-time slice (one Cycle per trace
// record, several MB at benchmark scales). Allocating it fresh inside every
// run put multi-megabyte garbage — and the GC cycles it triggers — inside
// the benchmark's timed region; reusing a cleared buffer keeps the run
// allocation-free for the dominant cost.
var donePool = sync.Pool{New: func() any { return new([]cache.Cycle) }}

// getDone returns a zeroed completion-time slice of length n, reusing
// pooled capacity when available.
func getDone(n int) *[]cache.Cycle {
	bp := donePool.Get().(*[]cache.Cycle)
	if cap(*bp) < n {
		*bp = make([]cache.Cycle, n)
		return bp
	}
	*bp = (*bp)[:n]
	clear(*bp)
	return bp
}

// RunContext executes the trace against mem and returns timing results.
// The simulation loop checks ctx every few thousand records, so a
// cancelled context (user interrupt, watchdog abort) stops the run
// promptly with an error wrapping the cancellation cause.
func RunContext(ctx context.Context, tr *trace.Trace, mem Memory, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	doneBuf := getDone(len(tr.Records))
	defer donePool.Put(doneBuf)
	var (
		res       Result
		slots     uint64 // frontend progress in 1/Width-cycle slots
		width     = uint64(cfg.Width)
		instrs    uint64 // instructions dispatched
		lastRet   cache.Cycle
		done      = *doneBuf
		rob       = newRing(cfg.ROB)
		lqRing    = make([]cache.Cycle, cfg.LQ)
		sqRing    = make([]cache.Cycle, cfg.SQ)
		lqHead    int
		sqHead    int
		predictor = newGshare()
		warmup    warmSnapshot
		warmDone  bool
	)

	for i := range tr.Records {
		if i&(checkEvery-1) == 0 {
			if cfg.Progress != nil {
				cfg.Progress.Store(instrs)
			}
			select {
			case <-ctx.Done():
				return Result{}, fmt.Errorf("cpu: %s cancelled at record %d/%d: %w",
					tr.Name, i, len(tr.Records), context.Cause(ctx))
			default:
			}
		}
		rec := &tr.Records[i]

		switch rec.Kind {
		case trace.KindWarmupEnd:
			if !warmDone {
				warmDone = true
				warmup = warmSnapshot{
					cycles: lastRet, instrs: instrs,
					loads: res.Loads, stores: res.Stores,
					branches: res.Branches, mispredicts: res.Mispredicts,
				}
				if cfg.OnWarmupEnd != nil {
					cfg.OnWarmupEnd(lastRet)
				}
			}
			continue

		case trace.KindCompute:
			n := uint64(rec.Count)
			// ROB pressure from a long compute block is bounded: drain
			// entries that would fall out of the window.
			slots = drainROB(rob, slots, instrs+n, uint64(cfg.ROB), width)
			slots += n
			instrs += n
			d := cache.Cycle(slots / width)
			if d+1 > lastRet {
				lastRet = d + 1
			}

		case trace.KindBranch:
			slots = drainROB(rob, slots, instrs+1, uint64(cfg.ROB), width)
			d := cache.Cycle(slots / width)
			slots++
			instrs++
			res.Branches++
			if cfg.MispredictPenalty > 0 && !predictor.predict(rec.PC, rec.Taken) {
				res.Mispredicts++
				redirect := (uint64(d) + 1 + uint64(cfg.MispredictPenalty)) * width
				if redirect > slots {
					slots = redirect
				}
			}
			if d+1 > lastRet {
				lastRet = d + 1
			}

		case trace.KindLoad:
			slots = drainROB(rob, slots, instrs+1, uint64(cfg.ROB), width)
			d := cache.Cycle(slots / width)
			slots++
			instrs++
			res.Loads++
			issue := d
			if rec.Dep != trace.NoDep {
				if dep := done[rec.Dep]; dep > issue {
					issue = dep
				}
			}
			// Load queue: cannot issue before the LQ-oldest load completed.
			if old := lqRing[lqHead]; old > issue {
				issue = old
			}
			dn := mem.Access(rec, issue)
			done[i] = dn
			lqRing[lqHead] = dn
			lqHead = (lqHead + 1) % cfg.LQ
			ret := dn
			if lastRet > ret {
				ret = lastRet
			}
			lastRet = ret
			rob.push(robEntry{idx: instrs, retire: ret})

		case trace.KindStore:
			slots = drainROB(rob, slots, instrs+1, uint64(cfg.ROB), width)
			d := cache.Cycle(slots / width)
			slots++
			instrs++
			res.Stores++
			issue := d
			if rec.Dep != trace.NoDep {
				if dep := done[rec.Dep]; dep > issue {
					issue = dep
				}
			}
			// Store buffer: if the SQ-oldest store has not yet written back,
			// dispatch stalls until it has.
			if old := sqRing[sqHead]; old > d {
				stallSlots := uint64(old) * width
				if stallSlots > slots {
					slots = stallSlots
				}
			}
			dn := mem.Access(rec, issue)
			done[i] = dn // dependents (rare) wait for the written value
			sqRing[sqHead] = dn
			sqHead = (sqHead + 1) % cfg.SQ
			// Stores retire without waiting for completion.
			if d+1 > lastRet {
				lastRet = d + 1
			}
			rob.push(robEntry{idx: instrs, retire: d + 1})

		default:
			return Result{}, fmt.Errorf("cpu: trace %q record %d: unknown kind %d", tr.Name, i, rec.Kind)
		}
	}

	res.Cycles = uint64(lastRet)
	res.Instructions = instrs
	if warmDone {
		res.Cycles -= uint64(warmup.cycles)
		res.Instructions -= warmup.instrs
		res.Loads -= warmup.loads
		res.Stores -= warmup.stores
		res.Branches -= warmup.branches
		res.Mispredicts -= warmup.mispredicts
	}
	return res, nil
}

type warmSnapshot struct {
	cycles                cache.Cycle
	instrs                uint64
	loads, stores         uint64
	branches, mispredicts uint64
}

// drainROB enforces the reorder-buffer window: before dispatching up to
// instruction index nextIdx, any queued memory op whose distance from
// nextIdx is >= robSize must retire first, stalling the frontend to its
// retire time. Entries that have already retired are dropped eagerly.
func drainROB(rob *ring, slots, nextIdx, robSize, width uint64) uint64 {
	for rob.len > 0 {
		head := rob.peek()
		if nextIdx-head.idx >= robSize {
			stall := uint64(head.retire) * width
			if stall > slots {
				slots = stall
			}
			rob.pop()
			continue
		}
		if uint64(head.retire)*width <= slots {
			rob.pop()
			continue
		}
		break
	}
	return slots
}

// ring is a fixed-capacity FIFO of ROB entries.
type ring struct {
	buf        []robEntry
	head, tail int
	len        int
}

func newRing(capacity int) *ring {
	return &ring{buf: make([]robEntry, capacity+1)}
}

func (r *ring) push(e robEntry) {
	if r.len == len(r.buf) {
		// Overwrite oldest; the ROB window logic keeps this from mattering.
		r.pop()
	}
	r.buf[r.tail] = e
	r.tail = (r.tail + 1) % len(r.buf)
	r.len++
}

func (r *ring) pop() robEntry {
	e := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.len--
	return e
}

func (r *ring) peek() robEntry { return r.buf[r.head] }

// gshare is a small global-history branch predictor (4K 2-bit counters,
// 12-bit history).
type gshare struct {
	table   [4096]uint8
	history uint32
}

func newGshare() *gshare {
	g := &gshare{}
	for i := range g.table {
		g.table[i] = 1 // weakly not-taken
	}
	return g
}

// predict returns whether the prediction matched outcome, updating state.
func (g *gshare) predict(pc uint64, taken bool) bool {
	idx := (uint32(pc>>2) ^ g.history) & 4095
	ctr := g.table[idx]
	predTaken := ctr >= 2
	if taken && ctr < 3 {
		g.table[idx] = ctr + 1
	} else if !taken && ctr > 0 {
		g.table[idx] = ctr - 1
	}
	g.history = ((g.history << 1) | b2u(taken)) & 4095
	return predTaken == taken
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
