package cache

import (
	"testing"
	"testing/quick"

	"semloc/internal/memmodel"
)

// smallConfig is a tiny hierarchy for eviction-focused tests.
func smallConfig() Config {
	return Config{
		L1:          LevelConfig{Name: "L1D", Size: 1 << 10, Ways: 2, Latency: 2, MSHRs: 4},
		L2:          LevelConfig{Name: "L2", Size: 8 << 10, Ways: 4, Latency: 20, MSHRs: 20},
		DRAMLatency: 300,
	}
}

func TestDefaultConfigMatchesTable2(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if cfg.L1.Size != 64<<10 || cfg.L1.Ways != 8 || cfg.L1.Latency != 2 || cfg.L1.MSHRs != 4 {
		t.Errorf("L1 config mismatch with Table 2: %+v", cfg.L1)
	}
	if cfg.L2.Size != 2<<20 || cfg.L2.Ways != 16 || cfg.L2.Latency != 20 || cfg.L2.MSHRs != 20 {
		t.Errorf("L2 config mismatch with Table 2: %+v", cfg.L2)
	}
	if cfg.DRAMLatency != 300 {
		t.Errorf("DRAM latency = %d, want 300", cfg.DRAMLatency)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{L1: LevelConfig{Name: "a", Size: 0, Ways: 1, MSHRs: 1}, L2: DefaultConfig().L2, DRAMLatency: 1},
		{L1: LevelConfig{Name: "a", Size: 100, Ways: 3, MSHRs: 1}, L2: DefaultConfig().L2, DRAMLatency: 1},
		{L1: DefaultConfig().L1, L2: LevelConfig{Name: "b", Size: 1 << 20, Ways: 16, MSHRs: 0}, DRAMLatency: 1},
		{L1: DefaultConfig().L1, L2: DefaultConfig().L2, DRAMLatency: 0},
		// 3*64*ways lines -> sets not power of two
		{L1: LevelConfig{Name: "a", Size: 3 * 64 * 2, Ways: 2, MSHRs: 1, Latency: 1}, L2: DefaultConfig().L2, DRAMLatency: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d: expected validation error", i)
		}
	}
	if _, err := New(bad[0]); err == nil {
		t.Error("New should propagate validation errors")
	}
}

func TestColdMissThenHit(t *testing.T) {
	h := MustNew(DefaultConfig())
	res := h.Access(0x1000, 0)
	if res.Outcome != OutcomeMemory {
		t.Fatalf("cold access outcome = %v, want memory", res.Outcome)
	}
	// 2 (L1) + 20 (L2) + 300 (DRAM)
	if res.Done != 322 {
		t.Errorf("cold miss Done = %d, want 322", res.Done)
	}
	res = h.Access(0x1000, res.Done)
	if res.Outcome != OutcomeL1Hit {
		t.Errorf("second access outcome = %v, want l1-hit", res.Outcome)
	}
	if res.Done != 322+2 {
		t.Errorf("hit Done = %d, want 324", res.Done)
	}
}

func TestSameLineSharesOutcome(t *testing.T) {
	h := MustNew(DefaultConfig())
	h.Access(0x1000, 0)
	// Another address in the same 64B line.
	res := h.Access(0x103f, 400)
	if res.Outcome != OutcomeL1Hit {
		t.Errorf("same-line access outcome = %v, want l1-hit", res.Outcome)
	}
	// Different line misses.
	res = h.Access(0x1040, 400)
	if res.Outcome != OutcomeMemory {
		t.Errorf("next-line access outcome = %v, want memory", res.Outcome)
	}
}

func TestInFlightMerge(t *testing.T) {
	h := MustNew(DefaultConfig())
	first := h.Access(0x1000, 0) // completes at 322
	res := h.Access(0x1000, 100)
	if res.Outcome != OutcomeL1InFlight {
		t.Fatalf("merge outcome = %v, want l1-inflight", res.Outcome)
	}
	if res.Done != first.Done {
		t.Errorf("merged access Done = %d, want %d", res.Done, first.Done)
	}
	l1, _ := h.Stats()
	if l1.InFlightHits != 1 {
		t.Errorf("InFlightHits = %d, want 1", l1.InFlightHits)
	}
}

func TestL2HitAfterL1Eviction(t *testing.T) {
	cfg := smallConfig()
	h := MustNew(cfg)
	// Fill L1 set 0 beyond capacity: lines mapping to set 0 differ by
	// sets*linesize strides. L1 has 8 sets (1kB/2way/64B).
	sets := cfg.L1.Sets()
	stride := memmodel.Addr(sets * memmodel.LineSize)
	now := Cycle(0)
	for i := 0; i < cfg.L1.Ways+1; i++ {
		res := h.Access(memmodel.Addr(i)*stride, now)
		now = res.Done + 1
	}
	// First line evicted from L1 but still in L2.
	res := h.Access(0, now)
	if res.Outcome != OutcomeL2Hit {
		t.Errorf("outcome = %v, want l2-hit", res.Outcome)
	}
	if res.Done != now+cfg.L1.Latency+cfg.L2.Latency {
		t.Errorf("L2 hit Done = %d, want %d", res.Done, now+22)
	}
}

func TestLRUReplacement(t *testing.T) {
	cfg := smallConfig()
	h := MustNew(cfg)
	sets := cfg.L1.Sets()
	stride := memmodel.Addr(sets * memmodel.LineSize)
	a, b, c := memmodel.Addr(0), stride, 2*stride
	now := Cycle(0)
	for _, addr := range []memmodel.Addr{a, b} {
		res := h.Access(addr, now)
		now = res.Done + 1
	}
	// Touch a again so b is LRU.
	res := h.Access(a, now)
	now = res.Done + 1
	// c evicts b.
	res = h.Access(c, now)
	now = res.Done + 1
	if !h.Contains(1, a) {
		t.Error("a should remain in L1 (recently used)")
	}
	if h.Contains(1, b) {
		t.Error("b should have been evicted (LRU)")
	}
	if !h.Contains(1, c) {
		t.Error("c should be resident")
	}
}

func TestPrefetchHitClassification(t *testing.T) {
	h := MustNew(DefaultConfig())
	if !h.Prefetch(0x2000, 0) {
		t.Fatal("prefetch rejected")
	}
	// Demand long after fill completes: full prefetch hit.
	res := h.Access(0x2000, 1000)
	if res.Outcome != OutcomeL1Hit || !res.PrefetchedLine {
		t.Errorf("late demand: outcome=%v prefetched=%v, want l1-hit/true", res.Outcome, res.PrefetchedLine)
	}
	// Second demand to the same line is a plain hit, not a prefetch hit.
	res = h.Access(0x2000, 2000)
	if res.PrefetchedLine {
		t.Error("second touch must not count as prefetched-line hit")
	}
}

func TestPrefetchShorterWait(t *testing.T) {
	h := MustNew(DefaultConfig())
	h.Prefetch(0x2000, 0) // fills at 322
	res := h.Access(0x2000, 100)
	if res.Outcome != OutcomeL1InFlight || !res.PrefetchedLine {
		t.Errorf("outcome=%v prefetched=%v, want l1-inflight/true", res.Outcome, res.PrefetchedLine)
	}
	if res.Done != 322 {
		t.Errorf("Done = %d, want 322 (wait shortened from 100+322)", res.Done)
	}
}

func TestPrefetchDuplicateDropped(t *testing.T) {
	h := MustNew(DefaultConfig())
	if !h.Prefetch(0x2000, 0) {
		t.Fatal("first prefetch rejected")
	}
	if h.Prefetch(0x2000, 1) {
		t.Error("duplicate prefetch should be dropped")
	}
	l1, _ := h.Stats()
	if l1.Prefetches != 1 || l1.PrefetchDrops != 1 {
		t.Errorf("prefetch stats = %+v", l1)
	}
}

func TestUselessPrefetchCounting(t *testing.T) {
	h := MustNew(smallConfig())
	h.Prefetch(0x0, 0)
	h.FinishStats()
	l1, _ := h.Stats()
	if l1.UselessEvicts != 1 {
		t.Errorf("UselessEvicts = %d, want 1 (never-touched prefetch)", l1.UselessEvicts)
	}
}

func TestUsefulPrefetchNotCountedUseless(t *testing.T) {
	h := MustNew(smallConfig())
	h.Prefetch(0x0, 0)
	h.Access(0x0, 500)
	h.FinishStats()
	l1, _ := h.Stats()
	if l1.UselessEvicts != 0 {
		t.Errorf("UselessEvicts = %d, want 0", l1.UselessEvicts)
	}
}

func TestMSHRLimitDelaysMisses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L1.MSHRs = 1
	h := MustNew(cfg)
	r1 := h.Access(0x10000, 0)
	r2 := h.Access(0x20000, 0) // must wait for the single MSHR
	if r2.Done <= r1.Done {
		t.Errorf("second miss (%d) should complete after first (%d) with 1 MSHR", r2.Done, r1.Done)
	}
}

func TestFreeMSHRs(t *testing.T) {
	cfg := DefaultConfig()
	h := MustNew(cfg)
	if free := h.FreeL1MSHRs(0); free != cfg.L1.MSHRs {
		t.Errorf("initial free MSHRs = %d, want %d", free, cfg.L1.MSHRs)
	}
	h.Access(0x10000, 0)
	if free := h.FreeL1MSHRs(1); free != cfg.L1.MSHRs-1 {
		t.Errorf("free MSHRs after one miss = %d, want %d", free, cfg.L1.MSHRs-1)
	}
	if free := h.FreeL1MSHRs(100000); free != cfg.L1.MSHRs {
		t.Errorf("free MSHRs after completion = %d, want %d", free, cfg.L1.MSHRs)
	}
}

func TestResetStatsPreservesContents(t *testing.T) {
	h := MustNew(DefaultConfig())
	h.Access(0x3000, 0)
	h.ResetStats()
	l1, l2 := h.Stats()
	if l1.Accesses != 0 || l2.Accesses != 0 {
		t.Error("stats not cleared")
	}
	if l1.Name != "L1D" || l2.Name != "L2" {
		t.Error("stats names lost on reset")
	}
	res := h.Access(0x3000, 1000)
	if res.Outcome != OutcomeL1Hit {
		t.Errorf("contents lost on reset: outcome = %v", res.Outcome)
	}
}

func TestMissRate(t *testing.T) {
	s := LevelStats{Accesses: 10, Misses: 4}
	if s.MissRate() != 0.4 {
		t.Errorf("MissRate = %v, want 0.4", s.MissRate())
	}
	if (LevelStats{}).MissRate() != 0 {
		t.Error("empty MissRate should be 0")
	}
}

func TestOutcomeStrings(t *testing.T) {
	want := map[Outcome]string{
		OutcomeL1Hit: "l1-hit", OutcomeL1InFlight: "l1-inflight",
		OutcomeL2Hit: "l2-hit", OutcomeL2InFlight: "l2-inflight",
		OutcomeMemory: "memory", Outcome(99): "outcome(?)",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), s)
		}
	}
}

// Property: a demand access never completes before the L1 hit latency, and
// re-accessing the same address at a later time is always at least as fast.
func TestAccessLatencyProperties(t *testing.T) {
	h := MustNew(DefaultConfig())
	now := Cycle(0)
	f := func(raw uint32) bool {
		addr := memmodel.Addr(raw) & 0xffffff
		res := h.Access(addr, now)
		if res.Done < now+2 {
			return false
		}
		later := res.Done + 10
		res2 := h.Access(addr, later)
		if res2.Done != later+2 { // must now be an L1 hit
			return false
		}
		now = res2.Done
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: hierarchy statistics stay consistent — misses never exceed
// accesses at either level, and L2 accesses never exceed L1 misses.
func TestStatsConsistencyProperty(t *testing.T) {
	h := MustNew(smallConfig())
	rng := memmodel.NewRNG(3)
	now := Cycle(0)
	for i := 0; i < 5000; i++ {
		addr := memmodel.Addr(rng.Intn(1 << 16))
		if rng.Intn(4) == 0 {
			h.Prefetch(addr, now)
		} else {
			res := h.Access(addr, now)
			if res.Done > now {
				now = res.Done - Cycle(rng.Intn(100))
			}
		}
		now++
	}
	l1, l2 := h.Stats()
	if l1.Misses > l1.Accesses {
		t.Errorf("L1 misses %d > accesses %d", l1.Misses, l1.Accesses)
	}
	if l2.Misses > l2.Accesses {
		t.Errorf("L2 misses %d > accesses %d", l2.Misses, l2.Accesses)
	}
	if l2.Accesses > l1.Misses {
		t.Errorf("L2 accesses %d > L1 misses %d", l2.Accesses, l1.Misses)
	}
}

func TestStoreMarksDirtyAndWritesBack(t *testing.T) {
	cfg := smallConfig()
	h := MustNew(cfg)
	// Write a line, then evict it by filling the set.
	h.AccessWrite(0, 0)
	sets := cfg.L1.Sets()
	stride := memmodel.Addr(sets * memmodel.LineSize)
	now := Cycle(1000)
	for i := 1; i <= cfg.L1.Ways; i++ {
		res := h.Access(memmodel.Addr(i)*stride, now)
		now = res.Done + 1
	}
	l1, _ := h.Stats()
	if l1.Writebacks == 0 {
		t.Error("evicting a written line must count a write-back")
	}
}

func TestLoadsDoNotWriteBack(t *testing.T) {
	cfg := smallConfig()
	h := MustNew(cfg)
	sets := cfg.L1.Sets()
	stride := memmodel.Addr(sets * memmodel.LineSize)
	now := Cycle(0)
	for i := 0; i <= 2*cfg.L1.Ways; i++ {
		res := h.Access(memmodel.Addr(i)*stride, now)
		now = res.Done + 1
	}
	l1, l2 := h.Stats()
	if l1.Writebacks != 0 || l2.Writebacks != 0 {
		t.Errorf("clean evictions must not write back: l1=%d l2=%d", l1.Writebacks, l2.Writebacks)
	}
}

func TestL2WritebackOnDirtyEviction(t *testing.T) {
	// Thrash one L2 set with writes until dirty L2 lines are evicted.
	cfg := smallConfig()
	h := MustNew(cfg)
	l2sets := cfg.L2.Sets()
	stride := memmodel.Addr(l2sets * memmodel.LineSize)
	now := Cycle(0)
	for i := 0; i <= 3*cfg.L2.Ways; i++ {
		res := h.AccessWrite(memmodel.Addr(i)*stride, now)
		now = res.Done + 1
		// Evict from L1 quickly by touching other lines in the L1 set.
		res = h.Access(memmodel.Addr(i)*stride+64, now)
		now = res.Done + 1
	}
	_, l2 := h.Stats()
	if l2.Writebacks == 0 {
		t.Error("dirty L2 evictions must count write-backs")
	}
}

// TestResetMatchesFresh drives a mixed demand/prefetch sequence through a
// reset hierarchy and a freshly built one and requires bit-identical
// outcomes and statistics: the contract that lets the run-scratch pool
// (sim.RunPool) recycle hierarchies across simulation runs.
func TestResetMatchesFresh(t *testing.T) {
	cfg := smallConfig()
	drive := func(h *Hierarchy) ([]Result, LevelStats, LevelStats) {
		var out []Result
		now := Cycle(0)
		for i := 0; i < 64; i++ {
			addr := memmodel.Addr((i * 37) % 41 * memmodel.LineSize)
			var res Result
			switch i % 3 {
			case 0:
				res = h.Access(addr, now)
			case 1:
				res = h.AccessWrite(addr+8, now)
			default:
				h.Prefetch(addr+memmodel.Addr(memmodel.LineSize), now)
				res = h.Access(addr, now)
			}
			out = append(out, res)
			now = res.Done + 3
		}
		h.FinishStats()
		l1, l2 := h.Stats()
		return out, l1, l2
	}

	used := MustNew(cfg)
	drive(used) // dirty it thoroughly
	used.Reset()
	gotRes, gotL1, gotL2 := drive(used)
	wantRes, wantL1, wantL2 := drive(MustNew(cfg))

	for i := range wantRes {
		if gotRes[i] != wantRes[i] {
			t.Fatalf("access %d diverged after Reset: got %+v want %+v", i, gotRes[i], wantRes[i])
		}
	}
	if gotL1 != wantL1 || gotL2 != wantL2 {
		t.Errorf("stats diverged after Reset:\n got %+v / %+v\nwant %+v / %+v", gotL1, gotL2, wantL1, wantL2)
	}
}
