// Package cache models the two-level cache hierarchy of the paper's
// simulated machine (Table 2): a private L1 data cache and a shared L2,
// backed by fixed-latency DRAM, with per-level MSHR files that bound the
// number of outstanding misses.
//
// The model is a timing approximation driven by the CPU model: every access
// carries the cycle at which it is issued and returns the cycle at which its
// data is available. Lines track whether they were filled by a prefetch and
// whether they have been touched by a demand access, which is what the
// paper's Figure 9 access-category breakdown needs.
package cache

import (
	"errors"
	"fmt"

	"semloc/internal/memmodel"
)

// ErrBadConfig tags every configuration validation failure, so callers and
// the harness panic guard can classify MustNew panics with errors.Is.
var ErrBadConfig = errors.New("invalid cache configuration")

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle uint64

// LevelConfig describes one cache level.
type LevelConfig struct {
	// Name appears in statistics output ("L1D", "L2").
	Name string
	// Size is the capacity in bytes.
	Size int
	// Ways is the set associativity.
	Ways int
	// Latency is the access (hit) latency in cycles.
	Latency Cycle
	// MSHRs bounds outstanding misses at this level.
	MSHRs int
}

// Sets returns the number of sets implied by the configuration.
func (c LevelConfig) Sets() int {
	return c.Size / (memmodel.LineSize * c.Ways)
}

// Validate reports configuration errors; every failure wraps ErrBadConfig.
func (c LevelConfig) Validate() error {
	if c.Size <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cache %s: size and ways must be positive: %w", c.Name, ErrBadConfig)
	}
	if c.Size%(memmodel.LineSize*c.Ways) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible by ways*linesize: %w", c.Name, c.Size, ErrBadConfig)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two: %w", c.Name, sets, ErrBadConfig)
	}
	if c.MSHRs <= 0 {
		return fmt.Errorf("cache %s: MSHRs must be positive: %w", c.Name, ErrBadConfig)
	}
	return nil
}

// Config describes the full hierarchy.
type Config struct {
	L1 LevelConfig
	L2 LevelConfig
	// DRAMLatency is the main-memory access latency in cycles.
	DRAMLatency Cycle
	// PrefetchQueue bounds outstanding prefetch requests (the prefetcher's
	// request queue between L1 and L2). Defaults to 8 when zero.
	PrefetchQueue int
	// DRAMChannels and DRAMBusyCycles model memory bandwidth: each DRAM
	// access occupies one of DRAMChannels channels for DRAMBusyCycles
	// before another request can use it. Demand and prefetch traffic
	// share the channels, so overfetching prefetchers pay for their
	// waste. Defaults: 4 channels, 16 cycles (0.25 lines/cycle peak).
	DRAMChannels   int
	DRAMBusyCycles Cycle
}

// DefaultConfig returns the Table 2 configuration: 64 kB 8-way 2-cycle L1D,
// 2 MB 16-way 20-cycle L2, 300-cycle main memory, 4 L1 MSHRs, 20 L2 MSHRs.
func DefaultConfig() Config {
	return Config{
		L1:             LevelConfig{Name: "L1D", Size: 64 << 10, Ways: 8, Latency: 2, MSHRs: 4},
		L2:             LevelConfig{Name: "L2", Size: 2 << 20, Ways: 16, Latency: 20, MSHRs: 20},
		DRAMLatency:    300,
		PrefetchQueue:  8,
		DRAMChannels:   4,
		DRAMBusyCycles: 16,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.L1.Validate(); err != nil {
		return err
	}
	if err := c.L2.Validate(); err != nil {
		return err
	}
	if c.DRAMLatency == 0 {
		return fmt.Errorf("cache: DRAM latency must be positive: %w", ErrBadConfig)
	}
	return nil
}
