package cache

import (
	"semloc/internal/memmodel"
)

// Outcome describes where a demand access was satisfied.
type Outcome uint8

// Demand access outcomes.
const (
	// OutcomeL1Hit: data present in L1 when the access issued.
	OutcomeL1Hit Outcome = iota
	// OutcomeL1InFlight: the line was already being filled into L1 (by a
	// prefetch or an earlier miss); the access waits for the fill.
	OutcomeL1InFlight
	// OutcomeL2Hit: missed L1, hit L2.
	OutcomeL2Hit
	// OutcomeL2InFlight: missed L1, merged with an outstanding L2 fill.
	OutcomeL2InFlight
	// OutcomeMemory: missed both levels; fetched from DRAM.
	OutcomeMemory
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeL1Hit:
		return "l1-hit"
	case OutcomeL1InFlight:
		return "l1-inflight"
	case OutcomeL2Hit:
		return "l2-hit"
	case OutcomeL2InFlight:
		return "l2-inflight"
	case OutcomeMemory:
		return "memory"
	default:
		return "outcome(?)"
	}
}

// Result describes one demand access.
type Result struct {
	// Done is the cycle at which the data is available to the core.
	Done Cycle
	// Outcome is where the access was satisfied.
	Outcome Outcome
	// PrefetchedLine reports that the satisfying L1 line was brought in by a
	// prefetch and this is its first demand touch ("hit prefetched line" /
	// "shorter wait time" in Figure 9, depending on Outcome).
	PrefetchedLine bool
}

// Hierarchy is the two-level cache system.
type Hierarchy struct {
	cfg      Config
	l1       *level
	l2       *level
	pfQue    mshrFile // outstanding-prefetch limiter (request queue)
	dram     mshrFile // DRAM channel occupancy (bandwidth model)
	dramBusy Cycle
}

// New builds a hierarchy; the configuration must be valid.
func New(cfg Config) (*Hierarchy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pq := cfg.PrefetchQueue
	if pq <= 0 {
		pq = 8
	}
	ch := cfg.DRAMChannels
	if ch <= 0 {
		ch = 4
	}
	busy := cfg.DRAMBusyCycles
	if busy == 0 {
		busy = 16
	}
	return &Hierarchy{
		cfg: cfg, l1: newLevel(cfg.L1), l2: newLevel(cfg.L2),
		pfQue: newMSHRFile(pq), dram: newMSHRFile(ch), dramBusy: busy,
	}, nil
}

// MustNew builds a hierarchy and panics on configuration errors (the panic
// value is an error wrapping ErrBadConfig, which the simulation harness
// recovers into a typed run failure); intended for tests and defaults
// known to be valid.
func MustNew(cfg Config) *Hierarchy {
	h, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Reset returns the hierarchy to its just-constructed state in place —
// every line invalid, all MSHRs and DRAM channels free, statistics zeroed —
// without reallocating the way arrays. A reset hierarchy must behave
// bit-identically to a freshly built one; the run-scratch pool
// (sim.RunPool) relies on this to recycle hierarchies across runs.
func (h *Hierarchy) Reset() {
	h.l1.reset()
	h.l2.reset()
	h.pfQue.reset()
	h.dram.reset()
}

// Access performs a demand load to the line containing addr at cycle now
// and returns when and where it was satisfied.
func (h *Hierarchy) Access(addr memmodel.Addr, now Cycle) Result {
	return h.access(addr, now, false)
}

// AccessWrite performs a demand store (write-allocate, write-back): the
// line is fetched like a load but marked dirty, so its eventual eviction
// generates write-back traffic.
func (h *Hierarchy) AccessWrite(addr memmodel.Addr, now Cycle) Result {
	return h.access(addr, now, true)
}

func (h *Hierarchy) access(addr memmodel.Addr, now Cycle, store bool) Result {
	line := memmodel.LineOf(addr)
	h.l1.stats.Accesses++

	if wi := h.l1.lookup(line); wi >= 0 {
		h.l1.touch(wi)
		m := &h.l1.meta[wi]
		if store {
			m.dirty = true
		}
		firstPrefetchTouch := m.prefetched && !m.everUsed
		if firstPrefetchTouch {
			m.everUsed = true
		}
		if ft := h.l1.fill[wi]; ft > now {
			// Line still in flight: wait for the fill.
			h.l1.stats.Misses++
			h.l1.stats.InFlightHits++
			return Result{Done: maxCycle(ft, now+h.cfg.L1.Latency), Outcome: OutcomeL1InFlight, PrefetchedLine: firstPrefetchTouch}
		}
		// Plain L1 hit.
		return Result{Done: now + h.cfg.L1.Latency, Outcome: OutcomeL1Hit, PrefetchedLine: firstPrefetchTouch}
	}

	// L1 miss.
	h.l1.stats.Misses++
	start, idx := h.l1.mshr.acquire(now)
	fill, outcome := h.accessL2(line, start+h.cfg.L1.Latency, false)
	h.l1.mshr.hold(idx, fill)
	wi, dirtyEvict := h.l1.install(line, now, fill, false, false)
	if store {
		h.l1.meta[wi].dirty = true
	}
	if dirtyEvict {
		// L1 write-back drains into the L2 (marking it dirty there);
		// no DRAM traffic yet.
		h.markL2Dirty(line)
	}
	return Result{Done: fill, Outcome: outcome}
}

// markL2Dirty propagates an L1 write-back into the L2 copy when present.
func (h *Hierarchy) markL2Dirty(line memmodel.Line) {
	// The evicted line's L2 copy is usually resident (it was filled on the
	// original miss); if it has since been evicted, the write-back would
	// allocate, which this model folds into the general DRAM traffic.
	if wi := h.l2.lookup(line); wi >= 0 {
		h.l2.meta[wi].dirty = true
	}
}

// accessL2 handles an L1 miss (demand or prefetch) arriving at the L2 at
// cycle t. It returns the fill-completion time and the outcome
// classification.
func (h *Hierarchy) accessL2(line memmodel.Line, t Cycle, prefetch bool) (Cycle, Outcome) {
	if !prefetch {
		h.l2.stats.Accesses++
	}
	if wi := h.l2.lookup(line); wi >= 0 {
		h.l2.touch(wi)
		m := &h.l2.meta[wi]
		if m.prefetched && !m.everUsed && !prefetch {
			m.everUsed = true
		}
		ft := h.l2.fill[wi]
		if ft <= t {
			return t + h.cfg.L2.Latency, OutcomeL2Hit
		}
		if !prefetch {
			h.l2.stats.Misses++
			h.l2.stats.InFlightHits++
		}
		return maxCycle(ft, t+h.cfg.L2.Latency), OutcomeL2InFlight
	}
	if !prefetch {
		h.l2.stats.Misses++
	}
	start, idx := h.l2.mshr.acquire(t)
	// DRAM bandwidth: the request must also win a channel, which stays
	// busy for dramBusy cycles after the transfer begins.
	chStart, ch := h.dram.acquire(start)
	h.dram.hold(ch, chStart+h.dramBusy)
	fill := chStart + h.cfg.L2.Latency + h.cfg.DRAMLatency
	h.l2.mshr.hold(idx, fill)
	// Prefetch fills install at LRU position (prefetch-conscious
	// insertion): inaccurate prefetches are evicted first and cannot
	// thrash an L2-resident working set.
	if _, dirtyEvict := h.l2.install(line, t, fill, prefetch, prefetch); dirtyEvict {
		// Evicting a dirty L2 line writes it back to DRAM, consuming a
		// channel slot (the fill itself is unaffected: eviction buffers
		// decouple the two transfers).
		wbStart, wb := h.dram.acquire(fill)
		h.dram.hold(wb, wbStart+h.dramBusy)
	}
	return fill, OutcomeMemory
}

// Prefetch requests that the line containing addr be brought into the L1 at
// cycle now. It returns false if the prefetch was dropped because the line
// is already present or in flight at L1 (no new traffic generated).
//
// Prefetch fills allocate into both levels, mirroring a demand fill path,
// but travel through the prefetcher's own request queue between the L1 and
// the L2 rather than occupying the small demand MSHR file — the standard
// arrangement for an L1 prefetcher, and what keeps prefetching from
// stealing the demand stream's miss bandwidth. The L2's MSHRs still bound
// total outstanding traffic.
func (h *Hierarchy) Prefetch(addr memmodel.Addr, now Cycle) bool {
	line := memmodel.LineOf(addr)
	if h.l1.lookup(line) >= 0 {
		h.l1.stats.PrefetchDrops++
		return false
	}
	h.l1.stats.Prefetches++
	start, idx := h.pfQue.acquire(now)
	fill, _ := h.accessL2(line, start+h.cfg.L1.Latency, true)
	h.pfQue.hold(idx, fill)
	if _, dirtyEvict := h.l1.install(line, now, fill, true, false); dirtyEvict {
		h.markL2Dirty(line)
	}
	return true
}

// Contains reports whether the line holding addr is present (or in flight)
// at the given level (1 or 2). Used by tests and by prefetchers that filter
// redundant prefetches.
func (h *Hierarchy) Contains(levelNum int, addr memmodel.Addr) bool {
	line := memmodel.LineOf(addr)
	switch levelNum {
	case 1:
		return h.l1.lookup(line) >= 0
	case 2:
		return h.l2.lookup(line) >= 0
	default:
		return false
	}
}

// FreeL1MSHRs returns the number of L1 MSHRs free at cycle now.
func (h *Hierarchy) FreeL1MSHRs(now Cycle) int { return h.l1.mshr.free(now) }

// FreePrefetchSlots returns the number of free prefetch-request-queue
// slots at cycle now. The context prefetcher consults this to convert
// prefetches into shadow operations when the memory system is stressed
// (§4.2; the paper checks MSHR availability — in this model prefetches
// travel through their own request queue, so that queue is the stressed
// resource).
func (h *Hierarchy) FreePrefetchSlots(now Cycle) int { return h.pfQue.free(now) }

// Stats returns per-level statistics. FinishStats must be called first for
// useless-prefetch counts to include still-resident lines.
func (h *Hierarchy) Stats() (l1, l2 LevelStats) { return h.l1.stats, h.l2.stats }

// FinishStats folds still-resident never-used prefetched lines into the
// useless-prefetch counters. Call once at end of simulation.
func (h *Hierarchy) FinishStats() {
	h.l1.flushNeverUsed()
	h.l2.flushNeverUsed()
}

// ResetStats clears statistics counters (used at the warm-up boundary) while
// preserving cache contents.
func (h *Hierarchy) ResetStats() {
	h.l1.stats = LevelStats{Name: h.l1.cfg.Name}
	h.l2.stats = LevelStats{Name: h.l2.cfg.Name}
}

func maxCycle(a, b Cycle) Cycle {
	if a > b {
		return a
	}
	return b
}
