package cache

import (
	"testing"

	"semloc/internal/memmodel"
)

// benchAddrs builds a mixed access pattern: a hot working set that mostly
// hits L1 plus a cold sweep that misses through to DRAM, so the benchmark
// covers the lookup, MSHR and install paths together.
func benchAddrs(n int) []memmodel.Addr {
	rng := memmodel.NewRNG(41)
	out := make([]memmodel.Addr, n)
	for i := range out {
		if rng.Intn(4) == 0 {
			out[i] = memmodel.Addr(rng.Uint64() & 0x3ffffff) // cold, 64 MB span
		} else {
			out[i] = memmodel.Addr(rng.Uint64() & 0x3fff) // hot 16 kB set
		}
	}
	return out
}

// BenchmarkHierarchyAccess measures the demand-lookup path. The hot-path
// invariant (DESIGN.md, "Hot path & benchmarking") is 0 allocs/op.
func BenchmarkHierarchyAccess(b *testing.B) {
	h := MustNew(DefaultConfig())
	addrs := benchAddrs(8192)
	var now Cycle
	for i := range addrs {
		h.Access(addrs[i], now)
		now += 2
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(addrs[i%len(addrs)], now)
		now += 2
	}
}

// BenchmarkHierarchyPrefetch measures the prefetch-fill path end to end
// (request queue, L2, DRAM channels, both installs).
func BenchmarkHierarchyPrefetch(b *testing.B) {
	h := MustNew(DefaultConfig())
	addrs := benchAddrs(8192)
	var now Cycle
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Prefetch(addrs[i%len(addrs)], now)
		now += 2
	}
}
