package cache

import (
	"semloc/internal/memmodel"
)

// way is one cache way's metadata.
type way struct {
	tag   uint64
	valid bool
	// fillTime is the cycle at which the line's data arrives. A line may be
	// "present" in the tag array while still in flight (fillTime in the
	// future); a demand access then merges with the outstanding fill.
	fillTime Cycle
	// prefetched marks lines brought in by a prefetch that have not yet been
	// touched by a demand access.
	prefetched bool
	// everUsed marks prefetched lines that were eventually demanded.
	everUsed bool
	// dirty marks lines written since fill (write-back policy).
	dirty bool
	// lru is the last-touch stamp for replacement.
	lru uint64
}

// LevelStats counts events at one level.
type LevelStats struct {
	Name          string
	Accesses      uint64 // demand accesses
	Misses        uint64 // demand misses (including in-flight merges)
	InFlightHits  uint64 // demand accesses merged with an outstanding fill
	Prefetches    uint64 // prefetch fills installed
	PrefetchDrops uint64 // prefetches dropped (already present or in flight)
	UselessEvicts uint64 // prefetched-but-never-used lines evicted
	Writebacks    uint64 // dirty lines written back on eviction
}

// MissRate returns demand misses / demand accesses.
func (s LevelStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// level is one cache level's state.
type level struct {
	cfg      LevelConfig
	setMask  uint64
	sets     [][]way
	lruClock uint64
	mshr     mshrFile
	stats    LevelStats
}

func newLevel(cfg LevelConfig) *level {
	sets := cfg.Sets()
	l := &level{
		cfg:     cfg,
		setMask: uint64(sets - 1),
		sets:    make([][]way, sets),
		mshr:    newMSHRFile(cfg.MSHRs),
	}
	ways := make([]way, sets*cfg.Ways)
	for i := range l.sets {
		l.sets[i] = ways[i*cfg.Ways : (i+1)*cfg.Ways : (i+1)*cfg.Ways]
	}
	l.stats.Name = cfg.Name
	return l
}

// reset returns the level to its just-constructed state in place, keeping
// the way and MSHR storage (the run-scratch pool recycles hierarchies
// across simulation runs).
func (l *level) reset() {
	for i := range l.sets {
		clear(l.sets[i])
	}
	l.lruClock = 0
	l.mshr.reset()
	l.stats = LevelStats{Name: l.cfg.Name}
}

func (l *level) setOf(line memmodel.Line) []way {
	return l.sets[uint64(line)&l.setMask]
}

// lookup returns the way holding line, or nil.
func (l *level) lookup(line memmodel.Line) *way {
	set := l.setOf(line)
	tag := uint64(line)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// touch updates LRU state.
func (l *level) touch(w *way) {
	l.lruClock++
	w.lru = l.lruClock
}

// victim picks the replacement way for line's set: an invalid way if one
// exists, otherwise the LRU way. Lines still in flight (fillTime beyond now)
// are protected from replacement when possible, matching MSHR-held fills.
func (l *level) victim(line memmodel.Line, now Cycle) *way {
	set := l.setOf(line)
	var lru *way
	var lruAny *way
	for i := range set {
		w := &set[i]
		if !w.valid {
			return w
		}
		if lruAny == nil || w.lru < lruAny.lru {
			lruAny = w
		}
		if w.fillTime <= now && (lru == nil || w.lru < lru.lru) {
			lru = w
		}
	}
	if lru == nil {
		lru = lruAny
	}
	return lru
}

// install places line into the cache, filling at fillTime, evicting as
// needed. It returns the way installed into. When lruInsert is set the
// line lands at LRU position instead of MRU (prefetch-conscious
// insertion).
// install's victim eviction reports whether a dirty line was displaced so
// the hierarchy can generate write-back traffic.
func (l *level) install(line memmodel.Line, now, fillTime Cycle, prefetched, lruInsert bool) (w *way, dirtyEvict bool) {
	w = l.victim(line, now)
	if w.valid && w.prefetched && !w.everUsed {
		l.stats.UselessEvicts++
	}
	if w.valid && w.dirty {
		l.stats.Writebacks++
		dirtyEvict = true
	}
	*w = way{tag: uint64(line), valid: true, fillTime: fillTime, prefetched: prefetched}
	if lruInsert {
		w.lru = 0
	} else {
		l.touch(w)
	}
	return w, dirtyEvict
}

// FlushNeverUsed scans for prefetched-but-never-demanded lines still
// resident at end of simulation and counts them as useless.
func (l *level) flushNeverUsed() {
	for _, set := range l.sets {
		for i := range set {
			if set[i].valid && set[i].prefetched && !set[i].everUsed {
				l.stats.UselessEvicts++
			}
		}
	}
}

// mshrFile models a fixed number of miss-status holding registers. A miss
// occupies a register until its fill completes; when all registers are busy
// a new miss waits for the earliest release.
type mshrFile struct {
	busyUntil []Cycle
}

func newMSHRFile(n int) mshrFile {
	return mshrFile{busyUntil: make([]Cycle, n)}
}

// reset frees every register in place.
func (m *mshrFile) reset() {
	clear(m.busyUntil)
}

// acquire reserves a register for a miss issued at time t that will need
// the register until complete(start) returns its completion time. It
// returns the actual start time (>= t; delayed if all registers are busy)
// and a function to call with the completion time.
func (m *mshrFile) acquire(t Cycle) (start Cycle, idx int) {
	best := 0
	for i := 1; i < len(m.busyUntil); i++ {
		if m.busyUntil[i] < m.busyUntil[best] {
			best = i
		}
	}
	start = t
	if m.busyUntil[best] > t {
		start = m.busyUntil[best]
	}
	return start, best
}

func (m *mshrFile) hold(idx int, until Cycle) {
	m.busyUntil[idx] = until
}

// free counts registers free at time t.
func (m *mshrFile) free(t Cycle) int {
	n := 0
	for _, b := range m.busyUntil {
		if b <= t {
			n++
		}
	}
	return n
}
