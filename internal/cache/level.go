package cache

import (
	"semloc/internal/memmodel"
)

// wayMeta carries the per-line status bits that demand touches and
// evictions consult. The timing-critical per-way state (tag, fill time,
// LRU stamp) lives in the level's flat word arrays instead — see level.
type wayMeta struct {
	// prefetched marks lines brought in by a prefetch that have not yet been
	// touched by a demand access.
	prefetched bool
	// everUsed marks prefetched lines that were eventually demanded.
	everUsed bool
	// dirty marks lines written since fill (write-back policy).
	dirty bool
}

// LevelStats counts events at one level.
type LevelStats struct {
	Name          string
	Accesses      uint64 // demand accesses
	Misses        uint64 // demand misses (including in-flight merges)
	InFlightHits  uint64 // demand accesses merged with an outstanding fill
	Prefetches    uint64 // prefetch fills installed
	PrefetchDrops uint64 // prefetches dropped (already present or in flight)
	UselessEvicts uint64 // prefetched-but-never-used lines evicted
	Writebacks    uint64 // dirty lines written back on eviction
}

// MissRate returns demand misses / demand accesses.
func (s LevelStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// invalidTag marks an empty slot in the packed tag array. Line numbers are
// block addresses (full addresses shifted right), so no real line reaches
// the all-ones value.
const invalidTag = ^uint64(0)

// level is one cache level's state, stored structure-of-arrays: every
// per-way field the lookup and victim scans read is a flat word array
// indexed set*Ways+way, so each scan walks one or two contiguous cache
// lines instead of striding across per-way structs. A way is valid iff its
// tags slot differs from invalidTag.
type level struct {
	cfg     LevelConfig
	setMask uint64
	// tags holds each way's line number (invalidTag = empty slot).
	tags []uint64
	// fill holds the cycle at which each line's data arrives. A line may be
	// "present" in the tag array while still in flight (fill in the future);
	// a demand access then merges with the outstanding fill.
	fill []Cycle
	// lru holds each way's last-touch stamp for replacement.
	lru  []uint64
	meta []wayMeta
	// validWays counts valid ways per set, so steady-state victim
	// selection (every set full — the permanent condition once warm) skips
	// the tag scan for empty slots entirely.
	validWays []uint8
	lruClock  uint64
	mshr      mshrFile
	stats     LevelStats
}

func newLevel(cfg LevelConfig) *level {
	sets := cfg.Sets()
	n := sets * cfg.Ways
	l := &level{
		cfg:       cfg,
		setMask:   uint64(sets - 1),
		tags:      make([]uint64, n),
		fill:      make([]Cycle, n),
		lru:       make([]uint64, n),
		meta:      make([]wayMeta, n),
		validWays: make([]uint8, sets),
		mshr:      newMSHRFile(cfg.MSHRs),
	}
	for i := range l.tags {
		l.tags[i] = invalidTag
	}
	l.stats.Name = cfg.Name
	return l
}

// reset returns the level to its just-constructed state in place, keeping
// the array and MSHR storage (the run-scratch pool recycles hierarchies
// across simulation runs).
func (l *level) reset() {
	for i := range l.tags {
		l.tags[i] = invalidTag
	}
	clear(l.fill)
	clear(l.lru)
	clear(l.meta)
	clear(l.validWays)
	l.lruClock = 0
	l.mshr.reset()
	l.stats = LevelStats{Name: l.cfg.Name}
}

// lookup returns the flat way index holding line, or -1.
func (l *level) lookup(line memmodel.Line) int {
	base := int(uint64(line)&l.setMask) * l.cfg.Ways
	tags := l.tags[base : base+l.cfg.Ways]
	for i := range tags {
		if tags[i] == uint64(line) {
			return base + i
		}
	}
	return -1
}

// touch updates LRU state for the way at flat index wi.
func (l *level) touch(wi int) {
	l.lruClock++
	l.lru[wi] = l.lruClock
}

// victim picks the replacement way's flat index in line's set: an invalid
// way if one exists, otherwise the LRU way. Lines still in flight (fill
// beyond now) are protected from replacement when possible, matching
// MSHR-held fills.
func (l *level) victim(line memmodel.Line, now Cycle) int {
	set := int(uint64(line) & l.setMask)
	base := set * l.cfg.Ways
	end := base + l.cfg.Ways
	if int(l.validWays[set]) < l.cfg.Ways {
		for i := base; i < end; i++ {
			if l.tags[i] == invalidTag {
				return i
			}
		}
	}
	lru, lruAny := -1, -1
	for i := base; i < end; i++ {
		if lruAny < 0 || l.lru[i] < l.lru[lruAny] {
			lruAny = i
		}
		if l.fill[i] <= now && (lru < 0 || l.lru[i] < l.lru[lru]) {
			lru = i
		}
	}
	if lru < 0 {
		lru = lruAny
	}
	return lru
}

// install places line into the cache, filling at fillTime, evicting as
// needed. It returns the flat index of the way installed into. When
// lruInsert is set the line lands at LRU position instead of MRU
// (prefetch-conscious insertion). The second result reports whether a
// dirty line was displaced so the hierarchy can generate write-back
// traffic.
func (l *level) install(line memmodel.Line, now, fillTime Cycle, prefetched, lruInsert bool) (wi int, dirtyEvict bool) {
	wi = l.victim(line, now)
	if l.tags[wi] != invalidTag {
		m := l.meta[wi]
		if m.prefetched && !m.everUsed {
			l.stats.UselessEvicts++
		}
		if m.dirty {
			l.stats.Writebacks++
			dirtyEvict = true
		}
	} else {
		l.validWays[uint64(line)&l.setMask]++
	}
	l.tags[wi] = uint64(line)
	l.fill[wi] = fillTime
	l.meta[wi] = wayMeta{prefetched: prefetched}
	if lruInsert {
		l.lru[wi] = 0
	} else {
		l.touch(wi)
	}
	return wi, dirtyEvict
}

// FlushNeverUsed scans for prefetched-but-never-demanded lines still
// resident at end of simulation and counts them as useless.
func (l *level) flushNeverUsed() {
	for i := range l.tags {
		if l.tags[i] != invalidTag && l.meta[i].prefetched && !l.meta[i].everUsed {
			l.stats.UselessEvicts++
		}
	}
}

// mshrFile models a fixed number of miss-status holding registers. A miss
// occupies a register until its fill completes; when all registers are busy
// a new miss waits for the earliest release.
//
// busyUntil is kept as an implicit min-heap so acquire (which always wants
// the earliest-free register) peeks the root instead of scanning the file.
// Registers are interchangeable — only the multiset of release times is
// observable (acquire's start is its minimum, free counts it) — so heap
// order, which permutes register indexes relative to the old linear scan,
// cannot change any result.
type mshrFile struct {
	busyUntil []Cycle
}

func newMSHRFile(n int) mshrFile {
	return mshrFile{busyUntil: make([]Cycle, n)}
}

// reset frees every register in place (all-zero is a valid heap).
func (m *mshrFile) reset() {
	clear(m.busyUntil)
}

// acquire reserves a register for a miss issued at time t. It returns the
// actual start time (>= t; delayed if all registers are busy) and the
// register index, which the caller must hand back to hold along with the
// fill's completion time before the next acquire.
func (m *mshrFile) acquire(t Cycle) (start Cycle, idx int) {
	start = t
	if b := m.busyUntil[0]; b > t {
		start = b
	}
	return start, 0
}

// hold marks the register acquire returned busy until the given time and
// restores the heap. until never precedes the popped minimum, so a
// sift-down from idx suffices.
func (m *mshrFile) hold(idx int, until Cycle) {
	b := m.busyUntil
	for {
		c := 2*idx + 1
		if c >= len(b) {
			break
		}
		if r := c + 1; r < len(b) && b[r] < b[c] {
			c = r
		}
		if b[c] >= until {
			break
		}
		b[idx] = b[c]
		idx = c
	}
	b[idx] = until
}

// free counts registers free at time t.
func (m *mshrFile) free(t Cycle) int {
	n := 0
	for _, b := range m.busyUntil {
		if b <= t {
			n++
		}
	}
	return n
}
