// Package trace defines the instruction/memory trace format that connects
// workload generators to the timing simulator, together with an emitter API
// and a compact binary codec.
//
// The paper drives gem5 with x86 binaries whose memory instructions are
// preceded by compiler-injected NOPs carrying semantic hints. Here the
// equivalent information travels in the trace itself: each Record carries
// the hardware-visible attributes (PC, branch outcome, register operand,
// loaded value) and the compiler attributes (object type, link offset, form
// of reference) that the context prefetcher consumes (Table 1 of the paper).
package trace

import (
	"fmt"

	"semloc/internal/memmodel"
)

// Kind discriminates trace records.
type Kind uint8

// Record kinds.
const (
	// KindCompute represents Count back-to-back non-memory instructions.
	KindCompute Kind = iota
	// KindLoad is a data load of Size bytes at Addr.
	KindLoad
	// KindStore is a data store of Size bytes at Addr.
	KindStore
	// KindBranch is a conditional branch with outcome Taken.
	KindBranch
	// KindWarmupEnd marks the end of the warm-up phase; statistics reset
	// here so measurements cover steady state (the paper's SimPoint-style
	// phase selection).
	KindWarmupEnd
	kindCount
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindBranch:
		return "branch"
	case KindWarmupEnd:
		return "warmup-end"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// RefForm encodes the syntactic form of a memory reference, one of the
// compiler-injected attributes of Table 1 ("pointer dereference operator
// ('.', '->' or '*'), array index, etc.").
type RefForm uint8

// Reference forms.
const (
	RefNone  RefForm = iota // no hint / non-pointer access
	RefDeref                // *p
	RefArrow                // p->field
	RefDot                  // s.field
	RefIndex                // a[i]
	refFormCount
)

// String implements fmt.Stringer.
func (r RefForm) String() string {
	switch r {
	case RefNone:
		return "none"
	case RefDeref:
		return "deref"
	case RefArrow:
		return "arrow"
	case RefDot:
		return "dot"
	case RefIndex:
		return "index"
	default:
		return fmt.Sprintf("ref(%d)", uint8(r))
	}
}

// SWHints carries the compiler-injected software attributes for one memory
// access. In the paper these are packed into a 32-bit immediate on an
// extended NOP preceding the memory instruction; the workload generators
// attach them directly (see DESIGN.md, substitution table).
type SWHints struct {
	// Valid reports whether the compiler emitted hints for this access.
	// The paper's pass only annotates accesses that load pointer-typed
	// values, so most plain array traffic has Valid == false.
	Valid bool
	// TypeID uniquely enumerates the object type being accessed within the
	// program (e.g. distinguishing graph edges from vertices).
	TypeID uint16
	// LinkOffset is the byte offset within the object of the pointer or
	// index used to reach the adjacent element.
	LinkOffset uint16
	// RefForm is the syntactic reference form.
	RefForm RefForm
}

// NoDep marks a memory record with no producing load.
const NoDep int32 = -1

// Record is one trace event.
//
// Dep carries the data dependency needed by the timing model: for a load or
// store whose address was computed from the value returned by an earlier
// load (pointer chasing), Dep holds the absolute trace index of that
// producer. The CPU model will not issue the access before the producer
// completes, which is what serializes misses on linked structures.
type Record struct {
	PC    uint64
	Addr  memmodel.Addr
	Value uint64 // value loaded/stored (e.g. the pointer read from a node)
	Reg   uint64 // relevant general-register operand (e.g. a search key)
	Dep   int32
	Count uint32 // KindCompute: number of ALU instructions represented
	Kind  Kind
	Size  uint8
	Taken bool
	Hints SWHints
}

// Instructions returns how many dynamic instructions the record represents.
func (r *Record) Instructions() uint64 {
	switch r.Kind {
	case KindCompute:
		return uint64(r.Count)
	case KindWarmupEnd:
		return 0
	default:
		return 1
	}
}

// IsMem reports whether the record is a data memory access.
func (r *Record) IsMem() bool { return r.Kind == KindLoad || r.Kind == KindStore }

// Trace is a complete generated trace plus its metadata.
type Trace struct {
	// Name identifies the workload (Table 3 naming).
	Name string
	// Records holds the event stream; Dep indices refer into this slice.
	Records []Record
}

// Stats summarizes a trace.
type Stats struct {
	Records      int
	Instructions uint64
	Loads        uint64
	Stores       uint64
	Branches     uint64
	Hinted       uint64 // memory records with valid SW hints
	Dependent    uint64 // loads whose address depends on an earlier load
	WarmupIndex  int    // record index of the warm-up marker (-1 if none)
}

// ComputeStats scans the trace once and summarizes it.
func (t *Trace) ComputeStats() Stats {
	s := Stats{WarmupIndex: -1}
	s.Records = len(t.Records)
	for i := range t.Records {
		r := &t.Records[i]
		s.Instructions += r.Instructions()
		switch r.Kind {
		case KindLoad:
			s.Loads++
		case KindStore:
			s.Stores++
		case KindBranch:
			s.Branches++
		case KindWarmupEnd:
			if s.WarmupIndex < 0 {
				s.WarmupIndex = i
			}
		}
		if r.IsMem() {
			if r.Hints.Valid {
				s.Hinted++
			}
			if r.Kind == KindLoad && r.Dep != NoDep {
				s.Dependent++
			}
		}
	}
	return s
}

// Validate checks structural invariants: dependency indices must point
// backwards at loads, kinds must be known, and compute counts non-zero.
func (t *Trace) Validate() error {
	for i := range t.Records {
		r := &t.Records[i]
		if r.Kind >= kindCount {
			return fmt.Errorf("trace %q: record %d has unknown kind %d", t.Name, i, r.Kind)
		}
		if r.Kind == KindCompute && r.Count == 0 {
			return fmt.Errorf("trace %q: record %d is a zero-count compute block", t.Name, i)
		}
		if r.IsMem() {
			if r.Dep != NoDep {
				if r.Dep < 0 || int(r.Dep) >= i {
					return fmt.Errorf("trace %q: record %d dep %d out of range", t.Name, i, r.Dep)
				}
				if t.Records[r.Dep].Kind != KindLoad {
					return fmt.Errorf("trace %q: record %d depends on non-load %d", t.Name, i, r.Dep)
				}
			}
			if r.Size == 0 {
				return fmt.Errorf("trace %q: record %d memory access of size 0", t.Name, i)
			}
			if r.Hints.Valid && r.Hints.RefForm >= refFormCount {
				return fmt.Errorf("trace %q: record %d invalid ref form %d", t.Name, i, r.Hints.RefForm)
			}
		}
	}
	return nil
}
