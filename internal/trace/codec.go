package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace format
//
//	magic   "SLTR" (4 bytes)
//	version uvarint (currently 1)
//	name    uvarint length + bytes
//	count   uvarint number of records
//	records, each:
//	    kind    byte
//	    flags   byte (bit0 taken, bit1 hints valid, bit2 has dep,
//	                  bit3 has value, bit4 has reg)
//	    compute: count uvarint
//	    branch:  pc delta svarint
//	    mem:     pc delta svarint, addr delta svarint, size byte,
//	             [dep backward-distance uvarint], [value uvarint],
//	             [reg uvarint],
//	             [hints: typeID uvarint, linkOff uvarint, refForm byte]
//
// PC and Addr are delta-encoded against the previous record's values, which
// keeps loop-heavy traces small.

const (
	magic   = "SLTR"
	version = 1
)

const (
	flagTaken = 1 << iota
	flagHints
	flagDep
	flagValue
	flagReg
)

// Write serializes t to w.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	putVarint := func(v int64) error {
		n := binary.PutVarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(version); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Records))); err != nil {
		return err
	}
	var prevPC, prevAddr uint64
	for i := range t.Records {
		r := &t.Records[i]
		var flags byte
		if r.Taken {
			flags |= flagTaken
		}
		if r.Hints.Valid {
			flags |= flagHints
		}
		if r.Dep != NoDep {
			flags |= flagDep
		}
		if r.Value != 0 {
			flags |= flagValue
		}
		if r.Reg != 0 {
			flags |= flagReg
		}
		if err := bw.WriteByte(byte(r.Kind)); err != nil {
			return err
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		switch r.Kind {
		case KindCompute:
			if err := putUvarint(uint64(r.Count)); err != nil {
				return err
			}
		case KindBranch:
			if err := putVarint(int64(r.PC) - int64(prevPC)); err != nil {
				return err
			}
			prevPC = r.PC
		case KindLoad, KindStore:
			if err := putVarint(int64(r.PC) - int64(prevPC)); err != nil {
				return err
			}
			prevPC = r.PC
			if err := putVarint(int64(r.Addr) - int64(prevAddr)); err != nil {
				return err
			}
			prevAddr = uint64(r.Addr)
			if err := bw.WriteByte(r.Size); err != nil {
				return err
			}
			if flags&flagDep != 0 {
				if err := putUvarint(uint64(int64(i) - int64(r.Dep))); err != nil {
					return err
				}
			}
			if flags&flagValue != 0 {
				if err := putUvarint(r.Value); err != nil {
					return err
				}
			}
			if flags&flagReg != 0 {
				if err := putUvarint(r.Reg); err != nil {
					return err
				}
			}
			if flags&flagHints != 0 {
				if err := putUvarint(uint64(r.Hints.TypeID)); err != nil {
					return err
				}
				if err := putUvarint(uint64(r.Hints.LinkOffset)); err != nil {
					return err
				}
				if err := bw.WriteByte(byte(r.Hints.RefForm)); err != nil {
					return err
				}
			}
		case KindWarmupEnd:
			// no payload
		default:
			return fmt.Errorf("trace: cannot encode unknown kind %d", r.Kind)
		}
	}
	return bw.Flush()
}

// Read deserializes a complete trace written by Write (or WriteGzip),
// delegating to the streaming Reader.
func Read(r io.Reader) (*Trace, error) {
	t := &Trace{}
	if err := ReadInto(r, t); err != nil {
		return nil, err
	}
	return t, nil
}

// ReadInto deserializes a complete trace into t, reusing t's record buffer
// when it is large enough. Decode loops that replay many traces (the
// benchmark pipeline, sweep tools) can hold one Trace and pay the record
// allocation only once.
func ReadInto(r io.Reader, t *Trace) error {
	sr, err := NewReader(r)
	if err != nil {
		return err
	}
	return sr.ReadAll(t)
}

// ReadAll decodes every remaining record into t, reusing t's record
// buffer when possible. Combined with Reset, it gives an allocation-free
// steady-state decode loop over many traces.
func (sr *Reader) ReadAll(t *Trace) error {
	// Cap the initial allocation: the header's count is untrusted until
	// the records actually decode.
	capacity := sr.Len()
	if capacity > 1<<20 {
		capacity = 1 << 20
	}
	t.Name = sr.Name()
	if cap(t.Records) < capacity {
		t.Records = make([]Record, 0, capacity)
	} else {
		t.Records = t.Records[:0]
	}
	for {
		n := len(t.Records)
		if n == cap(t.Records) {
			t.Records = append(t.Records, Record{})
		} else {
			t.Records = t.Records[:n+1]
		}
		// Decode straight into the slice's next slot: no per-record copy.
		if err := sr.Next(&t.Records[n]); err != nil {
			t.Records = t.Records[:n]
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}
