package trace

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReader proves the streaming decoder (NewReader + Next) never panics
// on arbitrary bytes: every malformed input must surface as an error or a
// clean io.EOF. A seed corpus is checked in under testdata/fuzz/FuzzReader.
func FuzzReader(f *testing.F) {
	orig := sampleTrace()
	var plain, gz bytes.Buffer
	if err := Write(&plain, orig); err != nil {
		f.Fatal(err)
	}
	if err := WriteGzip(&gz, orig); err != nil {
		f.Fatal(err)
	}
	f.Add(plain.Bytes())
	f.Add(gz.Bytes())
	f.Add(plain.Bytes()[:len(plain.Bytes())/2])
	f.Add([]byte("SLTR"))
	f.Add([]byte{0x1f, 0x8b})
	f.Add([]byte{})
	// A header claiming a huge record count over no payload.
	huge := []byte("SLTR\x01\x00")
	huge = binary.AppendUvarint(huge, 1<<62)
	f.Add(huge)
	corrupted := append([]byte(nil), plain.Bytes()...)
	if len(corrupted) > 12 {
		corrupted[7] ^= 0x40
		corrupted[11] ^= 0x08
	}
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var rec Record
		for {
			if err := r.Next(&rec); err != nil {
				return
			}
		}
	})
}
