package trace

import "semloc/internal/memmodel"

// Emitter is the instrumentation layer workload generators write through.
// It plays the role of the paper's modified LLVM pass: every memory access
// a workload emits can be annotated with the software attributes the pass
// would have injected, and with the dataflow information (producer load,
// register operand, loaded value) the hardware would expose.
//
// Emitter methods return the absolute index of the record just appended so
// generators can express pointer-chasing dependencies.
type Emitter struct {
	t Trace
}

// NewEmitter creates an emitter for a workload with the given name.
func NewEmitter(name string) *Emitter {
	return &Emitter{t: Trace{Name: name}}
}

// Len returns the number of records emitted so far.
func (e *Emitter) Len() int { return len(e.t.Records) }

// Compute emits n back-to-back non-memory instructions (folded into one
// record). n <= 0 is ignored.
func (e *Emitter) Compute(n int) {
	if n <= 0 {
		return
	}
	// Merge adjacent compute blocks to keep traces compact.
	if l := len(e.t.Records); l > 0 && e.t.Records[l-1].Kind == KindCompute {
		e.t.Records[l-1].Count += uint32(n)
		return
	}
	e.t.Records = append(e.t.Records, Record{Kind: KindCompute, Count: uint32(n), Dep: NoDep})
}

// MemSpec fully describes an annotated memory access for LoadSpec/StoreSpec.
type MemSpec struct {
	PC    uint64
	Addr  memmodel.Addr
	Size  uint8  // defaults to 8
	Value uint64 // loaded/stored value (e.g. the pointer fetched)
	Reg   uint64 // register-operand context (e.g. search key)
	Dep   int    // absolute index of producer load, or <0 for none
	Hints SWHints
}

// LoadSpec emits a fully annotated load and returns its record index.
func (e *Emitter) LoadSpec(s MemSpec) int {
	return e.mem(KindLoad, s)
}

// StoreSpec emits a fully annotated store and returns its record index.
func (e *Emitter) StoreSpec(s MemSpec) int {
	return e.mem(KindStore, s)
}

// Load emits a plain 8-byte load with no dependency or hints.
func (e *Emitter) Load(pc uint64, addr memmodel.Addr) int {
	return e.LoadSpec(MemSpec{PC: pc, Addr: addr, Dep: -1})
}

// LoadDep emits an 8-byte load whose address depends on producer load dep.
func (e *Emitter) LoadDep(pc uint64, addr memmodel.Addr, dep int) int {
	return e.LoadSpec(MemSpec{PC: pc, Addr: addr, Dep: dep})
}

// Store emits a plain 8-byte store.
func (e *Emitter) Store(pc uint64, addr memmodel.Addr) int {
	return e.StoreSpec(MemSpec{PC: pc, Addr: addr, Dep: -1})
}

func (e *Emitter) mem(kind Kind, s MemSpec) int {
	if s.Size == 0 {
		s.Size = 8
	}
	dep := NoDep
	if s.Dep >= 0 && s.Dep < len(e.t.Records) {
		dep = int32(s.Dep)
	}
	e.t.Records = append(e.t.Records, Record{
		Kind:  kind,
		PC:    s.PC,
		Addr:  s.Addr,
		Value: s.Value,
		Reg:   s.Reg,
		Dep:   dep,
		Size:  s.Size,
		Hints: s.Hints,
	})
	return len(e.t.Records) - 1
}

// Branch emits a conditional branch.
func (e *Emitter) Branch(pc uint64, taken bool) {
	e.t.Records = append(e.t.Records, Record{Kind: KindBranch, PC: pc, Taken: taken, Dep: NoDep})
}

// EndWarmup marks the warm-up boundary: the simulator resets statistics
// here. Only the first marker is honoured by the simulator.
func (e *Emitter) EndWarmup() {
	e.t.Records = append(e.t.Records, Record{Kind: KindWarmupEnd, Dep: NoDep})
}

// Finish returns the accumulated trace. The emitter must not be used after
// Finish.
func (e *Emitter) Finish() *Trace {
	t := e.t
	e.t = Trace{}
	return &t
}
