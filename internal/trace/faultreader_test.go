package trace

import (
	"bytes"
	"io"
	"testing"

	"semloc/internal/memmodel"
)

// biggerTrace returns a trace large enough that mid-stream faults land in
// record payloads of every kind.
func biggerTrace() *Trace {
	e := NewEmitter("fault-test")
	for i := 0; i < 200; i++ {
		e.Compute(3)
		j := e.LoadSpec(MemSpec{PC: 0x400 + uint64(i), Addr: memmodel.Addr(0x10000 + i*64),
			Value: uint64(0x20000 + i), Reg: uint64(i), Dep: -1,
			Hints: SWHints{Valid: i%3 == 0, TypeID: uint16(i), LinkOffset: 8, RefForm: RefArrow}})
		e.Branch(0x800+uint64(i), i%2 == 0)
		e.LoadDep(0x900+uint64(i), memmodel.Addr(0x20000+i*64), j)
		e.Store(0xa00+uint64(i), memmodel.Addr(0x30000+i*64))
	}
	return e.Finish()
}

func TestFaultReaderDeterministic(t *testing.T) {
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i)
	}
	cfg := FaultConfig{Seed: 42, BitFlipRate: 0.05, ShortReads: true, TruncateAt: 3000}
	read := func() []byte {
		out, err := io.ReadAll(NewFaultReader(bytes.NewReader(src), cfg))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := read(), read()
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different fault streams")
	}
	if len(a) != 3000 {
		t.Errorf("truncation yielded %d bytes, want 3000", len(a))
	}
	if bytes.Equal(a, src[:3000]) {
		t.Error("bit-flip rate 0.05 flipped nothing over 3000 bytes")
	}
}

func TestFaultReaderShortReads(t *testing.T) {
	src := make([]byte, 1024)
	fr := NewFaultReader(bytes.NewReader(src), FaultConfig{Seed: 7, ShortReads: true})
	buf := make([]byte, 512)
	sawShort := false
	for {
		n, err := fr.Read(buf)
		if n > 0 && n < len(buf) {
			sawShort = true
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !sawShort {
		t.Error("ShortReads never returned a partial read")
	}
}

// decodeAll streams every record out of r, returning the first decode
// error (nil for a clean decode ending in io.EOF). The decoder's contract
// under corruption is: an error or io.EOF, never a panic — a panic fails
// the test for the whole run.
func decodeAll(r io.Reader) error {
	sr, err := NewReader(r)
	if err != nil {
		return err
	}
	var rec Record
	for {
		if err := sr.Next(&rec); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
}

// TestFaultInjectionNeverPanics is the acceptance table test: 10k seeded
// fault-injected / random byte streams through NewReader+Next must produce
// only errors (or clean decodes when a fault lands harmlessly) and zero
// panics.
func TestFaultInjectionNeverPanics(t *testing.T) {
	tr := biggerTrace()
	var plain, gz bytes.Buffer
	if err := Write(&plain, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteGzip(&gz, tr); err != nil {
		t.Fatal(err)
	}

	const streams = 10000
	var failed, clean int
	for seed := uint64(1); seed <= streams; seed++ {
		pick := memmodel.NewRNG(seed)
		var data []byte
		var cfg FaultConfig
		switch seed % 4 {
		case 0:
			// Pure random bytes: no structure at all.
			data = make([]byte, pick.Intn(512))
			for i := range data {
				data[i] = byte(pick.Uint64())
			}
			cfg = FaultConfig{Seed: seed}
		case 1:
			data = plain.Bytes()
			cfg = FaultConfig{Seed: seed, BitFlipRate: 0.1 * pick.Float64(), ShortReads: pick.Intn(2) == 0}
		case 2:
			data = plain.Bytes()
			cfg = FaultConfig{Seed: seed, TruncateAt: 1 + int64(pick.Intn(plain.Len())), ShortReads: true}
		case 3:
			data = gz.Bytes()
			cfg = FaultConfig{Seed: seed, BitFlipRate: 0.02 * pick.Float64(),
				TruncateAt: 1 + int64(pick.Intn(gz.Len()))}
		}
		if err := decodeAll(NewFaultReader(bytes.NewReader(data), cfg)); err != nil {
			failed++
		} else {
			clean++
		}
	}
	// Sanity-check the corpus actually exercised the error paths: the
	// overwhelming majority of corruptions must surface as errors.
	if failed < streams/2 {
		t.Errorf("only %d/%d corrupted streams errored — injector too weak", failed, streams)
	}
	t.Logf("fault injection: %d errored, %d decoded cleanly, 0 panics", failed, clean)
}
