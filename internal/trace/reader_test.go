package trace

import (
	"bytes"
	"io"
	"testing"
)

func TestStreamingReaderMatchesRead(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	sr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sr.Name() != orig.Name {
		t.Errorf("Name = %q, want %q", sr.Name(), orig.Name)
	}
	if sr.Len() != len(orig.Records) {
		t.Errorf("Len = %d, want %d", sr.Len(), len(orig.Records))
	}
	var rec Record
	for i := range orig.Records {
		if err := sr.Next(&rec); err != nil {
			t.Fatalf("Next(%d): %v", i, err)
		}
		if rec != orig.Records[i] {
			t.Fatalf("record %d: got %+v want %+v", i, rec, orig.Records[i])
		}
	}
	if err := sr.Next(&rec); err != io.EOF {
		t.Errorf("Next after end = %v, want io.EOF", err)
	}
	if err := sr.Next(&rec); err != io.EOF {
		t.Errorf("repeated Next after end = %v, want io.EOF", err)
	}
}

func TestGzipRoundTrip(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := WriteGzip(&buf, orig); err != nil {
		t.Fatal(err)
	}
	// Compressed stream must be transparently handled by Read.
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(orig.Records) {
		t.Fatalf("record count %d != %d", len(got.Records), len(orig.Records))
	}
	for i := range orig.Records {
		if got.Records[i] != orig.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestGzipSmallerForRepetitiveTraces(t *testing.T) {
	e := NewEmitter("rep")
	for i := 0; i < 10000; i++ {
		e.Load(0x400, 0x10000)
		e.Compute(3)
	}
	tr := e.Finish()
	var plain, gz bytes.Buffer
	if err := Write(&plain, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteGzip(&gz, tr); err != nil {
		t.Fatal(err)
	}
	if gz.Len() >= plain.Len() {
		t.Errorf("gzip (%d) not smaller than plain (%d)", gz.Len(), plain.Len())
	}
}

func TestReaderTruncatedGzip(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := WriteGzip(&buf, orig); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	_, err := Read(bytes.NewReader(data[:len(data)/2]))
	if err == nil {
		t.Error("expected error for truncated gzip stream")
	}
}

func TestReaderRejectsGarbageAfterGzipMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{0x1f, 0x8b, 0x00, 0x01})); err == nil {
		t.Error("expected error for bogus gzip stream")
	}
}

func FuzzRead(f *testing.F) {
	// Seed with valid plain and gzip traces plus a few corruptions.
	orig := sampleTrace()
	var plain, gz bytes.Buffer
	if err := Write(&plain, orig); err != nil {
		f.Fatal(err)
	}
	if err := WriteGzip(&gz, orig); err != nil {
		f.Fatal(err)
	}
	f.Add(plain.Bytes())
	f.Add(gz.Bytes())
	f.Add([]byte("SLTR"))
	f.Add([]byte{})
	bad := append([]byte(nil), plain.Bytes()...)
	if len(bad) > 10 {
		bad[8] ^= 0xff
	}
	f.Add(bad)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; on success the trace must validate
		// structurally sound dep indices.
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("decoded trace fails validation: %v", err)
		}
	})
}
