package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

func TestStreamingReaderMatchesRead(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	sr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sr.Name() != orig.Name {
		t.Errorf("Name = %q, want %q", sr.Name(), orig.Name)
	}
	if sr.Len() != len(orig.Records) {
		t.Errorf("Len = %d, want %d", sr.Len(), len(orig.Records))
	}
	var rec Record
	for i := range orig.Records {
		if err := sr.Next(&rec); err != nil {
			t.Fatalf("Next(%d): %v", i, err)
		}
		if rec != orig.Records[i] {
			t.Fatalf("record %d: got %+v want %+v", i, rec, orig.Records[i])
		}
	}
	if err := sr.Next(&rec); err != io.EOF {
		t.Errorf("Next after end = %v, want io.EOF", err)
	}
	if err := sr.Next(&rec); err != io.EOF {
		t.Errorf("repeated Next after end = %v, want io.EOF", err)
	}
}

func TestGzipRoundTrip(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := WriteGzip(&buf, orig); err != nil {
		t.Fatal(err)
	}
	// Compressed stream must be transparently handled by Read.
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(orig.Records) {
		t.Fatalf("record count %d != %d", len(got.Records), len(orig.Records))
	}
	for i := range orig.Records {
		if got.Records[i] != orig.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestGzipSmallerForRepetitiveTraces(t *testing.T) {
	e := NewEmitter("rep")
	for i := 0; i < 10000; i++ {
		e.Load(0x400, 0x10000)
		e.Compute(3)
	}
	tr := e.Finish()
	var plain, gz bytes.Buffer
	if err := Write(&plain, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteGzip(&gz, tr); err != nil {
		t.Fatal(err)
	}
	if gz.Len() >= plain.Len() {
		t.Errorf("gzip (%d) not smaller than plain (%d)", gz.Len(), plain.Len())
	}
}

func TestReaderTruncatedGzip(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := WriteGzip(&buf, orig); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	_, err := Read(bytes.NewReader(data[:len(data)/2]))
	if err == nil {
		t.Error("expected error for truncated gzip stream")
	}
}

func TestReaderCorruptGzipBody(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := WriteGzip(&buf, orig); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt the deflate body (past the 10-byte gzip header) at several
	// offsets; each must decode to an error, never a panic. A flip can in
	// principle land in slack bits and still decode — the trace must then
	// at least be structurally valid.
	errored := 0
	for _, off := range []int{10, 12, len(data) / 2, len(data) - 5} {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0xff
		tr, err := Read(bytes.NewReader(mut))
		if err != nil {
			errored++
			continue
		}
		if verr := tr.Validate(); verr != nil {
			t.Errorf("offset %d: corrupt gzip decoded into invalid trace: %v", off, verr)
		}
	}
	if errored == 0 {
		t.Error("no corrupted gzip body produced a decode error")
	}
}

func TestEmptyTraceRoundTrip(t *testing.T) {
	empty := &Trace{Name: "empty"}
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		var err error
		if compress {
			err = WriteGzip(&buf, empty)
		} else {
			err = Write(&buf, empty)
		}
		if err != nil {
			t.Fatal(err)
		}
		got, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("gzip=%v: %v", compress, err)
		}
		if got.Name != "empty" || len(got.Records) != 0 {
			t.Errorf("gzip=%v: round trip = %q/%d records", compress, got.Name, len(got.Records))
		}
		sr, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("gzip=%v: NewReader: %v", compress, err)
		}
		var rec Record
		if err := sr.Next(&rec); err != io.EOF {
			t.Errorf("gzip=%v: Next on empty trace = %v, want io.EOF", compress, err)
		}
	}
}

// header builds a syntactically valid trace header claiming count records.
func header(count uint64) []byte {
	h := []byte("SLTR\x01\x00") // magic, version 1, empty name
	return binary.AppendUvarint(h, count)
}

func TestHeaderCountLimit(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(header(1 << 62))); err == nil {
		t.Error("expected error for header count 1<<62")
	}
	if _, err := NewReader(bytes.NewReader(header(MaxTraceBytes/2 + 1))); err == nil {
		t.Error("expected error for header count just past the byte limit")
	}
	if _, err := NewReader(bytes.NewReader(header(100))); err != nil {
		t.Errorf("reasonable header rejected: %v", err)
	}
}

func TestMaxTraceBytesConfigurable(t *testing.T) {
	orig := MaxTraceBytes
	defer func() { MaxTraceBytes = orig }()
	MaxTraceBytes = 8
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if _, err := NewReader(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("expected a tightened MaxTraceBytes to reject the sample trace header")
	}
}

func TestReaderRejectsGarbageAfterGzipMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{0x1f, 0x8b, 0x00, 0x01})); err == nil {
		t.Error("expected error for bogus gzip stream")
	}
}

func FuzzRead(f *testing.F) {
	// Seed with valid plain and gzip traces plus a few corruptions.
	orig := sampleTrace()
	var plain, gz bytes.Buffer
	if err := Write(&plain, orig); err != nil {
		f.Fatal(err)
	}
	if err := WriteGzip(&gz, orig); err != nil {
		f.Fatal(err)
	}
	f.Add(plain.Bytes())
	f.Add(gz.Bytes())
	f.Add([]byte("SLTR"))
	f.Add([]byte{})
	bad := append([]byte(nil), plain.Bytes()...)
	if len(bad) > 10 {
		bad[8] ^= 0xff
	}
	f.Add(bad)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; on success the trace must validate
		// structurally sound dep indices.
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("decoded trace fails validation: %v", err)
		}
	})
}
