package trace

import (
	"bytes"
	"testing"

	"semloc/internal/memmodel"
)

func memmodelAddr(i int) memmodel.Addr { return memmodel.Addr(i) }

// benchTrace builds a representative trace: pointer loads with hints,
// values and dependencies, interleaved branches and compute blocks.
func benchTrace(records int) *Trace {
	e := NewEmitter("bench")
	dep := -1
	for i := 0; i < records/4; i++ {
		e.Compute(3)
		e.Branch(0x400+uint64(i%7)*4, i%3 == 0)
		addr := memmodelAddr(0x10000 + (i*832)%(1<<20))
		dep = e.LoadSpec(MemSpec{
			PC: 0x500, Addr: addr, Value: uint64(addr) + 64, Dep: dep,
			Hints: SWHints{Valid: true, TypeID: 2, LinkOffset: 8, RefForm: RefArrow},
		})
		e.Load(0x510, addr+8)
	}
	return e.Finish()
}

// BenchmarkDecode measures the streaming decode loop with buffer reuse
// (Reader.Reset + ReadAll): steady state must not allocate per record
// (DESIGN.md, "Hot path & benchmarking").
func BenchmarkDecode(b *testing.B) {
	tr := benchTrace(40000)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	var (
		r   Reader
		out Trace
		src bytes.Reader
	)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reset(data)
		if err := r.Reset(&src); err != nil {
			b.Fatal(err)
		}
		if err := r.ReadAll(&out); err != nil {
			b.Fatal(err)
		}
		if len(out.Records) != len(tr.Records) {
			b.Fatalf("decoded %d records, want %d", len(out.Records), len(tr.Records))
		}
	}
}

// BenchmarkDecodeGzip is BenchmarkDecode over a gzip-compressed stream,
// exercising inflater reuse.
func BenchmarkDecodeGzip(b *testing.B) {
	tr := benchTrace(40000)
	var buf bytes.Buffer
	if err := WriteGzip(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	var (
		r   Reader
		out Trace
		src bytes.Reader
	)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src.Reset(data)
		if err := r.Reset(&src); err != nil {
			b.Fatal(err)
		}
		if err := r.ReadAll(&out); err != nil {
			b.Fatal(err)
		}
	}
}
