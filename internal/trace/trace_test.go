package trace

import (
	"bytes"
	"testing"

	"semloc/internal/memmodel"
)

func sampleTrace() *Trace {
	e := NewEmitter("sample")
	e.Compute(10)
	i := e.LoadSpec(MemSpec{PC: 0x400, Addr: 0x10000, Value: 0x20000, Reg: 7, Dep: -1,
		Hints: SWHints{Valid: true, TypeID: 3, LinkOffset: 8, RefForm: RefArrow}})
	e.Branch(0x408, true)
	e.LoadDep(0x410, 0x20000, i)
	e.EndWarmup()
	e.Store(0x418, 0x30040)
	e.Compute(5)
	return e.Finish()
}

func TestEmitterBasics(t *testing.T) {
	tr := sampleTrace()
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	s := tr.ComputeStats()
	if s.Loads != 2 || s.Stores != 1 || s.Branches != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.Instructions != 10+1+1+1+1+5 {
		t.Errorf("Instructions = %d, want 19", s.Instructions)
	}
	if s.Hinted != 1 {
		t.Errorf("Hinted = %d, want 1", s.Hinted)
	}
	if s.Dependent != 1 {
		t.Errorf("Dependent = %d, want 1", s.Dependent)
	}
	if s.WarmupIndex != 4 {
		t.Errorf("WarmupIndex = %d, want 4", s.WarmupIndex)
	}
}

func TestEmitterComputeMerging(t *testing.T) {
	e := NewEmitter("merge")
	e.Compute(3)
	e.Compute(4)
	e.Compute(0)  // ignored
	e.Compute(-1) // ignored
	tr := e.Finish()
	if len(tr.Records) != 1 {
		t.Fatalf("expected 1 merged record, got %d", len(tr.Records))
	}
	if tr.Records[0].Count != 7 {
		t.Errorf("merged count = %d, want 7", tr.Records[0].Count)
	}
}

func TestEmitterDefaultSize(t *testing.T) {
	e := NewEmitter("size")
	e.Load(0x1, 0x2)
	tr := e.Finish()
	if tr.Records[0].Size != 8 {
		t.Errorf("default size = %d, want 8", tr.Records[0].Size)
	}
}

func TestEmitterInvalidDepIgnored(t *testing.T) {
	e := NewEmitter("dep")
	e.LoadSpec(MemSpec{PC: 1, Addr: 2, Dep: 57}) // out of range forward dep
	tr := e.Finish()
	if tr.Records[0].Dep != NoDep {
		t.Errorf("forward dep should be dropped, got %d", tr.Records[0].Dep)
	}
}

func TestValidateCatchesBadTraces(t *testing.T) {
	bad := []*Trace{
		{Name: "kind", Records: []Record{{Kind: Kind(99)}}},
		{Name: "compute", Records: []Record{{Kind: KindCompute, Count: 0}}},
		{Name: "dep", Records: []Record{{Kind: KindLoad, Size: 8, Dep: 5}}},
		{Name: "size", Records: []Record{{Kind: KindStore, Size: 0, Dep: NoDep}}},
		{Name: "depkind", Records: []Record{
			{Kind: KindBranch},
			{Kind: KindLoad, Size: 8, Dep: 0},
		}},
	}
	for _, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("trace %q: expected validation error", tr.Name)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Name != orig.Name {
		t.Errorf("name %q != %q", got.Name, orig.Name)
	}
	if len(got.Records) != len(orig.Records) {
		t.Fatalf("record count %d != %d", len(got.Records), len(orig.Records))
	}
	for i := range orig.Records {
		if got.Records[i] != orig.Records[i] {
			t.Errorf("record %d: got %+v want %+v", i, got.Records[i], orig.Records[i])
		}
	}
}

func TestCodecRoundTripLarge(t *testing.T) {
	e := NewEmitter("large")
	rng := memmodel.NewRNG(99)
	lastLoad := -1
	for i := 0; i < 5000; i++ {
		switch rng.Intn(5) {
		case 0:
			e.Compute(1 + rng.Intn(20))
		case 1:
			e.Branch(uint64(0x1000+rng.Intn(64)*4), rng.Intn(2) == 0)
		case 2:
			dep := -1
			if lastLoad >= 0 && rng.Intn(2) == 0 {
				dep = lastLoad
			}
			var h SWHints
			if rng.Intn(2) == 0 {
				h = SWHints{Valid: true, TypeID: uint16(rng.Intn(8)), LinkOffset: uint16(rng.Intn(64)), RefForm: RefForm(rng.Intn(5))}
			}
			lastLoad = e.LoadSpec(MemSpec{
				PC:    uint64(0x2000 + rng.Intn(32)*4),
				Addr:  memmodel.Addr(rng.Uint64() % (1 << 40)),
				Value: rng.Uint64() % 1000,
				Reg:   rng.Uint64() % 16,
				Dep:   dep,
				Hints: h,
			})
		case 3:
			e.Store(uint64(0x3000+rng.Intn(16)*4), memmodel.Addr(rng.Uint64()%(1<<40)))
		case 4:
			if rng.Intn(100) == 0 {
				e.EndWarmup()
			} else {
				e.Compute(2)
			}
		}
	}
	orig := e.Finish()
	if err := orig.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got.Records) != len(orig.Records) {
		t.Fatalf("record count %d != %d", len(got.Records), len(orig.Records))
	}
	for i := range orig.Records {
		if got.Records[i] != orig.Records[i] {
			t.Fatalf("record %d mismatch: got %+v want %+v", i, got.Records[i], orig.Records[i])
		}
	}
}

func TestCodecCorruptInputs(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatalf("Write: %v", err)
	}
	data := buf.Bytes()

	// Truncations at every prefix length must error, never panic.
	for cut := 0; cut < len(data); cut++ {
		if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d: expected error", cut)
		}
	}
	// Bad magic.
	bad := append([]byte("XXXX"), data[4:]...)
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic: expected error")
	}
	// Bad version.
	bad = append([]byte(nil), data...)
	bad[4] = 0x7f
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("bad version: expected error")
	}
}

func TestCodecUnknownKindFails(t *testing.T) {
	tr := &Trace{Name: "bad", Records: []Record{{Kind: Kind(77)}}}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err == nil {
		t.Error("expected encode error for unknown kind")
	}
}

func TestKindAndRefFormStrings(t *testing.T) {
	if KindLoad.String() != "load" || KindStore.String() != "store" ||
		KindCompute.String() != "compute" || KindBranch.String() != "branch" ||
		KindWarmupEnd.String() != "warmup-end" {
		t.Error("kind strings wrong")
	}
	if Kind(200).String() != "kind(200)" {
		t.Error("unknown kind string wrong")
	}
	if RefArrow.String() != "arrow" || RefIndex.String() != "index" ||
		RefNone.String() != "none" || RefDeref.String() != "deref" || RefDot.String() != "dot" {
		t.Error("refform strings wrong")
	}
	if RefForm(200).String() != "ref(200)" {
		t.Error("unknown refform string wrong")
	}
}
