package trace

import "testing"

func checksumTrace() *Trace {
	e := NewEmitter("sum")
	e.Compute(3)
	e.Branch(0x10, true)
	e.LoadSpec(MemSpec{PC: 0x20, Addr: 0x1000, Dep: -1,
		Hints: SWHints{Valid: true, TypeID: 7, LinkOffset: 16, RefForm: RefArrow}})
	e.Store(0x30, 0x2000)
	return e.Finish()
}

func TestChecksumStable(t *testing.T) {
	a, b := checksumTrace(), checksumTrace()
	if a.Checksum() != b.Checksum() {
		t.Fatal("identical traces produced different checksums")
	}
	if a.Checksum() != a.Checksum() {
		t.Fatal("checksum not idempotent")
	}
}

func TestChecksumDetectsMutation(t *testing.T) {
	tr := checksumTrace()
	orig := tr.Checksum()

	mutations := []func(*Trace){
		func(t *Trace) { t.Name = "other" },
		func(t *Trace) { t.Records[2].Addr++ },
		func(t *Trace) { t.Records[2].Value ^= 1 },
		func(t *Trace) { t.Records[1].Taken = false },
		func(t *Trace) { t.Records[2].Hints.LinkOffset = 24 },
		func(t *Trace) { t.Records[2].Hints.Valid = false },
		func(t *Trace) { t.Records[0].Count++ },
	}
	for i, mut := range mutations {
		m := checksumTrace()
		mut(m)
		if m.Checksum() == orig {
			t.Errorf("mutation %d not reflected in checksum", i)
		}
	}
}
