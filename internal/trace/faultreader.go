package trace

import (
	"io"

	"semloc/internal/memmodel"
)

// FaultConfig configures deterministic fault injection on a byte stream.
// All faults are driven by Seed, so a failing corruption pattern can be
// replayed exactly; the stream of injected faults is deterministic for a
// fixed consumer (read sizes feed the PRNG cursor).
type FaultConfig struct {
	// Seed drives the injected faults. Zero is remapped to 1 (see
	// memmodel.NewRNG), so the zero value still injects deterministically.
	Seed uint64
	// BitFlipRate is the per-byte probability of flipping one
	// pseudo-randomly chosen bit. Zero disables bit flips.
	BitFlipRate float64
	// TruncateAt, when positive, ends the stream with io.EOF after that
	// many bytes, simulating a partially written or cut-off trace file.
	TruncateAt int64
	// ShortReads serves each Read with a pseudo-random prefix of the
	// requested length (at least one byte), exercising every partial-read
	// path in the decoder.
	ShortReads bool
}

// FaultReader wraps an io.Reader and injects truncation, bit flips and
// short reads per its FaultConfig. It is the test double for damaged trace
// files: the decoder must turn every injected fault into an error (or a
// clean io.EOF), never a panic.
type FaultReader struct {
	r   io.Reader
	cfg FaultConfig
	rng *memmodel.RNG
	off int64
}

// NewFaultReader wraps r with deterministic fault injection.
func NewFaultReader(r io.Reader, cfg FaultConfig) *FaultReader {
	return &FaultReader{r: r, cfg: cfg, rng: memmodel.NewRNG(cfg.Seed)}
}

// Read implements io.Reader.
func (f *FaultReader) Read(p []byte) (int, error) {
	if f.cfg.TruncateAt > 0 {
		if f.off >= f.cfg.TruncateAt {
			return 0, io.EOF
		}
		if remain := f.cfg.TruncateAt - f.off; int64(len(p)) > remain {
			p = p[:remain]
		}
	}
	if f.cfg.ShortReads && len(p) > 1 {
		p = p[:1+f.rng.Intn(len(p))]
	}
	n, err := f.r.Read(p)
	if f.cfg.BitFlipRate > 0 {
		for i := 0; i < n; i++ {
			if f.rng.Float64() < f.cfg.BitFlipRate {
				p[i] ^= 1 << uint(f.rng.Intn(8))
			}
		}
	}
	f.off += int64(n)
	return n, err
}
