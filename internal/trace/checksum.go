package trace

// Checksum returns a deterministic FNV-1a digest of the trace's name and
// every record field. The experiment runner records it when a trace enters
// the shared cache and re-verifies it after concurrent simulations, turning
// any write to supposedly immutable shared trace data into a loud failure
// instead of a silent cross-run corruption (see DESIGN.md, "Parallel
// execution & determinism contract").
func (t *Trace) Checksum() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for i := 0; i < len(t.Name); i++ {
		h ^= uint64(t.Name[i])
		h *= prime64
	}
	for i := range t.Records {
		r := &t.Records[i]
		mix(r.PC)
		mix(uint64(r.Addr))
		mix(r.Value)
		mix(r.Reg)
		mix(uint64(uint32(r.Dep)))
		mix(uint64(r.Count))
		var flags uint64
		flags = uint64(r.Kind)<<8 | uint64(r.Size)
		if r.Taken {
			flags |= 1 << 16
		}
		if r.Hints.Valid {
			flags |= 1 << 17
		}
		flags |= uint64(r.Hints.TypeID) << 18
		flags |= uint64(r.Hints.LinkOffset) << 34
		flags |= uint64(r.Hints.RefForm) << 50
		mix(flags)
	}
	return h
}
