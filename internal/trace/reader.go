package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"

	"semloc/internal/memmodel"
)

// Reader streams records from a binary trace without materializing the
// whole trace, so multi-gigabyte traces can be replayed with constant
// memory. It transparently handles gzip-compressed traces (as written by
// tracegen -gzip). A Reader can be Reset onto a new stream, reusing its
// internal buffers, so decode loops that replay many traces allocate only
// on the first.
type Reader struct {
	raw     *bufio.Reader // over the source stream
	zr      *gzip.Reader  // lazily created, reused across Resets
	zbr     *bufio.Reader // over zr when the stream is compressed
	br      *bufio.Reader // decode stream: raw or zbr
	name    string
	total   uint64
	read    uint64
	prevPC  uint64
	prevAdr uint64
	// loadBits marks which past records were loads, so dependency
	// references can be verified during streaming decode.
	loadBits []uint64
	magicBuf [len(magic)]byte
	nameBuf  []byte
}

// NewReader parses the trace header and returns a streaming reader.
func NewReader(r io.Reader) (*Reader, error) {
	rd := &Reader{}
	if err := rd.Reset(r); err != nil {
		return nil, err
	}
	return rd, nil
}

// Reset re-initializes the reader to stream a new trace from src, parsing
// its header. Internal buffers (bufio windows, the gzip inflater, the
// dependency bitmap) are reused, so resetting is allocation-free in steady
// state.
func (r *Reader) Reset(src io.Reader) error {
	if r.raw == nil {
		r.raw = bufio.NewReader(src)
	} else {
		r.raw.Reset(src)
	}
	r.br = r.raw
	// Transparent gzip: sniff the two-byte magic.
	if head, err := r.raw.Peek(2); err == nil && head[0] == 0x1f && head[1] == 0x8b {
		if r.zr == nil {
			gz, err := gzip.NewReader(r.raw)
			if err != nil {
				return fmt.Errorf("trace: opening gzip stream: %w", err)
			}
			r.zr = gz
			r.zbr = bufio.NewReader(gz)
		} else {
			if err := r.zr.Reset(r.raw); err != nil {
				return fmt.Errorf("trace: opening gzip stream: %w", err)
			}
			r.zbr.Reset(r.zr)
		}
		r.br = r.zbr
	}
	r.read, r.prevPC, r.prevAdr = 0, 0, 0
	for i := range r.loadBits {
		r.loadBits[i] = 0
	}
	return r.readHeader()
}

func (r *Reader) readHeader() error {
	if _, err := io.ReadFull(r.br, r.magicBuf[:]); err != nil {
		return fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(r.magicBuf[:]) != magic {
		return fmt.Errorf("trace: bad magic %q", r.magicBuf)
	}
	ver, err := binary.ReadUvarint(r.br)
	if err != nil {
		return fmt.Errorf("trace: reading version: %w", err)
	}
	if ver != version {
		return fmt.Errorf("trace: unsupported version %d", ver)
	}
	nameLen, err := binary.ReadUvarint(r.br)
	if err != nil {
		return fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > 1<<16 {
		return fmt.Errorf("trace: unreasonable name length %d", nameLen)
	}
	if uint64(cap(r.nameBuf)) < nameLen {
		r.nameBuf = make([]byte, nameLen)
	}
	r.nameBuf = r.nameBuf[:nameLen]
	if _, err := io.ReadFull(r.br, r.nameBuf); err != nil {
		return fmt.Errorf("trace: reading name: %w", err)
	}
	r.name = string(r.nameBuf)
	count, err := binary.ReadUvarint(r.br)
	if err != nil {
		return fmt.Errorf("trace: reading count: %w", err)
	}
	if count > MaxTraceBytes/minRecordBytes {
		return fmt.Errorf("trace: record count %d implies a trace beyond the %d-byte limit", count, MaxTraceBytes)
	}
	r.total = count
	return nil
}

// MaxTraceBytes bounds the trace size a header's record count may imply
// (at the 2-byte minimum record encoding), so a corrupt header cannot
// drive unbounded allocation in Read or the streaming reader's
// dependency-tracking bitmaps. Tools replaying genuinely larger traces may
// raise it before calling NewReader.
var MaxTraceBytes uint64 = 2 << 30

// minRecordBytes is the smallest encoding of one record (kind + flags).
const minRecordBytes = 2

// Name returns the workload name from the header.
func (r *Reader) Name() string { return r.name }

// Len returns the total record count from the header.
func (r *Reader) Len() int { return int(r.total) }

// Next decodes the next record into rec. It returns io.EOF after the last
// record.
func (r *Reader) Next(rec *Record) error {
	if r.read >= r.total {
		return io.EOF
	}
	i := r.read
	kindB, err := r.br.ReadByte()
	if err != nil {
		return fmt.Errorf("trace: record %d kind: %w", i, noEOF(err))
	}
	flags, err := r.br.ReadByte()
	if err != nil {
		return fmt.Errorf("trace: record %d flags: %w", i, noEOF(err))
	}
	*rec = Record{Kind: Kind(kindB), Dep: NoDep, Taken: flags&flagTaken != 0}
	switch rec.Kind {
	case KindCompute:
		c, err := binary.ReadUvarint(r.br)
		if err != nil {
			return fmt.Errorf("trace: record %d count: %w", i, noEOF(err))
		}
		if c == 0 || c > 1<<31 {
			return fmt.Errorf("trace: record %d compute count %d invalid", i, c)
		}
		rec.Count = uint32(c)
	case KindBranch:
		d, err := binary.ReadVarint(r.br)
		if err != nil {
			return fmt.Errorf("trace: record %d pc: %w", i, noEOF(err))
		}
		r.prevPC = uint64(int64(r.prevPC) + d)
		rec.PC = r.prevPC
	case KindLoad, KindStore:
		if err := r.readMem(rec, flags, i); err != nil {
			return err
		}
	case KindWarmupEnd:
		// no payload
	default:
		return fmt.Errorf("trace: record %d unknown kind %d", i, kindB)
	}
	if rec.Kind == KindLoad {
		word := int(i >> 6)
		if word >= len(r.loadBits) {
			// Grow geometrically, capped by the header record count (i is
			// always < total, so the cap is never undershot): the bitmap
			// can cost at most 1 bit per record the stream actually holds.
			n := 2 * len(r.loadBits)
			if n <= word {
				n = word + 1
			}
			if maxWords := int((r.total + 63) >> 6); n > maxWords {
				n = maxWords
			}
			grown := make([]uint64, n)
			copy(grown, r.loadBits)
			r.loadBits = grown
		}
		r.loadBits[word] |= 1 << (i & 63)
	}
	r.read++
	return nil
}

// isLoad reports whether record j (already decoded) was a load.
func (r *Reader) isLoad(j uint64) bool {
	word := int(j >> 6)
	return word < len(r.loadBits) && r.loadBits[word]&(1<<(j&63)) != 0
}

func (r *Reader) readMem(rec *Record, flags byte, i uint64) error {
	d, err := binary.ReadVarint(r.br)
	if err != nil {
		return fmt.Errorf("trace: record %d pc: %w", i, noEOF(err))
	}
	r.prevPC = uint64(int64(r.prevPC) + d)
	rec.PC = r.prevPC
	d, err = binary.ReadVarint(r.br)
	if err != nil {
		return fmt.Errorf("trace: record %d addr: %w", i, noEOF(err))
	}
	r.prevAdr = uint64(int64(r.prevAdr) + d)
	rec.Addr = memmodel.Addr(r.prevAdr)
	sz, err := r.br.ReadByte()
	if err != nil {
		return fmt.Errorf("trace: record %d size: %w", i, noEOF(err))
	}
	if sz == 0 {
		return fmt.Errorf("trace: record %d memory access of size 0", i)
	}
	rec.Size = sz
	if flags&flagDep != 0 {
		back, err := binary.ReadUvarint(r.br)
		if err != nil {
			return fmt.Errorf("trace: record %d dep: %w", i, noEOF(err))
		}
		if back == 0 || back > i {
			return fmt.Errorf("trace: record %d dep distance %d invalid", i, back)
		}
		if !r.isLoad(i - back) {
			return fmt.Errorf("trace: record %d depends on non-load %d", i, i-back)
		}
		rec.Dep = int32(i - back)
	}
	if flags&flagValue != 0 {
		v, err := binary.ReadUvarint(r.br)
		if err != nil {
			return fmt.Errorf("trace: record %d value: %w", i, noEOF(err))
		}
		rec.Value = v
	}
	if flags&flagReg != 0 {
		v, err := binary.ReadUvarint(r.br)
		if err != nil {
			return fmt.Errorf("trace: record %d reg: %w", i, noEOF(err))
		}
		rec.Reg = v
	}
	if flags&flagHints != 0 {
		tid, err := binary.ReadUvarint(r.br)
		if err != nil {
			return fmt.Errorf("trace: record %d typeid: %w", i, noEOF(err))
		}
		off, err := binary.ReadUvarint(r.br)
		if err != nil {
			return fmt.Errorf("trace: record %d linkoff: %w", i, noEOF(err))
		}
		rf, err := r.br.ReadByte()
		if err != nil {
			return fmt.Errorf("trace: record %d refform: %w", i, noEOF(err))
		}
		if RefForm(rf) >= refFormCount {
			return fmt.Errorf("trace: record %d invalid ref form %d", i, rf)
		}
		rec.Hints = SWHints{Valid: true, TypeID: uint16(tid), LinkOffset: uint16(off), RefForm: RefForm(rf)}
	}
	return nil
}

// noEOF converts io.EOF into io.ErrUnexpectedEOF: inside a record an EOF
// always means truncation.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// WriteGzip serializes t to w through gzip compression; NewReader (and
// Read) decompress transparently.
func WriteGzip(w io.Writer, t *Trace) error {
	gz := gzip.NewWriter(w)
	if err := Write(gz, t); err != nil {
		gz.Close()
		return err
	}
	return gz.Close()
}
