// Package semloc's benchmark harness: one testing.B benchmark per table
// and figure of the paper, plus ablation benches for the design choices
// DESIGN.md calls out. Each benchmark regenerates its artifact and reports
// the headline numbers as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Benchmarks default to a reduced
// workload scale so the full sweep stays tractable; set
// SEMLOC_BENCH_SCALE=1 for paper-size runs.
package semloc

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"testing"

	"semloc/internal/core"
	"semloc/internal/exp"
	"semloc/internal/sim"
	"semloc/internal/stats"
)

// benchScale returns the workload scale for benchmarks.
func benchScale() float64 {
	if s := os.Getenv("SEMLOC_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.15
}

func benchRunner() *exp.Runner {
	opts := exp.DefaultOptions()
	opts.Scale = benchScale()
	return exp.NewRunner(opts)
}

// runExperiment executes one figure/table experiment per benchmark
// iteration, discarding the textual output.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := exp.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		r := benchRunner() // fresh runner: measure full regeneration
		if err := e.Run(r, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Config regenerates the machine-parameter table.
func BenchmarkTable2Config(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3Workloads regenerates the workload inventory.
func BenchmarkTable3Workloads(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig1InsertionSortLocality regenerates Figure 1's access map.
func BenchmarkFig1InsertionSortLocality(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig5RewardFunction regenerates the reward-function series.
func BenchmarkFig5RewardFunction(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig8HitDepthCDF regenerates the hit-depth CDFs and reports the
// fraction of hits inside the reward window for the flagship list
// µbenchmark (the paper's "step" at the window edge).
func BenchmarkFig8HitDepthCDF(b *testing.B) {
	r := benchRunner()
	var inWindow float64
	for i := 0; i < b.N; i++ {
		res, err := r.Result("list", "context")
		if err != nil {
			b.Fatal(err)
		}
		rw := core.DefaultRewardConfig()
		inWindow = res.HitDepths.Fraction(rw.Low, rw.High)
	}
	b.ReportMetric(inWindow, "hits-in-window")
}

// BenchmarkFig9AccuracyTimeliness regenerates the category breakdown and
// reports the context prefetcher's useful-prefetch fraction on list.
func BenchmarkFig9AccuracyTimeliness(b *testing.B) {
	r := benchRunner()
	var useful float64
	for i := 0; i < b.N; i++ {
		res, err := r.Result("list", "context")
		if err != nil {
			b.Fatal(err)
		}
		c := res.Categories
		useful = float64(c.HitPrefetched+c.ShorterWait) / float64(c.Demand)
	}
	b.ReportMetric(useful, "useful-prefetch-frac")
}

// BenchmarkFig10L1MPKI reports the context prefetcher's average L1 MPKI
// reduction factor over the µbenchmarks.
func BenchmarkFig10L1MPKI(b *testing.B) {
	benchMPKI(b, func(res *sim.Result) float64 { return res.L1MPKI() })
}

// BenchmarkFig11L2MPKI reports the L2 MPKI reduction factor.
func BenchmarkFig11L2MPKI(b *testing.B) {
	benchMPKI(b, func(res *sim.Result) float64 { return res.L2MPKI() })
}

func benchMPKI(b *testing.B, metric func(*sim.Result) float64) {
	b.Helper()
	r := benchRunner()
	var factor float64
	for i := 0; i < b.N; i++ {
		var base, ctx float64
		for _, wl := range exp.MicroWorkloads() {
			bres, err := r.Result(wl, "none")
			if err != nil {
				b.Fatal(err)
			}
			cres, err := r.Result(wl, "context")
			if err != nil {
				b.Fatal(err)
			}
			base += metric(bres)
			ctx += metric(cres)
		}
		if ctx > 0 {
			factor = base / ctx
		}
	}
	b.ReportMetric(factor, "mpki-reduction-x")
}

// BenchmarkFig12Speedup regenerates the speedup comparison over the
// µbenchmark suite and reports the context average and its margin over the
// best competing prefetcher.
func BenchmarkFig12Speedup(b *testing.B) {
	r := benchRunner()
	var ctxAvg, bestOther float64
	for i := 0; i < b.N; i++ {
		sums := map[string][]float64{}
		for _, wl := range exp.MicroWorkloads() {
			for _, pn := range []string{"ghb-gdc", "sms", "context"} {
				s, err := r.Speedup(wl, pn)
				if err != nil {
					b.Fatal(err)
				}
				sums[pn] = append(sums[pn], s)
			}
		}
		ctxAvg = stats.Mean(sums["context"])
		bestOther = stats.Mean(sums["sms"])
		if g := stats.Mean(sums["ghb-gdc"]); g > bestOther {
			bestOther = g
		}
	}
	b.ReportMetric(ctxAvg, "context-speedup")
	b.ReportMetric(bestOther, "best-competitor")
}

// BenchmarkFig13StorageSweep reports the speedup at small, default and
// large CST sizes on the flagship workload, exposing the paper's
// non-monotonicity.
func BenchmarkFig13StorageSweep(b *testing.B) {
	for _, entries := range []int{512, 2048, 16384} {
		entries := entries
		b.Run(fmt.Sprintf("cst=%d", entries), func(b *testing.B) {
			r := benchRunner()
			var speedup float64
			for i := 0; i < b.N; i++ {
				base, err := r.Result("list", "none")
				if err != nil {
					b.Fatal(err)
				}
				cfg := core.DefaultConfig()
				cfg.CSTEntries = entries
				cfg.ReducerEntries = entries * 8
				pf, err := core.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				tr, err := r.Trace("list")
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run(tr, pf, r.Options().Sim)
				if err != nil {
					b.Fatal(err)
				}
				speedup = res.IPC() / base.IPC()
			}
			b.ReportMetric(speedup, "speedup")
		})
	}
}

// BenchmarkFig14LayoutAgnostic reports how close the context prefetcher
// brings the naive linked Graph500 to the CSR layout, vs no prefetching.
func BenchmarkFig14LayoutAgnostic(b *testing.B) {
	r := benchRunner()
	var gapNone, gapCtx float64
	for i := 0; i < b.N; i++ {
		for _, pn := range []string{"none", "context"} {
			csr, err := r.Result("graph500", pn)
			if err != nil {
				b.Fatal(err)
			}
			lst, err := r.Result("graph500-list", pn)
			if err != nil {
				b.Fatal(err)
			}
			gap := lst.CPU.CPI() / csr.CPU.CPI()
			if pn == "none" {
				gapNone = gap
			} else {
				gapCtx = gap
			}
		}
	}
	b.ReportMetric(gapNone, "linked-gap-none")
	b.ReportMetric(gapCtx, "linked-gap-context")
}

// --- ablation benches (DESIGN.md §5) ---

// ablate runs the named workload with a variant context-prefetcher
// configuration and reports its speedup next to the default's.
func ablate(b *testing.B, workload string, mutate func(*core.Config)) {
	b.Helper()
	r := benchRunner()
	var def, variant float64
	for i := 0; i < b.N; i++ {
		base, err := r.Result(workload, "none")
		if err != nil {
			b.Fatal(err)
		}
		defRes, err := r.Result(workload, "context")
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.DefaultConfig()
		mutate(&cfg)
		pf, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := r.Trace(workload)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(tr, pf, r.Options().Sim)
		if err != nil {
			b.Fatal(err)
		}
		def = defRes.IPC() / base.IPC()
		variant = res.IPC() / base.IPC()
	}
	b.ReportMetric(def, "default-speedup")
	b.ReportMetric(variant, "variant-speedup")
}

// BenchmarkAblationRewardShape compares the bell-shaped reward against a
// flat in-window reward.
func BenchmarkAblationRewardShape(b *testing.B) {
	ablate(b, "list", func(c *core.Config) { c.Reward.Flat = true })
}

// BenchmarkAblationReducer disables online feature selection (full
// attribute set always active).
func BenchmarkAblationReducer(b *testing.B) {
	ablate(b, "list", func(c *core.Config) { c.DisableReducer = true })
}

// BenchmarkAblationShadow disables shadow prefetches.
func BenchmarkAblationShadow(b *testing.B) {
	ablate(b, "list", func(c *core.Config) { c.DisableShadow = true })
}

// BenchmarkAblationEpsilon fixes ε instead of adapting it to accuracy.
func BenchmarkAblationEpsilon(b *testing.B) {
	ablate(b, "list", func(c *core.Config) { c.AdaptiveEpsilon = false })
}

// BenchmarkAblationSampling restricts collection to a few sparse history
// depths (risking residue blind spots; see config.go).
func BenchmarkAblationSampling(b *testing.B) {
	ablate(b, "mcf", func(c *core.Config) { c.SampleDepths = []int{5, 17, 29, 41} })
}

// BenchmarkAblationGranularity runs the prefetcher at word granularity,
// the table-thrashing regime §7.3 warns about.
func BenchmarkAblationGranularity(b *testing.B) {
	ablate(b, "list", func(c *core.Config) { c.BlockShift = 3 })
}

// BenchmarkExtensionSoftmax evaluates the softmax exploration policy
// (§8 future work) against the paper's ε-greedy default.
func BenchmarkExtensionSoftmax(b *testing.B) {
	ablate(b, "list", func(c *core.Config) { c.Policy = core.PolicySoftmax })
}

// BenchmarkExtensionUCB evaluates upper-confidence-bound exploration
// (§8 future work) against the paper's ε-greedy default.
func BenchmarkExtensionUCB(b *testing.B) {
	ablate(b, "list", func(c *core.Config) { c.Policy = core.PolicyUCB })
}
