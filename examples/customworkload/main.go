// Customworkload shows how to drive the simulator with your own program
// behaviour: build a trace through the instrumentation API (the stand-in
// for the paper's LLVM hint pass), then compare prefetchers on it.
//
// The workload modelled here is a tiny in-memory key-value store: a hash
// index into version-chained records — a mix of indexed lookups and short
// pointer chases, annotated with the semantic hints the context prefetcher
// consumes.
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"
	"os"

	"semloc/internal/exp"
	"semloc/internal/memmodel"
	"semloc/internal/sim"
	"semloc/internal/stats"
	"semloc/internal/trace"
)

// Object type enumeration for the compiler hints (each program defines its
// own, as the paper's LLVM pass does).
const (
	typeBucket  uint16 = 1
	typeVersion uint16 = 2
)

func buildTrace() *trace.Trace {
	const (
		pcBucket  = 0x501000 // bucket array load site
		pcVersion = 0x501010 // version-chain load site
		pcValue   = 0x501020 // record payload load site
	)
	rng := memmodel.NewRNG(99)
	heap := memmodel.NewHeap(memmodel.HeapConfig{Seed: 99})

	const buckets = 1 << 14
	const records = buckets * 2
	const versionsPerRecord = 3

	bucketArr := heap.AllocArray(buckets, 8)
	// A record's versions are created close together in time, so the
	// allocator places them near one another even though records are
	// scattered across the heap — the structural relation the context
	// prefetcher can learn (version chains at small, recurring deltas).
	versions := make([]memmodel.Addr, records*versionsPerRecord)
	for rec := 0; rec < records; rec++ {
		base := heap.Alloc(versionsPerRecord * 64)
		for v := 0; v < versionsPerRecord; v++ {
			versions[rec*versionsPerRecord+v] = base + memmodel.Addr(v*64)
		}
	}

	e := trace.NewEmitter("kvstore")
	const lookups = 60000
	for q := 0; q < lookups; q++ {
		key := rng.Intn(records)
		b := key % buckets
		// Hash-index probe: an array-indexed load.
		head := versions[key*versionsPerRecord]
		dep := e.LoadSpec(trace.MemSpec{
			PC: pcBucket, Addr: bucketArr + memmodel.Addr(b*8),
			Value: uint64(head), Reg: uint64(key), Dep: -1,
			Hints: trace.SWHints{Valid: true, TypeID: typeBucket, RefForm: trace.RefIndex},
		})
		e.Compute(2)
		// Walk the version chain to the visible version (MVCC-style).
		for v := 0; v < versionsPerRecord; v++ {
			node := versions[key*versionsPerRecord+v]
			var next memmodel.Addr
			if v+1 < versionsPerRecord {
				next = versions[key*versionsPerRecord+v+1]
			}
			dep = e.LoadSpec(trace.MemSpec{
				PC: pcVersion, Addr: node, Value: uint64(next), Reg: uint64(key),
				Dep: dep, Hints: trace.SWHints{Valid: true, TypeID: typeVersion, LinkOffset: 0, RefForm: trace.RefArrow},
			})
			e.Branch(pcVersion+8, v+1 < versionsPerRecord)
		}
		// Read the payload of the chosen version.
		e.LoadSpec(trace.MemSpec{PC: pcValue, Addr: versions[key*versionsPerRecord+versionsPerRecord-1] + 16, Dep: dep})
		e.Compute(6)
		if q == lookups/8 {
			e.EndWarmup()
		}
	}
	return e.Finish()
}

func main() {
	tr := buildTrace()
	if err := tr.Validate(); err != nil {
		log.Fatal(err)
	}
	st := tr.ComputeStats()
	fmt.Printf("custom workload %q: %d instructions, %d loads, %.0f%% hinted\n\n",
		tr.Name, st.Instructions, st.Loads, 100*float64(st.Hinted)/float64(st.Loads+st.Stores))

	machine := sim.DefaultConfig()
	tb := stats.NewTable("key-value store lookups", "prefetcher", "IPC", "speedup", "L1 MPKI")
	var base float64
	for _, pn := range []string{"none", "stride", "ghb-pcdc", "sms", "context"} {
		pf, err := exp.NewPrefetcher(pn)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(tr, pf, machine)
		if err != nil {
			log.Fatal(err)
		}
		if pn == "none" {
			base = res.IPC()
		}
		tb.AddRow(pn, res.IPC(), res.IPC()/base, res.L1MPKI())
	}
	tb.Render(os.Stdout)
}
