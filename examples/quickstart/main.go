// Quickstart: run the context-based prefetcher on a linked-list traversal
// and compare it with no prefetching.
//
// This is the paper's motivating scenario in miniature (Figure 1): a
// pointer-linked list whose nodes are scattered in memory, traversed
// repeatedly in the same logical order. Spatial prefetchers see noise; the
// context prefetcher learns the traversal.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"semloc/internal/core"
	"semloc/internal/prefetch"
	"semloc/internal/sim"
	"semloc/internal/workloads"
)

func main() {
	// 1. Generate a workload trace: the "list" µbenchmark from Table 3.
	wl, err := workloads.ByName("list")
	if err != nil {
		log.Fatal(err)
	}
	tr := wl.Generate(workloads.GenConfig{Scale: 0.2, Seed: 42})
	st := tr.ComputeStats()
	fmt.Printf("workload: %s — %d instructions, %d loads (%.0f%% pointer-dependent)\n\n",
		tr.Name, st.Instructions, st.Loads, 100*float64(st.Dependent)/float64(st.Loads))

	// 2. Simulate the Table 2 machine without prefetching.
	machine := sim.DefaultConfig()
	baseline, err := sim.Run(tr, prefetch.NewNone(), machine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("no prefetching:      IPC %.3f, L1 MPKI %.1f\n", baseline.IPC(), baseline.L1MPKI())

	// 3. Simulate with the context-based prefetcher (the paper's
	//    contribution) at its default ~31 kB configuration.
	ctx := core.MustNew(core.DefaultConfig())
	res, err := sim.Run(tr, ctx, machine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("context prefetcher:  IPC %.3f, L1 MPKI %.1f\n\n", res.IPC(), res.L1MPKI())
	fmt.Printf("speedup: %.2fx\n\n", res.IPC()/baseline.IPC())

	// 4. Inspect what the reinforcement-learning loop did.
	m := ctx.Metrics()
	fmt.Printf("predictions: %d (%d dispatched, %d shadow)\n", m.Predictions, m.RealPrefetches, m.ShadowPrefetches)
	fmt.Printf("queue hits: %d — %.0f%% inside the reward window\n",
		m.QueueHits, 100*m.HitDepths.Fraction(core.DefaultRewardConfig().Low, core.DefaultRewardConfig().High))
	fmt.Printf("policy: accuracy %.2f, exploration rate %.4f\n", ctx.Accuracy(), ctx.Epsilon())
	c := res.Categories
	fmt.Printf("demand accesses hitting a prefetched line: %.1f%%\n",
		100*float64(c.HitPrefetched)/float64(c.Demand))
}
