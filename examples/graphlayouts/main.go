// Graphlayouts reproduces the Figure 14 scenario: the same graph algorithm
// (Graph500 BFS) implemented both naively (pointer-linked vertices and
// edges) and in the spatially optimized CSR form, under several
// prefetchers.
//
// The paper's claim (§7.5): with the context prefetcher, the naive linked
// implementation approaches the performance of the hand-optimized layout —
// programmers can skip the spatial-optimization burden.
//
//	go run ./examples/graphlayouts
package main

import (
	"fmt"
	"log"
	"os"

	"semloc/internal/exp"
	"semloc/internal/sim"
	"semloc/internal/stats"
	"semloc/internal/workloads"
)

func main() {
	machine := sim.DefaultConfig()
	gen := workloads.GenConfig{Scale: 0.3, Seed: 7}

	run := func(name, pf string) *sim.Result {
		w, err := workloads.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		p, err := exp.NewPrefetcher(pf)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(w.Generate(gen), p, machine)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	tb := stats.NewTable("Graph500 BFS: naive (linked) vs optimized (CSR) layouts",
		"prefetcher", "CSR CPI", "linked CPI", "linked penalty")
	for _, pf := range []string{"none", "ghb-gdc", "sms", "context"} {
		csr := run("graph500", pf)
		lst := run("graph500-list", pf)
		tb.AddRow(pf, csr.CPU.CPI(), lst.CPU.CPI(),
			fmt.Sprintf("%.2fx", lst.CPU.CPI()/csr.CPU.CPI()))
	}
	tb.Render(os.Stdout)
	fmt.Println("\nthe context prefetcher should bring the linked layout closest to the CSR layout")
}
