module semloc

go 1.22
