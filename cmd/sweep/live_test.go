package main

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"semloc/internal/harness"
	"semloc/internal/obs"
)

// syncBuffer is a mutex-guarded bytes.Buffer: the sweep goroutine writes
// logs into it while the test polls its contents.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// httpGet fetches url, returning an error instead of failing the test: the
// sweep under test may finish (and release the listener) between polls.
func httpGet(url string) (string, int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", 0, err
	}
	return string(body), resp.StatusCode, nil
}

// TestSweepLiveEndpoint drives the full live-observability path end to end:
// a sweep with -listen and -spans runs in the background, the test scrapes
// /metrics while it executes and asserts the live counters are present,
// then verifies the sweep exits cleanly, the listener is released (no
// leaked goroutine holding the port), and the span file parses with one
// span per executed cell. CI runs this under -race.
func TestSweepLiveEndpoint(t *testing.T) {
	spansFile := filepath.Join(t.TempDir(), "sweep.trace.json")
	var stderr syncBuffer
	var out bytes.Buffer
	codeCh := make(chan int, 1)
	go func() {
		codeCh <- run([]string{
			"-workload", "list", "-param", "epsilon",
			"-values", "0,0.05,0.1,0.15", "-scale", "0.1", "-parallel", "2",
			"-listen", "127.0.0.1:0", "-spans", spansFile,
		}, &out, &stderr)
	}()

	// The endpoint address is logged as soon as the listener is up.
	addrRe := regexp.MustCompile(`addr=([0-9.]+:\d+)`)
	var addr string
	deadline := time.Now().Add(30 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("listen address never logged:\n%s", stderr.String())
		}
		if m := addrRe.FindStringSubmatch(stderr.String()); m != nil {
			addr = m[1]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Scrape /metrics while the sweep runs; the engine registers its
	// counters when the runner is built, a moment after the listener binds,
	// so poll until they appear. (/healthz, /readyz, /debug/vars and pprof
	// are covered by internal/obs's server tests.)
	var metrics string
	for {
		if time.Now().After(deadline) {
			t.Fatalf("live counters never appeared in /metrics; last scrape:\n%s", metrics)
		}
		body, status, err := httpGet("http://" + addr + "/metrics")
		if err == nil && status == http.StatusOK &&
			strings.Contains(body, "cells_total") &&
			strings.Contains(body, "cells_done") &&
			strings.Contains(body, "queue_wait_seconds_bucket") {
			metrics = body
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !strings.Contains(metrics, "# TYPE queue_wait_seconds histogram") {
		t.Errorf("/metrics is not Prometheus text format:\n%s", metrics)
	}

	if code := <-codeCh; code != harness.ExitOK {
		t.Fatalf("sweep exited %d:\n%s", code, stderr.String())
	}
	// Clean shutdown: the listener (and its serving goroutine) must be gone.
	if conn, err := net.DialTimeout("tcp", addr, 500*time.Millisecond); err == nil {
		conn.Close()
		t.Error("metrics listener still accepting connections after exit")
	}

	// The span file must parse and carry one run span per cell (baseline +
	// 4 sweep points) plus the trace generation.
	f, err := os.Open(spansFile)
	if err != nil {
		t.Fatalf("span file missing: %v", err)
	}
	defer f.Close()
	spans, err := obs.ReadChromeTrace(f)
	if err != nil {
		t.Fatalf("span file unreadable: %v", err)
	}
	runs, traces := 0, 0
	for _, s := range spans {
		switch s.Cat {
		case obs.CatRun:
			runs++
		case obs.CatTrace:
			traces++
		}
	}
	if runs != 5 {
		t.Errorf("span file holds %d run spans, want 5 (baseline + 4 points)", runs)
	}
	if traces != 1 {
		t.Errorf("span file holds %d trace spans, want 1", traces)
	}
	// The sweep's table must be untouched by the observability plumbing.
	if !strings.Contains(out.String(), "epsilon") {
		t.Errorf("sweep table missing from stdout:\n%s", out.String())
	}
}
